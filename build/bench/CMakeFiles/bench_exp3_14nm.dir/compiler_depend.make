# Empty compiler generated dependencies file for bench_exp3_14nm.
# This may be replaced when dependencies are built.
