file(REMOVE_RECURSE
  "CMakeFiles/bench_exp3_14nm.dir/bench_exp3_14nm.cpp.o"
  "CMakeFiles/bench_exp3_14nm.dir/bench_exp3_14nm.cpp.o.d"
  "bench_exp3_14nm"
  "bench_exp3_14nm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp3_14nm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
