# Empty dependencies file for bench_table2_exp1.
# This may be replaced when dependencies are built.
