# Empty dependencies file for bench_exp3_routing.
# This may be replaced when dependencies are built.
