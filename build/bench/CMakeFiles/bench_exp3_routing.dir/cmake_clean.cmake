file(REMOVE_RECURSE
  "CMakeFiles/bench_exp3_routing.dir/bench_exp3_routing.cpp.o"
  "CMakeFiles/bench_exp3_routing.dir/bench_exp3_routing.cpp.o.d"
  "bench_exp3_routing"
  "bench_exp3_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp3_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
