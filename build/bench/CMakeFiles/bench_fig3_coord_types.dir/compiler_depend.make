# Empty compiler generated dependencies file for bench_fig3_coord_types.
# This may be replaced when dependencies are built.
