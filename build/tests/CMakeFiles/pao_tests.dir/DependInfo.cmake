
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_access_cache.cpp" "tests/CMakeFiles/pao_tests.dir/test_access_cache.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_access_cache.cpp.o.d"
  "/root/repo/tests/test_access_source.cpp" "tests/CMakeFiles/pao_tests.dir/test_access_source.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_access_source.cpp.o.d"
  "/root/repo/tests/test_ap_gen.cpp" "tests/CMakeFiles/pao_tests.dir/test_ap_gen.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_ap_gen.cpp.o.d"
  "/root/repo/tests/test_benchgen.cpp" "tests/CMakeFiles/pao_tests.dir/test_benchgen.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_benchgen.cpp.o.d"
  "/root/repo/tests/test_cluster_select.cpp" "tests/CMakeFiles/pao_tests.dir/test_cluster_select.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_cluster_select.cpp.o.d"
  "/root/repo/tests/test_db.cpp" "tests/CMakeFiles/pao_tests.dir/test_db.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_db.cpp.o.d"
  "/root/repo/tests/test_drc.cpp" "tests/CMakeFiles/pao_tests.dir/test_drc.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_drc.cpp.o.d"
  "/root/repo/tests/test_drc_engine_extra.cpp" "tests/CMakeFiles/pao_tests.dir/test_drc_engine_extra.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_drc_engine_extra.cpp.o.d"
  "/root/repo/tests/test_evaluate.cpp" "tests/CMakeFiles/pao_tests.dir/test_evaluate.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_evaluate.cpp.o.d"
  "/root/repo/tests/test_geom.cpp" "tests/CMakeFiles/pao_tests.dir/test_geom.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_geom.cpp.o.d"
  "/root/repo/tests/test_grid_index.cpp" "tests/CMakeFiles/pao_tests.dir/test_grid_index.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_grid_index.cpp.o.d"
  "/root/repo/tests/test_lefdef.cpp" "tests/CMakeFiles/pao_tests.dir/test_lefdef.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_lefdef.cpp.o.d"
  "/root/repo/tests/test_multiheight.cpp" "tests/CMakeFiles/pao_tests.dir/test_multiheight.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_multiheight.cpp.o.d"
  "/root/repo/tests/test_oracle.cpp" "tests/CMakeFiles/pao_tests.dir/test_oracle.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_oracle.cpp.o.d"
  "/root/repo/tests/test_orient.cpp" "tests/CMakeFiles/pao_tests.dir/test_orient.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_orient.cpp.o.d"
  "/root/repo/tests/test_pattern_gen.cpp" "tests/CMakeFiles/pao_tests.dir/test_pattern_gen.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_pattern_gen.cpp.o.d"
  "/root/repo/tests/test_polygon.cpp" "tests/CMakeFiles/pao_tests.dir/test_polygon.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_polygon.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/pao_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_router.cpp" "tests/CMakeFiles/pao_tests.dir/test_router.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_router.cpp.o.d"
  "/root/repo/tests/test_viz.cpp" "tests/CMakeFiles/pao_tests.dir/test_viz.cpp.o" "gcc" "tests/CMakeFiles/pao_tests.dir/test_viz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/router/CMakeFiles/pao_router.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/pao_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/pao/CMakeFiles/pao_core.dir/DependInfo.cmake"
  "/root/repo/build/src/benchgen/CMakeFiles/pao_benchgen.dir/DependInfo.cmake"
  "/root/repo/build/src/lefdef/CMakeFiles/pao_lefdef.dir/DependInfo.cmake"
  "/root/repo/build/src/drc/CMakeFiles/pao_drc.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/pao_db.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pao_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
