# Empty dependencies file for pao_tests.
# This may be replaced when dependencies are built.
