# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pao_tests[1]_include.cmake")
add_test(cli_list "/root/repo/build/tools/pao_cli" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_gen_analyze "sh" "-c" "/root/repo/build/tools/pao_cli gen 0 0.005 /root/repo/build/smoke     && /root/repo/build/tools/pao_cli analyze /root/repo/build/smoke.lef /root/repo/build/smoke.def --threads 2")
set_tests_properties(cli_gen_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;35;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_route "sh" "-c" "/root/repo/build/tools/pao_cli gen 0 0.005 /root/repo/build/smoke_r     && /root/repo/build/tools/pao_cli route /root/repo/build/smoke_r.lef /root/repo/build/smoke_r.def --out /root/repo/build/smoke_routed.def")
set_tests_properties(cli_route PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;38;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;41;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_lefdef_roundtrip "/root/repo/build/examples/lefdef_roundtrip")
set_tests_properties(example_lefdef_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;42;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bench_fig3_selfcheck "/root/repo/build/bench/bench_fig3_coord_types")
set_tests_properties(bench_fig3_selfcheck PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;43;add_test;/root/repo/tests/CMakeLists.txt;0;")
