# Empty dependencies file for dp_graph_dot.
# This may be replaced when dependencies are built.
