file(REMOVE_RECURSE
  "CMakeFiles/dp_graph_dot.dir/dp_graph_dot.cpp.o"
  "CMakeFiles/dp_graph_dot.dir/dp_graph_dot.cpp.o.d"
  "dp_graph_dot"
  "dp_graph_dot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_graph_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
