file(REMOVE_RECURSE
  "CMakeFiles/lefdef_roundtrip.dir/lefdef_roundtrip.cpp.o"
  "CMakeFiles/lefdef_roundtrip.dir/lefdef_roundtrip.cpp.o.d"
  "lefdef_roundtrip"
  "lefdef_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lefdef_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
