# Empty compiler generated dependencies file for lefdef_roundtrip.
# This may be replaced when dependencies are built.
