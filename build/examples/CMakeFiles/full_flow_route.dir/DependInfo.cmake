
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/full_flow_route.cpp" "examples/CMakeFiles/full_flow_route.dir/full_flow_route.cpp.o" "gcc" "examples/CMakeFiles/full_flow_route.dir/full_flow_route.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/router/CMakeFiles/pao_router.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/pao_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/pao/CMakeFiles/pao_core.dir/DependInfo.cmake"
  "/root/repo/build/src/benchgen/CMakeFiles/pao_benchgen.dir/DependInfo.cmake"
  "/root/repo/build/src/lefdef/CMakeFiles/pao_lefdef.dir/DependInfo.cmake"
  "/root/repo/build/src/drc/CMakeFiles/pao_drc.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/pao_db.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pao_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
