# Empty compiler generated dependencies file for full_flow_route.
# This may be replaced when dependencies are built.
