file(REMOVE_RECURSE
  "CMakeFiles/full_flow_route.dir/full_flow_route.cpp.o"
  "CMakeFiles/full_flow_route.dir/full_flow_route.cpp.o.d"
  "full_flow_route"
  "full_flow_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_flow_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
