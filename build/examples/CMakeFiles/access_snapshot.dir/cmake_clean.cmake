file(REMOVE_RECURSE
  "CMakeFiles/access_snapshot.dir/access_snapshot.cpp.o"
  "CMakeFiles/access_snapshot.dir/access_snapshot.cpp.o.d"
  "access_snapshot"
  "access_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
