# Empty compiler generated dependencies file for access_snapshot.
# This may be replaced when dependencies are built.
