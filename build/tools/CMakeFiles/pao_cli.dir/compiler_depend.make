# Empty compiler generated dependencies file for pao_cli.
# This may be replaced when dependencies are built.
