file(REMOVE_RECURSE
  "CMakeFiles/pao_cli.dir/pao_cli.cpp.o"
  "CMakeFiles/pao_cli.dir/pao_cli.cpp.o.d"
  "pao_cli"
  "pao_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pao_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
