# Empty compiler generated dependencies file for pao_lefdef.
# This may be replaced when dependencies are built.
