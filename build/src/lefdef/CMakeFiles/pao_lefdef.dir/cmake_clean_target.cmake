file(REMOVE_RECURSE
  "libpao_lefdef.a"
)
