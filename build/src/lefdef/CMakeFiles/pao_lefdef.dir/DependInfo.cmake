
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lefdef/def_parser.cpp" "src/lefdef/CMakeFiles/pao_lefdef.dir/def_parser.cpp.o" "gcc" "src/lefdef/CMakeFiles/pao_lefdef.dir/def_parser.cpp.o.d"
  "/root/repo/src/lefdef/def_route_writer.cpp" "src/lefdef/CMakeFiles/pao_lefdef.dir/def_route_writer.cpp.o" "gcc" "src/lefdef/CMakeFiles/pao_lefdef.dir/def_route_writer.cpp.o.d"
  "/root/repo/src/lefdef/def_writer.cpp" "src/lefdef/CMakeFiles/pao_lefdef.dir/def_writer.cpp.o" "gcc" "src/lefdef/CMakeFiles/pao_lefdef.dir/def_writer.cpp.o.d"
  "/root/repo/src/lefdef/lef_parser.cpp" "src/lefdef/CMakeFiles/pao_lefdef.dir/lef_parser.cpp.o" "gcc" "src/lefdef/CMakeFiles/pao_lefdef.dir/lef_parser.cpp.o.d"
  "/root/repo/src/lefdef/lef_writer.cpp" "src/lefdef/CMakeFiles/pao_lefdef.dir/lef_writer.cpp.o" "gcc" "src/lefdef/CMakeFiles/pao_lefdef.dir/lef_writer.cpp.o.d"
  "/root/repo/src/lefdef/lexer.cpp" "src/lefdef/CMakeFiles/pao_lefdef.dir/lexer.cpp.o" "gcc" "src/lefdef/CMakeFiles/pao_lefdef.dir/lexer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/pao_db.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pao_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
