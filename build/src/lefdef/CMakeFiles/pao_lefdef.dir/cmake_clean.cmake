file(REMOVE_RECURSE
  "CMakeFiles/pao_lefdef.dir/def_parser.cpp.o"
  "CMakeFiles/pao_lefdef.dir/def_parser.cpp.o.d"
  "CMakeFiles/pao_lefdef.dir/def_route_writer.cpp.o"
  "CMakeFiles/pao_lefdef.dir/def_route_writer.cpp.o.d"
  "CMakeFiles/pao_lefdef.dir/def_writer.cpp.o"
  "CMakeFiles/pao_lefdef.dir/def_writer.cpp.o.d"
  "CMakeFiles/pao_lefdef.dir/lef_parser.cpp.o"
  "CMakeFiles/pao_lefdef.dir/lef_parser.cpp.o.d"
  "CMakeFiles/pao_lefdef.dir/lef_writer.cpp.o"
  "CMakeFiles/pao_lefdef.dir/lef_writer.cpp.o.d"
  "CMakeFiles/pao_lefdef.dir/lexer.cpp.o"
  "CMakeFiles/pao_lefdef.dir/lexer.cpp.o.d"
  "libpao_lefdef.a"
  "libpao_lefdef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pao_lefdef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
