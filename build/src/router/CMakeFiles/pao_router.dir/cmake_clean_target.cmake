file(REMOVE_RECURSE
  "libpao_router.a"
)
