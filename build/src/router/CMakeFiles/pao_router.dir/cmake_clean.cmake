file(REMOVE_RECURSE
  "CMakeFiles/pao_router.dir/access_source.cpp.o"
  "CMakeFiles/pao_router.dir/access_source.cpp.o.d"
  "CMakeFiles/pao_router.dir/grid.cpp.o"
  "CMakeFiles/pao_router.dir/grid.cpp.o.d"
  "CMakeFiles/pao_router.dir/router.cpp.o"
  "CMakeFiles/pao_router.dir/router.cpp.o.d"
  "libpao_router.a"
  "libpao_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pao_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
