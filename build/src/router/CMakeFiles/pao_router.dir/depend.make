# Empty dependencies file for pao_router.
# This may be replaced when dependencies are built.
