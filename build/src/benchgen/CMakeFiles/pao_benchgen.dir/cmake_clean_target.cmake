file(REMOVE_RECURSE
  "libpao_benchgen.a"
)
