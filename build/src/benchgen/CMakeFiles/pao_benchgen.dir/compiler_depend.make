# Empty compiler generated dependencies file for pao_benchgen.
# This may be replaced when dependencies are built.
