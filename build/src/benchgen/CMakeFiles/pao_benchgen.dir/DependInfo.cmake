
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchgen/lib_gen.cpp" "src/benchgen/CMakeFiles/pao_benchgen.dir/lib_gen.cpp.o" "gcc" "src/benchgen/CMakeFiles/pao_benchgen.dir/lib_gen.cpp.o.d"
  "/root/repo/src/benchgen/tech_gen.cpp" "src/benchgen/CMakeFiles/pao_benchgen.dir/tech_gen.cpp.o" "gcc" "src/benchgen/CMakeFiles/pao_benchgen.dir/tech_gen.cpp.o.d"
  "/root/repo/src/benchgen/testcase.cpp" "src/benchgen/CMakeFiles/pao_benchgen.dir/testcase.cpp.o" "gcc" "src/benchgen/CMakeFiles/pao_benchgen.dir/testcase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/pao_db.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pao_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
