file(REMOVE_RECURSE
  "CMakeFiles/pao_benchgen.dir/lib_gen.cpp.o"
  "CMakeFiles/pao_benchgen.dir/lib_gen.cpp.o.d"
  "CMakeFiles/pao_benchgen.dir/tech_gen.cpp.o"
  "CMakeFiles/pao_benchgen.dir/tech_gen.cpp.o.d"
  "CMakeFiles/pao_benchgen.dir/testcase.cpp.o"
  "CMakeFiles/pao_benchgen.dir/testcase.cpp.o.d"
  "libpao_benchgen.a"
  "libpao_benchgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pao_benchgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
