file(REMOVE_RECURSE
  "libpao_db.a"
)
