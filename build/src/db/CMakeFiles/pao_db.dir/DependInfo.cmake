
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/design.cpp" "src/db/CMakeFiles/pao_db.dir/design.cpp.o" "gcc" "src/db/CMakeFiles/pao_db.dir/design.cpp.o.d"
  "/root/repo/src/db/legality.cpp" "src/db/CMakeFiles/pao_db.dir/legality.cpp.o" "gcc" "src/db/CMakeFiles/pao_db.dir/legality.cpp.o.d"
  "/root/repo/src/db/lib.cpp" "src/db/CMakeFiles/pao_db.dir/lib.cpp.o" "gcc" "src/db/CMakeFiles/pao_db.dir/lib.cpp.o.d"
  "/root/repo/src/db/tech.cpp" "src/db/CMakeFiles/pao_db.dir/tech.cpp.o" "gcc" "src/db/CMakeFiles/pao_db.dir/tech.cpp.o.d"
  "/root/repo/src/db/unique_inst.cpp" "src/db/CMakeFiles/pao_db.dir/unique_inst.cpp.o" "gcc" "src/db/CMakeFiles/pao_db.dir/unique_inst.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/pao_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
