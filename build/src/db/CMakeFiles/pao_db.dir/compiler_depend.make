# Empty compiler generated dependencies file for pao_db.
# This may be replaced when dependencies are built.
