file(REMOVE_RECURSE
  "CMakeFiles/pao_db.dir/design.cpp.o"
  "CMakeFiles/pao_db.dir/design.cpp.o.d"
  "CMakeFiles/pao_db.dir/legality.cpp.o"
  "CMakeFiles/pao_db.dir/legality.cpp.o.d"
  "CMakeFiles/pao_db.dir/lib.cpp.o"
  "CMakeFiles/pao_db.dir/lib.cpp.o.d"
  "CMakeFiles/pao_db.dir/tech.cpp.o"
  "CMakeFiles/pao_db.dir/tech.cpp.o.d"
  "CMakeFiles/pao_db.dir/unique_inst.cpp.o"
  "CMakeFiles/pao_db.dir/unique_inst.cpp.o.d"
  "libpao_db.a"
  "libpao_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pao_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
