file(REMOVE_RECURSE
  "CMakeFiles/pao_viz.dir/svg.cpp.o"
  "CMakeFiles/pao_viz.dir/svg.cpp.o.d"
  "libpao_viz.a"
  "libpao_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pao_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
