# Empty compiler generated dependencies file for pao_viz.
# This may be replaced when dependencies are built.
