file(REMOVE_RECURSE
  "libpao_viz.a"
)
