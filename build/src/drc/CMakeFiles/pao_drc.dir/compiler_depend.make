# Empty compiler generated dependencies file for pao_drc.
# This may be replaced when dependencies are built.
