file(REMOVE_RECURSE
  "CMakeFiles/pao_drc.dir/checks.cpp.o"
  "CMakeFiles/pao_drc.dir/checks.cpp.o.d"
  "CMakeFiles/pao_drc.dir/engine.cpp.o"
  "CMakeFiles/pao_drc.dir/engine.cpp.o.d"
  "CMakeFiles/pao_drc.dir/region_query.cpp.o"
  "CMakeFiles/pao_drc.dir/region_query.cpp.o.d"
  "CMakeFiles/pao_drc.dir/violation.cpp.o"
  "CMakeFiles/pao_drc.dir/violation.cpp.o.d"
  "libpao_drc.a"
  "libpao_drc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pao_drc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
