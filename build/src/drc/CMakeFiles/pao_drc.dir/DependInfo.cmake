
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drc/checks.cpp" "src/drc/CMakeFiles/pao_drc.dir/checks.cpp.o" "gcc" "src/drc/CMakeFiles/pao_drc.dir/checks.cpp.o.d"
  "/root/repo/src/drc/engine.cpp" "src/drc/CMakeFiles/pao_drc.dir/engine.cpp.o" "gcc" "src/drc/CMakeFiles/pao_drc.dir/engine.cpp.o.d"
  "/root/repo/src/drc/region_query.cpp" "src/drc/CMakeFiles/pao_drc.dir/region_query.cpp.o" "gcc" "src/drc/CMakeFiles/pao_drc.dir/region_query.cpp.o.d"
  "/root/repo/src/drc/violation.cpp" "src/drc/CMakeFiles/pao_drc.dir/violation.cpp.o" "gcc" "src/drc/CMakeFiles/pao_drc.dir/violation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/pao_db.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pao_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
