file(REMOVE_RECURSE
  "libpao_drc.a"
)
