file(REMOVE_RECURSE
  "CMakeFiles/pao_geom.dir/geom.cpp.o"
  "CMakeFiles/pao_geom.dir/geom.cpp.o.d"
  "CMakeFiles/pao_geom.dir/orient.cpp.o"
  "CMakeFiles/pao_geom.dir/orient.cpp.o.d"
  "CMakeFiles/pao_geom.dir/polygon.cpp.o"
  "CMakeFiles/pao_geom.dir/polygon.cpp.o.d"
  "libpao_geom.a"
  "libpao_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pao_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
