# Empty dependencies file for pao_geom.
# This may be replaced when dependencies are built.
