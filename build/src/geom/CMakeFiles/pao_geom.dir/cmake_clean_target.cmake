file(REMOVE_RECURSE
  "libpao_geom.a"
)
