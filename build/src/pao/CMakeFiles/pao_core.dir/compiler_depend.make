# Empty compiler generated dependencies file for pao_core.
# This may be replaced when dependencies are built.
