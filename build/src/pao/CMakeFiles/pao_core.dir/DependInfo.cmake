
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pao/access_cache.cpp" "src/pao/CMakeFiles/pao_core.dir/access_cache.cpp.o" "gcc" "src/pao/CMakeFiles/pao_core.dir/access_cache.cpp.o.d"
  "/root/repo/src/pao/ap_gen.cpp" "src/pao/CMakeFiles/pao_core.dir/ap_gen.cpp.o" "gcc" "src/pao/CMakeFiles/pao_core.dir/ap_gen.cpp.o.d"
  "/root/repo/src/pao/cluster_select.cpp" "src/pao/CMakeFiles/pao_core.dir/cluster_select.cpp.o" "gcc" "src/pao/CMakeFiles/pao_core.dir/cluster_select.cpp.o.d"
  "/root/repo/src/pao/evaluate.cpp" "src/pao/CMakeFiles/pao_core.dir/evaluate.cpp.o" "gcc" "src/pao/CMakeFiles/pao_core.dir/evaluate.cpp.o.d"
  "/root/repo/src/pao/inst_context.cpp" "src/pao/CMakeFiles/pao_core.dir/inst_context.cpp.o" "gcc" "src/pao/CMakeFiles/pao_core.dir/inst_context.cpp.o.d"
  "/root/repo/src/pao/legacy_ap.cpp" "src/pao/CMakeFiles/pao_core.dir/legacy_ap.cpp.o" "gcc" "src/pao/CMakeFiles/pao_core.dir/legacy_ap.cpp.o.d"
  "/root/repo/src/pao/oracle.cpp" "src/pao/CMakeFiles/pao_core.dir/oracle.cpp.o" "gcc" "src/pao/CMakeFiles/pao_core.dir/oracle.cpp.o.d"
  "/root/repo/src/pao/pattern_gen.cpp" "src/pao/CMakeFiles/pao_core.dir/pattern_gen.cpp.o" "gcc" "src/pao/CMakeFiles/pao_core.dir/pattern_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/drc/CMakeFiles/pao_drc.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/pao_db.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/pao_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
