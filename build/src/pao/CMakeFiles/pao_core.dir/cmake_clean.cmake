file(REMOVE_RECURSE
  "CMakeFiles/pao_core.dir/access_cache.cpp.o"
  "CMakeFiles/pao_core.dir/access_cache.cpp.o.d"
  "CMakeFiles/pao_core.dir/ap_gen.cpp.o"
  "CMakeFiles/pao_core.dir/ap_gen.cpp.o.d"
  "CMakeFiles/pao_core.dir/cluster_select.cpp.o"
  "CMakeFiles/pao_core.dir/cluster_select.cpp.o.d"
  "CMakeFiles/pao_core.dir/evaluate.cpp.o"
  "CMakeFiles/pao_core.dir/evaluate.cpp.o.d"
  "CMakeFiles/pao_core.dir/inst_context.cpp.o"
  "CMakeFiles/pao_core.dir/inst_context.cpp.o.d"
  "CMakeFiles/pao_core.dir/legacy_ap.cpp.o"
  "CMakeFiles/pao_core.dir/legacy_ap.cpp.o.d"
  "CMakeFiles/pao_core.dir/oracle.cpp.o"
  "CMakeFiles/pao_core.dir/oracle.cpp.o.d"
  "CMakeFiles/pao_core.dir/pattern_gen.cpp.o"
  "CMakeFiles/pao_core.dir/pattern_gen.cpp.o.d"
  "libpao_core.a"
  "libpao_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pao_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
