file(REMOVE_RECURSE
  "libpao_core.a"
)
