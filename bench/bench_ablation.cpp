// Ablation study over the design choices DESIGN.md calls out:
//   - k, the per-pin access point budget (Algorithm 1 early termination),
//   - alpha, the pin-ordering weight (Sec. III-B),
//   - history-aware edge cost on/off (Algorithm 3 lines 9-10),
//   - boundary-pins-only vs all-pins Step-3 checking.
// Metrics: total APs, failed pins, pattern-stage pair checks, runtime.
#include <cstdio>

#include "bench_common.hpp"
#include "benchgen/testcase.hpp"
#include "pao/evaluate.hpp"

using namespace pao;

namespace {

void runRow(const benchgen::Testcase& tc, const char* label,
            core::OracleConfig cfg, obs::Json& rows) {
  core::PinAccessOracle oracle(*tc.design, cfg);
  const core::OracleResult res = oracle.run();
  const core::DirtyApStats dirty = core::countDirtyAps(*tc.design, res);
  const core::FailedPinStats failed = core::countFailedPins(*tc.design, res);
  std::size_t validated = 0;
  std::size_t patterns = 0;
  for (const core::ClassAccess& ca : res.classes) {
    for (const core::AccessPattern& p : ca.patterns) {
      ++patterns;
      if (p.validated) ++validated;
    }
  }
  std::printf("%-24s | %8zu | %7zu | %8zu/%-8zu | %7.2f\n", label,
              dirty.totalAps, failed.failedPins, validated, patterns,
              res.totalSeconds());
  std::fflush(stdout);
  rows.push(obs::Json::object()
                .set("configuration", obs::Json(label))
                .set("totalAps", obs::Json(dirty.totalAps))
                .set("failedPins", obs::Json(failed.failedPins))
                .set("validatedPatterns", obs::Json(validated))
                .set("patterns", obs::Json(patterns))
                .set("totalSeconds", obs::Json(res.totalSeconds())));
}

}  // namespace

int main() {
  const double scale = bench::benchScale(0.02);
  bench::BenchReport report("bench_ablation");
  obs::Json rows = obs::Json::array();
  const benchgen::Testcase tc =
      benchgen::generate(benchgen::ispd18Suite()[4], scale);  // test5 (32nm)
  std::printf("Ablations on %s (scale %.3g, %zu insts)\n",
              tc.spec.name.c_str(), scale, tc.design->instances.size());
  std::printf("%-24s | %8s | %7s | %17s | %7s\n", "configuration",
              "#APs", "#failed", "validated/patterns", "time(s)");
  bench::printRule(80);

  for (const int k : {1, 2, 3, 5, 10}) {
    core::OracleConfig cfg = core::withBcaConfig();
    cfg.apGen.k = k;
    char label[64];
    std::snprintf(label, sizeof(label), "k = %d", k);
    runRow(tc, label, cfg, rows);
  }
  bench::printRule(80);

  for (const double alpha : {0.0, 0.3, 1.0}) {
    core::OracleConfig cfg = core::withBcaConfig();
    cfg.patternGen.alpha = alpha;
    char label[64];
    std::snprintf(label, sizeof(label), "alpha = %.1f", alpha);
    runRow(tc, label, cfg, rows);
  }
  bench::printRule(80);

  {
    core::OracleConfig cfg = core::withBcaConfig();
    cfg.patternGen.historyAware = false;
    runRow(tc, "history-aware OFF", cfg, rows);
    cfg.patternGen.historyAware = true;
    runRow(tc, "history-aware ON", cfg, rows);
  }
  bench::printRule(80);

  {
    core::OracleConfig cfg = core::withBcaConfig();
    cfg.clusterSelect.boundaryPinsOnly = false;
    runRow(tc, "step3: all pin pairs", cfg, rows);
    cfg.clusterSelect.boundaryPinsOnly = true;
    runRow(tc, "step3: boundary only", cfg, rows);
  }
  report.bench().set("rows", std::move(rows));
  return report.write() ? 0 : 1;
}
