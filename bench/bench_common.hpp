// Shared helpers for the experiment-reproduction binaries: scale handling,
// fixed-width table printing, and machine-readable result emission.
//
// Every bench accepts the PAO_SCALE environment variable (default 0.03):
// testcase cell/net/IO counts are multiplied by it so the full suite stays
// laptop-sized. Unique-instance structure is offset-driven and survives
// scaling; see EXPERIMENTS.md for the scale used in the recorded runs.
//
// Alongside its human-readable table, every bench writes a
// BENCH_<name>.json document (schema pao-report/1, see obs/report.hpp) into
// $PAO_BENCH_REPORT_DIR — or the working directory when unset — carrying
// the environment (hwThreads, gitSha), the scale preset, per-bench summary
// values, and a metrics-registry snapshot of the run.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/profile.hpp"
#include "obs/report.hpp"

namespace pao::bench {

inline double benchScale(double fallback = 0.03) {
  const char* env = std::getenv("PAO_SCALE");
  if (env == nullptr) return fallback;
  const double v = std::atof(env);
  return v > 0 ? v : fallback;
}

/// Which testcases to run: "all" (default) or a comma-less index list via
/// PAO_TESTCASES, e.g. "0,4,6".
inline bool testcaseSelected(int idx) {
  const char* env = std::getenv("PAO_TESTCASES");
  if (env == nullptr) return true;
  const std::string s(env);
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok = s.substr(pos, comma - pos);
    if (!tok.empty() && std::atoi(tok.c_str()) == idx) return true;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return false;
}

inline void printRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Per-bench report writer. Construct with the binary's name, fill the
/// "bench" section with summary values as the run produces them, and call
/// write() last — it captures the metrics registry and emits
/// BENCH_<name>.json.
class BenchReport {
 public:
  explicit BenchReport(const std::string& name) : name_(name), report_(name) {
    report_.section("bench").set("scale", obs::Json(benchScale()));
  }

  /// The "bench" section, for per-bench result rows and summaries.
  obs::Json& bench() { return report_.section("bench"); }
  obs::RunReport& report() { return report_; }

  /// Attaches a job-graph profile as the report's "profile" section,
  /// upgrading the schema to pao-report/2 (validateReport rejects the
  /// section under v1). No-op on an empty profile, so callers can pass
  /// Session::lastGraphProfile() unconditionally; repeated calls keep the
  /// latest graph. Callers gate on PAO_OBS_ENABLED — without the capture
  /// in JobGraph::run every profile is empty and this never fires.
  void attachProfile(const obs::GraphProfile& profile) {
    if (profile.empty()) return;
    report_.doc().set("schema", obs::Json(obs::kReportSchemaV2));
    report_.section("profile") = obs::profileSectionJson(profile);
  }

  /// Captures metrics and writes BENCH_<name>.json. Returns false (with a
  /// diagnostic on stderr) on I/O error.
  bool write() {
    report_.captureMetrics();
    std::string path = "BENCH_" + name_ + ".json";
    if (const char* dir = std::getenv("PAO_BENCH_REPORT_DIR")) {
      path = std::string(dir) + "/" + path;
    }
    std::string error;
    if (!report_.writeFile(path, &error)) {
      std::fprintf(stderr, "bench report: %s\n", error.c_str());
      return false;
    }
    std::fprintf(stderr, "bench report: wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  obs::RunReport report_;
};

}  // namespace pao::bench
