// Shared helpers for the experiment-reproduction binaries: scale handling
// and fixed-width table printing.
//
// Every bench accepts the PAO_SCALE environment variable (default 0.03):
// testcase cell/net/IO counts are multiplied by it so the full suite stays
// laptop-sized. Unique-instance structure is offset-driven and survives
// scaling; see EXPERIMENTS.md for the scale used in the recorded runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pao::bench {

inline double benchScale(double fallback = 0.03) {
  const char* env = std::getenv("PAO_SCALE");
  if (env == nullptr) return fallback;
  const double v = std::atof(env);
  return v > 0 ? v : fallback;
}

/// Which testcases to run: "all" (default) or a comma-less index list via
/// PAO_TESTCASES, e.g. "0,4,6".
inline bool testcaseSelected(int idx) {
  const char* env = std::getenv("PAO_TESTCASES");
  if (env == nullptr) return true;
  const std::string s(env);
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok = s.substr(pos, comma - pos);
    if (!tok.empty() && std::atoi(tok.c_str()) == idx) return true;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return false;
}

inline void printRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace pao::bench
