// Scale bench (ROADMAP item 3): stream-generates a huge-preset DEF to
// disk, ingests it back through the chunked parallel parser, builds the
// unique-instance index serially and sharded, then runs a full analyze.
// BENCH_scale.json (schema pao-report/2) records the throughput figures —
// MB/s, insts/s — index-build times, analyze wall time and peak RSS, plus
// a validated "ingest" section (report_check ingest gates it in CI).
//
// Self-check (exit 1 on failure):
//   * streamed and legacy parses of a small huge-preset DEF agree on
//     db::designFingerprint,
//   * sharded extraction at 1, 4 and hardware threads is identical to the
//     serial extraction (class indices and members included),
//   * DEF throughput and peak RSS are nonzero.
//
// PAO_SCALE defaults to 1.0 here (~1.5M instances, ~150MB of DEF) to match
// the acceptance run; the ctest smoke leg runs at PAO_SCALE=0.01.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "benchgen/huge.hpp"
#include "db/fingerprint.hpp"
#include "db/unique_inst.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/lef_writer.hpp"
#include "lefdef/stream.hpp"
#include "pao/report_json.hpp"
#include "pao/session.hpp"
#include "util/cpu_time.hpp"

using namespace pao;

namespace {

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool sameExtraction(const db::UniqueInstances& a,
                    const db::UniqueInstances& b) {
  if (a.classOf != b.classOf) return false;
  if (a.classes.size() != b.classes.size()) return false;
  for (std::size_t i = 0; i < a.classes.size(); ++i) {
    if (a.classes[i].representative != b.classes[i].representative ||
        a.classes[i].members != b.classes[i].members) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const double scale = bench::benchScale(1.0);
  bench::BenchReport report("scale");
  const benchgen::HugeSpec spec = benchgen::hugeSpec();
  const benchgen::HugeTechLib tl = benchgen::makeHugeTechLib(spec);

  std::string dir = ".";
  if (const char* d = std::getenv("PAO_BENCH_REPORT_DIR")) dir = d;
  const std::string lefPath = dir + "/pao_scale_huge.lef";
  const std::string defPath = dir + "/pao_scale_huge.def";

  // Phase 1: stream-generate to disk (the design is never materialized).
  const auto tGen = std::chrono::steady_clock::now();
  benchgen::HugeCounts counts;
  {
    std::ofstream lef(lefPath);
    lef << lefdef::writeLef(*tl.tech, *tl.lib);
    std::ofstream def(defPath);
    counts = benchgen::writeHugeDef(spec, scale, *tl.tech, *tl.lib, def);
    if (!lef || !def) {
      std::fprintf(stderr, "cannot write %s / %s\n", lefPath.c_str(),
                   defPath.c_str());
      return 1;
    }
  }
  const double genSeconds = secondsSince(tGen);
  std::printf("Scale bench on %s (scale %.3g)\n", spec.name.c_str(), scale);
  std::printf("%-34s | %12s\n", "quantity", "value");
  bench::printRule(50);
  std::printf("%-34s | %12zu\n", "instances generated", counts.cells);
  std::printf("%-34s | %12zu\n", "nets generated", counts.nets);
  std::printf("%-34s | %12.2f\n", "generate seconds", genSeconds);

  // Phase 2: streamed ingest (mmap + chunked parallel sections).
  db::Tech tech;
  db::Library lib;
  lefdef::ParseOptions lefOpts;
  lefOpts.file = lefPath;
  lefdef::IngestStats lefStats;
  lefdef::parseLefFile(lefPath, tech, lib, lefOpts, &lefStats);
  db::Design design;
  design.tech = &tech;
  design.lib = &lib;
  lefdef::StreamOptions sopts;
  sopts.parse.file = defPath;
  sopts.numThreads = 0;
  lefdef::IngestStats stats;
  lefdef::parseDefFile(defPath, design, sopts, &stats);
  const double parseSecs = stats.parseSeconds > 0 ? stats.parseSeconds : 1e-9;
  const double mbPerSec =
      static_cast<double>(stats.bytes) / (1024.0 * 1024.0) / parseSecs;
  const double instsPerSec =
      static_cast<double>(stats.components) / parseSecs;
  std::printf("%-34s | %12.1f\n", "DEF MB",
              static_cast<double>(stats.bytes) / (1024.0 * 1024.0));
  std::printf("%-34s | %12zu\n", "chunks", stats.chunks);
  std::printf("%-34s | %12s\n", "mmap", stats.mapped ? "yes" : "no");
  std::printf("%-34s | %12.2f\n", "parse seconds", stats.parseSeconds);
  std::printf("%-34s | %12.1f\n", "MB/s", mbPerSec);
  std::printf("%-34s | %12.0f\n", "insts/s", instsPerSec);

  // Phase 3: unique-instance index, serial vs sharded.
  const auto tSerial = std::chrono::steady_clock::now();
  const db::UniqueInstances serial = db::extractUniqueInstances(design);
  const double serialSeconds = secondsSince(tSerial);
  const auto tSharded = std::chrono::steady_clock::now();
  const db::UniqueInstances sharded = db::extractUniqueInstances(design, 0);
  const double shardedSeconds = secondsSince(tSharded);
  std::printf("%-34s | %12zu\n", "unique classes", serial.classes.size());
  std::printf("%-34s | %12.2f\n", "index build s (serial)", serialSeconds);
  std::printf("%-34s | %12.2f\n", "index build s (sharded)", shardedSeconds);

  // Phase 4: full analyze through the session front end.
  core::OracleConfig cfg;
  cfg.numThreads = 0;
  const core::OracleSession session(
      static_cast<const db::Design&>(design), cfg);
  const core::OracleResult res = session.snapshot();
  const std::uint64_t peakRss = util::peakRssBytes();
  std::printf("%-34s | %12.2f\n", "analyze wall seconds", res.wallSeconds);
  std::printf("%-34s | %12.1f\n", "peak RSS MB",
              static_cast<double>(peakRss) / (1024.0 * 1024.0));
  std::fflush(stdout);

  core::IngestReport ir;
  ir.lefBytes = lefStats.bytes;
  ir.defBytes = stats.bytes;
  ir.chunks = stats.chunks;
  ir.components = stats.components;
  ir.nets = stats.nets;
  ir.mapped = stats.mapped;
  ir.legacyFallback = stats.legacyFallback;
  ir.parseSeconds = stats.parseSeconds;
  ir.peakRssBytes = peakRss;
  report.report().doc().set("schema", obs::Json(obs::kReportSchemaV2));
  report.report().section("ingest") = core::ingestSectionJson(ir);
  report.bench()
      .set("instances", obs::Json(counts.cells))
      .set("nets", obs::Json(counts.nets))
      .set("rows", obs::Json(counts.rows))
      .set("defBytes", obs::Json(stats.bytes))
      .set("chunks", obs::Json(stats.chunks))
      .set("mapped", obs::Json(stats.mapped))
      .set("generateSeconds", obs::Json(genSeconds))
      .set("parseSeconds", obs::Json(stats.parseSeconds))
      .set("mbPerSec", obs::Json(mbPerSec))
      .set("instsPerSec", obs::Json(instsPerSec))
      .set("indexSerialSeconds", obs::Json(serialSeconds))
      .set("indexShardedSeconds", obs::Json(shardedSeconds))
      .set("uniqueClasses", obs::Json(serial.classes.size()))
      .set("analyzeWallSeconds", obs::Json(res.wallSeconds))
      .set("peakRssBytes",
           obs::Json(static_cast<long long>(peakRss)));
  report.write();

  bool ok = true;

  // Self-check 1: streamed == legacy on a small huge-preset DEF, compared
  // by content fingerprint (equal fingerprints => identical writeDef text).
  {
    const double smallScale =
        std::min(scale, 5000.0 / static_cast<double>(spec.numCells));
    std::ostringstream small;
    benchgen::writeHugeDef(spec, smallScale, *tl.tech, *tl.lib, small);
    const std::string text = small.str();
    db::Design legacy;
    legacy.tech = &tech;
    legacy.lib = &lib;
    lefdef::parseDef(text, legacy, lefdef::ParseOptions{});
    db::Design streamed;
    streamed.tech = &tech;
    streamed.lib = &lib;
    lefdef::StreamOptions so;
    so.chunkBytes = 1 << 14;
    lefdef::parseDefStream(text, streamed, so);
    if (db::designFingerprint(legacy) != db::designFingerprint(streamed)) {
      std::fprintf(stderr,
                   "selfcheck FAILED: streamed parse fingerprint differs "
                   "from legacy parse\n");
      ok = false;
    }
  }

  // Self-check 2: sharded extraction is invariant across thread counts and
  // identical to the serial result.
  for (const int threads : {1, 4, 0}) {
    if (!sameExtraction(serial, threads == 0
                                    ? sharded
                                    : db::extractUniqueInstances(design,
                                                                 threads))) {
      std::fprintf(stderr,
                   "selfcheck FAILED: sharded extraction at %d thread(s) "
                   "differs from serial\n",
                   threads);
      ok = false;
    }
  }

  // Self-check 3: the figures the acceptance run records must be real.
  if (!(mbPerSec > 0) || !(instsPerSec > 0)) {
    std::fprintf(stderr, "selfcheck FAILED: zero ingest throughput\n");
    ok = false;
  }
  if (peakRss == 0) {
    std::fprintf(stderr, "selfcheck FAILED: peak RSS unavailable\n");
    ok = false;
  }

  std::remove(lefPath.c_str());
  std::remove(defPath.c_str());
  if (ok) std::fprintf(stderr, "selfcheck OK\n");
  return ok ? 0 : 1;
}
