// Google-benchmark microbenchmarks for the library's hot paths: geometry
// kernels, DRC queries, access point generation, pattern DP and cluster
// selection.
#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_common.hpp"
#include "benchgen/testcase.hpp"
#include "db/unique_inst.hpp"
#include "drc/engine.hpp"
#include "geom/polygon.hpp"
#include "pao/ap_gen.hpp"
#include "pao/cluster_select.hpp"
#include "pao/evaluate.hpp"
#include "pao/pattern_gen.hpp"
#include "util/executor.hpp"

using namespace pao;

namespace {

/// A shared small testcase; built once.
const benchgen::Testcase& testcase() {
  static const benchgen::Testcase tc =
      benchgen::generate(benchgen::ispd18Suite()[0], 0.01);
  return tc;
}

void BM_PolygonUnionBoundary(benchmark::State& state) {
  std::vector<geom::Rect> rects;
  for (int i = 0; i < state.range(0); ++i) {
    rects.emplace_back(i * 70, (i % 5) * 50, i * 70 + 120, (i % 5) * 50 + 90);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::unionBoundary(rects));
  }
}
BENCHMARK(BM_PolygonUnionBoundary)->Arg(4)->Arg(16)->Arg(64);

void BM_MaxRects(benchmark::State& state) {
  std::vector<geom::Rect> rects;
  for (int i = 0; i < state.range(0); ++i) {
    rects.emplace_back(i * 70, (i % 5) * 50, i * 70 + 120, (i % 5) * 50 + 90);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::maxRects(rects));
  }
}
BENCHMARK(BM_MaxRects)->Arg(4)->Arg(16);

void BM_GridIndexQuery(benchmark::State& state) {
  geom::GridIndex<int> idx;
  for (int i = 0; i < 10000; ++i) {
    idx.insert({i * 37 % 50000, i * 91 % 50000, i * 37 % 50000 + 400,
                i * 91 % 50000 + 400},
               i);
  }
  geom::Coord at = 0;
  for (auto _ : state) {
    at = (at + 977) % 50000;
    benchmark::DoNotOptimize(idx.queryValues({at, at, at + 1200, at + 1200}));
  }
}
BENCHMARK(BM_GridIndexQuery);

void BM_CheckVia(benchmark::State& state) {
  const benchgen::Testcase& tc = testcase();
  const auto unique = db::extractUniqueInstances(*tc.design);
  const core::InstContext ctx(*tc.design, unique.classes[0]);
  const db::ViaDef* via = tc.tech->viaDefsFromLayer(0).front();
  const int pin = ctx.signalPins()[0];
  const geom::Rect bbox =
      ctx.pinShapes(pin, ctx.pinLayers(pin).front()).front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctx.engine().checkVia(*via, bbox.center(), ctx.pinNet(pin)));
  }
}
BENCHMARK(BM_CheckVia);

void BM_AccessPointGeneration(benchmark::State& state) {
  const benchgen::Testcase& tc = testcase();
  const auto unique = db::extractUniqueInstances(*tc.design);
  const core::InstContext ctx(*tc.design, unique.classes[0]);
  core::ApGenConfig cfg;
  cfg.k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::AccessPointGenerator gen(ctx, cfg);
    benchmark::DoNotOptimize(gen.generateAll());
  }
}
BENCHMARK(BM_AccessPointGeneration)->Arg(1)->Arg(3)->Arg(10);

void BM_PatternGeneration(benchmark::State& state) {
  const benchgen::Testcase& tc = testcase();
  const auto unique = db::extractUniqueInstances(*tc.design);
  const core::InstContext ctx(*tc.design, unique.classes[0]);
  const auto aps = core::AccessPointGenerator(ctx).generateAll();
  for (auto _ : state) {
    core::PatternGenerator gen(ctx, aps);
    benchmark::DoNotOptimize(gen.run());
  }
}
BENCHMARK(BM_PatternGeneration);

void BM_FullOracle(benchmark::State& state) {
  const benchgen::Testcase& tc = testcase();
  for (auto _ : state) {
    core::PinAccessOracle oracle(*tc.design, core::withBcaConfig());
    benchmark::DoNotOptimize(oracle.run());
  }
}
BENCHMARK(BM_FullOracle)->Unit(benchmark::kMillisecond);

void BM_UniqueInstanceExtraction(benchmark::State& state) {
  const benchgen::Testcase& tc = testcase();
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::extractUniqueInstances(*tc.design));
  }
}
BENCHMARK(BM_UniqueInstanceExtraction);

/// The mixed preset's full fixed layout loaded into a DRC engine, plus a
/// blanket of routed wires so every shard kind (pairwise spacing, cut
/// spacing, per-net components) has real work. Built once.
const drc::DrcEngine& mixedLayoutEngine() {
  static const auto* holder = [] {
    struct Holder {
      benchgen::Testcase tc;
      std::unique_ptr<drc::DrcEngine> engine;
    };
    auto* h = new Holder{benchgen::generate(benchgen::mixedSpec(), 0.05), {}};
    const db::Design& design = *h->tc.design;
    h->engine = std::make_unique<drc::DrcEngine>(*design.tech);
    drc::RegionQuery& region = h->engine->region();
    int syntheticNet = 0;
    for (const db::Instance& inst : design.instances) {
      const geom::Transform xf = inst.transform();
      for (const db::Pin& pin : inst.master->pins) {
        const int net = syntheticNet++;
        for (const db::PinShape& sh : pin.shapes) {
          region.add({xf.apply(sh.rect), sh.layer, net,
                      drc::ShapeKind::kPin, true});
        }
      }
      for (const db::Obstruction& o : inst.master->obstructions) {
        region.add({xf.apply(o.rect), o.layer, drc::Shape::kObsNet,
                    drc::ShapeKind::kObstruction, true});
      }
    }
    // Routed wires striping the die on every routing layer; the deliberate
    // irregular pitch plants occasional spacing/min-area violations.
    const geom::Rect die = design.dieArea;
    for (const db::Layer& l : design.tech->layers()) {
      if (l.type != db::LayerType::kRouting) continue;
      const geom::Coord pitch = l.pitch * 3 + (l.index % 3) * 7;
      int wire = 0;
      if (l.dir == db::Dir::kHorizontal) {
        for (geom::Coord y = die.ylo + pitch; y < die.yhi; y += pitch) {
          region.add({{die.xlo, y, die.xhi, y + l.width}, l.index,
                      1000000 + wire++, drc::ShapeKind::kWire, false});
        }
      } else {
        for (geom::Coord x = die.xlo + pitch; x < die.xhi; x += pitch) {
          region.add({{x, die.ylo, x + l.width, die.yhi}, l.index,
                      1000000 + wire++, drc::ShapeKind::kWire, false});
        }
      }
    }
    return h;
  }();
  return *holder->engine;
}

/// checkAll batch-check throughput at various thread counts over the same
/// layout — the speedup column of the PR-1 acceptance criteria (needs a
/// multi-core host to show scaling; threads cap at hardware concurrency).
void BM_CheckAllMixed(benchmark::State& state) {
  const drc::DrcEngine& engine = mixedLayoutEngine();
  const int threads = static_cast<int>(state.range(0));
  std::size_t violations = 0;
  for (auto _ : state) {
    violations = engine.checkAll(threads).size();
    benchmark::DoNotOptimize(violations);
  }
  state.counters["violations"] = static_cast<double>(violations);
  state.counters["hw_threads"] =
      static_cast<double>(util::resolveThreads(0));
}
BENCHMARK(BM_CheckAllMixed)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Raw executor overhead/scaling on uneven CPU-bound tasks.
void BM_ParallelForUneven(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::atomic<long long> sum{0};
    util::parallelFor(
        256,
        [&](std::size_t i) {
          long long acc = 0;
          const long long iters = 1000 + (i % 17) * 4000;
          for (long long k = 0; k < iters; ++k) acc += (acc ^ k) % 977;
          sum += acc;
        },
        threads);
    benchmark::DoNotOptimize(sum.load());
  }
}
BENCHMARK(BM_ParallelForUneven)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

// Expanded BENCHMARK_MAIN() so the run can finish by writing the
// BENCH_bench_micro.json report (env + metrics snapshot; google-benchmark
// keeps its own per-benchmark numbers on stdout / --benchmark_out).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  pao::bench::BenchReport report("bench_micro");
  report.bench().set("framework", pao::obs::Json("google-benchmark"));
  return report.write() ? 0 : 1;
}
