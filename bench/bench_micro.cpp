// Google-benchmark microbenchmarks for the library's hot paths: geometry
// kernels, DRC queries, access point generation, pattern DP and cluster
// selection.
#include <benchmark/benchmark.h>

#include "benchgen/testcase.hpp"
#include "db/unique_inst.hpp"
#include "geom/polygon.hpp"
#include "pao/ap_gen.hpp"
#include "pao/cluster_select.hpp"
#include "pao/evaluate.hpp"
#include "pao/pattern_gen.hpp"

using namespace pao;

namespace {

/// A shared small testcase; built once.
const benchgen::Testcase& testcase() {
  static const benchgen::Testcase tc =
      benchgen::generate(benchgen::ispd18Suite()[0], 0.01);
  return tc;
}

void BM_PolygonUnionBoundary(benchmark::State& state) {
  std::vector<geom::Rect> rects;
  for (int i = 0; i < state.range(0); ++i) {
    rects.emplace_back(i * 70, (i % 5) * 50, i * 70 + 120, (i % 5) * 50 + 90);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::unionBoundary(rects));
  }
}
BENCHMARK(BM_PolygonUnionBoundary)->Arg(4)->Arg(16)->Arg(64);

void BM_MaxRects(benchmark::State& state) {
  std::vector<geom::Rect> rects;
  for (int i = 0; i < state.range(0); ++i) {
    rects.emplace_back(i * 70, (i % 5) * 50, i * 70 + 120, (i % 5) * 50 + 90);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::maxRects(rects));
  }
}
BENCHMARK(BM_MaxRects)->Arg(4)->Arg(16);

void BM_GridIndexQuery(benchmark::State& state) {
  geom::GridIndex<int> idx;
  for (int i = 0; i < 10000; ++i) {
    idx.insert({i * 37 % 50000, i * 91 % 50000, i * 37 % 50000 + 400,
                i * 91 % 50000 + 400},
               i);
  }
  geom::Coord at = 0;
  for (auto _ : state) {
    at = (at + 977) % 50000;
    benchmark::DoNotOptimize(idx.queryValues({at, at, at + 1200, at + 1200}));
  }
}
BENCHMARK(BM_GridIndexQuery);

void BM_CheckVia(benchmark::State& state) {
  const benchgen::Testcase& tc = testcase();
  const auto unique = db::extractUniqueInstances(*tc.design);
  const core::InstContext ctx(*tc.design, unique.classes[0]);
  const db::ViaDef* via = tc.tech->viaDefsFromLayer(0).front();
  const int pin = ctx.signalPins()[0];
  const geom::Rect bbox =
      ctx.pinShapes(pin, ctx.pinLayers(pin).front()).front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctx.engine().checkVia(*via, bbox.center(), ctx.pinNet(pin)));
  }
}
BENCHMARK(BM_CheckVia);

void BM_AccessPointGeneration(benchmark::State& state) {
  const benchgen::Testcase& tc = testcase();
  const auto unique = db::extractUniqueInstances(*tc.design);
  const core::InstContext ctx(*tc.design, unique.classes[0]);
  core::ApGenConfig cfg;
  cfg.k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::AccessPointGenerator gen(ctx, cfg);
    benchmark::DoNotOptimize(gen.generateAll());
  }
}
BENCHMARK(BM_AccessPointGeneration)->Arg(1)->Arg(3)->Arg(10);

void BM_PatternGeneration(benchmark::State& state) {
  const benchgen::Testcase& tc = testcase();
  const auto unique = db::extractUniqueInstances(*tc.design);
  const core::InstContext ctx(*tc.design, unique.classes[0]);
  const auto aps = core::AccessPointGenerator(ctx).generateAll();
  for (auto _ : state) {
    core::PatternGenerator gen(ctx, aps);
    benchmark::DoNotOptimize(gen.run());
  }
}
BENCHMARK(BM_PatternGeneration);

void BM_FullOracle(benchmark::State& state) {
  const benchgen::Testcase& tc = testcase();
  for (auto _ : state) {
    core::PinAccessOracle oracle(*tc.design, core::withBcaConfig());
    benchmark::DoNotOptimize(oracle.run());
  }
}
BENCHMARK(BM_FullOracle)->Unit(benchmark::kMillisecond);

void BM_UniqueInstanceExtraction(benchmark::State& state) {
  const benchgen::Testcase& tc = testcase();
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::extractUniqueInstances(*tc.design));
  }
}
BENCHMARK(BM_UniqueInstanceExtraction);

}  // namespace

BENCHMARK_MAIN();
