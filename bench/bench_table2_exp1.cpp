// Experiment 1 (Table II) reproduction: quality of access points for all
// unique instance pins, without intra-/inter-cell compatibility — original
// TritonRoute-style baseline (TrRte) vs our PAAF. Reports total #APs,
// #dirty APs (points whose primary via is NOT DRC-clean against the
// intra-cell context) and the Step-1 runtime.
#include <cstdio>

#include "bench_common.hpp"
#include "benchgen/testcase.hpp"
#include "pao/evaluate.hpp"

int main() {
  using namespace pao;
  const double scale = bench::benchScale();
  bench::BenchReport report("bench_table2_exp1");
  obs::Json rows = obs::Json::array();

  std::printf("Table II — Experiment 1: unique-instance access point quality "
              "(scale %.3g)\n",
              scale);
  std::printf("%-14s %8s | %10s %10s | %9s %9s | %9s %9s\n", "Benchmark",
              "#Unique", "APs:TrRte", "APs:PAAF", "dirty:TrR", "dirty:PAA",
              "t(s):TrR", "t(s):PAA");
  bench::printRule(100);

  for (std::size_t i = 0; i < benchgen::ispd18Suite().size(); ++i) {
    if (!bench::testcaseSelected(static_cast<int>(i))) continue;
    const benchgen::TestcaseSpec spec = benchgen::ispd18Suite()[i];
    const benchgen::Testcase tc = benchgen::generate(spec, scale);

    core::PinAccessOracle legacy(*tc.design, core::legacyConfig());
    const core::OracleResult legacyRes = legacy.run();
    const core::DirtyApStats legacyDirty =
        core::countDirtyAps(*tc.design, legacyRes);

    // Step 1 only for PAAF: a single pattern keeps Steps 2-3 trivial so the
    // reported runtime isolates access point generation, as in the paper.
    core::OracleConfig paafCfg = core::withoutBcaConfig();
    core::PinAccessOracle paaf(*tc.design, paafCfg);
    const core::OracleResult paafRes = paaf.run();
    const core::DirtyApStats paafDirty =
        core::countDirtyAps(*tc.design, paafRes);

    std::printf("%-14s %8zu | %10zu %10zu | %9zu %9zu | %9.2f %9.2f\n",
                spec.name.c_str(), paafRes.unique.classes.size(),
                legacyDirty.totalAps, paafDirty.totalAps,
                legacyDirty.dirtyAps, paafDirty.dirtyAps,
                legacyRes.step1Seconds, paafRes.step1Seconds);
    std::fflush(stdout);
    rows.push(obs::Json::object()
                  .set("benchmark", obs::Json(spec.name))
                  .set("uniqueInstances",
                       obs::Json(paafRes.unique.classes.size()))
                  .set("apsLegacy", obs::Json(legacyDirty.totalAps))
                  .set("apsPaaf", obs::Json(paafDirty.totalAps))
                  .set("dirtyLegacy", obs::Json(legacyDirty.dirtyAps))
                  .set("dirtyPaaf", obs::Json(paafDirty.dirtyAps))
                  .set("step1SecondsLegacy", obs::Json(legacyRes.step1Seconds))
                  .set("step1SecondsPaaf", obs::Json(paafRes.step1Seconds)));
#if PAO_OBS_ENABLED
    // Last selected testcase's PAAF pipeline profile wins — one headroom
    // sample per report is enough for the CI digest.
    report.attachProfile(paaf.lastGraphProfile());
#endif
  }
  std::printf("\nPaper shape check: PAAF generates MORE access points, with "
              "ZERO dirty points,\nwhile the TrRte baseline emits dirty "
              "points on every testcase.\n");
  report.bench().set("rows", std::move(rows));
  return report.write() ? 0 : 1;
}
