// Experiment 3 reproduction: detailed routing of the ispd18_test5 analogue
// with three pin-access sources, comparing final-layout DRCs — the
// TritonRoute-with-PAAF vs Dr. CU 2.0 comparison of the paper (755 DRCs vs
// 2 on the real testbench). Our stand-ins:
//   TrRte  = legacy first-point access (v0.0.6.0 style),
//   Dr.CU  = greedy per-pin nearest access, no pattern compatibility,
//   PAAF   = cluster-selected access patterns.
// Reported: unconnected pins (no usable access), access-related DRCs (the
// paper's pin-access signal) and total DRCs.
#include <cstdio>

#include "bench_common.hpp"
#include "benchgen/testcase.hpp"
#include "pao/evaluate.hpp"
#include "router/router.hpp"

namespace {

void runTestcase(const pao::benchgen::TestcaseSpec& spec, double scale,
                 int ripupPasses, pao::obs::Json& outRows) {
  using namespace pao;
  const benchgen::Testcase tc = benchgen::generate(spec, scale);
  std::printf("\n%s (scale %.3g, %zu insts, %zu nets)\n", spec.name.c_str(),
              scale, tc.design->instances.size(), tc.design->nets.size());
  std::printf("%-8s | %7s %7s %9s %8s | %10s %9s %9s\n", "Access", "routed",
              "failed", "unconnPin", "relaxed", "accessDRC", "totalDRC",
              "time(s)");
  bench::printRule(88);

  struct ModeRow {
    const char* name;
    router::AccessMode mode;
  };
  const ModeRow rows[] = {
      {"TrRte", router::AccessMode::kFirstAp},
      {"Dr.CU*", router::AccessMode::kGreedyNearest},
      {"PAAF", router::AccessMode::kPattern},
  };
  for (const ModeRow& row : rows) {
    const core::OracleConfig cfg = row.mode == router::AccessMode::kFirstAp
                                       ? core::legacyConfig()
                                       : core::withBcaConfig();
    core::PinAccessOracle oracle(*tc.design, cfg);
    const core::OracleResult res = oracle.run();
    router::AccessSource access(*tc.design, res, row.mode);
    router::RouterConfig rc;
    rc.ripupPasses = ripupPasses;
    router::DetailedRouter rtr(*tc.design, access, rc);
    const router::RouteResult rr = rtr.run();
    std::printf("%-8s | %7zu %7zu %9zu %8zu | %10zu %9zu %9.2f\n", row.name,
                rr.stats.routedNets, rr.stats.failedNets,
                rr.stats.skippedTerms, rr.stats.relaxedRetries,
                rr.accessViolations, rr.violations.size(),
                rr.stats.seconds);
    std::fflush(stdout);
    outRows.push(obs::Json::object()
                  .set("benchmark", obs::Json(spec.name))
                  .set("access", obs::Json(row.name))
                  .set("routedNets", obs::Json(rr.stats.routedNets))
                  .set("failedNets", obs::Json(rr.stats.failedNets))
                  .set("unconnectedPins", obs::Json(rr.stats.skippedTerms))
                  .set("relaxedRetries", obs::Json(rr.stats.relaxedRetries))
                  .set("accessDrcs", obs::Json(rr.accessViolations))
                  .set("totalDrcs", obs::Json(rr.violations.size()))
                  .set("seconds", obs::Json(rr.stats.seconds)));
  }
}

}  // namespace

int main() {
  using namespace pao;
  const double scale = bench::benchScale(0.01);
  bench::BenchReport report("bench_exp3_routing");
  obs::Json rows = obs::Json::array();
  std::printf("Experiment 3 — final routed design quality by pin-access "
              "source\n");
  // test1 (45nm, routing-friendly): the access-quality signal is clean.
  runTestcase(benchgen::ispd18Suite()[0], 2 * scale, /*ripupPasses=*/5, rows);
  // test5 (32nm, the paper's showcase): denser; relaxed retries during
  // rip-up dominate runtime there, so fewer passes keep the suite fast.
  runTestcase(benchgen::ispd18Suite()[4], scale, /*ripupPasses=*/2, rows);
  std::printf("\n(*) greedy nearest-point proxy for the pattern-oblivious "
              "comparison router.\nPaper shape check: PAAF connects every "
              "pin (TrRte cannot) and has the fewest\naccess-related DRCs; "
              "pattern-oblivious access leaves unconnected pins and/or\n"
              "more access DRCs.\n");
  report.bench().set("rows", std::move(rows));
  return report.write() ? 0 : 1;
}
