// Experiment 3's preliminary 14nm study (Fig. 9): PAAF on a synthetic
// 14nm-like technology and an AES-scale design. The paper reports DRC-clean
// access for all 57K instance pins of a 20K-instance design in 9 seconds,
// with off-track access enabled automatically where needed.
#include <cstdio>

#include "bench_common.hpp"
#include "benchgen/testcase.hpp"
#include "pao/evaluate.hpp"

int main() {
  using namespace pao;
  const double scale = bench::benchScale(0.05);
  bench::BenchReport report("bench_exp3_14nm");
  const benchgen::Testcase tc = benchgen::generate(benchgen::aes14Spec(),
                                                   scale);

  std::printf("Experiment 3 (14nm study) — %s at scale %.3g\n",
              tc.spec.name.c_str(), scale);

  core::PinAccessOracle oracle(*tc.design, core::withBcaConfig());
  const core::OracleResult res = oracle.run();
  const core::DirtyApStats dirty = core::countDirtyAps(*tc.design, res);
  const core::FailedPinStats failed = core::countFailedPins(*tc.design, res);

  // Off-track share of chosen access points (Fig. 9's point: PAAF enables
  // off-track access automatically in 1D-constrained nodes).
  std::size_t chosen = 0;
  std::size_t offTrack = 0;
  for (int i = 0; i < static_cast<int>(tc.design->instances.size()); ++i) {
    const int cls = res.unique.classOf[i];
    if (cls < 0 || res.classes[cls].pinAps.empty()) continue;
    for (int pos = 0;
         pos < static_cast<int>(res.classes[cls].pinAps.size()); ++pos) {
      const auto ap = res.chosenAp(*tc.design, i, pos);
      if (!ap) continue;
      ++chosen;
      if (ap->ap->typeCost() > 0) ++offTrack;
    }
  }

  std::printf("  instances          : %zu\n", tc.design->instances.size());
  std::printf("  unique instances   : %zu\n", res.unique.classes.size());
  std::printf("  net-attached pins  : %zu\n", failed.totalPins);
  std::printf("  access points      : %zu (dirty: %zu)\n", dirty.totalAps,
              dirty.dirtyAps);
  std::printf("  failed pins        : %zu\n", failed.failedPins);
  std::printf("  chosen APs         : %zu (off-track: %zu = %.1f%%)\n",
              chosen, offTrack,
              chosen ? 100.0 * static_cast<double>(offTrack) /
                           static_cast<double>(chosen)
                     : 0.0);
  std::printf("  runtime            : %.2f s (steps: %.2f / %.2f / %.2f)\n",
              res.totalSeconds(), res.step1Seconds, res.step2Seconds,
              res.step3Seconds);
  std::printf("\nPaper shape check: DRC-clean access for all pins; off-track "
              "access is engaged\nautomatically by the coordinate-type "
              "ladder.\n");
  report.bench()
      .set("benchmark", obs::Json(tc.spec.name))
      .set("instances", obs::Json(tc.design->instances.size()))
      .set("uniqueInstances", obs::Json(res.unique.classes.size()))
      .set("totalPins", obs::Json(failed.totalPins))
      .set("totalAps", obs::Json(dirty.totalAps))
      .set("dirtyAps", obs::Json(dirty.dirtyAps))
      .set("failedPins", obs::Json(failed.failedPins))
      .set("chosenAps", obs::Json(chosen))
      .set("offTrackAps", obs::Json(offTrack))
      .set("totalSeconds", obs::Json(res.totalSeconds()));
#if PAO_OBS_ENABLED
  report.attachProfile(oracle.lastGraphProfile());
#endif
  return report.write() ? 0 : 1;
}
