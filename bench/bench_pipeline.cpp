// Pipeline-shape bench for the job-graph oracle (ROADMAP item 2): runs the
// mixed preset through OracleSession and reports
//   - the graph shape: node count, Step-3 DP nodes that started while
//     Steps 1-2 work was still pending (pipeline overlap), steal count,
//   - the memory layout win: heap allocation count per analyze with the
//     scratch arena on vs bypassed (same code path, Arena::setBypass).
//
// Self-check (exit 1 on failure): the overlap must be nonzero — the DFS
// schedule starts a ready cluster before unrelated classes finish, even
// serially — and the arena must cut heap allocations by >= 30%.
//
// The binary overrides global operator new/delete to count allocations;
// keep it leaf (no other benches link this TU).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench_common.hpp"
#include "benchgen/testcase.hpp"
#include "pao/session.hpp"
#include "util/arena.hpp"

namespace {
std::atomic<std::uint64_t> gHeapAllocs{0};
}  // namespace

void* operator new(std::size_t n) {
  gHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, std::align_val_t align) {
  gHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (n + a - 1) / a * a;
  void* p = std::aligned_alloc(a, rounded ? rounded : a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) { return operator new(n); }
void* operator new[](std::size_t n, std::align_val_t align) {
  return operator new(n, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace pao;

namespace {

struct RunMeasure {
  core::OracleSession::Stats stats;
  std::uint64_t heapAllocs = 0;
  std::uint64_t arenaBytes = 0;
#if PAO_OBS_ENABLED
  pao::obs::GraphProfile profile;
#endif
};

RunMeasure analyzeOnce(const db::Design& design, int threads) {
  core::OracleConfig cfg;
  cfg.numThreads = threads;
  const std::uint64_t allocs0 = gHeapAllocs.load(std::memory_order_relaxed);
  util::Arena::resetBytesRequested();
  core::OracleSession session(design, cfg);
  RunMeasure m;
  m.stats = session.stats();
  m.heapAllocs = gHeapAllocs.load(std::memory_order_relaxed) - allocs0;
  m.arenaBytes = util::Arena::bytesRequested();
#if PAO_OBS_ENABLED
  m.profile = session.lastGraphProfile();
#endif
  return m;
}

}  // namespace

int main() {
  const double scale = bench::benchScale(0.02);
  bench::BenchReport report("bench_pipeline");
  const benchgen::Testcase tc = benchgen::generate(benchgen::mixedSpec(),
                                                   scale);
  std::printf("Pipeline shape on %s (scale %.3g, %zu insts)\n",
              tc.spec.name.c_str(), scale, tc.design->instances.size());

  // Serial run: the overlap count is deterministic at one worker (the DFS
  // schedule is fixed), which is what the self-check keys on.
  const RunMeasure arenaRun = analyzeOnce(*tc.design, /*threads=*/1);
  // Full-pool run, only for the steal counter (schedule-dependent).
  const RunMeasure pooled = analyzeOnce(*tc.design, /*threads=*/0);

  util::Arena::setBypass(true);
  const RunMeasure bypassRun = analyzeOnce(*tc.design, /*threads=*/1);
  util::Arena::setBypass(false);

  const std::size_t clusterJobs = arenaRun.stats.lastClusterCount;
  const double overlapFraction =
      clusterJobs > 0 ? static_cast<double>(arenaRun.stats.overlapJobs) /
                            static_cast<double>(clusterJobs)
                      : 0.0;
  const double allocCut =
      bypassRun.heapAllocs > 0
          ? 1.0 - static_cast<double>(arenaRun.heapAllocs) /
                      static_cast<double>(bypassRun.heapAllocs)
          : 0.0;

  std::printf("%-34s | %10s\n", "quantity", "value");
  bench::printRule(50);
  std::printf("%-34s | %10zu\n", "graph jobs", arenaRun.stats.graphJobs);
  std::printf("%-34s | %10zu\n", "cluster DP jobs", clusterJobs);
  std::printf("%-34s | %10zu\n", "overlap jobs (serial DFS)",
              arenaRun.stats.overlapJobs);
  std::printf("%-34s | %10.3f\n", "overlap fraction", overlapFraction);
  std::printf("%-34s | %10zu\n", "steals (threads=0 run)",
              static_cast<std::size_t>(pooled.stats.graphSteals));
  std::printf("%-34s | %10llu\n", "arena bytes requested",
              static_cast<unsigned long long>(arenaRun.arenaBytes));
  std::printf("%-34s | %10llu\n", "heap allocs (arena)",
              static_cast<unsigned long long>(arenaRun.heapAllocs));
  std::printf("%-34s | %10llu\n", "heap allocs (bypass)",
              static_cast<unsigned long long>(bypassRun.heapAllocs));
  std::printf("%-34s | %9.1f%%\n", "heap-alloc reduction", allocCut * 100.0);
  std::fflush(stdout);

  report.bench()
      .set("instances", obs::Json(tc.design->instances.size()))
      .set("graphJobs", obs::Json(arenaRun.stats.graphJobs))
      .set("clusterJobs", obs::Json(clusterJobs))
      .set("overlapJobs", obs::Json(arenaRun.stats.overlapJobs))
      .set("overlapFraction", obs::Json(overlapFraction))
      .set("steals", obs::Json(pooled.stats.graphSteals))
      .set("pairChecks", obs::Json(arenaRun.stats.pairChecks))
      .set("arenaBytes", obs::Json(static_cast<double>(arenaRun.arenaBytes)))
      .set("heapAllocsArena", obs::Json(static_cast<double>(arenaRun.heapAllocs)))
      .set("heapAllocsBypass",
           obs::Json(static_cast<double>(bypassRun.heapAllocs)))
      .set("heapAllocReduction", obs::Json(allocCut));
#if PAO_OBS_ENABLED
  // Profile of the full-pool run, so BENCH_bench_pipeline.json carries the
  // measured critical path and parallelism headroom next to the shape rows.
  report.attachProfile(pooled.profile);
#endif
  report.write();

  bool ok = true;
  if (arenaRun.stats.overlapJobs == 0) {
    std::fprintf(stderr,
                 "selfcheck FAILED: no Step-3 job started while Steps 1-2 "
                 "work was pending\n");
    ok = false;
  }
  if (allocCut < 0.30) {
    std::fprintf(stderr,
                 "selfcheck FAILED: arena cut heap allocations by %.1f%% "
                 "(need >= 30%%)\n",
                 allocCut * 100.0);
    ok = false;
  }
  if (ok) std::fprintf(stderr, "selfcheck OK\n");
  return ok ? 0 : 1;
}
