// Figure 3 reproduction: the four y-coordinate types overlaid with the
// same-layer up-via enclosure. In the paper's panels, (a) on-track and
// (b) half-track placements cause minimum-step DRCs because the enclosure
// clips the pin corner, while (c) shape-center and (d) enclosure-boundary
// placements are DRC-clean. Each panel below recreates the geometry on the
// tiny two-layer technology (tracks at 200+k*400, enclosure 300x120,
// min step 120) and reports the DRC engine's verdict.
#include <cstdio>

#include "bench_common.hpp"
#include "db/unique_inst.hpp"
#include "pao/ap_gen.hpp"
#include "pao/inst_context.hpp"
#include "../tests/test_util.hpp"

int main() {
  using namespace pao;
  using geom::Rect;
  bench::BenchReport report("bench_fig3_coord_types");
  obs::Json rows = obs::Json::array();

  struct Panel {
    const char* label;
    Rect pin;            // M1 pin shape
    geom::Point via;     // candidate via location
    bool expectClean;
  };
  // Via x = 600 (on-track) makes the enclosure [450,750] clip the pin's
  // right end at x=700 — combined with the y-type's vertical clip this
  // creates consecutive sub-minStep edges. Via x = 400 (half-track) keeps
  // the enclosure inside the pin horizontally.
  const Panel panels[] = {
      {"(a) on-track      y=600", {100, 560, 700, 700}, {600, 600}, false},
      {"(b) half-track    y=800", {100, 760, 700, 900}, {600, 800}, false},
      {"(c) shape-center  y=700", {100, 640, 700, 760}, {400, 700}, true},
      {"(d) enc-boundary  y=680", {100, 620, 700, 800}, {400, 680}, true},
  };

  std::printf("Figure 3 — coordinate types vs min-step DRC\n");
  bool allMatch = true;
  for (const Panel& p : panels) {
    const test::TinyDesign td = test::makeTinyDesign({{0, p.pin}});
    const db::UniqueInstances ui = db::extractUniqueInstances(*td.design);
    const core::InstContext ctx(*td.design, ui.classes[0]);
    const db::ViaDef* via = td.tech->findViaDef("V1_0");
    const auto violations =
        ctx.engine().checkVia(*via, p.via, ctx.pinNet(ctx.signalPins()[0]));
    const bool clean = violations.empty();
    std::printf("  %s : %-5s (expected %-5s)%s\n", p.label,
                clean ? "clean" : "DIRTY", p.expectClean ? "clean" : "DIRTY",
                clean == p.expectClean ? "" : "  << MISMATCH");
    for (const auto& v : violations) {
      std::printf("      %s\n", v.describe().c_str());
    }
    allMatch = allMatch && clean == p.expectClean;
    rows.push(obs::Json::object()
                  .set("panel", obs::Json(p.label))
                  .set("clean", obs::Json(clean))
                  .set("expectedClean", obs::Json(p.expectClean))
                  .set("violations", obs::Json(violations.size())));
  }

  // And the generator view: on the panel-(d) pin, the coordinate-type
  // ladder must fall through to off-track types automatically.
  {
    const test::TinyDesign td =
        test::makeTinyDesign({{0, Rect{100, 620, 700, 800}}});
    const db::UniqueInstances ui = db::extractUniqueInstances(*td.design);
    const core::InstContext ctx(*td.design, ui.classes[0]);
    const auto aps =
        core::AccessPointGenerator(ctx).generate(ctx.signalPins()[0]);
    std::printf("  generator on panel-(d) pin: %zu APs, first type cost %d "
                "(>0 means off-track engaged)\n",
                aps.size(), aps.empty() ? -1 : aps.front().typeCost());
  }
  std::printf("%s\n", allMatch ? "PASS: all panels match the paper"
                               : "FAIL: panel mismatch");
  report.bench()
      .set("rows", std::move(rows))
      .set("allPanelsMatch", obs::Json(allMatch));
  if (!report.write()) return 1;
  return allMatch ? 0 : 1;
}
