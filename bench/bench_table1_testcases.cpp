// Table I reproduction: testcase information for the synthetic ISPD-2018
// analogues. Prints the paper's published statistics next to the generated
// (scaled) instantiation.
#include <cstdio>

#include "bench_common.hpp"
#include "benchgen/testcase.hpp"
#include "db/unique_inst.hpp"

int main() {
  using namespace pao;
  const double scale = bench::benchScale();
  bench::BenchReport report("bench_table1_testcases");
  obs::Json rows = obs::Json::array();

  std::printf("Table I — testcase information (paper spec vs generated at "
              "scale %.3g)\n",
              scale);
  std::printf("%-14s %10s %7s %9s %7s %7s %14s %6s | %10s %9s %8s\n",
              "Benchmark", "#StdCell", "#Macro", "#Net", "#IOPin", "#Layer",
              "DieSize(mm)", "Tech", "gen#Cell", "gen#Net", "gen#Uniq");
  bench::printRule(124);

  for (std::size_t i = 0; i < benchgen::ispd18Suite().size(); ++i) {
    if (!bench::testcaseSelected(static_cast<int>(i))) continue;
    const benchgen::TestcaseSpec spec = benchgen::ispd18Suite()[i];
    const benchgen::Testcase tc = benchgen::generate(spec, scale);
    std::size_t stdCells = 0;
    int macros = 0;
    for (const db::Instance& inst : tc.design->instances) {
      if (inst.master->cls == db::MasterClass::kBlock) {
        ++macros;
      } else if (inst.master->cls == db::MasterClass::kCore) {
        ++stdCells;
      }
    }
    const auto unique = db::extractUniqueInstances(*tc.design);
    char die[32];
    std::snprintf(die, sizeof(die), "%.2fx%.2f", spec.paperDieWmm,
                  spec.paperDieHmm);
    std::printf("%-14s %10zu %7d %9zu %7d %7d %14s %5dnm | %10zu %9zu %8zu\n",
                spec.name.c_str(), spec.numCells, spec.numMacros,
                spec.numNets, spec.numIoPins, tc.tech->numRoutingLayers(),
                die, spec.node == benchgen::Node::k45 ? 45 : 32, stdCells,
                tc.design->nets.size(), unique.classes.size());
    rows.push(obs::Json::object()
                  .set("benchmark", obs::Json(spec.name))
                  .set("genCells", obs::Json(stdCells))
                  .set("genNets", obs::Json(tc.design->nets.size()))
                  .set("genUnique", obs::Json(unique.classes.size())));
  }
  report.bench().set("rows", std::move(rows));
  return report.write() ? 0 : 1;
}
