// Experiment 2 (Table III) reproduction: quality of access for ALL instance
// pins with intra- and inter-cell compatibility. Compares the TrRte baseline
// (no pattern mechanism; a pin passes when ANY of its points is clean in
// context) against PAAF without and with boundary-conflict awareness.
#include <cstdio>

#include "bench_common.hpp"
#include "benchgen/testcase.hpp"
#include "pao/evaluate.hpp"

int main() {
  using namespace pao;
  const double scale = bench::benchScale();

  std::printf("Table III — Experiment 2: failed pins with intra+inter-cell "
              "compatibility (scale %.3g)\n",
              scale);
  std::printf("%-14s %10s | %9s %9s %9s | %8s %8s %8s\n", "Benchmark",
              "Total#Pins", "f:TrRte", "f:noBCA", "f:BCA", "t:TrRte",
              "t:noBCA", "t:BCA");
  bench::printRule(100);

  for (std::size_t i = 0; i < benchgen::ispd18Suite().size(); ++i) {
    if (!bench::testcaseSelected(static_cast<int>(i))) continue;
    const benchgen::TestcaseSpec spec = benchgen::ispd18Suite()[i];
    const benchgen::Testcase tc = benchgen::generate(spec, scale);

    core::PinAccessOracle legacy(*tc.design, core::legacyConfig());
    const core::OracleResult legacyRes = legacy.run();
    const core::FailedPinStats legacyFailed = core::countFailedPins(
        *tc.design, legacyRes, 0, core::FailedPinCriterion::kAnyAp);

    core::PinAccessOracle noBca(*tc.design, core::withoutBcaConfig());
    const core::OracleResult noBcaRes = noBca.run();
    const core::FailedPinStats noBcaFailed =
        core::countFailedPins(*tc.design, noBcaRes);

    core::PinAccessOracle bca(*tc.design, core::withBcaConfig());
    const core::OracleResult bcaRes = bca.run();
    const core::FailedPinStats bcaFailed =
        core::countFailedPins(*tc.design, bcaRes);

    std::printf("%-14s %10zu | %9zu %9zu %9zu | %8.2f %8.2f %8.2f\n",
                spec.name.c_str(), bcaFailed.totalPins,
                legacyFailed.failedPins, noBcaFailed.failedPins,
                bcaFailed.failedPins, legacyRes.totalSeconds(),
                noBcaRes.totalSeconds(), bcaRes.totalSeconds());
    std::fflush(stdout);
  }
  std::printf("\nPaper shape check: TrRte fails many pins; PAAF w/o BCA "
              "leaves a few inter-cell\nconflicts; PAAF w/ BCA reaches zero "
              "failed pins.\n");
  return 0;
}
