// Experiment 2 (Table III) reproduction: quality of access for ALL instance
// pins with intra- and inter-cell compatibility. Compares the TrRte baseline
// (no pattern mechanism; a pin passes when ANY of its points is clean in
// context) against PAAF without and with boundary-conflict awareness.
#include <cstdio>

#include "bench_common.hpp"
#include "benchgen/testcase.hpp"
#include "pao/evaluate.hpp"

int main() {
  using namespace pao;
  const double scale = bench::benchScale();
  bench::BenchReport report("bench_table3_exp2");
  obs::Json rows = obs::Json::array();

  std::printf("Table III — Experiment 2: failed pins with intra+inter-cell "
              "compatibility (scale %.3g)\n",
              scale);
  std::printf("%-14s %10s | %9s %9s %9s | %8s %8s %8s\n", "Benchmark",
              "Total#Pins", "f:TrRte", "f:noBCA", "f:BCA", "t:TrRte",
              "t:noBCA", "t:BCA");
  bench::printRule(100);

  for (std::size_t i = 0; i < benchgen::ispd18Suite().size(); ++i) {
    if (!bench::testcaseSelected(static_cast<int>(i))) continue;
    const benchgen::TestcaseSpec spec = benchgen::ispd18Suite()[i];
    const benchgen::Testcase tc = benchgen::generate(spec, scale);

    core::PinAccessOracle legacy(*tc.design, core::legacyConfig());
    const core::OracleResult legacyRes = legacy.run();
    const core::FailedPinStats legacyFailed = core::countFailedPins(
        *tc.design, legacyRes, 0, core::FailedPinCriterion::kAnyAp);

    core::PinAccessOracle noBca(*tc.design, core::withoutBcaConfig());
    const core::OracleResult noBcaRes = noBca.run();
    const core::FailedPinStats noBcaFailed =
        core::countFailedPins(*tc.design, noBcaRes);

    core::PinAccessOracle bca(*tc.design, core::withBcaConfig());
    const core::OracleResult bcaRes = bca.run();
    const core::FailedPinStats bcaFailed =
        core::countFailedPins(*tc.design, bcaRes);

    std::printf("%-14s %10zu | %9zu %9zu %9zu | %8.2f %8.2f %8.2f\n",
                spec.name.c_str(), bcaFailed.totalPins,
                legacyFailed.failedPins, noBcaFailed.failedPins,
                bcaFailed.failedPins, legacyRes.totalSeconds(),
                noBcaRes.totalSeconds(), bcaRes.totalSeconds());
    std::fflush(stdout);
    rows.push(obs::Json::object()
                  .set("benchmark", obs::Json(spec.name))
                  .set("totalPins", obs::Json(bcaFailed.totalPins))
                  .set("failedLegacy", obs::Json(legacyFailed.failedPins))
                  .set("failedNoBca", obs::Json(noBcaFailed.failedPins))
                  .set("failedBca", obs::Json(bcaFailed.failedPins))
                  .set("totalSecondsLegacy",
                       obs::Json(legacyRes.totalSeconds()))
                  .set("totalSecondsNoBca", obs::Json(noBcaRes.totalSeconds()))
                  .set("totalSecondsBca", obs::Json(bcaRes.totalSeconds())));
  }
  std::printf("\nPaper shape check: TrRte fails many pins; PAAF w/o BCA "
              "leaves a few inter-cell\nconflicts; PAAF w/ BCA reaches zero "
              "failed pins.\n");
  report.bench().set("rows", std::move(rows));
  return report.write() ? 0 : 1;
}
