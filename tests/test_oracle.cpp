// End-to-end oracle tests on generated testcases: the Experiment 1/2 claims
// at unit-test scale.
#include "pao/oracle.hpp"

#include <gtest/gtest.h>

#include <string>

#include "benchgen/testcase.hpp"
#include "pao/evaluate.hpp"

namespace pao::core {
namespace {

class OracleFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tc_ = new benchgen::Testcase(
        benchgen::generate(benchgen::ispd18Suite()[0], /*scale=*/0.02));
  }
  static void TearDownTestSuite() {
    delete tc_;
    tc_ = nullptr;
  }
  static benchgen::Testcase* tc_;
};

benchgen::Testcase* OracleFixture::tc_ = nullptr;

TEST_F(OracleFixture, PaafGeneratesOnlyCleanAps) {
  // Experiment 1, PAAF column: every generated access point is DRC-clean by
  // construction.
  PinAccessOracle oracle(*tc_->design, withBcaConfig());
  const OracleResult res = oracle.run();
  const DirtyApStats stats = countDirtyAps(*tc_->design, res);
  EXPECT_GT(stats.totalAps, 0u);
  EXPECT_EQ(stats.dirtyAps, 0u);
}

TEST_F(OracleFixture, LegacyGeneratesDirtyAps) {
  // Experiment 1, TrRte column: the baseline emits some dirty points and
  // fewer points overall.
  PinAccessOracle legacy(*tc_->design, legacyConfig());
  const OracleResult legacyRes = legacy.run();
  const DirtyApStats legacyStats = countDirtyAps(*tc_->design, legacyRes);
  EXPECT_GT(legacyStats.dirtyAps, 0u);

  PinAccessOracle paaf(*tc_->design, withBcaConfig());
  const OracleResult paafRes = paaf.run();
  EXPECT_GT(paafRes.totalAps(), legacyRes.totalAps());
}

TEST_F(OracleFixture, BcaReachesZeroFailedPins) {
  // Experiment 2, "w/ BCA" column: all net-attached pins get a DRC-clean
  // access point, inter-cell compatibility included.
  PinAccessOracle oracle(*tc_->design, withBcaConfig());
  const OracleResult res = oracle.run();
  const FailedPinStats stats = countFailedPins(*tc_->design, res);
  EXPECT_GT(stats.totalPins, 0u);
  EXPECT_EQ(stats.failedPins, 0u);
}

TEST_F(OracleFixture, FailedPinOrdering) {
  // legacy >= w/o BCA >= w/ BCA, mirroring Table III's column ordering.
  PinAccessOracle legacy(*tc_->design, legacyConfig());
  const FailedPinStats legacyStats =
      countFailedPins(*tc_->design, legacy.run(), 0,
                      FailedPinCriterion::kAnyAp);

  PinAccessOracle noBca(*tc_->design, withoutBcaConfig());
  const FailedPinStats noBcaStats = countFailedPins(*tc_->design, noBca.run());

  PinAccessOracle bca(*tc_->design, withBcaConfig());
  const FailedPinStats bcaStats = countFailedPins(*tc_->design, bca.run());

  EXPECT_GE(legacyStats.failedPins, noBcaStats.failedPins);
  EXPECT_GE(noBcaStats.failedPins, bcaStats.failedPins);
  EXPECT_GT(legacyStats.failedPins, 0u);
}

TEST_F(OracleFixture, UniqueInstanceSharing) {
  // Unique-instance analysis must cover every instance exactly once.
  PinAccessOracle oracle(*tc_->design, withBcaConfig());
  const OracleResult res = oracle.run();
  EXPECT_EQ(res.unique.classOf.size(), tc_->design->instances.size());
  std::size_t members = 0;
  for (const db::UniqueInstance& ui : res.unique.classes) {
    members += ui.members.size();
  }
  EXPECT_EQ(members, tc_->design->instances.size());
  // Far fewer classes than instances (that is the point of the concept).
  EXPECT_LT(res.unique.classes.size(), tc_->design->instances.size());
}

TEST_F(OracleFixture, ChosenApTranslatesWithInstance) {
  PinAccessOracle oracle(*tc_->design, withBcaConfig());
  const OracleResult res = oracle.run();
  const db::Design& d = *tc_->design;
  for (std::size_t c = 0; c < res.unique.classes.size(); ++c) {
    const db::UniqueInstance& ui = res.unique.classes[c];
    if (res.classes[c].patterns.empty() || ui.members.size() < 2) continue;
    // The chosen AP of any member must equal the representative's AP
    // translated by the origin delta.
    const int rep = ui.representative;
    const int other = ui.members.back();
    if (res.chosenPattern[rep] != res.chosenPattern[other]) continue;
    for (int pos = 0;
         pos < static_cast<int>(res.classes[c].pinAps.size()); ++pos) {
      const auto a = res.chosenAp(d, rep, pos);
      const auto b = res.chosenAp(d, other, pos);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (!a) continue;
      const geom::Point delta =
          d.instances[other].origin - d.instances[rep].origin;
      EXPECT_EQ(b->loc, a->loc + delta);
    }
    break;
  }
}

TEST_F(OracleFixture, TimingsAreRecorded) {
  PinAccessOracle oracle(*tc_->design, withBcaConfig());
  const OracleResult res = oracle.run();
  EXPECT_GT(res.step1Seconds, 0.0);
  EXPECT_GT(res.step2Seconds, 0.0);
  EXPECT_GE(res.step3Seconds, 0.0);
  EXPECT_GT(res.totalSeconds(), 0.0);
  // wallSeconds is end-to-end wall time and so covers all three steps; in a
  // serial run the summed per-class CPU times cannot exceed it by much, but
  // the cheap invariants are positivity and covering step 3's wall time.
  EXPECT_GT(res.wallSeconds, 0.0);
  EXPECT_GE(res.wallSeconds, res.step3Seconds);
}

TEST_F(OracleFixture, ThreadCountDoesNotChangeResult) {
  // The PR-1 determinism contract: the full flow (Steps 1-3) must produce an
  // identical OracleResult for any thread count. Compares every semantic
  // field; timings are excluded by construction.
  const auto runWith = [&](int threads) {
    OracleConfig cfg = withBcaConfig();
    cfg.numThreads = threads;
    return PinAccessOracle(*tc_->design, cfg).run();
  };
  const OracleResult base = runWith(1);
  for (int threads : {4, 0}) {
    const OracleResult res = runWith(threads);
    SCOPED_TRACE("numThreads=" + std::to_string(threads));
    EXPECT_EQ(res.unique.classOf, base.unique.classOf);
    EXPECT_EQ(res.chosenPattern, base.chosenPattern);
    ASSERT_EQ(res.classes.size(), base.classes.size());
    for (std::size_t c = 0; c < base.classes.size(); ++c) {
      const ClassAccess& a = res.classes[c];
      const ClassAccess& b = base.classes[c];
      SCOPED_TRACE("class " + std::to_string(c));
      EXPECT_EQ(a.pinOrder, b.pinOrder);
      ASSERT_EQ(a.patterns.size(), b.patterns.size());
      for (std::size_t p = 0; p < b.patterns.size(); ++p) {
        EXPECT_EQ(a.patterns[p].apIdx, b.patterns[p].apIdx);
        EXPECT_EQ(a.patterns[p].cost, b.patterns[p].cost);
        EXPECT_EQ(a.patterns[p].validated, b.patterns[p].validated);
      }
      ASSERT_EQ(a.pinAps.size(), b.pinAps.size());
      for (std::size_t pin = 0; pin < b.pinAps.size(); ++pin) {
        ASSERT_EQ(a.pinAps[pin].size(), b.pinAps[pin].size());
        for (std::size_t i = 0; i < b.pinAps[pin].size(); ++i) {
          const AccessPoint& x = a.pinAps[pin][i];
          const AccessPoint& y = b.pinAps[pin][i];
          EXPECT_EQ(x.loc, y.loc);
          EXPECT_EQ(x.layer, y.layer);
          EXPECT_EQ(x.prefType, y.prefType);
          EXPECT_EQ(x.nonPrefType, y.nonPrefType);
          EXPECT_EQ(x.dirs, y.dirs);
          // Via identity (indices into the shared Tech) and order.
          EXPECT_EQ(x.viaIdx, y.viaIdx);
        }
      }
    }
  }
}

TEST(OracleConfigs, PresetsMatchPaperSetups) {
  EXPECT_EQ(withoutBcaConfig().patternGen.numPatterns, 1);
  EXPECT_FALSE(withoutBcaConfig().patternGen.boundaryAware);
  EXPECT_EQ(withBcaConfig().patternGen.numPatterns, 3);
  EXPECT_TRUE(withBcaConfig().patternGen.boundaryAware);
  EXPECT_TRUE(legacyConfig().legacyMode);
}

}  // namespace
}  // namespace pao::core
