// The chunked thread-pool executor underpinning every parallel path
// (DrcEngine::checkAll, oracle Steps 1-3, router planning): deterministic
// result ordering, schedule-independent exception propagation, thread-count
// resolution and nested-call degradation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/executor.hpp"

namespace pao::util {
namespace {

TEST(ResolveThreads, PositiveIsIdentity) {
  EXPECT_EQ(resolveThreads(1), 1);
  EXPECT_EQ(resolveThreads(4), 4);
  EXPECT_EQ(resolveThreads(17), 17);
}

TEST(ResolveThreads, ZeroAndNegativeMeanHardwareConcurrency) {
  const int hw = resolveThreads(0);
  EXPECT_GE(hw, 1);
  const unsigned reported = std::thread::hardware_concurrency();
  if (reported > 0) {
    EXPECT_EQ(hw, static_cast<int>(reported));
  }
  EXPECT_EQ(resolveThreads(-3), hw);
}

TEST(ParallelFor, ZeroTasksIsANoOp) {
  parallelFor(0, [](std::size_t) { FAIL() << "fn must not run for n == 0"; },
              4);
}

TEST(ParallelFor, EveryIndexRunsExactlyOnce) {
  for (int threads : {1, 2, 4, 0}) {
    std::vector<std::atomic<int>> hits(100);
    parallelFor(hits.size(), [&](std::size_t i) { hits[i]++; }, threads);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, SlotWritesYieldCallerOrderedResults) {
  // The determinism contract the adopters rely on: each task writes result
  // slot i, so the output vector is identical for any thread count.
  const auto runWith = [](int threads) {
    std::vector<int> out(200, -1);
    parallelFor(out.size(),
                [&](std::size_t i) { out[i] = static_cast<int>(i) * 3 + 1; },
                threads);
    return out;
  };
  const std::vector<int> serial = runWith(1);
  EXPECT_EQ(runWith(2), serial);
  EXPECT_EQ(runWith(4), serial);
  EXPECT_EQ(runWith(0), serial);
}

TEST(ParallelFor, LowestFailingIndexWins) {
  // Several tasks throw; the rethrown exception must be the lowest failing
  // index regardless of schedule, and every non-throwing index still runs.
  for (int threads : {1, 4}) {
    std::vector<std::atomic<int>> hits(64);
    try {
      parallelFor(
          hits.size(),
          [&](std::size_t i) {
            hits[i]++;
            if (i == 11 || i == 37 || i == 60) {
              throw std::runtime_error("task " + std::to_string(i));
            }
          },
          threads);
      FAIL() << "expected rethrow (threads " << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 11") << "threads " << threads;
    }
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, NonStdExceptionIsPropagated) {
  EXPECT_THROW(
      parallelFor(8, [](std::size_t i) { if (i == 3) throw 42; }, 4), int);
}

TEST(ParallelFor, NestedCallsDegradeToSerial) {
  // A task body calling parallelFor again must not deadlock or oversubscribe;
  // the inner call runs serially on the worker thread.
  std::atomic<int> total{0};
  parallelFor(
      8,
      [&](std::size_t) {
        parallelFor(16, [&](std::size_t) { total++; }, 4);
      },
      4);
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ParallelFor, MoreThreadsThanTasks) {
  std::vector<int> out(3, 0);
  parallelFor(out.size(), [&](std::size_t i) { out[i] = 7; }, 16);
  EXPECT_EQ(out, (std::vector<int>{7, 7, 7}));
}

TEST(ParallelFor, StressUnevenTaskCosts) {
  // Dynamic scheduling over wildly uneven tasks: a handful of heavy indices
  // among many trivial ones. Checks the checksum matches serial execution.
  const std::size_t n = 500;
  const auto runWith = [&](int threads) {
    std::vector<long long> out(n, 0);
    parallelFor(
        n,
        [&](std::size_t i) {
          long long acc = static_cast<long long>(i);
          const long long iters = (i % 97 == 0) ? 200000 : 50;
          for (long long k = 0; k < iters; ++k) acc = (acc * 1103515245 + i) % 1000003;
          out[i] = acc;
        },
        threads);
    return std::accumulate(out.begin(), out.end(), 0LL);
  };
  const long long serial = runWith(1);
  EXPECT_EQ(runWith(4), serial);
  EXPECT_EQ(runWith(0), serial);
}

}  // namespace
}  // namespace pao::util
