// The deterministic job-graph executor (util/jobs.hpp) that the oracle
// pipeline, DRC sharding, serve dispatch and parallelFor all drain through:
// DAG shapes (chain, diamond, fan-out), slot-write determinism across
// thread counts, lowest-id exception propagation with transitive
// poisoning, nested-run serial degradation, and the one-shot/validation
// contract.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/executor.hpp"
#include "util/jobs.hpp"

namespace pao::util {
namespace {

TEST(JobGraph, EmptyGraphRunsAndReportsZeroJobs) {
  JobGraph g;
  g.run(4);
  EXPECT_EQ(g.stats().jobs, 0u);
  EXPECT_EQ(g.stats().executed, 0u);
}

TEST(JobGraph, ChainRunsInDependencyOrder) {
  for (int threads : {1, 4, 0}) {
    JobGraph g;
    std::vector<int> order;
    JobId prev = 0;
    for (int i = 0; i < 8; ++i) {
      const JobId deps[] = {prev};
      const auto body = [&order, i] { order.push_back(i); };
      prev = (i == 0) ? g.addJob(body) : g.addJob(body, deps);
    }
    g.run(threads);
    std::vector<int> want(8);
    std::iota(want.begin(), want.end(), 0);
    EXPECT_EQ(order, want) << "threads " << threads;
  }
}

TEST(JobGraph, DiamondJoinSeesBothBranches) {
  for (int threads : {1, 4, 0}) {
    JobGraph g;
    int a = 0, b = 0, c = 0, d = 0;
    const JobId top = g.addJob([&] { a = 1; });
    const JobId topDep[] = {top};
    const JobId left = g.addJob([&] { b = a + 10; }, topDep);
    const JobId right = g.addJob([&] { c = a + 20; }, topDep);
    const JobId join[] = {left, right};
    g.addJob([&] { d = b + c; }, join);
    g.run(threads);
    EXPECT_EQ(d, 32) << "threads " << threads;
  }
}

TEST(JobGraph, FanOutRunsEveryDependentExactlyOnce) {
  for (int threads : {1, 4, 0}) {
    JobGraph g;
    int seed = 0;
    const JobId root = g.addJob([&] { seed = 7; });
    const JobId rootDep[] = {root};
    std::vector<std::atomic<int>> hits(64);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      g.addJob([&, i] { hits[i] += seed; }, rootDep);
    }
    g.run(threads);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 7) << "index " << i << " threads " << threads;
    }
    EXPECT_EQ(g.stats().executed, 65u);
  }
}

TEST(JobGraph, SlotWritesAreIdenticalAcrossThreadCounts) {
  // The determinism moat: a layered graph whose bodies write pre-sized
  // slots yields byte-identical output at any thread count.
  const auto runWith = [](int threads) {
    JobGraph g;
    std::vector<long> out(96, -1);
    std::vector<JobId> layer0(32);
    for (std::size_t i = 0; i < 32; ++i) {
      layer0[i] = g.addJob([&out, i] { out[i] = static_cast<long>(i * i); });
    }
    for (std::size_t i = 0; i < 32; ++i) {
      const JobId deps[] = {layer0[i], layer0[(i + 5) % 32]};
      g.addJob(
          [&out, i] { out[32 + i] = out[i] * 3 + out[(i + 5) % 32]; }, deps);
    }
    const JobId all0 = layer0[0];
    for (std::size_t i = 0; i < 32; ++i) {
      const JobId deps[] = {static_cast<JobId>(all0 + 32 + i)};
      g.addJob([&out, i] { out[64 + i] = out[32 + i] - out[i]; }, deps);
    }
    g.run(threads);
    return out;
  };
  const std::vector<long> serial = runWith(1);
  EXPECT_EQ(runWith(4), serial);
  EXPECT_EQ(runWith(0), serial);
}

TEST(JobGraph, AddJobRangeInvokesBodyPerIndex) {
  for (int threads : {1, 4, 0}) {
    JobGraph g;
    std::vector<int> out(50, 0);
    g.addJobRange(out.size(),
                  [&](std::size_t i) { out[i] = static_cast<int>(i) + 1; });
    g.run(threads);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i) + 1);
    }
  }
}

TEST(JobGraph, LowestFailingIdWinsRegardlessOfSchedule) {
  for (int threads : {1, 4, 0}) {
    JobGraph g;
    // Independent failures at ids 3 and 10: the drain completes, then the
    // lowest failing id's exception is the one rethrown.
    for (int i = 0; i < 16; ++i) {
      g.addJob([i] {
        if (i == 3) throw std::runtime_error("fail-3");
        if (i == 10) throw std::runtime_error("fail-10");
      });
    }
    try {
      g.run(threads);
      FAIL() << "expected a rethrow, threads " << threads;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "fail-3") << "threads " << threads;
    }
  }
}

TEST(JobGraph, FailurePoisonsTransitiveDependentsOnly) {
  for (int threads : {1, 4, 0}) {
    JobGraph g;
    std::atomic<int> ran{0};
    const JobId bad = g.addJob([] { throw std::runtime_error("boom"); });
    const JobId badDep[] = {bad};
    const JobId child = g.addJob([&] { ++ran; }, badDep);
    const JobId childDep[] = {child};
    g.addJob([&] { ++ran; }, childDep);  // grandchild: also poisoned
    g.addJob([&] { ++ran; });            // independent: must still run
    EXPECT_THROW(g.run(threads), std::runtime_error);
    EXPECT_EQ(ran.load(), 1) << "threads " << threads;
    EXPECT_EQ(g.stats().executed, 1u);  // the independent job only
    EXPECT_EQ(g.stats().skipped, 2u);   // child + grandchild
  }
}

TEST(JobGraph, NestedRunDegradesToSerialInsideAJob) {
  for (int threads : {1, 4, 0}) {
    JobGraph outer;
    std::vector<int> inner(40, 0);
    bool sawInside = false;
    outer.addJob([&] {
      sawInside = JobGraph::insideJob();
      JobGraph nested;
      nested.addJobRange(inner.size(),
                         [&](std::size_t i) { inner[i] = static_cast<int>(i); });
      // Degrades to the calling worker even when asked for a pool.
      nested.run(8);
    });
    outer.run(threads);
    EXPECT_TRUE(sawInside);
    for (std::size_t i = 0; i < inner.size(); ++i) {
      EXPECT_EQ(inner[i], static_cast<int>(i));
    }
  }
  EXPECT_FALSE(JobGraph::insideJob());
}

TEST(JobGraph, ParallelForInsideAJobAlsoDegrades) {
  JobGraph g;
  std::vector<int> out(16, 0);
  g.addJob([&] {
    // pao-lint: allow(executor-hygiene): this test exercises the degradation
    parallelFor(out.size(), [&](std::size_t i) { out[i] = 1; }, 4);
  });
  g.run(2);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 16);
}

TEST(JobGraph, ForwardDependencyThrows) {
  JobGraph g;
  const JobId future[] = {5};
  EXPECT_THROW(g.addJob([] {}, future), std::logic_error);
}

TEST(JobGraph, RunningTwiceThrows) {
  JobGraph g;
  g.addJob([] {});
  g.run(1);
  EXPECT_THROW(g.run(1), std::logic_error);
  EXPECT_THROW(g.addJob([] {}), std::logic_error);
}

TEST(JobGraph, SerialOrderIsDepthFirst) {
  // With one worker, newly-ready dependents run before older ready work:
  // the B-chain hanging off A0 finishes before A1 starts.
  JobGraph g;
  std::vector<std::string> order;
  const JobId a0 = g.addJob([&] { order.push_back("a0"); });
  const JobId a0Dep[] = {a0};
  const JobId b0 = g.addJob([&] { order.push_back("b0"); }, a0Dep);
  const JobId b0Dep[] = {b0};
  g.addJob([&] { order.push_back("b1"); }, b0Dep);
  g.addJob([&] { order.push_back("a1"); });
  g.run(1);
  const std::vector<std::string> want{"a0", "b0", "b1", "a1"};
  EXPECT_EQ(order, want);
}

TEST(JobGraph, StatsCountJobsAndExecutions) {
  JobGraph g;
  g.addJobRange(10, [](std::size_t) {});
  const JobId dep[] = {3};
  g.addJob([] {}, dep);
  g.run(4);
  EXPECT_EQ(g.stats().jobs, 11u);
  EXPECT_EQ(g.stats().executed, 11u);
  EXPECT_EQ(g.stats().skipped, 0u);
}

TEST(JobGraph, ManySmallGraphsUnderOversubscription) {
  // Soak shape: repeated graphs with more workers than cores, checking the
  // wake/sleep coordination never loses a job.
  for (int round = 0; round < 20; ++round) {
    JobGraph g;
    std::atomic<int> n{0};
    g.addJobRange(32, [&](std::size_t) { ++n; });
    g.run(8);
    ASSERT_EQ(n.load(), 32) << "round " << round;
  }
}

}  // namespace
}  // namespace pao::util
