#include <gtest/gtest.h>

#include "db/legality.hpp"
#include "db/unique_inst.hpp"
#include "test_util.hpp"

namespace pao::db {
namespace {

TEST(Layer, SpacingTableLookup) {
  Layer l;
  l.spacingTable = {{0, 0, 100}, {200, 200, 200}, {600, 600, 400}};
  EXPECT_EQ(l.minSpacing(), 100);
  // Narrow wire, short PRL: default row.
  EXPECT_EQ(l.spacing(100, 50), 100);
  // Wide shape but not enough PRL: still default.
  EXPECT_EQ(l.spacing(300, 100), 100);
  // Wide shape with long PRL: second row.
  EXPECT_EQ(l.spacing(300, 300), 200);
  // Very wide: third row.
  EXPECT_EQ(l.spacing(700, 700), 400);
  // Thresholds are exclusive (LEF semantics: width > w, prl > p).
  EXPECT_EQ(l.spacing(200, 200), 100);
  EXPECT_EQ(l.spacing(201, 201), 200);
}

TEST(Layer, EmptySpacingTable) {
  Layer l;
  EXPECT_EQ(l.spacing(100, 100), 0);
  EXPECT_EQ(l.minSpacing(), 0);
}

TEST(Tech, LayerAndViaLookup) {
  const auto tech = test::makeTinyTech();
  ASSERT_NE(tech->findLayer("M1"), nullptr);
  ASSERT_NE(tech->findLayer("V1"), nullptr);
  EXPECT_EQ(tech->findLayer("M99"), nullptr);
  EXPECT_EQ(tech->numRoutingLayers(), 2);
  EXPECT_EQ(tech->routingLayerAbove(tech->findLayer("M1")->index),
            tech->findLayer("M2")->index);
  EXPECT_EQ(tech->routingLayerAbove(tech->findLayer("M2")->index), -1);

  const ViaDef* via = tech->findViaDef("V1_0");
  ASSERT_NE(via, nullptr);
  EXPECT_TRUE(via->isDefault);
  const auto vias = tech->viaDefsFromLayer(tech->findLayer("M1")->index);
  ASSERT_EQ(vias.size(), 1u);
  EXPECT_EQ(vias[0]->name, "V1_0");
  EXPECT_EQ(via->cutAt({100, 100}), geom::Rect(50, 50, 150, 150));
}

TEST(TrackPattern, OnTrackAndCoordsIn) {
  TrackPattern tp;
  tp.start = 200;
  tp.step = 400;
  tp.count = 10;
  EXPECT_TRUE(tp.onTrack(200));
  EXPECT_TRUE(tp.onTrack(600));
  EXPECT_FALSE(tp.onTrack(400));
  EXPECT_FALSE(tp.onTrack(100));   // before first track
  EXPECT_FALSE(tp.onTrack(4600));  // beyond count

  const auto cs = tp.coordsIn(500, 1500);
  EXPECT_EQ(cs, (std::vector<geom::Coord>{600, 1000, 1400}));
  EXPECT_TRUE(tp.coordsIn(4700, 9000).empty());
  // Query starting below the first track.
  EXPECT_EQ(tp.coordsIn(-1000, 250), (std::vector<geom::Coord>{200}));
}

TEST(Master, SignalPinIndices) {
  const auto td = test::makeTinyDesign(
      {{0, geom::Rect{100, 100, 200, 500}}});
  const Master* m = td.lib->findMaster("CELL");
  ASSERT_NE(m, nullptr);
  const auto sig = m->signalPinIndices();
  ASSERT_EQ(sig.size(), 1u);
  EXPECT_EQ(m->pins[sig[0]].name, "A");
  EXPECT_EQ(m->findPin("A"), &m->pins[sig[0]]);
  EXPECT_EQ(m->findPin("ZZZ"), nullptr);
}

TEST(Pin, ShapesOnLayerAndBbox) {
  Pin p;
  p.shapes = {{0, {0, 0, 10, 40}}, {0, {0, 0, 40, 10}}, {2, {5, 5, 6, 6}}};
  EXPECT_EQ(p.shapesOnLayer(0).size(), 2u);
  EXPECT_EQ(p.shapesOnLayer(1).size(), 0u);
  EXPECT_EQ(p.bbox(), geom::Rect(0, 0, 40, 40));
}

TEST(UniqueInst, SameSignatureShares) {
  auto td = test::makeTinyDesign({{0, geom::Rect{100, 100, 200, 500}}});
  Design& d = *td.design;
  const Master* m = td.lib->findMaster("CELL");
  // Second instance exactly one track period away in both axes: same offsets.
  d.instances.push_back({"u2", m, {400, 400}, geom::Orient::R0});
  // Third instance off-period: different x offset.
  d.instances.push_back({"u3", m, {600, 400}, geom::Orient::R0});
  // Fourth: same spot as u2 but mirrored: different orient.
  d.instances.push_back({"u4", m, {400, 400}, geom::Orient::MY});
  d.buildInstanceIndex();

  const UniqueInstances ui = extractUniqueInstances(d);
  EXPECT_EQ(ui.classes.size(), 3u);
  EXPECT_EQ(ui.classOf[0], ui.classOf[1]);
  EXPECT_NE(ui.classOf[0], ui.classOf[2]);
  EXPECT_NE(ui.classOf[1], ui.classOf[3]);
  // Representative is the first member.
  EXPECT_EQ(ui.classes[ui.classOf[0]].representative, 0);
  EXPECT_EQ(ui.classes[ui.classOf[0]].members.size(), 2u);
}

TEST(UniqueInst, TrackOffsets) {
  auto td = test::makeTinyDesign({{0, geom::Rect{100, 100, 200, 500}}});
  const Instance& inst = td.design->instances[0];
  const std::vector<geom::Coord> offs = trackOffsets(*td.design, inst);
  // 4 track patterns (M1/M2 x horizontal/vertical), origin (0,0), start 200,
  // step 400: offset = (0 - 200) mod 400 = 200.
  ASSERT_EQ(offs.size(), 4u);
  for (const geom::Coord o : offs) EXPECT_EQ(o, 200);
}

TEST(Design, FindInstanceAndTracks) {
  auto td = test::makeTinyDesign({{0, geom::Rect{100, 100, 200, 500}}});
  EXPECT_EQ(td.design->findInstance("u1"), 0);
  EXPECT_EQ(td.design->findInstance("nope"), -1);
  const int m1 = td.tech->findLayer("M1")->index;
  EXPECT_EQ(td.design->tracks(m1, Dir::kHorizontal).size(), 1u);
  EXPECT_EQ(td.design->tracks(m1, Dir::kVertical).size(), 1u);
  EXPECT_EQ(td.design->tracks(99, Dir::kVertical).size(), 0u);
}

TEST(Instance, BboxRespectsOrientation) {
  auto td = test::makeTinyDesign({{0, geom::Rect{100, 100, 200, 500}}});
  Instance inst = td.design->instances[0];
  inst.orient = geom::Orient::R90;
  EXPECT_EQ(inst.bbox(), geom::Rect(0, 0, 1200, 1200));  // square cell
  const Master* m = inst.master;
  EXPECT_EQ(m->bbox(), geom::Rect(0, 0, 1200, 1200));
}

TEST(Legality, CleanGeneratedPlacementPasses) {
  // Hand-built: two abutting cells on a row.
  auto td = test::makeTinyDesign({{0, geom::Rect{140, 300, 260, 900}}});
  Design& d = *td.design;
  d.rows.push_back({"ROW_0", "core", {0, 0}, geom::Orient::R0, 10, 1200,
                    1200});
  d.instances.push_back({"u2", td.lib->findMaster("CELL"), {1200, 0},
                         geom::Orient::R0});
  d.buildInstanceIndex();
  EXPECT_TRUE(checkPlacement(d).empty());
}

TEST(Legality, DetectsOverlapOffSiteOffDieAndNoRow) {
  auto td = test::makeTinyDesign({{0, geom::Rect{140, 300, 260, 900}}});
  Design& d = *td.design;
  d.rows.push_back({"ROW_0", "core", {0, 0}, geom::Orient::R0, 10, 1200,
                    1200});
  const Master* m = td.lib->findMaster("CELL");
  // Stacked on u1: overlap (and nothing else — same on-site origin).
  d.instances.push_back({"ovl", m, {0, 0}, geom::Orient::R0});
  // Misaligned x on the row: off-site.
  d.instances.push_back({"off", m, {2500, 0}, geom::Orient::R0});
  // y matches no row: no-row.
  d.instances.push_back({"row", m, {0, 77}, geom::Orient::R0});
  // bbox leaves the 4800x4800 die: off-die (also off-site; both fire).
  d.instances.push_back({"die", m, {4400, 0}, geom::Orient::R0});
  d.buildInstanceIndex();

  const auto violations = checkPlacement(d);
  int overlaps = 0, offSite = 0, noRow = 0, offDie = 0;
  for (const PlacementViolation& v : violations) {
    switch (v.kind) {
      case PlacementViolation::Kind::kOverlap: ++overlaps; break;
      case PlacementViolation::Kind::kOffSite: ++offSite; break;
      case PlacementViolation::Kind::kNoRow: ++noRow; break;
      case PlacementViolation::Kind::kOffDie: ++offDie; break;
    }
    EXPECT_FALSE(v.describe(d).empty());
  }
  // "ovl" overlaps only u1; "row" overlaps u1/ovl too (same x span) so just
  // require each kind to have fired and overlaps to include the planted one.
  EXPECT_GE(overlaps, 1);
  EXPECT_GE(offSite, 1);
  EXPECT_EQ(noRow, 1);
  EXPECT_EQ(offDie, 1);
}

}  // namespace
}  // namespace pao::db
