#include <gtest/gtest.h>

#include <set>

#include "benchgen/testcase.hpp"
#include "db/legality.hpp"
#include "db/unique_inst.hpp"

namespace pao::benchgen {
namespace {

TEST(TechGen, NodesHaveNineRoutingLayers) {
  for (const Node node : {Node::k45, Node::k32, Node::k14}) {
    const auto tech = makeTech(nodeParams(node));
    EXPECT_EQ(tech->numRoutingLayers(), 9);
    // 8 cut layers, 2 via defs each.
    EXPECT_EQ(tech->viaDefs().size(), 16u);
    for (const db::ViaDef& v : tech->viaDefs()) {
      EXPECT_GE(v.botLayer, 0);
      EXPECT_GE(v.cutLayer, 0);
      EXPECT_GE(v.topLayer, 0);
      EXPECT_LT(v.botLayer, v.cutLayer);
      EXPECT_LT(v.cutLayer, v.topLayer);
      EXPECT_FALSE(v.cut.empty());
    }
  }
}

TEST(TechGen, DirectionsAlternate) {
  const auto t45 = makeTech(nodeParams(Node::k45));
  EXPECT_EQ(t45->findLayer("M1")->dir, db::Dir::kHorizontal);
  EXPECT_EQ(t45->findLayer("M2")->dir, db::Dir::kVertical);
  EXPECT_EQ(t45->findLayer("M3")->dir, db::Dir::kHorizontal);
  // 14nm flips: unidirectional vertical M1.
  const auto t14 = makeTech(nodeParams(Node::k14));
  EXPECT_EQ(t14->findLayer("M1")->dir, db::Dir::kVertical);
  EXPECT_EQ(t14->findLayer("M2")->dir, db::Dir::kHorizontal);
}

TEST(LibGen, MastersAreWellFormed) {
  const NodeParams node = nodeParams(Node::k45);
  const auto tech = makeTech(node);
  LibParams lp;
  lp.node = node;
  lp.siteWidth = 190;
  lp.withMacro = true;
  const auto lib = makeLibrary(lp, *tech);
  EXPECT_GT(lib->masters().size(), 10u);

  const geom::Coord height = cellHeight(node);
  bool sawFiller = false;
  bool sawMacro = false;
  for (const auto& mp : lib->masters()) {
    const db::Master& m = *mp;
    EXPECT_GT(m.width, 0);
    if (m.cls == db::MasterClass::kFiller) {
      sawFiller = true;
      EXPECT_TRUE(m.signalPinIndices().empty());
      continue;
    }
    if (m.cls == db::MasterClass::kBlock) {
      sawMacro = true;
      continue;
    }
    EXPECT_EQ(m.height, height) << m.name;
    EXPECT_EQ(m.width % lp.siteWidth, 0) << m.name;
    // Rails + at least 2 signal pins; every shape inside the cell bbox.
    EXPECT_GE(m.pins.size(), 4u) << m.name;
    EXPECT_FALSE(m.signalPinIndices().empty()) << m.name;
    for (const db::Pin& p : m.pins) {
      for (const db::PinShape& s : p.shapes) {
        EXPECT_TRUE(m.bbox().contains(s.rect))
            << m.name << " pin " << p.name;
      }
    }
    // Signal pins do not overlap each other or obstructions.
    for (const int i : m.signalPinIndices()) {
      for (const int j : m.signalPinIndices()) {
        if (i >= j) continue;
        for (const db::PinShape& a : m.pins[i].shapes) {
          for (const db::PinShape& b : m.pins[j].shapes) {
            if (a.layer != b.layer) continue;
            EXPECT_FALSE(a.rect.overlaps(b.rect))
                << m.name << " " << m.pins[i].name << "/" << m.pins[j].name;
          }
        }
      }
      for (const db::PinShape& a : m.pins[i].shapes) {
        for (const db::Obstruction& o : m.obstructions) {
          if (a.layer != o.layer) continue;
          EXPECT_FALSE(a.rect.overlaps(o.rect)) << m.name;
        }
      }
    }
  }
  EXPECT_TRUE(sawFiller);
  EXPECT_TRUE(sawMacro);
}

TEST(Testcase, GenerateIsDeterministic) {
  const TestcaseSpec spec = ispd18Suite()[0];
  const Testcase a = generate(spec, 0.01);
  const Testcase b = generate(spec, 0.01);
  ASSERT_EQ(a.design->instances.size(), b.design->instances.size());
  for (std::size_t i = 0; i < a.design->instances.size(); ++i) {
    EXPECT_EQ(a.design->instances[i].name, b.design->instances[i].name);
    EXPECT_EQ(a.design->instances[i].origin, b.design->instances[i].origin);
    EXPECT_EQ(a.design->instances[i].orient, b.design->instances[i].orient);
  }
  ASSERT_EQ(a.design->nets.size(), b.design->nets.size());
}

TEST(Testcase, ScaleShrinksCounts) {
  const TestcaseSpec spec = ispd18Suite()[0];
  const Testcase small = generate(spec, 0.01);
  const Testcase bigger = generate(spec, 0.03);
  EXPECT_LT(small.design->instances.size(), bigger.design->instances.size());
  EXPECT_LT(small.design->nets.size(), bigger.design->nets.size());
}

TEST(Testcase, PlacementIsLegal) {
  const Testcase tc = generate(ispd18Suite()[1], 0.01);
  for (const db::PlacementViolation& v : db::checkPlacement(*tc.design)) {
    ADD_FAILURE() << v.describe(*tc.design);
  }
}

TEST(Testcase, NetsAreSane) {
  const Testcase tc = generate(ispd18Suite()[0], 0.02);
  std::set<std::pair<int, int>> seen;
  for (const db::Net& net : tc.design->nets) {
    EXPECT_GE(net.terms.size(), 2u) << net.name;
    for (const db::NetTerm& t : net.terms) {
      if (t.isIo()) {
        EXPECT_GE(t.ioPinIdx, 0);
        continue;
      }
      // A pin belongs to at most one net.
      EXPECT_TRUE(seen.insert({t.instIdx, t.pinIdx}).second)
          << net.name << " reuses a pin";
      const db::Instance& inst = tc.design->instances[t.instIdx];
      ASSERT_LT(t.pinIdx, static_cast<int>(inst.master->pins.size()));
    }
  }
}

TEST(Testcase, TrackPatternsCoverAllRoutingLayers) {
  const Testcase tc = generate(ispd18Suite()[0], 0.01);
  for (const db::Layer& l : tc.tech->layers()) {
    if (l.type != db::LayerType::kRouting) continue;
    EXPECT_FALSE(tc.design->tracks(l.index, db::Dir::kHorizontal).empty());
    EXPECT_FALSE(tc.design->tracks(l.index, db::Dir::kVertical).empty());
  }
}

TEST(Testcase, UniqueInstanceCountsScaleWithSuite) {
  // test1 (45nm) should produce on the order of 100-300 unique instances
  // even at tiny scale (class structure is placement-offset driven, not
  // count driven).
  const Testcase t1 = generate(ispd18Suite()[0], 0.02);
  const auto u1 = db::extractUniqueInstances(*t1.design);
  EXPECT_GE(u1.classes.size(), 50u);
  EXPECT_LE(u1.classes.size(), 400u);
}

TEST(Testcase, MacroTestcaseHasBlocks) {
  const Testcase tc = generate(ispd18Suite()[2], 0.01);  // test3: 4 macros
  int macros = 0;
  for (const db::Instance& inst : tc.design->instances) {
    if (inst.master->cls == db::MasterClass::kBlock) ++macros;
  }
  EXPECT_GT(macros, 0);
}

TEST(Testcase, Aes14Preset) {
  const TestcaseSpec spec = aes14Spec();
  EXPECT_EQ(spec.node, Node::k14);
  const Testcase tc = generate(spec, 0.01);
  EXPECT_GT(tc.design->instances.size(), 100u);
  EXPECT_EQ(tc.tech->name, "synth14");
}

}  // namespace
}  // namespace pao::benchgen
