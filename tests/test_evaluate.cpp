// Evaluator tests: dirty-AP counting, failed-pin criteria, diagnostics.
#include "pao/evaluate.hpp"

#include <gtest/gtest.h>

#include "benchgen/testcase.hpp"

namespace pao::core {
namespace {

class EvaluateFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    benchgen::TestcaseSpec spec = benchgen::ispd18Suite()[0];
    spec.numCells = 150;
    spec.numNets = 80;
    tc_ = new benchgen::Testcase(benchgen::generate(spec, 1.0));
  }
  static void TearDownTestSuite() {
    delete tc_;
    tc_ = nullptr;
  }
  static benchgen::Testcase* tc_;
};

benchgen::Testcase* EvaluateFixture::tc_ = nullptr;

TEST_F(EvaluateFixture, DirtyApTotalsMatchOracleTotals) {
  PinAccessOracle oracle(*tc_->design, withBcaConfig());
  const OracleResult res = oracle.run();
  const DirtyApStats stats = countDirtyAps(*tc_->design, res);
  EXPECT_EQ(stats.totalAps, res.totalAps());
}

TEST_F(EvaluateFixture, ForcedBadChoiceIsDetected) {
  // Sabotage the result: point one instance at a pattern index that does
  // not exist; its pins must then count as failed.
  PinAccessOracle oracle(*tc_->design, withBcaConfig());
  OracleResult res = oracle.run();
  const FailedPinStats before = countFailedPins(*tc_->design, res);
  ASSERT_EQ(before.failedPins, 0u);

  int victim = -1;
  std::size_t victimPins = 0;
  for (const db::Net& net : tc_->design->nets) {
    for (const db::NetTerm& t : net.terms) {
      if (t.isIo()) continue;
      if (victim < 0) victim = t.instIdx;
      if (t.instIdx == victim) ++victimPins;
    }
  }
  ASSERT_GE(victim, 0);
  res.chosenPattern[victim] = -1;
  const FailedPinStats after = countFailedPins(*tc_->design, res);
  EXPECT_EQ(after.failedPins, victimPins);
}

TEST_F(EvaluateFixture, DetailsAreCapped) {
  PinAccessOracle oracle(*tc_->design, legacyConfig());
  const OracleResult res = oracle.run();
  const FailedPinStats stats =
      countFailedPins(*tc_->design, res, 3, FailedPinCriterion::kChosenAp);
  EXPECT_GT(stats.failedPins, 3u);
  EXPECT_EQ(stats.details.size(), 3u);
}

TEST_F(EvaluateFixture, AnyApCriterionIsLenient) {
  PinAccessOracle oracle(*tc_->design, legacyConfig());
  const OracleResult res = oracle.run();
  const FailedPinStats strict =
      countFailedPins(*tc_->design, res, 0, FailedPinCriterion::kChosenAp);
  const FailedPinStats lenient =
      countFailedPins(*tc_->design, res, 0, FailedPinCriterion::kAnyAp);
  EXPECT_LE(lenient.failedPins, strict.failedPins);
  EXPECT_EQ(lenient.totalPins, strict.totalPins);
}

TEST_F(EvaluateFixture, OnlyNetAttachedPinsAreCounted) {
  PinAccessOracle oracle(*tc_->design, withBcaConfig());
  const OracleResult res = oracle.run();
  const FailedPinStats stats = countFailedPins(*tc_->design, res);
  EXPECT_EQ(stats.totalPins, tc_->design->numNetInstTerms());
}

}  // namespace
}  // namespace pao::core
