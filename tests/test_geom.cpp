#include "geom/geom.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pao::geom {
namespace {

TEST(Point, ArithmeticAndComparison) {
  const Point a{3, 4};
  const Point b{-1, 2};
  EXPECT_EQ(a + b, Point(2, 6));
  EXPECT_EQ(a - b, Point(4, 2));
  EXPECT_TRUE(b < a);
  EXPECT_EQ(manhattanDist(a, b), 6);
}

TEST(Interval, BasicPredicates) {
  const Interval iv{10, 20};
  EXPECT_FALSE(iv.empty());
  EXPECT_EQ(iv.length(), 10);
  EXPECT_TRUE(iv.contains(10));
  EXPECT_TRUE(iv.contains(20));
  EXPECT_FALSE(iv.contains(21));
  EXPECT_TRUE(Interval().empty());
  EXPECT_EQ(Interval().length(), 0);
}

TEST(Interval, OverlapAndGap) {
  const Interval a{0, 10};
  const Interval b{5, 15};
  const Interval c{20, 30};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_EQ(a.overlapLength(b), 5);
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_EQ(a.overlapLength(c), 0);
  EXPECT_EQ(a.gap(c), 10);
  EXPECT_EQ(c.gap(a), 10);
  EXPECT_EQ(a.gap(b), 0);
  // Touching intervals overlap (closed semantics) with zero overlap length.
  const Interval d{10, 12};
  EXPECT_TRUE(a.overlaps(d));
  EXPECT_EQ(a.overlapLength(d), 0);
}

TEST(Rect, NormalizationAndAccessors) {
  const Rect r{30, 40, 10, 20};  // constructor normalizes corners
  EXPECT_EQ(r.xlo, 10);
  EXPECT_EQ(r.ylo, 20);
  EXPECT_EQ(r.xhi, 30);
  EXPECT_EQ(r.yhi, 40);
  EXPECT_EQ(r.width(), 20);
  EXPECT_EQ(r.height(), 20);
  EXPECT_EQ(r.area(), 400);
  EXPECT_EQ(r.center(), Point(20, 30));
  EXPECT_EQ(r.minDim(), 20);
  EXPECT_TRUE(Rect().empty());
  EXPECT_EQ(Rect().area(), 0);
}

TEST(Rect, ContainsAndIntersects) {
  const Rect r{0, 0, 100, 100};
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{100, 100}));
  EXPECT_FALSE(r.contains(Point{101, 50}));
  EXPECT_TRUE(r.contains(Rect{10, 10, 90, 90}));
  EXPECT_FALSE(r.contains(Rect{10, 10, 110, 90}));

  // Touching rects intersect (closed) but do not overlap (open interiors).
  const Rect t{100, 0, 200, 100};
  EXPECT_TRUE(r.intersects(t));
  EXPECT_FALSE(r.overlaps(t));
  const Rect o{50, 50, 150, 150};
  EXPECT_TRUE(r.overlaps(o));
  EXPECT_EQ(r.intersect(o), Rect(50, 50, 100, 100));
  EXPECT_TRUE(r.intersect(t).empty() == false);
  EXPECT_EQ(r.intersect(t).area(), 0);
}

TEST(Rect, BloatTranslateMerge) {
  const Rect r{10, 10, 20, 20};
  EXPECT_EQ(r.bloat(5), Rect(5, 5, 25, 25));
  EXPECT_EQ(r.bloat(5, 10), Rect(5, 0, 25, 30));
  EXPECT_EQ(r.translate(3, -3), Rect(13, 7, 23, 17));
  EXPECT_EQ(r.merge(Rect(100, 100, 110, 110)), Rect(10, 10, 110, 110));
  EXPECT_EQ(Rect().merge(r), r);
  EXPECT_EQ(r.merge(Rect()), r);
}

TEST(Rect, Prl) {
  const Rect a{0, 0, 100, 100};
  // Side by side with 60 units of shared y-span: PRL = 60.
  EXPECT_EQ(prl(a, Rect(150, 40, 250, 200)), 60);
  // Diagonal: no shared span on either axis -> negative PRL.
  EXPECT_LT(prl(a, Rect(150, 150, 250, 250)), 0);
  // Overlapping shapes: PRL is the larger overlap span.
  EXPECT_EQ(prl(a, Rect(50, 50, 80, 200)), 50);
}

TEST(Rect, Distances) {
  const Rect a{0, 0, 100, 100};
  const Rect right{150, 0, 200, 100};
  EXPECT_EQ(distSquared(a, right), 50 * 50);
  EXPECT_EQ(maxAxisGap(a, right), 50);
  EXPECT_EQ(manhattanDist(a, right), 50);

  const Rect diag{130, 140, 200, 200};
  EXPECT_EQ(distSquared(a, diag), 30 * 30 + 40 * 40);
  EXPECT_EQ(maxAxisGap(a, diag), 40);
  EXPECT_EQ(manhattanDist(a, diag), 70);

  EXPECT_EQ(distSquared(a, Rect(50, 50, 60, 60)), 0);
  EXPECT_EQ(maxAxisGap(a, Rect(100, 100, 200, 200)), 0);  // touching corner
}

TEST(Geom, StreamOutput) {
  std::ostringstream os;
  os << Point{1, 2} << " " << Rect{0, 0, 3, 4} << " " << Interval{5, 6};
  EXPECT_EQ(os.str(), "(1, 2) [0, 0 ; 3, 4] [5, 6]");
}

TEST(Point, HashDistinguishesCoordinates) {
  const std::hash<Point> h;
  EXPECT_NE(h({1, 2}), h({2, 1}));
  EXPECT_EQ(h({7, 7}), h({7, 7}));
}

}  // namespace
}  // namespace pao::geom
