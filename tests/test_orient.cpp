#include "geom/orient.hpp"

#include <gtest/gtest.h>

namespace pao::geom {
namespace {

constexpr Point kSize{100, 200};  // master is 100 wide, 200 tall

TEST(Orient, StringRoundTrip) {
  for (const Orient o : {Orient::R0, Orient::R90, Orient::R180, Orient::R270,
                         Orient::MX, Orient::MY, Orient::MX90, Orient::MY90}) {
    EXPECT_EQ(orientFromString(toString(o)), o);
  }
  // DEF letter aliases.
  EXPECT_EQ(orientFromString("N"), Orient::R0);
  EXPECT_EQ(orientFromString("S"), Orient::R180);
  EXPECT_EQ(orientFromString("FS"), Orient::MX);
  EXPECT_EQ(orientFromString("FN"), Orient::MY);
  EXPECT_EQ(orientFromString("bogus"), Orient::R0);
}

TEST(Orient, SwapsAxes) {
  EXPECT_FALSE(swapsAxes(Orient::R0));
  EXPECT_FALSE(swapsAxes(Orient::MX));
  EXPECT_FALSE(swapsAxes(Orient::MY));
  EXPECT_FALSE(swapsAxes(Orient::R180));
  EXPECT_TRUE(swapsAxes(Orient::R90));
  EXPECT_TRUE(swapsAxes(Orient::R270));
  EXPECT_TRUE(swapsAxes(Orient::MX90));
  EXPECT_TRUE(swapsAxes(Orient::MY90));
}

TEST(Transform, R0IsTranslation) {
  const Transform t({1000, 2000}, Orient::R0, kSize);
  EXPECT_EQ(t.apply(Point{10, 20}), Point(1010, 2020));
  EXPECT_EQ(t.apply(Rect{0, 0, 100, 200}), Rect(1000, 2000, 1100, 2200));
}

TEST(Transform, BboxLowerLeftLandsAtOrigin) {
  // For every orientation, the transformed master bbox must sit exactly at
  // the placement origin (DEF semantics).
  const Rect master{0, 0, kSize.x, kSize.y};
  for (const Orient o : {Orient::R0, Orient::R90, Orient::R180, Orient::R270,
                         Orient::MX, Orient::MY, Orient::MX90, Orient::MY90}) {
    const Transform t({500, 700}, o, kSize);
    const Rect placed = t.apply(master);
    EXPECT_EQ(placed.ll(), Point(500, 700)) << toString(o);
    const Point expectSize =
        swapsAxes(o) ? Point{kSize.y, kSize.x} : kSize;
    EXPECT_EQ(placed.width(), expectSize.x) << toString(o);
    EXPECT_EQ(placed.height(), expectSize.y) << toString(o);
  }
}

TEST(Transform, MxMirrorsAboutX) {
  // MX flips y within the cell: a point near the bottom maps near the top.
  const Transform t({0, 0}, Orient::MX, kSize);
  EXPECT_EQ(t.apply(Point{10, 0}), Point(10, 200));
  EXPECT_EQ(t.apply(Point{10, 200}), Point(10, 0));
}

TEST(Transform, MyMirrorsAboutY) {
  const Transform t({0, 0}, Orient::MY, kSize);
  EXPECT_EQ(t.apply(Point{0, 20}), Point(100, 20));
  EXPECT_EQ(t.apply(Point{100, 20}), Point(0, 20));
}

TEST(Transform, R180IsPointReflection) {
  const Transform t({0, 0}, Orient::R180, kSize);
  EXPECT_EQ(t.apply(Point{0, 0}), Point(100, 200));
  EXPECT_EQ(t.apply(Point{100, 200}), Point(0, 0));
  EXPECT_EQ(t.apply(Point{30, 50}), Point(70, 150));
}

TEST(Transform, R90SwapsDimensions) {
  const Transform t({0, 0}, Orient::R90, kSize);
  const Rect placed = t.apply(Rect{0, 0, 100, 200});
  EXPECT_EQ(placed, Rect(0, 0, 200, 100));
}

TEST(Transform, InverseRoundTripsAllOrients) {
  const Point samples[] = {{0, 0}, {100, 200}, {37, 111}, {99, 1}};
  for (const Orient o : {Orient::R0, Orient::R90, Orient::R180, Orient::R270,
                         Orient::MX, Orient::MY, Orient::MX90, Orient::MY90}) {
    const Transform t({1234, -567}, o, kSize);
    for (const Point& p : samples) {
      EXPECT_EQ(t.applyInverse(t.apply(p)), p) << toString(o);
    }
    const Rect r{10, 20, 60, 180};
    EXPECT_EQ(t.applyInverse(t.apply(r)), r) << toString(o);
  }
}

}  // namespace
}  // namespace pao::geom
