#include "pao/ap_gen.hpp"

#include <gtest/gtest.h>

#include "pao/inst_context.hpp"
#include "test_util.hpp"

namespace pao::core {
namespace {

using geom::Rect;

// Tiny tech recap: M1 horizontal, tracks y = 200+k*400; M2 vertical, tracks
// x = 200+k*400; via bottom enclosure 300x120, spacing 100, min step 120.

class ApGenFixture : public ::testing::Test {
 protected:
  /// Builds a single-pin cell and returns the generated APs for it.
  std::vector<AccessPoint> generateFor(const std::vector<db::PinShape>& shapes,
                                       ApGenConfig cfg = {},
                                       const std::vector<db::Obstruction>& obs = {}) {
    td_ = test::makeTinyDesign(shapes, obs);
    ui_ = db::extractUniqueInstances(*td_.design);
    ctx_ = std::make_unique<InstContext>(*td_.design, ui_.classes[0]);
    return AccessPointGenerator(*ctx_, cfg).generate(
        ctx_->signalPins()[0]);
  }

  test::TinyDesign td_;
  db::UniqueInstances ui_;
  std::unique_ptr<InstContext> ctx_;
};

TEST_F(ApGenFixture, OnTrackPointsFirst) {
  // Vertical bar crossing track y=600, x-span containing track x=200.
  const auto aps = generateFor({{0, Rect{140, 300, 260, 900}}});
  ASSERT_FALSE(aps.empty());
  // The first AP is the (on-track, on-track) point.
  EXPECT_EQ(aps[0].loc, geom::Point(200, 600));
  EXPECT_EQ(aps[0].prefType, CoordType::kOnTrack);
  EXPECT_EQ(aps[0].nonPrefType, CoordType::kOnTrack);
  EXPECT_TRUE(aps[0].hasUp());
  ASSERT_NE(aps[0].primaryVia(*td_.design->tech), nullptr);
  EXPECT_EQ(aps[0].primaryVia(*td_.design->tech)->name, "V1_0");
}

TEST_F(ApGenFixture, EarlyTerminationAroundK) {
  const auto aps = generateFor({{0, Rect{140, 300, 260, 900}}});
  // k = 3 and candidates come in small batches: at least 3, not many more.
  EXPECT_GE(aps.size(), 3u);
  EXPECT_LE(aps.size(), 6u);

  ApGenConfig k1;
  k1.k = 1;
  EXPECT_GE(generateFor({{0, Rect{140, 300, 260, 900}}}, k1).size(), 1u);
  EXPECT_LT(generateFor({{0, Rect{140, 300, 260, 900}}}, k1).size(), 3u);
}

TEST_F(ApGenFixture, AllPointsOnPinShape) {
  const Rect bar{140, 300, 260, 900};
  for (const AccessPoint& ap : generateFor({{0, bar}})) {
    EXPECT_TRUE(bar.contains(ap.loc)) << ap.loc;
  }
}

TEST_F(ApGenFixture, CostOrderIsMonotone) {
  const auto aps = generateFor({{0, Rect{140, 300, 260, 900}}});
  // Generation sweeps type combinations in cost order; within one pin the
  // sequence of (nonPref, pref) cost keys must be non-decreasing
  // lexicographically by (t1, t0).
  for (std::size_t i = 1; i < aps.size(); ++i) {
    const auto key = [](const AccessPoint& ap) {
      return std::make_pair(cost(ap.nonPrefType), cost(ap.prefType));
    };
    EXPECT_LE(key(aps[i - 1]), key(aps[i]));
  }
}

TEST_F(ApGenFixture, OffTrackPinFallsBackToShapeCenter) {
  // Bar y-span [650, 890] touches no track (600, 1000); the half-track 800
  // candidate and the shape-center 770 candidate both leave sub-minStep
  // leftover strips above/below the enclosure, so only enclosure-boundary
  // points validate. x-span [140,260] touches track 200.
  const auto aps = generateFor({{0, Rect{140, 650, 260, 890}}});
  ASSERT_FALSE(aps.empty());
  for (const AccessPoint& ap : aps) {
    EXPECT_GE(cost(ap.prefType), cost(CoordType::kShapeCenter));
  }
}

TEST_F(ApGenFixture, EnclosureBoundaryCandidates) {
  // Same off-track bar: enclosure-boundary candidates align the via bottom
  // enclosure (y half-height 60) flush with a pin edge: y = 710 or 830.
  const auto aps = generateFor({{0, Rect{140, 650, 260, 890}}});
  bool sawEncBoundary = false;
  for (const AccessPoint& ap : aps) {
    if (ap.prefType == CoordType::kEnclosureBoundary) {
      sawEncBoundary = true;
      EXPECT_TRUE(ap.loc.y == 650 + 60 || ap.loc.y == 890 - 60) << ap.loc;
    }
  }
  EXPECT_TRUE(sawEncBoundary);
}

TEST_F(ApGenFixture, RequireViaFiltersBlockedPoints) {
  // An obstruction blankets the area right of the pin on M1, close enough
  // (gap 40 < spacing 100) to kill every via enclosure.
  const auto aps = generateFor({{0, Rect{140, 300, 260, 900}}}, {},
                               {{0, Rect{400, 0, 1200, 1200}}});
  EXPECT_TRUE(aps.empty());

  // Without the via requirement, planar access (west, away from the
  // obstruction) still validates.
  ApGenConfig planar;
  planar.requireVia = false;
  const auto planarAps = generateFor({{0, Rect{140, 300, 260, 900}}}, planar,
                                     {{0, Rect{400, 0, 1200, 1200}}});
  ASSERT_FALSE(planarAps.empty());
  for (const AccessPoint& ap : planarAps) {
    EXPECT_FALSE(ap.hasUp());
    EXPECT_NE(ap.dirs & kWest, 0);
  }
}

TEST_F(ApGenFixture, PlanarDirectionsReported) {
  const auto aps = generateFor({{0, Rect{140, 300, 260, 900}}});
  ASSERT_FALSE(aps.empty());
  // Nothing blocks any side in the tiny design.
  EXPECT_EQ(aps[0].dirs & (kEast | kWest | kNorth | kSouth),
            kEast | kWest | kNorth | kSouth);
}

TEST_F(ApGenFixture, LShapedPinUsesMaxRects) {
  // L-shape: vertical bar + foot. Shape-center coordinates come from the
  // maximal rectangles, so the foot contributes its own candidates.
  const auto aps = generateFor(
      {{0, Rect{140, 300, 260, 900}}, {0, Rect{140, 300, 700, 420}}});
  ASSERT_FALSE(aps.empty());
  bool footAp = false;
  for (const AccessPoint& ap : aps) {
    if (ap.loc.x > 260) footAp = true;
  }
  EXPECT_TRUE(footAp);
}

TEST_F(ApGenFixture, DeduplicatesAcrossTypeCombos) {
  const auto aps = generateFor({{0, Rect{140, 300, 260, 900}}});
  for (std::size_t i = 0; i < aps.size(); ++i) {
    for (std::size_t j = i + 1; j < aps.size(); ++j) {
      EXPECT_NE(aps[i].loc, aps[j].loc);
    }
  }
}

TEST_F(ApGenFixture, GenerateAllCoversEveryPin) {
  td_ = test::makeTinyDesign({{0, Rect{140, 300, 260, 900}}});
  // Add a second signal pin to the master.
  db::Master* m = const_cast<db::Master*>(td_.lib->findMaster("CELL"));
  db::Pin& b = m->pins.emplace_back();
  b.name = "B";
  b.use = db::PinUse::kSignal;
  b.shapes.push_back({0, Rect{540, 300, 660, 900}});

  ui_ = db::extractUniqueInstances(*td_.design);
  ctx_ = std::make_unique<InstContext>(*td_.design, ui_.classes[0]);
  const auto all = AccessPointGenerator(*ctx_).generateAll();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_FALSE(all[0].empty());
  EXPECT_FALSE(all[1].empty());
}

}  // namespace
}  // namespace pao::core
