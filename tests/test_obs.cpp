// Tests for src/obs/: Json round-trips, metrics-registry determinism under
// any thread count, tracer span nesting across util::parallelFor, and the
// pao-report/1 schema helpers. The complementary PAO_OBS=OFF zero-overhead
// check (no Registry/Tracer symbols referenced from hot TUs) is a build
// matter and lives in tools/ci.sh, which nm-greps an OFF-configured build.
#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/executor.hpp"

namespace {

using pao::obs::Json;
using pao::obs::Registry;
using pao::obs::RunReport;
using pao::obs::Tracer;

static_assert(PAO_OBS_ENABLED == 1,
              "the test suite exercises the instrumented configuration");

// --- Json ----------------------------------------------------------------

TEST(ObsJson, RoundTripsNestedDocument) {
  Json doc = Json::object()
                 .set("name", Json("pao \"quoted\" \\ slash"))
                 .set("count", Json(42))
                 .set("ratio", Json(0.25))
                 .set("flag", Json(true))
                 .set("nothing", Json());
  Json arr = Json::array();
  arr.push(Json(1));
  arr.push(Json("two"));
  arr.push(Json::object().set("deep", Json(-7)));
  doc.set("items", std::move(arr));

  const std::string text = doc.dump(1);
  std::string error;
  const auto parsed = Json::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(*parsed == doc);
  EXPECT_EQ(parsed->dump(1), text);
}

TEST(ObsJson, ParseRejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "{\"a\":1} trailing",
                          "\"unterminated", "nul"}) {
    std::string error;
    EXPECT_FALSE(Json::parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ObsJson, ParseHandlesUnicodeEscapes) {
  const auto parsed = Json::parse("\"a\\u00e9\\ud83d\\ude00b\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->asString(), "a\xc3\xa9\xf0\x9f\x98\x80"
                                "b");
}

// --- Metrics registry ----------------------------------------------------

TEST(ObsMetrics, SnapshotIsCanonicallySorted) {
  Registry& reg = Registry::instance();
  reg.reset();
  reg.counter("pao.test.zeta").add(1);
  reg.counter("pao.test.alpha").add(2);
  reg.counter("pao.test.mid").add(3);
  const Json snap = reg.snapshot();
  const Json* counters = snap.find("counters");
  ASSERT_NE(counters, nullptr);
  std::vector<std::string> names;
  for (const auto& [name, value] : counters->members()) {
    names.push_back(name);
    (void)value;
  }
  std::vector<std::string> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(names, sorted);
}

TEST(ObsMetrics, HistogramBucketsAndOverflow) {
  const std::vector<long long> bounds{1, 2, 4};
  pao::obs::Histogram h(bounds);
  for (const long long v : {0, 1, 2, 3, 4, 5, 100}) h.observe(v);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 115);
  const std::vector<std::uint64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);      // 0, 1
  EXPECT_EQ(counts[1], 1u);      // 2
  EXPECT_EQ(counts[2], 2u);      // 3, 4
  EXPECT_EQ(counts[3], 2u);      // 5, 100
}

TEST(ObsMetrics, ScopedCountFlushesOnce) {
  Registry& reg = Registry::instance();
  reg.reset();
  pao::obs::Counter& c = reg.counter("pao.test.scoped");
  {
    pao::obs::ScopedCount sc(c);
    for (int i = 0; i < 10; ++i) sc.inc();
    EXPECT_EQ(c.value(), 0u);  // nothing flushed mid-scope
  }
  EXPECT_EQ(c.value(), 10u);
}

/// Runs the same counted workload at a given thread count and returns the
/// resulting registry snapshot text.
std::string workloadSnapshot(int numThreads) {
  Registry::instance().reset();
  pao::util::parallelFor(
      200,
      [](std::size_t i) {
        PAO_COUNTER_INC("pao.test.items_processed");
        PAO_COUNTER_ADD("pao.test.bytes_touched", i);
        PAO_HISTOGRAM_OBSERVE("pao.test.item_weight", i % 13);
      },
      numThreads);
  PAO_GAUGE_SET("pao.test.last_batch", 200);
  return Registry::instance().snapshot().dump(1);
}

TEST(ObsMetrics, SnapshotIsByteIdenticalAcrossThreadCounts) {
  const std::string s1 = workloadSnapshot(1);
  const std::string s4 = workloadSnapshot(4);
  const std::string sHw = workloadSnapshot(0);  // 0 = hardware concurrency
  EXPECT_EQ(s1, s4);
  EXPECT_EQ(s1, sHw);
  EXPECT_NE(s1.find("pao.test.items_processed"), std::string::npos);
}

// --- Tracer --------------------------------------------------------------

TEST(ObsTrace, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::instance();
  tracer.disable();
  {
    PAO_TRACE_SCOPE("test.should_not_appear");
  }
  EXPECT_EQ(tracer.eventCount(), 0u);
}

TEST(ObsTrace, ExportNestsWorkerSpansUnderParallelFor) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  {
    PAO_TRACE_SCOPE("test.phase");
    pao::util::parallelFor(
        16,
        [](std::size_t i) {
          PAO_TRACE_SCOPE("test.phase.item");
          volatile std::size_t sink = 0;
          for (std::size_t j = 0; j < 1000 + i; ++j) sink = sink + j;
        },
        4);
  }
  tracer.disable();

  const std::string text = tracer.exportChromeTrace();
  std::string error;
  const auto doc = Json::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_TRUE(pao::obs::validateTrace(*doc, 2, /*requireWorker=*/true,
                                      &error))
      << error;

  // The submitting thread's span stack names the workers after the phase.
  bool sawWorker = false;
  for (const auto& ev : doc->find("traceEvents")->items()) {
    if (ev.find("name")->asString() == "test.phase.worker") sawWorker = true;
  }
  EXPECT_TRUE(sawWorker);
}

TEST(ObsTrace, ReenableClearsPriorCapture) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  {
    PAO_TRACE_SCOPE("test.first");
  }
  tracer.disable();
  ASSERT_GE(tracer.eventCount(), 1u);
  tracer.enable();
  tracer.disable();
  EXPECT_EQ(tracer.eventCount(), 0u);
}

// --- Run report ----------------------------------------------------------

TEST(ObsReport, SchemaRoundTripsAndValidates) {
  Registry::instance().reset();
  PAO_COUNTER_ADD("pao.test.report_items", 5);

  RunReport report("pao_tests");
  report.section("design").set("name", Json("unit")).set("nets", Json(3));
  report.section("timings").set("wallSeconds", Json(0.5));
  report.captureMetrics();

  std::string error;
  EXPECT_TRUE(pao::obs::validateReport(report.doc(), &error)) << error;

  const auto parsed = Json::parse(report.dump(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(*parsed == report.doc());
  EXPECT_EQ(parsed->find("schema")->asString(), pao::obs::kReportSchema);
  ASSERT_NE(parsed->find("env"), nullptr);
  EXPECT_NE(parsed->find("env")->find("hwThreads"), nullptr);
  EXPECT_NE(parsed->find("env")->find("gitSha"), nullptr);
}

TEST(ObsReport, ValidateRejectsBadDocuments) {
  std::string error;
  EXPECT_FALSE(pao::obs::validateReport(Json::object(), &error));

  Json wrongSchema = RunReport("t").doc();
  wrongSchema.set("schema", Json("pao-report/999"));
  EXPECT_FALSE(pao::obs::validateReport(wrongSchema, &error));

  Json unknownKey = RunReport("t").doc();
  unknownKey.set("surprise", Json(1));
  EXPECT_FALSE(pao::obs::validateReport(unknownKey, &error));
  EXPECT_NE(error.find("surprise"), std::string::npos);
}

TEST(ObsReport, NormalizeForCompareStripsEveryTimingKey) {
  RunReport a("pao_tests");
  a.section("oracle").set("totalAps", Json(12)).set("wallSeconds", Json(1.5));
  a.section("timings").set("step1CpuSeconds", Json(0.25));
  a.section("config").set("threads", Json(4));

  RunReport b("pao_tests");
  b.section("oracle").set("totalAps", Json(12)).set("wallSeconds", Json(9.9));
  b.section("timings").set("step1CpuSeconds", Json(7.0));
  b.section("config").set("threads", Json(1));

  const Json na = pao::obs::normalizeForCompare(a.doc());
  const Json nb = pao::obs::normalizeForCompare(b.doc());
  EXPECT_EQ(na.dump(), nb.dump());
  // The payload survives; only timing-valued keys are gone.
  EXPECT_NE(na.find("oracle"), nullptr);
  EXPECT_NE(na.find("oracle")->find("totalAps"), nullptr);
  EXPECT_EQ(na.find("oracle")->find("wallSeconds"), nullptr);
  EXPECT_EQ(na.find("timings"), nullptr);
}

}  // namespace
