// Multi-height cell support (the paper's future-work item i): generation,
// placement legality, multi-row clustering, and full-flow quality.
#include <gtest/gtest.h>

#include "benchgen/testcase.hpp"
#include "pao/cluster_select.hpp"
#include "pao/evaluate.hpp"
#include "pao/oracle.hpp"

namespace pao {
namespace {

benchgen::Testcase multiHeightCase() {
  benchgen::TestcaseSpec spec = benchgen::ispd18Suite()[0];
  spec.numCells = 250;
  spec.numNets = 120;
  spec.multiHeightFraction = 0.12;
  spec.seed = 7;
  return benchgen::generate(spec, 1.0);
}

TEST(MultiHeight, MasterIsGenerated) {
  const benchgen::Testcase tc = multiHeightCase();
  const db::Master* dffh = tc.lib->findMaster("DFFHX1");
  ASSERT_NE(dffh, nullptr);
  const benchgen::NodeParams node = benchgen::nodeParams(tc.spec.node);
  EXPECT_EQ(dffh->height, 2 * benchgen::cellHeight(node));
  // Three rails (VSS bottom+top share a pin, VDD in the middle) + 4 signals.
  EXPECT_EQ(dffh->signalPinIndices().size(), 4u);
}

TEST(MultiHeight, PlacementsArePresentAndLegal) {
  const benchgen::Testcase tc = multiHeightCase();
  int multi = 0;
  const auto& insts = tc.design->instances;
  for (std::size_t i = 0; i < insts.size(); ++i) {
    if (insts[i].master->name == "DFFHX1") ++multi;
    for (std::size_t j = i + 1; j < insts.size(); ++j) {
      ASSERT_FALSE(insts[i].bbox().overlaps(insts[j].bbox()))
          << insts[i].name << " overlaps " << insts[j].name;
    }
  }
  EXPECT_GT(multi, 0);
}

TEST(MultiHeight, JoinsClustersOfBothRows) {
  const benchgen::Testcase tc = multiHeightCase();
  core::PinAccessOracle oracle(*tc.design, core::withBcaConfig());
  const core::OracleResult res = oracle.run();

  core::ClusterSelector sel(*tc.design, res.unique, res.classes);
  int dffh = -1;
  for (int i = 0; i < static_cast<int>(tc.design->instances.size()); ++i) {
    if (tc.design->instances[i].master->name == "DFFHX1") {
      dffh = i;
      break;
    }
  }
  ASSERT_GE(dffh, 0);
  int memberships = 0;
  for (const std::vector<int>& cluster : sel.clusters()) {
    for (const int idx : cluster) {
      if (idx == dffh) ++memberships;
    }
  }
  // The double-height cell must be clustered with both rows it spans
  // (unless one of the two rows happens to hold no other instance at all).
  EXPECT_GE(memberships, 1);
  EXPECT_LE(memberships, 2);
}

TEST(MultiHeight, FullFlowStaysClean) {
  const benchgen::Testcase tc = multiHeightCase();
  core::PinAccessOracle oracle(*tc.design, core::withBcaConfig());
  const core::OracleResult res = oracle.run();
  EXPECT_EQ(core::countDirtyAps(*tc.design, res).dirtyAps, 0u);
  const core::FailedPinStats failed = core::countFailedPins(*tc.design, res);
  EXPECT_GT(failed.totalPins, 0u);
  EXPECT_EQ(failed.failedPins, 0u);
  // The double-height instances themselves received patterns.
  for (int i = 0; i < static_cast<int>(tc.design->instances.size()); ++i) {
    if (tc.design->instances[i].master->name == "DFFHX1") {
      EXPECT_GE(res.chosenPattern[i], 0);
    }
  }
}

TEST(MultiHeight, PinnedPatternIsConsistentAcrossClusters) {
  // Re-running Step 3 twice (second run sees the first run's choices as
  // fresh state) must be deterministic.
  const benchgen::Testcase tc = multiHeightCase();
  core::PinAccessOracle o1(*tc.design, core::withBcaConfig());
  const core::OracleResult r1 = o1.run();
  core::PinAccessOracle o2(*tc.design, core::withBcaConfig());
  const core::OracleResult r2 = o2.run();
  EXPECT_EQ(r1.chosenPattern, r2.chosenPattern);
}

}  // namespace
}  // namespace pao
