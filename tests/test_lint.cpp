// Tests for pao_lint (tools/lint/): tokenizer behavior, the per-file rules
// against in-memory sources and the known-positive / known-negative fixture
// files under tests/lint_fixtures/, the suppression syntax, and the
// whole-program pass (layering, lock-discipline, catalog-drift) plus its
// output formats and baseline ratchet.
#include <algorithm>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint/analysis.hpp"
#include "lint/lexer.hpp"
#include "lint/output.hpp"
#include "lint/rules.hpp"
#include "obs/json.hpp"

namespace {

using pao::lint::Finding;
using pao::lint::lintFile;
using pao::lint::lintSource;
using pao::lint::Options;
using pao::lint::TokKind;

std::string fixture(const std::string& name) {
  return std::string(PAO_LINT_FIXTURE_DIR) + "/" + name;
}

/// Options used by the fixture tests: the fixtures' fake Store::addWidget
/// accessor is annotated as returning an unstable reference.
Options fixtureOptions() {
  Options o;
  o.accessors.push_back({"addWidget", "widgets"});
  return o;
}

std::vector<const Finding*> unsuppressed(const std::vector<Finding>& fs) {
  std::vector<const Finding*> out;
  for (const Finding& f : fs) {
    if (!f.suppressed) out.push_back(&f);
  }
  return out;
}

std::vector<Finding> lintFixture(const std::string& name) {
  std::string error;
  std::vector<Finding> fs = lintFile(fixture(name), fixtureOptions(), &error);
  EXPECT_EQ(error, "") << name;
  return fs;
}

// --- Lexer ---------------------------------------------------------------

TEST(LintLexer, TokenizesIdentifiersStringsAndFusedPuncts) {
  const auto r = pao::lint::lex("a->b(\"s\") << c::d;");
  std::vector<std::string> texts;
  for (const auto& t : r.tokens) texts.emplace_back(t.text);
  EXPECT_EQ(texts, (std::vector<std::string>{"a", "->", "b", "(", "\"s\"",
                                             ")", "<<", "c", "::", "d", ";"}));
}

TEST(LintLexer, StripsCommentsAndPreprocessorLines) {
  const auto r = pao::lint::lex(
      "#include <thread>\n// std::thread in a comment\n/* std::async */\nint "
      "x;\n");
  ASSERT_EQ(r.tokens.size(), 3u);
  EXPECT_EQ(r.tokens[0].text, "int");
  EXPECT_EQ(r.tokens[1].line, 4);
}

TEST(LintLexer, StringContentsAreOpaque) {
  const auto r = pao::lint::lex("const char* s = \"std::thread\";");
  const auto findings = lintSource("x.cpp", "void f() { (void)\"std::thread\"; }",
                                   Options());
  EXPECT_TRUE(findings.empty());
  ASSERT_GE(r.tokens.size(), 6u);
  EXPECT_EQ(r.tokens[5].kind, TokKind::kString);
}

TEST(LintLexer, ParsesSuppressionsWithJustification) {
  const auto r = pao::lint::lex(
      "int x;  // pao-lint: allow(executor-hygiene): bench owns its pool\n");
  ASSERT_EQ(r.suppressions.size(), 1u);
  EXPECT_EQ(r.suppressions[0].rule, "executor-hygiene");
  EXPECT_EQ(r.suppressions[0].justification, "bench owns its pool");
  EXPECT_EQ(r.suppressions[0].line, 1);
}

TEST(LintLexer, IgnoresSyntaxDocumentationMentioningAllow) {
  const auto r =
      pao::lint::lex("// pao-lint: allow(<rule>) is how you suppress\n");
  EXPECT_TRUE(r.suppressions.empty());
}

// --- pointer-stability ---------------------------------------------------

TEST(LintPointerStability, FlagsAllKnownPositives) {
  const auto fs = lintFixture("pointer_stability_positive.cpp");
  const auto live = unsuppressed(fs);
  ASSERT_EQ(live.size(), 4u);
  for (const Finding* f : live) EXPECT_EQ(f->rule, "pointer-stability");
  EXPECT_EQ(live[0]->line, 20);  // generic emplace_back dangle
  EXPECT_EQ(live[1]->line, 27);  // annotated accessor dangle
  EXPECT_EQ(live[2]->line, 36);  // push_back invalidation
  EXPECT_EQ(live[3]->line, 49);  // interner viewOf held across intern
  EXPECT_NE(live[1]->message.find("addWidget"), std::string::npos);
  EXPECT_NE(live[3]->message.find("intern"), std::string::npos);
}

// The interner accessors ship in the built-in annotation list (see
// util/interner.hpp's storage contract), not just in test options.
TEST(LintPointerStability, DefaultAccessorsCoverInterner) {
  const auto acc = pao::lint::defaultAccessors();
  const auto has = [&acc](const std::string& method) {
    return std::any_of(acc.begin(), acc.end(), [&](const auto& a) {
      return a.method == method && a.group == "interner";
    });
  };
  EXPECT_TRUE(has("viewOf"));
  EXPECT_TRUE(has("intern"));
}

TEST(LintPointerStability, AcceptsAllKnownNegatives) {
  const auto fs = lintFixture("pointer_stability_negative.cpp");
  EXPECT_TRUE(unsuppressed(fs).empty());
  // The deque case is present but suppressed with a justification.
  EXPECT_EQ(std::count_if(fs.begin(), fs.end(),
                          [](const Finding& f) { return f.suppressed; }),
            1);
}

TEST(LintPointerStability, SiblingAccessorsInSameGroupInvalidate) {
  Options o;
  o.accessors.push_back({"addLayer", "db-layers"});
  o.accessors.push_back({"insertLayer", "db-layers"});
  const auto fs = lintSource("x.cpp",
                             "void f(Tech& t) {\n"
                             "  Layer& a = t.addLayer(1);\n"
                             "  t.insertLayer(0);\n"
                             "  a.index = 3;\n"
                             "}\n",
                             o);
  const auto live = unsuppressed(fs);
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0]->line, 4);
  EXPECT_NE(live[0]->message.find("insertLayer"), std::string::npos);
}

TEST(LintPointerStability, DifferentReceiversDoNotInvalidate) {
  Options o;
  o.accessors.push_back({"addLayer", "db-layers"});
  const auto fs = lintSource("x.cpp",
                             "void f(Tech& t1, Tech& t2) {\n"
                             "  Layer& a = t1.addLayer(1);\n"
                             "  t2.addLayer(2);\n"
                             "  a.index = 3;\n"
                             "}\n",
                             o);
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintPointerStability, ScopeExitDropsBindings) {
  const auto fs = lintSource("x.cpp",
                             "void f() {\n"
                             "  std::vector<int> v;\n"
                             "  { int& r = v.emplace_back(1); r = 2; }\n"
                             "  v.emplace_back(2);\n"
                             "  int r = 0;\n"  // unrelated r, new scope
                             "  (void)r;\n"
                             "}\n",
                             Options());
  EXPECT_TRUE(unsuppressed(fs).empty());
}

// --- unordered-iteration -------------------------------------------------

TEST(LintUnorderedIteration, FlagsAllKnownPositives) {
  const auto fs = lintFixture("unordered_iteration_positive.cpp");
  const auto live = unsuppressed(fs);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0]->rule, "unordered-iteration");
  EXPECT_EQ(live[0]->line, 10);
  EXPECT_EQ(live[1]->line, 20);
}

TEST(LintUnorderedIteration, AcceptsAllKnownNegatives) {
  const auto fs = lintFixture("unordered_iteration_negative.cpp");
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintUnorderedIteration, SortInsideEnclosingBlockCounts) {
  const auto fs = lintSource(
      "x.cpp",
      "std::vector<int> f(const std::unordered_set<int>& s) {\n"
      "  std::vector<int> out;\n"
      "  for (int v : s) out.push_back(v);\n"
      "  std::stable_sort(out.begin(), out.end());\n"
      "  return out;\n"
      "}\n",
      Options());
  EXPECT_TRUE(unsuppressed(fs).empty());
}

// --- executor-hygiene ----------------------------------------------------

TEST(LintExecutorHygiene, FlagsAllKnownPositives) {
  const auto fs = lintFixture("executor_hygiene_positive.cpp");
  const auto live = unsuppressed(fs);
  ASSERT_EQ(live.size(), 3u);
  EXPECT_EQ(live[0]->line, 13);
  EXPECT_NE(live[0]->message.find("std::thread"), std::string::npos);
  EXPECT_EQ(live[1]->line, 18);
  EXPECT_NE(live[1]->message.find("std::async"), std::string::npos);
  EXPECT_EQ(live[2]->line, 25);
  EXPECT_NE(live[2]->message.find("mutable"), std::string::npos);
}

TEST(LintExecutorHygiene, AcceptsAllKnownNegatives) {
  const auto fs = lintFixture("executor_hygiene_negative.cpp");
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintExecutorHygiene, ExecutorImplementationIsExempt) {
  const auto fs = lintSource("src/util/executor.cpp",
                             "void f() { std::thread t; }", Options());
  EXPECT_TRUE(unsuppressed(fs).empty());
  const auto other =
      lintSource("src/drc/engine.cpp", "void f() { std::thread t; }",
                 Options());
  EXPECT_EQ(unsuppressed(other).size(), 1u);
}

/// Reads a fixture file but lints it under a synthetic path, for rules whose
/// applicability depends on the source location (the src/serve/ socket ban).
std::vector<Finding> lintFixtureAs(const std::string& name,
                                   const std::string& asPath) {
  std::ifstream f(fixture(name));
  EXPECT_TRUE(f.good()) << name;
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string src = ss.str();
  return lintSource(asPath, src, fixtureOptions());
}

TEST(LintExecutorHygiene, FlagsSocketIoInServeWorkers) {
  const auto fs = lintFixtureAs("executor_hygiene_serve_positive.cpp",
                                "src/serve/fixture.cpp");
  const auto live = unsuppressed(fs);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0]->line, 22);
  EXPECT_NE(live[0]->message.find("'read'"), std::string::npos);
  EXPECT_EQ(live[1]->line, 33);
  EXPECT_NE(live[1]->message.find("'send'"), std::string::npos);
}

TEST(LintExecutorHygiene, AcceptsServeSocketNegatives) {
  const auto fs = lintFixtureAs("executor_hygiene_serve_negative.cpp",
                                "src/serve/fixture.cpp");
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintExecutorHygiene, SocketBanIsScopedToServePaths) {
  // The same worker-reads-socket source is legal outside src/serve/ (e.g.
  // a test harness driving real client sockets from parallelFor).
  const auto fs = lintFixtureAs("executor_hygiene_serve_positive.cpp",
                                "tests/test_serve.cpp");
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintExecutorHygiene, FlagsJobGraphPositives) {
  const auto fs = lintFixture("executor_hygiene_jobs_positive.cpp");
  const auto live = unsuppressed(fs);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0]->line, 25);
  EXPECT_NE(live[0]->message.find("mutable-capture lambda submitted"),
            std::string::npos);
  EXPECT_EQ(live[1]->line, 33);
  EXPECT_NE(live[1]->message.find("parallelFor inside a job-node body"),
            std::string::npos);
}

TEST(LintExecutorHygiene, FlagsSocketIoInServeJobNodes) {
  // Under src/serve/ the same fixture additionally trips the socket ban
  // for the read() inside a graph node.
  const auto fs = lintFixtureAs("executor_hygiene_jobs_positive.cpp",
                                "src/serve/fixture.cpp");
  const auto live = unsuppressed(fs);
  ASSERT_EQ(live.size(), 3u);
  EXPECT_EQ(live[2]->line, 44);
  EXPECT_NE(live[2]->message.find("'read'"), std::string::npos);
  EXPECT_NE(live[2]->message.find("job-graph node"), std::string::npos);
}

TEST(LintExecutorHygiene, AcceptsJobGraphNegatives) {
  EXPECT_TRUE(
      unsuppressed(lintFixture("executor_hygiene_jobs_negative.cpp")).empty());
  // The dispatch shape stays clean under the serve socket ban too.
  const auto fs = lintFixtureAs("executor_hygiene_jobs_negative.cpp",
                                "src/serve/fixture.cpp");
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintExecutorHygiene, JobGraphImplementationIsExempt) {
  // The job-graph implementation owns its worker pool: raw std::thread is
  // exempt there, exactly like the executor.
  const auto fs = lintSource("src/util/jobs.cpp",
                             "void f() { std::thread t; }", Options());
  EXPECT_TRUE(unsuppressed(fs).empty());
}

// --- obs-naming ----------------------------------------------------------

TEST(LintObsNaming, FlagsAllKnownPositives) {
  const auto fs = lintFixture("obs_naming_positive.cpp");
  const auto live = unsuppressed(fs);
  ASSERT_EQ(live.size(), 5u);
  for (const Finding* f : live) EXPECT_EQ(f->rule, "obs-naming");
  EXPECT_EQ(live[0]->line, 10);  // missing pao. root
  EXPECT_EQ(live[1]->line, 11);  // only two segments
  EXPECT_EQ(live[2]->line, 12);  // uppercase
  EXPECT_EQ(live[3]->line, 13);  // empty segment
  EXPECT_EQ(live[4]->line, 14);  // dash not allowed
  EXPECT_NE(live[0]->message.find("step1.pins"), std::string::npos);
  // The justified allow() in the fixture suppresses exactly one finding.
  EXPECT_EQ(std::count_if(fs.begin(), fs.end(),
                          [](const Finding& f) { return f.suppressed; }),
            1);
}

TEST(LintObsNaming, AcceptsAllKnownNegatives) {
  const auto fs = lintFixture("obs_naming_negative.cpp");
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintObsNaming, MacroDefinitionLinesAreInvisible) {
  // The real macros are defined on preprocessor lines, which the lexer
  // strips — so obs/metrics.hpp's own `#define PAO_COUNTER_ADD(...)` bodies
  // never trip the rule.
  const auto fs = lintSource(
      "src/obs/metrics.hpp",
      "#define PAO_COUNTER_ADD(name, n) \\\n"
      "  do { registryAdd(name, n); } while (0)\n"
      "int x;\n",
      Options());
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintObsNaming, AllowsSuppressionById) {
  const auto fs = lintSource(
      "x.cpp",
      "void PAO_COUNTER_INC(const char*);\n"
      "// pao-lint: allow(obs-naming): legacy dashboard expects this name\n"
      "void f() { PAO_COUNTER_INC(\"legacy_counter\"); }\n",
      Options());
  EXPECT_TRUE(unsuppressed(fs).empty());
}

// --- diag-hygiene --------------------------------------------------------

/// The fixture directory lives under tests/, which the default options
/// exempt from diag-hygiene — so lint the fixture's content under a
/// synthetic library path instead.
std::vector<Finding> lintDiagFixture(const std::string& name) {
  std::string error;
  std::ifstream in(fixture(name));
  EXPECT_TRUE(in.good()) << name;
  std::ostringstream buf;
  buf << in.rdbuf();
  return lintSource("src/lefdef/" + name, buf.str(), fixtureOptions());
}

TEST(LintDiagHygiene, FlagsAllKnownPositives) {
  const auto fs = lintDiagFixture("diag_hygiene_positive.cpp");
  const auto live = unsuppressed(fs);
  ASSERT_EQ(live.size(), 2u);
  for (const Finding* f : live) EXPECT_EQ(f->rule, "diag-hygiene");
  EXPECT_EQ(live[0]->line, 11);
  EXPECT_EQ(live[1]->line, 16);
  EXPECT_NE(live[0]->hint.find("ParseError"), std::string::npos);
}

TEST(LintDiagHygiene, AcceptsAllKnownNegatives) {
  const auto fs = lintDiagFixture("diag_hygiene_negative.cpp");
  EXPECT_TRUE(unsuppressed(fs).empty());
  // The justified allow() covers exactly the one bare throw.
  EXPECT_EQ(std::count_if(fs.begin(), fs.end(),
                          [](const Finding& f) { return f.suppressed; }),
            1);
}

TEST(LintDiagHygiene, ExemptPathsAreSkipped) {
  const std::string src = "void f() { throw std::runtime_error(\"x\"); }";
  EXPECT_TRUE(
      unsuppressed(lintSource("src/util/fault.cpp", src, Options())).empty());
  EXPECT_TRUE(
      unsuppressed(lintSource("tools/pao_cli.cpp", src, Options())).empty());
  EXPECT_TRUE(unsuppressed(lintSource("tests/test_fault.cpp", src, Options()))
                  .empty());
  EXPECT_EQ(
      unsuppressed(lintSource("src/pao/session.cpp", src, Options())).size(),
      1u);
}

// --- suppression syntax --------------------------------------------------

TEST(LintSuppression, MalformedSuppressionsAreReported) {
  const auto fs = lintFixture("suppression_malformed.cpp");
  const auto live = unsuppressed(fs);
  // 2 raw-thread findings (the bad allows do not suppress) + 1 missing
  // justification + 1 unknown rule id.
  ASSERT_EQ(live.size(), 4u);
  const auto count = [&](std::string_view rule) {
    return std::count_if(live.begin(), live.end(), [&](const Finding* f) {
      return f->rule == rule;
    });
  };
  EXPECT_EQ(count("executor-hygiene"), 2);
  EXPECT_EQ(count("suppression"), 2);
}

TEST(LintSuppression, CommentOnPrecedingLineCoversNextLine) {
  const auto fs = lintSource(
      "x.cpp",
      "// pao-lint: allow(executor-hygiene): spawn cost benchmark\n"
      "void f() { std::thread t; }\n",
      Options());
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintSuppression, WrongRuleDoesNotSuppress) {
  const auto fs = lintSource(
      "x.cpp",
      "// pao-lint: allow(pointer-stability): wrong rule for this finding\n"
      "void f() { std::thread t; }\n",
      Options());
  EXPECT_EQ(unsuppressed(fs).size(), 1u);
}

// --- Whole-program pass (lintTree) ---------------------------------------

std::string readFixture(const std::string& name) {
  std::ifstream in(fixture(name));
  EXPECT_TRUE(in.is_open()) << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Runs lintTree over fixture files mounted at synthetic repo paths (the
/// layering and catalog rules key off src/<module>/ components that the
/// real lint_fixtures/ directory deliberately lacks).
std::vector<Finding> lintTreeFixtures(
    const std::vector<std::pair<std::string, std::string>>& pathAndFixture,
    const Options& options) {
  std::vector<pao::lint::FileInput> files;
  for (const auto& [path, name] : pathAndFixture) {
    files.push_back({path, readFixture(name)});
  }
  return pao::lint::lintTree(files, options);
}

/// Options wired to the miniature design doc the catalog fixtures are
/// audited against.
Options docOptions() {
  Options o = fixtureOptions();
  o.designDocPath = "catalog_drift_doc.md";
  o.designDocText = readFixture("catalog_drift_doc.md");
  return o;
}

std::vector<const Finding*> ruleFindings(const std::vector<Finding>& fs,
                                         std::string_view rule) {
  std::vector<const Finding*> out;
  for (const Finding& f : fs) {
    if (!f.suppressed && f.rule == rule) out.push_back(&f);
  }
  return out;
}

TEST(LintLayering, ModuleRanksFollowTheDag) {
  using pao::lint::moduleRankOfFile;
  using pao::lint::moduleRankOfInclude;
  EXPECT_LT(moduleRankOfInclude("util/env.hpp"),
            moduleRankOfInclude("geom/polygon.hpp"));
  EXPECT_LT(moduleRankOfInclude("db/tech.hpp"),
            moduleRankOfInclude("serve/service.hpp"));
  EXPECT_EQ(moduleRankOfInclude("obs/metrics.hpp"), 0);
  EXPECT_EQ(moduleRankOfInclude("vector"), -1);
  EXPECT_EQ(moduleRankOfFile("src/drc/engine.cpp"),
            moduleRankOfInclude("drc/engine.hpp"));
  EXPECT_EQ(moduleRankOfFile("tools/pao_cli.cpp"), -1);
  EXPECT_EQ(moduleRankOfFile("tests/test_lint.cpp"), -1);
}

TEST(LintLayering, PositiveFixtureFlagsUpwardAndSiblingIncludes) {
  const auto fs = lintTreeFixtures(
      {{"src/drc/layering_positive.cpp", "layering_positive.cpp"}}, Options());
  const auto hits = ruleFindings(fs, pao::lint::kRuleLayering);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0]->line, 8);  // serve/ from drc/: upward
  EXPECT_EQ(hits[1]->line, 9);  // benchgen/ from drc/: sibling
  EXPECT_EQ(unsuppressed(fs).size(), 2u);
}

TEST(LintLayering, NegativeFixtureIsClean) {
  const auto fs = lintTreeFixtures(
      {{"src/router/layering_negative.cpp", "layering_negative.cpp"}},
      Options());
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintLockDiscipline, PositiveFixtureFlagsBlockingAndDoubleLock) {
  const auto fs = lintTreeFixtures(
      {{"src/db/lock_discipline_positive.cpp", "lock_discipline_positive.cpp"}},
      Options());
  const auto hits = ruleFindings(fs, pao::lint::kRuleLockDiscipline);
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_EQ(hits[0]->line, 21);  // std::ifstream under gMu
  EXPECT_EQ(hits[1]->line, 27);  // parallelFor under gMu
  EXPECT_EQ(hits[2]->line, 32);  // join() under scoped_lock
  EXPECT_EQ(hits[3]->line, 37);  // double lock of gMu
  EXPECT_NE(hits[3]->message.find("double lock"), std::string::npos);
  EXPECT_EQ(unsuppressed(fs).size(), 4u);
}

TEST(LintLockDiscipline, NegativeFixtureIsClean) {
  const auto fs = lintTreeFixtures(
      {{"src/db/lock_discipline_negative.cpp", "lock_discipline_negative.cpp"}},
      Options());
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintLockDiscipline, CrossFileInversionFlagsBothSites) {
  const auto fs = lintTreeFixtures(
      {{"src/db/lock_order_a.cpp", "lock_order_a.cpp"},
       {"src/db/lock_order_b.cpp", "lock_order_b.cpp"}},
      Options());
  const auto hits = ruleFindings(fs, pao::lint::kRuleLockDiscipline);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0]->file, "src/db/lock_order_a.cpp");
  EXPECT_EQ(hits[0]->line, 13);
  EXPECT_EQ(hits[1]->file, "src/db/lock_order_b.cpp");
  EXPECT_EQ(hits[1]->line, 11);
  EXPECT_NE(hits[0]->message.find("acquisition order"), std::string::npos);
}

TEST(LintLockDiscipline, TreeRuleFindingsAreSuppressible) {
  const std::string src =
      "std::mutex m;\n"
      "void f(const char* p) {\n"
      "  const std::lock_guard<std::mutex> g(m);\n"
      "  // pao-lint: allow(lock-discipline): startup path, no contention\n"
      "  std::ifstream in(p);\n"
      "}\n";
  const auto fs = pao::lint::lintTree({{"src/db/s.cpp", src}}, Options());
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, pao::lint::kRuleLockDiscipline);
  EXPECT_TRUE(fs[0].suppressed);
}

TEST(LintCatalogDrift, PositiveFixtureFlagsBothDirections) {
  const auto fs = lintTreeFixtures(
      {{"src/fix/catalog_drift_positive.cpp", "catalog_drift_positive.cpp"}},
      docOptions());
  const auto hits = ruleFindings(fs, pao::lint::kRuleCatalogDrift);
  ASSERT_EQ(hits.size(), 4u);
  // Dead-in-docs finding is anchored in the doc; sort order puts the doc
  // path first (c < s).
  EXPECT_EQ(hits[0]->file, "catalog_drift_doc.md");
  EXPECT_NE(hits[0]->message.find("pao.fix.gone"), std::string::npos);
  EXPECT_EQ(hits[1]->line, 12);
  EXPECT_NE(hits[1]->message.find("SRV777"), std::string::npos);
  EXPECT_EQ(hits[2]->line, 16);
  EXPECT_NE(hits[2]->message.find("pao.fix.beta"), std::string::npos);
  EXPECT_EQ(hits[3]->line, 21);
  EXPECT_NE(hits[3]->message.find("pt.two"), std::string::npos);
  EXPECT_EQ(unsuppressed(fs).size(), 4u);
}

TEST(LintCatalogDrift, NegativeFixtureIsClean) {
  const auto fs = lintTreeFixtures(
      {{"src/fix/catalog_drift_negative.cpp", "catalog_drift_negative.cpp"}},
      docOptions());
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintCatalogDrift, TestsPathsAreExemptButStillKeepEntriesAlive) {
  // Mounted under tests/: the undocumented-in-code direction is waived, but
  // the file's uses still feed the alive set, so only pao.fix.gone (which
  // the positive fixture never mentions) stays dead.
  const auto fs = lintTreeFixtures(
      {{"tests/catalog_drift_positive.cpp", "catalog_drift_positive.cpp"}},
      docOptions());
  const auto hits = ruleFindings(fs, pao::lint::kRuleCatalogDrift);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->file, "catalog_drift_doc.md");
  EXPECT_NE(hits[0]->message.find("pao.fix.gone"), std::string::npos);
}

std::string readRealDesignDoc() {
  std::ifstream in(PAO_DESIGN_DOC);
  EXPECT_TRUE(in.is_open()) << PAO_DESIGN_DOC;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<const Finding*> mentioning(const std::vector<Finding>& fs,
                                       std::string_view ident) {
  std::vector<const Finding*> out;
  for (const Finding& f : fs) {
    if (!f.suppressed && f.rule == pao::lint::kRuleCatalogDrift &&
        f.message.find(ident) != std::string::npos) {
      out.push_back(&f);
    }
  }
  return out;
}

TEST(LintCatalogDrift, DeletingADocumentedCodeFailsBothDirections) {
  // The ISSUE acceptance scenario, run against the real DESIGN.md: a
  // scratch copy with SRV004 scrubbed must (a) flag an emission site of
  // SRV004 as undocumented, while the intact doc does not, and (b) the
  // intact doc must flag SRV004 as dead when no scanned file emits it.
  const std::string doc = readRealDesignDoc();
  ASSERT_NE(doc.find("SRV004"), std::string::npos);
  std::string scrubbed = doc;
  for (std::size_t at = scrubbed.find("SRV004"); at != std::string::npos;
       at = scrubbed.find("SRV004", at)) {
    scrubbed.replace(at, 6, "zzzzzz");
  }

  const std::string emitter =
      "const char* unknownTenant() { return \"SRV004\"; }\n";
  Options intact;
  intact.designDocPath = "DESIGN.md";
  intact.designDocText = doc;
  Options cut = intact;
  cut.designDocText = scrubbed;

  // (a) undocumented-in-code: only the scrubbed doc produces a finding.
  const auto clean =
      pao::lint::lintTree({{"src/serve/emitter.cpp", emitter}}, intact);
  EXPECT_TRUE(mentioning(clean, "SRV004").empty());
  const auto broken =
      pao::lint::lintTree({{"src/serve/emitter.cpp", emitter}}, cut);
  const auto undocumented = mentioning(broken, "SRV004");
  ASSERT_EQ(undocumented.size(), 1u);
  EXPECT_EQ(undocumented[0]->file, "src/serve/emitter.cpp");
  EXPECT_EQ(undocumented[0]->line, 1);

  // (b) dead-in-docs: the intact doc plus a tree that never emits SRV004.
  const auto dead = pao::lint::lintTree(
      {{"src/serve/emitter.cpp", "int x;\n"}}, intact);
  const auto deadHits = mentioning(dead, "SRV004");
  ASSERT_EQ(deadHits.size(), 1u);
  EXPECT_EQ(deadHits[0]->file, "DESIGN.md");
}

// --- Output formats and the baseline ratchet -----------------------------

TEST(LintOutput, RelativizePathFindsLastRepoComponent) {
  using pao::lint::relativizePath;
  EXPECT_EQ(relativizePath("/home/u/repo/src/db/tech.hpp"), "src/db/tech.hpp");
  EXPECT_EQ(relativizePath("./tools/lint/rules.cpp"), "tools/lint/rules.cpp");
  EXPECT_EQ(relativizePath("/home/u/repo/DESIGN.md"), "DESIGN.md");
  EXPECT_EQ(relativizePath("unrooted.cpp"), "unrooted.cpp");
  // `last` component: a scratch checkout under a src/ directory still
  // resolves to the in-repo path.
  EXPECT_EQ(relativizePath("/src/jobs/repo/src/geom/rect.hpp"),
            "src/geom/rect.hpp");
}

TEST(LintOutput, BaselineKeyIgnoresLineNumbers) {
  Finding a;
  a.rule = pao::lint::kRuleLayering;
  a.file = "/abs/path/src/drc/engine.cpp";
  a.line = 10;
  a.message = "m";
  Finding b = a;
  b.file = "src/drc/engine.cpp";
  b.line = 99;
  EXPECT_EQ(pao::lint::baselineKey(a), pao::lint::baselineKey(b));

  pao::lint::Baseline base;
  base.keys.insert(pao::lint::baselineKey(a));
  EXPECT_TRUE(base.contains(b));
  b.message = "other";
  EXPECT_FALSE(base.contains(b));
}

TEST(LintOutput, BaselineRoundTripsThroughRenderAndLoad) {
  const auto fs = lintTreeFixtures(
      {{"src/db/lock_discipline_positive.cpp", "lock_discipline_positive.cpp"}},
      Options());
  ASSERT_FALSE(fs.empty());
  const std::string path =
      ::testing::TempDir() + "/pao_lint_baseline_test.txt";
  {
    std::ofstream out(path);
    out << pao::lint::renderBaseline(fs);
  }
  pao::lint::Baseline base;
  std::string error;
  ASSERT_TRUE(pao::lint::loadBaseline(path, &base, &error)) << error;
  for (const Finding& f : fs) EXPECT_TRUE(base.contains(f));

  // The ratchet only silences what it has seen: a new finding still fires.
  Finding fresh;
  fresh.rule = pao::lint::kRuleLockDiscipline;
  fresh.file = "src/db/other.cpp";
  fresh.message = "new regression";
  EXPECT_FALSE(base.contains(fresh));
}

TEST(LintOutput, JsonReportParsesAndCountsFindings) {
  const auto fs = lintTreeFixtures(
      {{"src/drc/layering_positive.cpp", "layering_positive.cpp"}}, Options());
  const std::string text = pao::lint::renderJson(fs, 1);
  std::string error;
  const auto doc = pao::obs::Json::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const pao::obs::Json* findings = doc->find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_TRUE(findings->isArray());
  EXPECT_EQ(findings->items().size(), fs.size());
  const pao::obs::Json* summary = doc->find("summary");
  ASSERT_NE(summary, nullptr);
  const pao::obs::Json* files = summary->find("files_scanned");
  ASSERT_NE(files, nullptr);
  EXPECT_EQ(files->asDouble(), 1.0);
}

TEST(LintOutput, SarifReportHasRulesResultsAndLocations) {
  auto fs = lintTreeFixtures(
      {{"src/db/lock_discipline_positive.cpp", "lock_discipline_positive.cpp"}},
      Options());
  ASSERT_EQ(fs.size(), 4u);
  fs[0].suppressed = true;   // exercise the suppressions array
  fs[1].baselined = true;    // exercise baselineState "unchanged"
  const std::string text = pao::lint::renderSarif(fs);
  std::string error;
  const auto doc = pao::obs::Json::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;

  const pao::obs::Json* version = doc->find("version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->asString(), "2.1.0");
  const pao::obs::Json* runs = doc->find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->items().size(), 1u);
  const pao::obs::Json& run = runs->items()[0];

  const pao::obs::Json* driver = run.find("tool")->find("driver");
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(driver->find("name")->asString(), "pao_lint");
  EXPECT_EQ(driver->find("rules")->items().size(),
            pao::lint::ruleCatalog().size());

  const pao::obs::Json* results = run.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->items().size(), fs.size());
  const pao::obs::Json& first = results->items()[0];
  EXPECT_EQ(first.find("ruleId")->asString(), "lock-discipline");
  ASSERT_NE(first.find("message")->find("text"), nullptr);
  const pao::obs::Json& loc =
      first.find("locations")->items()[0];
  const pao::obs::Json* phys = loc.find("physicalLocation");
  ASSERT_NE(phys, nullptr);
  EXPECT_EQ(phys->find("artifactLocation")->find("uri")->asString(),
            "src/db/lock_discipline_positive.cpp");
  EXPECT_EQ(phys->find("region")->find("startLine")->asDouble(), 21.0);
  ASSERT_NE(first.find("suppressions"), nullptr);
  EXPECT_EQ(first.find("suppressions")
                ->items()[0]
                .find("kind")
                ->asString(),
            "inSource");
  EXPECT_EQ(results->items()[1].find("baselineState")->asString(),
            "unchanged");
  EXPECT_EQ(results->items()[2].find("baselineState")->asString(), "new");
}

TEST(LintOutput, RuleCatalogCoversEveryKnownRule) {
  const auto& catalog = pao::lint::ruleCatalog();
  EXPECT_EQ(catalog.size(), 9u);
  for (const auto& rule : catalog) {
    EXPECT_FALSE(rule.summary.empty()) << rule.id;
    if (rule.id == pao::lint::kRuleSuppression) {
      EXPECT_FALSE(rule.suppressible);
    } else {
      EXPECT_TRUE(rule.suppressible) << rule.id;
    }
  }
  pao::lint::Format fmt = pao::lint::Format::kText;
  EXPECT_TRUE(pao::lint::parseFormat("sarif", &fmt));
  EXPECT_EQ(fmt, pao::lint::Format::kSarif);
  EXPECT_FALSE(pao::lint::parseFormat("xml", &fmt));
}

}  // namespace
