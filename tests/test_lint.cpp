// Tests for pao_lint (tools/lint/): tokenizer behavior, all five rules
// against in-memory sources and the known-positive / known-negative fixture
// files under tests/lint_fixtures/, and the suppression syntax.
#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lexer.hpp"
#include "lint/rules.hpp"

namespace {

using pao::lint::Finding;
using pao::lint::lintFile;
using pao::lint::lintSource;
using pao::lint::Options;
using pao::lint::TokKind;

std::string fixture(const std::string& name) {
  return std::string(PAO_LINT_FIXTURE_DIR) + "/" + name;
}

/// Options used by the fixture tests: the fixtures' fake Store::addWidget
/// accessor is annotated as returning an unstable reference.
Options fixtureOptions() {
  Options o;
  o.accessors.push_back({"addWidget", "widgets"});
  return o;
}

std::vector<const Finding*> unsuppressed(const std::vector<Finding>& fs) {
  std::vector<const Finding*> out;
  for (const Finding& f : fs) {
    if (!f.suppressed) out.push_back(&f);
  }
  return out;
}

std::vector<Finding> lintFixture(const std::string& name) {
  std::string error;
  std::vector<Finding> fs = lintFile(fixture(name), fixtureOptions(), &error);
  EXPECT_EQ(error, "") << name;
  return fs;
}

// --- Lexer ---------------------------------------------------------------

TEST(LintLexer, TokenizesIdentifiersStringsAndFusedPuncts) {
  const auto r = pao::lint::lex("a->b(\"s\") << c::d;");
  std::vector<std::string> texts;
  for (const auto& t : r.tokens) texts.emplace_back(t.text);
  EXPECT_EQ(texts, (std::vector<std::string>{"a", "->", "b", "(", "\"s\"",
                                             ")", "<<", "c", "::", "d", ";"}));
}

TEST(LintLexer, StripsCommentsAndPreprocessorLines) {
  const auto r = pao::lint::lex(
      "#include <thread>\n// std::thread in a comment\n/* std::async */\nint "
      "x;\n");
  ASSERT_EQ(r.tokens.size(), 3u);
  EXPECT_EQ(r.tokens[0].text, "int");
  EXPECT_EQ(r.tokens[1].line, 4);
}

TEST(LintLexer, StringContentsAreOpaque) {
  const auto r = pao::lint::lex("const char* s = \"std::thread\";");
  const auto findings = lintSource("x.cpp", "void f() { (void)\"std::thread\"; }",
                                   Options());
  EXPECT_TRUE(findings.empty());
  ASSERT_GE(r.tokens.size(), 6u);
  EXPECT_EQ(r.tokens[5].kind, TokKind::kString);
}

TEST(LintLexer, ParsesSuppressionsWithJustification) {
  const auto r = pao::lint::lex(
      "int x;  // pao-lint: allow(executor-hygiene): bench owns its pool\n");
  ASSERT_EQ(r.suppressions.size(), 1u);
  EXPECT_EQ(r.suppressions[0].rule, "executor-hygiene");
  EXPECT_EQ(r.suppressions[0].justification, "bench owns its pool");
  EXPECT_EQ(r.suppressions[0].line, 1);
}

TEST(LintLexer, IgnoresSyntaxDocumentationMentioningAllow) {
  const auto r =
      pao::lint::lex("// pao-lint: allow(<rule>) is how you suppress\n");
  EXPECT_TRUE(r.suppressions.empty());
}

// --- pointer-stability ---------------------------------------------------

TEST(LintPointerStability, FlagsAllKnownPositives) {
  const auto fs = lintFixture("pointer_stability_positive.cpp");
  const auto live = unsuppressed(fs);
  ASSERT_EQ(live.size(), 3u);
  for (const Finding* f : live) EXPECT_EQ(f->rule, "pointer-stability");
  EXPECT_EQ(live[0]->line, 20);  // generic emplace_back dangle
  EXPECT_EQ(live[1]->line, 27);  // annotated accessor dangle
  EXPECT_EQ(live[2]->line, 36);  // push_back invalidation
  EXPECT_NE(live[1]->message.find("addWidget"), std::string::npos);
}

TEST(LintPointerStability, AcceptsAllKnownNegatives) {
  const auto fs = lintFixture("pointer_stability_negative.cpp");
  EXPECT_TRUE(unsuppressed(fs).empty());
  // The deque case is present but suppressed with a justification.
  EXPECT_EQ(std::count_if(fs.begin(), fs.end(),
                          [](const Finding& f) { return f.suppressed; }),
            1);
}

TEST(LintPointerStability, SiblingAccessorsInSameGroupInvalidate) {
  Options o;
  o.accessors.push_back({"addLayer", "db-layers"});
  o.accessors.push_back({"insertLayer", "db-layers"});
  const auto fs = lintSource("x.cpp",
                             "void f(Tech& t) {\n"
                             "  Layer& a = t.addLayer(1);\n"
                             "  t.insertLayer(0);\n"
                             "  a.index = 3;\n"
                             "}\n",
                             o);
  const auto live = unsuppressed(fs);
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0]->line, 4);
  EXPECT_NE(live[0]->message.find("insertLayer"), std::string::npos);
}

TEST(LintPointerStability, DifferentReceiversDoNotInvalidate) {
  Options o;
  o.accessors.push_back({"addLayer", "db-layers"});
  const auto fs = lintSource("x.cpp",
                             "void f(Tech& t1, Tech& t2) {\n"
                             "  Layer& a = t1.addLayer(1);\n"
                             "  t2.addLayer(2);\n"
                             "  a.index = 3;\n"
                             "}\n",
                             o);
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintPointerStability, ScopeExitDropsBindings) {
  const auto fs = lintSource("x.cpp",
                             "void f() {\n"
                             "  std::vector<int> v;\n"
                             "  { int& r = v.emplace_back(1); r = 2; }\n"
                             "  v.emplace_back(2);\n"
                             "  int r = 0;\n"  // unrelated r, new scope
                             "  (void)r;\n"
                             "}\n",
                             Options());
  EXPECT_TRUE(unsuppressed(fs).empty());
}

// --- unordered-iteration -------------------------------------------------

TEST(LintUnorderedIteration, FlagsAllKnownPositives) {
  const auto fs = lintFixture("unordered_iteration_positive.cpp");
  const auto live = unsuppressed(fs);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0]->rule, "unordered-iteration");
  EXPECT_EQ(live[0]->line, 10);
  EXPECT_EQ(live[1]->line, 20);
}

TEST(LintUnorderedIteration, AcceptsAllKnownNegatives) {
  const auto fs = lintFixture("unordered_iteration_negative.cpp");
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintUnorderedIteration, SortInsideEnclosingBlockCounts) {
  const auto fs = lintSource(
      "x.cpp",
      "std::vector<int> f(const std::unordered_set<int>& s) {\n"
      "  std::vector<int> out;\n"
      "  for (int v : s) out.push_back(v);\n"
      "  std::stable_sort(out.begin(), out.end());\n"
      "  return out;\n"
      "}\n",
      Options());
  EXPECT_TRUE(unsuppressed(fs).empty());
}

// --- executor-hygiene ----------------------------------------------------

TEST(LintExecutorHygiene, FlagsAllKnownPositives) {
  const auto fs = lintFixture("executor_hygiene_positive.cpp");
  const auto live = unsuppressed(fs);
  ASSERT_EQ(live.size(), 3u);
  EXPECT_EQ(live[0]->line, 13);
  EXPECT_NE(live[0]->message.find("std::thread"), std::string::npos);
  EXPECT_EQ(live[1]->line, 18);
  EXPECT_NE(live[1]->message.find("std::async"), std::string::npos);
  EXPECT_EQ(live[2]->line, 25);
  EXPECT_NE(live[2]->message.find("mutable"), std::string::npos);
}

TEST(LintExecutorHygiene, AcceptsAllKnownNegatives) {
  const auto fs = lintFixture("executor_hygiene_negative.cpp");
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintExecutorHygiene, ExecutorImplementationIsExempt) {
  const auto fs = lintSource("src/util/executor.cpp",
                             "void f() { std::thread t; }", Options());
  EXPECT_TRUE(unsuppressed(fs).empty());
  const auto other =
      lintSource("src/drc/engine.cpp", "void f() { std::thread t; }",
                 Options());
  EXPECT_EQ(unsuppressed(other).size(), 1u);
}

/// Reads a fixture file but lints it under a synthetic path, for rules whose
/// applicability depends on the source location (the src/serve/ socket ban).
std::vector<Finding> lintFixtureAs(const std::string& name,
                                   const std::string& asPath) {
  std::ifstream f(fixture(name));
  EXPECT_TRUE(f.good()) << name;
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string src = ss.str();
  return lintSource(asPath, src, fixtureOptions());
}

TEST(LintExecutorHygiene, FlagsSocketIoInServeWorkers) {
  const auto fs = lintFixtureAs("executor_hygiene_serve_positive.cpp",
                                "src/serve/fixture.cpp");
  const auto live = unsuppressed(fs);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0]->line, 22);
  EXPECT_NE(live[0]->message.find("'read'"), std::string::npos);
  EXPECT_EQ(live[1]->line, 33);
  EXPECT_NE(live[1]->message.find("'send'"), std::string::npos);
}

TEST(LintExecutorHygiene, AcceptsServeSocketNegatives) {
  const auto fs = lintFixtureAs("executor_hygiene_serve_negative.cpp",
                                "src/serve/fixture.cpp");
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintExecutorHygiene, SocketBanIsScopedToServePaths) {
  // The same worker-reads-socket source is legal outside src/serve/ (e.g.
  // a test harness driving real client sockets from parallelFor).
  const auto fs = lintFixtureAs("executor_hygiene_serve_positive.cpp",
                                "tests/test_serve.cpp");
  EXPECT_TRUE(unsuppressed(fs).empty());
}

// --- obs-naming ----------------------------------------------------------

TEST(LintObsNaming, FlagsAllKnownPositives) {
  const auto fs = lintFixture("obs_naming_positive.cpp");
  const auto live = unsuppressed(fs);
  ASSERT_EQ(live.size(), 5u);
  for (const Finding* f : live) EXPECT_EQ(f->rule, "obs-naming");
  EXPECT_EQ(live[0]->line, 10);  // missing pao. root
  EXPECT_EQ(live[1]->line, 11);  // only two segments
  EXPECT_EQ(live[2]->line, 12);  // uppercase
  EXPECT_EQ(live[3]->line, 13);  // empty segment
  EXPECT_EQ(live[4]->line, 14);  // dash not allowed
  EXPECT_NE(live[0]->message.find("step1.pins"), std::string::npos);
  // The justified allow() in the fixture suppresses exactly one finding.
  EXPECT_EQ(std::count_if(fs.begin(), fs.end(),
                          [](const Finding& f) { return f.suppressed; }),
            1);
}

TEST(LintObsNaming, AcceptsAllKnownNegatives) {
  const auto fs = lintFixture("obs_naming_negative.cpp");
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintObsNaming, MacroDefinitionLinesAreInvisible) {
  // The real macros are defined on preprocessor lines, which the lexer
  // strips — so obs/metrics.hpp's own `#define PAO_COUNTER_ADD(...)` bodies
  // never trip the rule.
  const auto fs = lintSource(
      "src/obs/metrics.hpp",
      "#define PAO_COUNTER_ADD(name, n) \\\n"
      "  do { registryAdd(name, n); } while (0)\n"
      "int x;\n",
      Options());
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintObsNaming, AllowsSuppressionById) {
  const auto fs = lintSource(
      "x.cpp",
      "void PAO_COUNTER_INC(const char*);\n"
      "// pao-lint: allow(obs-naming): legacy dashboard expects this name\n"
      "void f() { PAO_COUNTER_INC(\"legacy_counter\"); }\n",
      Options());
  EXPECT_TRUE(unsuppressed(fs).empty());
}

// --- diag-hygiene --------------------------------------------------------

/// The fixture directory lives under tests/, which the default options
/// exempt from diag-hygiene — so lint the fixture's content under a
/// synthetic library path instead.
std::vector<Finding> lintDiagFixture(const std::string& name) {
  std::string error;
  std::ifstream in(fixture(name));
  EXPECT_TRUE(in.good()) << name;
  std::ostringstream buf;
  buf << in.rdbuf();
  return lintSource("src/lefdef/" + name, buf.str(), fixtureOptions());
}

TEST(LintDiagHygiene, FlagsAllKnownPositives) {
  const auto fs = lintDiagFixture("diag_hygiene_positive.cpp");
  const auto live = unsuppressed(fs);
  ASSERT_EQ(live.size(), 2u);
  for (const Finding* f : live) EXPECT_EQ(f->rule, "diag-hygiene");
  EXPECT_EQ(live[0]->line, 11);
  EXPECT_EQ(live[1]->line, 16);
  EXPECT_NE(live[0]->hint.find("ParseError"), std::string::npos);
}

TEST(LintDiagHygiene, AcceptsAllKnownNegatives) {
  const auto fs = lintDiagFixture("diag_hygiene_negative.cpp");
  EXPECT_TRUE(unsuppressed(fs).empty());
  // The justified allow() covers exactly the one bare throw.
  EXPECT_EQ(std::count_if(fs.begin(), fs.end(),
                          [](const Finding& f) { return f.suppressed; }),
            1);
}

TEST(LintDiagHygiene, ExemptPathsAreSkipped) {
  const std::string src = "void f() { throw std::runtime_error(\"x\"); }";
  EXPECT_TRUE(
      unsuppressed(lintSource("src/util/fault.cpp", src, Options())).empty());
  EXPECT_TRUE(
      unsuppressed(lintSource("tools/pao_cli.cpp", src, Options())).empty());
  EXPECT_TRUE(unsuppressed(lintSource("tests/test_fault.cpp", src, Options()))
                  .empty());
  EXPECT_EQ(
      unsuppressed(lintSource("src/pao/session.cpp", src, Options())).size(),
      1u);
}

// --- suppression syntax --------------------------------------------------

TEST(LintSuppression, MalformedSuppressionsAreReported) {
  const auto fs = lintFixture("suppression_malformed.cpp");
  const auto live = unsuppressed(fs);
  // 2 raw-thread findings (the bad allows do not suppress) + 1 missing
  // justification + 1 unknown rule id.
  ASSERT_EQ(live.size(), 4u);
  const auto count = [&](std::string_view rule) {
    return std::count_if(live.begin(), live.end(), [&](const Finding* f) {
      return f->rule == rule;
    });
  };
  EXPECT_EQ(count("executor-hygiene"), 2);
  EXPECT_EQ(count("suppression"), 2);
}

TEST(LintSuppression, CommentOnPrecedingLineCoversNextLine) {
  const auto fs = lintSource(
      "x.cpp",
      "// pao-lint: allow(executor-hygiene): spawn cost benchmark\n"
      "void f() { std::thread t; }\n",
      Options());
  EXPECT_TRUE(unsuppressed(fs).empty());
}

TEST(LintSuppression, WrongRuleDoesNotSuppress) {
  const auto fs = lintSource(
      "x.cpp",
      "// pao-lint: allow(pointer-stability): wrong rule for this finding\n"
      "void f() { std::thread t; }\n",
      Options());
  EXPECT_EQ(unsuppressed(fs).size(), 1u);
}

}  // namespace
