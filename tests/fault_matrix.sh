#!/bin/sh
# Fault-injection matrix: injects every cataloged fault point into pao_cli
# one at a time and asserts the documented outcome — full recovery
# (identical exit 0, empty degraded section), graceful degradation (exit 4,
# nonzero degraded section, schema-valid pao-report/1), or a clean
# documented failure (exit 1 rejected cache / exit 2 bad spec / exit 3
# fatal). Anything else — especially an abort/signal — fails the matrix.
#
# Usage: fault_matrix.sh <pao_cli> <report_check> <workdir>
# Run by ctest (cli_fault_matrix) and by the ci.sh fault-matrix leg.
set -eu

CLI=$1
CHECK=$2
WORK=$3

mkdir -p "$WORK"
rm -f "$WORK"/fm.* "$WORK"/*.json "$WORK"/*.cache

echo "-- generating testcase"
"$CLI" gen 0 0.002 "$WORK/fm" >/dev/null 2>&1

# expect <name> <want-exit> <command...>: runs the command, asserts the exit
# code, and flags death-by-signal (codes >= 128) explicitly.
expect() {
  name=$1; want=$2; shift 2
  got=0
  "$@" >"$WORK/out.log" 2>&1 || got=$?
  if [ "$got" -ge 128 ]; then
    echo "FAIL [$name]: killed by signal (exit $got)"
    cat "$WORK/out.log"
    exit 1
  fi
  if [ "$got" -ne "$want" ]; then
    echo "FAIL [$name]: exit $got, want $want"
    cat "$WORK/out.log"
    exit 1
  fi
  echo "ok  [$name]: exit $got"
}

LEF="$WORK/fm.lef"
DEF="$WORK/fm.def"
REPORT="$WORK/report.json"
CACHE="$WORK/fm.cache"

echo "-- baseline (no faults)"
expect baseline 0 \
  "$CLI" analyze "$LEF" "$DEF" --cache-out "$CACHE" --report-json "$REPORT"
"$CHECK" report "$REPORT"
cp "$REPORT" "$WORK/baseline.json"

echo "-- cache.read: keep-going recovers fully, strict rejects (exit 1)"
expect cache_read_keepgoing 0 \
  "$CLI" analyze "$LEF" "$DEF" --cache-in "$CACHE" --keep-going \
  --faults cache.read --report-json "$REPORT"
"$CHECK" report "$REPORT"
grep -q '"degraded": \[\]' "$REPORT" || {
  echo "FAIL: cache.read keep-going must leave degraded empty"; exit 1; }
expect cache_read_strict 1 \
  "$CLI" analyze "$LEF" "$DEF" --cache-in "$CACHE" --faults cache.read

echo "-- cache.io: cache unusable is a warning under keep-going"
expect cache_io_keepgoing 0 \
  "$CLI" analyze "$LEF" "$DEF" --cache-in "$CACHE" --keep-going \
  --faults cache.io --report-json "$REPORT"
"$CHECK" report "$REPORT"

echo "-- oracle.class_access: keep-going degrades (exit 4), strict is fatal"
expect class_access_keepgoing 4 \
  "$CLI" analyze "$LEF" "$DEF" --keep-going \
  --faults oracle.class_access --report-json "$REPORT"
"$CHECK" report "$REPORT"
grep -q '"kind": "class_fallback"' "$REPORT" || {
  echo "FAIL: expected class_fallback events in degraded section"; exit 1; }
expect class_access_strict 3 \
  "$CLI" analyze "$LEF" "$DEF" --faults oracle.class_access

echo "-- step3.deadline: budget expiry commits best-so-far (exit 4)"
expect step3_deadline_keepgoing 4 \
  "$CLI" analyze "$LEF" "$DEF" --keep-going \
  --faults step3.deadline --report-json "$REPORT"
"$CHECK" report "$REPORT"
grep -q '"kind": "step3_budget"' "$REPORT" || {
  echo "FAIL: expected step3_budget events in degraded section"; exit 1; }

echo "-- lef.io / def.io: input unreadable is fatal (exit 3) in both modes"
expect lef_io_strict 3 "$CLI" analyze "$LEF" "$DEF" --faults lef.io
expect lef_io_keepgoing 3 \
  "$CLI" analyze "$LEF" "$DEF" --keep-going --faults lef.io
expect def_io_strict 3 "$CLI" analyze "$LEF" "$DEF" --faults def.io

echo "-- never-firing point behaves exactly like no fault at all"
expect never_fires 0 \
  "$CLI" analyze "$LEF" "$DEF" --faults oracle.class_access:999 \
  --report-json "$REPORT"
"$CHECK" report "$REPORT"
grep -q '"degraded": \[\]' "$REPORT" && {
  echo "FAIL: strict no-fire run should have no degraded section"; exit 1; }

echo "-- malformed fault spec is a usage error (exit 2), env and flag"
expect bad_spec_flag 2 "$CLI" analyze "$LEF" "$DEF" --faults 'x:pz'
expect bad_spec_env 2 env PAO_FAULTS='cache.read:p2' \
  "$CLI" analyze "$LEF" "$DEF"

echo "-- PAO_FAULTS env drives the same machinery as --faults"
expect env_class_access 4 env PAO_FAULTS=oracle.class_access \
  "$CLI" analyze "$LEF" "$DEF" --keep-going --report-json "$REPORT"
"$CHECK" report "$REPORT"

echo "fault matrix: all cases pass"
