#!/bin/sh
# Fault-injection matrix: injects every cataloged fault point into pao_cli
# one at a time and asserts the documented outcome — full recovery
# (identical exit 0, empty degraded section), graceful degradation (exit 4,
# nonzero degraded section, schema-valid pao-report/1), or a clean
# documented failure (exit 1 rejected cache / exit 2 bad spec / exit 3
# fatal). Anything else — especially an abort/signal — fails the matrix.
#
# With the optional <pao_serve> <pao_client> arguments the matrix also
# covers the service fault points (serve.accept / serve.read / serve.write)
# plus a client killed mid-request: each must cost only the one affected
# connection — later clients get full service, sessions stay sound, and no
# admission budget leaks (metrics must show "inflight":0 afterwards). The
# daemon must still shut down cleanly with exit 0.
#
# Usage: fault_matrix.sh <pao_cli> <report_check> <workdir> [<pao_serve> <pao_client>]
# Run by ctest (cli_fault_matrix) and by the ci.sh fault-matrix leg.
set -eu

CLI=$1
CHECK=$2
WORK=$3
SERVE=${4:-}
CLIENT=${5:-}

mkdir -p "$WORK"
rm -f "$WORK"/fm.* "$WORK"/*.json "$WORK"/*.cache

echo "-- generating testcase"
"$CLI" gen 0 0.002 "$WORK/fm" >/dev/null 2>&1

# expect <name> <want-exit> <command...>: runs the command, asserts the exit
# code, and flags death-by-signal (codes >= 128) explicitly.
expect() {
  name=$1; want=$2; shift 2
  got=0
  "$@" >"$WORK/out.log" 2>&1 || got=$?
  if [ "$got" -ge 128 ]; then
    echo "FAIL [$name]: killed by signal (exit $got)"
    cat "$WORK/out.log"
    exit 1
  fi
  if [ "$got" -ne "$want" ]; then
    echo "FAIL [$name]: exit $got, want $want"
    cat "$WORK/out.log"
    exit 1
  fi
  echo "ok  [$name]: exit $got"
}

LEF="$WORK/fm.lef"
DEF="$WORK/fm.def"
REPORT="$WORK/report.json"
CACHE="$WORK/fm.cache"

echo "-- baseline (no faults)"
expect baseline 0 \
  "$CLI" analyze "$LEF" "$DEF" --cache-out "$CACHE" --report-json "$REPORT"
"$CHECK" report "$REPORT"
cp "$REPORT" "$WORK/baseline.json"

echo "-- cache.read: keep-going recovers fully, strict rejects (exit 1)"
expect cache_read_keepgoing 0 \
  "$CLI" analyze "$LEF" "$DEF" --cache-in "$CACHE" --keep-going \
  --faults cache.read --report-json "$REPORT"
"$CHECK" report "$REPORT"
grep -q '"degraded": \[\]' "$REPORT" || {
  echo "FAIL: cache.read keep-going must leave degraded empty"; exit 1; }
expect cache_read_strict 1 \
  "$CLI" analyze "$LEF" "$DEF" --cache-in "$CACHE" --faults cache.read

echo "-- cache.io: cache unusable is a warning under keep-going"
expect cache_io_keepgoing 0 \
  "$CLI" analyze "$LEF" "$DEF" --cache-in "$CACHE" --keep-going \
  --faults cache.io --report-json "$REPORT"
"$CHECK" report "$REPORT"

echo "-- oracle.class_access: keep-going degrades (exit 4), strict is fatal"
expect class_access_keepgoing 4 \
  "$CLI" analyze "$LEF" "$DEF" --keep-going \
  --faults oracle.class_access --report-json "$REPORT"
"$CHECK" report "$REPORT"
grep -q '"kind": "class_fallback"' "$REPORT" || {
  echo "FAIL: expected class_fallback events in degraded section"; exit 1; }
expect class_access_strict 3 \
  "$CLI" analyze "$LEF" "$DEF" --faults oracle.class_access

echo "-- step3.deadline: budget expiry commits best-so-far (exit 4)"
expect step3_deadline_keepgoing 4 \
  "$CLI" analyze "$LEF" "$DEF" --keep-going \
  --faults step3.deadline --report-json "$REPORT"
"$CHECK" report "$REPORT"
grep -q '"kind": "step3_budget"' "$REPORT" || {
  echo "FAIL: expected step3_budget events in degraded section"; exit 1; }

echo "-- lef.io / def.io: input unreadable is fatal (exit 3) in both modes"
expect lef_io_strict 3 "$CLI" analyze "$LEF" "$DEF" --faults lef.io
expect lef_io_keepgoing 3 \
  "$CLI" analyze "$LEF" "$DEF" --keep-going --faults lef.io
expect def_io_strict 3 "$CLI" analyze "$LEF" "$DEF" --faults def.io

echo "-- never-firing point behaves exactly like no fault at all"
expect never_fires 0 \
  "$CLI" analyze "$LEF" "$DEF" --faults oracle.class_access:999 \
  --report-json "$REPORT"
"$CHECK" report "$REPORT"
grep -q '"degraded": \[\]' "$REPORT" && {
  echo "FAIL: strict no-fire run should have no degraded section"; exit 1; }

echo "-- malformed fault spec is a usage error (exit 2), env and flag"
expect bad_spec_flag 2 "$CLI" analyze "$LEF" "$DEF" --faults 'x:pz'
expect bad_spec_env 2 env PAO_FAULTS='cache.read:p2' \
  "$CLI" analyze "$LEF" "$DEF"

echo "-- PAO_FAULTS env drives the same machinery as --faults"
expect env_class_access 4 env PAO_FAULTS=oracle.class_access \
  "$CLI" analyze "$LEF" "$DEF" --keep-going --report-json "$REPORT"
"$CHECK" report "$REPORT"

if [ -n "$SERVE" ] && [ -n "$CLIENT" ]; then
  SOCK="$WORK/fm.sock"

  # serve_case <name> <faults-or-empty> <victim-want-exit> <victim-args...>:
  # boots a fresh daemon, runs a "victim" client expected to lose its
  # connection (exit 3) or walk away mid-request (exit 0), then proves a
  # second client still gets full service, no admission budget leaked
  # ("inflight":0), and the daemon still shuts down with exit 0.
  serve_case() {
    cname=$1; spec=$2; victim_want=$3; shift 3
    rm -f "$SOCK"
    if [ -n "$spec" ]; then
      "$SERVE" --socket "$SOCK" --faults "$spec" 2>"$WORK/serve_$cname.log" &
    else
      "$SERVE" --socket "$SOCK" 2>"$WORK/serve_$cname.log" &
    fi
    DAEMON=$!
    expect "serve_${cname}_victim" "$victim_want" \
      "$CLIENT" --socket "$SOCK" "$@"
    expect "serve_${cname}_survivor" 0 "$CLIENT" --socket "$SOCK" \
      "{\"cmd\":\"load\",\"tenant\":\"t1\",\"lef\":\"$LEF\",\"def\":\"$DEF\"}" \
      '{"cmd":"move","tenant":"t1","inst":0,"dx":380}' \
      '{"cmd":"query","tenant":"t1"}'
    "$CLIENT" --socket "$SOCK" '{"cmd":"metrics"}' >"$WORK/serve_$cname.metrics"
    "$CHECK" metrics "$WORK/serve_$cname.metrics"
    grep -q '"inflight":0' "$WORK/serve_$cname.metrics" || {
      echo "FAIL [serve_$cname]: admission budget leaked"; exit 1; }
    "$CLIENT" --socket "$SOCK" '{"cmd":"shutdown"}' >/dev/null
    if ! wait "$DAEMON"; then
      echo "FAIL [serve_$cname]: daemon exited non-zero"; exit 1
    fi
    echo "ok  [serve_$cname]: daemon clean exit, no budget leak"
  }

  echo "-- serve.accept/read/write: one faulted connection, service survives"
  # :1 specs on purpose — a bare point would fire on EVERY hit and take the
  # survivor connection down too.
  serve_case accept serve.accept:1 3 '{"cmd":"ping"}'
  serve_case read serve.read:1 3 '{"cmd":"ping"}'
  serve_case write serve.write:1 3 '{"cmd":"ping"}'

  echo "-- client killed mid-request: partial line is discarded, not served"
  serve_case partial "" 0 --partial 10 '{"cmd":"query","tenant":"t1"}'

  echo "-- malformed serve fault spec is a usage error (exit 2)"
  expect serve_bad_spec 2 "$SERVE" --socket "$SOCK" --faults 'serve.read:pz'
fi

echo "fault matrix: all cases pass"
