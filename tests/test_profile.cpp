// Job-graph profiling (obs/profile.hpp): critical-path analysis over the
// executor's per-node capture at every thread count, the "profile" report
// section's round-trip + validator, the Perfetto worker-track replay with
// dependency flow events, serial structural determinism under
// normalizeForCompare, and the histogram quantile helper's NaN-free
// sentinels.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/enabled.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/jobs.hpp"

namespace pao::obs {
namespace {

TEST(ProfileAnalysis, EmptyCaptureAnalyzesToNeutralDefaults) {
  const ProfileAnalysis a = analyzeProfile(GraphProfile{});
  EXPECT_EQ(a.totalNs, 0);
  EXPECT_EQ(a.criticalPathNs, 0);
  EXPECT_TRUE(a.criticalPath.empty());
  EXPECT_DOUBLE_EQ(a.headroom, 1.0);
  EXPECT_DOUBLE_EQ(a.speedup, 1.0);
  EXPECT_TRUE(a.perWorker.empty());
}

// --- histogram quantiles (satellite: NaN-free edge cases) ------------------

TEST(HistogramQuantile, EmptyHistogramReturnsZero) {
  const std::vector<long long> bounds{10, 100};
  const std::vector<std::uint64_t> buckets{0, 0, 0};
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, buckets, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, buckets, 0.99), 0.0);
}

TEST(HistogramQuantile, OverflowBucketClampsToLastFiniteBound) {
  const std::vector<long long> bounds{10, 100};
  const std::vector<std::uint64_t> buckets{0, 0, 5};  // all above 100
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, buckets, 0.5), 100.0);
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, buckets, 1.0), 100.0);
}

TEST(HistogramQuantile, EmptyBoundsReturnsZeroEvenWithSamples) {
  const std::vector<long long> bounds{};
  const std::vector<std::uint64_t> buckets{7};  // overflow-only histogram
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, buckets, 0.5), 0.0);
}

TEST(HistogramQuantile, SingleSampleInterpolatesAcrossItsBucket) {
  const std::vector<long long> bounds{10, 100};
  const std::vector<std::uint64_t> buckets{0, 1, 0};  // one sample in (10,100]
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, buckets, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, buckets, 0.5), 55.0);
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, buckets, 1.0), 100.0);
}

TEST(HistogramQuantile, OutOfRangeQuantileIsClamped) {
  const std::vector<long long> bounds{10, 100};
  const std::vector<std::uint64_t> buckets{0, 1, 0};
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, buckets, -3.0),
                   histogramQuantile(bounds, buckets, 0.0));
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, buckets, 42.0),
                   histogramQuantile(bounds, buckets, 1.0));
}

TEST(HistogramQuantile, QuantilesAreMonotonicInQ) {
  const std::vector<long long> bounds{1, 10, 100, 1000};
  const std::vector<std::uint64_t> buckets{4, 3, 2, 1, 1};
  const double p50 = histogramQuantile(bounds, buckets, 0.50);
  const double p95 = histogramQuantile(bounds, buckets, 0.95);
  const double p99 = histogramQuantile(bounds, buckets, 0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
}

TEST(HistogramQuantile, LiveHistogramOverloadMatchesSpans) {
  Histogram h({10, 100});
  EXPECT_DOUBLE_EQ(histogramQuantile(h, 0.5), 0.0);  // empty
  h.observe(50);
  EXPECT_DOUBLE_EQ(histogramQuantile(h, 1.0), 100.0);
  h.observe(5000);  // overflow bucket
  EXPECT_DOUBLE_EQ(histogramQuantile(h, 1.0), 100.0);
}

#if PAO_OBS_ENABLED

// --- graph capture + critical path -----------------------------------------

void burn(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(GraphProfile, ChainCriticalPathIsEveryNodeAtAnyThreadCount) {
  for (int threads : {1, 4, 0}) {
    util::JobGraph g;
    util::JobId prev = 0;
    for (int i = 0; i < 4; ++i) {
      const util::JobId deps[] = {prev};
      const auto body = [] { burn(2); };
      prev = (i == 0) ? g.addJob(body) : g.addJob(body, deps);
    }
    g.run(threads);
    const GraphProfile& p = g.profile();
    ASSERT_EQ(p.nodes.size(), 4u) << "threads " << threads;
    EXPECT_GE(p.workers, 1) << "threads " << threads;
    const ProfileAnalysis a = analyzeProfile(p);
    const std::vector<std::uint32_t> want{0, 1, 2, 3};
    EXPECT_EQ(a.criticalPath, want) << "threads " << threads;
    EXPECT_GT(a.criticalPathNs, 0) << "threads " << threads;
    EXPECT_LE(a.criticalPathNs, p.wallNs) << "threads " << threads;
    EXPECT_LE(a.criticalPathNs, a.totalNs) << "threads " << threads;
  }
}

TEST(GraphProfile, DiamondCriticalPathFollowsTheHeavyBranch) {
  for (int threads : {1, 4}) {
    util::JobGraph g;
    const util::JobId top = g.addJob([] { burn(1); });
    const util::JobId topDep[] = {top};
    g.addJob([] { burn(8); }, topDep);  // id 1: the heavy branch
    g.addJob([] { burn(1); }, topDep);  // id 2
    const util::JobId join[] = {1, 2};
    g.addJob([] { burn(1); }, join);  // id 3
    g.run(threads);
    const ProfileAnalysis a = analyzeProfile(g.profile());
    const std::vector<std::uint32_t> want{0, 1, 3};
    EXPECT_EQ(a.criticalPath, want) << "threads " << threads;
  }
}

TEST(GraphProfile, FanOutReportsHeadroomAboveOne) {
  util::JobGraph g;
  const util::JobId root = g.addJob([] { burn(1); });
  const util::JobId rootDep[] = {root};
  for (int i = 0; i < 8; ++i) g.addJob([] { burn(3); }, rootDep);
  g.run(4);
  const GraphProfile& p = g.profile();
  const ProfileAnalysis a = analyzeProfile(p);
  // Headroom is structural (sum-of-work / longest chain): ~25ms over ~4ms.
  EXPECT_GT(a.headroom, 1.0);
  EXPECT_GT(a.speedup, 0.0);
  ASSERT_EQ(a.perWorker.size(), static_cast<std::size_t>(p.workers));
  std::size_t nodesSeen = 0;
  std::size_t stealsSeen = 0;
  for (const WorkerSlice& w : a.perWorker) {
    nodesSeen += w.nodes;
    stealsSeen += w.steals;
    EXPECT_GE(w.utilization, 0.0);
    EXPECT_LE(w.busyNs + w.idleNs, p.wallNs + 1);
  }
  EXPECT_EQ(nodesSeen, 9u);
  EXPECT_EQ(stealsSeen, static_cast<std::size_t>(p.steals));
}

TEST(GraphProfile, SkippedNodesAreMarkedAndCostFree) {
  util::JobGraph g;
  const util::JobId bad =
      g.addJob([] { throw std::runtime_error("boom"); });
  const util::JobId badDep[] = {bad};
  g.addJob([] {}, badDep);  // poisoned
  EXPECT_THROW(g.run(2), std::runtime_error);
  // The profile is assembled before the rethrow.
  const GraphProfile& p = g.profile();
  ASSERT_EQ(p.nodes.size(), 2u);
  EXPECT_FALSE(p.nodes[0].skipped);
  EXPECT_TRUE(p.nodes[1].skipped);
  EXPECT_EQ(p.nodes[1].beginNs, p.nodes[1].endNs);  // zero duration
  const ProfileAnalysis a = analyzeProfile(p);
  EXPECT_GE(a.totalNs, 0);
}

// --- "profile" report section ----------------------------------------------

GraphProfile runFanOutProfile() {
  util::JobGraph g;
  const util::JobId root = g.addJob([] { burn(1); });
  const util::JobId rootDep[] = {root};
  for (int i = 0; i < 4; ++i) g.addJob([] { burn(2); }, rootDep);
  g.run(2);
  return g.profile();
}

TEST(ProfileSection, JsonRoundTripValidatesAndIsByteStable) {
  const GraphProfile p = runFanOutProfile();
  const Json section = profileSectionJson(p);
  std::string err;
  EXPECT_TRUE(validateProfileSection(section, &err)) << err;
  const std::optional<Json> parsed = Json::parse(section.dump(1), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_TRUE(validateProfileSection(*parsed, &err)) << err;
  EXPECT_EQ(parsed->dump(1), section.dump(1));
}

TEST(ProfileSection, ValidatorRejectsMalformedSections) {
  const GraphProfile p = runFanOutProfile();
  const Json good = profileSectionJson(p);
  std::string err;
  ASSERT_TRUE(validateProfileSection(good, &err)) << err;

  EXPECT_FALSE(validateProfileSection(Json::object(), &err));  // keys missing
  EXPECT_FALSE(validateProfileSection(Json(42), &err));  // not an object

  Json badHeadroom = good;
  badHeadroom.set("headroom", Json(0.5));
  EXPECT_FALSE(validateProfileSection(badHeadroom, &err));

  Json badCritical = good;
  badCritical.set("criticalPathMicros", Json(1.0e12));  // exceeds wall
  EXPECT_FALSE(validateProfileSection(badCritical, &err));

  Json badPath = good;
  badPath.set("criticalPath",
              Json::array().push(Json(2)).push(Json(1)));  // not ascending
  EXPECT_FALSE(validateProfileSection(badPath, &err));

  Json badIds = good;
  badIds.set("criticalPath", Json::array().push(Json(999)));  // >= jobs
  EXPECT_FALSE(validateProfileSection(badIds, &err));

  Json badWorkers = good;
  badWorkers.set("perWorker", Json::array());  // wrong shard count
  EXPECT_FALSE(validateProfileSection(badWorkers, &err));
}

TEST(ProfileSection, ReportSchemaV2CarriesProfileAndV1RejectsIt) {
  const GraphProfile p = runFanOutProfile();
  RunReport report("pao_tests profile");
  report.section("profile") = profileSectionJson(p);
  std::string err;
  // Schema is still v1: the profile section must be rejected.
  EXPECT_FALSE(validateReport(report.doc(), &err));
  report.doc().set("schema", Json(kReportSchemaV2));
  EXPECT_TRUE(validateReport(report.doc(), &err)) << err;
}

TEST(ProfileSection, SerialRunsNormalizeToIdenticalStructure) {
  const auto runSerialChain = [] {
    util::JobGraph g;
    util::JobId prev = 0;
    for (int i = 0; i < 5; ++i) {
      const util::JobId deps[] = {prev};
      const auto body = [] { burn(1); };
      prev = (i == 0) ? g.addJob(body) : g.addJob(body, deps);
    }
    g.run(1);
    return g.profile();
  };
  const GraphProfile p1 = runSerialChain();
  const GraphProfile p2 = runSerialChain();
  EXPECT_EQ(analyzeProfile(p1).criticalPath, analyzeProfile(p2).criticalPath);

  const auto reportFor = [](const GraphProfile& p) {
    RunReport r("pao_tests profile");
    r.doc().set("schema", Json(kReportSchemaV2));
    r.section("profile") = profileSectionJson(p);
    return normalizeForCompare(r.doc()).dump(1);
  };
  EXPECT_EQ(reportFor(p1), reportFor(p2));
}

// --- Perfetto worker-track replay -------------------------------------------

TEST(ProfileTrace, ReplayEmitsWorkerTracksAndFlowEvents) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  burn(1);  // ensure the run's tracer timestamp is nonzero (epochUs == 0
            // is the "tracing off" sentinel)
  util::JobGraph g;
  const util::JobId top = g.addJob([] { burn(1); });
  const util::JobId topDep[] = {top};
  const util::JobId left = g.addJob([] { burn(2); }, topDep);
  const util::JobId right = g.addJob([] { burn(1); }, topDep);
  const util::JobId join[] = {left, right};
  g.addJob([] { burn(1); }, join);
  g.run(2);
  const GraphProfile p = g.profile();
  EXPECT_NE(p.epochUs, 0);  // captured on the tracer's timeline
  recordProfileTrace(p);
  const std::string exported = tracer.exportChromeTrace();
  tracer.disable();

  std::string err;
  const std::optional<Json> doc = Json::parse(exported, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_TRUE(validateTrace(*doc, 1, /*requireWorker=*/false, &err)) << err;

  const Json* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t nodeSpans = 0;
  std::size_t flowStarts = 0;
  std::size_t flowEnds = 0;
  for (const Json& ev : events->items()) {
    const Json* name = ev.find("name");
    const Json* ph = ev.find("ph");
    if (name == nullptr || ph == nullptr) continue;
    if (name->asString() == "jobs.node" && ph->asString() == "X") {
      ++nodeSpans;
      const Json* pid = ev.find("pid");
      ASSERT_NE(pid, nullptr);
      EXPECT_EQ(pid->asInt(), kJobTrackPid);
    }
    if (name->asString() == "jobs.dep") {
      const Json* flowId = ev.find("id");
      ASSERT_NE(flowId, nullptr);
      EXPECT_GT(flowId->asInt(), 0);
      if (ph->asString() == "s") ++flowStarts;
      if (ph->asString() == "f") {
        ++flowEnds;
        const Json* bp = ev.find("bp");
        ASSERT_NE(bp, nullptr);
        EXPECT_EQ(bp->asString(), "e");
      }
    }
  }
  EXPECT_EQ(nodeSpans, 4u);
  EXPECT_EQ(flowStarts, 4u);  // one per dependency edge
  EXPECT_EQ(flowEnds, 4u);
}

TEST(ProfileTrace, CaptureTakenWithTracingOffIsNotReplayed) {
  util::JobGraph g;
  g.addJob([] {});
  g.run(1);
  const GraphProfile p = g.profile();
  EXPECT_EQ(p.epochUs, 0);
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  recordProfileTrace(p);  // no-op: not on the tracer's timeline
  EXPECT_EQ(tracer.eventCount(), 0u);
  tracer.disable();
}

#endif  // PAO_OBS_ENABLED

}  // namespace
}  // namespace pao::obs
