// Golden tests for located parse diagnostics: exact header strings
// (file:line:col, severity, stable code), the excerpt/caret block, strict
// vs recovery behavior, multi-error accumulation, and the GEN001 cap.
// Downstream tooling keys off these exact formats — treat any change as a
// breaking one.
#include <gtest/gtest.h>

#include "lefdef/def_parser.hpp"
#include "lefdef/lef_parser.hpp"
#include "lefdef/lexer.hpp"
#include "util/diag.hpp"

namespace pao::lefdef {
namespace {

// -------------------------------------------------------------- util::Diag

TEST(Diag, HeaderGolden) {
  util::Diag d;
  d.code = "LEX003";
  d.loc = {"test.lef", 6, 9};
  d.message = "expected number, got 'x'";
  EXPECT_EQ(d.header(), "test.lef:6:9: error: [LEX003] expected number, got 'x'");
}

TEST(Diag, HeaderWithoutLocation) {
  util::Diag d;
  d.code = "GEN000";
  d.loc.file = "in.def";
  d.message = "boom";
  EXPECT_EQ(d.header(), "in.def: error: [GEN000] boom");
}

TEST(Diag, WarningSeverityName) {
  util::Diag d;
  d.severity = util::Severity::kWarning;
  d.code = "GEN000";
  d.loc = {"a.lef", 2, 1};
  d.message = "m";
  EXPECT_EQ(d.header(), "a.lef:2:1: warning: [GEN000] m");
}

TEST(Diag, FormatAppendsExcerptAndCaret) {
  util::Diag d;
  d.code = "LEX003";
  d.loc = {"test.lef", 6, 9};
  d.message = "expected number, got 'x'";
  d.excerpt = "  PITCH x ;";
  EXPECT_EQ(d.format(),
            "test.lef:6:9: error: [LEX003] expected number, got 'x'\n"
            "  6 |   PITCH x ;\n"
            "    |         ^");
}

TEST(DiagSink, CountsOnlyErrors) {
  util::DiagSink sink;
  util::Diag w;
  w.severity = util::Severity::kWarning;
  sink.add(w);
  EXPECT_FALSE(sink.hasErrors());
  sink.add(util::Diag{});
  EXPECT_EQ(sink.errorCount(), 1u);
  EXPECT_EQ(sink.diags().size(), 2u);
}

// ------------------------------------------------------------- LEF strict

// Line 5, col 9 points at the 'x' of "  PITCH x ;".
constexpr const char* kBadPitchLef =
    "VERSION 5.8 ;\n"
    "UNITS DATABASE MICRONS 2000 ; END UNITS\n"
    "LAYER M1\n"
    "  TYPE ROUTING ;\n"
    "  PITCH x ;\n"
    "END M1\n";

TEST(LefDiag, StrictThrowsWithExactLocation) {
  db::Tech tech;
  db::Library lib;
  ParseOptions opts;
  opts.file = "test.lef";
  try {
    parseLef(kBadPitchLef, tech, lib, opts);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.diag.header(),
              "test.lef:5:9: error: [LEX003] expected number, got 'x'");
    EXPECT_EQ(e.diag.excerpt, "  PITCH x ;");
    // what() carries the fully formatted form, caret included.
    EXPECT_EQ(std::string(e.what()),
              "test.lef:5:9: error: [LEX003] expected number, got 'x'\n"
              "  5 |   PITCH x ;\n"
              "    |         ^");
  }
}

TEST(LefDiag, TruncatedInputIsLex001) {
  db::Tech tech;
  db::Library lib;
  try {
    parseLef("LAYER M1\n  TYPE ROUTING ;\n  PITCH", tech, lib);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.diag.code, "LEX001");
  }
}

// ----------------------------------------------------------- LEF recovery

TEST(LefDiag, RecoveryAccumulatesAndKeepsParsing) {
  // Two independent errors; recovery must report both and still deliver
  // the good layer that follows them.
  const char* lef =
      "UNITS DATABASE MICRONS 2000 ; END UNITS\n"
      "LAYER M1\n"
      "  TYPE ROUTING ;\n"
      "  PITCH x ;\n"
      "END M1\n"
      "LAYER M2\n"
      "  TYPE ROUTING ;\n"
      "  WIDTH y ;\n"
      "END M2\n"
      "LAYER M3\n"
      "  TYPE ROUTING ;\n"
      "  PITCH 0.2 ;\n"
      "END M3\n";
  db::Tech tech;
  db::Library lib;
  ParseOptions opts;
  opts.file = "multi.lef";
  opts.recover = true;
  const ParseResult res = parseLef(lef, tech, lib, opts);
  ASSERT_EQ(res.errorCount(), 2u);
  EXPECT_EQ(res.diags[0].code, "LEX003");
  EXPECT_EQ(res.diags[0].loc.line, 4u);
  EXPECT_EQ(res.diags[1].code, "LEX003");
  EXPECT_EQ(res.diags[1].loc.line, 8u);
  // The clean layer after both errors still parsed.
  const db::Layer* m3 = tech.findLayer("M3");
  ASSERT_NE(m3, nullptr);
  EXPECT_EQ(m3->pitch, 400);
}

TEST(LefDiag, MaxErrorsAppendsGen001) {
  std::string lef = "UNITS DATABASE MICRONS 2000 ; END UNITS\n";
  for (int i = 0; i < 8; ++i) {
    lef += "LAYER L" + std::to_string(i) + "\n  PITCH x ;\nEND L" +
           std::to_string(i) + "\n";
  }
  db::Tech tech;
  db::Library lib;
  ParseOptions opts;
  opts.file = "many.lef";
  opts.recover = true;
  opts.maxErrors = 3;
  const ParseResult res = parseLef(lef, tech, lib, opts);
  ASSERT_FALSE(res.diags.empty());
  EXPECT_EQ(res.diags.back().code, "GEN001");
  EXPECT_EQ(res.diags.back().header(),
            "many.lef: error: [GEN001] too many errors; giving up");
  // 3 real errors + the GEN001 marker, then parsing stopped.
  EXPECT_EQ(res.errorCount(), 4u);
}

// -------------------------------------------------------------------- DEF

void miniLef(db::Tech& tech, db::Library& lib) {
  parseLef(
      "UNITS DATABASE MICRONS 2000 ; END UNITS\n"
      "LAYER M1 TYPE ROUTING ; DIRECTION HORIZONTAL ; END M1\n"
      "MACRO INVX1\n"
      "  CLASS CORE ;\n"
      "  SIZE 0.38 BY 1.71 ;\n"
      "  PIN A USE SIGNAL ; PORT LAYER M1 ; RECT 0.05 0.3 0.11 0.9 ; END END A\n"
      "END INVX1\n"
      "END LIBRARY\n",
      tech, lib);
}

TEST(DefDiag, UnknownMasterGolden) {
  db::Tech tech;
  db::Library lib;
  miniLef(tech, lib);
  db::Design design;
  design.tech = &tech;
  design.lib = &lib;
  // Line 2: " - u1 NO_SUCH + PLACED ( 0 0 ) N ;" — NO_SUCH is at col 7.
  const char* def =
      "COMPONENTS 1 ;\n"
      " - u1 NO_SUCH + PLACED ( 0 0 ) N ;\n"
      "END COMPONENTS\n";
  ParseOptions opts;
  opts.file = "bad.def";
  try {
    parseDef(def, design, opts);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(
        e.diag.header(),
        "bad.def:2:7: error: [DEF002] component references unknown master "
        "'NO_SUCH'");
  }
}

TEST(DefDiag, RecoverySkipsBadEntitiesKeepsGood) {
  db::Tech tech;
  db::Library lib;
  miniLef(tech, lib);
  db::Design design;
  design.tech = &tech;
  design.lib = &lib;
  const char* def =
      "COMPONENTS 3 ;\n"
      " - u1 INVX1 + PLACED ( 0 0 ) N ;\n"
      " - u2 NO_SUCH + PLACED ( 0 0 ) N ;\n"
      " - u3 INVX1 + PLACED ( 760 0 ) N ;\n"
      "END COMPONENTS\n"
      "NETS 1 ;\n"
      " - n1 ( u1 A ) ( nope A ) ;\n"
      "END NETS\n";
  ParseOptions opts;
  opts.file = "r.def";
  opts.recover = true;
  const ParseResult res = parseDef(def, design, opts);
  ASSERT_EQ(res.errorCount(), 2u);
  EXPECT_EQ(res.diags[0].code, "DEF002");
  EXPECT_EQ(res.diags[1].code, "DEF004");
  // u1/u3 survived; the net mentioning an unknown component was dropped
  // whole, never left half-built.
  ASSERT_EQ(design.instances.size(), 2u);
  EXPECT_EQ(design.instances[0].name, "u1");
  EXPECT_EQ(design.instances[1].name, "u3");
  EXPECT_TRUE(design.nets.empty());
}

TEST(DefDiag, StableCodesAreDocumentedSet) {
  // The code set is API: LEX001-003, DEF001-005, GEN000/GEN001. Spot-check
  // a DEF001 (unknown TRACKS layer) and DEF005 (unknown pin on master).
  db::Tech tech;
  db::Library lib;
  miniLef(tech, lib);
  db::Design design;
  design.tech = &tech;
  design.lib = &lib;
  ParseOptions opts;
  opts.recover = true;
  const ParseResult res = parseDef(
      "TRACKS Y 200 DO 10 STEP 400 LAYER M9 ;\n"
      "COMPONENTS 1 ;\n"
      " - u1 INVX1 + PLACED ( 0 0 ) N ;\n"
      "END COMPONENTS\n"
      "NETS 1 ;\n"
      " - n1 ( u1 NOPIN ) ;\n"
      "END NETS\n",
      design, opts);
  ASSERT_EQ(res.errorCount(), 2u);
  EXPECT_EQ(res.diags[0].code, "DEF001");
  EXPECT_EQ(res.diags[1].code, "DEF005");
}

}  // namespace
}  // namespace pao::lefdef
