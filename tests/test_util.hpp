// Shared fixtures: a hand-built minimal technology/design pair whose
// geometry is small enough to reason about exactly in tests.
#pragma once

#include <memory>

#include "db/design.hpp"
#include "db/lib.hpp"
#include "db/tech.hpp"

namespace pao::test {

/// Two routing layers (M1 horizontal, M2 vertical) + V1 with one default via.
/// All numbers are chosen round: pitch 400, wire width 100, spacing 100,
/// cut 100x100, bottom enclosure overhang 100 along / 10 across, min step
/// 120, EOL space 120 / width 110 / within 50, min area 60000.
inline std::unique_ptr<db::Tech> makeTinyTech() {
  auto tech = std::make_unique<db::Tech>();
  tech->name = "tiny";
  tech->dbuPerMicron = 2000;

  db::Layer& m1 = tech->addLayer("M1", db::LayerType::kRouting);
  m1.dir = db::Dir::kHorizontal;
  m1.pitch = 400;
  m1.width = 100;
  m1.minArea = 60000;
  m1.spacingTable = {{0, 0, 100}, {200, 200, 200}};
  m1.minStep = db::MinStepRule{120, 1};
  m1.eol = db::EolRule{120, 110, 50};

  db::Layer& v1 = tech->addLayer("V1", db::LayerType::kCut);
  v1.cutSpacing = 100;

  db::Layer& m2 = tech->addLayer("M2", db::LayerType::kRouting);
  m2.dir = db::Dir::kVertical;
  m2.pitch = 400;
  m2.width = 100;
  m2.minArea = 60000;
  m2.spacingTable = {{0, 0, 100}, {200, 200, 200}};
  m2.minStep = db::MinStepRule{120, 1};
  m2.eol = db::EolRule{120, 110, 50};

  db::ViaDef& via = tech->addViaDef("V1_0");
  via.isDefault = true;
  // The m1/v1/m2 references above are stable across addLayer/addViaDef —
  // Tech's storage is a deque — so their indices can be used directly.
  via.botLayer = m1.index;
  via.cutLayer = v1.index;
  via.topLayer = m2.index;
  via.cut = {-50, -50, 50, 50};
  via.botEnc = {-150, -60, 150, 60};   // overhang 100 along x, 10 along y
  via.topEnc = {-60, -150, 60, 150};
  return tech;
}

/// One-master design: cell 1200x1200 with a single signal pin shape given by
/// the caller, placed at origin (R0), with M1 horizontal tracks at
/// y = 200 + k*400 and M2 vertical tracks at x = 200 + k*400.
struct TinyDesign {
  std::unique_ptr<db::Tech> tech;
  std::unique_ptr<db::Library> lib;
  std::unique_ptr<db::Design> design;
};

inline TinyDesign makeTinyDesign(
    const std::vector<db::PinShape>& pinShapes,
    const std::vector<db::Obstruction>& obs = {}) {
  TinyDesign td;
  td.tech = makeTinyTech();
  td.lib = std::make_unique<db::Library>();
  db::Master& m = td.lib->addMaster("CELL");
  m.width = 1200;
  m.height = 1200;
  db::Pin& pin = m.pins.emplace_back();
  pin.name = "A";
  pin.use = db::PinUse::kSignal;
  pin.shapes = pinShapes;
  m.obstructions = obs;

  td.design = std::make_unique<db::Design>();
  td.design->name = "tiny";
  td.design->tech = td.tech.get();
  td.design->lib = td.lib.get();
  td.design->dieArea = {0, 0, 4800, 4800};
  for (const char* lname : {"M1", "M2"}) {
    const db::Layer* l = td.design->tech->findLayer(lname);
    db::TrackPattern ty;
    ty.layer = l->index;
    ty.axis = db::Dir::kHorizontal;
    ty.start = 200;
    ty.step = 400;
    ty.count = 12;
    td.design->trackPatterns.push_back(ty);
    db::TrackPattern tx = ty;
    tx.axis = db::Dir::kVertical;
    td.design->trackPatterns.push_back(tx);
  }
  db::Instance inst;
  inst.name = "u1";
  inst.master = &m;
  inst.origin = {0, 0};
  inst.orient = geom::Orient::R0;
  td.design->instances.push_back(inst);
  td.design->buildInstanceIndex();
  return td;
}

}  // namespace pao::test
