// Additional DRC engine coverage: wire checks, extra-shape context,
// via-pair semantics and batch-scan corner cases.
#include <gtest/gtest.h>

#include "drc/engine.hpp"
#include "test_util.hpp"

namespace pao::drc {
namespace {

using geom::Point;
using geom::Rect;

class EngineExtra : public ::testing::Test {
 protected:
  EngineExtra() : tech_(test::makeTinyTech()), engine_(*tech_) {
    m1_ = tech_->findLayer("M1")->index;
    m2_ = tech_->findLayer("M2")->index;
    via_ = tech_->findViaDef("V1_0");
  }
  std::unique_ptr<db::Tech> tech_;
  DrcEngine engine_;
  int m1_ = -1, m2_ = -1;
  const db::ViaDef* via_ = nullptr;
};

TEST_F(EngineExtra, CheckWireRespectsExtraContext) {
  // Empty region: the wire is clean; with an extra foreign shape nearby it
  // violates spacing.
  const Rect wire{0, 0, 1000, 100};
  EXPECT_TRUE(engine_.checkWire(wire, m1_, 1).empty());
  const std::vector<Shape> extra = {
      {{0, 150, 1000, 250}, m1_, 2, ShapeKind::kWire, false}};
  EXPECT_FALSE(engine_.checkWire(wire, m1_, 1, extra).empty());
  // Same-net extra shape: no conflict.
  const std::vector<Shape> sameNet = {
      {{0, 150, 1000, 250}, m1_, 1, ShapeKind::kWire, false}};
  EXPECT_TRUE(engine_.checkWire(wire, m1_, 1, sameNet).empty());
}

TEST_F(EngineExtra, ViaShapesProduceThreeLayers) {
  const auto shapes = engine_.viaShapes(*via_, {500, 500}, 3);
  ASSERT_EQ(shapes.size(), 3u);
  EXPECT_EQ(shapes[0].layer, via_->botLayer);
  EXPECT_EQ(shapes[1].layer, via_->cutLayer);
  EXPECT_EQ(shapes[2].layer, via_->topLayer);
  for (const Shape& s : shapes) EXPECT_EQ(s.net, 3);
}

TEST_F(EngineExtra, ViaPairSameNetMergesInsteadOfConflicting) {
  // Two same-net vias 200 apart: bottom enclosures overlap -> same net, so
  // no short; cut spacing still applies between distinct same-net cuts.
  const auto violations =
      engine_.checkViaPair(*via_, {500, 500}, 7, *via_, {700, 500}, 7);
  for (const Violation& v : violations) {
    EXPECT_NE(v.kind, RuleKind::kShort) << v.describe();
  }
}

TEST_F(EngineExtra, CheckAllEmptyRegionIsClean) {
  EXPECT_TRUE(engine_.checkAll().empty());
}

TEST_F(EngineExtra, CheckAllCountsCutLayerPairs) {
  const int v1 = tech_->findLayer("V1")->index;
  engine_.region().add({{0, 0, 100, 100}, v1, 1, ShapeKind::kVia, false});
  engine_.region().add({{150, 0, 250, 100}, v1, 2, ShapeKind::kVia, false});
  int cuts = 0;
  for (const Violation& v : engine_.checkAll()) {
    if (v.kind == RuleKind::kCutSpacing) ++cuts;
  }
  EXPECT_EQ(cuts, 1);
}

TEST_F(EngineExtra, MergedComponentCapsGracefully) {
  // A very long chain of same-net shapes: the incremental check stays local
  // (bounded component) and still terminates quickly.
  for (int i = 0; i < 200; ++i) {
    engine_.region().add({{i * 500, 0, i * 500 + 600, 100}, m1_, 1,
                          ShapeKind::kPin, true});
  }
  const auto violations = engine_.checkVia(*via_, {300, 50}, 1);
  // No crash / hang; result content is whatever the rules say.
  SUCCEED();
  (void)violations;
}

TEST_F(EngineExtra, MaxSpacingHaloCoversEolAndTable) {
  const db::Layer& m1 = tech_->layer(m1_);
  const geom::Coord halo = maxSpacingHalo(m1);
  EXPECT_GE(halo, m1.eol->space + m1.eol->within);
  for (const db::SpacingTableEntry& e : m1.spacingTable) {
    EXPECT_GE(halo, e.spacing);
  }
}

}  // namespace
}  // namespace pao::drc
