#include "pao/pattern_gen.hpp"

#include <gtest/gtest.h>

#include "pao/ap_gen.hpp"
#include "test_util.hpp"

namespace pao::core {
namespace {

using geom::Point;
using geom::Rect;

/// Builds a two-pin cell whose bars are so close that same-y vias overlap:
/// the DP must stagger the chosen y coordinates.
class PatternFixture : public ::testing::Test {
 protected:
  void build(geom::Coord barBx, geom::Coord barBHalfWidth = 60) {
    td_ = test::makeTinyDesign({{0, Rect{140, 300, 260, 1100}}});
    db::Master* m = const_cast<db::Master*>(td_.lib->findMaster("CELL"));
    db::Pin& b = m->pins.emplace_back();
    b.name = "B";
    b.use = db::PinUse::kSignal;
    b.shapes.push_back({0, Rect{barBx - barBHalfWidth, 300,
                                barBx + barBHalfWidth, 1100}});
    ui_ = db::extractUniqueInstances(*td_.design);
    ctx_ = std::make_unique<InstContext>(*td_.design, ui_.classes[0]);
    aps_ = AccessPointGenerator(*ctx_).generateAll();
  }

  test::TinyDesign td_;
  db::UniqueInstances ui_;
  std::unique_ptr<InstContext> ctx_;
  std::vector<std::vector<AccessPoint>> aps_;
};

TEST_F(PatternFixture, PinOrderFollowsX) {
  build(600);
  PatternGenerator gen(*ctx_, aps_);
  ASSERT_EQ(gen.pinOrder().size(), 2u);
  // Pin A (x ~ 200) orders before pin B (x ~ 600).
  EXPECT_EQ(gen.pinOrder()[0], 0);
  EXPECT_EQ(gen.pinOrder()[1], 1);
}

TEST_F(PatternFixture, AlphaTiltsOrdering) {
  // Two pins at the same x but different y: with alpha > 0 the lower pin
  // orders first; with alpha = 0 the order is unchanged (stable by x).
  td_ = test::makeTinyDesign({{0, Rect{140, 700, 260, 1100}}});
  db::Master* m = const_cast<db::Master*>(td_.lib->findMaster("CELL"));
  db::Pin& b = m->pins.emplace_back();
  b.name = "B";
  b.use = db::PinUse::kSignal;
  b.shapes.push_back({0, Rect{140, 140, 260, 500}});  // same x, lower y
  ui_ = db::extractUniqueInstances(*td_.design);
  ctx_ = std::make_unique<InstContext>(*td_.design, ui_.classes[0]);
  aps_ = AccessPointGenerator(*ctx_).generateAll();
  ASSERT_FALSE(aps_[0].empty());
  ASSERT_FALSE(aps_[1].empty());

  PatternGenConfig cfg;
  cfg.alpha = 0.3;
  PatternGenerator gen(*ctx_, aps_, cfg);
  EXPECT_EQ(gen.pinOrder()[0], 1);  // pin B has smaller y-average
  EXPECT_EQ(gen.pinOrder()[1], 0);
}

TEST_F(PatternFixture, ConflictingPinsGetStaggeredAccess) {
  // Pin B is a narrow off-track bar at x ~ 540: its access x falls on the
  // shape center, whose enclosure sits 40 from pin A's on-track enclosure
  // (< spacing 100) at equal y — yet 130 from A's bar, so every via is
  // individually clean. A valid pattern must stagger the y coordinates.
  build(540, 50);
  ASSERT_FALSE(aps_[0].empty());
  ASSERT_FALSE(aps_[1].empty());
  PatternGenerator gen(*ctx_, aps_);
  const auto patterns = gen.run();
  ASSERT_FALSE(patterns.empty());
  const AccessPattern& p = patterns[0];
  ASSERT_GE(p.apIdx.size(), 2u);
  ASSERT_GE(p.apIdx[0], 0);
  ASSERT_GE(p.apIdx[1], 0);
  const Point a = aps_[0][p.apIdx[0]].loc;
  const Point b = aps_[1][p.apIdx[1]].loc;
  EXPECT_NE(a.y, b.y) << "conflicting same-y access chosen";
  EXPECT_TRUE(p.validated);
}

TEST_F(PatternFixture, NonConflictingPinsTakeCheapestPoints) {
  // Bars far apart, each containing an on-track x (200 and 1000): both pins
  // can take their best (on-track, on-track) points.
  build(1000);
  PatternGenerator gen(*ctx_, aps_);
  const auto patterns = gen.run();
  ASSERT_FALSE(patterns.empty());
  const AccessPattern& p = patterns[0];
  EXPECT_EQ(aps_[0][p.apIdx[0]].typeCost(), 0);
  EXPECT_EQ(aps_[1][p.apIdx[1]].typeCost(), 0);
  EXPECT_TRUE(p.validated);
}

TEST_F(PatternFixture, BcaProducesDistinctBoundaryAccess) {
  build(800);
  PatternGenConfig cfg;
  cfg.numPatterns = 3;
  PatternGenerator gen(*ctx_, aps_, cfg);
  const auto patterns = gen.run();
  ASSERT_GE(patterns.size(), 2u);
  // Boundary pins are A (first) and B (last); their APs must differ across
  // the first two patterns.
  EXPECT_TRUE(patterns[0].apIdx[0] != patterns[1].apIdx[0] ||
              patterns[0].apIdx[1] != patterns[1].apIdx[1]);
}

TEST_F(PatternFixture, WithoutBcaSinglePattern) {
  build(800);
  PatternGenConfig cfg;
  cfg.numPatterns = 1;
  cfg.boundaryAware = false;
  const auto patterns = PatternGenerator(*ctx_, aps_, cfg).run();
  EXPECT_EQ(patterns.size(), 1u);
}

TEST_F(PatternFixture, PinsWithoutApsAreExcluded) {
  build(800);
  aps_[1].clear();  // pin B loses all access points
  PatternGenerator gen(*ctx_, aps_);
  EXPECT_EQ(gen.pinOrder().size(), 1u);
  const auto patterns = gen.run();
  ASSERT_FALSE(patterns.empty());
  EXPECT_GE(patterns[0].apIdx[0], 0);
  EXPECT_EQ(patterns[0].apIdx[1], -1);
}

TEST_F(PatternFixture, EmptyCellYieldsNoPatterns) {
  build(800);
  aps_[0].clear();
  aps_[1].clear();
  EXPECT_TRUE(PatternGenerator(*ctx_, aps_).run().empty());
}

TEST_F(PatternFixture, PairChecksAreMemoized) {
  build(540, 50);
  PatternGenConfig cfg;
  cfg.numPatterns = 3;
  PatternGenerator gen(*ctx_, aps_, cfg);
  gen.run();
  // Upper bound: every (apA, apB) pair checked at most once despite three DP
  // iterations over the same graph.
  const std::size_t maxPairs = aps_[0].size() * aps_[1].size() +
                               aps_[0].size() + aps_[1].size();
  EXPECT_LE(gen.numPairChecks(), maxPairs);
}

}  // namespace
}  // namespace pao::core
