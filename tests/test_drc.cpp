#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "drc/engine.hpp"
#include "test_util.hpp"

namespace pao::drc {
namespace {

using geom::Point;
using geom::Rect;

class DrcFixture : public ::testing::Test {
 protected:
  DrcFixture() : tech_(test::makeTinyTech()), engine_(*tech_) {
    m1_ = tech_->findLayer("M1")->index;
    v1_ = tech_->findLayer("V1")->index;
    m2_ = tech_->findLayer("M2")->index;
    via_ = tech_->findViaDef("V1_0");
  }

  std::unique_ptr<db::Tech> tech_;
  DrcEngine engine_;
  int m1_ = -1, v1_ = -1, m2_ = -1;
  const db::ViaDef* via_ = nullptr;
};

TEST_F(DrcFixture, SpacingPairViolationAndPass) {
  const db::Layer& m1 = tech_->layer(m1_);
  const Shape a{{0, 0, 1000, 100}, m1_, 1, ShapeKind::kWire, false};
  // 80 apart with long PRL: violates the 100 min spacing.
  const Shape close{{0, 180, 1000, 280}, m1_, 2, ShapeKind::kWire, false};
  EXPECT_TRUE(checkSpacingPair(m1, a, close).has_value());
  EXPECT_EQ(checkSpacingPair(m1, a, close)->kind, RuleKind::kMetalSpacing);
  // Exactly 100 apart: clean.
  const Shape atMin{{0, 200, 1000, 300}, m1_, 2, ShapeKind::kWire, false};
  EXPECT_FALSE(checkSpacingPair(m1, a, atMin).has_value());
  // Same net: never a spacing violation.
  const Shape sameNet{{0, 180, 1000, 280}, m1_, 1, ShapeKind::kWire, false};
  EXPECT_FALSE(checkSpacingPair(m1, a, sameNet).has_value());
  // Overlap of different nets: short.
  const Shape overlap{{500, 50, 1500, 150}, m1_, 2, ShapeKind::kWire, false};
  EXPECT_EQ(checkSpacingPair(m1, a, overlap)->kind, RuleKind::kShort);
}

TEST_F(DrcFixture, SpacingWideShapesNeedMore) {
  const db::Layer& m1 = tech_->layer(m1_);
  // Two 300-wide shapes with long PRL: table row (200,200)->200 applies.
  const Shape a{{0, 0, 1000, 300}, m1_, 1, ShapeKind::kWire, false};
  const Shape b{{0, 450, 1000, 750}, m1_, 2, ShapeKind::kWire, false};
  EXPECT_TRUE(checkSpacingPair(m1, a, b).has_value());  // gap 150 < 200
  const Shape c{{0, 500, 1000, 800}, m1_, 2, ShapeKind::kWire, false};
  EXPECT_FALSE(checkSpacingPair(m1, a, c).has_value());  // gap 200 ok
}

TEST_F(DrcFixture, SpacingCornerToCornerUsesEuclidean) {
  const db::Layer& m1 = tech_->layer(m1_);
  const Shape a{{0, 0, 100, 100}, m1_, 1, ShapeKind::kWire, false};
  // Diagonal offset (71, 71): Euclidean distance ~100.4 >= 100 -> clean.
  const Shape diagOk{{171, 171, 271, 271}, m1_, 2, ShapeKind::kWire, false};
  EXPECT_FALSE(checkSpacingPair(m1, a, diagOk).has_value());
  // (70, 70): distance ~99 -> violation.
  const Shape diagBad{{170, 170, 270, 270}, m1_, 2, ShapeKind::kWire, false};
  EXPECT_TRUE(checkSpacingPair(m1, a, diagBad).has_value());
}

TEST_F(DrcFixture, MinStepDetectsSmallNotch) {
  const db::Layer& m1 = tech_->layer(m1_);
  // An 80-tall tab sticking out of a big rect: edges of 80 < 120 min step.
  const std::vector<Rect> comp = {{0, 0, 1000, 500}, {400, 500, 480, 580}};
  const auto violations = checkMinStep(m1, comp);
  EXPECT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, RuleKind::kMinStep);
  // A 200-wide, 200-tall tab: all new edges >= 120 -> clean.
  const std::vector<Rect> ok = {{0, 0, 1000, 500}, {400, 500, 600, 700}};
  EXPECT_TRUE(checkMinStep(m1, ok).empty());
}

TEST_F(DrcFixture, MinStepCleanRect) {
  const db::Layer& m1 = tech_->layer(m1_);
  EXPECT_TRUE(checkMinStep(m1, {{0, 0, 1000, 500}}).empty());
  // A rect smaller than min step on both sides is all-short-edges.
  EXPECT_FALSE(checkMinStep(m1, {{0, 0, 100, 100}}).empty());
}

TEST_F(DrcFixture, EolNeighborTriggersViolation) {
  const db::Layer& m1 = tech_->layer(m1_);
  // A 100-wide wire end (eolWidth 110 -> EOL edge), neighbor within the
  // 120 clearance region in front of the end.
  RegionQuery context(static_cast<int>(tech_->layers().size()));
  context.add({{1050, 0, 1200, 100}, m1_, 2, ShapeKind::kWire, false});
  const std::vector<Rect> comp = {{0, 0, 1000, 100}};
  const auto violations = checkEol(m1, comp, 1, context);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, RuleKind::kEndOfLine);

  // Neighbor beyond the EOL clearance: clean.
  RegionQuery far(static_cast<int>(tech_->layers().size()));
  far.add({{1130, 0, 1300, 100}, m1_, 2, ShapeKind::kWire, false});
  EXPECT_TRUE(checkEol(m1, comp, 1, far).empty());
}

TEST_F(DrcFixture, EolWideEdgeExempt) {
  const db::Layer& m1 = tech_->layer(m1_);
  // A 200-wide wire end is not an EOL edge (>= eolWidth 110).
  RegionQuery context(static_cast<int>(tech_->layers().size()));
  context.add({{1050, 0, 1200, 200}, m1_, 2, ShapeKind::kWire, false});
  EXPECT_TRUE(checkEol(m1, {{0, 0, 1000, 200}}, 1, context).empty());
}

TEST_F(DrcFixture, MinArea) {
  const db::Layer& m1 = tech_->layer(m1_);
  // 100x500 = 50000 < 60000 -> violation.
  EXPECT_TRUE(checkMinArea(m1, {{0, 0, 500, 100}}, 1).has_value());
  // 100x600 = 60000 -> ok.
  EXPECT_FALSE(checkMinArea(m1, {{0, 0, 600, 100}}, 1).has_value());
  // Union area counts, not the sum.
  EXPECT_TRUE(
      checkMinArea(m1, {{0, 0, 500, 100}, {0, 0, 500, 100}}, 1).has_value());
}

TEST_F(DrcFixture, CutSpacing) {
  const db::Layer& v1 = tech_->layer(v1_);
  const Shape a{{0, 0, 100, 100}, v1_, 1, ShapeKind::kVia, false};
  const Shape tooClose{{180, 0, 280, 100}, v1_, 2, ShapeKind::kVia, false};
  EXPECT_TRUE(checkCutSpacingPair(v1, a, tooClose).has_value());
  const Shape ok{{200, 0, 300, 100}, v1_, 2, ShapeKind::kVia, false};
  EXPECT_FALSE(checkCutSpacingPair(v1, a, ok).has_value());
  // Same geometry and net: the shape itself, skipped.
  EXPECT_FALSE(checkCutSpacingPair(v1, a, a).has_value());
}

TEST_F(DrcFixture, ViaCleanInOpenSpace) {
  // A via on a bare pin shape in empty surroundings is clean.
  engine_.region().add(
      {{0, -100, 1200, 100}, m1_, 1, ShapeKind::kPin, true});
  EXPECT_TRUE(engine_.isViaClean(*via_, {600, 0}, 1));
}

TEST_F(DrcFixture, ViaSpacingAgainstForeignPin) {
  engine_.region().add({{0, -100, 2000, 100}, m1_, 1, ShapeKind::kPin, true});
  // Foreign metal 60 above the via enclosure top (enc spans y in [-60,60]).
  engine_.region().add({{0, 120, 2000, 260}, m1_, 2, ShapeKind::kPin, true});
  const auto violations = engine_.checkVia(*via_, {600, 0}, 1);
  EXPECT_FALSE(violations.empty());
}

TEST_F(DrcFixture, ViaMinStepAtPinCorner) {
  // Via enclosure crossing the pin's top corner: the overhang creates two
  // CONSECUTIVE short edges (30 vertical + 90 horizontal), which exceeds
  // maxEdges = 1 — the Fig. 3 scenario.
  // Enclosure [550,850]x[910,1030] clips the bar's top-right corner: the
  // remaining bar-top stub (50) meets the enclosure's side step (30).
  engine_.region().add({{500, 0, 620, 1000}, m1_, 1, ShapeKind::kPin, true});
  const auto violations = engine_.checkVia(*via_, {700, 970}, 1);
  bool sawMinStep = false;
  for (const Violation& v : violations) {
    if (v.kind == RuleKind::kMinStep) sawMinStep = true;
  }
  EXPECT_TRUE(sawMinStep);

  // The same via centered mid-bar leaves only isolated short edges
  // (overhang tabs whose outer edge is exactly minStep long): legal.
  DrcEngine mid(*tech_);
  mid.region().add({{500, 0, 620, 1000}, m1_, 1, ShapeKind::kPin, true});
  for (const Violation& v : mid.checkVia(*via_, {560, 500}, 1)) {
    EXPECT_NE(v.kind, RuleKind::kMinStep) << v.describe();
  }
}

TEST_F(DrcFixture, ViaCutSpacingAgainstNearbyCut) {
  engine_.region().add({{0, -100, 2000, 100}, m1_, 1, ShapeKind::kPin, true});
  // A fixed foreign cut 80 away from where our cut will land.
  engine_.region().add(
      {{730, -50, 830, 50}, v1_, 2, ShapeKind::kVia, true});
  const auto violations = engine_.checkVia(*via_, {600, 0}, 1);
  bool sawCut = false;
  for (const Violation& v : violations) {
    if (v.kind == RuleKind::kCutSpacing) sawCut = true;
  }
  EXPECT_TRUE(sawCut);
}

TEST_F(DrcFixture, ViaPairConflictAndResolution) {
  // Two pins side by side; vias at the same y conflict via bottom-enclosure
  // spacing, vias far apart are compatible.
  engine_.region().add({{0, 0, 120, 1000}, m1_, 1, ShapeKind::kPin, true});
  engine_.region().add({{400, 0, 520, 1000}, m1_, 2, ShapeKind::kPin, true});
  // Enclosures: x in [60-150, 60+150] = [-90,210] and [460-150,460+150] =
  // [310,610]; gap 100 >= spacing 100 -> clean... make them closer in y to
  // check the PRL effect: same y -> PRL = 120 > 0, gap 100 -> exactly ok.
  EXPECT_TRUE(engine_
                  .checkViaPair(*via_, {60, 500}, 1, *via_, {460, 500}, 2)
                  .empty());
  // Shift the second pin 40 left: gap 60 < 100 -> conflict.
  DrcEngine e2(*tech_);
  e2.region().add({{0, 0, 120, 1000}, m1_, 1, ShapeKind::kPin, true});
  e2.region().add({{360, 0, 480, 1000}, m1_, 2, ShapeKind::kPin, true});
  EXPECT_FALSE(
      e2.checkViaPair(*via_, {60, 500}, 1, *via_, {420, 500}, 2).empty());
}

TEST_F(DrcFixture, CheckAllFindsPlantedViolations) {
  // Plant one spacing violation between routed wires and one min-area wire.
  engine_.region().add({{0, 0, 1000, 100}, m1_, 1, ShapeKind::kWire, false});
  engine_.region().add(
      {{0, 150, 1000, 250}, m1_, 2, ShapeKind::kWire, false});
  engine_.region().add(
      {{5000, 5000, 5200, 5100}, m1_, 3, ShapeKind::kWire, false});
  const auto violations = engine_.checkAll();
  int spacing = 0, minArea = 0;
  for (const Violation& v : violations) {
    if (v.kind == RuleKind::kMetalSpacing) ++spacing;
    if (v.kind == RuleKind::kMinArea) ++minArea;
  }
  EXPECT_EQ(spacing, 1);
  EXPECT_EQ(minArea, 1);
}

TEST_F(DrcFixture, CheckAllParallelMatchesSerial) {
  // Determinism regression for the sharded batch check: a layout dense
  // enough to split across many shards (wires, vias, obstructions and a few
  // planted violations) must yield the exact same canonically-sorted
  // violation vector for every thread count.
  for (int i = 0; i < 60; ++i) {
    const geom::Coord x = (i % 10) * 600;
    const geom::Coord y = (i / 10) * 400;
    // Wires on M1/M2; every 7th pair is squeezed under min spacing.
    const geom::Coord squeeze = (i % 7 == 0) ? 60 : 0;
    engine_.region().add(
        {{x, y, x + 500, y + 100}, m1_, i, ShapeKind::kWire, false});
    engine_.region().add({{x, y + 200 - squeeze, x + 500, y + 300 - squeeze},
                          m2_, i + 1000, ShapeKind::kWire, false});
    // Vias; every 9th pair under cut spacing.
    if (i % 3 == 0) {
      const geom::Coord cutGap = (i % 9 == 0) ? 80 : 300;
      engine_.region().add(
          {{x, y + 80, x + 100, y + 180}, v1_, i, ShapeKind::kVia, false});
      engine_.region().add({{x + 100 + cutGap, y + 80, x + 200 + cutGap,
                             y + 180},
                            v1_, i + 1, ShapeKind::kVia, false});
    }
    // Undersized stub wires for min-area / min-step hits.
    if (i % 11 == 0) {
      engine_.region().add({{x + 5000, y, x + 5100, y + 90}, m1_, i + 2000,
                            ShapeKind::kWire, false});
    }
  }
  const std::vector<Violation> serial = engine_.checkAll(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_TRUE(std::is_sorted(serial.begin(), serial.end(), violationLess));
  EXPECT_EQ(engine_.checkAll(4), serial);
  EXPECT_EQ(engine_.checkAll(0), serial);
}

TEST_F(DrcFixture, CheckAllSkipsFixedPairs) {
  // Two fixed pins in violation distance: library geometry is not checked.
  engine_.region().add({{0, 0, 1000, 100}, m1_, 1, ShapeKind::kPin, true});
  engine_.region().add({{0, 150, 1000, 250}, m1_, 2, ShapeKind::kPin, true});
  EXPECT_TRUE(engine_.checkAll().empty());
}

}  // namespace
}  // namespace pao::drc
