#include "router/router.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchgen/testcase.hpp"
#include "lefdef/def_route_writer.hpp"
#include "pao/evaluate.hpp"
#include "test_util.hpp"

namespace pao::router {
namespace {

TEST(RoutingGrid, CoordinateSetsComeFromTracks) {
  auto td = test::makeTinyDesign({{0, geom::Rect{140, 300, 260, 900}}});
  RoutingGrid grid(*td.design);
  // Tiny design: tracks at 200 + k*400, 12 per axis.
  ASSERT_EQ(grid.xs().size(), 12u);
  ASSERT_EQ(grid.ys().size(), 12u);
  EXPECT_EQ(grid.xs()[0], 200);
  EXPECT_EQ(grid.ys()[1], 600);
}

TEST(RoutingGrid, ValidityFollowsLayerTracks) {
  auto td = test::makeTinyDesign({{0, geom::Rect{140, 300, 260, 900}}});
  RoutingGrid grid(*td.design);
  const int m1 = td.tech->findLayer("M1")->index;
  const int m2 = td.tech->findLayer("M2")->index;
  const int v1 = td.tech->findLayer("V1")->index;
  EXPECT_TRUE(grid.valid({m1, 0, 0}));
  EXPECT_TRUE(grid.valid({m2, 3, 7}));
  EXPECT_FALSE(grid.valid({v1, 0, 0}));  // cut layer has no nodes
  EXPECT_FALSE(grid.valid({m1, -1, 0}));
  EXPECT_FALSE(grid.valid({m1, 0, 99}));
}

TEST(RoutingGrid, SnapFindsNearestNode) {
  auto td = test::makeTinyDesign({{0, geom::Rect{140, 300, 260, 900}}});
  RoutingGrid grid(*td.design);
  const int m1 = td.tech->findLayer("M1")->index;
  const Node n = grid.snap(m1, {390, 810});
  EXPECT_TRUE(grid.valid(n));
  EXPECT_EQ(grid.pointOf(n), geom::Point(200, 1000));
}

TEST(RoutingGrid, OccupancyAndBlocking) {
  auto td = test::makeTinyDesign({{0, geom::Rect{140, 300, 260, 900}}});
  RoutingGrid grid(*td.design);
  const int m1 = td.tech->findLayer("M1")->index;
  const Node n{m1, 2, 2};
  EXPECT_EQ(grid.occupant(n), RoutingGrid::kFree);
  grid.occupy(n, 7);
  EXPECT_EQ(grid.occupant(n), 7);

  // A fixed shape of net 3 blocks all other nets nearby but not net 3.
  grid.blockFixedShape({950, 950, 1450, 1450}, m1, 3, 200, 300, 300);
  const Node b{m1, 2, 2};  // (1000, 1000) inside the shape
  EXPECT_FALSE(grid.blockedFor(b, 3));
  EXPECT_TRUE(grid.blockedFor(b, 4));
  // A second foreign shape over the same node escalates to blocked-for-all.
  grid.blockFixedShape({950, 950, 1450, 1450}, m1, 5, 200, 300, 300);
  EXPECT_TRUE(grid.blockedFor(b, 3));
  EXPECT_TRUE(grid.blockedFor(b, 5));
}

class RouterFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tc_ = new benchgen::Testcase(
        benchgen::generate(benchgen::ispd18Suite()[0], /*scale=*/0.01));
  }
  static void TearDownTestSuite() {
    delete tc_;
    tc_ = nullptr;
  }

  RouteResult routeWith(AccessMode mode) {
    core::OracleConfig cfg = mode == AccessMode::kFirstAp
                                 ? core::legacyConfig()
                                 : core::withBcaConfig();
    core::PinAccessOracle oracle(*tc_->design, cfg);
    result_ = oracle.run();
    AccessSource access(*tc_->design, result_, mode);
    DetailedRouter router(*tc_->design, access);
    return router.run();
  }

  static benchgen::Testcase* tc_;
  core::OracleResult result_;
};

benchgen::Testcase* RouterFixture::tc_ = nullptr;

TEST_F(RouterFixture, RoutesMostNetsWithPatternAccess) {
  const RouteResult res = routeWith(AccessMode::kPattern);
  EXPECT_GT(res.stats.routedNets, 0u);
  EXPECT_GT(res.stats.viaCount, 0u);
  EXPECT_GT(res.stats.wireShapes, 0u);
  // The router should connect the overwhelming majority of nets.
  EXPECT_GE(res.stats.routedNets * 10,
            9 * (res.stats.routedNets + res.stats.failedNets));
}

TEST_F(RouterFixture, PatternAccessYieldsFewestAccessDrcs) {
  const RouteResult pattern = routeWith(AccessMode::kPattern);
  const RouteResult greedy = routeWith(AccessMode::kGreedyNearest);
  const RouteResult legacy = routeWith(AccessMode::kFirstAp);
  // Experiment 3's ordering on the pin-access signal: PAAF <= greedy
  // (Dr. CU proxy) <= legacy. Total violation counts also include
  // access-independent router noise, so the comparison uses the
  // access-related subset plus unconnectable pins.
  EXPECT_LE(pattern.accessViolations, greedy.accessViolations);
  EXPECT_LE(greedy.accessViolations, legacy.accessViolations +
                                         legacy.stats.skippedTerms);
  // The legacy access source cannot even contact every pin.
  EXPECT_EQ(pattern.stats.skippedTerms, 0u);
  EXPECT_GT(legacy.stats.skippedTerms, 0u);
}

TEST_F(RouterFixture, RoutedShapesBelongToRealNets) {
  const RouteResult res = routeWith(AccessMode::kPattern);
  for (const RouteShape& s : res.shapes) {
    EXPECT_GE(s.net, 0);
    EXPECT_LT(s.net, static_cast<int>(tc_->design->nets.size()));
    EXPECT_FALSE(s.rect.empty());
  }
}

TEST_F(RouterFixture, StatsAreConsistent) {
  const RouteResult res = routeWith(AccessMode::kPattern);
  EXPECT_EQ(res.stats.routedNets + res.stats.failedNets,
            tc_->design->nets.size());
  std::size_t vias = 0;
  std::size_t wires = 0;
  for (const RouteShape& s : res.shapes) {
    s.isVia ? ++vias : ++wires;
  }
  EXPECT_EQ(wires, res.stats.wireShapes);
  EXPECT_EQ(vias, res.stats.viaCount * 3);  // three shapes per via
}

TEST_F(RouterFixture, RipupReducesViolations) {
  core::PinAccessOracle oracle(*tc_->design, core::withBcaConfig());
  const core::OracleResult res = oracle.run();
  AccessSource access(*tc_->design, res, AccessMode::kPattern);

  RouterConfig noRipup;
  noRipup.ripupPasses = 0;
  const RouteResult before =
      DetailedRouter(*tc_->design, access, noRipup).run();

  RouterConfig withRipup;
  withRipup.ripupPasses = 5;
  const RouteResult after =
      DetailedRouter(*tc_->design, access, withRipup).run();

  EXPECT_LE(after.violations.size(), before.violations.size());
  // Rip-up must never lose connectivity.
  EXPECT_GE(after.stats.routedNets, before.stats.routedNets);
  if (!before.violations.empty()) {
    EXPECT_GT(after.stats.rippedNets, 0u);
  }
}

TEST_F(RouterFixture, RoutedDefByteIdenticalAcrossThreads) {
  // The parallel planning phase must not perturb routed output: the DEF
  // written from a multi-threaded run is byte-identical to the serial one
  // (commits stay serial and in net order).
  core::PinAccessOracle oracle(*tc_->design, core::withBcaConfig());
  const core::OracleResult res = oracle.run();
  AccessSource access(*tc_->design, res, AccessMode::kPattern);

  const auto routedDefWith = [&](int threads) {
    RouterConfig cfg;
    cfg.numThreads = threads;
    const RouteResult rr = DetailedRouter(*tc_->design, access, cfg).run();
    std::vector<lefdef::RoutedShape> routed;
    for (const RouteShape& s : rr.shapes) {
      const db::Layer& layer = tc_->tech->layer(s.layer);
      if (s.isVia && layer.type == db::LayerType::kCut) {
        routed.push_back({s.net, s.layer, s.rect, true});
      } else if (!s.isVia && layer.type == db::LayerType::kRouting) {
        routed.push_back({s.net, s.layer, s.rect, false});
      }
    }
    return lefdef::writeRoutedDef(*tc_->design, routed);
  };
  const std::string serial = routedDefWith(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(routedDefWith(4), serial);
  EXPECT_EQ(routedDefWith(0), serial);
}

TEST_F(RouterFixture, DisabledDrcCountSkipsViolations) {
  core::PinAccessOracle oracle(*tc_->design, core::withBcaConfig());
  const core::OracleResult res = oracle.run();
  AccessSource access(*tc_->design, res, AccessMode::kPattern);
  RouterConfig cfg;
  cfg.countDrcs = false;
  const RouteResult rr = DetailedRouter(*tc_->design, access, cfg).run();
  EXPECT_TRUE(rr.violations.empty());
  EXPECT_GT(rr.stats.routedNets, 0u);
}

}  // namespace
}  // namespace pao::router
