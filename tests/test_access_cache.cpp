// Access cache + multi-threaded oracle tests: placement-loop reuse and the
// paper's multi-threading future-work item.
#include "pao/access_cache.hpp"

#include <gtest/gtest.h>

#include "benchgen/testcase.hpp"
#include "pao/evaluate.hpp"
#include "pao/oracle.hpp"

namespace pao::core {
namespace {

benchgen::Testcase smallCase() {
  benchgen::TestcaseSpec spec = benchgen::ispd18Suite()[0];
  spec.numCells = 200;
  spec.numNets = 100;
  return benchgen::generate(spec, 1.0);
}

bool sameAccess(const OracleResult& a, const OracleResult& b,
                const db::Design& design) {
  if (a.chosenPattern != b.chosenPattern) return false;
  for (int i = 0; i < static_cast<int>(design.instances.size()); ++i) {
    const int cls = a.unique.classOf[i];
    if (cls < 0 || a.classes[cls].pinAps.empty()) continue;
    for (int p = 0; p < static_cast<int>(a.classes[cls].pinAps.size());
         ++p) {
      const auto apA = a.chosenAp(design, i, p);
      const auto apB = b.chosenAp(design, i, p);
      if (apA.has_value() != apB.has_value()) return false;
      if (apA && apA->loc != apB->loc) return false;
    }
  }
  return true;
}

TEST(AccessCache, SecondRunHitsEveryClass) {
  const benchgen::Testcase tc = smallCase();
  AccessCache cache;
  OracleConfig cfg = withBcaConfig();
  cfg.cache = &cache;

  PinAccessOracle first(*tc.design, cfg);
  const OracleResult r1 = first.run();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
  EXPECT_EQ(cache.size(), cache.misses());

  PinAccessOracle second(*tc.design, cfg);
  const OracleResult r2 = second.run();
  EXPECT_EQ(cache.misses(), cache.size());  // no new misses
  EXPECT_GT(cache.hits(), 0u);
  // Cached Steps 1-2 contribute no fresh per-class time.
  EXPECT_EQ(r2.step1Seconds, 0.0);
  EXPECT_EQ(r2.step2Seconds, 0.0);
  EXPECT_TRUE(sameAccess(r1, r2, *tc.design));
}

TEST(AccessCache, CachedResultsSurvivePlacementMove) {
  benchgen::Testcase tc = smallCase();
  AccessCache cache;
  OracleConfig cfg = withBcaConfig();
  cfg.cache = &cache;

  PinAccessOracle warm(*tc.design, cfg);
  const FailedPinStats before =
      countFailedPins(*tc.design, warm.run());

  // Move one instance by exactly one track period in x: same signature,
  // everything reusable.
  db::Instance& inst = tc.design->instances[5];
  const db::Layer* m2 = tc.design->tech->findLayer("M2");
  inst.origin.x += m2->pitch;
  const std::size_t missesBefore = cache.misses();

  PinAccessOracle moved(*tc.design, cfg);
  const OracleResult res = moved.run();
  EXPECT_EQ(cache.misses(), missesBefore);   // all hits: nothing recomputed
  const DirtyApStats dirty = countDirtyAps(*tc.design, res);
  EXPECT_EQ(dirty.dirtyAps, 0u);
  const FailedPinStats after = countFailedPins(*tc.design, res);
  EXPECT_EQ(after.failedPins, before.failedPins);
}

TEST(AccessCache, TranslateShiftsAllAccessPoints) {
  ClassAccess ca;
  ca.pinAps.resize(2);
  AccessPoint ap;
  ap.loc = {100, 200};
  ca.pinAps[0].push_back(ap);
  ap.loc = {300, 400};
  ca.pinAps[1].push_back(ap);
  const ClassAccess moved = AccessCache::translate(ca, {10, -20});
  EXPECT_EQ(moved.pinAps[0][0].loc, geom::Point(110, 180));
  EXPECT_EQ(moved.pinAps[1][0].loc, geom::Point(310, 380));
}

TEST(AccessCache, ClearResets) {
  AccessCache cache;
  cache.store({nullptr, geom::Orient::R0, {}}, ClassAccess{});
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(AccessCache, SaveLoadRoundTrip) {
  const benchgen::Testcase tc = smallCase();
  AccessCache cache;
  OracleConfig cfg = withBcaConfig();
  cfg.cache = &cache;
  PinAccessOracle warm(*tc.design, cfg);
  const OracleResult r1 = warm.run();

  const std::string text = cache.save(*tc.tech, *tc.lib);
  EXPECT_FALSE(text.empty());

  AccessCache restored;
  const std::size_t loaded = restored.load(text, *tc.tech, *tc.lib);
  EXPECT_EQ(loaded, cache.size());
  EXPECT_EQ(restored.size(), cache.size());

  // A run against the restored cache is all hits and produces the same
  // access as the original.
  OracleConfig cfg2 = withBcaConfig();
  cfg2.cache = &restored;
  PinAccessOracle cold(*tc.design, cfg2);
  const OracleResult r2 = cold.run();
  EXPECT_EQ(restored.misses(), 0u);
  EXPECT_TRUE(sameAccess(r1, r2, *tc.design));
}

TEST(AccessCache, LoadRejectsGarbage) {
  const benchgen::Testcase tc = smallCase();
  AccessCache cache;
  EXPECT_EQ(cache.load("not a cache file", *tc.tech, *tc.lib), 0u);
  EXPECT_EQ(cache.load("", *tc.tech, *tc.lib), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(AccessCache, LoadRejectsForeignLibrary) {
  const benchgen::Testcase tc = smallCase();
  AccessCache cache;
  OracleConfig cfg = withBcaConfig();
  cfg.cache = &cache;
  PinAccessOracle warm(*tc.design, cfg);
  warm.run();
  const std::string text = cache.save(*tc.tech, *tc.lib);

  // A different library (missing every master) has a different fingerprint:
  // the whole cache is rejected with a reason.
  db::Library empty;
  AccessCache other;
  std::string error;
  EXPECT_EQ(other.load(text, *tc.tech, empty, &error), 0u);
  EXPECT_FALSE(error.empty());
}

TEST(AccessCache, SaveIsByteStableAcrossIndependentRuns) {
  // Two independently generated testcases and independently built caches
  // must serialize byte-identically — entries are ordered by key, never by
  // pointer value. (tools/ci.sh repeats this across two real processes.)
  const benchgen::Testcase tc1 = smallCase();
  const benchgen::Testcase tc2 = smallCase();
  AccessCache c1;
  AccessCache c2;
  OracleConfig cfg1 = withBcaConfig();
  cfg1.cache = &c1;
  OracleConfig cfg2 = withBcaConfig();
  cfg2.cache = &c2;
  cfg2.numThreads = 4;  // thread count must not leak into the file either
  PinAccessOracle(*tc1.design, cfg1).run();
  PinAccessOracle(*tc2.design, cfg2).run();
  const std::string s1 = c1.save(*tc1.tech, *tc1.lib);
  const std::string s2 = c2.save(*tc2.tech, *tc2.lib);
  EXPECT_EQ(s1, s2);
}

TEST(AccessCache, FingerprintMismatchRejectedWithReason) {
  const benchgen::Testcase tc = smallCase();
  AccessCache cache;
  OracleConfig cfg = withBcaConfig();
  cfg.cache = &cache;
  PinAccessOracle(*tc.design, cfg).run();
  std::string text = cache.save(*tc.tech, *tc.lib);

  // Corrupt the fingerprint: the whole file must be rejected.
  const std::size_t pos = text.find("FINGERPRINT ");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 12] = text[pos + 12] == '0' ? '1' : '0';
  AccessCache other;
  std::string error;
  EXPECT_EQ(other.load(text, *tc.tech, *tc.lib, &error), 0u);
  EXPECT_NE(error.find("fingerprint mismatch"), std::string::npos);
  EXPECT_EQ(other.size(), 0u);
}

TEST(AccessCache, V1CacheLoadsBestEffort) {
  const benchgen::Testcase tc = smallCase();
  AccessCache cache;
  OracleConfig cfg = withBcaConfig();
  cfg.cache = &cache;
  PinAccessOracle(*tc.design, cfg).run();
  const std::string v2 = cache.save(*tc.tech, *tc.lib);

  // Rewrite as a fingerprint-less v1 file (header line, no FINGERPRINT).
  const std::size_t entries = v2.find("ENTRY ");
  ASSERT_NE(entries, std::string::npos);
  const std::string v1 = "PAO_ACCESS_CACHE v1\n" + v2.substr(entries);
  AccessCache other;
  std::string error;
  EXPECT_EQ(other.load(v1, *tc.tech, *tc.lib, &error), cache.size());
  EXPECT_TRUE(error.empty());
}

// ---------------------------------------------- hostile-input regressions
// A corrupt, truncated, or tampered cache file must always be rejected
// cleanly (load returns 0 with a reason, nothing installed) — never crash,
// never read out of bounds, never commit a partial cache.

namespace {

std::string savedCacheText(const benchgen::Testcase& tc, AccessCache& cache) {
  OracleConfig cfg = withBcaConfig();
  cfg.cache = &cache;
  PinAccessOracle(*tc.design, cfg).run();
  return cache.save(*tc.tech, *tc.lib);
}

}  // namespace

TEST(AccessCacheHardening, TruncatedV2RejectedAtomically) {
  const benchgen::Testcase tc = smallCase();
  AccessCache cache;
  const std::string text = savedCacheText(tc, cache);

  // Cut at many points, including mid-record and mid-token: every prefix
  // must be rejected whole (v2 is all-or-nothing).
  for (const std::size_t keep :
       {text.size() / 4, text.size() / 2, text.size() - 10}) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    AccessCache other;
    std::string error;
    EXPECT_EQ(other.load(text.substr(0, keep), *tc.tech, *tc.lib, &error),
              0u);
    EXPECT_NE(error.find("corrupt or truncated"), std::string::npos)
        << error;
    EXPECT_EQ(other.size(), 0u);
  }
}

TEST(AccessCacheHardening, EntryBoundaryTruncationRejected) {
  // Drop only the END trailer: every record left is intact, so only the
  // trailer check can tell that later entries are missing.
  const benchgen::Testcase tc = smallCase();
  AccessCache cache;
  const std::string text = savedCacheText(tc, cache);
  const std::size_t end = text.rfind("END ");
  ASSERT_NE(end, std::string::npos);
  AccessCache other;
  std::string error;
  EXPECT_EQ(other.load(text.substr(0, end), *tc.tech, *tc.lib, &error), 0u);
  EXPECT_NE(error.find("missing END trailer"), std::string::npos);
  EXPECT_EQ(other.size(), 0u);
}

TEST(AccessCacheHardening, EndCountMismatchRejected) {
  const benchgen::Testcase tc = smallCase();
  AccessCache cache;
  std::string text = savedCacheText(tc, cache);
  const std::size_t end = text.rfind("END ");
  ASSERT_NE(end, std::string::npos);
  text.replace(end, std::string::npos, "END 999999\n");
  AccessCache other;
  std::string error;
  EXPECT_EQ(other.load(text, *tc.tech, *tc.lib, &error), 0u);
  EXPECT_NE(error.find("END count"), std::string::npos);
}

TEST(AccessCacheHardening, DataAfterEndTrailerRejected) {
  const benchgen::Testcase tc = smallCase();
  AccessCache cache;
  std::string text = savedCacheText(tc, cache);
  text += "ENTRY sneaky R0 0\n";
  AccessCache other;
  std::string error;
  EXPECT_EQ(other.load(text, *tc.tech, *tc.lib, &error), 0u);
  EXPECT_NE(error.find("data after END"), std::string::npos);
}

TEST(AccessCacheHardening, HostileCountRejectedWithoutHugeAllocation) {
  // The historical bug: record counts drove vector::resize unchecked, so a
  // single flipped digit could demand gigabytes (or, with a negative read
  // into size_t, instant OOM). Counts are now bounded by the bytes actually
  // remaining in the file.
  const benchgen::Testcase tc = smallCase();
  AccessCache cache;
  const std::string text = savedCacheText(tc, cache);
  for (const char* tag : {"PINS ", "PIN ", "ORDER ", "PATTERNS "}) {
    SCOPED_TRACE(tag);
    std::string tampered = text;
    const std::size_t at = tampered.find(tag);
    ASSERT_NE(at, std::string::npos);
    const std::size_t numAt = at + std::string(tag).size();
    const std::size_t numEnd = tampered.find_first_of(" \n", numAt);
    tampered.replace(numAt, numEnd - numAt, "987654321");
    AccessCache other;
    std::string error;
    EXPECT_EQ(other.load(tampered, *tc.tech, *tc.lib, &error), 0u);
    EXPECT_NE(error.find("corrupt or truncated"), std::string::npos)
        << error;
    EXPECT_EQ(other.size(), 0u);
  }
}

TEST(AccessCacheHardening, V1HostileCountRejectedWithoutHugeAllocation) {
  // Same bound on the legacy best-effort path: a v1 "file" asking for 10^9
  // offsets in a 60-byte body must load nothing, not allocate.
  const benchgen::Testcase tc = smallCase();
  AccessCache other;
  std::string error;
  EXPECT_EQ(other.load("PAO_ACCESS_CACHE v1\nENTRY X R0 999999999 1 2 3\n",
                       *tc.tech, *tc.lib, &error),
            0u);
  EXPECT_EQ(other.size(), 0u);
}

TEST(AccessCacheHardening, UnknownMasterInV2BodyIsTamper) {
  // The fingerprint matched, so a master name the library lacks can only
  // mean a tampered body: reject the whole file.
  const benchgen::Testcase tc = smallCase();
  AccessCache cache;
  std::string text = savedCacheText(tc, cache);
  const std::size_t at = text.find("ENTRY ");
  ASSERT_NE(at, std::string::npos);
  text.replace(at + 6, text.find(' ', at + 6) - (at + 6), "GHOST_MASTER");
  AccessCache other;
  std::string error;
  EXPECT_EQ(other.load(text, *tc.tech, *tc.lib, &error), 0u);
  EXPECT_NE(error.find("unknown master"), std::string::npos);
  EXPECT_EQ(other.size(), 0u);
}

TEST(OracleThreads, ParallelRunMatchesSerial) {
  const benchgen::Testcase tc = smallCase();

  OracleConfig serialCfg = withBcaConfig();
  serialCfg.numThreads = 1;
  PinAccessOracle serial(*tc.design, serialCfg);
  const OracleResult a = serial.run();

  OracleConfig parCfg = withBcaConfig();
  parCfg.numThreads = 4;
  PinAccessOracle parallel(*tc.design, parCfg);
  const OracleResult b = parallel.run();

  EXPECT_TRUE(sameAccess(a, b, *tc.design));
  EXPECT_EQ(countDirtyAps(*tc.design, b).dirtyAps, 0u);
  EXPECT_EQ(countFailedPins(*tc.design, b).failedPins,
            countFailedPins(*tc.design, a).failedPins);
}

TEST(OracleThreads, HardwareConcurrencyMode) {
  const benchgen::Testcase tc = smallCase();
  OracleConfig cfg = withBcaConfig();
  cfg.numThreads = 0;  // auto
  PinAccessOracle oracle(*tc.design, cfg);
  const OracleResult res = oracle.run();
  EXPECT_GT(res.wallSeconds, 0.0);
  EXPECT_EQ(countDirtyAps(*tc.design, res).dirtyAps, 0u);
}

}  // namespace
}  // namespace pao::core
