#include <gtest/gtest.h>

#include "benchgen/testcase.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/def_route_writer.hpp"
#include "lefdef/def_writer.hpp"
#include "lefdef/lef_parser.hpp"
#include "lefdef/lef_writer.hpp"
#include "lefdef/lexer.hpp"

namespace pao::lefdef {
namespace {

TEST(Lexer, TokensAndComments) {
  Lexer lex("FOO bar ; # comment to eol\n ( 1.5 ) \"quoted str\" END");
  EXPECT_EQ(lex.next(), "FOO");
  EXPECT_EQ(lex.next(), "bar");
  EXPECT_TRUE(lex.accept(";"));
  EXPECT_TRUE(lex.accept("("));
  EXPECT_DOUBLE_EQ(lex.nextDouble(), 1.5);
  EXPECT_TRUE(lex.accept(")"));
  EXPECT_EQ(lex.next(), "quoted str");
  EXPECT_EQ(lex.peek(), "END");
  EXPECT_FALSE(lex.done());
  lex.next();
  EXPECT_TRUE(lex.done());
}

TEST(Lexer, ExpectThrowsWithLocation) {
  Lexer lex("A\nB");
  lex.expect("A");
  EXPECT_THROW(lex.expect("C"), ParseError);
}

TEST(Lexer, DbuScaling) {
  Lexer lex("0.19 -0.5");
  EXPECT_EQ(lex.nextDbu(2000), 380);
  EXPECT_EQ(lex.nextDbu(2000), -1000);
}

TEST(Lef, ParseMinimal) {
  const char* lef = R"(
VERSION 5.8 ;
UNITS DATABASE MICRONS 2000 ; END UNITS
LAYER M1
  TYPE ROUTING ;
  DIRECTION HORIZONTAL ;
  PITCH 0.2 ;
  WIDTH 0.05 ;
  AREA 0.015 ;
  SPACING 0.05 ;
  SPACING 0.06 ENDOFLINE 0.055 WITHIN 0.025 ;
  MINSTEP 0.06 MAXEDGES 1 ;
END M1
LAYER V1
  TYPE CUT ;
  SPACING 0.05 ;
END V1
LAYER M2
  TYPE ROUTING ;
  DIRECTION VERTICAL ;
  PITCH 0.2 ;
  WIDTH 0.05 ;
END M2
VIA V1_0 DEFAULT
  LAYER M1 ;
    RECT -0.075 -0.03 0.075 0.03 ;
  LAYER V1 ;
    RECT -0.025 -0.025 0.025 0.025 ;
  LAYER M2 ;
    RECT -0.03 -0.075 0.03 0.075 ;
END V1_0
MACRO INVX1
  CLASS CORE ;
  SIZE 0.38 BY 1.71 ;
  PIN A
    DIRECTION INPUT ;
    USE SIGNAL ;
    PORT
      LAYER M1 ;
      RECT 0.05 0.3 0.11 0.9 ;
    END
  END A
  PIN VDD
    USE POWER ;
    PORT
      LAYER M1 ;
      RECT 0.0 1.62 0.38 1.71 ;
    END
  END VDD
  OBS
    LAYER M1 ;
    RECT 0.2 0.3 0.25 0.9 ;
  END
END INVX1
END LIBRARY
)";
  db::Tech tech;
  db::Library lib;
  parseLef(lef, tech, lib);

  EXPECT_EQ(tech.dbuPerMicron, 2000);
  const db::Layer* m1 = tech.findLayer("M1");
  ASSERT_NE(m1, nullptr);
  EXPECT_EQ(m1->type, db::LayerType::kRouting);
  EXPECT_EQ(m1->dir, db::Dir::kHorizontal);
  EXPECT_EQ(m1->pitch, 400);
  EXPECT_EQ(m1->width, 100);
  EXPECT_EQ(m1->minArea, 60000);
  EXPECT_EQ(m1->minSpacing(), 100);
  ASSERT_TRUE(m1->eol.has_value());
  EXPECT_EQ(m1->eol->space, 120);
  EXPECT_EQ(m1->eol->eolWidth, 110);
  EXPECT_EQ(m1->eol->within, 50);
  ASSERT_TRUE(m1->minStep.has_value());
  EXPECT_EQ(m1->minStep->minStepLength, 120);
  EXPECT_EQ(tech.findLayer("V1")->cutSpacing, 100);

  const db::ViaDef* via = tech.findViaDef("V1_0");
  ASSERT_NE(via, nullptr);
  EXPECT_TRUE(via->isDefault);
  EXPECT_EQ(via->botEnc, geom::Rect(-150, -60, 150, 60));
  EXPECT_EQ(via->cut, geom::Rect(-50, -50, 50, 50));
  EXPECT_EQ(via->topEnc, geom::Rect(-60, -150, 60, 150));

  const db::Master* inv = lib.findMaster("INVX1");
  ASSERT_NE(inv, nullptr);
  EXPECT_EQ(inv->width, 760);
  EXPECT_EQ(inv->height, 3420);
  ASSERT_EQ(inv->pins.size(), 2u);
  EXPECT_EQ(inv->pins[0].name, "A");
  EXPECT_EQ(inv->pins[0].use, db::PinUse::kSignal);
  EXPECT_EQ(inv->pins[0].shapes.size(), 1u);
  EXPECT_EQ(inv->pins[1].use, db::PinUse::kPower);
  ASSERT_EQ(inv->obstructions.size(), 1u);
  EXPECT_EQ(inv->obstructions[0].rect, geom::Rect(400, 600, 500, 1800));
}

TEST(Lef, SpacingTableParsed) {
  const char* lef = R"(
UNITS DATABASE MICRONS 1000 ; END UNITS
LAYER M1
  TYPE ROUTING ;
  SPACINGTABLE PARALLELRUNLENGTH 0 0.2
    WIDTH 0 0.05 0.05
    WIDTH 0.1 0.05 0.1 ;
END M1
END LIBRARY
)";
  db::Tech tech;
  db::Library lib;
  parseLef(lef, tech, lib);
  const db::Layer* m1 = tech.findLayer("M1");
  ASSERT_EQ(m1->spacingTable.size(), 4u);
  EXPECT_EQ(m1->spacing(120, 250), 100);
  EXPECT_EQ(m1->spacing(90, 250), 50);
}

TEST(Def, ParseMinimal) {
  // Build the tech/library via LEF, then a DEF referencing it.
  db::Tech tech;
  db::Library lib;
  parseLef(R"(
UNITS DATABASE MICRONS 2000 ; END UNITS
LAYER M1 TYPE ROUTING ; DIRECTION HORIZONTAL ; END M1
LAYER M2 TYPE ROUTING ; DIRECTION VERTICAL ; END M2
MACRO INVX1
  CLASS CORE ;
  SIZE 0.38 BY 1.71 ;
  PIN A USE SIGNAL ; PORT LAYER M1 ; RECT 0.05 0.3 0.11 0.9 ; END END A
  PIN Z USE SIGNAL ; PORT LAYER M1 ; RECT 0.2 0.3 0.26 0.9 ; END END Z
END INVX1
END LIBRARY
)",
           tech, lib);

  db::Design design;
  design.tech = &tech;
  design.lib = &lib;
  parseDef(R"(
VERSION 5.8 ;
DESIGN top ;
UNITS DISTANCE MICRONS 2000 ;
DIEAREA ( 0 0 ) ( 100000 100000 ) ;
ROW ROW_0 core 0 0 N DO 100 BY 1 STEP 760 0 ;
TRACKS Y 200 DO 250 STEP 400 LAYER M1 ;
TRACKS X 200 DO 250 STEP 400 LAYER M2 ;
COMPONENTS 2 ;
 - u1 INVX1 + PLACED ( 1000 2000 ) N ;
 - u2 INVX1 + PLACED ( 3000 2000 ) FS ;
END COMPONENTS
PINS 1 ;
 - io1 + NET n1 + LAYER M2 ( -100 -100 ) ( 100 100 ) + PLACED ( 5000 0 ) N ;
END PINS
NETS 1 ;
 - n1 ( u1 Z ) ( u2 A ) ( PIN io1 ) ;
END NETS
END DESIGN
)",
           design);

  EXPECT_EQ(design.name, "top");
  EXPECT_EQ(design.dieArea, geom::Rect(0, 0, 100000, 100000));
  ASSERT_EQ(design.rows.size(), 1u);
  EXPECT_EQ(design.rows[0].numSites, 100);
  ASSERT_EQ(design.trackPatterns.size(), 2u);
  EXPECT_EQ(design.trackPatterns[0].axis, db::Dir::kHorizontal);
  EXPECT_EQ(design.trackPatterns[1].axis, db::Dir::kVertical);
  ASSERT_EQ(design.instances.size(), 2u);
  EXPECT_EQ(design.instances[0].origin, geom::Point(1000, 2000));
  EXPECT_EQ(design.instances[1].orient, geom::Orient::MX);
  ASSERT_EQ(design.ioPins.size(), 1u);
  EXPECT_EQ(design.ioPins[0].rect, geom::Rect(4900, -100, 5100, 100));
  ASSERT_EQ(design.nets.size(), 1u);
  ASSERT_EQ(design.nets[0].terms.size(), 3u);
  EXPECT_EQ(design.nets[0].terms[0].instIdx, 0);
  EXPECT_EQ(design.nets[0].terms[2].ioPinIdx, 0);
  EXPECT_EQ(design.numNetInstTerms(), 2u);
}

TEST(Def, UnknownMasterThrows) {
  db::Tech tech;
  db::Library lib;
  db::Design design;
  design.tech = &tech;
  design.lib = &lib;
  EXPECT_THROW(parseDef(R"(
COMPONENTS 1 ;
 - u1 NO_SUCH + PLACED ( 0 0 ) N ;
END COMPONENTS
)",
                        design),
               ParseError);
}

TEST(RoundTrip, GeneratedTestcaseSurvivesWriteParse) {
  // Write a small generated testcase to LEF/DEF text, parse it back, and
  // compare the structural content.
  const benchgen::Testcase tc =
      benchgen::generate(benchgen::ispd18Suite()[0], /*scale=*/0.01);

  const std::string lefText = writeLef(*tc.tech, *tc.lib);
  db::Tech tech2;
  db::Library lib2;
  parseLef(lefText, tech2, lib2);

  EXPECT_EQ(tech2.layers().size(), tc.tech->layers().size());
  EXPECT_EQ(tech2.viaDefs().size(), tc.tech->viaDefs().size());
  for (std::size_t i = 0; i < tech2.layers().size(); ++i) {
    const db::Layer& a = tc.tech->layers()[i];
    const db::Layer& b = tech2.layers()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.pitch, b.pitch);
    EXPECT_EQ(a.width, b.width);
    EXPECT_EQ(a.minArea, b.minArea);
    EXPECT_EQ(a.cutSpacing, b.cutSpacing);
    // The writer densifies the spacing table; compare behavior, not size.
    for (const geom::Coord w : {0, 150, 250, 700, 1500}) {
      for (const geom::Coord p : {0, 150, 250, 700, 1500}) {
        EXPECT_EQ(a.spacing(w, p), b.spacing(w, p))
            << a.name << " w=" << w << " p=" << p;
      }
    }
  }
  EXPECT_EQ(lib2.masters().size(), tc.lib->masters().size());
  for (std::size_t i = 0; i < lib2.masters().size(); ++i) {
    const db::Master& a = *tc.lib->masters()[i];
    const db::Master& b = *lib2.masters()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.width, b.width);
    EXPECT_EQ(a.height, b.height);
    EXPECT_EQ(a.pins.size(), b.pins.size());
    EXPECT_EQ(a.obstructions.size(), b.obstructions.size());
  }

  const std::string defText = writeDef(*tc.design);
  db::Design design2;
  design2.tech = &tech2;
  design2.lib = &lib2;
  parseDef(defText, design2);

  EXPECT_EQ(design2.name, tc.design->name);
  EXPECT_EQ(design2.dieArea, tc.design->dieArea);
  EXPECT_EQ(design2.instances.size(), tc.design->instances.size());
  EXPECT_EQ(design2.nets.size(), tc.design->nets.size());
  EXPECT_EQ(design2.ioPins.size(), tc.design->ioPins.size());
  EXPECT_EQ(design2.trackPatterns.size(), tc.design->trackPatterns.size());
  for (std::size_t i = 0; i < design2.instances.size(); ++i) {
    EXPECT_EQ(design2.instances[i].name, tc.design->instances[i].name);
    EXPECT_EQ(design2.instances[i].origin, tc.design->instances[i].origin);
    EXPECT_EQ(design2.instances[i].orient, tc.design->instances[i].orient);
  }
  for (std::size_t i = 0; i < design2.nets.size(); ++i) {
    EXPECT_EQ(design2.nets[i].terms.size(),
              tc.design->nets[i].terms.size());
  }
}

TEST(RoutedDef, EmitsRoutedStatements) {
  const benchgen::Testcase tc =
      benchgen::generate(benchgen::ispd18Suite()[0], /*scale=*/0.005);
  std::vector<RoutedShape> routed;
  const db::Layer* m3 = tc.tech->findLayer("M3");
  const db::Layer* v1 = tc.tech->findLayer("V1");
  // One horizontal wire and one via on net 0.
  routed.push_back({0, m3->index, {1000, 940, 3000, 1060}, false});
  routed.push_back({0, v1->index, {1930, 930, 2070, 1070}, true});
  const std::string text = writeRoutedDef(*tc.design, routed);

  EXPECT_NE(text.find("+ ROUTED"), std::string::npos);
  EXPECT_NE(text.find("M3 ( 1060 1000 ) ( 2940 1000 )"), std::string::npos);
  EXPECT_NE(text.find("V1_0"), std::string::npos);
  // The routed DEF still parses with the plain parser (ROUTED clauses are
  // skipped as unknown '+' attributes).
  db::Design parsed;
  parsed.tech = tc.tech.get();
  parsed.lib = tc.lib.get();
  parseDef(text, parsed);
  EXPECT_EQ(parsed.nets.size(), tc.design->nets.size());
  EXPECT_EQ(parsed.instances.size(), tc.design->instances.size());
}

TEST(RoutedDef, NetsWithoutRoutingStayPlain) {
  const benchgen::Testcase tc =
      benchgen::generate(benchgen::ispd18Suite()[0], /*scale=*/0.005);
  const std::string text = writeRoutedDef(*tc.design, {});
  EXPECT_EQ(text.find("+ ROUTED"), std::string::npos);
  db::Design parsed;
  parsed.tech = tc.tech.get();
  parsed.lib = tc.lib.get();
  parseDef(text, parsed);
  EXPECT_EQ(parsed.nets.size(), tc.design->nets.size());
}

}  // namespace
}  // namespace pao::lefdef
