// OracleSession tests: the incremental oracle must stay exactly equivalent
// to a fresh batch run after any mutation sequence (the refactor's
// load-bearing invariant), while recomputing only dirty clusters.
#include "pao/session.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "benchgen/testcase.hpp"
#include "pao/oracle.hpp"

namespace pao::core {
namespace {

benchgen::Testcase smallCase() {
  benchgen::TestcaseSpec spec = benchgen::ispd18Suite()[0];
  spec.numCells = 150;
  spec.numNets = 80;
  return benchgen::generate(spec, 1.0);
}

/// Deterministic LCG (same constants as pao_cli bench-incremental); the low
/// bits of an LCG are weak, so only the upper bits are used.
struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 17;
  }
};

/// One random row-snapped move or orientation flip through the session.
void randomMutation(OracleSession& session, db::Design& design, Lcg& rng) {
  const int inst = static_cast<int>(rng.next() % design.instances.size());
  if (rng.next() % 4 == 0) {
    const geom::Orient cur = design.instances[inst].orient;
    session.setOrient(inst, cur == geom::Orient::R0 ? geom::Orient::MX
                                                    : geom::Orient::R0);
    return;
  }
  const db::Row& row = design.rows[rng.next() % design.rows.size()];
  const std::uint64_t sites =
      row.numSites > 0 ? static_cast<std::uint64_t>(row.numSites) : 1;
  session.moveInstance(
      inst, geom::Point{row.origin.x + static_cast<geom::Coord>(
                                           rng.next() % sites) *
                                           row.siteWidth,
                        row.origin.y});
}

/// chosenAp agreement for every (instance, signal pin) — class-order
/// independent, unlike comparing the classes vectors directly.
bool sameAccess(const OracleResult& a, const OracleResult& b,
                const db::Design& design) {
  if (a.chosenPattern != b.chosenPattern) return false;
  for (int i = 0; i < static_cast<int>(design.instances.size()); ++i) {
    const int cls = a.unique.classOf[i];
    if (cls < 0 || a.classes[cls].pinAps.empty()) continue;
    for (int p = 0; p < static_cast<int>(a.classes[cls].pinAps.size());
         ++p) {
      const auto apA = a.chosenAp(design, i, p);
      const auto apB = b.chosenAp(design, i, p);
      if (apA.has_value() != apB.has_value()) return false;
      if (apA && apA->loc != apB->loc) return false;
    }
  }
  return true;
}

void expectMatchesBatch(const OracleSession& session, db::Design& design,
                        const OracleConfig& cfg) {
  PinAccessOracle fresh(design, cfg);
  const OracleResult batch = fresh.run();
  EXPECT_EQ(batch.chosenPattern, session.chosenPattern());
  EXPECT_TRUE(sameAccess(batch, session.snapshot(), design));
}

class SessionEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SessionEquivalence, RandomMutationsMatchFreshBatchRun) {
  benchgen::Testcase tc = smallCase();
  AccessCache cache;
  OracleConfig cfg = withBcaConfig();
  cfg.numThreads = GetParam();
  cfg.cache = &cache;

  OracleSession session(*tc.design, cfg);
  expectMatchesBatch(session, *tc.design, cfg);

  Lcg rng{7 + static_cast<std::uint64_t>(GetParam())};
  for (int m = 0; m < 5; ++m) {
    randomMutation(session, *tc.design, rng);
    expectMatchesBatch(session, *tc.design, cfg);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, SessionEquivalence,
                         ::testing::Values(1, 4, 0));

TEST(OracleSession, SingleMoveRecomputesOnlyDirtyClusters) {
  benchgen::Testcase tc = smallCase();
  AccessCache cache;
  OracleConfig cfg = withBcaConfig();
  cfg.cache = &cache;
  OracleSession session(*tc.design, cfg);
  const std::size_t fullDp = session.stats().clusterDpRuns;

  const db::Row& row = tc.design->rows.front();
  session.moveInstance(3, geom::Point{row.origin.x + 7 * row.siteWidth,
                                      row.origin.y});

  EXPECT_GE(session.stats().lastDirtyClusters, 1u);
  EXPECT_LT(session.stats().lastDirtyClusters,
            session.stats().lastClusterCount);
  // The move re-ran far fewer cluster DPs than the initial full build.
  EXPECT_LT(session.stats().clusterDpRuns - fullDp, fullDp);
  expectMatchesBatch(session, *tc.design, cfg);
}

TEST(OracleSession, AddAndRemoveInstanceMatchBatch) {
  benchgen::Testcase tc = smallCase();
  AccessCache cache;
  OracleConfig cfg = withBcaConfig();
  cfg.cache = &cache;
  OracleSession session(*tc.design, cfg);

  // Clone an existing instance into a fresh row slot.
  db::Instance clone = tc.design->instances[0];
  clone.name = "session_test_clone";
  const db::Row& row = tc.design->rows.back();
  clone.origin = geom::Point{row.origin.x + 3 * row.siteWidth, row.origin.y};
  clone.orient = row.orient;
  const int idx = session.addInstance(clone);
  EXPECT_EQ(idx, static_cast<int>(tc.design->instances.size()) - 1);
  expectMatchesBatch(session, *tc.design, cfg);

  session.removeInstance(idx);
  expectMatchesBatch(session, *tc.design, cfg);

  // Removing a long-standing instance renumbers everything above it.
  session.removeInstance(4);
  expectMatchesBatch(session, *tc.design, cfg);
}

TEST(OracleSession, ClassRevivalAfterLastMemberLeaves) {
  benchgen::Testcase tc = smallCase();
  OracleConfig cfg = withBcaConfig();
  OracleSession session(*tc.design, cfg);

  // Drive instance 2 through a one-of-a-kind signature (unique orientation
  // at its row) and back: the emptied class must be revived by signature,
  // and the final state must match a batch run.
  const geom::Orient orig = tc.design->instances[2].orient;
  session.setOrient(2, orig == geom::Orient::R0 ? geom::Orient::MX
                                                : geom::Orient::R0);
  expectMatchesBatch(session, *tc.design, cfg);
  session.setOrient(2, orig);
  expectMatchesBatch(session, *tc.design, cfg);
}

TEST(OracleSession, ReadOnlySessionRejectsMutation) {
  const benchgen::Testcase tc = smallCase();
  const db::Design& design = *tc.design;
  OracleSession session(design, withBcaConfig());
  EXPECT_THROW(session.moveInstance(0, geom::Point{0, 0}), std::logic_error);
  EXPECT_THROW(session.removeInstance(0), std::logic_error);
}

TEST(OracleSession, OutOfBandDesignMutationDetected) {
  benchgen::Testcase tc = smallCase();
  OracleSession session(*tc.design, withBcaConfig());
  // An edit through the Design mutation API behind the session's back bumps
  // the revision counter, which the next session mutation must reject.
  tc.design->moveInstance(0, tc.design->instances[0].origin);
  EXPECT_THROW(session.moveInstance(1, tc.design->instances[1].origin),
               std::logic_error);
}

TEST(OracleSession, SnapshotEqualsBatchByteForByte) {
  const benchgen::Testcase tc = smallCase();
  const db::Design& design = *tc.design;
  OracleConfig cfg = withBcaConfig();
  const OracleSession session(design, cfg);
  const OracleResult snap = session.snapshot();
  PinAccessOracle oracle(design, cfg);
  const OracleResult batch = oracle.run();
  ASSERT_EQ(snap.classes.size(), batch.classes.size());
  EXPECT_EQ(snap.chosenPattern, batch.chosenPattern);
  for (std::size_t c = 0; c < snap.classes.size(); ++c) {
    ASSERT_EQ(snap.classes[c].pinAps.size(), batch.classes[c].pinAps.size());
    for (std::size_t p = 0; p < snap.classes[c].pinAps.size(); ++p) {
      ASSERT_EQ(snap.classes[c].pinAps[p].size(),
                batch.classes[c].pinAps[p].size());
      for (std::size_t a = 0; a < snap.classes[c].pinAps[p].size(); ++a) {
        EXPECT_EQ(snap.classes[c].pinAps[p][a].loc,
                  batch.classes[c].pinAps[p][a].loc);
      }
    }
  }
}

}  // namespace
}  // namespace pao::core
