// Known-negative fixture for the executor-hygiene rule. NOT compiled.
#include <cstddef>
#include <thread>
#include <vector>

namespace util {
template <typename Fn>
void parallelFor(std::size_t n, Fn&& fn, int numThreads);
}

// Fine: querying hardware concurrency is not thread creation.
unsigned hwThreads() {
  return std::thread::hardware_concurrency();
}

// Fine: slot writes through a const-capture lambda.
std::vector<int> slotWrites(std::size_t n) {
  std::vector<int> out(n);
  util::parallelFor(
      n, [&out](std::size_t i) { out[i] = static_cast<int>(i) * 2; }, 0);
  return out;
}

// Suppressed with justification: e.g. a benchmark that must own its pool.
void suppressedRawThread() {
  // pao-lint: allow(executor-hygiene): measures bare thread spawn cost
  std::thread t([] {});
  t.join();
}
