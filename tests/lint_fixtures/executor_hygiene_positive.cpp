// Known-positive fixture for the executor-hygiene rule. NOT compiled —
// consumed by tests/test_lint.cpp as lint input only.
#include <cstddef>
#include <future>
#include <thread>

namespace util {
template <typename Fn>
void parallelFor(std::size_t n, Fn&& fn, int numThreads);
}

void rawThread() {
  std::thread t([] {});  // line 13: raw std::thread
  t.join();
}

void rawAsync() {
  auto f = std::async([] { return 1; });  // line 18: raw std::async
  f.get();
}

void mutableCapture() {
  int next = 0;
  util::parallelFor(
      4, [next](std::size_t) mutable { ++next; },  // line 25: mutable capture
      1);
}
