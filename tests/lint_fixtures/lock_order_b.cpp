// Second half of the cross-file lock-order known-positive pair — see
// lock_order_a.cpp. NOT compiled.
#include <mutex>

extern std::mutex gAlpha;
extern std::mutex gBeta;
extern int gProtected;

void betaThenAlpha() {
  const std::lock_guard<std::mutex> b(gBeta);
  const std::lock_guard<std::mutex> a(gAlpha);  // line 11: gBeta -> gAlpha
  gProtected = 2;
}
