// Known-positive fixture for the executor-hygiene job-graph extension.
// NOT compiled — consumed by tests/test_lint.cpp as lint input only.
// Linted twice: under a neutral path (mutable + nested parallelFor fire)
// and under "src/serve/fixture.cpp" (the socket ban fires as well).
#include <cstddef>
#include <string>
#include <vector>

namespace util {
using JobId = unsigned;
template <typename Fn>
void parallelFor(std::size_t n, Fn&& fn, int numThreads);
struct JobGraph {
  template <typename Fn>
  JobId addJob(Fn&& fn);
  template <typename Fn>
  JobId addJobRange(std::size_t n, Fn&& fn);
  void run(int numThreads);
};
}

void mutableNodeBody() {
  util::JobGraph graph;
  int next = 0;
  graph.addJob([next]() mutable { ++next; });  // line 25: mutable capture
  graph.run(0);
}

void nestedParallelForInNode(std::vector<int>& out) {
  util::JobGraph graph;
  graph.addJobRange(4, [&](std::size_t) {
    // line 33: parallelFor inside a job-node body degrades to serial.
    util::parallelFor(
        out.size(), [&out](std::size_t i) { out[i] = 1; }, 0);
  });
  graph.run(0);
}

void nodeReadsSocket(const std::vector<int>& fds) {
  util::JobGraph graph;
  std::vector<std::string> out(fds.size());
  graph.addJobRange(fds.size(), [&](std::size_t i) {
    char buf[256];
    read(fds[i], buf, sizeof(buf));  // line 44: socket read in a node
    out[i] = buf;
  });
  graph.run(4);
}
