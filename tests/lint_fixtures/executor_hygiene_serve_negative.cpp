// Known-negative fixture for the executor-hygiene socket-I/O extension.
// NOT compiled — fed to lintSource under "src/serve/fixture.cpp".
#include <cstddef>
#include <string>
#include <vector>

namespace util {
template <typename Fn>
void parallelFor(std::size_t n, Fn&& fn, int numThreads);
}

struct Request {
  std::string line;
};
std::string dispatchOne(const Request& r);

// Fine: workers compute response strings into slots; no socket in sight.
// The event loop flushes `out` afterwards.
std::vector<std::string> dispatchBatch(const std::vector<Request>& batch) {
  std::vector<std::string> out(batch.size());
  util::parallelFor(
      batch.size(), [&](std::size_t i) { out[i] = dispatchOne(batch[i]); },
      static_cast<int>(batch.size()));
  return out;
}

struct Conn {
  std::string in;
  std::size_t read(char* buf, std::size_t n);  // member, not the syscall
};

// Fine: member call through an object is not the socket API.
void drainBuffered(Conn& conn, std::vector<Conn*>& conns) {
  util::parallelFor(
      conns.size(),
      [&](std::size_t i) {
        char buf[64];
        conns[i]->read(buf, sizeof(buf));
        conn.read(buf, sizeof(buf));
      },
      1);
}

// Fine: socket calls outside any parallelFor (the event loop itself).
void eventLoopRead(int fd) {
  char buf[4096];
  read(fd, buf, sizeof(buf));
  send(fd, buf, sizeof(buf), 0);
}
