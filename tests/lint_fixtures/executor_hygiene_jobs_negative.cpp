// Known-negative fixture for the executor-hygiene job-graph extension.
// NOT compiled — fed to lintSource, including under "src/serve/fixture.cpp".
#include <cstddef>
#include <string>
#include <vector>

namespace util {
using JobId = unsigned;
template <typename Fn>
void parallelFor(std::size_t n, Fn&& fn, int numThreads);
struct JobGraph {
  template <typename Fn>
  JobId addJob(Fn&& fn);
  template <typename Fn>
  JobId addJob(Fn&& fn, std::initializer_list<JobId> deps);
  template <typename Fn>
  JobId addJobRange(std::size_t n, Fn&& fn);
  void run(int numThreads);
};
}

struct Request {
  std::string line;
};
std::string dispatchOne(const Request& r);

// Fine: nodes write response strings into pre-sized slots through a
// const-capture lambda; ordering is expressed as dependency edges.
std::vector<std::string> dispatchBatch(const std::vector<Request>& batch) {
  std::vector<std::string> out(batch.size());
  util::JobGraph graph;
  util::JobId prev = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i == 0) {
      prev = graph.addJob([&out, &batch, i] { out[i] = dispatchOne(batch[i]); });
    } else {
      prev = graph.addJob([&out, &batch, i] { out[i] = dispatchOne(batch[i]); },
                          {prev});
    }
  }
  graph.run(static_cast<int>(batch.size()));
  return out;
}

struct Conn {
  std::string in;
  std::size_t read(char* buf, std::size_t n);  // member, not the syscall
};

// Fine: member call through an object is not the socket API.
void drainBuffered(std::vector<Conn*>& conns) {
  util::JobGraph graph;
  graph.addJobRange(conns.size(), [&](std::size_t i) {
    char buf[64];
    conns[i]->read(buf, sizeof(buf));
  });
  graph.run(1);
}

// Fine: socket calls outside any node body (the event loop itself).
void eventLoopRead(int fd) {
  char buf[4096];
  read(fd, buf, sizeof(buf));
  send(fd, buf, sizeof(buf), 0);
}
