// Cross-file half of the lock-discipline known-positive pair: this TU
// acquires gAlpha then gBeta; lock_order_b.cpp acquires the same pair in
// the opposite order. Linted together through lintTree() each file gets
// one inversion finding at its inner acquisition. NOT compiled.
#include <mutex>

std::mutex gAlpha;
std::mutex gBeta;
int gProtected;

void alphaThenBeta() {
  const std::lock_guard<std::mutex> a(gAlpha);
  const std::lock_guard<std::mutex> b(gBeta);  // line 13: gAlpha -> gBeta
  gProtected = 1;
}
