// Known-negative fixture for the layering rule. NOT compiled — consumed by
// tests/test_lint.cpp under the synthetic path
// src/router/layering_negative.cpp: every include below is legal for the
// router module (rank 7): strictly lower-ranked modules, obs (includable
// anywhere), angled system headers, same-module headers, and unranked
// project paths.
#include <mutex>
#include <vector>

#include "util/executor.hpp"
#include "db/design.hpp"
#include "pao/oracle.hpp"
#include "obs/metrics.hpp"
#include "router/grid.hpp"
#include "lint/lexer.hpp"

int layeringNegative();
