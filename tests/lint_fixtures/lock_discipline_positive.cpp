// Known-positive fixture for the per-TU half of the lock-discipline rule.
// NOT compiled — consumed by tests/test_lint.cpp through lintTree(). Each
// marked line must produce exactly one finding.
#include <cstddef>
#include <fstream>
#include <mutex>

namespace util {
template <typename Fn>
void parallelFor(std::size_t n, Fn&& fn, int numThreads);
}

struct Worker {
  void join();
};

std::mutex gMu;

void fileIoUnderLock(const char* path) {
  const std::lock_guard<std::mutex> lock(gMu);
  std::ifstream in(path);  // line 21: file I/O while gMu is held
  (void)in;
}

void parallelForUnderLock() {
  const std::lock_guard<std::mutex> lock(gMu);
  util::parallelFor(4, [](std::size_t) {}, 4);  // line 27: fan-out held
}

void joinUnderLock(Worker& w) {
  const std::scoped_lock lock(gMu);
  w.join();  // line 32: join while gMu is held
}

void doubleLock() {
  const std::lock_guard<std::mutex> outer(gMu);
  const std::lock_guard<std::mutex> inner(gMu);  // line 37: double lock
}
