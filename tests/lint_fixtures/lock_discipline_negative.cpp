// Known-negative fixture for the lock-discipline rule. NOT compiled —
// consumed by tests/test_lint.cpp through lintTree(). Nothing here may
// produce a finding: every blocking construct runs after its guard's scope
// closed, nesting uses distinct mutexes in one consistent order, and
// deferred guards hold nothing.
#include <cstddef>
#include <fstream>
#include <mutex>

namespace util {
template <typename Fn>
void parallelFor(std::size_t n, Fn&& fn, int numThreads);
}

std::mutex gMu;
std::mutex gOther;
int gShared;

void copyOutThenBlock(const char* path) {
  int local = 0;
  {
    const std::lock_guard<std::mutex> lock(gMu);
    local = gShared;
  }
  std::ifstream in(path);  // guard scope closed above: nothing held
  util::parallelFor(4, [](std::size_t) {}, 4);
  (void)local;
}

void distinctMutexesNestInOneOrder() {
  const std::lock_guard<std::mutex> a(gMu);
  const std::lock_guard<std::mutex> b(gOther);
  gShared = 1;
}

void deferredGuardHoldsNothing(std::mutex& m) {
  std::unique_lock<std::mutex> lock(m, std::defer_lock);
  std::ifstream in("fixture.txt");
  (void)in;
}
