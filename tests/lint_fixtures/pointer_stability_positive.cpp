// Known-positive fixture for the pointer-stability rule. NOT compiled —
// consumed by tests/test_lint.cpp as lint input only.
#include <string>
#include <vector>

struct Widget {
  std::string name;
  int id = 0;
};

struct Store {
  Widget& addWidget(std::string name);  // annotated via --annotate in tests
};

// Generic vector case: `first` dangles once `vals` grows again.
int genericVectorDangle() {
  std::vector<int> vals;
  int& first = vals.emplace_back(1);
  vals.emplace_back(2);   // may reallocate
  return first;           // line 20: use-after-invalidation
}

// Annotated accessor case: mirrors the PR 1 tech_gen.cpp bug.
void annotatedAccessorDangle(Store& store) {
  Widget& w = store.addWidget("a");
  Widget& w2 = store.addWidget("b");  // invalidates w
  w.id = 1;                           // line 27: use-after-invalidation
  w2.id = 2;
}

// push_back invalidates too, even though it returns void.
int pushBackInvalidates() {
  std::vector<int> vals;
  int& ref = vals.emplace_back(7);
  vals.push_back(8);
  return ref;             // line 36: use-after-invalidation
}

// Interner-style default annotation (group "interner"): viewOf() returns a
// reference into a vector slot that the next intern() may reallocate.
struct Names {
  const std::string& viewOf(int id);
  int intern(const std::string& s);
};

int viewHeldAcrossIntern(Names& names) {
  const std::string& v = names.viewOf(0);
  names.intern("fresh");              // may grow the id->view vector
  return static_cast<int>(v.size());  // line 49: use-after-invalidation
}
