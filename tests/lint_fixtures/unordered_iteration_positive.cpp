// Known-positive fixture for the unordered-iteration rule. NOT compiled.
#include <iostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

// Hash-order stream output: nondeterministic across implementations/runs.
void dumpCounts(const std::unordered_map<std::string, int>& counts) {
  for (const auto& [name, n] : counts) {  // line 10: flagged at the for
    std::cout << name << " " << n << "\n";
  }
}

// Hash-order result collection with no later sort.
std::vector<int> collectIds() {
  std::unordered_set<int> ids;
  ids.insert(3);
  std::vector<int> out;
  for (int id : ids) {  // line 20: flagged at the for
    out.push_back(id);
  }
  return out;
}
