// Known-positive fixture for the obs-naming rule. NOT compiled — consumed
// by tests/test_lint.cpp as lint input only. The macro stubs below are plain
// functions so the call sites tokenize the same way the real macros do.
void PAO_COUNTER_ADD(const char*, unsigned long);
void PAO_COUNTER_INC(const char*);
void PAO_GAUGE_SET(const char*, long long);
void PAO_HISTOGRAM_OBSERVE(const char*, unsigned long);

void badNames() {
  PAO_COUNTER_INC("step1.pins");                // line 10: missing pao. root
  PAO_COUNTER_ADD("pao.total", 3);              // line 11: only two segments
  PAO_GAUGE_SET("pao.Step1.Pins", 1);           // line 12: uppercase
  PAO_HISTOGRAM_OBSERVE("pao.step1.", 4);       // line 13: empty segment
  PAO_COUNTER_INC("pao.step-1.pins");           // line 14: dash not allowed
}

void suppressedBadName() {
  // pao-lint: allow(obs-naming): fixture exercising the suppression path
  PAO_COUNTER_INC("Not.A.Valid.Name");
}
