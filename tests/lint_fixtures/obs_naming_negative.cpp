// Known-negative fixture for the obs-naming rule. NOT compiled — consumed
// by tests/test_lint.cpp as lint input only.
void PAO_COUNTER_ADD(const char*, unsigned long);
void PAO_COUNTER_INC(const char*);
void PAO_GAUGE_SET(const char*, long long);
void PAO_HISTOGRAM_OBSERVE(const char*, unsigned long);

void goodNames() {
  PAO_COUNTER_INC("pao.step1.pins_analyzed");
  PAO_COUNTER_ADD("pao.step2.pair_checks", 12);
  PAO_GAUGE_SET("pao.router.queue_depth", 7);
  PAO_HISTOGRAM_OBSERVE("pao.step3.cluster_size", 5);
  PAO_COUNTER_INC("pao.oracle.cache.hits_l2");  // four segments are fine
  // The job-graph profiler's registry counters and the serve slow-request
  // counter (PR 9) must stay catalog- and naming-clean.
  PAO_COUNTER_ADD("pao.jobs.executed", 1);
  PAO_COUNTER_ADD("pao.jobs.skipped", 1);
  PAO_COUNTER_INC("pao.serve.slow_requests");
}

void notStaticallyCheckable(const char* dynamicName) {
  // A runtime-built name cannot be validated lexically; the rule skips it.
  PAO_COUNTER_INC(dynamicName);
}

void unrelatedStrings() {
  // Strings outside the observability macros carry no naming contract.
  const char* s = "Totally.Unrelated";
  (void)s;
}
