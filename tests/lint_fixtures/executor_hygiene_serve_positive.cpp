// Known-positive fixture for the executor-hygiene socket-I/O extension.
// NOT compiled — tests/test_lint.cpp feeds this to lintSource under the
// synthetic path "src/serve/fixture.cpp" so the src/serve/ ban applies.
#include <cstddef>
#include <string>
#include <vector>

namespace util {
template <typename Fn>
void parallelFor(std::size_t n, Fn&& fn, int numThreads);
}

// A dispatch worker reading its own socket: exactly the bug the rule exists
// for. The event loop owns every fd; a worker blocked in read() pins its
// dispatch slot until the peer talks.
void workerReadsSocket(const std::vector<int>& fds) {
  std::vector<std::string> out(fds.size());
  util::parallelFor(
      fds.size(),
      [&](std::size_t i) {
        char buf[256];
        read(fds[i], buf, sizeof(buf));  // line 22: socket read in worker
        out[i] = buf;
      },
      4);
}

void workerWritesSocket(const std::vector<int>& fds,
                        const std::vector<std::string>& responses) {
  util::parallelFor(
      fds.size(),
      [&](std::size_t i) {
        send(fds[i], responses[i].data(), responses[i].size(),
             0);  // line 33: socket send in worker
      },
      4);
}
