// Known-negative fixture for diag-hygiene: located errors, domain exception
// types, and a justified suppression — none should fire when linted under a
// synthetic src/ path.
#include <stdexcept>
#include <string>

struct Diag {
  std::string code;
};
struct ParseError {
  explicit ParseError(Diag d);
};

void good(const std::string& tok) {
  if (tok.empty()) throw ParseError(Diag{"LEX001"});
}

struct FaultInjected : std::runtime_error {
  using std::runtime_error::runtime_error;  // deriving is fine; throwing bare
};

void alsoGood() { throw FaultInjected("cache.read"); }

void justified() {
  // pao-lint: allow(diag-hygiene): allocator exhaustion has no source loc
  throw std::runtime_error("out of memory");
}
