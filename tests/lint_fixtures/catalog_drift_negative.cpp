// Known-negative fixture for the catalog-drift rule, audited against
// catalog_drift_doc.md under the synthetic path
// src/fix/catalog_drift_negative.cpp. NOT compiled. Every documented
// identifier is alive here — including pao.fix.gone, kept alive by a
// *weak* use (a registry lookup, not an emission site), and pt.one, whose
// second mention is a fault spec with a trigger suffix.
void PAO_COUNTER_INC(const char*);
void PAO_FAULT_POINT(const char*);
void expectCounter(const char*);
void armFault(const char*);

const char* srvCode() { return "SRV001"; }
const char* genCode() { return "GEN000"; }

void metrics() {
  PAO_COUNTER_INC("pao.fix.alpha");
  expectCounter("pao.fix.gone");
}

void faults() {
  PAO_FAULT_POINT("pt.one");
  armFault("pt.one:2+");
}
