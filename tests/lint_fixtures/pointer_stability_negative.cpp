// Known-negative fixture for the pointer-stability rule. NOT compiled.
#include <deque>
#include <string>
#include <vector>

struct Widget {
  std::string name;
  int id = 0;
};

struct Store {
  Widget& addWidget(std::string name);
  Widget* findWidget(const std::string& name);
};

// Safe: the reference is fully used before the container grows again.
int useBeforeGrowth() {
  std::vector<int> vals;
  int& first = vals.emplace_back(1);
  first = 10;
  vals.emplace_back(2);
  return vals.front();
}

// Safe: re-acquired after the growth call instead of reusing the old ref.
void reacquireAfterGrowth(Store& store) {
  store.addWidget("a");
  store.addWidget("b");
  Widget* a = store.findWidget("a");
  a->id = 1;
}

// Safe: growth on a *different* container does not invalidate.
int unrelatedContainer() {
  std::vector<int> vals;
  std::vector<int> others;
  int& first = vals.emplace_back(1);
  others.emplace_back(2);
  return first;
}

// Suppressed with justification: e.g. the receiver is deque-backed, which
// the per-file lexical pass cannot know.
int suppressedDequeCase(std::deque<int>& dq) {
  int& ref = dq.emplace_back(1);
  dq.emplace_back(2);
  // pao-lint: allow(pointer-stability): dq is a deque; refs survive growth
  return ref;
}

// Safe: viewOf's result copied by value before the next intern() (the
// default "interner" annotation only bites on reference bindings).
struct Names {
  const std::string& viewOf(int id);
  int intern(const std::string& s);
};

int copyBeforeIntern(Names& names) {
  const std::string v = names.viewOf(0);
  names.intern("fresh");
  return static_cast<int>(v.size());
}
