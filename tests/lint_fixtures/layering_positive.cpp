// Known-positive fixture for the layering rule. NOT compiled — consumed by
// tests/test_lint.cpp, which lints it through lintTree() under the
// synthetic path src/drc/layering_positive.cpp so the drc module's rank
// applies to every include below.
#include <vector>

#include "util/diag.hpp"
#include "serve/service.hpp"
#include "benchgen/tech_gen.hpp"
#include "obs/metrics.hpp"
#include "geom/polygon.hpp"

int layeringPositive();
