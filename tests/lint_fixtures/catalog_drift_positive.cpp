// Known-positive fixture for the catalog-drift rule, audited against
// catalog_drift_doc.md. NOT compiled — consumed by tests/test_lint.cpp
// through lintTree() under the synthetic path
// src/fix/catalog_drift_positive.cpp (the default tests/ exemption would
// otherwise waive the undocumented-in-code direction). Expected findings:
// three undocumented emission sites below, plus one dead-in-docs finding
// anchored in the doc (pao.fix.gone is never referenced here).
void PAO_COUNTER_INC(const char*);
void PAO_FAULT_INJECT(const char*);

const char* documentedCode() { return "SRV001"; }
const char* undocumentedCode() { return "SRV777"; }  // line 12

void metrics() {
  PAO_COUNTER_INC("pao.fix.alpha");
  PAO_COUNTER_INC("pao.fix.beta");  // line 16: undocumented metric
}

void faults() {
  PAO_FAULT_INJECT("pt.one");
  PAO_FAULT_INJECT("pt.two");  // line 21: undocumented fault point
}

const char* legacyCode() { return "GEN000"; }
