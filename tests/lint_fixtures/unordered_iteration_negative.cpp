// Known-negative fixture for the unordered-iteration rule. NOT compiled.
#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

// Fine: collected in hash order but canonically sorted before anyone looks.
std::vector<int> collectThenSort(const std::unordered_set<int>& ids) {
  std::vector<int> out;
  for (int id : ids) {
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Fine: the loop only aggregates (order-independent), it writes nothing.
int total(const std::unordered_map<std::string, int>& counts) {
  int sum = 0;
  for (const auto& [name, n] : counts) {
    sum += n;
  }
  return sum;
}

// Fine: std::map iterates in key order.
std::vector<std::string> orderedKeys(const std::map<std::string, int>& m) {
  std::vector<std::string> out;
  for (const auto& [k, v] : m) {
    out.push_back(k);
  }
  return out;
}

// Suppressed with justification.
std::vector<int> suppressedDump(const std::unordered_set<int>& ids) {
  std::vector<int> out;
  // pao-lint: allow(unordered-iteration): consumer treats this as a bag
  for (int id : ids) {
    out.push_back(id);
  }
  return out;
}
