// Fixture for malformed suppressions. NOT compiled.
#include <thread>

// A justification is required: this allow() does not suppress, and is
// itself reported.
void missingJustification() {
  std::thread t([] {});  // pao-lint: allow(executor-hygiene)
  t.join();
}

// Unknown rule ids are reported so typos don't silently fail to suppress.
void unknownRule() {
  // pao-lint: allow(executor-hygine): typo in the rule id
  std::thread t([] {});
  t.join();
}
