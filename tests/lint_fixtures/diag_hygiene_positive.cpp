// Known-positive fixture for diag-hygiene: library code raising bare
// std::runtime_error instead of a located ParseError / util::Diag.
// test_lint.cpp lints this file's CONTENT under a synthetic src/ path (the
// fixture directory itself sits under tests/, which the default options
// exempt).
#include <stdexcept>
#include <string>

void parseThing(const std::string& tok) {
  if (tok.empty()) {
    throw std::runtime_error("empty token");  // flagged: no location, no code
  }
}

void resolveMaster(const std::string& name) {
  if (name != "INV") throw std::runtime_error("unknown master " + name);
}
