#include "pao/cluster_select.hpp"

#include <gtest/gtest.h>

#include "pao/ap_gen.hpp"
#include "pao/pattern_gen.hpp"
#include "test_util.hpp"

namespace pao::core {
namespace {

using geom::Point;
using geom::Rect;

/// A cell whose boundary pins sit close enough to the edges that two
/// abutting instances' same-y boundary vias conflict, while staggered-y
/// choices are compatible: pin A near the left edge, pin Z near the right.
/// (Tiny tech: cell 1200 wide, enclosure reach 150+50, spacing 100.)
class ClusterFixture : public ::testing::Test {
 protected:
  void buildDesign(const std::vector<Point>& origins,
                   int numPatterns = 3) {
    td_ = test::makeTinyDesign({{0, Rect{150, 300, 250, 1100}}});
    db::Master* m = const_cast<db::Master*>(td_.lib->findMaster("CELL"));
    m->pins[0].shapes[0].rect = Rect{150, 300, 250, 1100};  // A, left
    db::Pin& z = m->pins.emplace_back();
    z.name = "Z";
    z.use = db::PinUse::kSignal;
    z.shapes.push_back({0, Rect{1010, 300, 1110, 1100}});  // near right edge

    db::Design& d = *td_.design;
    d.instances.clear();
    for (std::size_t i = 0; i < origins.size(); ++i) {
      db::Instance inst;
      inst.name = "u" + std::to_string(i);
      inst.master = m;
      inst.origin = origins[i];
      inst.orient = geom::Orient::R0;
      d.instances.push_back(inst);
    }
    d.buildInstanceIndex();

    unique_ = db::extractUniqueInstances(d);
    classes_.clear();
    classes_.resize(unique_.classes.size());
    for (std::size_t c = 0; c < unique_.classes.size(); ++c) {
      const InstContext ctx(d, unique_.classes[c]);
      ClassAccess& ca = classes_[c];
      ca.pinAps = AccessPointGenerator(ctx).generateAll();
      PatternGenConfig cfg;
      cfg.numPatterns = numPatterns;
      PatternGenerator gen(ctx, ca.pinAps, cfg);
      ca.patterns = gen.run();
      ca.pinOrder = gen.pinOrder();
    }
  }

  test::TinyDesign td_;
  db::UniqueInstances unique_;
  std::vector<ClassAccess> classes_;
};

TEST_F(ClusterFixture, ClustersSplitAtGaps) {
  buildDesign({{0, 0}, {1200, 0}, {3600, 0}, {0, 1200}});
  ClusterSelector sel(*td_.design, unique_, classes_);
  ASSERT_EQ(sel.clusters().size(), 3u);
  EXPECT_EQ(sel.clusters()[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(sel.clusters()[1], (std::vector<int>{2}));
  EXPECT_EQ(sel.clusters()[2], (std::vector<int>{3}));
}

TEST_F(ClusterFixture, EveryInstanceGetsAPattern) {
  buildDesign({{0, 0}, {1200, 0}, {2400, 0}});
  ClusterSelector sel(*td_.design, unique_, classes_);
  const std::vector<int> chosen = sel.run();
  ASSERT_EQ(chosen.size(), 3u);
  for (const int c : chosen) EXPECT_GE(c, 0);
}

TEST_F(ClusterFixture, AbuttingInstancesChooseCompatiblePatterns) {
  buildDesign({{0, 0}, {1200, 0}});
  ClusterSelector sel(*td_.design, unique_, classes_);
  const std::vector<int> chosen = sel.run();

  // Verify the selection with an independent DRC check of the facing vias.
  const ClassAccess& ca = classes_[unique_.classOf[0]];
  const int rightPin = ca.pinOrder.back();
  const int leftPin = ca.pinOrder.front();
  const int apR = ca.patterns[chosen[0]].apIdx[rightPin];
  const int apL = ca.patterns[chosen[1]].apIdx[leftPin];
  ASSERT_GE(apR, 0);
  ASSERT_GE(apL, 0);
  const AccessPoint& right = ca.pinAps[rightPin][apR];
  const AccessPoint& left = ca.pinAps[leftPin][apL];

  drc::DrcEngine engine(*td_.tech);
  const Point leftLoc = left.loc + Point{1200, 0};  // u1 is shifted by 1200
  EXPECT_TRUE(engine
                  .checkViaPair(*right.primaryVia(*td_.tech), right.loc, 1,
                                *left.primaryVia(*td_.tech), leftLoc, 2)
                  .empty())
      << "selected boundary vias conflict: " << right.loc << " vs "
      << leftLoc;
}

TEST_F(ClusterFixture, SinglePatternModeStillSelects) {
  buildDesign({{0, 0}, {1200, 0}}, /*numPatterns=*/1);
  ClusterSelector sel(*td_.design, unique_, classes_);
  const std::vector<int> chosen = sel.run();
  EXPECT_EQ(chosen[0], 0);
  EXPECT_EQ(chosen[1], 0);
}

TEST_F(ClusterFixture, PairChecksAreMemoizedAcrossRepeats) {
  // Ten identical abutting pairs: the (class, pattern, offset) cache should
  // keep pair checks far below pairs * patterns^2.
  std::vector<Point> origins;
  for (int i = 0; i < 20; ++i) origins.push_back({i * 1200, 0});
  buildDesign(origins);
  ClusterSelector sel(*td_.design, unique_, classes_);
  sel.run();
  // 19 abutments, 3x3 pattern combos each; without memoization that is
  // > 170 pair evaluations (x2 directions) — with it, at most one per
  // distinct (pattern, pattern) combo.
  EXPECT_LE(sel.numPairChecks(), 2u * 9u);
}

TEST_F(ClusterFixture, FillersAreTransparent) {
  buildDesign({{0, 0}, {1200, 0}});
  // Insert a pattern-less filler class between the two cells by giving the
  // design a third instance of a pinless master.
  db::Library fillLib;
  db::Master& filler = fillLib.addMaster("FILL");
  filler.width = 600;
  filler.height = 1200;
  db::Instance inst;
  inst.name = "fill0";
  inst.master = &filler;
  inst.origin = {2400, 0};
  td_.design->instances.push_back(inst);
  td_.design->buildInstanceIndex();
  unique_ = db::extractUniqueInstances(*td_.design);
  // Rebuild class access for the new class layout: the filler class gets no
  // patterns.
  std::vector<ClassAccess> classes(unique_.classes.size());
  for (std::size_t c = 0; c < unique_.classes.size(); ++c) {
    if (unique_.classes[c].master->signalPinIndices().empty()) continue;
    const InstContext ctx(*td_.design, unique_.classes[c]);
    ClassAccess& ca = classes[c];
    ca.pinAps = AccessPointGenerator(ctx).generateAll();
    PatternGenerator gen(ctx, ca.pinAps);
    ca.patterns = gen.run();
    ca.pinOrder = gen.pinOrder();
  }
  ClusterSelector sel(*td_.design, unique_, classes);
  const std::vector<int> chosen = sel.run();
  EXPECT_GE(chosen[0], 0);
  EXPECT_GE(chosen[1], 0);
  EXPECT_EQ(chosen[2], -1);  // filler has no pattern
}

}  // namespace
}  // namespace pao::core
