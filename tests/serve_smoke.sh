#!/bin/sh
# Service smoke test: boots pao_serve on a Unix-domain socket, drives a
# load -> move -> query -> save -> report flow through pao_client, and
# asserts the service-level equivalence contract: the daemon's report for a
# mutated tenant is byte-identical — after normalizeForCompare and modulo
# the producer-specific tool/session/cache/metrics keys — to `pao_cli
# analyze` run fresh over the design the daemon saved.
#
# usage: serve_smoke.sh <pao_cli> <pao_serve> <pao_client> <report_check> <workdir>
set -eu

CLI=$1
SERVE=$2
CLIENT=$3
CHECK=$4
WORK=$5

rm -rf "$WORK"
mkdir -p "$WORK"
SOCK="$WORK/serve.sock"

"$CLI" gen 0 0.005 "$WORK/case" >/dev/null 2>&1

"$SERVE" --socket "$SOCK" --deterministic 2>"$WORK/daemon.log" &
DAEMON=$!
# Kill the daemon on any exit path so a failing assertion can't leak it.
trap 'kill "$DAEMON" 2>/dev/null || true; wait "$DAEMON" 2>/dev/null || true' EXIT

# pao_client retries connect for ~2s, which covers daemon startup.
"$CLIENT" --socket "$SOCK" \
  "{\"cmd\":\"load\",\"tenant\":\"t1\",\"lef\":\"$WORK/case.lef\",\"def\":\"$WORK/case.def\"}" \
  >"$WORK/load.json"
grep -q '"ok":true' "$WORK/load.json"

"$CLIENT" --socket "$SOCK" \
  '{"cmd":"move","tenant":"t1","inst":0,"dx":380}' \
  '{"cmd":"orient","tenant":"t1","inst":1,"orient":"MY"}' \
  '{"cmd":"query","tenant":"t1"}' \
  >"$WORK/mutate.json"
grep -q '"dirtyClusters"' "$WORK/mutate.json"

"$CLIENT" --socket "$SOCK" \
  "{\"cmd\":\"save\",\"tenant\":\"t1\",\"def\":\"$WORK/post.def\"}" >/dev/null
test -s "$WORK/post.def"

"$CLIENT" --socket "$SOCK" --extract result.report \
  '{"cmd":"report","tenant":"t1"}' >"$WORK/serve_report.json"
"$CHECK" report "$WORK/serve_report.json"

# Metrics snapshot must be a schema-valid registry dump (ops-metrics like
# pao.serve.* live here, deliberately outside the equivalence compare).
"$CLIENT" --socket "$SOCK" '{"cmd":"metrics"}' >"$WORK/metrics.json"
"$CHECK" metrics "$WORK/metrics.json"
grep -q '"tenants":1' "$WORK/metrics.json"
grep -q '"inflight":0' "$WORK/metrics.json"

# The tentpole assertion: fresh batch analysis of the saved design produces
# the same normalized report. analyze may exit 1 (quality failure: failed
# pins) on a mutated placement — that is a legal outcome; the reports must
# still agree.
"$CLI" analyze "$WORK/case.lef" "$WORK/post.def" \
  --report-json "$WORK/analyze_report.json" >/dev/null 2>&1 || rc=$?
if [ "${rc:-0}" -gt 1 ]; then
  echo "serve_smoke: pao_cli analyze failed with rc=${rc:-0}" >&2
  exit 1
fi
"$CHECK" compare "$WORK/serve_report.json" "$WORK/analyze_report.json" \
  --ignore tool --ignore session --ignore cache --ignore metrics

# Clean shutdown: the daemon must exit 0 on the shutdown command.
"$CLIENT" --socket "$SOCK" '{"cmd":"shutdown"}' >/dev/null
trap - EXIT
if ! wait "$DAEMON"; then
  echo "serve_smoke: daemon exited non-zero" >&2
  exit 1
fi

echo "serve_smoke: OK"
