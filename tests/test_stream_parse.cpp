// Streaming-ingest equivalence (ROADMAP item 3): parseDefStream must be
// indistinguishable from the legacy serial parseDef — same design bytes
// (compared via db::designFingerprint), same diagnostics in the same
// order, same recovery and bail-out behaviour — at every preset, thread
// count, and chunk size; and the sharded unique-instance extraction must
// reproduce the serial class numbering exactly.
#include "lefdef/stream.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "benchgen/testcase.hpp"
#include "db/fingerprint.hpp"
#include "db/unique_inst.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/def_writer.hpp"
#include "lefdef/lef_parser.hpp"
#include "lefdef/lef_writer.hpp"
#include "pao/oracle.hpp"
#include "pao/session.hpp"
#include "util/fault.hpp"

namespace pao {
namespace {

using lefdef::IngestStats;
using lefdef::ParseError;
using lefdef::ParseOptions;
using lefdef::ParseResult;
using lefdef::StreamOptions;

benchgen::Testcase smallCase() {
  benchgen::TestcaseSpec spec = benchgen::ispd18Suite()[0];
  spec.numCells = 150;
  spec.numNets = 80;
  return benchgen::generate(spec, 1.0);
}

/// Streamed parse with chunks small enough that even test-sized DEFs split
/// into several of them.
StreamOptions tinyChunks(int threads, bool recover = false,
                         std::size_t maxErrors = 64) {
  StreamOptions opts;
  opts.parse.recover = recover;
  opts.parse.maxErrors = maxErrors;
  opts.numThreads = threads;
  opts.chunkBytes = 2048;
  return opts;
}

void expectSameDiags(const std::vector<util::Diag>& got,
                     const std::vector<util::Diag>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE("diag " + std::to_string(i));
    EXPECT_EQ(got[i].code, want[i].code);
    EXPECT_EQ(got[i].loc.file, want[i].loc.file);
    EXPECT_EQ(got[i].loc.line, want[i].loc.line);
    EXPECT_EQ(got[i].loc.col, want[i].loc.col);
    EXPECT_EQ(got[i].message, want[i].message);
    EXPECT_EQ(got[i].excerpt, want[i].excerpt);
  }
}

/// Breaks identifiers in the generated DEF so both parsers must recover:
/// every 5th component's master ('~' prefix -> DEF002), every 7th net term
/// ('~' on the component or PIN name -> DEF004/DEF003), and optionally the
/// first TRACKS layer (DEF001, in the serial preamble). '~' never starts a
/// real identifier, so each edit is a guaranteed unknown-name error.
std::string corruptDef(std::string text, bool corruptTracks) {
  std::vector<std::size_t> inserts;
  if (corruptTracks) {
    const std::size_t layer = text.find(" LAYER ");
    if (layer != std::string::npos) inserts.push_back(layer + 7);
  }
  const std::size_t compBegin = text.find("COMPONENTS ");
  const std::size_t compEnd = text.find("END COMPONENTS");
  int nComp = 0;
  for (std::size_t p = text.find("\n - ", compBegin);
       p != std::string::npos && p < compEnd;
       p = text.find("\n - ", p + 1)) {
    const std::size_t master = text.find(' ', p + 4) + 1;
    if (++nComp % 5 == 0) inserts.push_back(master);
  }
  const std::size_t netsBegin = text.find("\nNETS ");
  const std::size_t netsEnd = text.find("END NETS");
  int nTerm = 0;
  for (std::size_t p = text.find("( ", netsBegin);
       p != std::string::npos && p < netsEnd; p = text.find("( ", p + 2)) {
    if (++nTerm % 7 == 0) inserts.push_back(p + 2);
  }
  for (auto it = inserts.rbegin(); it != inserts.rend(); ++it) {
    text.insert(*it, "~");
  }
  return text;
}

db::Design freshTarget(const benchgen::Testcase& tc) {
  db::Design d;
  d.tech = tc.tech.get();
  d.lib = tc.lib.get();
  return d;
}

// ------------------------------------------------------ clean-input parity

TEST(StreamEquivalence, EveryPresetMatchesLegacyAtEveryThreadCount) {
  std::vector<benchgen::TestcaseSpec> specs = benchgen::ispd18Suite();
  specs.push_back(benchgen::aes14Spec());
  specs.push_back(benchgen::mixedSpec());
  for (const benchgen::TestcaseSpec& spec : specs) {
    SCOPED_TRACE(spec.name);
    const benchgen::Testcase tc = benchgen::generate(spec, /*scale=*/0.01);
    const std::string text = lefdef::writeDef(*tc.design);

    db::Design legacy = freshTarget(tc);
    lefdef::parseDef(text, legacy);
    const std::uint64_t want = db::designFingerprint(legacy);

    for (const int threads : {1, 4, 0}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      db::Design streamed = freshTarget(tc);
      IngestStats stats;
      const ParseResult res =
          lefdef::parseDefStream(text, streamed, tinyChunks(threads), &stats);
      EXPECT_TRUE(res.ok());
      EXPECT_EQ(db::designFingerprint(streamed), want);
      EXPECT_EQ(stats.components, legacy.instances.size());
      EXPECT_EQ(stats.nets, legacy.nets.size());
      EXPECT_EQ(stats.bytes, text.size());
      EXPECT_FALSE(stats.legacyFallback);
    }
  }
}

TEST(StreamEquivalence, ChunkSizeNeverChangesTheResult) {
  const benchgen::Testcase tc = smallCase();
  const std::string text = lefdef::writeDef(*tc.design);
  db::Design legacy = freshTarget(tc);
  lefdef::parseDef(text, legacy);
  const std::uint64_t want = db::designFingerprint(legacy);

  for (const std::size_t chunkBytes :
       {std::size_t{1}, std::size_t{512}, std::size_t{1} << 14,
        std::size_t{1} << 26}) {
    SCOPED_TRACE("chunkBytes=" + std::to_string(chunkBytes));
    StreamOptions opts = tinyChunks(/*threads=*/4);
    opts.chunkBytes = chunkBytes;
    db::Design streamed = freshTarget(tc);
    IngestStats stats;
    EXPECT_TRUE(lefdef::parseDefStream(text, streamed, opts, &stats).ok());
    EXPECT_EQ(db::designFingerprint(streamed), want);
  }
}

// ------------------------------------------------- diagnostics equivalence

TEST(StreamEquivalence, RecoveryDiagsMatchLegacyExactly) {
  const benchgen::Testcase tc = smallCase();
  const std::string text =
      corruptDef(lefdef::writeDef(*tc.design), /*corruptTracks=*/true);

  ParseOptions legacyOpts;
  legacyOpts.recover = true;
  legacyOpts.maxErrors = 1000;  // plenty: the whole error list, no bail
  db::Design legacy = freshTarget(tc);
  const ParseResult wantRes = lefdef::parseDef(text, legacy, legacyOpts);
  ASSERT_FALSE(wantRes.ok());
  ASSERT_LT(wantRes.errorCount(), 1000u);

  for (const int threads : {1, 4, 0}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    db::Design streamed = freshTarget(tc);
    IngestStats stats;
    const ParseResult res = lefdef::parseDefStream(
        text, streamed, tinyChunks(threads, /*recover=*/true, 1000), &stats);
    expectSameDiags(res.diags, wantRes.diags);
    EXPECT_EQ(db::designFingerprint(streamed), db::designFingerprint(legacy));
    EXPECT_FALSE(stats.legacyFallback);
  }
}

TEST(StreamEquivalence, MaxErrorsBailReproducesLegacyStateExactly) {
  const benchgen::Testcase tc = smallCase();
  const std::string text =
      corruptDef(lefdef::writeDef(*tc.design), /*corruptTracks=*/false);

  ParseOptions legacyOpts;
  legacyOpts.recover = true;
  legacyOpts.maxErrors = 10;
  db::Design legacy = freshTarget(tc);
  const ParseResult wantRes = lefdef::parseDef(text, legacy, legacyOpts);
  ASSERT_EQ(wantRes.errorCount(), 11u);  // 10 real + GEN001
  ASSERT_EQ(wantRes.diags.back().code, "GEN001");

  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    db::Design streamed = freshTarget(tc);
    IngestStats stats;
    const ParseResult res = lefdef::parseDefStream(
        text, streamed, tinyChunks(threads, /*recover=*/true, 10), &stats);
    expectSameDiags(res.diags, wantRes.diags);
    EXPECT_EQ(db::designFingerprint(streamed), db::designFingerprint(legacy));
    EXPECT_TRUE(stats.legacyFallback);
  }
}

TEST(StreamEquivalence, StrictModeThrowsTheFileFirstError) {
  const benchgen::Testcase tc = smallCase();
  // No TRACKS corruption: the first error sits inside a COMPONENTS chunk,
  // so the lowest-failing-job rethrow is what is under test here.
  const std::string text =
      corruptDef(lefdef::writeDef(*tc.design), /*corruptTracks=*/false);

  util::Diag want;
  db::Design legacy = freshTarget(tc);
  try {
    lefdef::parseDef(text, legacy);
    FAIL() << "legacy parse should have thrown";
  } catch (const ParseError& e) {
    want = e.diag;
  }

  for (const int threads : {1, 4, 0}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    db::Design streamed = freshTarget(tc);
    try {
      lefdef::parseDefStream(text, streamed, tinyChunks(threads));
      FAIL() << "streamed parse should have thrown";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.diag.code, want.code);
      EXPECT_EQ(e.diag.loc.line, want.loc.line);
      EXPECT_EQ(e.diag.loc.col, want.loc.col);
      EXPECT_EQ(e.diag.message, want.message);
    }
    // The documented strict-mode difference: the streamed parse commits
    // nothing on failure (the legacy parse leaves a partial design).
    EXPECT_TRUE(streamed.instances.empty());
    EXPECT_TRUE(streamed.nets.empty());
    EXPECT_TRUE(streamed.name.empty());
  }
  EXPECT_FALSE(legacy.instances.empty());
}

// ------------------------------------------------------- file-backed forms

class StreamFileTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultRegistry::instance().reset(); }
  void TearDown() override { util::FaultRegistry::instance().reset(); }

  static std::string writeTemp(const std::string& name,
                               const std::string& text) {
    const std::string path = ::testing::TempDir() + name;
    std::ofstream f(path, std::ios::binary);
    f << text;
    return path;
  }
};

TEST_F(StreamFileTest, FileParseMatchesInMemoryParse) {
  const benchgen::Testcase tc = smallCase();
  const std::string defPath =
      writeTemp("stream_ok.def", lefdef::writeDef(*tc.design));
  const std::string lefPath =
      writeTemp("stream_ok.lef", lefdef::writeLef(*tc.tech, *tc.lib));

  db::Tech tech;
  db::Library lib;
  IngestStats lefStats;
  EXPECT_TRUE(
      lefdef::parseLefFile(lefPath, tech, lib, ParseOptions{}, &lefStats)
          .ok());
  EXPECT_EQ(tech.layers().size(), tc.tech->layers().size());
  EXPECT_EQ(lib.masters().size(), tc.lib->masters().size());
  EXPECT_GT(lefStats.bytes, 0u);

  db::Design fromFile;
  fromFile.tech = &tech;
  fromFile.lib = &lib;
  IngestStats stats;
  EXPECT_TRUE(
      lefdef::parseDefFile(defPath, fromFile, tinyChunks(4), &stats).ok());
  EXPECT_GT(stats.parseSeconds, 0.0);
  EXPECT_EQ(stats.bytes, std::filesystem::file_size(defPath));

  db::Design inMemory = freshTarget(tc);
  lefdef::parseDef(lefdef::writeDef(*tc.design), inMemory);
  EXPECT_EQ(db::designFingerprint(fromFile), db::designFingerprint(inMemory));
}

TEST_F(StreamFileTest, IoFaultPointsFireOnTheStreamingPath) {
  const benchgen::Testcase tc = smallCase();
  const std::string defPath =
      writeTemp("stream_fault.def", lefdef::writeDef(*tc.design));
  const std::string lefPath =
      writeTemp("stream_fault.lef", lefdef::writeLef(*tc.tech, *tc.lib));

  ASSERT_TRUE(util::FaultRegistry::instance().configure("def.io"));
  db::Design design = freshTarget(tc);
  EXPECT_THROW(lefdef::parseDefFile(defPath, design, tinyChunks(1)),
               util::FaultInjected);

  ASSERT_TRUE(util::FaultRegistry::instance().configure("lef.io"));
  db::Tech tech;
  db::Library lib;
  EXPECT_THROW(lefdef::parseLefFile(lefPath, tech, lib, ParseOptions{}),
               util::FaultInjected);
}

TEST_F(StreamFileTest, MissingFileThrowsLocatedIoDiag) {
  db::Design design;
  try {
    lefdef::parseDefFile("/nonexistent/no_such.def", design, tinyChunks(1));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.diag.code, "IO001");
    EXPECT_EQ(e.diag.loc.file, "/nonexistent/no_such.def");
  }
}

// ------------------------------------------- sharded unique-inst extraction

TEST(ShardedUnique, AnyThreadCountMatchesSerialExtraction) {
  const benchgen::Testcase tc =
      benchgen::generate(benchgen::ispd18Suite()[1], /*scale=*/0.02);
  const db::UniqueInstances serial =
      db::extractUniqueInstances(*tc.design);
  for (const int threads : {1, 2, 3, 4, 0}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const db::UniqueInstances sharded =
        db::extractUniqueInstances(*tc.design, threads);
    EXPECT_EQ(sharded.classOf, serial.classOf);
    ASSERT_EQ(sharded.classes.size(), serial.classes.size());
    for (std::size_t c = 0; c < serial.classes.size(); ++c) {
      SCOPED_TRACE("class " + std::to_string(c));
      EXPECT_EQ(sharded.classes[c].master, serial.classes[c].master);
      EXPECT_EQ(sharded.classes[c].orient, serial.classes[c].orient);
      EXPECT_EQ(sharded.classes[c].offsets, serial.classes[c].offsets);
      EXPECT_EQ(sharded.classes[c].representative,
                serial.classes[c].representative);
      EXPECT_EQ(sharded.classes[c].members, serial.classes[c].members);
    }
  }
}

TEST(ShardedUnique, OracleResultIdenticalOnStreamedDesign) {
  // End to end on the new front end: stream-parse a generated case, then
  // check the oracle (whose session index now builds via the sharded
  // extraction) produces byte-identical access at different thread counts.
  const benchgen::Testcase tc = smallCase();
  const std::string text = lefdef::writeDef(*tc.design);
  db::Design design = freshTarget(tc);
  ASSERT_TRUE(
      lefdef::parseDefStream(text, design, tinyChunks(/*threads=*/0)).ok());

  const auto runWith = [&](int threads) {
    core::OracleConfig cfg = core::withBcaConfig();
    cfg.numThreads = threads;
    return core::PinAccessOracle(design, cfg).run();
  };
  const core::OracleResult base = runWith(1);
  for (const int threads : {2, 4, 0}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const core::OracleResult res = runWith(threads);
    EXPECT_EQ(res.unique.classOf, base.unique.classOf);
    EXPECT_EQ(res.chosenPattern, base.chosenPattern);
    ASSERT_EQ(res.classes.size(), base.classes.size());
    for (std::size_t c = 0; c < base.classes.size(); ++c) {
      EXPECT_EQ(res.classes[c].pinOrder, base.classes[c].pinOrder);
      ASSERT_EQ(res.classes[c].patterns.size(),
                base.classes[c].patterns.size());
      for (std::size_t p = 0; p < base.classes[c].patterns.size(); ++p) {
        EXPECT_EQ(res.classes[c].patterns[p].apIdx,
                  base.classes[c].patterns[p].apIdx);
      }
    }
  }
}

TEST(ShardedUnique, IncrementalSessionStaysEquivalentOnStreamedDesign) {
  const benchgen::Testcase tc = smallCase();
  const std::string text = lefdef::writeDef(*tc.design);
  db::Design design = freshTarget(tc);
  ASSERT_TRUE(
      lefdef::parseDefStream(text, design, tinyChunks(/*threads=*/4)).ok());

  core::OracleConfig cfg = core::withBcaConfig();
  cfg.numThreads = 4;
  core::OracleSession session(design, cfg);

  // Class indices are NOT compared: the session keeps them stable across
  // mutations (empty classes persist) while a fresh batch renumbers, so
  // equivalence is judged on per-instance access, which is index-free.
  const auto expectMatchesBatch = [&]() {
    core::PinAccessOracle fresh(design, cfg);
    const core::OracleResult batch = fresh.run();
    EXPECT_EQ(batch.chosenPattern, session.chosenPattern());
    const core::OracleResult snap = session.snapshot();
    for (int i = 0; i < static_cast<int>(design.instances.size()); ++i) {
      const int cls = batch.unique.classOf[i];
      if (cls < 0 || batch.classes[cls].pinAps.empty()) continue;
      const int numPins = static_cast<int>(batch.classes[cls].pinAps.size());
      for (int p = 0; p < numPins; ++p) {
        const auto apA = batch.chosenAp(design, i, p);
        const auto apB = snap.chosenAp(design, i, p);
        ASSERT_EQ(apA.has_value(), apB.has_value())
            << "inst " << i << " pin " << p;
        if (apA) {
          EXPECT_EQ(apA->loc, apB->loc) << "inst " << i << " pin " << p;
        }
      }
    }
  };
  expectMatchesBatch();

  // One of each mutation kind, checked against a fresh batch run each time
  // (the batch run itself goes through the sharded extraction too).
  session.moveInstance(0, geom::Point{design.rows[1].origin.x,
                                      design.rows[1].origin.y});
  expectMatchesBatch();

  db::Instance clone = design.instances[2];
  clone.name = "streamed_clone";
  clone.origin = design.rows[0].origin;
  session.addInstance(clone);
  expectMatchesBatch();

  session.removeInstance(1);
  expectMatchesBatch();
}

}  // namespace
}  // namespace pao
