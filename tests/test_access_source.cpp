// AccessSource tests: the three pin-access modes feeding the router.
#include "router/access_source.hpp"

#include <gtest/gtest.h>

#include "benchgen/testcase.hpp"

namespace pao::router {
namespace {

class AccessSourceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    benchgen::TestcaseSpec spec = benchgen::ispd18Suite()[0];
    spec.numCells = 120;
    spec.numNets = 60;
    tc_ = new benchgen::Testcase(benchgen::generate(spec, 1.0));
    oracle_ = new core::OracleResult(
        core::PinAccessOracle(*tc_->design, core::withBcaConfig()).run());
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete tc_;
    tc_ = nullptr;
    oracle_ = nullptr;
  }

  /// First net-attached (inst, sigPinPos) in the design.
  std::pair<int, int> firstAttachedPin() const {
    for (const db::Net& net : tc_->design->nets) {
      for (const db::NetTerm& t : net.terms) {
        if (t.isIo()) continue;
        const auto sig =
            tc_->design->instances[t.instIdx].master->signalPinIndices();
        for (int i = 0; i < static_cast<int>(sig.size()); ++i) {
          if (sig[i] == t.pinIdx) return {t.instIdx, i};
        }
      }
    }
    return {-1, -1};
  }

  static benchgen::Testcase* tc_;
  static core::OracleResult* oracle_;
};

benchgen::Testcase* AccessSourceFixture::tc_ = nullptr;
core::OracleResult* AccessSourceFixture::oracle_ = nullptr;

TEST_F(AccessSourceFixture, PatternModeMatchesOracleChoice) {
  AccessSource src(*tc_->design, *oracle_, AccessMode::kPattern);
  const auto [inst, pin] = firstAttachedPin();
  ASSERT_GE(inst, 0);
  const auto contact = src.contact(inst, pin);
  ASSERT_TRUE(contact.has_value());
  const auto chosen = oracle_->chosenAp(*tc_->design, inst, pin);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(contact->loc, chosen->loc);
  EXPECT_EQ(contact->via, chosen->ap->primaryVia(*tc_->design->tech));
}

TEST_F(AccessSourceFixture, FirstApModeTakesTheFirstPoint) {
  AccessSource src(*tc_->design, *oracle_, AccessMode::kFirstAp);
  const auto [inst, pin] = firstAttachedPin();
  const int cls = oracle_->unique.classOf[inst];
  const auto contact = src.contact(inst, pin);
  ASSERT_TRUE(contact.has_value());
  const core::AccessPoint& first = oracle_->classes[cls].pinAps[pin].front();
  const geom::Point delta =
      tc_->design->instances[inst].origin -
      tc_->design->instances[oracle_->unique.classes[cls].representative]
          .origin;
  EXPECT_EQ(contact->loc, first.loc + delta);
}

TEST_F(AccessSourceFixture, GreedyPicksNearestToCentroid) {
  AccessSource src(*tc_->design, *oracle_, AccessMode::kGreedyNearest);
  const auto [inst, pin] = firstAttachedPin();
  const auto contact = src.contact(inst, pin);
  ASSERT_TRUE(contact.has_value());
  // The greedy choice must be one of the pin's generated points.
  const int cls = oracle_->unique.classOf[inst];
  const geom::Point delta =
      tc_->design->instances[inst].origin -
      tc_->design->instances[oracle_->unique.classes[cls].representative]
          .origin;
  bool found = false;
  for (const core::AccessPoint& ap : oracle_->classes[cls].pinAps[pin]) {
    if (ap.loc + delta == contact->loc) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(AccessSourceFixture, OutOfRangeQueriesReturnNothing) {
  AccessSource src(*tc_->design, *oracle_, AccessMode::kPattern);
  EXPECT_FALSE(src.contact(0, 99).has_value());
}

TEST_F(AccessSourceFixture, AllModesCoverAllAttachedPins) {
  for (const AccessMode mode :
       {AccessMode::kFirstAp, AccessMode::kGreedyNearest,
        AccessMode::kPattern}) {
    AccessSource src(*tc_->design, *oracle_, mode);
    std::size_t covered = 0;
    std::size_t total = 0;
    for (const db::Net& net : tc_->design->nets) {
      for (const db::NetTerm& t : net.terms) {
        if (t.isIo()) continue;
        const auto sig =
            tc_->design->instances[t.instIdx].master->signalPinIndices();
        for (int i = 0; i < static_cast<int>(sig.size()); ++i) {
          if (sig[i] != t.pinIdx) continue;
          ++total;
          if (src.contact(t.instIdx, i)) ++covered;
        }
      }
    }
    // PAAF-generated points exist for every pin here, so every mode covers
    // every pin (the legacy generator's gaps are exercised in test_router).
    EXPECT_EQ(covered, total) << static_cast<int>(mode);
  }
}

}  // namespace
}  // namespace pao::router
