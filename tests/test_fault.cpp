// Deterministic fault injection: spec parsing, trigger modes (always /
// Nth / from-Nth / probabilistic), macro gating, and the oracle-level
// contracts — a recovered or never-fired fault leaves the result identical
// to a fault-free run, a firing fault under keepGoing degrades gracefully,
// and the same fault under strict mode surfaces as util::FaultInjected.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "benchgen/testcase.hpp"
#include "pao/access_cache.hpp"
#include "pao/oracle.hpp"
#include "util/fault.hpp"

namespace pao {
namespace {

using util::FaultRegistry;

// The registry is process-global: every test disarms it on the way out so
// no other suite ever sees a leftover fault.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::instance().reset(); }

  FaultRegistry& reg() { return FaultRegistry::instance(); }
};

// ------------------------------------------------------------ spec parsing

TEST_F(FaultTest, EmptySpecDisarms) {
  ASSERT_TRUE(reg().configure("a.b"));
  EXPECT_TRUE(reg().armed());
  ASSERT_TRUE(reg().configure(""));
  EXPECT_FALSE(reg().armed());
}

TEST_F(FaultTest, ValidSpecsParse) {
  std::string error;
  EXPECT_TRUE(reg().configure("cache.read", &error)) << error;
  EXPECT_TRUE(reg().configure("a:3", &error)) << error;
  EXPECT_TRUE(reg().configure("a:3+", &error)) << error;
  EXPECT_TRUE(reg().configure("a:p0.5", &error)) << error;
  EXPECT_TRUE(reg().configure("a:p0.5:s7", &error)) << error;
  EXPECT_TRUE(reg().configure("a,b:2,c:p1", &error)) << error;
}

TEST_F(FaultTest, MalformedSpecsRejectAndDisarm) {
  std::string error;
  for (const char* bad : {":", "a:", "a:0", "a:x", "a:pz", "a:p2",
                          "a:p-0.5", "a:p0.5:sx", "a:1:2"}) {
    SCOPED_TRACE(bad);
    ASSERT_TRUE(reg().configure("ok.point"));
    error.clear();
    EXPECT_FALSE(reg().configure(bad, &error));
    EXPECT_FALSE(error.empty());
    // A failed configure never leaves the registry half-armed.
    EXPECT_FALSE(reg().armed());
  }
}

// ----------------------------------------------------------- trigger modes

TEST_F(FaultTest, AlwaysFires) {
  ASSERT_TRUE(reg().configure("pt"));
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(reg().shouldFire("pt"));
  EXPECT_EQ(reg().hits("pt"), 5u);
  EXPECT_EQ(reg().fired("pt"), 5u);
  EXPECT_FALSE(reg().shouldFire("other.point"));
}

TEST_F(FaultTest, NthFiresExactlyOnce) {
  ASSERT_TRUE(reg().configure("pt:3"));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(reg().shouldFire("pt"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(reg().fired("pt"), 1u);
}

TEST_F(FaultTest, FromNthFiresFromThereOn) {
  ASSERT_TRUE(reg().configure("pt:3+"));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(reg().shouldFire("pt"));
  EXPECT_EQ(fired,
            (std::vector<bool>{false, false, true, true, true, true}));
}

TEST_F(FaultTest, ProbabilisticIsDeterministicInSeedAndHitIndex) {
  const auto sequence = [&](const char* spec) {
    EXPECT_TRUE(reg().configure(spec));
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(reg().shouldFire("pt"));
    return fired;
  };
  const std::vector<bool> a = sequence("pt:p0.3:s7");
  const std::vector<bool> b = sequence("pt:p0.3:s7");
  EXPECT_EQ(a, b);  // replay is exact
  const std::vector<bool> c = sequence("pt:p0.3:s8");
  EXPECT_NE(a, c);  // the seed matters
  // p0.3 over 200 hits fires a plausible fraction — not never, not always.
  const std::size_t count = std::count(a.begin(), a.end(), true);
  EXPECT_GT(count, 20u);
  EXPECT_LT(count, 140u);
}

TEST_F(FaultTest, ProbabilityBoundsFireAlwaysAndNever) {
  ASSERT_TRUE(reg().configure("pt:p1"));
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(reg().shouldFire("pt"));
  ASSERT_TRUE(reg().configure("pt:p0"));
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(reg().shouldFire("pt"));
}

// ------------------------------------------------------------- the macros

TEST_F(FaultTest, MacrosAreInertWhileDisarmed) {
  EXPECT_FALSE(PAO_FAULT_POINT("pt"));
  EXPECT_NO_THROW(PAO_FAULT_INJECT("pt"));
  // An unarmed hit is not even counted: the armed() fast path short-circuits
  // before shouldFire.
  EXPECT_EQ(reg().hits("pt"), 0u);
}

TEST_F(FaultTest, InjectThrowsTypedExceptionWithPointName) {
  ASSERT_TRUE(reg().configure("oracle.class_access"));
  try {
    PAO_FAULT_INJECT("oracle.class_access");
    FAIL() << "expected FaultInjected";
  } catch (const util::FaultInjected& e) {
    EXPECT_EQ(e.point, "oracle.class_access");
    EXPECT_STREQ(e.what(), "injected fault at 'oracle.class_access'");
  }
}

// --------------------------------------------------- oracle-level contract

class OracleFaultTest : public FaultTest {
 protected:
  void SetUp() override {
    tc_ = std::make_unique<benchgen::Testcase>(
        benchgen::generate(benchgen::ispd18Suite()[0], /*scale=*/0.01));
  }

  core::OracleResult run(const core::OracleConfig& cfg) {
    return core::PinAccessOracle(*tc_->design, cfg).run();
  }

  static void expectSameAccess(const core::OracleResult& a,
                               const core::OracleResult& b) {
    EXPECT_EQ(a.chosenPattern, b.chosenPattern);
    ASSERT_EQ(a.classes.size(), b.classes.size());
    for (std::size_t c = 0; c < b.classes.size(); ++c) {
      SCOPED_TRACE("class " + std::to_string(c));
      EXPECT_EQ(a.classes[c].pinOrder, b.classes[c].pinOrder);
      ASSERT_EQ(a.classes[c].patterns.size(), b.classes[c].patterns.size());
      for (std::size_t p = 0; p < b.classes[c].patterns.size(); ++p) {
        EXPECT_EQ(a.classes[c].patterns[p].apIdx,
                  b.classes[c].patterns[p].apIdx);
        EXPECT_EQ(a.classes[c].patterns[p].cost,
                  b.classes[c].patterns[p].cost);
      }
    }
  }

  std::unique_ptr<benchgen::Testcase> tc_;
};

TEST_F(OracleFaultTest, NeverFiringFaultIsExactlyBaseline) {
  const core::OracleResult baseline = run(core::withBcaConfig());
  ASSERT_TRUE(reg().configure("oracle.class_access:100000"));
  core::OracleConfig cfg = core::withBcaConfig();
  cfg.keepGoing = true;
  const core::OracleResult faulted = run(cfg);
  EXPECT_TRUE(faulted.degraded.empty());
  expectSameAccess(baseline, faulted);
}

TEST_F(OracleFaultTest, RecoveredCacheFaultIsExactlyBaseline) {
  // Prime a cache from a clean run, then fault its reader: the cache is a
  // pure accelerator, so losing it must not change any result.
  const core::OracleResult baseline = run(core::withBcaConfig());
  core::AccessCache primed;
  core::OracleConfig fill = core::withBcaConfig();
  fill.cache = &primed;
  run(fill);
  const std::string text = primed.save(*tc_->tech, *tc_->lib);

  ASSERT_TRUE(reg().configure("cache.read"));
  core::AccessCache faulty;
  std::string error;
  EXPECT_EQ(faulty.load(text, *tc_->tech, *tc_->lib, &error), 0u);
  EXPECT_NE(error.find("cache.read"), std::string::npos);

  // The run proceeds with the (empty) cache and matches the baseline.
  core::OracleConfig cfg = core::withBcaConfig();
  cfg.cache = &faulty;
  cfg.keepGoing = true;
  const core::OracleResult rerun = run(cfg);
  EXPECT_TRUE(rerun.degraded.empty());
  expectSameAccess(baseline, rerun);
}

TEST_F(OracleFaultTest, ClassFaultDegradesUnderKeepGoing) {
  ASSERT_TRUE(reg().configure("oracle.class_access"));
  core::OracleConfig cfg = core::withBcaConfig();
  cfg.keepGoing = true;
  const core::OracleResult res = run(cfg);
  ASSERT_FALSE(res.degraded.empty());
  for (const core::DegradedEvent& ev : res.degraded) {
    EXPECT_EQ(ev.kind, "class_fallback");
    EXPECT_GE(ev.cls, 0);
    EXPECT_NE(ev.detail.find("oracle.class_access"), std::string::npos);
  }
  // Every class with signal pins took the legacy fallback; the flow still
  // delivered a full-size result.
  EXPECT_EQ(res.chosenPattern.size(), tc_->design->instances.size());
  // Canonical ordering: sorted by class index.
  for (std::size_t i = 1; i < res.degraded.size(); ++i) {
    EXPECT_LE(res.degraded[i - 1].cls, res.degraded[i].cls);
  }
}

TEST_F(OracleFaultTest, ClassFaultThrowsUnderStrict) {
  ASSERT_TRUE(reg().configure("oracle.class_access"));
  core::OracleConfig cfg = core::withBcaConfig();  // keepGoing = false
  EXPECT_THROW(run(cfg), util::FaultInjected);
}

TEST_F(OracleFaultTest, SingleClassFaultDegradesOnlyThatClass) {
  const core::OracleResult baseline = run(core::withBcaConfig());
  ASSERT_TRUE(reg().configure("oracle.class_access:1"));
  core::OracleConfig cfg = core::withBcaConfig();
  cfg.keepGoing = true;
  const core::OracleResult res = run(cfg);
  ASSERT_EQ(res.degraded.size(), 1u);
  const int cls = res.degraded[0].cls;
  // Untouched classes are bit-identical to the baseline.
  ASSERT_EQ(res.classes.size(), baseline.classes.size());
  for (std::size_t c = 0; c < res.classes.size(); ++c) {
    if (static_cast<int>(c) == cls) continue;
    SCOPED_TRACE("class " + std::to_string(c));
    EXPECT_EQ(res.classes[c].pinOrder, baseline.classes[c].pinOrder);
    EXPECT_EQ(res.classes[c].patterns.size(),
              baseline.classes[c].patterns.size());
  }
}

TEST_F(OracleFaultTest, Step3DeadlineFaultCommitsBestSoFar) {
  ASSERT_TRUE(reg().configure("step3.deadline"));
  core::OracleConfig cfg = core::withBcaConfig();
  cfg.keepGoing = true;
  const core::OracleResult res = run(cfg);
  ASSERT_FALSE(res.degraded.empty());
  bool sawBudget = false;
  for (const core::DegradedEvent& ev : res.degraded) {
    if (ev.kind == "step3_budget") sawBudget = true;
  }
  EXPECT_TRUE(sawBudget);
  // Budget expiry still commits a pattern choice for every instance whose
  // class has patterns.
  ASSERT_EQ(res.chosenPattern.size(), tc_->design->instances.size());
  for (std::size_t i = 0; i < res.chosenPattern.size(); ++i) {
    const int cls = res.unique.classOf[i];
    if (!res.classes[cls].patterns.empty()) {
      EXPECT_GE(res.chosenPattern[i], 0) << "instance " << i;
    }
  }
}

}  // namespace
}  // namespace pao
