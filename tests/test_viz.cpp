// SVG renderer tests: structure, clipping, layer filtering.
#include "viz/svg.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace pao::viz {
namespace {

TEST(Svg, DocumentStructure) {
  const test::TinyDesign td =
      test::makeTinyDesign({{0, geom::Rect{140, 300, 260, 900}}});
  const std::string svg =
      renderRegion(*td.design, {0, 0, 2400, 2400}, {}, {});
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // The cell outline and its pin shape appear.
  EXPECT_NE(svg.find("u1"), std::string::npos);
  EXPECT_NE(svg.find("fill-opacity=\"0.45\""), std::string::npos);
}

TEST(Svg, ShapesOutsideWindowAreClipped) {
  const test::TinyDesign td =
      test::makeTinyDesign({{0, geom::Rect{140, 300, 260, 900}}});
  std::vector<VizShape> extra;
  extra.push_back({{5000, 5000, 5200, 5200}, 0, VizShape::Kind::kWire});
  const std::string with =
      renderRegion(*td.design, {0, 0, 2400, 2400}, extra, {});
  const std::string without =
      renderRegion(*td.design, {0, 0, 2400, 2400}, {}, {});
  // The off-window shape contributes nothing.
  EXPECT_EQ(with, without);
}

TEST(Svg, ViolationsAreDashedMarkers) {
  const test::TinyDesign td =
      test::makeTinyDesign({{0, geom::Rect{140, 300, 260, 900}}});
  drc::Violation v;
  v.kind = drc::RuleKind::kShort;
  v.layer = 0;
  v.bbox = {500, 500, 700, 700};
  const std::string svg =
      renderRegion(*td.design, {0, 0, 2400, 2400}, {}, {v});
  EXPECT_NE(svg.find("stroke-dasharray"), std::string::npos);
  EXPECT_NE(svg.find("#e00000"), std::string::npos);
}

TEST(Svg, LayerFilterHidesUpperLayers) {
  const test::TinyDesign td =
      test::makeTinyDesign({{0, geom::Rect{140, 300, 260, 900}}});
  std::vector<VizShape> extra;
  const int m2 = td.tech->findLayer("M2")->index;
  extra.push_back({{100, 100, 400, 400}, m2, VizShape::Kind::kWire});
  SvgOptions onlyM1;
  onlyM1.maxLayer = td.tech->findLayer("M1")->index;
  const std::string filtered =
      renderRegion(*td.design, {0, 0, 2400, 2400}, extra, {}, onlyM1);
  const std::string full =
      renderRegion(*td.design, {0, 0, 2400, 2400}, extra, {});
  EXPECT_LT(filtered.size(), full.size());
}

TEST(Svg, AccessViasGetOutline) {
  const test::TinyDesign td =
      test::makeTinyDesign({{0, geom::Rect{140, 300, 260, 900}}});
  std::vector<VizShape> extra;
  extra.push_back({{180, 540, 480, 660}, 0, VizShape::Kind::kAccessVia});
  const std::string svg =
      renderRegion(*td.design, {0, 0, 2400, 2400}, extra, {});
  EXPECT_NE(svg.find("stroke=\"#000000\""), std::string::npos);
}

}  // namespace
}  // namespace pao::viz
