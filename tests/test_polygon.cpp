#include "geom/polygon.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace pao::geom {
namespace {

Area ringPerimeter(const BoundaryRing& ring) {
  Area p = 0;
  for (const BoundaryEdge& e : ring) p += e.length();
  return p;
}

bool ringClosed(const BoundaryRing& ring) {
  for (std::size_t i = 0; i < ring.size(); ++i) {
    if (ring[i].to != ring[(i + 1) % ring.size()].from) return false;
  }
  return true;
}

TEST(UnionSlabs, SingleRect) {
  const std::vector<Rect> slabs = unionSlabs({{0, 0, 10, 10}});
  ASSERT_EQ(slabs.size(), 1u);
  EXPECT_EQ(slabs[0], Rect(0, 0, 10, 10));
}

TEST(UnionSlabs, OverlapCountedOnce) {
  EXPECT_EQ(unionArea({{0, 0, 10, 10}, {5, 0, 15, 10}}), 150);
  EXPECT_EQ(unionArea({{0, 0, 10, 10}, {0, 0, 10, 10}}), 100);
}

TEST(UnionSlabs, DisjointRectsKept) {
  const std::vector<Rect> slabs =
      unionSlabs({{0, 0, 10, 10}, {20, 20, 30, 30}});
  EXPECT_EQ(slabs.size(), 2u);
  EXPECT_EQ(unionArea({{0, 0, 10, 10}, {20, 20, 30, 30}}), 200);
}

TEST(UnionSlabs, VerticalMergeProducesCanonicalSlabs) {
  // Two stacked rects with identical x-span merge into one slab.
  const std::vector<Rect> slabs =
      unionSlabs({{0, 0, 10, 10}, {0, 10, 10, 20}});
  ASSERT_EQ(slabs.size(), 1u);
  EXPECT_EQ(slabs[0], Rect(0, 0, 10, 20));
}

TEST(UnionSlabs, LShape) {
  // L: vertical bar [0,10]x[0,30] + horizontal foot [0,30]x[0,10].
  const std::vector<Rect> slabs =
      unionSlabs({{0, 0, 10, 30}, {0, 0, 30, 10}});
  EXPECT_EQ(unionArea({{0, 0, 10, 30}, {0, 0, 30, 10}}), 500);
  ASSERT_EQ(slabs.size(), 2u);
}

TEST(UnionSlabs, ZeroAreaRectsIgnored) {
  EXPECT_TRUE(unionSlabs({{0, 0, 0, 10}, {5, 5, 5, 5}}).empty());
}

TEST(ConnectedComponents, TouchingCounts) {
  const auto comps = connectedComponents(
      {{0, 0, 10, 10}, {10, 0, 20, 10}, {100, 100, 110, 110}});
  EXPECT_EQ(comps.size(), 2u);
}

TEST(ConnectedComponents, CornerTouchConnects) {
  const auto comps =
      connectedComponents({{0, 0, 10, 10}, {10, 10, 20, 20}});
  EXPECT_EQ(comps.size(), 1u);
}

TEST(UnionBoundary, SquareHasFourEdges) {
  const auto rings = unionBoundary({{0, 0, 100, 100}});
  ASSERT_EQ(rings.size(), 1u);
  EXPECT_EQ(rings[0].size(), 4u);
  EXPECT_TRUE(ringClosed(rings[0]));
  EXPECT_EQ(ringPerimeter(rings[0]), 400);
}

TEST(UnionBoundary, MergedRectsHaveMergedBoundary) {
  // Two abutting squares form a 200x100 rect: still 4 edges.
  const auto rings = unionBoundary({{0, 0, 100, 100}, {100, 0, 200, 100}});
  ASSERT_EQ(rings.size(), 1u);
  EXPECT_EQ(rings[0].size(), 4u);
  EXPECT_EQ(ringPerimeter(rings[0]), 600);
}

TEST(UnionBoundary, LShapeHasSixEdges) {
  const auto rings = unionBoundary({{0, 0, 10, 30}, {0, 0, 30, 10}});
  ASSERT_EQ(rings.size(), 1u);
  EXPECT_EQ(rings[0].size(), 6u);
  EXPECT_TRUE(ringClosed(rings[0]));
  EXPECT_EQ(ringPerimeter(rings[0]), 120);
}

TEST(UnionBoundary, PlusShapeHasTwelveEdges) {
  const auto rings = unionBoundary(
      {{10, 0, 20, 30}, {0, 10, 30, 20}});
  ASSERT_EQ(rings.size(), 1u);
  EXPECT_EQ(rings[0].size(), 12u);
  EXPECT_TRUE(ringClosed(rings[0]));
}

TEST(UnionBoundary, HoleProducesSecondRing) {
  // A square ring: outer 0..40, inner hole 10..30.
  const std::vector<Rect> frame = {
      {0, 0, 40, 10}, {0, 30, 40, 40}, {0, 10, 10, 30}, {30, 10, 40, 30}};
  const auto rings = unionBoundary(frame);
  ASSERT_EQ(rings.size(), 2u);
  // One ring has perimeter 160 (outer), the other 80 (hole).
  std::vector<Area> per{ringPerimeter(rings[0]), ringPerimeter(rings[1])};
  std::sort(per.begin(), per.end());
  EXPECT_EQ(per[0], 80);
  EXPECT_EQ(per[1], 160);
}

TEST(UnionBoundary, TwoComponentsTwoRings) {
  const auto rings =
      unionBoundary({{0, 0, 10, 10}, {100, 100, 120, 120}});
  EXPECT_EQ(rings.size(), 2u);
}

TEST(UnionBoundary, InteriorOnLeftOrientation) {
  // For a single square the ring must be counter-clockwise: a bottom edge
  // (y = 0) runs +x, the right edge runs +y, etc.
  const auto rings = unionBoundary({{0, 0, 100, 100}});
  ASSERT_EQ(rings.size(), 1u);
  for (const BoundaryEdge& e : rings[0]) {
    if (e.horizontal() && e.from.y == 0) {
      EXPECT_GT(e.to.x, e.from.x);
    }
    if (e.horizontal() && e.from.y == 100) {
      EXPECT_LT(e.to.x, e.from.x);
    }
    if (!e.horizontal() && e.from.x == 0) {
      EXPECT_LT(e.to.y, e.from.y);
    }
    if (!e.horizontal() && e.from.x == 100) {
      EXPECT_GT(e.to.y, e.from.y);
    }
  }
}

TEST(MaxRects, SingleRectIsItself) {
  const auto rects = maxRects({{0, 0, 10, 10}});
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], Rect(0, 0, 10, 10));
}

TEST(MaxRects, LShapeHasTwoMaxRects) {
  const auto rects = maxRects({{0, 0, 10, 30}, {0, 0, 30, 10}});
  ASSERT_EQ(rects.size(), 2u);
  EXPECT_TRUE(std::find(rects.begin(), rects.end(), Rect(0, 0, 10, 30)) !=
              rects.end());
  EXPECT_TRUE(std::find(rects.begin(), rects.end(), Rect(0, 0, 30, 10)) !=
              rects.end());
}

TEST(MaxRects, PlusShapeHasThreeMaxRects) {
  const auto rects = maxRects({{10, 0, 20, 30}, {0, 10, 30, 20}});
  ASSERT_EQ(rects.size(), 2u);  // vertical bar + horizontal bar are maximal
  EXPECT_TRUE(std::find(rects.begin(), rects.end(), Rect(10, 0, 20, 30)) !=
              rects.end());
  EXPECT_TRUE(std::find(rects.begin(), rects.end(), Rect(0, 10, 30, 20)) !=
              rects.end());
}

TEST(MaxRects, TShape) {
  // T: top bar [0,30]x[20,30], stem [10,20]x[0,30].
  const auto rects = maxRects({{0, 20, 30, 30}, {10, 0, 20, 30}});
  ASSERT_EQ(rects.size(), 2u);
  EXPECT_TRUE(std::find(rects.begin(), rects.end(), Rect(0, 20, 30, 30)) !=
              rects.end());
  EXPECT_TRUE(std::find(rects.begin(), rects.end(), Rect(10, 0, 20, 30)) !=
              rects.end());
}

TEST(MaxRects, OverlappingRectsExtend) {
  // Two overlapping squares: the maximal rects are the two squares, not the
  // overlap region.
  const auto rects = maxRects({{0, 0, 20, 20}, {10, 0, 30, 20}});
  ASSERT_EQ(rects.size(), 1u);  // same y-span -> they fuse into one rect
  EXPECT_EQ(rects[0], Rect(0, 0, 30, 20));
}

}  // namespace
}  // namespace pao::geom
