// Property-based and parameterized suites: invariants that must hold over
// randomized geometry, every orientation, every synthetic node, and every
// testcase preset.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "benchgen/huge.hpp"
#include "benchgen/testcase.hpp"
#include "geom/polygon.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/def_writer.hpp"
#include "lefdef/lef_parser.hpp"
#include "lefdef/lef_writer.hpp"
#include "lefdef/stream.hpp"
#include "pao/evaluate.hpp"

namespace pao {
namespace {

// ---------------------------------------------------------------- geometry

class PolygonProperty : public ::testing::TestWithParam<int> {};

std::vector<geom::Rect> randomRects(unsigned seed, int n) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<geom::Coord> pos(0, 2000);
  std::uniform_int_distribution<geom::Coord> size(10, 600);
  std::vector<geom::Rect> rects;
  for (int i = 0; i < n; ++i) {
    const geom::Coord x = pos(rng);
    const geom::Coord y = pos(rng);
    rects.emplace_back(x, y, x + size(rng), y + size(rng));
  }
  return rects;
}

TEST_P(PolygonProperty, UnionAreaBounds) {
  const auto rects = randomRects(GetParam(), 8);
  geom::Area sum = 0;
  geom::Area maxArea = 0;
  for (const geom::Rect& r : rects) {
    sum += r.area();
    maxArea = std::max(maxArea, r.area());
  }
  const geom::Area u = geom::unionArea(rects);
  EXPECT_LE(u, sum);
  EXPECT_GE(u, maxArea);
}

TEST_P(PolygonProperty, SlabsAreDisjointAndCover) {
  const auto rects = randomRects(GetParam(), 8);
  const auto slabs = geom::unionSlabs(rects);
  geom::Area slabArea = 0;
  for (std::size_t i = 0; i < slabs.size(); ++i) {
    slabArea += slabs[i].area();
    for (std::size_t j = i + 1; j < slabs.size(); ++j) {
      EXPECT_FALSE(slabs[i].overlaps(slabs[j]));
    }
  }
  EXPECT_EQ(slabArea, geom::unionArea(rects));
}

TEST_P(PolygonProperty, BoundaryRingsCloseAndHaveEvenEdges) {
  const auto rects = randomRects(GetParam(), 8);
  for (const auto& ring : geom::unionBoundary(rects)) {
    ASSERT_GE(ring.size(), 4u);
    EXPECT_EQ(ring.size() % 2, 0u);  // rectilinear rings alternate H/V
    for (std::size_t i = 0; i < ring.size(); ++i) {
      EXPECT_EQ(ring[i].to, ring[(i + 1) % ring.size()].from);
      EXPECT_NE(ring[i].length(), 0);
      // Consecutive edges alternate orientation.
      EXPECT_NE(ring[i].horizontal(),
                ring[(i + 1) % ring.size()].horizontal());
    }
  }
}

TEST_P(PolygonProperty, MaxRectsCoverTheUnionExactly) {
  const auto rects = randomRects(GetParam(), 6);
  const auto mr = geom::maxRects(rects);
  // Same union area, and every max rect is inside the union (its area
  // within the union equals its own area).
  EXPECT_EQ(geom::unionArea(mr), geom::unionArea(rects));
  for (const geom::Rect& r : mr) {
    std::vector<geom::Rect> clipped;
    for (const geom::Rect& s : geom::unionSlabs(rects)) {
      const geom::Rect c = s.intersect(r);
      if (!c.empty()) clipped.push_back(c);
    }
    EXPECT_EQ(geom::unionArea(clipped), r.area());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolygonProperty,
                         ::testing::Range(1, 21));

// ------------------------------------------------------------ orientations

class OrientProperty : public ::testing::TestWithParam<geom::Orient> {};

TEST_P(OrientProperty, TransformIsAnIsometry) {
  const geom::Transform t({777, -333}, GetParam(), {500, 900});
  std::mt19937 rng(42);
  std::uniform_int_distribution<geom::Coord> pos(0, 900);
  for (int i = 0; i < 50; ++i) {
    const geom::Point a{pos(rng) % 500, pos(rng)};
    const geom::Point b{pos(rng) % 500, pos(rng)};
    // Distances are preserved...
    EXPECT_EQ(geom::manhattanDist(t.apply(a), t.apply(b)),
              geom::manhattanDist(a, b));
    // ...and the inverse really inverts.
    EXPECT_EQ(t.applyInverse(t.apply(a)), a);
  }
}

TEST_P(OrientProperty, RectAreaPreserved) {
  const geom::Transform t({0, 0}, GetParam(), {500, 900});
  const geom::Rect r{10, 20, 480, 850};
  EXPECT_EQ(t.apply(r).area(), r.area());
}

INSTANTIATE_TEST_SUITE_P(
    AllOrients, OrientProperty,
    ::testing::Values(geom::Orient::R0, geom::Orient::R90,
                      geom::Orient::R180, geom::Orient::R270,
                      geom::Orient::MX, geom::Orient::MY,
                      geom::Orient::MX90, geom::Orient::MY90),
    [](const auto& info) {
      return std::string(geom::toString(info.param));
    });

// ------------------------------------------------------------ tech nodes

class NodeProperty
    : public ::testing::TestWithParam<benchgen::Node> {};

TEST_P(NodeProperty, GeneratedLibraryIsAnalyzable) {
  const benchgen::NodeParams node = benchgen::nodeParams(GetParam());
  // Rule sanity the generators rely on.
  EXPECT_LT(node.minStep, node.m1Width + 1);
  EXPECT_GT(node.m1Pitch, node.m1Width + node.spacing);

  benchgen::TestcaseSpec spec;
  spec.name = "prop";
  spec.node = GetParam();
  spec.numCells = 60;
  spec.numNets = 30;
  spec.siteWidth = node.m1Pitch / 2;
  spec.seed = 99;
  const benchgen::Testcase tc = benchgen::generate(spec, 1.0);
  core::PinAccessOracle oracle(*tc.design, core::withBcaConfig());
  const core::OracleResult res = oracle.run();
  const core::DirtyApStats dirty = core::countDirtyAps(*tc.design, res);
  EXPECT_GT(dirty.totalAps, 0u);
  EXPECT_EQ(dirty.dirtyAps, 0u);
  // Every signal pin of every analyzable class has at least one AP.
  for (std::size_t c = 0; c < res.unique.classes.size(); ++c) {
    const core::ClassAccess& ca = res.classes[c];
    for (std::size_t p = 0; p < ca.pinAps.size(); ++p) {
      EXPECT_FALSE(ca.pinAps[p].empty())
          << res.unique.classes[c].master->name << " pin " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllNodes, NodeProperty,
                         ::testing::Values(benchgen::Node::k45,
                                           benchgen::Node::k32,
                                           benchgen::Node::k14),
                         [](const auto& info) {
                           switch (info.param) {
                             case benchgen::Node::k45: return "n45";
                             case benchgen::Node::k32: return "n32";
                             case benchgen::Node::k14: return "n14";
                           }
                           return "unknown";
                         });

// --------------------------------------------------------- testcase sweep

class SuiteProperty : public ::testing::TestWithParam<int> {};

TEST_P(SuiteProperty, PaafInvariantsHoldOnEveryPreset) {
  const benchgen::TestcaseSpec spec =
      benchgen::ispd18Suite()[static_cast<std::size_t>(GetParam())];
  const benchgen::Testcase tc = benchgen::generate(spec, 0.004);

  core::PinAccessOracle oracle(*tc.design, core::withBcaConfig());
  const core::OracleResult res = oracle.run();

  // Invariant 1: PAAF never emits a dirty access point.
  const core::DirtyApStats dirty = core::countDirtyAps(*tc.design, res);
  EXPECT_EQ(dirty.dirtyAps, 0u) << spec.name;

  // Invariant 2: every access point lies on its pin's shapes.
  for (std::size_t c = 0; c < res.unique.classes.size(); ++c) {
    const core::ClassAccess& ca = res.classes[c];
    if (ca.pinAps.empty()) continue;
    const core::InstContext ctx(*tc.design, res.unique.classes[c]);
    for (std::size_t p = 0; p < ca.pinAps.size(); ++p) {
      for (const core::AccessPoint& ap : ca.pinAps[p]) {
        bool onPin = false;
        for (const geom::Rect& r :
             ctx.pinShapes(ctx.signalPins()[p], ap.layer)) {
          onPin = onPin || r.contains(ap.loc);
        }
        EXPECT_TRUE(onPin) << spec.name;
      }
    }
  }

  // Invariant 3: chosen patterns exist for every core instance with pins.
  for (int i = 0; i < static_cast<int>(tc.design->instances.size()); ++i) {
    const db::Instance& inst = tc.design->instances[i];
    if (inst.master->signalPinIndices().empty()) continue;
    EXPECT_GE(res.chosenPattern[i], 0) << spec.name << " " << inst.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, SuiteProperty,
                         ::testing::Range(0, 10));

// ------------------------------------------------- serialization fixpoint

// write -> parse -> write must be a byte-level fixpoint: the first written
// text, parsed back into a fresh database and written again, reproduces
// itself exactly. This pins the writer/parser pair as mutual inverses on
// the statement subset we claim to support (anything the writer can emit,
// the parser reads losslessly, at full numeric precision).
class RoundTripFixpoint : public ::testing::TestWithParam<int> {
 protected:
  benchgen::Testcase tc_ = benchgen::generate(
      benchgen::ispd18Suite()[static_cast<std::size_t>(GetParam())], 0.004);
};

TEST_P(RoundTripFixpoint, LefWriteParseWriteIsByteStable) {
  const std::string first = lefdef::writeLef(*tc_.tech, *tc_.lib);
  db::Tech tech2;
  db::Library lib2;
  const lefdef::ParseResult res =
      lefdef::parseLef(first, tech2, lib2, lefdef::ParseOptions{});
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(lefdef::writeLef(tech2, lib2), first);
}

TEST_P(RoundTripFixpoint, DefWriteParseWriteIsByteStable) {
  const std::string lefText = lefdef::writeLef(*tc_.tech, *tc_.lib);
  const std::string first = lefdef::writeDef(*tc_.design);

  // Parse both back through text so the DEF resolves masters against the
  // re-parsed library, exactly as a cold run of pao_cli would.
  db::Tech tech2;
  db::Library lib2;
  lefdef::parseLef(lefText, tech2, lib2);
  db::Design design2;
  design2.tech = &tech2;
  design2.lib = &lib2;
  const lefdef::ParseResult res =
      lefdef::parseDef(first, design2, lefdef::ParseOptions{});
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(lefdef::writeDef(design2), first);
}

INSTANTIATE_TEST_SUITE_P(Presets, RoundTripFixpoint,
                         ::testing::Values(0, 3, 7));

TEST(HugeFixpoint, StreamedGenerateParseWriteIsByteStable) {
  // The huge generator never materializes a design, so the fixpoint runs
  // the other way around: generated DEF text -> streamed parse -> writeDef
  // must reproduce the generated bytes exactly (they share the defout
  // emitters). ~50k instances keeps the round trip testable in-process.
  benchgen::HugeSpec spec = benchgen::hugeSpec();
  const double scale =
      50000.0 / static_cast<double>(spec.numCells);  // ~50k cells
  const benchgen::HugeTechLib tl = benchgen::makeHugeTechLib(spec);

  std::ostringstream def;
  const benchgen::HugeCounts counts =
      benchgen::writeHugeDef(spec, scale, *tl.tech, *tl.lib, def);
  EXPECT_GE(counts.cells, 49000u);
  const std::string first = def.str();

  // Determinism: a second emission is byte-identical.
  std::ostringstream again;
  benchgen::writeHugeDef(spec, scale, *tl.tech, *tl.lib, again);
  ASSERT_EQ(again.str(), first);

  db::Design design;
  design.tech = tl.tech.get();
  design.lib = tl.lib.get();
  lefdef::StreamOptions opts;
  opts.numThreads = 0;
  opts.chunkBytes = 1 << 18;
  lefdef::IngestStats stats;
  const lefdef::ParseResult res =
      lefdef::parseDefStream(first, design, opts, &stats);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(design.instances.size(), counts.cells);
  EXPECT_EQ(design.nets.size(), counts.nets);
  EXPECT_EQ(design.ioPins.size(), counts.ioPins);
  EXPECT_GT(stats.chunks, 1u);

  EXPECT_EQ(lefdef::writeDef(design), first);
}

}  // namespace
}  // namespace pao
