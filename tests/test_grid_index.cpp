#include "geom/grid_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace pao::geom {
namespace {

TEST(GridIndex, EmptyQuery) {
  GridIndex<int> idx;
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_TRUE(idx.queryValues({0, 0, 100, 100}).empty());
}

TEST(GridIndex, InsertAndHit) {
  GridIndex<int> idx;
  idx.insert({0, 0, 10, 10}, 1);
  idx.insert({100, 100, 110, 110}, 2);
  EXPECT_EQ(idx.size(), 2u);
  const auto hits = idx.queryValues({5, 5, 6, 6});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1);
}

TEST(GridIndex, TouchingCountsAsHit) {
  GridIndex<int> idx;
  idx.insert({0, 0, 10, 10}, 7);
  EXPECT_EQ(idx.queryValues({10, 10, 20, 20}).size(), 1u);
  EXPECT_TRUE(idx.queryValues({11, 11, 20, 20}).empty());
}

TEST(GridIndex, LargeItemSpanningManyBinsReportedOnce) {
  GridIndex<int> idx(16);  // tiny bins force multi-bin items
  idx.insert({0, 0, 1000, 1000}, 42);
  const auto hits = idx.queryValues({0, 0, 1000, 1000});
  EXPECT_EQ(hits.size(), 1u);
}

TEST(GridIndex, NegativeCoordinates) {
  GridIndex<int> idx(64);
  idx.insert({-100, -100, -50, -50}, 1);
  idx.insert({-10, -10, 10, 10}, 2);
  EXPECT_EQ(idx.queryValues({-80, -80, -60, -60}).size(), 1u);
  EXPECT_EQ(idx.queryValues({-200, -200, 200, 200}).size(), 2u);
}

TEST(GridIndex, ClearResets) {
  GridIndex<int> idx;
  idx.insert({0, 0, 1, 1}, 1);
  idx.clear();
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_TRUE(idx.queryValues({0, 0, 10, 10}).empty());
}

/// Property: results always match a brute-force scan.
TEST(GridIndex, MatchesBruteForce) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<Coord> pos(-5000, 5000);
  std::uniform_int_distribution<Coord> size(1, 800);

  GridIndex<std::size_t> idx(512);
  std::vector<Rect> rects;
  for (std::size_t i = 0; i < 500; ++i) {
    const Coord x = pos(rng);
    const Coord y = pos(rng);
    const Rect r{x, y, x + size(rng), y + size(rng)};
    rects.push_back(r);
    idx.insert(r, i);
  }
  for (int q = 0; q < 100; ++q) {
    const Coord x = pos(rng);
    const Coord y = pos(rng);
    const Rect query{x, y, x + size(rng), y + size(rng)};
    auto got = idx.queryValues(query);
    std::sort(got.begin(), got.end());
    std::vector<std::size_t> want;
    for (std::size_t i = 0; i < rects.size(); ++i) {
      if (rects[i].intersects(query)) want.push_back(i);
    }
    EXPECT_EQ(got, want);
  }
}

}  // namespace
}  // namespace pao::geom
