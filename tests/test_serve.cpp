// Tests for the pao_serve service layer (src/serve/): protocol
// parse/dispatch with stable SRVnnn codes, admission control, service-level
// equivalence between a mutated tenant's report and a fresh batch analysis
// of the saved design, and a multi-threaded soak across two tenants whose
// final state must equal a serial replay of each tenant's request history.
//
// The soak runs real loopback TCP sockets through the epoll Server; client
// threads come from util::parallelFor (the server occupies index 0, so the
// calling thread runs the event loop while the workers play clients).
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "benchgen/testcase.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/def_writer.hpp"
#include "lefdef/lef_parser.hpp"
#include "lefdef/lef_writer.hpp"
#include "obs/enabled.hpp"
#include "obs/report.hpp"
#if PAO_OBS_ENABLED
#include "obs/profile.hpp"
#endif
#include "pao/report_json.hpp"
#include "pao/session.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/executor.hpp"

namespace {

using pao::obs::Json;
using pao::serve::parseRequest;
using pao::serve::Request;
using pao::serve::ServerConfig;
using pao::serve::Service;
using pao::serve::ServiceConfig;

// --- fixtures -------------------------------------------------------------

struct TestFiles {
  std::string lef;
  std::string def;
};

/// Writes a small generated testcase to disk once per process; `load`
/// needs real files. ~50 instances keeps every test sub-second. The paths
/// carry the pid: ctest runs each test as its own process, and parallel
/// ctest invocations would otherwise truncate-and-rewrite the very files a
/// sibling process is mid-parse on.
const TestFiles& testFiles() {
  static const TestFiles files = [] {
    const auto specs = pao::benchgen::ispd18Suite();
    pao::benchgen::Testcase tc = pao::benchgen::generate(specs[0], 0.005);
    const std::string tag = std::to_string(::getpid());
    TestFiles f;
    f.lef = testing::TempDir() + "pao_serve_test_" + tag + ".lef";
    f.def = testing::TempDir() + "pao_serve_test_" + tag + ".def";
    std::ofstream(f.lef) << pao::lefdef::writeLef(*tc.tech, *tc.lib);
    std::ofstream(f.def) << pao::lefdef::writeDef(*tc.design);
    return f;
  }();
  return files;
}

std::string loadLine(const std::string& tenant) {
  return "{\"cmd\":\"load\",\"tenant\":\"" + tenant + "\",\"lef\":\"" +
         testFiles().lef + "\",\"def\":\"" + testFiles().def + "\"}";
}

Json parseResponse(const std::string& line) {
  std::string error;
  const auto doc = Json::parse(line, &error);
  EXPECT_TRUE(doc.has_value()) << error << " in: " << line;
  return doc.value_or(Json::object());
}

/// Asserts ok:true and returns the result object.
Json expectOk(const std::string& line) {
  const Json doc = parseResponse(line);
  const Json* ok = doc.find("ok");
  EXPECT_TRUE(ok != nullptr && ok->isBool() && ok->asBool()) << line;
  const Json* result = doc.find("result");
  EXPECT_NE(result, nullptr) << line;
  return result != nullptr ? *result : Json::object();
}

void expectError(const std::string& line, std::string_view code) {
  const Json doc = parseResponse(line);
  const Json* ok = doc.find("ok");
  ASSERT_TRUE(ok != nullptr && ok->isBool()) << line;
  EXPECT_FALSE(ok->asBool()) << line;
  const Json* got = doc.find("code");
  ASSERT_TRUE(got != nullptr && got->isString()) << line;
  EXPECT_EQ(got->asString(), code) << line;
}

// --- protocol -------------------------------------------------------------

TEST(ServeProtocol, ParsesWellFormedRequests) {
  const Request r =
      parseRequest("{\"cmd\":\"move\",\"tenant\":\"a\",\"inst\":3}");
  EXPECT_FALSE(r.malformed);
  EXPECT_EQ(r.cmd, "move");
  EXPECT_EQ(r.tenant, "a");
  ASSERT_NE(r.doc.find("inst"), nullptr);
  EXPECT_EQ(r.doc.find("inst")->asInt(), 3);
}

TEST(ServeProtocol, FlagsMalformedJson) {
  EXPECT_TRUE(parseRequest("{not json").malformed);
  EXPECT_TRUE(parseRequest("42").malformed);  // not an object
  EXPECT_FALSE(parseRequest("{}").malformed);
}

TEST(ServeProtocol, ClassifiesSerialCommands) {
  for (const char* cmd :
       {"ping", "load", "unload", "metrics", "profile", "shutdown"}) {
    EXPECT_TRUE(pao::serve::isSerialCommand(cmd)) << cmd;
  }
  for (const char* cmd : {"move", "orient", "add", "remove", "query",
                          "report", "save", "history"}) {
    EXPECT_FALSE(pao::serve::isSerialCommand(cmd)) << cmd;
    EXPECT_TRUE(pao::serve::isKnownCommand(cmd)) << cmd;
  }
  EXPECT_FALSE(pao::serve::isKnownCommand("frobnicate"));
}

TEST(ServeProtocol, ResponseLinesAreCompactSingleLine) {
  Json result = Json::object();
  result.set("x", Json(1));
  const std::string ok = pao::serve::okLine(std::move(result));
  EXPECT_EQ(ok, "{\"ok\":true,\"result\":{\"x\":1}}");
  EXPECT_EQ(ok.find('\n'), std::string::npos);
  const std::string err = pao::serve::errorLine(pao::serve::kErrUnknownCommand,
                                                "no such command");
  EXPECT_EQ(err,
            "{\"ok\":false,\"code\":\"SRV003\",\"error\":\"no such "
            "command\"}");
  const std::string errWithId = pao::serve::errorLine(
      pao::serve::kErrUnknownCommand, "no such command", 42);
  EXPECT_EQ(errWithId,
            "{\"ok\":false,\"code\":\"SRV003\",\"error\":\"no such "
            "command\",\"req\":42}");
}

// --- dispatch diagnostics -------------------------------------------------

TEST(ServeDispatch, StableErrorCodes) {
  Service service(ServiceConfig{});
  expectError(service.handleLine("{oops"), "SRV001");
  expectError(service.handleLine("{\"nocmd\":1}"), "SRV002");
  expectError(service.handleLine("{\"cmd\":\"frobnicate\"}"), "SRV003");
  expectError(service.handleLine("{\"cmd\":\"move\",\"tenant\":\"ghost\","
                                 "\"inst\":0,\"dx\":10}"),
              "SRV004");
  expectError(service.handleLine("{\"cmd\":\"report\"}"), "SRV002");
  expectOk(service.handleLine(loadLine("t1")));
  expectError(service.handleLine(loadLine("t1")), "SRV005");
  expectError(service.handleLine("{\"cmd\":\"load\",\"tenant\":\"bad\","
                                 "\"lef\":\"/nonexistent.lef\","
                                 "\"def\":\"/nonexistent.def\"}"),
              "SRV007");
  // A failed load must not leave a half-registered tenant behind.
  EXPECT_EQ(service.tenantCount(), 1u);
  expectError(service.handleLine("{\"cmd\":\"move\",\"tenant\":\"t1\","
                                 "\"inst\":99999,\"dx\":10}"),
              "SRV008");
  expectError(service.handleLine("{\"cmd\":\"move\",\"tenant\":\"t1\","
                                 "\"inst\":\"no_such_inst\",\"dx\":10}"),
              "SRV008");
  expectError(service.handleLine("{\"cmd\":\"move\",\"tenant\":\"t1\","
                                 "\"inst\":0,\"dx\":\"ten\"}"),
              "SRV002");
}

TEST(ServeDispatch, ErrorResponsesCarryMonotonicRequestIds) {
  Service service(ServiceConfig{});
  const Json a = parseResponse(service.handleLine("{oops"));
  const Json b = parseResponse(service.handleLine("{\"cmd\":\"nope\"}"));
  const Json* reqA = a.find("req");
  const Json* reqB = b.find("req");
  ASSERT_TRUE(reqA != nullptr && reqA->isInt());
  ASSERT_TRUE(reqB != nullptr && reqB->isInt());
  EXPECT_GE(reqA->asInt(), 1);
  EXPECT_GT(reqB->asInt(), reqA->asInt());
  // The SRV006 admission-reject path gets an id too.
  ServiceConfig tight;
  tight.tenantBudget = 1;
  Service tightService(tight);
  const Request hold = parseRequest("{\"cmd\":\"query\",\"tenant\":\"t\"}");
  ASSERT_TRUE(tightService.tryAdmit(hold));
  const Json busy = parseResponse(
      tightService.handleLine("{\"cmd\":\"query\",\"tenant\":\"t\"}"));
  const Json* reqBusy = busy.find("req");
  ASSERT_TRUE(reqBusy != nullptr && reqBusy->isInt());
  tightService.release(hold);
  // Successful responses carry no "req" — the ok-line shape is unchanged.
  const Json pong = parseResponse(tightService.handleLine("{\"cmd\":\"ping\"}"));
  EXPECT_EQ(pong.find("req"), nullptr);
}

#if PAO_OBS_ENABLED
TEST(ServeDispatch, MetricsResponseCarriesLatencyDigest) {
  Service service(ServiceConfig{});
  expectOk(service.handleLine("{\"cmd\":\"ping\"}"));
  const Json metrics = expectOk(service.handleLine("{\"cmd\":\"metrics\"}"));
  const Json* latency = metrics.find("latency");
  ASSERT_NE(latency, nullptr);
  const Json* count = latency->find("count");
  ASSERT_TRUE(count != nullptr && count->isInt());
  EXPECT_GE(count->asInt(), 1);  // registry is process-global
  double prev = 0;
  for (const char* key : {"p50Micros", "p95Micros", "p99Micros"}) {
    const Json* q = latency->find(key);
    ASSERT_TRUE(q != nullptr && q->isNumber()) << key;
    EXPECT_GE(q->asDouble(), prev) << key;  // quantiles are monotonic
    prev = q->asDouble();
  }
}

TEST(ServeDispatch, ProfileCommandReturnsLastBatchGraph) {
  Service service(ServiceConfig{});
  // No concurrent batch has run yet.
  const Json before = expectOk(service.handleLine("{\"cmd\":\"profile\"}"));
  ASSERT_NE(before.find("available"), nullptr);
  EXPECT_FALSE(before.find("available")->asBool());

  expectOk(service.handleLine(loadLine("pa")));
  expectOk(service.handleLine(loadLine("pb")));
  std::vector<Request> batch;
  batch.push_back(parseRequest("{\"cmd\":\"query\",\"tenant\":\"pa\"}"));
  batch.push_back(parseRequest("{\"cmd\":\"query\",\"tenant\":\"pb\"}"));
  for (const Request& r : batch) ASSERT_TRUE(service.tryAdmit(r));
  const std::vector<std::string> responses = service.dispatchBatch(batch);
  for (const Request& r : batch) service.release(r);
  ASSERT_EQ(responses.size(), 2u);

  const Json after = expectOk(service.handleLine("{\"cmd\":\"profile\"}"));
  ASSERT_NE(after.find("available"), nullptr);
  ASSERT_TRUE(after.find("available")->asBool());
  const Json* profile = after.find("profile");
  ASSERT_NE(profile, nullptr);
  std::string error;
  EXPECT_TRUE(pao::obs::validateProfileSection(*profile, &error)) << error;
  EXPECT_EQ(profile->find("jobs")->asInt(), 2);
}
#endif

TEST(ServeDispatch, ErrorsDoNotPoisonTheSession) {
  Service service(ServiceConfig{});
  expectOk(service.handleLine(loadLine("t1")));
  expectError(service.handleLine("{\"cmd\":\"move\",\"tenant\":\"t1\","
                                 "\"inst\":99999,\"dx\":10}"),
              "SRV008");
  const Json moved = expectOk(service.handleLine(
      "{\"cmd\":\"move\",\"tenant\":\"t1\",\"inst\":0,\"dx\":380}"));
  ASSERT_NE(moved.find("seq"), nullptr);
  EXPECT_EQ(moved.find("seq")->asInt(), 1);  // failed move did not bump seq
  expectOk(service.handleLine("{\"cmd\":\"query\",\"tenant\":\"t1\"}"));
}

TEST(ServeDispatch, MaxTenantsIsEnforced) {
  ServiceConfig cfg;
  cfg.maxTenants = 1;
  Service service(cfg);
  expectOk(service.handleLine(loadLine("t1")));
  expectError(service.handleLine(loadLine("t2")), "SRV008");
  expectOk(service.handleLine("{\"cmd\":\"unload\",\"tenant\":\"t1\"}"));
  expectOk(service.handleLine(loadLine("t2")));
}

// --- admission control ----------------------------------------------------

TEST(ServeAdmission, BudgetIsPerTenantAndReleased) {
  ServiceConfig cfg;
  cfg.tenantBudget = 2;
  Service service(cfg);
  const Request a = parseRequest("{\"cmd\":\"query\",\"tenant\":\"a\"}");
  const Request b = parseRequest("{\"cmd\":\"query\",\"tenant\":\"b\"}");
  const Request global = parseRequest("{\"cmd\":\"ping\"}");

  EXPECT_TRUE(service.tryAdmit(a));
  EXPECT_TRUE(service.tryAdmit(a));
  EXPECT_FALSE(service.tryAdmit(a));  // budget of 2 exhausted
  EXPECT_TRUE(service.tryAdmit(b));   // other tenants unaffected
  EXPECT_TRUE(service.tryAdmit(global));  // global commands uncounted
  EXPECT_EQ(service.inflight("a"), 2u);
  EXPECT_EQ(service.inflightTotal(), 3u);

  service.release(a);
  EXPECT_TRUE(service.tryAdmit(a));  // slot freed
  service.release(a);
  service.release(a);
  service.release(b);
  EXPECT_EQ(service.inflightTotal(), 0u);
}

TEST(ServeAdmission, HandleLineRejectsOverBudgetWithBusy) {
  ServiceConfig cfg;
  cfg.tenantBudget = 1;
  Service service(cfg);
  expectOk(service.handleLine(loadLine("t1")));
  const Request hold = parseRequest("{\"cmd\":\"query\",\"tenant\":\"t1\"}");
  ASSERT_TRUE(service.tryAdmit(hold));
  expectError(service.handleLine("{\"cmd\":\"query\",\"tenant\":\"t1\"}"),
              "SRV006");
  service.release(hold);
  expectOk(service.handleLine("{\"cmd\":\"query\",\"tenant\":\"t1\"}"));
}

// --- service-level equivalence --------------------------------------------

/// The tentpole contract: after an arbitrary mutation sequence, the
/// service's report must be byte-identical (normalized, modulo "tool") to a
/// fresh batch analysis of the design the service saves.
TEST(ServeEquivalence, ReportMatchesFreshBatchRunOfSavedDesign) {
  Service service(ServiceConfig{});
  expectOk(service.handleLine(loadLine("t1")));
  expectOk(service.handleLine(
      "{\"cmd\":\"move\",\"tenant\":\"t1\",\"inst\":0,\"dx\":380}"));
  expectOk(service.handleLine(
      "{\"cmd\":\"orient\",\"tenant\":\"t1\",\"inst\":1,"
      "\"orient\":\"MY\"}"));
  expectOk(service.handleLine(
      "{\"cmd\":\"add\",\"tenant\":\"t1\",\"name\":\"fresh_inst\","
      "\"master\":\"INVX1\",\"x\":3800,\"y\":1900}"));
  expectOk(service.handleLine(
      "{\"cmd\":\"remove\",\"tenant\":\"t1\",\"inst\":2}"));

  const std::string savedDef = testing::TempDir() + "pao_serve_equiv.def";
  expectOk(service.handleLine(
      "{\"cmd\":\"save\",\"tenant\":\"t1\",\"def\":\"" + savedDef + "\"}"));
  const Json reportResult =
      expectOk(service.handleLine("{\"cmd\":\"report\",\"tenant\":\"t1\"}"));
  const Json* serveReport = reportResult.find("report");
  ASSERT_NE(serveReport, nullptr);
  std::string error;
  EXPECT_TRUE(pao::obs::validateReport(*serveReport, &error)) << error;

  // Fresh batch analysis of the saved post-mutation design.
  pao::db::Tech tech;
  pao::db::Library lib;
  auto slurp = [](const std::string& path) {
    std::stringstream ss;
    ss << std::ifstream(path).rdbuf();
    return ss.str();
  };
  pao::lefdef::parseLef(slurp(testFiles().lef), tech, lib);
  pao::db::Design design;
  design.tech = &tech;
  design.lib = &lib;
  pao::lefdef::parseDef(slurp(savedDef), design);
  const pao::db::Design& frozen = design;
  pao::core::OracleConfig cfg = pao::core::withBcaConfig();
  cfg.numThreads = 1;
  pao::core::OracleSession batch(frozen, cfg);
  const pao::core::OracleResult res = batch.snapshot();
  const auto dirty = pao::core::countDirtyAps(frozen, res);
  const auto failed = pao::core::countFailedPins(frozen, res);
  pao::obs::RunReport expected("pao_serve report");
  expected.section("design") =
      pao::core::designSectionJson(tech, lib, frozen);
  expected.section("config") = pao::core::analysisConfigJson("bca", 1, false);
  expected.section("oracle") =
      pao::core::oracleSectionJson(res, dirty, failed);
  if (!res.degraded.empty()) {
    expected.section("degraded") =
        pao::core::degradedSectionJson(res.degraded);
  }

  EXPECT_EQ(pao::obs::normalizeForCompare(*serveReport).dump(),
            pao::obs::normalizeForCompare(expected.doc()).dump());
}

TEST(ServeEquivalence, TenantsShareTheCacheThroughInternedLibraries) {
  Service service(ServiceConfig{});
  expectOk(service.handleLine(loadLine("t1")));
  const std::size_t missesAfterFirst = service.cache().misses();
  EXPECT_GT(missesAfterFirst, 0u);
  const std::size_t hitsAfterFirst = service.cache().hits();
  // Same LEF → interned library → same Master pointers → t2's initial
  // analysis is answered entirely from t1's cache entries.
  const Json loaded = expectOk(service.handleLine(loadLine("t2")));
  EXPECT_GT(service.cache().hits(), hitsAfterFirst);
  EXPECT_EQ(service.cache().misses(), missesAfterFirst);
  ASSERT_NE(loaded.find("classBuilds"), nullptr);
  EXPECT_EQ(loaded.find("classBuilds")->asInt(), 0);
}

// --- batch dispatch -------------------------------------------------------

TEST(ServeDispatch, BatchRunsDistinctTenantsAndAlignsResponses) {
  ServiceConfig cfg;
  cfg.numThreads = 1;
  Service service(cfg);
  expectOk(service.handleLine(loadLine("a")));
  expectOk(service.handleLine(loadLine("b")));
  std::vector<Request> batch;
  batch.push_back(parseRequest(
      "{\"cmd\":\"move\",\"tenant\":\"a\",\"inst\":0,\"dx\":380}"));
  batch.push_back(parseRequest(
      "{\"cmd\":\"move\",\"tenant\":\"b\",\"inst\":1,\"dx\":-380}"));
  const std::vector<std::string> responses = service.dispatchBatch(batch);
  ASSERT_EQ(responses.size(), 2u);
  const Json ra = expectOk(responses[0]);
  const Json rb = expectOk(responses[1]);
  EXPECT_EQ(ra.find("inst")->asInt(), 0);  // response i answers request i
  EXPECT_EQ(rb.find("inst")->asInt(), 1);
}

// --- soak -----------------------------------------------------------------

/// A blocking-socket client for the soak test. Runs on a parallelFor
/// worker; tests/ is exempt from the src/serve/ socket-I/O lint ban.
class SoakClient {
 public:
  explicit SoakClient(int port) {
    fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    // The listen backlog holds us until the event loop starts.
    connected_ = fd_ >= 0 && connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                     sizeof(addr)) == 0;
  }
  ~SoakClient() {
    if (fd_ >= 0) close(fd_);
  }
  bool connected() const { return connected_; }

  /// One round-trip: sends `line`, returns the response line.
  std::string roundTrip(const std::string& line) {
    const std::string out = line + "\n";
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n =
          send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return {};
      off += static_cast<std::size_t>(n);
    }
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        const std::string reply = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return reply;
      }
      char buf[4096];
      const ssize_t n = read(fd_, buf, sizeof(buf));
      if (n <= 0) return {};
      buffer_.append(buf, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

/// ≥4 client threads across 2 tenants hammer a live TCP server; the final
/// per-tenant report must equal a serial replay of that tenant's recorded
/// mutation history in a fresh deterministic service. Runs under TSan in
/// the ci.sh TSan leg, which is what locks in the data-race freedom of the
/// shared cache and admission bookkeeping.
TEST(ServeSoak, ConcurrentClientsMatchSerialReplay) {
  constexpr int kClients = 4;
  constexpr int kMovesPerClient = 6;
  const std::vector<std::string> tenants = {"s0", "s1"};

  ServiceConfig serviceCfg;
  serviceCfg.numThreads = 1;
  serviceCfg.tenantBudget = 2;  // small budget → stall path gets exercised
  Service service(serviceCfg);
  ServerConfig serverCfg;
  serverCfg.tcpPort = 0;  // ephemeral
  pao::serve::Server server(service, serverCfg);
  ASSERT_NO_THROW(server.start());
  const int port = server.boundPort();
  ASSERT_GT(port, 0);

  std::atomic<bool> loaded{false};
  std::atomic<int> done{0};
  std::atomic<int> failures{0};
  std::vector<std::string> histories(tenants.size());
  std::vector<std::string> reports(tenants.size());

  pao::util::parallelFor(
      1 + kClients,
      [&](std::size_t task) {
        if (task == 0) {
          server.run();  // calling thread grabs index 0 first
          return;
        }
        SoakClient client(port);
        if (!client.connected()) {
          ++failures;
          // Still count ourselves done — and make sure the server does not
          // wait forever for a shutdown request that will never come.
          if (++done == kClients) server.stop();
          return;
        }
        const int id = static_cast<int>(task) - 1;
        if (id == 0) {
          for (const std::string& t : tenants) {
            const Json doc = parseResponse(client.roundTrip(loadLine(t)));
            const Json* ok = doc.find("ok");
            if (ok == nullptr || !ok->asBool()) ++failures;
          }
          loaded = true;
        } else {
          while (!loaded) {
            // Spin-wait for the loader client; the server is concurrently
            // answering its load requests on the index-0 task.
          }
        }
        const std::string& tenant = tenants[id % tenants.size()];
        for (int m = 0; m < kMovesPerClient; ++m) {
          const int inst = id;  // distinct instance per client, no overlap
          const int dx = (m % 2 == 0) ? 380 : -380;
          const std::string resp = client.roundTrip(
              "{\"cmd\":\"move\",\"tenant\":\"" + tenant +
              "\",\"inst\":" + std::to_string(inst) +
              ",\"dx\":" + std::to_string(dx) + "}");
          const Json doc = parseResponse(resp);
          const Json* ok = doc.find("ok");
          if (ok == nullptr || !ok->asBool()) ++failures;
          client.roundTrip("{\"cmd\":\"query\",\"tenant\":\"" + tenant +
                           "\"}");
        }
        if (++done == kClients) {
          // Last client standing collects the ground truth and stops the
          // server; per-tenant history is the replay script.
          for (std::size_t t = 0; t < tenants.size(); ++t) {
            histories[t] = client.roundTrip(
                "{\"cmd\":\"history\",\"tenant\":\"" + tenants[t] + "\"}");
            reports[t] = client.roundTrip(
                "{\"cmd\":\"report\",\"tenant\":\"" + tenants[t] + "\"}");
          }
          client.roundTrip("{\"cmd\":\"shutdown\"}");
        }
      },
      1 + kClients);

  EXPECT_EQ(failures.load(), 0);
  // Both tenants loaded the same LEF: the second load and every re-signature
  // must have hit the shared cross-tenant cache.
  EXPECT_GT(service.cache().hits(), 0u);

  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const Json historyResult = expectOk(histories[t]);
    const Json* mutations = historyResult.find("mutations");
    ASSERT_NE(mutations, nullptr);
    // kClients/2 clients per tenant, kMovesPerClient moves each.
    EXPECT_EQ(mutations->items().size(),
              static_cast<std::size_t>(kClients / 2 * kMovesPerClient));

    ServiceConfig replayCfg;
    replayCfg.numThreads = 1;
    replayCfg.deterministic = true;
    Service replay(replayCfg);
    expectOk(replay.handleLine(loadLine(tenants[t])));
    for (const Json& line : mutations->items()) {
      expectOk(replay.handleLine(line.asString()));
    }
    const Json replayReport = expectOk(replay.handleLine(
        "{\"cmd\":\"report\",\"tenant\":\"" + tenants[t] + "\"}"));
    const Json soakReport = expectOk(reports[t]);
    ASSERT_NE(soakReport.find("report"), nullptr);
    ASSERT_NE(replayReport.find("report"), nullptr);
    EXPECT_EQ(
        pao::obs::normalizeForCompare(*soakReport.find("report")).dump(),
        pao::obs::normalizeForCompare(*replayReport.find("report")).dump())
        << "tenant " << tenants[t];
  }
}

}  // namespace
