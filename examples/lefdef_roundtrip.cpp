// LEF/DEF I/O example: write a generated testcase to LEF/DEF text, parse it
// back, and run pin access analysis on the parsed copy — the path an
// external design would take into the library.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "benchgen/testcase.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/def_writer.hpp"
#include "lefdef/lef_parser.hpp"
#include "lefdef/lef_writer.hpp"
#include "pao/evaluate.hpp"
#include "pao/oracle.hpp"

int main(int argc, char** argv) {
  using namespace pao;

  // With arguments: read the given LEF and DEF files. Without: synthesize a
  // small testcase and round-trip it through text.
  std::string lefText;
  std::string defText;
  if (argc == 3) {
    std::ifstream lef(argv[1]);
    std::ifstream def(argv[2]);
    if (!lef || !def) {
      std::printf("usage: %s [design.lef design.def]\n", argv[0]);
      return 1;
    }
    std::stringstream ls, ds;
    ls << lef.rdbuf();
    ds << def.rdbuf();
    lefText = ls.str();
    defText = ds.str();
  } else {
    benchgen::TestcaseSpec spec = benchgen::ispd18Suite()[0];
    spec.numCells = 200;
    spec.numNets = 100;
    const benchgen::Testcase tc = benchgen::generate(spec, 1.0);
    lefText = lefdef::writeLef(*tc.tech, *tc.lib);
    defText = lefdef::writeDef(*tc.design);
    std::printf("synthesized %zu-instance testcase -> %zu bytes LEF, %zu "
                "bytes DEF\n",
                tc.design->instances.size(), lefText.size(), defText.size());
  }

  db::Tech tech;
  db::Library lib;
  lefdef::parseLef(lefText, tech, lib);
  std::printf("parsed LEF: %zu layers, %zu via defs, %zu masters\n",
              tech.layers().size(), tech.viaDefs().size(),
              lib.masters().size());

  db::Design design;
  design.tech = &tech;
  design.lib = &lib;
  lefdef::parseDef(defText, design);
  std::printf("parsed DEF: '%s', %zu instances, %zu nets, %zu track "
              "patterns\n",
              design.name.c_str(), design.instances.size(),
              design.nets.size(), design.trackPatterns.size());

  core::PinAccessOracle oracle(design, core::withBcaConfig());
  const core::OracleResult result = oracle.run();
  const core::DirtyApStats dirty = core::countDirtyAps(design, result);
  const core::FailedPinStats failed = core::countFailedPins(design, result);
  std::printf("pin access on parsed design: %zu unique insts, %zu APs "
              "(%zu dirty), %zu/%zu failed pins\n",
              result.unique.classes.size(), dirty.totalAps, dirty.dirtyAps,
              failed.failedPins, failed.totalPins);
  return 0;
}
