// Placement advisor: using pin access analysis inside a placement loop —
// the use case the paper calls out in Experiment 2 ("runtime is one of the
// most important aspects ... especially for support of placement
// optimizations, where frequent changes in placement require a tremendous
// amount of inter-cell pin access analysis").
//
// The example takes a legal placement, tries several candidate positions
// for one cell, and ranks them by resulting pin-access quality (failed
// pins) — the kind of query a detailed placer would issue per move.
#include <cstdio>

#include "benchgen/testcase.hpp"
#include "pao/evaluate.hpp"
#include "pao/access_cache.hpp"
#include "pao/oracle.hpp"

int main() {
  using namespace pao;

  benchgen::TestcaseSpec spec = benchgen::ispd18Suite()[4];  // 32nm
  spec.numCells = 200;
  spec.numNets = 120;
  spec.numIoPins = 24;
  benchgen::Testcase tc = benchgen::generate(spec, 1.0);
  db::Design& design = *tc.design;

  // Pick a movable cell: the first multi-pin core instance.
  int victim = -1;
  for (int i = 0; i < static_cast<int>(design.instances.size()); ++i) {
    if (design.instances[i].master->cls == db::MasterClass::kCore &&
        design.instances[i].master->signalPinIndices().size() >= 3) {
      victim = i;
      break;
    }
  }
  if (victim < 0) {
    std::printf("no movable cell found\n");
    return 1;
  }
  const geom::Point home = design.instances[victim].origin;
  std::printf("advising placement for %s (master %s) at (%lld, %lld)\n",
              design.instances[victim].name.c_str(),
              design.instances[victim].master->name.c_str(),
              static_cast<long long>(home.x),
              static_cast<long long>(home.y));

  // Candidate x offsets in site steps; each shifts the cell along its row.
  // (A real placer would also check overlap legality; we only score access.)
  // The AccessCache makes the per-move re-analysis nearly free: a move can
  // at most introduce ONE new signature; every other unique instance is a
  // cache hit.
  core::AccessCache cache;
  core::OracleConfig cfg = core::withBcaConfig();
  cfg.cache = &cache;

  std::printf("%-12s %12s %12s %12s %12s\n", "candidate", "x-offset",
              "failedPins", "wall(s)", "cacheHits");
  for (const int sites : {0, 1, 2, 3, 5, 8}) {
    const geom::Coord dx = sites * spec.siteWidth;
    design.instances[victim].origin = {home.x + dx, home.y};

    const std::size_t hitsBefore = cache.hits();
    core::PinAccessOracle oracle(design, cfg);
    const core::OracleResult result = oracle.run();
    const core::FailedPinStats failed = core::countFailedPins(design, result);
    std::printf("%-12s %12lld %12zu %12.3f %12zu\n",
                sites == 0 ? "home" : "shifted", static_cast<long long>(dx),
                failed.failedPins, result.wallSeconds,
                cache.hits() - hitsBefore);
  }
  design.instances[victim].origin = home;
  std::printf("cache: %zu entries, %zu hits, %zu misses across all moves\n",
              cache.size(), cache.hits(), cache.misses());
  return 0;
}
