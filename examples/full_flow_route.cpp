// Full flow: generate a testcase, run PAAF, feed the selected access
// patterns to the detailed router, and count DRCs of the final layout —
// the Experiment 3 pipeline as a library user would drive it.
#include <cstdio>
#include <map>
#include <string>

#include "benchgen/testcase.hpp"
#include "pao/evaluate.hpp"
#include "router/router.hpp"

int main() {
  using namespace pao;

  benchgen::TestcaseSpec spec = benchgen::ispd18Suite()[0];
  spec.numCells = 300;
  spec.numNets = 150;
  const benchgen::Testcase tc = benchgen::generate(spec, 1.0);
  std::printf("routing '%s': %zu instances, %zu nets\n",
              tc.design->name.c_str(), tc.design->instances.size(),
              tc.design->nets.size());

  // Pin access first (the paper's central thesis: resolve access before
  // routing), then the router consumes the chosen patterns.
  core::PinAccessOracle oracle(*tc.design, core::withBcaConfig());
  const core::OracleResult access = oracle.run();
  const core::FailedPinStats failed =
      core::countFailedPins(*tc.design, access);
  std::printf("pin access: %zu pins, %zu failed, %.3f s\n", failed.totalPins,
              failed.failedPins, access.totalSeconds());

  router::AccessSource source(*tc.design, access,
                              router::AccessMode::kPattern);
  router::DetailedRouter rtr(*tc.design, source);
  const router::RouteResult rr = rtr.run();

  std::printf("routing: %zu/%zu nets, %zu vias, %zu wire shapes, %.3f s\n",
              rr.stats.routedNets,
              rr.stats.routedNets + rr.stats.failedNets, rr.stats.viaCount,
              rr.stats.wireShapes, rr.stats.seconds);
  std::printf("unconnected pin terms: %zu, relaxed retries: %zu\n",
              rr.stats.skippedTerms, rr.stats.relaxedRetries);

  std::map<std::string, int> kinds;
  for (const drc::Violation& v : rr.violations) {
    ++kinds[std::string(drc::toString(v.kind))];
  }
  std::printf("final DRCs: %zu total, %zu access-related\n",
              rr.violations.size(), rr.accessViolations);
  for (const auto& [kind, count] : kinds) {
    std::printf("  %-14s %d\n", kind.c_str(), count);
  }
  return 0;
}
