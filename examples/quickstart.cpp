// Quickstart: build a small design, run the full pin access analysis flow
// (Steps 1-3 of the paper), and inspect the results through the public API.
//
//   $ ./examples/quickstart
//
// Walks through: unique-instance extraction, per-pin access points with
// their coordinate types, access patterns, and the final per-instance
// pattern selection.
#include <cstdio>

#include "benchgen/testcase.hpp"
#include "pao/evaluate.hpp"
#include "pao/oracle.hpp"

int main() {
  using namespace pao;

  // 1. A design. Here we synthesize a small 45nm-like testcase; real users
  //    would parse LEF/DEF instead (see the lefdef_roundtrip example).
  benchgen::TestcaseSpec spec = benchgen::ispd18Suite()[0];
  spec.numCells = 300;
  spec.numNets = 150;
  const benchgen::Testcase tc = benchgen::generate(spec, 1.0);
  std::printf("design '%s': %zu instances, %zu nets\n",
              tc.design->name.c_str(), tc.design->instances.size(),
              tc.design->nets.size());

  // 2. Run the oracle: Step 1 (access points), Step 2 (patterns), Step 3
  //    (cluster selection), with boundary-conflict awareness.
  core::PinAccessOracle oracle(*tc.design, core::withBcaConfig());
  const core::OracleResult result = oracle.run();
  std::printf("unique instances: %zu (analysis shared by %zu placements)\n",
              result.unique.classes.size(), tc.design->instances.size());

  // 3. Inspect one unique instance's access data.
  for (std::size_t c = 0; c < result.unique.classes.size(); ++c) {
    const core::ClassAccess& ca = result.classes[c];
    if (ca.patterns.empty()) continue;
    const db::UniqueInstance& ui = result.unique.classes[c];
    std::printf("\nunique instance %zu: master=%s orient=%s members=%zu\n",
                c, ui.master->name.c_str(),
                std::string(geom::toString(ui.orient)).c_str(),
                ui.members.size());
    const char* typeNames[] = {"on-track", "half-track", "shape-center",
                               "enc-boundary"};
    for (std::size_t p = 0; p < ca.pinAps.size(); ++p) {
      const int masterPin = ui.master->signalPinIndices()[p];
      std::printf("  pin %-4s: %zu access points\n",
                  ui.master->pins[masterPin].name.c_str(),
                  ca.pinAps[p].size());
      for (const core::AccessPoint& ap : ca.pinAps[p]) {
        std::printf("    (%lld, %lld) pref=%s nonPref=%s vias=%zu dirs=%c%c%c%c%c\n",
                    static_cast<long long>(ap.loc.x),
                    static_cast<long long>(ap.loc.y),
                    typeNames[static_cast<int>(ap.prefType)],
                    typeNames[static_cast<int>(ap.nonPrefType)],
                    ap.viaIdx.size(), ap.dirs & core::kEast ? 'E' : '-',
                    ap.dirs & core::kWest ? 'W' : '-',
                    ap.dirs & core::kNorth ? 'N' : '-',
                    ap.dirs & core::kSouth ? 'S' : '-',
                    ap.hasUp() ? 'U' : '-');
      }
    }
    std::printf("  patterns: %zu (cost of best: %lld)\n", ca.patterns.size(),
                ca.patterns.front().cost);
    break;  // one class is enough for the tour
  }

  // 4. Quality metrics — the paper's Experiment 1 and 2 statistics.
  const core::DirtyApStats dirty = core::countDirtyAps(*tc.design, result);
  const core::FailedPinStats failed =
      core::countFailedPins(*tc.design, result);
  std::printf("\naccess points: %zu total, %zu dirty\n", dirty.totalAps,
              dirty.dirtyAps);
  std::printf("net-attached pins: %zu, failed: %zu\n", failed.totalPins,
              failed.failedPins);
  std::printf("runtime: %.3f s (%.3f / %.3f / %.3f per step)\n",
              result.totalSeconds(), result.step1Seconds,
              result.step2Seconds, result.step3Seconds);
  return 0;
}
