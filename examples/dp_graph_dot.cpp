// Figure 5/6 companion: prints the Step-2 dynamic-programming graph of one
// unique instance as Graphviz DOT — access point vertices labeled {m,n}
// (pin index, access point index, Fig. 6's notation), grouped by the pin
// ordering of Fig. 5, with complete bipartite edges between neighboring
// groups and virtual source/sink vertices.
//
//   $ ./examples/dp_graph_dot | dot -Tsvg > dp_graph.svg
#include <cstdio>

#include "benchgen/testcase.hpp"
#include "pao/ap_gen.hpp"
#include "pao/pattern_gen.hpp"

int main() {
  using namespace pao;

  benchgen::TestcaseSpec spec = benchgen::ispd18Suite()[0];
  spec.numCells = 60;
  spec.numNets = 30;
  const benchgen::Testcase tc = benchgen::generate(spec, 1.0);
  const db::UniqueInstances unique = db::extractUniqueInstances(*tc.design);

  // Pick a class with at least 3 pins so the graph looks like Fig. 6.
  int chosen = -1;
  for (int c = 0; c < static_cast<int>(unique.classes.size()); ++c) {
    if (unique.classes[c].master->signalPinIndices().size() >= 3) {
      chosen = c;
      break;
    }
  }
  if (chosen < 0) {
    std::fprintf(stderr, "no multi-pin class found\n");
    return 1;
  }
  const db::UniqueInstance& ui = unique.classes[chosen];
  const core::InstContext ctx(*tc.design, ui);
  const auto aps = core::AccessPointGenerator(ctx).generateAll();
  core::PatternGenerator gen(ctx, aps);
  const std::vector<int>& order = gen.pinOrder();

  std::printf("// DP graph for unique instance of %s (%s)\n",
              ui.master->name.c_str(),
              std::string(geom::toString(ui.orient)).c_str());
  std::printf("digraph dp {\n  rankdir=LR;\n  node [shape=circle];\n");
  std::printf("  S [label=\"start\", shape=doublecircle];\n");
  std::printf("  T [label=\"end\", shape=doublecircle];\n");

  for (std::size_t m = 0; m < order.size(); ++m) {
    const int pin = order[m];
    const int masterPin = ui.master->signalPinIndices()[pin];
    std::printf("  subgraph cluster_%zu {\n    label=\"pin %s\";\n", m,
                ui.master->pins[masterPin].name.c_str());
    for (std::size_t n = 0; n < aps[pin].size(); ++n) {
      std::printf("    p%zu_%zu [label=\"{%zu,%zu}\"];\n", m, n, m + 1,
                  n + 1);
    }
    std::printf("  }\n");
  }

  // Virtual source/sink plus complete bipartite edges between neighbors.
  for (std::size_t n = 0; n < aps[order.front()].size(); ++n) {
    std::printf("  S -> p0_%zu;\n", n);
  }
  for (std::size_t m = 0; m + 1 < order.size(); ++m) {
    for (std::size_t a = 0; a < aps[order[m]].size(); ++a) {
      for (std::size_t b = 0; b < aps[order[m + 1]].size(); ++b) {
        std::printf("  p%zu_%zu -> p%zu_%zu;\n", m, a, m + 1, b);
      }
    }
  }
  const std::size_t last = order.size() - 1;
  for (std::size_t n = 0; n < aps[order.back()].size(); ++n) {
    std::printf("  p%zu_%zu -> T;\n", last, n);
  }
  std::printf("}\n");
  return 0;
}
