// Figure-8-style snapshot: route a small design with two different access
// sources, then render the SAME window of the layout to SVG for both — the
// visual pin-access comparison of the paper's Experiment 3 (dashed red
// boxes mark DRC violations).
//
//   $ ./examples/access_snapshot [out-prefix]
//   -> <out-prefix>_greedy.svg, <out-prefix>_paaf.svg
#include <cstdio>
#include <fstream>

#include "benchgen/testcase.hpp"
#include "pao/evaluate.hpp"
#include "router/router.hpp"
#include "viz/svg.hpp"

int main(int argc, char** argv) {
  using namespace pao;
  const std::string prefix = argc > 1 ? argv[1] : "access_snapshot";

  benchgen::TestcaseSpec spec = benchgen::ispd18Suite()[4];  // 32nm
  spec.numCells = 250;
  spec.numNets = 130;
  spec.numIoPins = 24;     // the spec default (1211) would swamp 130 nets
  spec.utilization = 0.6;  // headroom for the simple router
  const benchgen::Testcase tc = benchgen::generate(spec, 1.0);

  const auto snapshot = [&](router::AccessMode mode,
                            const std::string& path) {
    core::PinAccessOracle oracle(*tc.design, core::withBcaConfig());
    const core::OracleResult res = oracle.run();
    router::AccessSource access(*tc.design, res, mode);
    router::RouterConfig rc;
    rc.ripupPasses = mode == router::AccessMode::kPattern ? 5 : 0;
    router::DetailedRouter rtr(*tc.design, access, rc);
    const router::RouteResult rr = rtr.run();

    std::vector<viz::VizShape> shapes;
    for (const router::RouteShape& s : rr.shapes) {
      viz::VizShape v;
      v.rect = s.rect;
      v.layer = s.layer;
      v.kind = s.isAccess ? viz::VizShape::Kind::kAccessVia
                          : (s.isVia ? viz::VizShape::Kind::kVia
                                     : viz::VizShape::Kind::kWire);
      shapes.push_back(v);
    }

    // Window: around the first violation if any, else the die center.
    geom::Rect window = tc.design->dieArea;
    const geom::Coord span = 12000;
    geom::Point center = window.center();
    if (!rr.violations.empty()) center = rr.violations.front().bbox.center();
    window = geom::Rect(center.x - span, center.y - span, center.x + span,
                        center.y + span)
                 .intersect(tc.design->dieArea);

    viz::SvgOptions opt;
    opt.scale = 0.04;
    opt.maxLayer = tc.tech->findLayer("M4")->index;
    std::ofstream out(path);
    out << viz::renderRegion(*tc.design, window, shapes, rr.violations, opt);
    std::printf("%-22s DRCs=%zu (access %zu) -> %s\n",
                mode == router::AccessMode::kPattern ? "PAAF" : "greedy",
                rr.violations.size(), rr.accessViolations, path.c_str());
  };

  snapshot(router::AccessMode::kGreedyNearest, prefix + "_greedy.svg");
  snapshot(router::AccessMode::kPattern, prefix + "_paaf.svg");
  return 0;
}
