// Deterministic fault injection for robustness testing.
//
// Code under test declares named injection points:
//
//   if (PAO_FAULT_POINT("cache.read")) return fail("injected fault");
//   PAO_FAULT_INJECT("oracle.class_access");  // throws util::FaultInjected
//
// Nothing fires unless the registry is armed via
// FaultRegistry::instance().configure(spec) — pao_cli wires this to
// --faults <spec> and the PAO_FAULTS environment variable. The spec is a
// comma-separated list of entries:
//
//   point            fire on every hit of `point`
//   point:N          fire on the Nth hit only (1-based)
//   point:N+         fire on the Nth hit and every later one
//   point:pP[:sS]    fire pseudo-randomly with probability P (0..1),
//                    deterministic in seed S (default 1) and hit index
//
// e.g. PAO_FAULTS="cache.read,oracle.class_access:3+,lef.io:p0.5:s7".
// All triggering is a pure function of (spec, per-point hit index), so a
// faulted run is exactly reproducible at any thread count for points hit
// a deterministic number of times in a deterministic order.
//
// Like the observability macros (PAO_OBS), the call sites compile to
// nothing under -DPAO_FAULTS=OFF: PAO_FAULT_POINT becomes constant false
// and PAO_FAULT_INJECT an empty statement, so production builds carry no
// registry references (checked by the ci.sh nm gate). The default build
// compiles the hooks in but they cost one relaxed atomic load while
// disarmed.
//
// The fault-point catalog lives in DESIGN.md "Robustness & failure
// semantics".
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#ifndef PAO_FAULTS
#define PAO_FAULTS 1
#endif

namespace pao::util {

/// Thrown by PAO_FAULT_INJECT sites (and by any code that wants an
/// unambiguous "this failure was injected" type).
struct FaultInjected : std::runtime_error {
  explicit FaultInjected(std::string_view pointName)
      : std::runtime_error("injected fault at '" + std::string(pointName) +
                           "'"),
        point(pointName) {}
  std::string point;
};

class FaultRegistry {
 public:
  /// Process-wide registry (leaked singleton, never destroyed).
  static FaultRegistry& instance();

  /// Parses `spec` (grammar above) and arms the registry. On a malformed
  /// spec returns false, sets *error, and leaves the registry disarmed.
  /// An empty spec disarms. Replaces any previous configuration.
  bool configure(std::string_view spec, std::string* error = nullptr);

  /// Disarms and forgets all points and counters.
  void reset();

  /// Cheap fast-path gate: true when at least one point is configured.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Called by PAO_FAULT_POINT at every instrumented site. Counts the hit
  /// and returns true when the point's trigger says to fire.
  bool shouldFire(std::string_view point);

  /// Observability for tests: how often `point` was reached / fired.
  std::size_t hits(std::string_view point) const;
  std::size_t fired(std::string_view point) const;

 private:
  FaultRegistry() = default;

  enum class Mode { kAlways, kNth, kFromNth, kProb };
  struct Point {
    Mode mode = Mode::kAlways;
    std::uint64_t n = 0;        ///< kNth / kFromNth threshold (1-based)
    double prob = 0.0;          ///< kProb probability
    std::uint64_t seed = 1;     ///< kProb seed
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };

  static bool parseEntry(std::string_view entry, std::string& name,
                         Point& point, std::string* error);

  mutable std::mutex mu_;
  std::map<std::string, Point, std::less<>> points_;
  std::atomic<bool> armed_{false};
};

}  // namespace pao::util

#if PAO_FAULTS
/// Evaluates to true when the named fault point should fire this hit.
#define PAO_FAULT_POINT(name)                        \
  (::pao::util::FaultRegistry::instance().armed() && \
   ::pao::util::FaultRegistry::instance().shouldFire(name))
/// Throws util::FaultInjected when the named point fires.
#define PAO_FAULT_INJECT(name)                                 \
  do {                                                         \
    if (PAO_FAULT_POINT(name)) {                               \
      throw ::pao::util::FaultInjected(name);                  \
    }                                                          \
  } while (0)
#else
#define PAO_FAULT_POINT(name) (false)
#define PAO_FAULT_INJECT(name) \
  do {                         \
  } while (0)
#endif
