// String interning for the streaming ingest path: maps byte strings to
// dense uint32 ids and back. Designed for the two hot uses in
// lefdef/stream.cpp:
//   * COMPONENTS: instance names are interned in file order, so an
//     instance's id IS its index in Design::instances — the NETS section
//     resolves component references with one hash probe and no per-lookup
//     std::string construction (Design::findInstance builds one per call).
//   * Master-name resolution caches keyed by interned id.
//
// Storage contract: interned bytes live in fixed-size blocks that are
// never reallocated, so the string_view CONTENTS returned by viewOf()
// stay valid for the interner's lifetime. The reference returned by
// viewOf() itself, however, points into a std::vector slot and is
// invalidated by the next intern() — bind it by value. Both accessors are
// registered with pao_lint's pointer-stability rule (group "interner") so
// a reference held across an intern() is flagged at lint time.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace pao::util {

class StringInterner {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  StringInterner() { rehash(1024); }

  /// Id of `s`, interning it first if new. Ids are dense and assigned in
  /// first-intern order starting at 0.
  std::uint32_t intern(std::string_view s) {
    const std::uint64_t h = hash(s);
    std::size_t slot = probe(s, h);
    if (slots_[slot] != kNone) return slots_[slot];
    const std::uint32_t id = static_cast<std::uint32_t>(views_.size());
    views_.push_back(store(s));
    slots_[slot] = id;
    if (views_.size() * 10 >= slots_.size() * 7) {
      rehash(slots_.size() * 2);
    }
    return id;
  }

  /// Id of `s` if already interned, kNone otherwise. Never allocates.
  std::uint32_t find(std::string_view s) const {
    return slots_[probe(s, hash(s))];
  }

  /// The interned bytes of `id`. The returned reference lives in growable
  /// storage — copy it by value before the next intern() (the pointed-to
  /// CHARACTERS are stable for the interner's lifetime).
  const std::string_view& viewOf(std::uint32_t id) const {
    return views_[id];
  }

  std::size_t size() const { return views_.size(); }
  /// Bytes held by the character pool (capacity, not just used bytes).
  std::size_t poolBytes() const { return blocks_.size() * kBlockBytes; }

 private:
  static constexpr std::size_t kBlockBytes = 1 << 16;

  static std::uint64_t hash(std::string_view s) {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return h;
  }

  /// Slot holding `s`'s id, or the empty slot where it would go.
  std::size_t probe(std::string_view s, std::uint64_t h) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (slots_[i] != kNone) {
      if (views_[slots_[i]] == s) return i;
      i = (i + 1) & mask;
    }
    return i;
  }

  void rehash(std::size_t newSize) {
    slots_.assign(newSize, kNone);
    const std::size_t mask = newSize - 1;
    for (std::uint32_t id = 0; id < views_.size(); ++id) {
      std::size_t i = static_cast<std::size_t>(hash(views_[id])) & mask;
      while (slots_[i] != kNone) i = (i + 1) & mask;
      slots_[i] = id;
    }
  }

  std::string_view store(std::string_view s) {
    if (s.size() > kBlockBytes) {
      // Oversized strings get a dedicated block (degenerate in LEF/DEF,
      // but fuzz inputs reach here).
      auto block = std::make_unique<char[]>(s.size());
      std::memcpy(block.get(), s.data(), s.size());
      oversize_.push_back(std::move(block));
      return {oversize_.back().get(), s.size()};
    }
    if (blocks_.empty() || kBlockBytes - used_ < s.size()) {
      blocks_.push_back(std::make_unique<char[]>(kBlockBytes));
      used_ = 0;
    }
    char* dst = blocks_.back().get() + used_;
    std::memcpy(dst, s.data(), s.size());
    used_ += s.size();
    return {dst, s.size()};
  }

  std::vector<std::string_view> views_;  ///< id -> interned bytes
  std::vector<std::uint32_t> slots_;     ///< open-addressing index (id/kNone)
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::vector<std::unique_ptr<char[]>> oversize_;
  std::size_t used_ = 0;  ///< bytes used in blocks_.back()
};

}  // namespace pao::util
