// Small-buffer vector for the data-layout overhaul (ROADMAP item 2): hot
// structs like AccessPoint keep short index lists (via-def indices) inline
// instead of owning a heap allocation apiece. The first N elements live in
// the struct; pathological inputs that exceed N spill to the heap with full
// std::vector growth semantics, so no input is ever truncated.
//
// Deliberately minimal: the subset of the vector interface the pin-access
// code uses. T must be default-constructible and assignable (the intended
// use is small trivial types — indices, ids, coordinates); elements are
// value slots, not placement-new storage, which keeps the type simple and
// the common path allocation-free.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <utility>

namespace pao::util {

template <typename T, std::size_t N>
class SmallVec {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() = default;
  SmallVec(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }
  SmallVec(const SmallVec& other) { assignFrom(other); }
  SmallVec(SmallVec&& other) noexcept { moveFrom(std::move(other)); }
  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      size_ = 0;
      assignFrom(other);
    }
    return *this;
  }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) moveFrom(std::move(other));
    return *this;
  }
  ~SmallVec() = default;

  void push_back(const T& v) {
    if (size_ == cap_) grow(cap_ * 2);
    data()[size_++] = v;
  }

  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }

  T* data() { return heap_ ? heap_.get() : inline_; }
  const T* data() const { return heap_ ? heap_.get() : inline_; }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  T& front() { return data()[0]; }
  const T& front() const { return data()[0]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SmallVec& a, const SmallVec& b) {
    return !(a == b);
  }

 private:
  void grow(std::size_t newCap) {
    if (newCap < size_ + 1) newCap = size_ + 1;
    auto fresh = std::unique_ptr<T[]>(new T[newCap]);
    std::move(begin(), end(), fresh.get());
    heap_ = std::move(fresh);
    cap_ = newCap;
  }

  void assignFrom(const SmallVec& other) {
    reserve(other.size_);
    std::copy(other.begin(), other.end(), data());
    size_ = other.size_;
  }

  void moveFrom(SmallVec&& other) {
    if (other.heap_) {
      heap_ = std::move(other.heap_);
      cap_ = other.cap_;
      size_ = other.size_;
    } else {
      heap_.reset();
      cap_ = N;
      size_ = other.size_;
      std::move(other.inline_, other.inline_ + other.size_, inline_);
    }
    other.size_ = 0;
    other.cap_ = N;
    other.heap_.reset();
  }

  T inline_[N] = {};
  std::unique_ptr<T[]> heap_;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace pao::util
