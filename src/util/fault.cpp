#include "util/fault.hpp"

#include <cstdlib>

namespace pao::util {

namespace {

/// splitmix64 — the same mixer benchgen uses; good enough to decorrelate
/// (seed, hit-index) pairs for probabilistic triggers.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

bool parseU64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (UINT64_MAX - (c - '0')) / 10) return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

bool parseProb(std::string_view s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string tmp(s);
  const double v = std::strtod(tmp.c_str(), &end);
  if (end != tmp.c_str() + tmp.size()) return false;
  if (!(v >= 0.0 && v <= 1.0)) return false;
  out = v;
  return true;
}

}  // namespace

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry* reg = new FaultRegistry();  // leaked, like obs
  return *reg;
}

bool FaultRegistry::parseEntry(std::string_view entry, std::string& name,
                               Point& point, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error) *error = "bad fault spec '" + std::string(entry) + "': " + why;
    return false;
  };
  const std::size_t colon = entry.find(':');
  name = std::string(entry.substr(0, colon));
  if (name.empty()) return fail("empty point name");
  if (colon == std::string_view::npos) {
    point.mode = Mode::kAlways;
    return true;
  }
  std::string_view trig = entry.substr(colon + 1);
  if (trig.empty()) return fail("empty trigger");
  if (trig.front() == 'p') {
    // pP[:sS] — probabilistic, seeded.
    point.mode = Mode::kProb;
    const std::size_t sep = trig.find(':');
    std::string_view probPart = trig.substr(1, sep == std::string_view::npos
                                                   ? std::string_view::npos
                                                   : sep - 1);
    if (!parseProb(probPart, point.prob)) {
      return fail("probability must be a number in [0,1]");
    }
    if (sep != std::string_view::npos) {
      std::string_view seedPart = trig.substr(sep + 1);
      if (seedPart.empty() || seedPart.front() != 's' ||
          !parseU64(seedPart.substr(1), point.seed)) {
        return fail("seed must be s<integer>");
      }
    }
    return true;
  }
  if (trig.back() == '+') {
    point.mode = Mode::kFromNth;
    trig.remove_suffix(1);
  } else {
    point.mode = Mode::kNth;
  }
  if (!parseU64(trig, point.n) || point.n == 0) {
    return fail("hit index must be a positive integer");
  }
  return true;
}

bool FaultRegistry::configure(std::string_view spec, std::string* error) {
  reset();
  std::map<std::string, Point, std::less<>> parsed;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;  // tolerate "a,,b" and trailing commas
    std::string name;
    Point point;
    if (!parseEntry(entry, name, point, error)) return false;
    parsed.insert_or_assign(std::move(name), point);
  }
  if (parsed.empty()) return true;  // empty spec = disarm, not an error
  {
    const std::lock_guard<std::mutex> lock(mu_);
    points_ = std::move(parsed);
  }
  armed_.store(true, std::memory_order_relaxed);
  return true;
}

void FaultRegistry::reset() {
  armed_.store(false, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
}

bool FaultRegistry::shouldFire(std::string_view point) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  if (it == points_.end()) return false;
  Point& p = it->second;
  const std::uint64_t hit = ++p.hits;  // 1-based hit index
  bool fire = false;
  switch (p.mode) {
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kNth:
      fire = hit == p.n;
      break;
    case Mode::kFromNth:
      fire = hit >= p.n;
      break;
    case Mode::kProb: {
      const std::uint64_t h = mix64(p.seed * 0x9E3779B97F4A7C15ull + hit);
      // Top 53 bits -> uniform double in [0,1).
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      fire = u < p.prob;
      break;
    }
  }
  if (fire) ++p.fired;
  return fire;
}

std::size_t FaultRegistry::hits(std::string_view point) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : static_cast<std::size_t>(it->second.hits);
}

std::size_t FaultRegistry::fired(std::string_view point) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : static_cast<std::size_t>(it->second.fired);
}

}  // namespace pao::util
