// Shared parallel executor for the library's batch workloads (the paper's
// "support of multi-threading" future-work item). One primitive —
// parallelFor — runs n independent index-addressed tasks over a bounded
// worker pool with semantics chosen so callers stay deterministic:
//
//   * Result ordering is the caller's: tasks write into slot i of a
//     pre-sized output, so the result sequence is independent of the
//     schedule. parallelFor itself never reorders anything.
//   * Every index is attempted even after a failure, and the exception of
//     the LOWEST failing index is rethrown — identical to what a caller
//     observes serially when each task's failure is recorded and the first
//     one reported, regardless of thread count or timing.
//   * Nested calls degrade to serial on the calling worker instead of
//     spawning threads-squared workers, so library layers may parallelize
//     independently (e.g. a parallel DRC shard calling a helper that is
//     itself parallel elsewhere).
#pragma once

#include <cstddef>
#include <functional>

namespace pao::util {

/// Worker count a request resolves to: n >= 1 is taken as-is; n <= 0 means
/// std::thread::hardware_concurrency (at least 1).
int resolveThreads(int numThreads);

/// Invokes fn(i) for every i in [0, n) across up to resolveThreads(numThreads)
/// workers (the calling thread is one of them). Tasks must be independent;
/// scheduling is dynamic (work-stealing via a shared atomic cursor) so uneven
/// task costs balance. See the header comment for the determinism contract.
void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 int numThreads);

}  // namespace pao::util
