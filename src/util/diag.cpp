#include "util/diag.hpp"

namespace pao::util {

namespace {

const char* severityName(Severity s) {
  return s == Severity::kWarning ? "warning" : "error";
}

}  // namespace

std::string Diag::header() const {
  std::string out = loc.file;
  if (loc.line > 0) {
    out += ':';
    out += std::to_string(loc.line);
    if (loc.col > 0) {
      out += ':';
      out += std::to_string(loc.col);
    }
  }
  out += ": ";
  out += severityName(severity);
  out += ": [";
  out += code;
  out += "] ";
  out += message;
  return out;
}

std::string Diag::format() const {
  std::string out = header();
  if (!excerpt.empty() && loc.line > 0) {
    const std::string num = std::to_string(loc.line);
    out += "\n  " + num + " | " + excerpt;
    out += "\n  " + std::string(num.size(), ' ') + " | ";
    // Caret alignment assumes the excerpt holds no tabs; LEF/DEF sources
    // in the wild are space-indented and the caret is advisory anyway.
    if (loc.col > 0) out += std::string(loc.col - 1, ' ') + "^";
  }
  return out;
}

void DiagSink::add(Diag d) {
  if (d.severity == Severity::kError) ++errors_;
  diags_.push_back(std::move(d));
}

}  // namespace pao::util
