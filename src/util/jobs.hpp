// Deterministic job-graph executor (ROADMAP item 2): the replacement for
// the fork-join barrier model. Callers build a DAG of jobs — each job is a
// body plus the ids of earlier jobs it depends on — then run() drains it
// over a bounded worker pool with per-worker deques and work stealing.
//
// The scheduling contract, chosen so every caller stays byte-deterministic
// at any thread count (the repo's moat — see DESIGN.md "Job graph & memory
// layout"):
//
//   * Result commitment is the caller's: job bodies write into pre-sized
//     slots (or per-job state) identified by data, never by schedule. The
//     graph itself never reorders or merges results.
//   * Dependencies reference earlier ids only (deps < id), so graphs are
//     acyclic by construction and a ready job always exists.
//   * A failing job's exception is recorded by job id; jobs downstream of a
//     failure are poisoned and skipped (the poisoned set is the transitive
//     closure of failures — a pure graph property, independent of
//     schedule). After the drain, the exception of the LOWEST failing id is
//     rethrown. Independent jobs (no path from a failure) all still run —
//     for a single-layer graph this is exactly parallelFor's "every index
//     is attempted" rule.
//   * Serial order is depth-first: with one worker, jobs run lowest-id
//     first among the initially ready, and a completed job's newly-ready
//     dependents run before anything older (owner LIFO). That makes the
//     one-worker schedule a deterministic DFS — Step-3 work overlaps
//     Step-2 even serially, which is what bench_pipeline measures.
//   * Nested run() (a job body building and running its own graph, or
//     calling parallelFor) degrades to serial on the calling worker rather
//     than spawning pools-squared threads.
//
// Scheduling shape: per-worker deques in the Chase-Lev style — the owner
// pushes and pops at the back (LIFO, depth-first), thieves take from the
// front (FIFO, oldest first). The deques here are mutex-guarded rather
// than lock-free: every queue operation is adjacent to a std::function
// call that dwarfs it, and the lock keeps the executor trivially clean
// under TSan. Executed/skipped counts are schedule-invariant and feed the
// registry counters pao.jobs.executed / pao.jobs.skipped; the steal count
// is not schedule-invariant (report-only — never registered).
//
// Profiling (PAO_OBS builds only): every node's begin/end timestamps,
// executing worker and steal provenance are appended to per-worker logs —
// each worker writes only its own vector, so the hot path takes no lock —
// and assembled into an obs::GraphProfile after the drain (profile()).
// obs/profile.hpp turns that into critical-path / headroom / utilization
// analysis. With PAO_OBS=OFF the capture, the member and the accessor
// compile out entirely (the ci.sh nm gate checks no obs symbol survives).
//
// parallelFor (util/executor.hpp) is a thin wrapper: one addJobRange over
// a dependency-free graph.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "obs/enabled.hpp"
#if PAO_OBS_ENABLED
#include "obs/profile.hpp"
#endif

namespace pao::util {

using JobId = std::uint32_t;

class JobGraph {
 public:
  struct Stats {
    std::size_t jobs = 0;      ///< nodes in the graph
    std::size_t executed = 0;  ///< bodies that ran (schedule-invariant)
    std::size_t skipped = 0;   ///< poisoned by an upstream failure (invariant)
    std::size_t steals = 0;    ///< cross-deque pops (NOT schedule-invariant)
  };

  JobGraph() = default;
  JobGraph(const JobGraph&) = delete;
  JobGraph& operator=(const JobGraph&) = delete;

  /// Adds one job. `deps` must all be ids returned earlier from this graph
  /// (deps < the new id); violating that throws std::logic_error. Returns
  /// the new job's id.
  JobId addJob(std::function<void()> body, std::span<const JobId> deps = {});

  /// Adds `n` dependency-free jobs sharing one body, invoked as body(i) for
  /// i in [0, n); their ids are contiguous starting at the returned id.
  /// This is the parallelFor shape: one std::function for the whole range
  /// instead of one per index.
  JobId addJobRange(std::size_t n, std::function<void(std::size_t)> body);

  /// Drains the graph over up to resolveThreads(numThreads) workers (the
  /// calling thread is one of them; capped at the job count). One-shot:
  /// running a graph twice throws std::logic_error. Rethrows the lowest
  /// failing job id's exception after the drain completes.
  void run(int numThreads);

  /// Valid after run(). See Stats for which fields are schedule-invariant.
  const Stats& stats() const { return stats_; }

#if PAO_OBS_ENABLED
  /// Valid after run(): per-node timestamps/worker/steal provenance plus
  /// the dependency CSR, ready for obs::analyzeProfile. Timestamps are
  /// nanoseconds relative to the run() epoch.
  const obs::GraphProfile& profile() const { return profile_; }
#endif

  std::size_t size() const { return nodes_.size(); }

  /// True while the calling thread is inside a job body (or a parallelFor
  /// task). Nested run() calls degrade to serial; see header comment.
  static bool insideJob();

 private:
  struct Node {
    std::function<void()> body;        // empty for range members
    std::int32_t rangeBody = -1;       // index into rangeBodies_
    std::size_t rangeIndex = 0;
    std::uint32_t depBegin = 0;
    std::uint32_t depCount = 0;
  };

  struct WorkerDeque {
    std::mutex mu;
    std::deque<JobId> q;
  };

  void execute(JobId id, std::size_t worker, int stolenFrom);
  void finish(JobId id, bool poisonSuccessors, std::size_t worker);
  void workerLoop(std::size_t worker);
  /// Pops a job for `worker`: own deque first (LIFO back), then steals
  /// round-robin (FIFO front). `stolenFrom` is the victim's worker index,
  /// or -1 for an own pop.
  bool tryPop(std::size_t worker, JobId& out, int& stolenFrom);

  std::vector<Node> nodes_;
  std::vector<std::function<void(std::size_t)>> rangeBodies_;
  std::vector<JobId> deps_;  // flat dep lists, indexed by Node::depBegin

  // Built by run(): successor CSR, pending-dep counters, poison flags.
  // pending/poisoned are touched concurrently by finish() on different
  // workers, hence atomic.
  std::vector<std::uint32_t> succOff_;
  std::vector<JobId> succ_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> pending_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> poisoned_;

  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::mutex idleMu_;
  std::condition_variable idleCv_;
  /// Signed: a thief may pop and finish a job between the moment finish()
  /// pushes it and the moment finish() adds it to this counter, driving the
  /// count transiently negative; the books balance once the admitting
  /// finish() runs. Guarded by idleMu_.
  std::ptrdiff_t readyCount_ = 0;
  std::size_t remaining_ = 0;  // guarded by idleMu_
  std::size_t numWorkers_ = 1;
  // Captured on the submitting thread before workers start (the trace span
  // stack is thread-local); empty when tracing is off or no span is open.
  std::string workerSpanName_;

  std::mutex failMu_;
  JobId failId_ = 0;
  std::exception_ptr failure_;

  std::atomic<std::size_t> executed_{0};
  std::atomic<std::size_t> skipped_{0};
  std::atomic<std::size_t> steals_{0};
  Stats stats_;
  bool ran_ = false;

#if PAO_OBS_ENABLED
  // Hot-path profile capture: each worker appends to its own log, so no
  // lock or atomic is needed beyond what the scheduler already takes.
  struct ProfileEntry {
    JobId id;
    std::int64_t beginNs;
    std::int64_t endNs;
    std::int32_t stolenFrom;
    bool skipped;
  };
  std::vector<std::vector<ProfileEntry>> profileLogs_;
  std::int64_t profileEpochNs_ = 0;
  obs::GraphProfile profile_;
#endif
};

}  // namespace pao::util
