#include "util/jobs.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "util/executor.hpp"

#include "obs/enabled.hpp"
#if PAO_OBS_ENABLED
#include <chrono>
#include <optional>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#endif

namespace pao::util {

namespace {

/// Set while a thread is draining a graph — a nested run() (or parallelFor)
/// sees it and runs inline instead of spawning a second pool.
thread_local bool gInsideJobRun = false;

#if PAO_OBS_ENABLED
std::int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
#endif

}  // namespace

bool JobGraph::insideJob() { return gInsideJobRun; }

JobId JobGraph::addJob(std::function<void()> body,
                       std::span<const JobId> deps) {
  if (ran_) throw std::logic_error("JobGraph::addJob after run()");
  const JobId id = static_cast<JobId>(nodes_.size());
  Node node;
  node.body = std::move(body);
  node.depBegin = static_cast<std::uint32_t>(deps_.size());
  node.depCount = static_cast<std::uint32_t>(deps.size());
  for (JobId d : deps) {
    if (d >= id) {
      throw std::logic_error("JobGraph: dependency must be an earlier job id");
    }
    deps_.push_back(d);
  }
  nodes_.push_back(std::move(node));
  return id;
}

JobId JobGraph::addJobRange(std::size_t n,
                            std::function<void(std::size_t)> body) {
  if (ran_) throw std::logic_error("JobGraph::addJobRange after run()");
  const JobId first = static_cast<JobId>(nodes_.size());
  if (n == 0) return first;
  const std::int32_t bodyIdx = static_cast<std::int32_t>(rangeBodies_.size());
  rangeBodies_.push_back(std::move(body));
  nodes_.reserve(nodes_.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    Node node;
    node.rangeBody = bodyIdx;
    node.rangeIndex = i;
    node.depBegin = static_cast<std::uint32_t>(deps_.size());
    node.depCount = 0;
    nodes_.push_back(std::move(node));
  }
  return first;
}

bool JobGraph::tryPop(std::size_t worker, JobId& out, int& stolenFrom) {
  stolenFrom = -1;
  {
    WorkerDeque& own = *deques_[worker];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.q.empty()) {
      out = own.q.back();  // owner end: LIFO, depth-first
      own.q.pop_back();
      return true;
    }
  }
  for (std::size_t k = 1; k < numWorkers_; ++k) {
    const std::size_t victimIdx = (worker + k) % numWorkers_;
    WorkerDeque& victim = *deques_[victimIdx];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.q.empty()) {
      out = victim.q.front();  // thief end: FIFO, oldest first
      victim.q.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      stolenFrom = static_cast<int>(victimIdx);
      return true;
    }
  }
  return false;
}

void JobGraph::execute(JobId id, std::size_t worker,
                       [[maybe_unused]] int stolenFrom) {
#if PAO_OBS_ENABLED
  const std::int64_t beginNs = nowNs() - profileEpochNs_;
#endif
  Node& node = nodes_[id];
  if (poisoned_[id].load(std::memory_order_acquire) != 0) {
    skipped_.fetch_add(1, std::memory_order_relaxed);
#if PAO_OBS_ENABLED
    profileLogs_[worker].push_back(
        {id, beginNs, beginNs, stolenFrom, /*skipped=*/true});
#endif
    finish(id, /*poisonSuccessors=*/true, worker);
    return;
  }
  bool failed = false;
  try {
    if (node.rangeBody >= 0) {
      rangeBodies_[static_cast<std::size_t>(node.rangeBody)](node.rangeIndex);
    } else {
      node.body();
    }
  } catch (...) {
    failed = true;
    std::lock_guard<std::mutex> lock(failMu_);
    if (!failure_ || id < failId_) {
      failId_ = id;
      failure_ = std::current_exception();
    }
  }
  if (!failed) executed_.fetch_add(1, std::memory_order_relaxed);
#if PAO_OBS_ENABLED
  profileLogs_[worker].push_back(
      {id, beginNs, nowNs() - profileEpochNs_, stolenFrom, /*skipped=*/false});
#endif
  finish(id, failed, worker);
}

void JobGraph::finish(JobId id, bool poisonSuccessors, std::size_t worker) {
  // Collect the successors this completion made ready, then admit them to
  // the finishing worker's own deque back-to-front (descending id), so the
  // owner's LIFO pop visits them in ascending id order.
  JobId readyLocal[8];
  std::size_t readyCountLocal = 0;
  std::vector<JobId> readyOverflow;
  for (std::uint32_t s = succOff_[id]; s < succOff_[id + 1]; ++s) {
    const JobId succId = succ_[s];
    if (poisonSuccessors) {
      poisoned_[succId].store(1, std::memory_order_release);
    }
    if (pending_[succId].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      if (readyCountLocal < 8) {
        readyLocal[readyCountLocal++] = succId;
      } else {
        readyOverflow.push_back(succId);
      }
    }
  }
  const std::size_t admitted = readyCountLocal + readyOverflow.size();
  if (admitted > 0) {
    WorkerDeque& own = *deques_[worker];
    std::lock_guard<std::mutex> lock(own.mu);
    for (std::size_t i = readyOverflow.size(); i-- > 0;) {
      own.q.push_back(readyOverflow[i]);
    }
    for (std::size_t i = readyCountLocal; i-- > 0;) {
      own.q.push_back(readyLocal[i]);
    }
  }
  bool done = false;
  {
    std::lock_guard<std::mutex> lock(idleMu_);
    readyCount_ += static_cast<std::ptrdiff_t>(admitted);
    --remaining_;
    done = (remaining_ == 0);
  }
  if (admitted > 0 || done) idleCv_.notify_all();
}

void JobGraph::workerLoop(std::size_t worker) {
  for (;;) {
    JobId id = 0;
    int stolenFrom = -1;
    if (tryPop(worker, id, stolenFrom)) {
      {
        std::lock_guard<std::mutex> lock(idleMu_);
        --readyCount_;
      }
      execute(id, worker, stolenFrom);
      continue;
    }
    std::unique_lock<std::mutex> lock(idleMu_);
    if (remaining_ == 0) return;
    if (readyCount_ <= 0) {
      idleCv_.wait(lock, [&] { return remaining_ == 0 || readyCount_ > 0; });
      if (remaining_ == 0) return;
    }
    // Ready work exists somewhere; loop back and try the deques again.
  }
}

void JobGraph::run(int numThreads) {
  if (ran_) throw std::logic_error("JobGraph::run is one-shot");
  ran_ = true;
  stats_.jobs = nodes_.size();
  if (nodes_.empty()) return;

  const std::size_t n = nodes_.size();

  // Successor CSR from the flat dependency lists.
  succOff_.assign(n + 1, 0);
  for (const Node& node : nodes_) {
    for (std::uint32_t d = 0; d < node.depCount; ++d) {
      ++succOff_[deps_[node.depBegin + d] + 1];
    }
  }
  for (std::size_t i = 1; i <= n; ++i) succOff_[i] += succOff_[i - 1];
  succ_.resize(deps_.size());
  {
    std::vector<std::uint32_t> cursor(succOff_.begin(), succOff_.end() - 1);
    for (JobId id = 0; id < n; ++id) {
      const Node& node = nodes_[id];
      for (std::uint32_t d = 0; d < node.depCount; ++d) {
        succ_[cursor[deps_[node.depBegin + d]]++] = id;
      }
    }
  }

  pending_ = std::make_unique<std::atomic<std::uint32_t>[]>(n);
  poisoned_ = std::make_unique<std::atomic<std::uint8_t>[]>(n);
  for (std::size_t i = 0; i < n; ++i) {
    pending_[i].store(nodes_[i].depCount, std::memory_order_relaxed);
    poisoned_[i].store(0, std::memory_order_relaxed);
  }

  const bool nested = gInsideJobRun;
  numWorkers_ =
      nested ? 1
             : std::min<std::size_t>(
                   static_cast<std::size_t>(resolveThreads(numThreads)), n);
  if (numWorkers_ == 0) numWorkers_ = 1;
  deques_.clear();
  for (std::size_t w = 0; w < numWorkers_; ++w) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }

#if PAO_OBS_ENABLED
  profileEpochNs_ = nowNs();
  // Epoch on the tracer's clock too, so recordProfileTrace can place job
  // spans on the same timeline as the ordinary phase spans. 0 = tracing off.
  profile_.epochUs = obs::Tracer::instance().enabled()
                         ? obs::Tracer::instance().nowUs()
                         : 0;
  profileLogs_.assign(numWorkers_, {});
  for (auto& log : profileLogs_) log.reserve(n / numWorkers_ + 8);
#endif

  // Seed the initially-ready jobs round-robin across workers, each deque
  // filled in descending id order so the owner's LIFO pop starts at its
  // lowest id. With one worker this makes the serial schedule "ascending
  // among the initially ready, depth-first after each completion".
  std::vector<JobId> ready;
  for (JobId id = 0; id < n; ++id) {
    if (nodes_[id].depCount == 0) ready.push_back(id);
  }
  for (std::size_t i = ready.size(); i-- > 0;) {
    deques_[i % numWorkers_]->q.push_back(ready[i]);
  }
  remaining_ = n;
  readyCount_ = static_cast<std::ptrdiff_t>(ready.size());

  const bool wasInside = gInsideJobRun;
  gInsideJobRun = true;
  if (numWorkers_ <= 1) {
    workerLoop(0);
  } else {
#if PAO_OBS_ENABLED
    // Name worker spans after the submitting thread's innermost open span
    // (e.g. "oracle.pipeline" -> "oracle.pipeline.worker") so trace viewers
    // group worker activity under its phase. Captured here, before workers
    // start, because the span stack is thread-local to the submitter.
    if (obs::Tracer::instance().enabled()) {
      const std::string parent = obs::Tracer::currentSpanName();
      if (!parent.empty()) workerSpanName_ = parent + ".worker";
    }
#endif
    const auto drain = [this](std::size_t worker) {
      gInsideJobRun = true;
#if PAO_OBS_ENABLED
      std::optional<obs::TraceScope> workerSpan;
      if (!workerSpanName_.empty()) {
        workerSpan.emplace(workerSpanName_, obs::Json());
      }
#endif
      workerLoop(worker);
      gInsideJobRun = false;
    };
    std::vector<std::thread> pool;
    pool.reserve(numWorkers_ - 1);
    for (std::size_t w = 1; w < numWorkers_; ++w) {
      pool.emplace_back(drain, w);
    }
    drain(0);  // the calling thread works too
    for (std::thread& t : pool) t.join();
  }
  gInsideJobRun = wasInside;

  stats_.executed = executed_.load(std::memory_order_relaxed);
  stats_.skipped = skipped_.load(std::memory_order_relaxed);
  stats_.steals = steals_.load(std::memory_order_relaxed);

#if PAO_OBS_ENABLED
  // Assemble the per-worker logs into one indexed-by-id profile. Runs after
  // the drain on the submitting thread — no worker is still writing.
  profile_.nodes.assign(n, obs::ProfileNode{});
  for (std::size_t w = 0; w < profileLogs_.size(); ++w) {
    for (const ProfileEntry& e : profileLogs_[w]) {
      obs::ProfileNode& pn = profile_.nodes[e.id];
      pn.beginNs = e.beginNs;
      pn.endNs = e.endNs;
      pn.worker = static_cast<std::int32_t>(w);
      pn.stolenFrom = e.stolenFrom;
      pn.skipped = e.skipped;
    }
  }
  profile_.depOff.resize(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    profile_.depOff[i] = nodes_[i].depBegin;
  }
  profile_.depOff[n] = static_cast<std::uint32_t>(deps_.size());
  profile_.deps = deps_;
  profile_.workers = static_cast<int>(numWorkers_);
  profile_.wallNs = nowNs() - profileEpochNs_;
  profile_.steals = stats_.steals;
  PAO_COUNTER_ADD("pao.jobs.executed",
                  static_cast<long long>(stats_.executed));
  PAO_COUNTER_ADD("pao.jobs.skipped", static_cast<long long>(stats_.skipped));
#endif

  if (failure_) std::rethrow_exception(failure_);
}

}  // namespace pao::util
