#include "util/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/enabled.hpp"
#if PAO_OBS_ENABLED
#include <optional>
#include <string>

#include "obs/trace.hpp"
#endif

namespace pao::util {

namespace {

/// Set while a thread is draining a parallelFor — a nested call sees it and
/// runs inline instead of spawning a second pool.
thread_local bool gInsideParallelFor = false;

}  // namespace

int resolveThreads(int numThreads) {
  if (numThreads >= 1) return numThreads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 int numThreads) {
  if (n == 0) return;

  // First-failing-index exception, independent of schedule.
  std::mutex failMu;
  std::size_t failIdx = n;
  std::exception_ptr failure;
  const auto recordFailure = [&](std::size_t i) {
    std::lock_guard<std::mutex> lock(failMu);
    if (i < failIdx) {
      failIdx = i;
      failure = std::current_exception();
    }
  };

  const int workers =
      gInsideParallelFor
          ? 1
          : static_cast<int>(std::min<std::size_t>(
                static_cast<std::size_t>(resolveThreads(numThreads)), n));

  if (workers <= 1) {
    const bool wasInside = gInsideParallelFor;
    gInsideParallelFor = true;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        recordFailure(i);
      }
    }
    gInsideParallelFor = wasInside;
  } else {
#if PAO_OBS_ENABLED
    // Name worker spans after the submitting thread's innermost open span
    // (e.g. "oracle.steps12" -> "oracle.steps12.worker") so Perfetto groups
    // worker activity under its phase. Captured here, before workers start,
    // because the stack is thread-local to the submitter.
    std::string workerSpanName;
    if (obs::Tracer::instance().enabled()) {
      const std::string parent = obs::Tracer::currentSpanName();
      if (!parent.empty()) workerSpanName = parent + ".worker";
    }
#endif
    std::atomic<std::size_t> next{0};
    const auto drain = [&] {
      gInsideParallelFor = true;
#if PAO_OBS_ENABLED
      std::optional<obs::TraceScope> workerSpan;
      if (!workerSpanName.empty()) {
        workerSpan.emplace(workerSpanName, obs::Json());
      }
#endif
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        try {
          fn(i);
        } catch (...) {
          recordFailure(i);
        }
      }
      gInsideParallelFor = false;
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (int t = 1; t < workers; ++t) pool.emplace_back(drain);
    drain();  // the calling thread works too
    for (std::thread& t : pool) t.join();
  }

  if (failure) std::rethrow_exception(failure);
}

}  // namespace pao::util
