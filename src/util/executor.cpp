#include "util/executor.hpp"

#include <thread>

#include "util/jobs.hpp"

namespace pao::util {

int resolveThreads(int numThreads) {
  if (numThreads >= 1) return numThreads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 int numThreads) {
  if (n == 0) return;
  // A single-layer graph: n dependency-free jobs sharing one body. The
  // graph's contract subsumes the old fork-join one — every index is
  // attempted, the lowest failing index's exception is rethrown, and a
  // nested call degrades to serial on the calling worker.
  JobGraph graph;
  graph.addJobRange(n, fn);
  graph.run(numThreads);
}

}  // namespace pao::util
