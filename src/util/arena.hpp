// Bump/arena allocation for per-class and per-job scratch (ROADMAP item 2's
// memory half). The hot paths — AP candidate generation, pattern/cluster DP
// tables, DRC shard scratch — allocate many short-lived vectors whose
// lifetimes all end when the enclosing job finishes. An Arena turns each of
// those heap round-trips into a pointer bump inside a reusable block:
//
//   * Arena owns a chain of geometrically-growing blocks. allocate() bumps;
//     nothing is freed until rewind()/reset(), which just resets the bump
//     cursor and keeps the blocks for the next job.
//   * ArenaScope is the lifetime rule: take a watermark on entry, rewind on
//     exit. Scopes nest (inner scratch dies before outer scratch), which is
//     exactly the nesting of job bodies calling helpers.
//   * scratchArena() hands every thread its own Arena, so job bodies never
//     contend. Workers die with their pool; their arenas go with them.
//   * ArenaAllocator<T> adapts an Arena to the std allocator interface so
//     existing std::vector code converts by swapping the allocator
//     (ArenaVector<T>). Deallocation is a no-op — memory dies at scope exit.
//
// Determinism note: bytesRequested() is a schedule-invariant measure of how
// much scratch the workload asked for (same work => same total), but block
// counts are per-thread and NOT schedule-invariant; neither is registered
// with the obs metrics registry. They surface only through bench reports.
//
// The global bypass switch routes ArenaAllocator through plain operator
// new/delete so benches can measure the no-arena baseline through the SAME
// code path (bench_pipeline's allocation-count comparison). The choice is
// captured per allocator instance at construction, so a container built
// while bypass was on frees through the heap even if the switch flips later.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace pao::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() = default;

  /// Bump-allocates `bytes` aligned to `align` (power of two). Grows a new
  /// block when the current one is exhausted; oversize requests get a
  /// dedicated block. Never returns nullptr (throws std::bad_alloc).
  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    gBytesRequested.fetch_add(bytes, std::memory_order_relaxed);
    while (cur_ < blocks_.size()) {
      Block& b = blocks_[cur_];
      const std::size_t aligned = alignUp(off_, align);
      if (aligned + bytes <= b.size) {
        off_ = aligned + bytes;
        return b.data.get() + aligned;
      }
      // Current block exhausted for this request: move to the next (its
      // cursor starts at 0 — earlier blocks stay live until rewind).
      ++cur_;
      off_ = 0;
    }
    addBlock(bytes + align);
    Block& b = blocks_[cur_];
    const std::size_t aligned = alignUp(0, align);
    off_ = aligned + bytes;
    return b.data.get() + aligned;
  }

  /// Watermark for ArenaScope: (block index, bump offset).
  struct Mark {
    std::size_t block = 0;
    std::size_t offset = 0;
  };

  Mark mark() const { return Mark{cur_, off_}; }

  /// Rewinds the bump cursor to a previously taken mark. Blocks are kept
  /// for reuse; every allocation made after the mark is dead afterwards.
  void rewind(Mark m) {
    cur_ = m.block;
    off_ = m.offset;
  }

  /// Rewinds everything (blocks retained).
  void reset() { rewind(Mark{}); }

  std::size_t blockCount() const { return blocks_.size(); }

  std::size_t capacityBytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  /// Process-wide toggle: when on, ArenaAllocator instances constructed from
  /// then on use the heap instead of the arena. Benches only.
  static void setBypass(bool on) {
    gBypass.store(on, std::memory_order_relaxed);
  }
  static bool bypass() { return gBypass.load(std::memory_order_relaxed); }

  /// Cumulative bytes requested from all arenas (schedule-invariant for a
  /// fixed workload; see header comment). Bench-only counter.
  static std::uint64_t bytesRequested() {
    return gBytesRequested.load(std::memory_order_relaxed);
  }
  static void resetBytesRequested() {
    gBytesRequested.store(0, std::memory_order_relaxed);
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  static std::size_t alignUp(std::size_t v, std::size_t align) {
    return (v + align - 1) & ~(align - 1);
  }

  void addBlock(std::size_t minBytes) {
    std::size_t size = blocks_.empty() ? kDefaultBlockBytes
                                       : blocks_.back().size * 2;
    if (size < minBytes) size = minBytes;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    cur_ = blocks_.size() - 1;
    off_ = 0;
  }

  std::vector<Block> blocks_;
  std::size_t cur_ = 0;
  std::size_t off_ = 0;

  inline static std::atomic<bool> gBypass{false};
  inline static std::atomic<std::uint64_t> gBytesRequested{0};
};

/// RAII lifetime rule for arena scratch: everything allocated between
/// construction and destruction dies at destruction. Scopes nest.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
  ~ArenaScope() { arena_.rewind(mark_); }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// Each thread's private scratch arena. Job bodies reach it through
/// ArenaScope + ArenaVector; no cross-thread sharing, no contention.
inline Arena& scratchArena() {
  thread_local Arena arena;
  return arena;
}

/// std-allocator adapter. arena_ == nullptr means "heap" (the bypass mode,
/// captured at construction — see header comment). Deallocation through an
/// arena is a no-op; the enclosing ArenaScope reclaims.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  /// Binds to the calling thread's scratch arena unless bypass is on.
  ArenaAllocator() : arena_(Arena::bypass() ? nullptr : &scratchArena()) {}
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (arena_ == nullptr) {
      return static_cast<T*>(::operator new(bytes, std::align_val_t{alignof(T)}));
    }
    return static_cast<T*>(arena_->allocate(bytes, alignof(T)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) {
      ::operator delete(p, std::align_val_t{alignof(T)});
    }
    // Arena memory dies at ArenaScope exit.
  }

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

/// Vector whose backing store lives in the thread's scratch arena (or the
/// heap under bypass). Use inside an ArenaScope; do not return across it.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace pao::util
