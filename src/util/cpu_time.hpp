// Per-thread CPU clock. Complements steady_clock wall time in the oracle
// timing fields: step1/step2 run per-class on worker threads, so the summed
// per-class numbers are CPU seconds (they exceed wall time under --threads
// N), while whole-phase numbers are wall seconds. Reports carry both; see
// OracleResult in src/pao/oracle.hpp.
#pragma once

namespace pao::util {

/// CPU seconds consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID).
/// Falls back to 0.0 where the clock is unavailable.
double threadCpuSeconds();

}  // namespace pao::util
