// Per-thread CPU clock. Complements steady_clock wall time in the oracle
// timing fields: step1/step2 run per-class on worker threads, so the summed
// per-class numbers are CPU seconds (they exceed wall time under --threads
// N), while whole-phase numbers are wall seconds. Reports carry both; see
// OracleResult in src/pao/oracle.hpp.
#pragma once

#include <cstdint>

namespace pao::util {

/// CPU seconds consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID).
/// Falls back to 0.0 where the clock is unavailable.
double threadCpuSeconds();

/// Peak resident set size of the process in bytes (VmHWM from
/// /proc/self/status, falling back to getrusage ru_maxrss). 0 where
/// neither source is available. This is a high-water mark: it only grows,
/// so scale benches sample it once after the phase under test.
std::uint64_t peakRssBytes();

}  // namespace pao::util
