// Located diagnostics for the LEF/DEF front end (and any other text
// input the tool ingests).
//
// A Diag carries everything needed to render a compiler-style message:
//
//   test.lef:6:9: error: [LEX003] expected number, got 'x'
//     6 |   PITCH x ;
//       |         ^
//
// The one-line header() is the stable, golden-testable part; format()
// appends the source excerpt and caret when the location is known. Error
// codes are stable identifiers (LEX*, DEF*, GEN*) documented in DESIGN.md
// "Robustness & failure semantics" — tests and downstream tooling key off
// the code, never the message text.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pao::util {

enum class Severity {
  kWarning,
  kError,
};

/// A 1-based position in a named input. line == 0 means "no location"
/// (e.g. a semantic error with no surviving token position).
struct SourceLoc {
  std::string file = "<input>";
  std::size_t line = 0;
  std::size_t col = 0;
};

struct Diag {
  Severity severity = Severity::kError;
  std::string code;     ///< stable identifier, e.g. "LEX002" or "DEF001"
  SourceLoc loc;
  std::string message;  ///< human-readable, no location/code prefix
  std::string excerpt;  ///< the source line loc points into ("" = none)

  /// "file:line:col: error: [CODE] message" ("file: error: ..." when the
  /// line is unknown). This is the golden-tested form.
  std::string header() const;
  /// header() plus a two-line excerpt/caret block when available.
  std::string format() const;
};

/// Ordered accumulator used by recovery-mode parsing.
class DiagSink {
 public:
  void add(Diag d);
  const std::vector<Diag>& diags() const { return diags_; }
  std::size_t errorCount() const { return errors_; }
  bool hasErrors() const { return errors_ > 0; }

 private:
  std::vector<Diag> diags_;
  std::size_t errors_ = 0;
};

}  // namespace pao::util
