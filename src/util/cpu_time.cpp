#include "util/cpu_time.hpp"

#include <cstdio>
#include <cstring>
#include <ctime>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace pao::util {

double threadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return 0.0;
#endif
}

std::uint64_t peakRssBytes() {
  // VmHWM is the kernel's own high-water mark and survives allocator
  // free()s that never return pages; prefer it where procfs exists.
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    std::uint64_t kb = 0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::strncmp(line, "VmHWM:", 6) == 0 &&
          std::sscanf(line + 6, "%llu",
                      reinterpret_cast<unsigned long long*>(&kb)) == 1) {
        std::fclose(f);
        return kb * 1024;
      }
    }
    std::fclose(f);
  }
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    // ru_maxrss is kilobytes on Linux, bytes on macOS.
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss);
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

}  // namespace pao::util
