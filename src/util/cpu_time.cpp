#include "util/cpu_time.hpp"

#include <ctime>

namespace pao::util {

double threadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return 0.0;
#endif
}

}  // namespace pao::util
