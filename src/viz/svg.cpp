#include "viz/svg.hpp"

#include <sstream>

namespace pao::viz {

namespace {

/// Distinct hues per routing layer (cycled), in the familiar
/// metal-colormap tradition: M1 blue, M2 red, M3 green, M4 orange, ...
const char* kLayerColors[] = {"#3b6fd4", "#d43b3b", "#3bb54a", "#e08a2e",
                              "#9b59b6", "#16a2a2", "#c2527e", "#7d8a2e",
                              "#5d6d7e"};

const char* layerColor(const db::Tech& tech, int layerIdx) {
  // Color by routing-layer ordinal so cut layers inherit the bottom metal.
  int ordinal = 0;
  for (int i = 0; i <= layerIdx && i < static_cast<int>(tech.layers().size());
       ++i) {
    if (tech.layers()[i].type == db::LayerType::kRouting && i < layerIdx) {
      ++ordinal;
    }
  }
  return kLayerColors[ordinal % (sizeof(kLayerColors) /
                                 sizeof(kLayerColors[0]))];
}

}  // namespace

std::string renderRegion(const db::Design& design, geom::Rect window,
                         const std::vector<VizShape>& extra,
                         const std::vector<drc::Violation>& violations,
                         const SvgOptions& options) {
  const double s = options.scale;
  const double w = static_cast<double>(window.width()) * s;
  const double h = static_cast<double>(window.height()) * s;

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w
     << "\" height=\"" << h << "\" viewBox=\"0 0 " << w << " " << h
     << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"#fafafa\"/>\n";

  // SVG y grows downward; layout y grows upward.
  const auto px = [&](geom::Coord x) {
    return (static_cast<double>(x - window.xlo)) * s;
  };
  const auto py = [&](geom::Coord y) {
    return h - (static_cast<double>(y - window.ylo)) * s;
  };
  const auto emitRect = [&](const geom::Rect& r, const std::string& fill,
                            double opacity, const std::string& stroke = "",
                            bool dashed = false) {
    const geom::Rect c = r.intersect(window);
    if (c.empty()) return;
    os << "<rect x=\"" << px(c.xlo) << "\" y=\"" << py(c.yhi) << "\" width=\""
       << static_cast<double>(c.width()) * s << "\" height=\""
       << static_cast<double>(c.height()) * s << "\" fill=\""
       << (fill.empty() ? "none" : fill) << "\" fill-opacity=\"" << opacity
       << "\"";
    if (!stroke.empty()) {
      os << " stroke=\"" << stroke << "\" stroke-width=\"1\"";
      if (dashed) os << " stroke-dasharray=\"4 2\"";
    }
    os << "/>\n";
  };
  const auto layerOk = [&](int layer) {
    return options.maxLayer < 0 || layer <= options.maxLayer;
  };

  // Instance outlines + fixed geometry.
  for (const db::Instance& inst : design.instances) {
    const geom::Rect bbox = inst.bbox();
    if (!bbox.intersects(window)) continue;
    if (options.drawInstances) {
      emitRect(bbox, "", 0.0, "#999999");
      const geom::Rect c = bbox.intersect(window);
      os << "<text x=\"" << px(c.xlo) + 2 << "\" y=\"" << py(c.ylo) - 2
         << "\" font-size=\"8\" fill=\"#666666\">" << inst.name
         << "</text>\n";
    }
    const geom::Transform xf = inst.transform();
    for (const db::Pin& pin : inst.master->pins) {
      const bool supply =
          pin.use == db::PinUse::kPower || pin.use == db::PinUse::kGround;
      for (const db::PinShape& shape : pin.shapes) {
        if (!layerOk(shape.layer)) continue;
        emitRect(xf.apply(shape.rect),
                 layerColor(*design.tech, shape.layer), supply ? 0.15 : 0.45);
      }
    }
    for (const db::Obstruction& o : inst.master->obstructions) {
      if (!layerOk(o.layer)) continue;
      emitRect(xf.apply(o.rect), "#555555", 0.25);
    }
  }

  // Extra (routed) shapes.
  for (const VizShape& shape : extra) {
    if (!layerOk(shape.layer)) continue;
    const char* color = layerColor(*design.tech, shape.layer);
    switch (shape.kind) {
      case VizShape::Kind::kAccessVia:
        emitRect(shape.rect, color, 0.9, "#000000");
        break;
      case VizShape::Kind::kVia:
        emitRect(shape.rect, color, 0.8);
        break;
      case VizShape::Kind::kWire:
        emitRect(shape.rect, color, 0.55);
        break;
      case VizShape::Kind::kPin:
        emitRect(shape.rect, color, 0.45);
        break;
      case VizShape::Kind::kObstruction:
        emitRect(shape.rect, "#555555", 0.25);
        break;
    }
  }

  // Violations: dashed red boxes, Fig. 8 style.
  for (const drc::Violation& v : violations) {
    emitRect(v.bbox.bloat(20), "", 0.0, "#e00000", /*dashed=*/true);
  }

  os << "</svg>\n";
  return os.str();
}

}  // namespace pao::viz
