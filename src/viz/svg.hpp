// SVG snapshots of layout regions: fixed cell geometry, routed metal,
// access vias and DRC markers — the medium of the paper's Fig. 8 ("dashed
// red boxes are DRCs") for visual inspection of pin access quality.
#pragma once

#include <string>
#include <vector>

#include "db/design.hpp"
#include "drc/violation.hpp"

namespace pao::viz {

/// A shape to draw, independent of which subsystem produced it.
struct VizShape {
  geom::Rect rect;
  int layer = -1;  ///< tech layer index (drives the color)
  enum class Kind {
    kPin,
    kObstruction,
    kWire,
    kVia,
    kAccessVia,
  } kind = Kind::kWire;
};

struct SvgOptions {
  /// Pixels per DBU.
  double scale = 0.02;
  /// Include instance outlines and names.
  bool drawInstances = true;
  /// Restrict drawn layers to at most this routing-layer index (-1 = all).
  int maxLayer = -1;
};

/// Renders `window` of the design (instances, their pin/obs geometry) plus
/// the extra shapes and violation markers into a standalone SVG document.
std::string renderRegion(const db::Design& design, geom::Rect window,
                         const std::vector<VizShape>& extra,
                         const std::vector<drc::Violation>& violations,
                         const SvgOptions& options = {});

}  // namespace pao::viz
