#include "router/access_source.hpp"

namespace pao::router {

using core::AccessPoint;
using geom::Point;

AccessSource::AccessSource(const db::Design& design,
                           const core::OracleResult& result, AccessMode mode)
    : design_(&design), result_(&result), mode_(mode) {
  buildCentroids();
}

AccessSource::AccessSource(const db::Design& design,
                           const core::OracleSession& session, AccessMode mode)
    : design_(&design), session_(&session), mode_(mode) {
  buildCentroids();
}

void AccessSource::buildCentroids() {
  if (mode_ != AccessMode::kGreedyNearest) return;
  // Precompute, for every net-attached pin, the centroid of the other pins
  // of its net (the direction a greedy per-pin selector pulls toward).
  for (const db::Net& net : design_->nets) {
    std::vector<std::pair<std::pair<int, int>, Point>> members;
    geom::Coord sx = 0;
    geom::Coord sy = 0;
    for (const db::NetTerm& t : net.terms) {
      if (t.isIo()) {
        sx += design_->ioPins[t.ioPinIdx].rect.center().x;
        sy += design_->ioPins[t.ioPinIdx].rect.center().y;
        continue;
      }
      const db::Instance& inst = design_->instances[t.instIdx];
      const db::Master& master = *inst.master;
      // Map the master pin index to its signal-pin position.
      const std::vector<int> sig = master.signalPinIndices();
      int pos = -1;
      for (int i = 0; i < static_cast<int>(sig.size()); ++i) {
        if (sig[i] == t.pinIdx) pos = i;
      }
      const Point c = inst.transform().apply(
          master.pins[t.pinIdx].bbox().center());
      members.push_back({{t.instIdx, pos}, c});
      sx += c.x;
      sy += c.y;
    }
    const geom::Coord n = static_cast<geom::Coord>(net.terms.size());
    if (n == 0) continue;
    for (const auto& [key, c] : members) {
      if (key.second < 0) continue;
      centroid_[key] = Point{sx / n, sy / n};
    }
  }
}

int AccessSource::classOf(int instIdx) const {
  return session_ != nullptr ? session_->unique().classOf[instIdx]
                             : result_->unique.classOf[instIdx];
}

const core::ClassAccess& AccessSource::classAccess(int cls) const {
  return session_ != nullptr ? session_->classAccess(cls)
                             : result_->classes[cls];
}

Point AccessSource::placeDelta(int instIdx, int cls) const {
  // Session classes are origin-relative; batch-result classes are stored in
  // the representative's design coordinates.
  if (session_ != nullptr) return design_->instances[instIdx].origin;
  const db::UniqueInstance& ui = result_->unique.classes[cls];
  return design_->instances[instIdx].origin -
         design_->instances[ui.representative].origin;
}

std::optional<PinContact> AccessSource::fromAp(int instIdx,
                                               const AccessPoint& ap) const {
  if (ap.primaryVia(*design_->tech) == nullptr) return std::nullopt;
  const Point delta = placeDelta(instIdx, classOf(instIdx));
  return PinContact{ap.primaryVia(*design_->tech), ap.loc + delta};
}

std::optional<PinContact> AccessSource::contact(int instIdx,
                                                int sigPinPos) const {
  const int cls = classOf(instIdx);
  if (cls < 0) return std::nullopt;
  const core::ClassAccess& ca = classAccess(cls);
  if (sigPinPos >= static_cast<int>(ca.pinAps.size()) ||
      ca.pinAps[sigPinPos].empty()) {
    return std::nullopt;
  }

  switch (mode_) {
    case AccessMode::kFirstAp:
      return fromAp(instIdx, ca.pinAps[sigPinPos].front());
    case AccessMode::kGreedyNearest: {
      const auto it = centroid_.find({instIdx, sigPinPos});
      const Point target =
          it != centroid_.end()
              ? it->second
              : design_->instances[instIdx].bbox().center();
      const Point delta = placeDelta(instIdx, cls);
      const AccessPoint* best = nullptr;
      geom::Coord bestDist = geom::kCoordMax;
      for (const AccessPoint& ap : ca.pinAps[sigPinPos]) {
        if (ap.primaryVia(*design_->tech) == nullptr) continue;
        const geom::Coord d = geom::manhattanDist(ap.loc + delta, target);
        if (d < bestDist) {
          bestDist = d;
          best = &ap;
        }
      }
      if (best == nullptr) return std::nullopt;
      return fromAp(instIdx, *best);
    }
    case AccessMode::kPattern: {
      const auto chosen =
          session_ != nullptr
              ? session_->chosenAp(instIdx, sigPinPos)
              : result_->chosenAp(*design_, instIdx, sigPinPos);
      if (!chosen || chosen->ap->primaryVia(*design_->tech) == nullptr) {
        return std::nullopt;
      }
      return PinContact{chosen->ap->primaryVia(*design_->tech), chosen->loc};
    }
  }
  return std::nullopt;
}

}  // namespace pao::router
