// Track-aligned 3D routing grid. Node (layer, xi, yi) lives on the global
// coordinate sets xs/ys (the finest vertical/horizontal track grids in the
// design); a layer only admits nodes whose across-direction coordinate lies
// on one of that layer's own tracks. Edges run along each layer's preferred
// direction plus vias between vertically adjacent routing layers.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "db/design.hpp"

namespace pao::router {

using NodeKey = std::uint64_t;

struct Node {
  int layer = -1;  ///< routing layer index into Tech::layers()
  int xi = -1;     ///< index into xs()
  int yi = -1;     ///< index into ys()

  friend bool operator==(const Node&, const Node&) = default;
};

class RoutingGrid {
 public:
  explicit RoutingGrid(const db::Design& design);

  const std::vector<geom::Coord>& xs() const { return xs_; }
  const std::vector<geom::Coord>& ys() const { return ys_; }

  geom::Point pointOf(const Node& n) const {
    return {xs_[n.xi], ys_[n.yi]};
  }
  NodeKey keyOf(const Node& n) const {
    return (static_cast<NodeKey>(n.layer) << 48) |
           (static_cast<NodeKey>(n.xi) << 24) | static_cast<NodeKey>(n.yi);
  }

  /// True when the layer admits a node at this across-direction index.
  bool valid(const Node& n) const;
  /// Nearest valid node to `p` on `layer`.
  Node snap(int layer, geom::Point p) const;

  /// Occupancy: a node claimed by net `net` blocks every other net.
  void occupy(const Node& n, int net);
  /// Returns the net occupying `n`, or kFree.
  int occupant(const Node& n) const;
  static constexpr int kFree = -2;

  /// Marks nodes near fixed metal of net `net` (kObsNet blocks everyone).
  /// Nodes within `wireHalo` (isotropic) become unusable for foreign WIRES;
  /// nodes within the anisotropic (viaHaloX, viaHaloY) — matching the via
  /// enclosure's asymmetric reach — become unusable for foreign VIA
  /// landings.
  void blockFixedShape(const geom::Rect& r, int layer, int net,
                       geom::Coord wireHalo, geom::Coord viaHaloX,
                       geom::Coord viaHaloY);
  /// True when `net` may not run a wire through node `n`.
  bool blockedFor(const Node& n, int net) const;
  /// True when `net` may not land a via at node `n`.
  bool viaBlockedFor(const Node& n, int net) const;
  /// True when node `n` is blocked by an obstruction (or an owner overflow)
  /// rather than by another net's halo — crossing it means real metal
  /// overlap, not merely a spacing risk.
  bool hardBlocked(const Node& n) const;

  /// Whether wires on `layer` run horizontally.
  bool horizontal(int layer) const { return horiz_.at(layer); }
  int numLayers() const { return static_cast<int>(horiz_.size()); }

 private:
  int indexNear(const std::vector<geom::Coord>& v, geom::Coord c) const;

  const db::Design* design_;
  std::vector<geom::Coord> xs_;
  std::vector<geom::Coord> ys_;
  std::vector<bool> horiz_;          ///< per tech layer index
  std::vector<bool> isRouting_;      ///< per tech layer index
  /// Per layer: which x (vertical layers) / y (horizontal) indices carry a
  /// track of that layer.
  std::vector<std::vector<bool>> onLayerTrack_;
  std::unordered_map<NodeKey, int> occupancy_;
  /// Blockage entry: up to two distinct owner nets can share a node's halo
  /// (their own shapes); a third distinct owner collapses it to obs. A node
  /// is blocked for net N when any stored owner differs from N.
  struct Owners {
    int a = kFree;
    int b = kFree;
  };
  static void addOwner(Owners& o, int net);
  static bool blocksNet(const Owners& o, int net);
  std::unordered_map<NodeKey, Owners> blocked_;
  std::unordered_map<NodeKey, Owners> viaBlocked_;
};

}  // namespace pao::router
