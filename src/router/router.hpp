// A compact track-based detailed router (the TritonRoute stand-in of
// Experiment 3). Nets are routed one by one with multi-target A* over the
// routing grid; pins are entered through the access vias supplied by an
// AccessSource. The routed layout (wires + vias + pin/obstruction context)
// is DRC-counted with the full engine — the #DRC metric of Experiment 3.
#pragma once

#include <map>
#include <vector>

#include "drc/engine.hpp"
#include "drc/region_query.hpp"
#include "router/access_source.hpp"
#include "router/grid.hpp"

namespace pao::router {

struct RouteShape {
  geom::Rect rect;
  int layer = -1;
  int net = -1;
  bool isVia = false;
  /// Shape belongs to a pin-access via or its landing patch.
  bool isAccess = false;
};

struct RouteStats {
  std::size_t routedNets = 0;
  std::size_t failedNets = 0;   ///< no path found for at least one term
  std::size_t rippedNets = 0;   ///< nets re-routed by rip-up passes
  std::size_t skippedTerms = 0; ///< terms with no usable pin access
  std::size_t wireShapes = 0;
  std::size_t viaCount = 0;
  /// Path searches that hit the expansion cap vs exhausted the frontier.
  std::size_t searchCapAborts = 0;
  std::size_t searchExhausted = 0;
  /// Terminals that needed the relaxed (blockage-as-cost) retry.
  std::size_t relaxedRetries = 0;
  double seconds = 0;
};

struct RouteResult {
  std::vector<RouteShape> shapes;
  RouteStats stats;
  std::vector<drc::Violation> violations;  ///< full-layout DRC afterwards
  /// Violations whose marker touches a pin-access via or landing patch —
  /// the pin-access-quality signal Experiment 3 compares (the remainder is
  /// router noise independent of the access source).
  std::size_t accessViolations = 0;
};

struct RouterConfig {
  /// Cost of one via transition relative to one grid step.
  long long viaCost = 4;
  /// Keep wires off the lowest routing layer (M1 belongs to the cells and
  /// the access vias); set false to allow M1 routing.
  bool reserveBottomLayer = true;
  /// Abandon a net term after exploring this many nodes.
  std::size_t maxExpansions = 200000;
  /// Highest routing layer to use (tech layer index; -1 = all).
  int maxLayer = -1;
  /// Run the final full-layout DRC count.
  bool countDrcs = true;
  /// Rip-up-and-reroute passes over nets whose wiring participates in DRC
  /// violations (0 disables; requires countDrcs).
  int ripupPasses = 5;
  /// Worker threads for the per-net access planning phase and the batch DRC
  /// passes. Wire routing itself stays serial (net order is the determinism
  /// contract), so the routed output is bit-identical for any thread count.
  /// 1 = serial; 0 = hardware concurrency.
  int numThreads = 1;
};

class DetailedRouter {
 public:
  DetailedRouter(const db::Design& design, const AccessSource& access,
                 RouterConfig cfg = {});

  RouteResult run();

 private:
  /// Everything phase 1 wants to do for one net, precomputed without
  /// touching shared state: the access-via and landing-patch shapes, the
  /// terminal grid nodes, and the stat deltas. Plans only read the access
  /// source and construction-time grid geometry, so all nets plan in
  /// parallel; committing stays serial in net order.
  struct TermPlan {
    int netIdx = -1;
    std::vector<RouteShape> shapes;
    std::vector<Node> termNodes;
    std::vector<Node> occupyNodes;  ///< instance-term nodes to claim
    std::size_t skippedTerms = 0;
    std::size_t viaCount = 0;
    std::size_t wireShapes = 0;
  };
  /// Computes the access placement of every term of `netIdx` (phase 1 — all
  /// nets' access is fixed and blocked before any wire is routed, as in
  /// TritonRoute). Pure: no member state is modified.
  TermPlan planTerms(int netIdx) const;
  /// Applies a plan: emits its shapes (registering blockage), claims its
  /// nodes and folds its stats; returns the terminal grid nodes.
  std::vector<Node> commitTerms(const TermPlan& plan,
                                std::vector<RouteShape>& shapes,
                                RouteStats& stats);
  /// Routes one net between its prepared terminals; returns false when any
  /// terminal could not be reached.
  bool routeNet(int netIdx, const std::vector<Node>& termNodes,
                std::vector<RouteShape>& shapes, RouteStats& stats);
  /// Multi-target A* from `source` to any node in `targets` (keys).
  /// Returns the path (source..target) or empty.
  /// `relaxed` turns soft blockages into a large cost instead of a hard
  /// skip — the escape hatch when halo conservatism seals a pin in (the
  /// resulting violations are counted honestly by the final DRC pass).
  std::vector<Node> findPath(const Node& source,
                             const std::unordered_map<NodeKey, Node>& targets,
                             int net, RouteStats& stats, bool relaxed);
  void emitPath(const std::vector<Node>& path, int net,
                std::vector<RouteShape>& shapes, RouteStats& stats);

  /// Emits a shape and registers it as a soft blockage so later nets avoid
  /// it (node occupancy alone cannot protect off-grid via enclosures).
  void placeShape(const RouteShape& s, std::vector<RouteShape>& shapes);
  /// True when `r` keeps min spacing from all foreign fixed metal on
  /// `layer` — used to site min-area pads legally.
  bool padFits(const geom::Rect& r, int layer, int net) const;
  /// Emits the best-fitting min-area pad near `at` on `layer` (candidates:
  /// centered, shifted low, shifted high along the preferred direction).
  void emitMinAreaPad(geom::Point at, int layer, int net,
                      std::vector<RouteShape>& shapes, RouteStats& stats,
                      bool isAccess);
  /// Post-routing repair: pads every routed component still below min area.
  void repairMinArea(std::vector<RouteShape>& shapes, RouteStats& stats);
  /// Registers an existing shape's grid blockage (the non-emitting half of
  /// placeShape) — used when rebuilding the grid during rip-up.
  void registerShape(const RouteShape& s);
  /// Seeds grid blockage + the fixed region query from the design.
  void seedFixed(const std::map<std::pair<int, int>, int>& netOf);
  /// Full-layout DRC over fixed + routed shapes.
  std::vector<drc::Violation> runDrc(
      const std::vector<RouteShape>& shapes,
      const std::map<std::pair<int, int>, int>& netOf) const;

  const db::Design* design_;
  const AccessSource* access_;
  RouterConfig cfg_;
  RoutingGrid grid_;
  std::vector<geom::Coord> wireHalo_;  ///< per tech layer
  std::vector<geom::Coord> viaHaloX_;
  std::vector<geom::Coord> viaHaloY_;
  /// Fixed design metal (pins, obstructions, IO pins) for pad legality.
  drc::RegionQuery fixed_;
  /// Routed metal so far (same legality purpose).
  drc::RegionQuery routed_;
};

}  // namespace pao::router
