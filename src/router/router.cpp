#include "router/router.hpp"

#include <chrono>
#include <map>
#include <queue>
#include <set>

#include "geom/polygon.hpp"

#include "geom/grid_index.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/executor.hpp"

namespace pao::router {

using geom::Coord;
using geom::Point;
using geom::Rect;

DetailedRouter::DetailedRouter(const db::Design& design,
                               const AccessSource& access, RouterConfig cfg)
    : design_(&design),
      access_(&access),
      cfg_(cfg),
      grid_(design),
      fixed_(static_cast<int>(design.tech->layers().size())),
      routed_(static_cast<int>(design.tech->layers().size())) {
  // Blocking halos per layer: wires need width/2 + spacing (isotropic);
  // via landings need the enclosure half-extent + spacing per axis.
  const int numLayers = static_cast<int>(design.tech->layers().size());
  wireHalo_.assign(numLayers, 0);
  viaHaloX_.assign(numLayers, 0);
  viaHaloY_.assign(numLayers, 0);
  for (const db::Layer& l : design.tech->layers()) {
    if (l.type != db::LayerType::kRouting) continue;
    wireHalo_[l.index] = l.width / 2 + l.minSpacing() - 1;
    Coord encX = l.width / 2;
    Coord encY = l.width / 2;
    for (const db::ViaDef& v : design.tech->viaDefs()) {
      for (const geom::Rect* enc :
           {v.botLayer == l.index ? &v.botEnc : nullptr,
            v.topLayer == l.index ? &v.topEnc : nullptr}) {
        if (enc == nullptr) continue;
        encX = std::max(encX, enc->width() / 2);
        encY = std::max(encY, enc->height() / 2);
      }
    }
    viaHaloX_[l.index] = encX + l.minSpacing() - 1;
    viaHaloY_[l.index] = encY + l.minSpacing() - 1;
  }
}

void DetailedRouter::registerShape(const RouteShape& s) {
  routed_.add({s.rect, s.layer, s.net,
               s.isVia ? drc::ShapeKind::kVia : drc::ShapeKind::kWire,
               false});
  const db::Layer& l = design_->tech->layer(s.layer);
  if (l.type == db::LayerType::kRouting) {
    // Wide shapes demand more spacing (PRL table); scale the halos by the
    // spacing this shape would require against a long parallel neighbor.
    const Coord extra =
        l.spacing(std::max(l.width, s.rect.minDim()), geom::kCoordMax / 8) -
        l.minSpacing();
    grid_.blockFixedShape(s.rect, s.layer, s.net, wireHalo_[s.layer] + extra,
                          viaHaloX_[s.layer] + extra,
                          viaHaloY_[s.layer] + extra);
  }
}

void DetailedRouter::placeShape(const RouteShape& s,
                                std::vector<RouteShape>& shapes) {
  shapes.push_back(s);
  registerShape(s);
}

namespace {

/// Electrical identity per (instance, master-pin index): design net id or a
/// synthetic unique id; supply pins map to kObsNet.
std::map<std::pair<int, int>, int> buildNetOf(const db::Design& design) {
  std::map<std::pair<int, int>, int> netOf;
  for (int n = 0; n < static_cast<int>(design.nets.size()); ++n) {
    for (const db::NetTerm& t : design.nets[n].terms) {
      if (!t.isIo()) netOf[{t.instIdx, t.pinIdx}] = n;
    }
  }
  return netOf;
}

}  // namespace

RouteResult DetailedRouter::run() {
  PAO_TRACE_SCOPE("router.run");
  const auto t0 = std::chrono::steady_clock::now();
  RouteResult result;
  const db::Design& design = *design_;

  // Phase 0: block the grid under fixed metal.
  const std::map<std::pair<int, int>, int> netOf = buildNetOf(design);
  {
    PAO_TRACE_SCOPE("router.seed_fixed");
    seedFixed(netOf);
  }

  // Phase 1: place every net's access vias first so all routing sees all
  // pin contacts as blockages (mirrors TritonRoute's flow, where pin access
  // is resolved before track assignment). Planning is per-net independent
  // and runs on the executor; commits stay serial in net order so the
  // emitted shape sequence is identical for any thread count.
  std::vector<std::vector<Node>> termNodes(design.nets.size());
  {
    PAO_TRACE_SCOPE("router.access");
    std::vector<TermPlan> plans(design.nets.size());
    util::parallelFor(
        design.nets.size(),
        [&](std::size_t n) { plans[n] = planTerms(static_cast<int>(n)); },
        cfg_.numThreads);
    for (int n = 0; n < static_cast<int>(design.nets.size()); ++n) {
      termNodes[n] = commitTerms(plans[n], result.shapes, result.stats);
    }
  }

  // Phase 2: route nets in index order.
  std::vector<bool> failed(design.nets.size(), false);
  {
    PAO_TRACE_SCOPE("router.route_nets");
    for (int n = 0; n < static_cast<int>(design.nets.size()); ++n) {
      failed[n] = !routeNet(n, termNodes[n], result.shapes, result.stats);
    }
  }

  // Phase 3: min-area repair over the completed layout.
  {
    PAO_TRACE_SCOPE("router.min_area_repair");
    repairMinArea(result.shapes, result.stats);
  }

  // Phase 4: rip-up-and-reroute nets whose wiring participates in DRC
  // violations. Each pass removes the offenders' wiring (access vias stay —
  // they are the contract with the pin access oracle), rebuilds the grid
  // state from the survivors, and re-routes with full knowledge.
  if (cfg_.countDrcs) {
    PAO_TRACE_SCOPE("router.ripup_reroute");
    for (int pass = 0; pass < cfg_.ripupPasses; ++pass) {
      const std::vector<drc::Violation> violations =
          runDrc(result.shapes, netOf);
      std::set<int> offenders;
      for (const drc::Violation& v : violations) {
        for (const int net : {v.netA, v.netB}) {
          if (net >= 0 && net < static_cast<int>(design.nets.size())) {
            offenders.insert(net);
          }
        }
      }
      if (offenders.empty()) break;
      result.stats.rippedNets += offenders.size();

      std::erase_if(result.shapes, [&](const RouteShape& sh) {
        return offenders.count(sh.net) != 0 && !sh.isAccess;
      });
      // Rebuild grid blockage and the routed region query from survivors.
      grid_ = RoutingGrid(design);
      routed_.clear();
      fixed_.clear();
      seedFixed(netOf);
      for (const RouteShape& sh : result.shapes) registerShape(sh);
      for (int n = 0; n < static_cast<int>(design.nets.size()); ++n) {
        for (const Node& node : termNodes[n]) grid_.occupy(node, n);
      }
      for (const int n : offenders) {
        failed[n] = !routeNet(n, termNodes[n], result.shapes, result.stats);
      }
      repairMinArea(result.shapes, result.stats);
    }
  }

  // Final stats from the surviving shape set.
  result.stats.routedNets = 0;
  result.stats.failedNets = 0;
  for (const bool f : failed) {
    f ? ++result.stats.failedNets : ++result.stats.routedNets;
  }
  result.stats.wireShapes = 0;
  result.stats.viaCount = 0;
  for (const RouteShape& sh : result.shapes) {
    if (sh.isVia) {
      ++result.stats.viaCount;  // counted per shape; divided below
    } else {
      ++result.stats.wireShapes;
    }
  }
  result.stats.viaCount /= 3;  // three shapes per via

  result.stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (cfg_.countDrcs) {
    result.violations = runDrc(result.shapes, netOf);
    // Classify: a violation is access-related when its marker touches an
    // access via / landing patch (bloated slightly for zero-area markers).
    geom::GridIndex<int> accessIdx;
    for (const RouteShape& sh : result.shapes) {
      if (sh.isAccess) accessIdx.insert(sh.rect, sh.layer);
    }
    for (const drc::Violation& v : result.violations) {
      bool access = false;
      accessIdx.query(v.bbox.bloat(1), [&](const geom::Rect&, int layer) {
        if (layer == v.layer || v.layer < 0) access = true;
      });
      if (access) ++result.accessViolations;
    }
  }
  // End-of-run totals (routing is serial in net order, so every one of
  // these is thread-count-invariant).
  PAO_COUNTER_ADD("pao.router.routed_nets", result.stats.routedNets);
  PAO_COUNTER_ADD("pao.router.failed_nets", result.stats.failedNets);
  PAO_COUNTER_ADD("pao.router.ripped_nets", result.stats.rippedNets);
  PAO_COUNTER_ADD("pao.router.wire_shapes", result.stats.wireShapes);
  PAO_COUNTER_ADD("pao.router.via_count", result.stats.viaCount);
  PAO_COUNTER_ADD("pao.router.access_violations", result.accessViolations);
  return result;
}

void DetailedRouter::seedFixed(
    const std::map<std::pair<int, int>, int>& netOf) {
  const db::Design& design = *design_;
  const auto block = [&](const geom::Rect& r, int layer, int net) {
    const db::Layer& l = design.tech->layer(layer);
    const Coord extra =
        l.spacing(std::max(l.width, r.minDim()), geom::kCoordMax / 8) -
        l.minSpacing();
    grid_.blockFixedShape(r, layer, net, wireHalo_[layer] + extra,
                          viaHaloX_[layer] + extra,
                          viaHaloY_[layer] + extra);
  };
  int synthetic = static_cast<int>(design.nets.size());
  for (int i = 0; i < static_cast<int>(design.instances.size()); ++i) {
    const db::Instance& inst = design.instances[i];
    const geom::Transform xf = inst.transform();
    const db::Master& master = *inst.master;
    for (int p = 0; p < static_cast<int>(master.pins.size()); ++p) {
      const db::Pin& pin = master.pins[p];
      const bool isSupply =
          pin.use == db::PinUse::kPower || pin.use == db::PinUse::kGround;
      int net = drc::Shape::kObsNet;
      if (!isSupply) {
        const auto it = netOf.find({i, p});
        net = it != netOf.end() ? it->second : synthetic++;
      }
      for (const db::PinShape& sh : pin.shapes) {
        block(xf.apply(sh.rect), sh.layer, net);
        fixed_.add({xf.apply(sh.rect), sh.layer, net, drc::ShapeKind::kPin,
                    true});
      }
    }
    for (const db::Obstruction& o : master.obstructions) {
      block(xf.apply(o.rect), o.layer, drc::Shape::kObsNet);
      fixed_.add({xf.apply(o.rect), o.layer, drc::Shape::kObsNet,
                  drc::ShapeKind::kObstruction, true});
    }
  }
  for (int i = 0; i < static_cast<int>(design.ioPins.size()); ++i) {
    // IO pins keep their own net id (found via net terms).
    int net = synthetic++;
    for (int n = 0; n < static_cast<int>(design.nets.size()); ++n) {
      for (const db::NetTerm& t : design.nets[n].terms) {
        if (t.isIo() && t.ioPinIdx == i) net = n;
      }
    }
    block(design.ioPins[i].rect, design.ioPins[i].layer, net);
    fixed_.add({design.ioPins[i].rect, design.ioPins[i].layer, net,
                drc::ShapeKind::kIoPin, true});
  }
}

std::vector<drc::Violation> DetailedRouter::runDrc(
    const std::vector<RouteShape>& shapes,
    const std::map<std::pair<int, int>, int>& netOf) const {
  const db::Design& design = *design_;
  drc::DrcEngine engine(*design.tech);
  int synthetic = static_cast<int>(design.nets.size()) + 1000000;
  for (int i = 0; i < static_cast<int>(design.instances.size()); ++i) {
    const db::Instance& inst = design.instances[i];
    const geom::Transform xf = inst.transform();
    const db::Master& master = *inst.master;
    for (int p = 0; p < static_cast<int>(master.pins.size()); ++p) {
      const db::Pin& pin = master.pins[p];
      const bool isSupply =
          pin.use == db::PinUse::kPower || pin.use == db::PinUse::kGround;
      int net = drc::Shape::kObsNet;
      if (!isSupply) {
        const auto it = netOf.find({i, p});
        net = it != netOf.end() ? it->second : synthetic++;
      }
      for (const db::PinShape& sh : pin.shapes) {
        engine.region().add(
            {xf.apply(sh.rect), sh.layer, net, drc::ShapeKind::kPin, true});
      }
    }
    for (const db::Obstruction& o : master.obstructions) {
      engine.region().add({xf.apply(o.rect), o.layer, drc::Shape::kObsNet,
                           drc::ShapeKind::kObstruction, true});
    }
  }
  for (const RouteShape& sh : shapes) {
    engine.region().add({sh.rect, sh.layer, sh.net,
                         sh.isVia ? drc::ShapeKind::kVia
                                  : drc::ShapeKind::kWire,
                         false});
  }
  return engine.checkAll(cfg_.numThreads);
}

bool DetailedRouter::padFits(const Rect& r, int layer, int net) const {
  const db::Layer& l = design_->tech->layer(layer);
  bool ok = true;
  const drc::Shape cand{r, layer, net, drc::ShapeKind::kWire, false};
  const auto probe = [&](const drc::Shape& s) {
    if (ok && drc::checkSpacingPair(l, cand, s)) ok = false;
  };
  fixed_.query(layer, r.bloat(drc::maxSpacingHalo(l)), probe);
  routed_.query(layer, r.bloat(drc::maxSpacingHalo(l)), probe);
  return ok;
}

void DetailedRouter::emitMinAreaPad(Point at, int layer, int net,
                                    std::vector<RouteShape>& shapes,
                                    RouteStats& stats, bool isAccess) {
  const db::Layer& l = design_->tech->layer(layer);
  if (l.minArea <= 0) return;
  const bool horiz = l.dir == db::Dir::kHorizontal;
  const Coord half = l.width / 2;
  // Pad width matches the largest via enclosure across-extent on this layer
  // so pad ends are neither EOL edges nor sub-minStep steps.
  Coord acrossHalf = half;
  for (const db::ViaDef& v : design_->tech->viaDefs()) {
    if (v.botLayer == layer) {
      acrossHalf = std::max(
          acrossHalf, (horiz ? v.botEnc.height() : v.botEnc.width()) / 2);
    }
    if (v.topLayer == layer) {
      acrossHalf = std::max(
          acrossHalf, (horiz ? v.topEnc.height() : v.topEnc.width()) / 2);
    }
  }
  const Coord len = std::max<Coord>(l.minArea / (2 * acrossHalf), 2 * half);
  const auto padAt = [&](Coord shift) {
    const Coord lo = -len / 2 + shift;
    const Coord hi = len - len / 2 + shift;
    return horiz ? Rect{at.x + lo, at.y - acrossHalf, at.x + hi,
                        at.y + acrossHalf}
                 : Rect{at.x - acrossHalf, at.y + lo, at.x + acrossHalf,
                        at.y + hi};
  };
  Rect pad = padAt(0);
  for (const Coord shift :
       {geom::Coord{0}, len / 2, -len / 2, len, -len}) {
    const Rect cand = padAt(shift);
    if (padFits(cand, layer, net)) {
      pad = cand;
      break;
    }
  }
  placeShape({pad, layer, net, false, isAccess}, shapes);
  ++stats.wireShapes;
}

void DetailedRouter::repairMinArea(std::vector<RouteShape>& shapes,
                                   RouteStats& stats) {
  // Group routed shapes per (net, layer); pad components below min area.
  // Components touching fixed pin metal are exempt (anchored).
  std::map<std::pair<int, int>, std::vector<Rect>> groups;
  for (const RouteShape& s : shapes) {
    const db::Layer& l = design_->tech->layer(s.layer);
    if (l.type != db::LayerType::kRouting || l.minArea <= 0) continue;
    groups[{s.net, s.layer}].push_back(s.rect);
  }
  for (const auto& [key, rects] : groups) {
    const auto& [net, layer] = key;
    const db::Layer& l = design_->tech->layer(layer);
    for (const std::vector<Rect>& comp : geom::connectedComponents(rects)) {
      if (geom::unionArea(comp) >= l.minArea) continue;
      // Anchored to a pin? Then the pin provides the area.
      bool anchored = false;
      for (const Rect& r : comp) {
        fixed_.query(layer, r, [&](const drc::Shape& s) {
          if (s.net == net && s.rect.intersects(r)) anchored = true;
        });
      }
      if (anchored) continue;
      Rect bbox;
      for (const Rect& r : comp) bbox = bbox.merge(r);
      emitMinAreaPad(bbox.center(), layer, net, shapes, stats,
                     /*isAccess=*/false);
    }
  }
}

DetailedRouter::TermPlan DetailedRouter::planTerms(int netIdx) const {
  const db::Net& net = design_->nets[netIdx];
  TermPlan plan;
  plan.netIdx = netIdx;
  // Terminal nodes: pin contacts enter through their access via's top layer;
  // IO pins connect directly on their own layer.
  for (const db::NetTerm& t : net.terms) {
    if (t.isIo()) {
      const db::IoPin& io = design_->ioPins[t.ioPinIdx];
      const Node n = grid_.snap(io.layer, io.rect.center());
      if (grid_.valid(n)) {
        plan.termNodes.push_back(n);
      } else {
        ++plan.skippedTerms;
      }
      continue;
    }
    const db::Master& master = *design_->instances[t.instIdx].master;
    const std::vector<int> sig = master.signalPinIndices();
    int pos = -1;
    for (int i = 0; i < static_cast<int>(sig.size()); ++i) {
      if (sig[i] == t.pinIdx) pos = i;
    }
    const auto contact =
        pos >= 0 ? access_->contact(t.instIdx, pos) : std::nullopt;
    if (!contact) {
      ++plan.skippedTerms;
      continue;
    }
    // Drop the access via (its shapes become blockage for later nets at
    // commit time — node occupancy cannot protect off-grid enclosures).
    const db::ViaDef& via = *contact->via;
    plan.shapes.push_back(
        {via.botEncAt(contact->loc), via.botLayer, netIdx, true, true});
    plan.shapes.push_back(
        {via.cutAt(contact->loc), via.cutLayer, netIdx, true, true});
    plan.shapes.push_back(
        {via.topEncAt(contact->loc), via.topLayer, netIdx, true, true});
    ++plan.viaCount;

    const Node n = grid_.snap(via.topLayer, contact->loc);
    if (!grid_.valid(n)) {
      ++plan.skippedTerms;
      continue;
    }
    // Landing jog: reaches the (possibly off-track) access point from the
    // grid node. Emitted as an L of two enclosure-width segments (first
    // along the top layer's preferred direction from the access point, then
    // across to the node) so the merged metal has no sub-minStep ledges and
    // no end narrower than the enclosure.
    const Point np = grid_.pointOf(n);
    const db::Layer& top = design_->tech->layer(via.topLayer);
    const Coord half = std::max(
        top.width / 2, top.dir == db::Dir::kHorizontal
                           ? via.topEnc.height() / 2
                           : via.topEnc.width() / 2);
    if (np != contact->loc) {
      const bool horiz = top.dir == db::Dir::kHorizontal;
      // Leg 1: preferred direction at the access point's across-coordinate.
      const Point corner = horiz ? Point{np.x, contact->loc.y}
                                 : Point{contact->loc.x, np.y};
      const auto leg = [&](const Point& a, const Point& b) {
        if (a == b) return;
        plan.shapes.push_back(
            {Rect{std::min(a.x, b.x) - half, std::min(a.y, b.y) - half,
                  std::max(a.x, b.x) + half, std::max(a.y, b.y) + half},
             via.topLayer, netIdx, false, true});
        ++plan.wireShapes;
      };
      leg(contact->loc, corner);
      leg(corner, np);
      // Cap the landing node with the enclosure footprint so the wire that
      // leaves the node does not form a sub-minStep neck between the jog
      // metal and the next via's enclosure.
      plan.shapes.push_back({via.topEnc.translate(np.x, np.y), via.topLayer,
                             netIdx, false, true});
      ++plan.wireShapes;
    }
    plan.occupyNodes.push_back(n);
    plan.termNodes.push_back(n);
  }
  return plan;
}

std::vector<Node> DetailedRouter::commitTerms(const TermPlan& plan,
                                              std::vector<RouteShape>& shapes,
                                              RouteStats& stats) {
  for (const RouteShape& s : plan.shapes) placeShape(s, shapes);
  for (const Node& n : plan.occupyNodes) grid_.occupy(n, plan.netIdx);
  stats.skippedTerms += plan.skippedTerms;
  stats.viaCount += plan.viaCount;
  stats.wireShapes += plan.wireShapes;
  return plan.termNodes;
}

bool DetailedRouter::routeNet(int netIdx, const std::vector<Node>& termNodes,
                              std::vector<RouteShape>& shapes,
                              RouteStats& stats) {
  const db::Net& net = design_->nets[netIdx];
  if (termNodes.size() < 2) return termNodes.size() == net.terms.size();

  // Steiner-ish tree: connect each terminal to the union of already-routed
  // nodes.
  std::unordered_map<NodeKey, Node> tree;
  tree.emplace(grid_.keyOf(termNodes[0]), termNodes[0]);
  bool ok = true;
  for (std::size_t i = 1; i < termNodes.size(); ++i) {
    if (tree.count(grid_.keyOf(termNodes[i])) != 0) continue;
    std::vector<Node> path =
        findPath(termNodes[i], tree, netIdx, stats, /*relaxed=*/false);
    if (path.empty()) {
      // Halo conservatism can seal a pin in; retry treating soft blockages
      // as cost. Any resulting violation is counted by the final DRC pass.
      ++stats.relaxedRetries;
      path = findPath(termNodes[i], tree, netIdx, stats, /*relaxed=*/true);
    }
    if (path.empty()) {
      ok = false;
      continue;
    }
    emitPath(path, netIdx, shapes, stats);
    for (const Node& n : path) {
      grid_.occupy(n, netIdx);
      tree.emplace(grid_.keyOf(n), n);
    }
  }
  return ok;
}

std::vector<Node> DetailedRouter::findPath(
    const Node& source, const std::unordered_map<NodeKey, Node>& targets,
    int net, RouteStats& stats, bool relaxed) {
  // Lower bound to the targets' bounding box for A* (admissible and O(1)
  // per expansion regardless of tree size).
  Rect targetBox;
  for (const auto& [key, node] : targets) {
    const Point p = grid_.pointOf(node);
    targetBox = targetBox.merge(Rect(p, p));
  }
  const Coord viaStep = cfg_.viaCost * 100;
  const auto heuristic = [&](const Node& n) {
    const Point p = grid_.pointOf(n);
    return geom::manhattanDist(Rect(p, p), targetBox);
  };

  struct Entry {
    long long f;
    long long g;
    NodeKey key;
    Node node;
  };
  const auto worse = [](const Entry& a, const Entry& b) { return a.f > b.f; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> open(worse);
  std::unordered_map<NodeKey, long long> bestG;
  std::unordered_map<NodeKey, NodeKey> parent;
  std::unordered_map<NodeKey, Node> nodes;

  const NodeKey srcKey = grid_.keyOf(source);
  open.push({heuristic(source), 0, srcKey, source});
  bestG[srcKey] = 0;
  nodes[srcKey] = source;

  const std::size_t maxExpansions =
      relaxed ? cfg_.maxExpansions * 8 : cfg_.maxExpansions;
  const int maxLayer = cfg_.maxLayer >= 0
                           ? cfg_.maxLayer
                           : static_cast<int>(design_->tech->layers().size());
  int minLayer = 0;
  if (cfg_.reserveBottomLayer) {
    for (const db::Layer& l : design_->tech->layers()) {
      if (l.type == db::LayerType::kRouting) {
        minLayer = design_->tech->routingLayerAbove(l.index);
        break;
      }
    }
  }
  std::size_t expansions = 0;
  NodeKey goal = 0;
  bool found = false;

  while (!open.empty() && expansions < maxExpansions) {
    const Entry cur = open.top();
    open.pop();
    if (cur.g != bestG[cur.key]) continue;
    ++expansions;
    if (targets.count(cur.key) != 0) {
      goal = cur.key;
      found = true;
      break;
    }

    // Soft-blockage penalty in relaxed mode: worth roughly a 50-pitch legal
    // detour — enough to prefer clean paths without flooding the whole free
    // space before accepting a crossing.
    const long long blockPenalty = relaxed ? 20000 : 0;
    const auto consider = [&](Node next, long long stepCost,
                              bool viaMove = false) {
      if (!grid_.valid(next)) return;
      if (next.layer > maxLayer || next.layer < minLayer) return;
      const NodeKey key = grid_.keyOf(next);
      const bool isTarget = targets.count(key) != 0;
      if (!isTarget) {
        const int occ = grid_.occupant(next);
        if (occ != RoutingGrid::kFree && occ != net) return;
        const bool softBlocked =
            grid_.blockedFor(next, net) ||
            (viaMove && (grid_.viaBlockedFor(next, net) ||
                         grid_.viaBlockedFor(
                             {cur.node.layer, next.xi, next.yi}, net)));
        if (softBlocked) {
          if (!relaxed) return;
          // Crossing an obstruction's halo means real metal overlap is
          // likely, not just a spacing risk: much more expensive.
          stepCost +=
              grid_.hardBlocked(next) ? 8 * blockPenalty : blockPenalty;
        }
      }
      const long long g = cur.g + stepCost;
      const auto it = bestG.find(key);
      if (it != bestG.end() && it->second <= g) return;
      bestG[key] = g;
      parent[key] = cur.key;
      nodes[key] = next;
      open.push({g + heuristic(next), g, key, next});
    };

    const Node& n = cur.node;
    if (grid_.horizontal(n.layer)) {
      if (n.xi > 0) {
        consider({n.layer, n.xi - 1, n.yi},
                 grid_.xs()[n.xi] - grid_.xs()[n.xi - 1]);
      }
      if (n.xi + 1 < static_cast<int>(grid_.xs().size())) {
        consider({n.layer, n.xi + 1, n.yi},
                 grid_.xs()[n.xi + 1] - grid_.xs()[n.xi]);
      }
    } else {
      if (n.yi > 0) {
        consider({n.layer, n.xi, n.yi - 1},
                 grid_.ys()[n.yi] - grid_.ys()[n.yi - 1]);
      }
      if (n.yi + 1 < static_cast<int>(grid_.ys().size())) {
        consider({n.layer, n.xi, n.yi + 1},
                 grid_.ys()[n.yi + 1] - grid_.ys()[n.yi]);
      }
    }
    // Vias to the routing layers directly above/below (skipping cut layers).
    const int above = design_->tech->routingLayerAbove(n.layer);
    if (above >= 0) consider({above, n.xi, n.yi}, viaStep, /*viaMove=*/true);
    for (int below = n.layer - 1; below >= 0; --below) {
      if (design_->tech->layer(below).type == db::LayerType::kRouting) {
        consider({below, n.xi, n.yi}, viaStep, /*viaMove=*/true);
        break;
      }
    }
  }

  if (!found) {
    if (expansions >= maxExpansions) {
      ++stats.searchCapAborts;
    } else {
      ++stats.searchExhausted;
    }
    return {};
  }
  std::vector<Node> path;
  for (NodeKey key = goal;; key = parent[key]) {
    path.push_back(nodes[key]);
    if (key == srcKey) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void DetailedRouter::emitPath(const std::vector<Node>& path, int net,
                              std::vector<RouteShape>& shapes,
                              RouteStats& stats) {
  // Merge runs of same-layer nodes into wire rects; emit a default via at
  // every layer change. Sub-min-area runs are fixed afterwards by the
  // repairMinArea pass, which sees the final merged components.
  std::size_t runStart = 0;
  for (std::size_t i = 1; i <= path.size(); ++i) {
    if (i < path.size() && path[i].layer == path[runStart].layer) continue;
    const int runLayer = path[runStart].layer;
    const db::Layer& layer = design_->tech->layer(runLayer);
    const Coord half = layer.width / 2;
    if (i - runStart >= 2) {
      const Point a = grid_.pointOf(path[runStart]);
      const Point b = grid_.pointOf(path[i - 1]);
      const Rect wire{std::min(a.x, b.x) - half, std::min(a.y, b.y) - half,
                      std::max(a.x, b.x) + half, std::max(a.y, b.y) + half};
      placeShape({wire, runLayer, net, false}, shapes);
      ++stats.wireShapes;
    }
    if (i == path.size()) break;
    // Layer change between i-1 and i: drop the default via.
    const int lo = std::min(path[i - 1].layer, path[i].layer);
    const int hi = std::max(path[i - 1].layer, path[i].layer);
    const Point at = grid_.pointOf(path[i]);
    for (const db::ViaDef* via : design_->tech->viaDefsFromLayer(lo)) {
      if (via->topLayer == hi) {
        placeShape({via->botEncAt(at), via->botLayer, net, true}, shapes);
        placeShape({via->cutAt(at), via->cutLayer, net, true}, shapes);
        placeShape({via->topEncAt(at), via->topLayer, net, true}, shapes);
        ++stats.viaCount;
        break;
      }
    }
    runStart = i;
  }
}

}  // namespace pao::router
