#include "router/grid.hpp"

#include <algorithm>

#include "drc/region_query.hpp"

namespace pao::router {

using geom::Coord;
using geom::Point;
using geom::Rect;

RoutingGrid::RoutingGrid(const db::Design& design) : design_(&design) {
  const db::Tech& tech = *design.tech;
  const int numLayers = static_cast<int>(tech.layers().size());
  horiz_.assign(numLayers, false);
  isRouting_.assign(numLayers, false);
  for (const db::Layer& l : tech.layers()) {
    horiz_[l.index] = l.dir == db::Dir::kHorizontal;
    isRouting_[l.index] = l.type == db::LayerType::kRouting;
  }

  // Global coordinate sets: union of all vertical (x) / horizontal (y)
  // track coordinates in the design.
  for (const db::TrackPattern& tp : design.trackPatterns) {
    if (!isRouting_[tp.layer]) continue;
    std::vector<Coord>& dst = tp.axis == db::Dir::kVertical ? xs_ : ys_;
    for (const Coord c :
         tp.coordsIn(design.dieArea.xlo, design.dieArea.xhi)) {
      dst.push_back(c);
    }
  }
  const auto uniq = [](std::vector<Coord>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  uniq(xs_);
  uniq(ys_);

  // Per layer: which indices of the across-direction coordinate set carry a
  // track of that layer.
  onLayerTrack_.assign(numLayers, {});
  for (int li = 0; li < numLayers; ++li) {
    if (!isRouting_[li]) continue;
    const std::vector<Coord>& across = horiz_[li] ? ys_ : xs_;
    std::vector<bool> onTrack(across.size(), false);
    for (const db::TrackPattern* tp : design.tracks(
             li, horiz_[li] ? db::Dir::kHorizontal : db::Dir::kVertical)) {
      for (std::size_t i = 0; i < across.size(); ++i) {
        if (tp->onTrack(across[i])) onTrack[i] = true;
      }
    }
    onLayerTrack_[li] = std::move(onTrack);
  }
}

bool RoutingGrid::valid(const Node& n) const {
  if (n.layer < 0 || n.layer >= numLayers() || !isRouting_[n.layer]) {
    return false;
  }
  if (n.xi < 0 || n.xi >= static_cast<int>(xs_.size())) return false;
  if (n.yi < 0 || n.yi >= static_cast<int>(ys_.size())) return false;
  const int across = horiz_[n.layer] ? n.yi : n.xi;
  return onLayerTrack_[n.layer][across];
}

int RoutingGrid::indexNear(const std::vector<Coord>& v, Coord c) const {
  const auto it = std::lower_bound(v.begin(), v.end(), c);
  if (it == v.begin()) return 0;
  if (it == v.end()) return static_cast<int>(v.size()) - 1;
  const int hi = static_cast<int>(it - v.begin());
  return (c - v[hi - 1] <= v[hi] - c) ? hi - 1 : hi;
}

Node RoutingGrid::snap(int layer, Point p) const {
  Node n;
  n.layer = layer;
  n.xi = indexNear(xs_, p.x);
  n.yi = indexNear(ys_, p.y);
  if (valid(n)) return n;
  // Walk the across-direction index outward until a layer track is hit.
  const std::vector<Coord>& across = horiz_[layer] ? ys_ : xs_;
  int& idx = horiz_[layer] ? n.yi : n.xi;
  const int base = idx;
  for (int d = 1; d < static_cast<int>(across.size()); ++d) {
    for (const int cand : {base - d, base + d}) {
      if (cand < 0 || cand >= static_cast<int>(across.size())) continue;
      idx = cand;
      if (valid(n)) return n;
    }
  }
  idx = base;
  return n;  // possibly invalid; caller checks
}

void RoutingGrid::occupy(const Node& n, int net) {
  occupancy_[keyOf(n)] = net;
}

int RoutingGrid::occupant(const Node& n) const {
  const auto it = occupancy_.find(keyOf(n));
  return it == occupancy_.end() ? kFree : it->second;
}

void RoutingGrid::addOwner(Owners& o, int net) {
  if (o.a == net || o.b == net) return;
  if (o.a == kFree) {
    o.a = net;
  } else if (o.b == kFree) {
    o.b = net;
  } else {
    o.a = drc::Shape::kObsNet;  // third distinct owner: blocked for all
    o.b = kFree;
  }
}

bool RoutingGrid::blocksNet(const Owners& o, int net) {
  if (o.a == drc::Shape::kObsNet || o.b == drc::Shape::kObsNet) return true;
  if (o.a != kFree && o.a != net) return true;
  if (o.b != kFree && o.b != net) return true;
  return false;
}

void RoutingGrid::blockFixedShape(const Rect& r, int layer, int net,
                                  Coord wireHalo, Coord viaHaloX,
                                  Coord viaHaloY) {
  if (layer < 0 || layer >= numLayers() || !isRouting_[layer]) return;
  const auto mark = [&](std::unordered_map<NodeKey, Owners>& store,
                        Coord haloX, Coord haloY) {
    const Rect blocked = r.bloat(haloX, haloY);
    const auto lo = std::lower_bound(xs_.begin(), xs_.end(), blocked.xlo);
    const auto hi = std::upper_bound(xs_.begin(), xs_.end(), blocked.xhi);
    for (auto xit = lo; xit != hi; ++xit) {
      const int xi = static_cast<int>(xit - xs_.begin());
      const auto ylo = std::lower_bound(ys_.begin(), ys_.end(), blocked.ylo);
      const auto yhi = std::upper_bound(ys_.begin(), ys_.end(), blocked.yhi);
      for (auto yit = ylo; yit != yhi; ++yit) {
        const int yi = static_cast<int>(yit - ys_.begin());
        const Node n{layer, xi, yi};
        if (!valid(n)) continue;
        addOwner(store[keyOf(n)], net);
      }
    }
  };
  mark(blocked_, wireHalo, wireHalo);
  mark(viaBlocked_, viaHaloX, viaHaloY);
}

bool RoutingGrid::blockedFor(const Node& n, int net) const {
  const auto it = blocked_.find(keyOf(n));
  return it != blocked_.end() && blocksNet(it->second, net);
}

bool RoutingGrid::viaBlockedFor(const Node& n, int net) const {
  const auto it = viaBlocked_.find(keyOf(n));
  return it != viaBlocked_.end() && blocksNet(it->second, net);
}

bool RoutingGrid::hardBlocked(const Node& n) const {
  const auto it = blocked_.find(keyOf(n));
  if (it == blocked_.end()) return false;
  return it->second.a == drc::Shape::kObsNet ||
         it->second.b == drc::Shape::kObsNet;
}

}  // namespace pao::router
