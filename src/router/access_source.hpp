// Pin-access sources for the detailed router: where each net-attached
// instance pin will be contacted. Experiment 3 compares three sources —
// the TrRte-style first point, a Dr. CU-style greedy per-pin nearest point
// (no pattern compatibility), and the PAAF pattern-selected point.
#pragma once

#include <map>
#include <optional>

#include "pao/oracle.hpp"
#include "pao/session.hpp"

namespace pao::router {

/// One pin contact: drop `via` at `loc` (the access point, design coords).
struct PinContact {
  const db::ViaDef* via = nullptr;
  geom::Point loc;
};

enum class AccessMode {
  kFirstAp,       ///< TrRte baseline: first generated AP per pin
  kGreedyNearest, ///< Dr. CU proxy: per-pin AP nearest the net centroid
  kPattern,       ///< PAAF: the cluster-selected pattern's AP
};

class AccessSource {
 public:
  /// `result` must come from a PinAccessOracle run on `design` (legacy
  /// config for kFirstAp, full config for the others).
  AccessSource(const db::Design& design, const core::OracleResult& result,
               AccessMode mode);
  /// Live view over an incremental session: contacts reflect the session's
  /// current state, so the same source stays valid across session mutations
  /// (net centroids for kGreedyNearest are captured at construction).
  /// `session.design()` must be `design`.
  AccessSource(const db::Design& design, const core::OracleSession& session,
               AccessMode mode);

  /// Contact for instance `instIdx`'s signal-pin position `sigPinPos`;
  /// nullopt when the pin has no usable access point.
  std::optional<PinContact> contact(int instIdx, int sigPinPos) const;

  AccessMode mode() const { return mode_; }

 private:
  void buildCentroids();
  int classOf(int instIdx) const;
  /// The class's Steps 1-2 access plus the translation that places its
  /// access points at `instIdx`'s location (origin-relative for sessions,
  /// representative-relative for batch results).
  const core::ClassAccess& classAccess(int cls) const;
  geom::Point placeDelta(int instIdx, int cls) const;
  std::optional<PinContact> fromAp(int instIdx, const core::AccessPoint& ap)
      const;

  const db::Design* design_;
  const core::OracleResult* result_ = nullptr;
  const core::OracleSession* session_ = nullptr;
  AccessMode mode_;
  /// Net centroid per (inst, sigPinPos) for the greedy mode.
  std::map<std::pair<int, int>, geom::Point> centroid_;
};

}  // namespace pao::router
