#include "obs/profile.hpp"

#include <algorithm>
#include <string>

#include "obs/trace.hpp"

namespace pao::obs {

namespace {

std::int64_t durNs(const ProfileNode& n) {
  return n.endNs > n.beginNs ? n.endNs - n.beginNs : 0;
}

double toMicros(std::int64_t ns) { return static_cast<double>(ns) / 1000.0; }

bool failValidation(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

const Json* requireKey(const Json& obj, const char* key, std::string* error) {
  const Json* v = obj.find(key);
  if (v == nullptr) failValidation(error, std::string("profile.") + key + " missing");
  return v;
}

bool requireNonNegNumber(const Json& obj, const char* key, double* out,
                         std::string* error) {
  const Json* v = requireKey(obj, key, error);
  if (v == nullptr) return false;
  if (!v->isNumber() || v->asDouble() < 0) {
    return failValidation(error, std::string("profile.") + key +
                                     " must be a non-negative number");
  }
  if (out != nullptr) *out = v->asDouble();
  return true;
}

}  // namespace

ProfileAnalysis analyzeProfile(const GraphProfile& profile) {
  ProfileAnalysis out;
  const std::size_t n = profile.nodes.size();
  if (n == 0) return out;

  // Forward pass in id order — deps < id makes ascending ids a topological
  // order. finish[i] = dur[i] + max(finish[dep]); ties keep the lowest
  // predecessor so the reported path is deterministic for a fixed capture.
  std::vector<std::int64_t> finish(n, 0);
  std::vector<std::int64_t> ready(n, 0);
  std::vector<std::int32_t> bestPred(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t dur = durNs(profile.nodes[i]);
    out.totalNs += dur;
    std::int64_t best = 0;
    for (std::uint32_t d = profile.depOff[i]; d < profile.depOff[i + 1]; ++d) {
      const std::uint32_t dep = profile.deps[d];
      if (finish[dep] > best) {
        best = finish[dep];
        bestPred[i] = static_cast<std::int32_t>(dep);
      }
      ready[i] = std::max(ready[i], profile.nodes[dep].endNs);
    }
    finish[i] = best + dur;
  }
  std::size_t tail = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (finish[i] > finish[tail]) tail = i;
  }
  out.criticalPathNs = finish[tail];
  for (std::int32_t i = static_cast<std::int32_t>(tail); i >= 0;
       i = bestPred[static_cast<std::size_t>(i)]) {
    out.criticalPath.push_back(static_cast<std::uint32_t>(i));
  }
  std::reverse(out.criticalPath.begin(), out.criticalPath.end());

  out.headroom = out.criticalPathNs > 0
                     ? static_cast<double>(out.totalNs) /
                           static_cast<double>(out.criticalPathNs)
                     : 1.0;
  out.speedup = profile.wallNs > 0 ? static_cast<double>(out.totalNs) /
                                         static_cast<double>(profile.wallNs)
                                   : 1.0;

  out.perWorker.assign(
      profile.workers > 0 ? static_cast<std::size_t>(profile.workers) : 0,
      WorkerSlice{});
  std::int64_t waitSum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const ProfileNode& node = profile.nodes[i];
    const std::int64_t wait =
        node.beginNs > ready[i] ? node.beginNs - ready[i] : 0;
    waitSum += wait;
    out.queue.maxWaitNs = std::max(out.queue.maxWaitNs, wait);
    if (node.worker < 0 ||
        node.worker >= static_cast<std::int32_t>(out.perWorker.size())) {
      continue;
    }
    WorkerSlice& slice = out.perWorker[static_cast<std::size_t>(node.worker)];
    slice.busyNs += durNs(node);
    ++slice.nodes;
    if (node.stolenFrom >= 0) ++slice.steals;
  }
  out.queue.meanWaitNs = static_cast<double>(waitSum) / static_cast<double>(n);
  out.queue.avgDepth = profile.wallNs > 0
                           ? static_cast<double>(waitSum) /
                                 static_cast<double>(profile.wallNs)
                           : 0.0;
  for (WorkerSlice& slice : out.perWorker) {
    slice.idleNs =
        profile.wallNs > slice.busyNs ? profile.wallNs - slice.busyNs : 0;
    slice.utilization = profile.wallNs > 0
                            ? static_cast<double>(slice.busyNs) /
                                  static_cast<double>(profile.wallNs)
                            : 0.0;
  }
  return out;
}

Json profileSectionJson(const GraphProfile& profile) {
  return profileSectionJson(profile, analyzeProfile(profile));
}

Json profileSectionJson(const GraphProfile& profile,
                        const ProfileAnalysis& analysis) {
  Json section = Json::object();
  section.set("jobs", Json(profile.nodes.size()));
  section.set("workers", Json(profile.workers));
  section.set("steals", Json(profile.steals));
  section.set("wallMicros", Json(toMicros(profile.wallNs)));
  section.set("totalMicros", Json(toMicros(analysis.totalNs)));
  section.set("criticalPathMicros", Json(toMicros(analysis.criticalPathNs)));
  section.set("headroom", Json(analysis.headroom));
  section.set("speedup", Json(analysis.speedup));
  Json path = Json::array();
  for (const std::uint32_t id : analysis.criticalPath) {
    path.push(Json(static_cast<long long>(id)));
  }
  section.set("criticalPath", std::move(path));
  Json queue = Json::object();
  queue.set("maxWaitMicros", Json(toMicros(analysis.queue.maxWaitNs)));
  queue.set("meanWaitMicros", Json(analysis.queue.meanWaitNs / 1000.0));
  queue.set("avgDepth", Json(analysis.queue.avgDepth));
  section.set("queue", std::move(queue));
  Json workers = Json::array();
  for (std::size_t w = 0; w < analysis.perWorker.size(); ++w) {
    const WorkerSlice& slice = analysis.perWorker[w];
    Json j = Json::object();
    j.set("worker", Json(w));
    j.set("busyMicros", Json(toMicros(slice.busyNs)));
    j.set("idleMicros", Json(toMicros(slice.idleNs)));
    j.set("utilization", Json(slice.utilization));
    j.set("nodes", Json(slice.nodes));
    j.set("steals", Json(slice.steals));
    workers.push(std::move(j));
  }
  section.set("perWorker", std::move(workers));
  return section;
}

bool validateProfileSection(const Json& section, std::string* error) {
  if (!section.isObject()) {
    return failValidation(error, "profile is not an object");
  }
  const Json* jobs = requireKey(section, "jobs", error);
  if (jobs == nullptr) return false;
  if (!jobs->isInt() || jobs->asInt() < 0) {
    return failValidation(error, "profile.jobs must be a non-negative integer");
  }
  const Json* workers = requireKey(section, "workers", error);
  if (workers == nullptr) return false;
  if (!workers->isInt() || workers->asInt() < 1) {
    return failValidation(error, "profile.workers must be a positive integer");
  }
  double wall = 0, total = 0, critical = 0, headroom = 0;
  if (!requireNonNegNumber(section, "wallMicros", &wall, error) ||
      !requireNonNegNumber(section, "totalMicros", &total, error) ||
      !requireNonNegNumber(section, "criticalPathMicros", &critical, error) ||
      !requireNonNegNumber(section, "headroom", &headroom, error) ||
      !requireNonNegNumber(section, "speedup", nullptr, error)) {
    return false;
  }
  if (critical > wall) {
    return failValidation(error,
                          "profile.criticalPathMicros exceeds wallMicros");
  }
  if (critical > total) {
    return failValidation(error,
                          "profile.criticalPathMicros exceeds totalMicros");
  }
  if (headroom < 1.0) {
    return failValidation(error, "profile.headroom below 1");
  }
  const Json* path = requireKey(section, "criticalPath", error);
  if (path == nullptr) return false;
  if (!path->isArray()) {
    return failValidation(error, "profile.criticalPath must be an array");
  }
  long long prev = -1;
  for (const Json& id : path->items()) {
    if (!id.isInt() || id.asInt() < 0 || id.asInt() >= jobs->asInt()) {
      return failValidation(error,
                            "profile.criticalPath id outside [0, jobs)");
    }
    if (id.asInt() <= prev) {
      return failValidation(error,
                            "profile.criticalPath ids not strictly ascending");
    }
    prev = id.asInt();
  }
  const Json* queue = requireKey(section, "queue", error);
  if (queue == nullptr) return false;
  if (!queue->isObject()) {
    return failValidation(error, "profile.queue must be an object");
  }
  if (!requireNonNegNumber(*queue, "maxWaitMicros", nullptr, error) ||
      !requireNonNegNumber(*queue, "meanWaitMicros", nullptr, error) ||
      !requireNonNegNumber(*queue, "avgDepth", nullptr, error)) {
    return false;
  }
  const Json* perWorker = requireKey(section, "perWorker", error);
  if (perWorker == nullptr) return false;
  if (!perWorker->isArray() ||
      perWorker->items().size() !=
          static_cast<std::size_t>(workers->asInt())) {
    return failValidation(error,
                          "profile.perWorker must hold one entry per worker");
  }
  for (std::size_t w = 0; w < perWorker->items().size(); ++w) {
    const Json& slice = perWorker->items()[w];
    if (!slice.isObject()) {
      return failValidation(error, "profile.perWorker entry not an object");
    }
    const Json* worker = slice.find("worker");
    if (worker == nullptr || !worker->isInt() ||
        worker->asInt() != static_cast<long long>(w)) {
      return failValidation(error,
                            "profile.perWorker entries must be in worker "
                            "order");
    }
    if (!requireNonNegNumber(slice, "busyMicros", nullptr, error) ||
        !requireNonNegNumber(slice, "idleMicros", nullptr, error) ||
        !requireNonNegNumber(slice, "utilization", nullptr, error)) {
      return false;
    }
    for (const char* key : {"nodes", "steals"}) {
      const Json* v = slice.find(key);
      if (v == nullptr || !v->isInt() || v->asInt() < 0) {
        return failValidation(error, std::string("profile.perWorker.") + key +
                                         " must be a non-negative integer");
      }
    }
  }
  return true;
}

void recordProfileTrace(const GraphProfile& profile) {
  if (profile.empty() || profile.epochUs == 0) return;
  Tracer& tracer = Tracer::instance();
  const std::int64_t base = profile.epochUs;
  for (std::size_t i = 0; i < profile.nodes.size(); ++i) {
    const ProfileNode& node = profile.nodes[i];
    if (node.worker < 0) continue;
    TraceEvent ev;
    ev.name = "jobs.node";
    Json args = Json::object();
    args.set("id", Json(static_cast<long long>(i)));
    if (node.stolenFrom >= 0) args.set("stolenFrom", Json(node.stolenFrom));
    if (node.skipped) args.set("skipped", Json(true));
    ev.args = std::move(args);
    ev.tsUs = base + node.beginNs / 1000;
    ev.durUs = durNs(node) / 1000;
    ev.tid = node.worker;
    ev.pid = kJobTrackPid;
    tracer.recordEvent(std::move(ev));
  }
  // Flow events along dependency edges: an "s" inside the producing node's
  // slice and a matching "f" (bp:"e") at the consuming node's start, so the
  // viewer draws the DAG edges across worker tracks.
  std::size_t edge = 0;
  for (std::size_t i = 0; i < profile.nodes.size() && edge < kMaxFlowEdges;
       ++i) {
    const ProfileNode& to = profile.nodes[i];
    if (to.worker < 0) continue;
    for (std::uint32_t d = profile.depOff[i];
         d < profile.depOff[i + 1] && edge < kMaxFlowEdges; ++d) {
      const ProfileNode& from = profile.nodes[profile.deps[d]];
      if (from.worker < 0) continue;
      ++edge;
      TraceEvent s;
      s.name = "jobs.dep";
      s.tsUs = base + std::max(from.beginNs, from.endNs - 1) / 1000;
      s.durUs = 0;
      s.tid = from.worker;
      s.pid = kJobTrackPid;
      s.ph = 's';
      s.flowId = edge;
      tracer.recordEvent(std::move(s));
      TraceEvent f;
      f.name = "jobs.dep";
      f.tsUs = base + to.beginNs / 1000;
      f.durUs = 0;
      f.tid = to.worker;
      f.pid = kJobTrackPid;
      f.ph = 'f';
      f.flowId = edge;
      tracer.recordEvent(std::move(f));
    }
  }
}

}  // namespace pao::obs
