#include "obs/report.hpp"

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"

#ifndef PAO_GIT_SHA
#define PAO_GIT_SHA "unknown"
#endif

namespace pao::obs {

RunReport::RunReport(std::string_view tool) {
  doc_ = Json::object();
  doc_.set("schema", Json(kReportSchema));
  doc_.set("tool", Json(tool));
  doc_.set("env", environmentJson());
}

void RunReport::captureMetrics() {
  doc_.set("metrics", Registry::instance().snapshot());
}

bool RunReport::writeFile(const std::string& path, std::string* error) const {
  const std::string text = dump();
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  const bool ok = written == text.size() && std::fclose(f) == 0;
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

Json environmentJson() {
  Json env = Json::object();
  env.set("hwThreads",
          Json(static_cast<long long>(std::thread::hardware_concurrency())));
  env.set("gitSha", Json(PAO_GIT_SHA));
  return env;
}

namespace {

bool isKnownTopLevelKey(std::string_view key) {
  static constexpr std::string_view kKnown[] = {
      "schema", "tool",    "env",   "design", "config", "args",
      "timings", "oracle", "session", "cache", "drc",   "router",
      "bench",  "metrics", "notes", "degraded", "profile", "ingest"};
  for (const std::string_view k : kKnown) {
    if (k == key) return true;
  }
  return false;
}

bool failValidation(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

}  // namespace

bool validateMetricsSnapshot(const Json& metrics, std::string* error) {
  if (!metrics.isObject()) {
    return failValidation(error, "metrics is not an object");
  }
  for (const std::string_view kind : {"counters", "gauges", "histograms"}) {
    const Json* group = metrics.find(kind);
    if (group == nullptr) {
      return failValidation(error,
                            "metrics." + std::string(kind) + " missing");
    }
    if (!group->isObject()) {
      return failValidation(error,
                            "metrics." + std::string(kind) + " not an object");
    }
  }
  const Json& counters = *metrics.find("counters");
  std::string prev;
  for (const auto& [name, value] : counters.members()) {
    if (!value.isInt()) {
      return failValidation(error, "counter " + name + " is not an integer");
    }
    if (!prev.empty() && !(prev < name)) {
      return failValidation(error, "counters not canonically sorted at " +
                                       name);
    }
    prev = name;
  }
  const Json& histograms = *metrics.find("histograms");
  for (const auto& [name, hist] : histograms.members()) {
    if (!hist.isObject() || hist.find("count") == nullptr ||
        hist.find("bounds") == nullptr || hist.find("buckets") == nullptr) {
      return failValidation(error, "histogram " + name + " malformed");
    }
    const Json& bounds = *hist.find("bounds");
    const Json& buckets = *hist.find("buckets");
    if (!bounds.isArray() || !buckets.isArray() ||
        buckets.items().size() != bounds.items().size() + 1) {
      return failValidation(error,
                            "histogram " + name + " bucket shape wrong");
    }
  }
  return true;
}

bool validateReport(const Json& doc, std::string* error) {
  if (!doc.isObject()) return failValidation(error, "report is not an object");
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->isString()) {
    return failValidation(error, "missing string 'schema'");
  }
  if (schema->asString() != kReportSchema &&
      schema->asString() != kReportSchemaV2) {
    return failValidation(error,
                          "unknown schema '" + schema->asString() + "'");
  }
  const Json* tool = doc.find("tool");
  if (tool == nullptr || !tool->isString() || tool->asString().empty()) {
    return failValidation(error, "missing string 'tool'");
  }
  const Json* env = doc.find("env");
  if (env == nullptr || !env->isObject()) {
    return failValidation(error, "missing object 'env'");
  }
  const Json* hw = env->find("hwThreads");
  if (hw == nullptr || !hw->isInt()) {
    return failValidation(error, "env.hwThreads missing or not an integer");
  }
  const Json* sha = env->find("gitSha");
  if (sha == nullptr || !sha->isString()) {
    return failValidation(error, "env.gitSha missing or not a string");
  }
  for (const auto& [key, value] : doc.members()) {
    (void)value;
    if (!isKnownTopLevelKey(key)) {
      return failValidation(error, "unknown top-level key '" + key + "'");
    }
  }
  const Json* metrics = doc.find("metrics");
  if (metrics != nullptr && !validateMetricsSnapshot(*metrics, error)) {
    return false;
  }
  const Json* profile = doc.find("profile");
  if (profile != nullptr) {
    if (schema->asString() != kReportSchemaV2) {
      return failValidation(error,
                            "'profile' section requires schema pao-report/2");
    }
    if (!validateProfileSection(*profile, error)) return false;
  }
  const Json* ingest = doc.find("ingest");
  if (ingest != nullptr) {
    if (schema->asString() != kReportSchemaV2) {
      return failValidation(error,
                            "'ingest' section requires schema pao-report/2");
    }
    if (!ingest->isObject()) {
      return failValidation(error, "'ingest' is not an object");
    }
    for (const std::string_view key :
         {"bytes", "chunks", "components", "nets", "peakRssBytes"}) {
      const Json* v = ingest->find(key);
      if (v == nullptr || !v->isInt()) {
        return failValidation(error, "ingest." + std::string(key) +
                                         " missing or not an integer");
      }
    }
    for (const std::string_view key : {"mbPerSec", "instsPerSec"}) {
      const Json* v = ingest->find(key);
      if (v == nullptr || !v->isNumber()) {
        return failValidation(error, "ingest." + std::string(key) +
                                         " missing or not a number");
      }
    }
    for (const std::string_view key : {"mapped", "legacyFallback"}) {
      const Json* v = ingest->find(key);
      if (v == nullptr || !v->isBool()) {
        return failValidation(error, "ingest." + std::string(key) +
                                         " missing or not a boolean");
      }
    }
  }
  return true;
}

namespace {

bool hasSuffix(std::string_view key, std::string_view suffix) {
  return key.size() > suffix.size() &&
         key.substr(key.size() - suffix.size()) == suffix;
}

bool isTimingKey(std::string_view key) {
  if (key == "timings" || key == "threads" || key == "hwThreads" ||
      key == "seconds") {
    return true;
  }
  return hasSuffix(key, "Seconds") || hasSuffix(key, "Micros");
}

/// Machine-valued ingest keys: throughput and memory depend on the host
/// (and the run), not the work, so they are stripped like timings.
bool isMachineRateKey(std::string_view key) {
  return key == "mbPerSec" || key == "instsPerSec" || key == "peakRssBytes";
}

/// Schedule-valued "profile" keys: measured on one particular run with one
/// particular worker count. The surviving keys ("jobs", "criticalPath")
/// describe the graph's structure.
bool isProfileScheduleKey(std::string_view key) {
  for (const std::string_view k :
       {"workers", "steals", "headroom", "speedup", "perWorker", "queue"}) {
    if (k == key) return true;
  }
  return false;
}

Json normalizeImpl(const Json& doc, bool insideProfile) {
  switch (doc.type()) {
    case Json::Type::kObject: {
      Json out = Json::object();
      for (const auto& [key, value] : doc.members()) {
        if (isTimingKey(key)) continue;
        if (isMachineRateKey(key)) continue;
        if (insideProfile && isProfileScheduleKey(key)) continue;
        out.set(key, normalizeImpl(value, insideProfile || key == "profile"));
      }
      return out;
    }
    case Json::Type::kArray: {
      Json out = Json::array();
      for (const Json& item : doc.items()) {
        out.push(normalizeImpl(item, insideProfile));
      }
      return out;
    }
    default:
      return doc;
  }
}

}  // namespace

Json normalizeForCompare(const Json& doc) {
  return normalizeImpl(doc, /*insideProfile=*/false);
}

bool validateTrace(const Json& doc, int minSpans, bool requireWorker,
                   std::string* error) {
  if (!doc.isObject()) return failValidation(error, "trace is not an object");
  const Json* events = doc.find("traceEvents");
  if (events == nullptr || !events->isArray()) {
    return failValidation(error, "missing array 'traceEvents'");
  }
  std::vector<std::string> spanNames;
  std::vector<const Json*> spans;
  for (const Json& ev : events->items()) {
    if (!ev.isObject()) return failValidation(error, "event is not an object");
    const Json* name = ev.find("name");
    const Json* ph = ev.find("ph");
    const Json* ts = ev.find("ts");
    if (name == nullptr || !name->isString() || ph == nullptr ||
        !ph->isString() || ts == nullptr || !ts->isNumber()) {
      return failValidation(error, "event missing name/ph/ts");
    }
    if (ph->asString() != "X") continue;
    const Json* dur = ev.find("dur");
    const Json* tid = ev.find("tid");
    if (dur == nullptr || !dur->isNumber() || tid == nullptr ||
        !tid->isNumber()) {
      return failValidation(error, "complete event missing dur/tid");
    }
    spans.push_back(&ev);
    bool seen = false;
    for (const std::string& s : spanNames) {
      if (s == name->asString()) {
        seen = true;
        break;
      }
    }
    if (!seen) spanNames.push_back(name->asString());
  }
  if (static_cast<int>(spanNames.size()) < minSpans) {
    return failValidation(
        error, "expected at least " + std::to_string(minSpans) +
                   " distinct spans, found " +
                   std::to_string(spanNames.size()));
  }
  if (!requireWorker) return true;
  static constexpr std::string_view kWorkerSuffix = ".worker";
  for (const Json* worker : spans) {
    const std::string& wname = worker->find("name")->asString();
    if (wname.size() <= kWorkerSuffix.size() ||
        wname.substr(wname.size() - kWorkerSuffix.size()) != kWorkerSuffix) {
      continue;
    }
    const std::string parentName =
        wname.substr(0, wname.size() - kWorkerSuffix.size());
    const double wts = worker->find("ts")->asDouble();
    const double wend = wts + worker->find("dur")->asDouble();
    for (const Json* parent : spans) {
      if (parent->find("name")->asString() != parentName) continue;
      const double pts = parent->find("ts")->asDouble();
      const double pend = pts + parent->find("dur")->asDouble();
      if (wts >= pts && wend <= pend) return true;  // nested in time
    }
  }
  return failValidation(error,
                        "no '<parent>.worker' span nested inside its parent");
}

}  // namespace pao::obs
