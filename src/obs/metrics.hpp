// Metrics registry — named monotonic counters, gauges and fixed-bucket
// histograms behind a process-wide registry. Design constraints:
//
//   * Hot paths pay one relaxed atomic or less: call sites resolve their
//     handle once (function-local static in the PAO_* macros) and then do a
//     single relaxed fetch_add; ScopedCount batches a loop's increments in a
//     plain thread-local integer and flushes one relaxed add on scope exit.
//   * snapshot() is deterministic under any --threads value: names are
//     emitted canonically sorted, and every metric the library registers
//     counts schedule-independent quantities (work items, not races), so
//     two runs that do the same work produce byte-identical snapshots. Racy
//     quantities (e.g. ClusterSelector::numPairChecks, which can recompute
//     a memo entry under contention) are deliberately NOT registry-backed.
//   * Naming convention (enforced by the pao_lint `obs-naming` rule):
//     pao.<phase>.<metric>, dotted lowercase, e.g.
//     pao.step3.cluster_dp_runs. See DESIGN.md "Observability".
//
// With -DPAO_OBS=OFF the macros expand to nothing (arguments unevaluated);
// the registry itself still compiles so cold consumers (pao_cli's report
// writer, tests) keep working.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/enabled.hpp"
#include "obs/json.hpp"

namespace pao::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(long long v) { v_.store(v, std::memory_order_relaxed); }
  void add(long long n) { v_.fetch_add(n, std::memory_order_relaxed); }
  long long value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> v_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// an implicit overflow bucket catches everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<long long> bounds);

  void observe(long long v);
  const std::vector<long long>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  long long sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<long long> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<long long> sum_{0};
};

/// Default histogram bounds: powers of two 1..65536 — a good fit for the
/// count-shaped quantities the library observes (APs per pin, cluster
/// sizes).
std::span<const long long> defaultHistogramBounds();

/// Estimated q-quantile (q clamped to [0, 1]) of a fixed-bucket histogram
/// by linear interpolation inside the containing bucket (bucket i spans
/// (bounds[i-1], bounds[i]], bucket 0 starts at 0). `buckets` must hold
/// bounds.size() + 1 entries, the last being the overflow bucket.
///
/// Sentinels — always finite, never NaN:
///   * empty histogram (all buckets zero)         -> 0.0
///   * quantile landing in the overflow bucket    -> last finite bound
///     (the histogram cannot resolve beyond it); 0.0 when `bounds` is empty
///   * single sample interpolates like any other count, so q = 0 returns
///     its bucket's lower edge and q = 1 its upper bound
double histogramQuantile(std::span<const long long> bounds,
                         std::span<const std::uint64_t> buckets, double q);
/// Convenience overload over a live registry histogram.
double histogramQuantile(const Histogram& h, double q);

/// Thread-local shard for a loop that increments one counter many times:
/// accumulates in a plain integer, flushes one relaxed add on scope exit.
class ScopedCount {
 public:
  explicit ScopedCount(Counter& c) : c_(&c) {}
  ScopedCount(const ScopedCount&) = delete;
  ScopedCount& operator=(const ScopedCount&) = delete;
  ~ScopedCount() {
    if (n_ != 0) c_->add(n_);
  }
  void inc(std::uint64_t n = 1) { n_ += n; }

 private:
  Counter* c_;
  std::uint64_t n_ = 0;
};

class Registry {
 public:
  /// The process-wide registry (leaked singleton: safe to touch from any
  /// static-destruction context).
  static Registry& instance();

  /// Find-or-create. Returned references are stable for the process
  /// lifetime (node-based storage), so call sites may cache them.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);  ///< defaultHistogramBounds()
  Histogram& histogram(std::string_view name,
                       std::span<const long long> bounds);

  /// Canonically sorted (by name, per kind) snapshot:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// Byte-identical across runs doing the same work at any thread count.
  Json snapshot() const;

  /// Zeroes every value; names stay registered. For tests and per-run
  /// isolation inside one process.
  void reset();

 private:
  Registry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace pao::obs

// --- call-site macros -------------------------------------------------------
// Each expansion resolves its handle once (thread-safe function-local
// static), then pays one relaxed atomic per hit. Names must be string
// literals following pao.<phase>.<metric> (pao_lint `obs-naming`).
#if PAO_OBS_ENABLED

#define PAO_COUNTER_ADD(name, n)                            \
  do {                                                      \
    static ::pao::obs::Counter& pao_obs_counter_ =          \
        ::pao::obs::Registry::instance().counter(name);     \
    pao_obs_counter_.add(static_cast<std::uint64_t>(n));    \
  } while (0)

#define PAO_COUNTER_INC(name) PAO_COUNTER_ADD(name, 1)

#define PAO_GAUGE_SET(name, v)                              \
  do {                                                      \
    static ::pao::obs::Gauge& pao_obs_gauge_ =              \
        ::pao::obs::Registry::instance().gauge(name);       \
    pao_obs_gauge_.set(static_cast<long long>(v));          \
  } while (0)

#define PAO_HISTOGRAM_OBSERVE(name, v)                      \
  do {                                                      \
    static ::pao::obs::Histogram& pao_obs_hist_ =           \
        ::pao::obs::Registry::instance().histogram(name);   \
    pao_obs_hist_.observe(static_cast<long long>(v));       \
  } while (0)

#else  // !PAO_OBS_ENABLED — arguments are discarded unevaluated.

#define PAO_COUNTER_ADD(name, n) \
  do {                           \
  } while (0)
#define PAO_COUNTER_INC(name) \
  do {                        \
  } while (0)
#define PAO_GAUGE_SET(name, v) \
  do {                         \
  } while (0)
#define PAO_HISTOGRAM_OBSERVE(name, v) \
  do {                                 \
  } while (0)

#endif  // PAO_OBS_ENABLED
