// Scoped tracer — RAII spans recorded into per-thread ring buffers and
// exported as Chrome/Perfetto trace_event JSON (load the file at
// https://ui.perfetto.dev or chrome://tracing).
//
// Usage:
//   PAO_TRACE_SCOPE("oracle.step3");
//   PAO_TRACE_SCOPE("step3.cluster_dp",
//                   Json::object().set("cluster", Json(42)));
//
// The tracer is disabled by default; `pao_cli --trace-out t.json` (or a test)
// calls Tracer::instance().enable() before the run and exportChromeTrace()
// after. A TraceScope constructed while the tracer is disabled records
// nothing, and with -DPAO_OBS=OFF the macro compiles out entirely.
//
// Span nesting across parallelFor: each thread keeps a span-name stack;
// util::parallelFor captures the submitting thread's innermost span name and
// opens "<parent>.worker" spans on the draining threads, so worker activity
// groups under its phase in the Perfetto UI (distinct tid rows, related by
// name and containment in time).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/enabled.hpp"
#include "obs/json.hpp"

namespace pao::obs {

struct TraceEvent {
  std::string name;
  Json args;          // null when the span carries no tags
  std::int64_t tsUs;  // start, microseconds since tracer enable
  std::int64_t durUs;
  int tid;
  // Defaults describe an ordinary span. obs/profile.cpp overrides them to
  // place job-graph nodes on their own per-worker tracks (pid 2) and to
  // draw dependency arrows with flow events ('s' start / 'f' finish).
  int pid = 1;
  char ph = 'X';
  std::uint64_t flowId = 0;  // pairs an 's' with its 'f'; 0 = not a flow
};

class Tracer {
 public:
  static Tracer& instance();

  /// Starts a capture. Clears previously collected events. `ringCap` bounds
  /// the number of retained events per thread (oldest overwritten first).
  void enable(std::size_t ringCap = std::size_t{1} << 16);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Microseconds since enable() (0 when disabled).
  std::int64_t nowUs() const;

  /// Records a completed span on the calling thread's ring buffer.
  void record(std::string name, Json args, std::int64_t tsUs,
              std::int64_t durUs);

  /// Records a pre-built event verbatim — tid/pid/ph/flowId are kept as
  /// given rather than stamped with the calling thread's tid. Used by
  /// obs/profile.cpp to replay a job-graph capture onto worker tracks.
  void recordEvent(TraceEvent ev);

  /// Innermost open span name on the calling thread ("" when none). Used by
  /// util::parallelFor to name worker spans after their submitting phase.
  static std::string currentSpanName();

  /// All retained events, sorted by (tsUs, tid) for deterministic export.
  std::vector<TraceEvent> collect() const;
  std::uint64_t eventCount() const;
  std::uint64_t droppedEvents() const;

  /// Serializes collected events as a Chrome trace_event JSON document:
  /// {"traceEvents":[{"name",...,"ph":"X","ts","dur","pid":1,"tid","args"}],
  ///  "displayTimeUnit":"ms"}
  std::string exportChromeTrace() const;

  // Span-name stack maintenance (used by TraceScope; public so the executor
  // integration can pair push/pop around worker bodies).
  static void pushSpanName(const std::string& name);
  static void popSpanName();

 private:
  Tracer() = default;
  struct ThreadBuffer;
  ThreadBuffer& localBuffer();

  std::atomic<bool> enabled_{false};
  std::int64_t epochNs_ = 0;
  std::size_t ringCap_ = std::size_t{1} << 16;
  mutable std::mutex mu_;  // guards buffers_ (registration + collect)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<int> nextTid_{0};
};

/// RAII span. Measures wall time from construction to destruction and
/// records one "ph":"X" event if the tracer was enabled at construction.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (Tracer::instance().enabled()) begin(name, Json());
  }
  TraceScope(const char* name, Json args) {
    if (Tracer::instance().enabled()) begin(name, std::move(args));
  }
  TraceScope(std::string name, Json args) {
    if (Tracer::instance().enabled()) beginStr(std::move(name), std::move(args));
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() {
    if (active_) end();
  }

 private:
  void begin(const char* name, Json args) { beginStr(name, std::move(args)); }
  void beginStr(std::string name, Json args);
  void end();

  bool active_ = false;
  std::string name_;
  Json args_;
  std::int64_t tsUs_ = 0;
};

}  // namespace pao::obs

#if PAO_OBS_ENABLED

#define PAO_OBS_CONCAT_INNER(a, b) a##b
#define PAO_OBS_CONCAT(a, b) PAO_OBS_CONCAT_INNER(a, b)
/// PAO_TRACE_SCOPE("phase.name") or PAO_TRACE_SCOPE("phase.name", argsJson)
#define PAO_TRACE_SCOPE(...)                                 \
  ::pao::obs::TraceScope PAO_OBS_CONCAT(pao_obs_trace_scope_, \
                                        __LINE__)(__VA_ARGS__)

#else

#define PAO_TRACE_SCOPE(...) \
  do {                       \
  } while (0)

#endif  // PAO_OBS_ENABLED
