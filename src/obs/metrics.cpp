#include "obs/metrics.hpp"

#include <utility>

namespace pao::obs {

Histogram::Histogram(std::vector<long long> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1) {}

void Histogram::observe(long long v) {
  // Linear scan: bucket counts are small (defaults: 17) and the common case
  // exits early; a binary search would not beat it for these sizes.
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::span<const long long> defaultHistogramBounds() {
  static const long long kBounds[] = {1,    2,    4,    8,     16,   32,
                                      64,   128,  256,  512,   1024, 2048,
                                      4096, 8192, 16384, 32768, 65536};
  return kBounds;
}

double histogramQuantile(std::span<const long long> bounds,
                         std::span<const std::uint64_t> buckets, double q) {
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;  // empty-histogram sentinel
  const double rank = q * static_cast<double>(total);
  double cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double next = cum + static_cast<double>(buckets[i]);
    if (next >= rank) {
      if (i >= bounds.size()) {
        // Overflow bucket: the histogram cannot resolve past its last
        // finite bound, so saturate there instead of extrapolating.
        return bounds.empty() ? 0.0
                              : static_cast<double>(bounds[bounds.size() - 1]);
      }
      const double lower = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      const double upper = static_cast<double>(bounds[i]);
      const double frac =
          (rank - cum) / static_cast<double>(buckets[i]);  // in [0, 1]
      return lower + (upper - lower) * (frac < 0 ? 0 : frac);
    }
    cum = next;
  }
  return bounds.empty() ? 0.0 : static_cast<double>(bounds[bounds.size() - 1]);
}

double histogramQuantile(const Histogram& h, double q) {
  const std::vector<std::uint64_t> buckets = h.counts();
  return histogramQuantile(h.bounds(), buckets, q);
}

Registry& Registry::instance() {
  static Registry* const kInstance = new Registry();  // leaked on purpose
  return *kInstance;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const auto bounds = defaultHistogramBounds();
  return histogram(name, bounds);
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const long long> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::vector<long long>(
                          bounds.begin(), bounds.end())))
             .first;
  }
  return *it->second;
}

Json Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json out = Json::object();
  // std::map iteration is already canonically sorted by name.
  Json counters = Json::object();
  for (const auto& [name, c] : counters_) {
    counters.set(name, Json(c->value()));
  }
  out.set("counters", std::move(counters));
  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) {
    gauges.set(name, Json(g->value()));
  }
  out.set("gauges", std::move(gauges));
  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) {
    Json hist = Json::object();
    hist.set("count", Json(h->count()));
    hist.set("sum", Json(h->sum()));
    Json bounds = Json::array();
    for (const long long b : h->bounds()) bounds.push(Json(b));
    hist.set("bounds", std::move(bounds));
    Json buckets = Json::array();
    for (const std::uint64_t c : h->counts()) buckets.push(Json(c));
    hist.set("buckets", std::move(buckets));
    histograms.set(name, std::move(hist));
  }
  out.set("histograms", std::move(histograms));
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace pao::obs
