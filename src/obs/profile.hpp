// Job-graph profiling: the post-run analysis layer over util::JobGraph's
// per-node capture. The executor (when built with PAO_OBS) records, for
// every node, begin/end timestamps, the executing worker and steal
// provenance into per-worker append-only logs; this module turns that raw
// capture into the numbers every perf PR is judged by:
//
//   * the measured critical path through the dependency DAG — the chain of
//     node times that lower-bounds wall time at any worker count;
//   * parallelism headroom (sum-of-node-time / critical-path-time): how
//     many workers the graph could keep busy in the limit;
//   * per-worker utilization / idle / steal breakdown;
//   * queue-occupancy stats (how long ready nodes waited to be popped).
//
// The data types live here (obs includes nothing outside obs) and are
// filled by util/jobs.cpp; analysis, the "profile" report section
// (pao-report/2, see obs/report.hpp), its validator, and the Perfetto
// worker-track export (flow events along dependency edges) live in
// profile.cpp. DESIGN.md "Observability" documents the section schema.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace pao::obs {

/// One executed (or skipped) job-graph node. Timestamps are nanoseconds
/// relative to the graph run's start.
struct ProfileNode {
  std::int64_t beginNs = 0;
  std::int64_t endNs = 0;
  std::int32_t worker = -1;      ///< executing worker; -1 = never ran
  std::int32_t stolenFrom = -1;  ///< victim worker when stolen; -1 = own pop
  bool skipped = false;          ///< poisoned by an upstream failure
};

/// Raw capture of one JobGraph::run(): per-node timing plus the dependency
/// CSR, copied out of the graph after the drain so the profile outlives it.
struct GraphProfile {
  std::vector<ProfileNode> nodes;     ///< indexed by job id
  std::vector<std::uint32_t> depOff;  ///< CSR offsets, nodes.size()+1
  std::vector<std::uint32_t> deps;    ///< flat dependency lists (dep < id)
  int workers = 0;
  std::int64_t wallNs = 0;   ///< run() entry to drain completion
  std::uint64_t steals = 0;  ///< cross-deque pops (schedule-dependent)
  /// Tracer timestamp (Tracer::nowUs) of the run start when tracing was
  /// live, else 0 — lets recordProfileTrace place node spans on the same
  /// timeline as the phase spans.
  std::int64_t epochUs = 0;

  bool empty() const { return nodes.empty(); }
};

/// Per-worker slice of a ProfileAnalysis.
struct WorkerSlice {
  std::int64_t busyNs = 0;
  std::int64_t idleNs = 0;  ///< wall - busy, clamped at 0
  std::size_t nodes = 0;
  std::size_t steals = 0;  ///< nodes this worker popped from another deque
  double utilization = 0;  ///< busy / wall (0 when wall is 0)
};

/// Queue-occupancy summary: a node's wait is pop-time minus ready-time
/// (ready = latest dependency end, or run start for roots).
struct QueueStats {
  std::int64_t maxWaitNs = 0;
  double meanWaitNs = 0;
  /// Time-averaged count of ready-but-unpopped nodes: sum-of-wait / wall.
  double avgDepth = 0;
};

struct ProfileAnalysis {
  std::int64_t totalNs = 0;         ///< sum of node durations
  std::int64_t criticalPathNs = 0;  ///< longest dependency chain, measured
  std::vector<std::uint32_t> criticalPath;  ///< node ids, ascending
  /// totalNs / criticalPathNs — the worker count beyond which this graph
  /// cannot speed up. 1.0 when the critical path is everything (or empty).
  double headroom = 1.0;
  double speedup = 1.0;  ///< totalNs / wallNs: parallelism actually achieved
  std::vector<WorkerSlice> perWorker;
  QueueStats queue;
};

/// Pure function of the capture; deterministic for a fixed capture.
ProfileAnalysis analyzeProfile(const GraphProfile& profile);

/// The "profile" section of a pao-report/2 document. Timing-valued keys use
/// the *Micros suffix so normalizeForCompare strips them; on a serial run
/// the surviving structure ("jobs", "criticalPath") is deterministic for
/// graphs whose longest chain is not a near-tie.
Json profileSectionJson(const GraphProfile& profile);
Json profileSectionJson(const GraphProfile& profile,
                        const ProfileAnalysis& analysis);

/// Structural + arithmetic validation of a "profile" section: required
/// keys, criticalPath strictly ascending ids inside [0, jobs), critical
/// path time <= wall time, headroom >= 1, perWorker shaped to "workers".
bool validateProfileSection(const Json& section, std::string* error = nullptr);

/// Replays the capture into the Tracer as proper per-worker Perfetto
/// tracks: one "jobs.node" complete event per node on (pid 2, tid worker),
/// plus s/f flow events along dependency edges so the viewer draws arrows
/// from each node to its dependents. Flow events are capped (kMaxFlowEdges)
/// to keep huge graphs from flooding the ring buffer. No-op when the
/// capture is empty or was taken with tracing off (epochUs == 0).
void recordProfileTrace(const GraphProfile& profile);

inline constexpr std::size_t kMaxFlowEdges = 4096;
/// Perfetto pid for the job-graph worker tracks (phase spans use pid 1).
inline constexpr int kJobTrackPid = 2;

}  // namespace pao::obs
