// Minimal ordered JSON document model for the observability subsystem:
// insertion-ordered objects (so run reports serialize sections in the order
// they were added), exact integer round-tripping for counters, and a strict
// recursive-descent parser used by the schema validators and tests. Not a
// general-purpose JSON library: no comments, no NaN/Inf, UTF-8 is passed
// through verbatim.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pao::obs {

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(long v) : type_(Type::kInt), int_(v) {}
  Json(long long v) : type_(Type::kInt), int_(v) {}
  Json(unsigned v) : type_(Type::kInt), int_(v) {}
  Json(unsigned long v) : type_(Type::kInt), int_(static_cast<long long>(v)) {}
  Json(unsigned long long v)
      : type_(Type::kInt), int_(static_cast<long long>(v)) {}
  Json(double v) : type_(Type::kDouble), dbl_(v) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::kString), str_(s) {}

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::kNull; }
  bool isObject() const { return type_ == Type::kObject; }
  bool isArray() const { return type_ == Type::kArray; }
  bool isString() const { return type_ == Type::kString; }
  bool isInt() const { return type_ == Type::kInt; }
  bool isNumber() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool isBool() const { return type_ == Type::kBool; }

  // --- object access -------------------------------------------------------
  /// Adds or replaces `key` (insertion order preserved; replacement keeps
  /// the original position). Returns *this for chaining. A null value
  /// auto-vivifies into an object.
  Json& set(std::string key, Json value);
  /// Member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;
  /// Find-or-insert (null when new); auto-vivifies a null into an object.
  Json& operator[](std::string_view key);
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  // --- array access --------------------------------------------------------
  /// Appends; a null value auto-vivifies into an array.
  Json& push(Json value);
  const std::vector<Json>& items() const { return items_; }

  // --- scalar access (undefined unless the type matches) -------------------
  bool asBool() const { return bool_; }
  long long asInt() const { return int_; }
  double asDouble() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : dbl_;
  }
  const std::string& asString() const { return str_; }

  friend bool operator==(const Json& a, const Json& b);

  /// Serializes. indent == 0 produces a compact single line; indent > 0
  /// pretty-prints with that many spaces per level. Output is byte-stable
  /// for equal documents.
  std::string dump(int indent = 0) const;

  /// Strict parse of a complete JSON document (trailing whitespace only).
  /// Returns nullopt and sets *error (when given) on malformed input.
  static std::optional<Json> parse(std::string_view text,
                                   std::string* error = nullptr);

 private:
  void dumpTo(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  long long int_ = 0;
  double dbl_ = 0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace pao::obs
