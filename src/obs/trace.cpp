#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

namespace pao::obs {

namespace {

std::int64_t monotonicNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread stack of open span names; referenced by currentSpanName() so
// parallelFor can label worker spans after the submitting phase.
thread_local std::vector<std::string> gSpanStack;

}  // namespace

struct Tracer::ThreadBuffer {
  explicit ThreadBuffer(int tid, std::size_t cap) : tid(tid) {
    ring.reserve(cap < 1024 ? cap : 1024);
    capacity = cap;
  }
  int tid;
  std::size_t capacity;
  std::size_t head = 0;  // next write position once the ring is full
  std::uint64_t recorded = 0;
  std::vector<TraceEvent> ring;
  std::mutex mu;  // record() vs collect(); uncontended in steady state
};

Tracer& Tracer::instance() {
  static Tracer* const kInstance = new Tracer();  // leaked on purpose
  return *kInstance;
}

void Tracer::enable(std::size_t ringCap) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : buffers_) {
    std::lock_guard<std::mutex> bufLock(buf->mu);
    buf->ring.clear();
    buf->head = 0;
    buf->recorded = 0;
    buf->capacity = ringCap;
  }
  ringCap_ = ringCap;
  epochNs_ = monotonicNs();
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_release); }

std::int64_t Tracer::nowUs() const {
  if (!enabled()) return 0;
  return (monotonicNs() - epochNs_) / 1000;
}

Tracer::ThreadBuffer& Tracer::localBuffer() {
  thread_local ThreadBuffer* cached = nullptr;
  thread_local const Tracer* cachedOwner = nullptr;
  if (cached != nullptr && cachedOwner == this) return *cached;
  std::lock_guard<std::mutex> lock(mu_);
  const int tid = nextTid_.fetch_add(1, std::memory_order_relaxed);
  buffers_.push_back(std::make_unique<ThreadBuffer>(tid, ringCap_));
  cached = buffers_.back().get();
  cachedOwner = this;
  return *cached;
}

void Tracer::record(std::string name, Json args, std::int64_t tsUs,
                    std::int64_t durUs) {
  TraceEvent ev{std::move(name), std::move(args), tsUs, durUs, 0};
  ev.tid = localBuffer().tid;
  recordEvent(std::move(ev));
}

void Tracer::recordEvent(TraceEvent ev) {
  ThreadBuffer& buf = localBuffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  ++buf.recorded;
  if (buf.ring.size() < buf.capacity) {
    buf.ring.push_back(std::move(ev));
  } else {
    buf.ring[buf.head] = std::move(ev);
    buf.head = (buf.head + 1) % buf.capacity;
  }
}

std::string Tracer::currentSpanName() {
  return gSpanStack.empty() ? std::string() : gSpanStack.back();
}

void Tracer::pushSpanName(const std::string& name) {
  gSpanStack.push_back(name);
}

void Tracer::popSpanName() {
  if (!gSpanStack.empty()) gSpanStack.pop_back();
}

std::vector<TraceEvent> Tracer::collect() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> bufLock(buf->mu);
      out.insert(out.end(), buf->ring.begin(), buf->ring.end());
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a,
                                       const TraceEvent& b) {
    if (a.tsUs != b.tsUs) return a.tsUs < b.tsUs;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.name < b.name;
  });
  return out;
}

std::uint64_t Tracer::eventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> bufLock(buf->mu);
    n += buf->ring.size();
  }
  return n;
}

std::uint64_t Tracer::droppedEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> bufLock(buf->mu);
    dropped += buf->recorded - buf->ring.size();
  }
  return dropped;
}

std::string Tracer::exportChromeTrace() const {
  Json doc = Json::object();
  Json events = Json::array();
  for (TraceEvent& ev : collect()) {
    Json e = Json::object();
    e.set("name", Json(std::move(ev.name)));
    e.set("cat", Json("pao"));
    e.set("ph", Json(std::string(1, ev.ph)));
    e.set("ts", Json(ev.tsUs));
    if (ev.ph == 'X') e.set("dur", Json(ev.durUs));
    e.set("pid", Json(ev.pid));
    e.set("tid", Json(ev.tid));
    if (ev.ph == 's' || ev.ph == 'f') {
      e.set("id", Json(ev.flowId));
      // Bind the 'f' to the enclosing slice so the arrow lands at the
      // consuming node's start rather than its end.
      if (ev.ph == 'f') e.set("bp", Json("e"));
    }
    if (!ev.args.isNull()) e.set("args", std::move(ev.args));
    events.push(std::move(e));
  }
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", Json("ms"));
  return doc.dump(1);
}

void TraceScope::beginStr(std::string name, Json args) {
  active_ = true;
  name_ = std::move(name);
  args_ = std::move(args);
  Tracer::pushSpanName(name_);
  tsUs_ = Tracer::instance().nowUs();
}

void TraceScope::end() {
  Tracer& tracer = Tracer::instance();
  const std::int64_t endUs = tracer.nowUs();
  Tracer::popSpanName();
  // Record even if the tracer was disabled mid-span, so push/pop stay
  // balanced and the span is not silently lost when export follows disable().
  tracer.record(std::move(name_), std::move(args_), tsUs_,
                endUs > tsUs_ ? endUs - tsUs_ : 0);
}

}  // namespace pao::obs
