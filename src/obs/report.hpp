// Versioned machine-readable run report ("schema": "pao-report/1").
//
// One document unifies what used to live in ad-hoc structs and free-form
// prints: per-step oracle timings (cpu + wall), session dirty-cluster
// stats, cache hit/miss, DRC violation counts, router stats, benchmark
// results — plus a full metrics-registry snapshot. Producers (pao_cli,
// bench_common) create a RunReport, fill named sections with arbitrary
// Json, call captureMetrics(), and write the file.
//
// Schema v1 layout (all sections optional except schema/tool/env):
//   {
//     "schema": "pao-report/1",
//     "tool":   "pao_cli analyze" | "pao_cli route" | "bench_fig3..." | ...,
//     "env":    {"hwThreads": N, "gitSha": "...", ...},
//     "design" | "config" | "args" | "timings" | "oracle" | "session" |
//     "cache" | "drc" | "router" | "bench" | "notes": {...},
//     "degraded": [{"kind": "...", "cls": N, "detail": "..."}, ...],
//     "metrics": Registry::snapshot()
//   }
//
// Determinism contract: validateReport() checks structure;
// normalizeForCompare() strips every timing-valued key so two reports from
// identical work at different --threads compare byte-identical.
#pragma once

#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace pao::obs {

inline constexpr std::string_view kReportSchema = "pao-report/1";
/// Schema v2 = v1 plus an optional "profile" section (job-graph profile,
/// see obs/profile.hpp). Producers opt in by overwriting the "schema" key;
/// validateReport accepts both and rejects "profile" under v1.
inline constexpr std::string_view kReportSchemaV2 = "pao-report/2";

class RunReport {
 public:
  /// `tool` identifies the producer, e.g. "pao_cli analyze".
  explicit RunReport(std::string_view tool);

  /// Find-or-create a top-level section ("oracle", "drc", ...).
  Json& section(std::string_view name) { return doc_[name]; }

  /// Stores Registry::instance().snapshot() under "metrics".
  void captureMetrics();

  const Json& doc() const { return doc_; }
  Json& doc() { return doc_; }

  /// Pretty-printed JSON document.
  std::string dump() const { return doc_.dump(1); }

  /// Writes dump() to `path`; "-" writes to stdout. Returns false on I/O
  /// error (sets *error when given).
  bool writeFile(const std::string& path, std::string* error = nullptr) const;

 private:
  Json doc_;
};

/// Environment info shared by every report: {"hwThreads": N, "gitSha": ...}.
Json environmentJson();

/// Structural validation of a pao-report/1 document: schema/tool/env
/// present and well-typed, only known top-level keys, metrics section (when
/// present) shaped like a Registry snapshot. Returns false and sets *error.
bool validateReport(const Json& doc, std::string* error = nullptr);

/// Structural validation of a metrics-registry snapshot (the "metrics"
/// section of a report, or the `metrics` field of a pao_serve metrics
/// response): counters/gauges/histograms objects, integer counters in
/// canonical sort order, histograms with len(buckets) == len(bounds)+1.
bool validateMetricsSnapshot(const Json& metrics, std::string* error = nullptr);

/// Recursively strips timing-valued keys ("timings", "threads", "hwThreads",
/// "seconds", any key ending in "Seconds" or "Micros") so reports from
/// identical work at different thread counts compare byte-identical. Inside
/// a "profile" section the schedule-valued keys ("workers", "steals",
/// "headroom", "speedup", "perWorker", "queue") are stripped too — what
/// survives is the critical-path *structure*, which two serial runs of the
/// same graph reproduce.
Json normalizeForCompare(const Json& doc);

/// Validation for an exported Chrome trace: well-formed traceEvents with
/// ph:"X" spans, at least `minSpans` distinct span names, and (when
/// `requireWorker`) at least one "<parent>.worker" span nested in time
/// within a same-named parent span. Returns false and sets *error.
bool validateTrace(const Json& doc, int minSpans, bool requireWorker,
                   std::string* error = nullptr);

}  // namespace pao::obs
