// Compile-time gate for the observability instrumentation. The CMake option
// PAO_OBS (ON by default) controls whether the PAO_TRACE_SCOPE /
// PAO_COUNTER_* / PAO_GAUGE_* / PAO_HISTOGRAM_* call-site macros expand to
// real instrumentation or to nothing. The obs library itself (registry,
// tracer, report/JSON) is always compiled — only the call sites in hot
// translation units vanish, so a -DPAO_OBS=OFF build contains no
// Registry/Tracer symbol references in src/pao, src/drc, src/router or
// src/util objects (checked by the ci.sh zero-overhead leg).
#pragma once

#ifndef PAO_OBS
#define PAO_OBS 1
#endif

#if PAO_OBS
#define PAO_OBS_ENABLED 1
#else
#define PAO_OBS_ENABLED 0
#endif
