#include "obs/json.hpp"

#include <cstdio>
#include <cstdlib>

namespace pao::obs {

Json& Json::set(std::string key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::operator[](std::string_view key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(std::string(key), Json());
  return members_.back().second;
}

Json& Json::push(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  items_.push_back(std::move(value));
  return *this;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kInt:
      return a.int_ == b.int_;
    case Json::Type::kDouble:
      return a.dbl_ == b.dbl_;
    case Json::Type::kString:
      return a.str_ == b.str_;
    case Json::Type::kArray:
      return a.items_ == b.items_;
    case Json::Type::kObject:
      return a.members_ == b.members_;
  }
  return false;
}

namespace {

void escapeTo(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void newlineIndent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dumpTo(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld", int_);
      out += buf;
      return;
    }
    case Type::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", dbl_);
      out += buf;
      return;
    }
    case Type::kString:
      escapeTo(out, str_);
      return;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      bool first = true;
      for (const Json& v : items_) {
        if (!first) out.push_back(',');
        first = false;
        newlineIndent(out, indent, depth + 1);
        v.dumpTo(out, indent, depth + 1);
      }
      newlineIndent(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out.push_back(',');
        first = false;
        newlineIndent(out, indent, depth + 1);
        escapeTo(out, k);
        out += indent > 0 ? ": " : ":";
        v.dumpTo(out, indent, depth + 1);
      }
      newlineIndent(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;
  static constexpr int kMaxDepth = 200;

  bool fail(const std::string& msg) {
    if (error.empty()) {
      error = msg + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  bool parseString(std::string& out) {
    if (pos >= text.size() || text[pos] != '"') return fail("expected '\"'");
    ++pos;
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return fail("dangling escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned cp = 0;
            if (!parseHex4(cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF && pos + 1 < text.size() &&
                text[pos] == '\\' && text[pos + 1] == 'u') {
              pos += 2;
              unsigned lo = 0;
              if (!parseHex4(lo)) return false;
              if (lo >= 0xDC00 && lo <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              } else {
                return fail("invalid low surrogate");
              }
            }
            appendUtf8(out, cp);
            break;
          }
          default:
            return fail("unknown escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      out.push_back(c);
      ++pos;
    }
    return fail("unterminated string");
  }

  bool parseHex4(unsigned& cp) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos++];
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("bad hex digit in \\u escape");
      }
    }
    return true;
  }

  static void appendUtf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parseValue(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skipWs();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out = Json::object();
      skipWs();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      while (true) {
        skipWs();
        std::string key;
        if (!parseString(key)) return false;
        skipWs();
        if (pos >= text.size() || text[pos] != ':') return fail("expected ':'");
        ++pos;
        Json value;
        if (!parseValue(value, depth + 1)) return false;
        out.set(std::move(key), std::move(value));
        skipWs();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        if (pos < text.size() && text[pos] == '}') {
          ++pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out = Json::array();
      skipWs();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      while (true) {
        Json value;
        if (!parseValue(value, depth + 1)) return false;
        out.push(std::move(value));
        skipWs();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      std::string s;
      if (!parseString(s)) return false;
      out = Json(std::move(s));
      return true;
    }
    if (c == 't') {
      if (!literal("true")) return fail("bad literal");
      out = Json(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return fail("bad literal");
      out = Json(false);
      return true;
    }
    if (c == 'n') {
      if (!literal("null")) return fail("bad literal");
      out = Json();
      return true;
    }
    // Number.
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    bool isDouble = false;
    while (pos < text.size()) {
      const char d = text[pos];
      if (d >= '0' && d <= '9') {
        ++pos;
      } else if (d == '.' || d == 'e' || d == 'E' || d == '+' || d == '-') {
        isDouble = isDouble || d == '.' || d == 'e' || d == 'E';
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start || (pos == start + 1 && text[start] == '-')) {
      return fail("expected a value");
    }
    const std::string tok(text.substr(start, pos - start));
    char* end = nullptr;
    if (!isDouble) {
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (end != nullptr && *end == '\0') {
        out = Json(v);
        return true;
      }
    }
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    out = Json(d);
    return true;
  }
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  Parser p{text, 0, {}};
  Json out;
  if (!p.parseValue(out, 0)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skipWs();
  if (p.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing content at offset " + std::to_string(p.pos);
    }
    return std::nullopt;
  }
  return out;
}

}  // namespace pao::obs
