// Uniform-bucket spatial index over axis-aligned rectangles. This is the
// region-query backbone of the DRC engine: inserted items are binned into
// fixed-size grid cells and rectangle queries visit only overlapping bins.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "geom/geom.hpp"

namespace pao::geom {

template <typename T>
class GridIndex {
 public:
  /// `cellSize` trades memory for query selectivity; a few track pitches is a
  /// good default for standard-cell-scale layouts.
  explicit GridIndex(Coord cellSize = 4096) : cellSize_(cellSize) {}

  void insert(const Rect& bbox, T value) {
    const std::size_t idx = items_.size();
    items_.push_back({bbox, std::move(value)});
    forEachBin(bbox, [&](std::int64_t key) { bins_[key].push_back(idx); });
  }

  void clear() {
    items_.clear();
    bins_.clear();
  }

  std::size_t size() const { return items_.size(); }

  /// Invokes `fn(bbox, value)` for every item whose bbox intersects `query`
  /// (closed-region semantics: touching counts).
  template <typename Fn>
  void query(const Rect& query, Fn&& fn) const {
    std::unordered_set<std::size_t> seen;
    forEachBin(query, [&](std::int64_t key) {
      const auto it = bins_.find(key);
      if (it == bins_.end()) return;
      for (const std::size_t idx : it->second) {
        if (!items_[idx].bbox.intersects(query)) continue;
        if (seen.insert(idx).second) fn(items_[idx].bbox, items_[idx].value);
      }
    });
  }

  /// Convenience: collects matching values into a vector.
  std::vector<T> queryValues(const Rect& query) const {
    std::vector<T> out;
    this->query(query, [&](const Rect&, const T& v) { out.push_back(v); });
    return out;
  }

 private:
  struct Item {
    Rect bbox;
    T value;
  };

  template <typename Fn>
  void forEachBin(const Rect& r, Fn&& fn) const {
    if (r.empty()) return;
    const std::int64_t x1 = floorDiv(r.xlo);
    const std::int64_t x2 = floorDiv(r.xhi);
    const std::int64_t y1 = floorDiv(r.ylo);
    const std::int64_t y2 = floorDiv(r.yhi);
    for (std::int64_t gy = y1; gy <= y2; ++gy) {
      for (std::int64_t gx = x1; gx <= x2; ++gx) {
        fn((gy << 21) ^ gx);
      }
    }
  }

  std::int64_t floorDiv(Coord v) const {
    return v >= 0 ? v / cellSize_ : (v - cellSize_ + 1) / cellSize_;
  }

  Coord cellSize_;
  std::vector<Item> items_;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> bins_;
};

}  // namespace pao::geom
