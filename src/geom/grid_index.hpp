// Uniform-bucket spatial index over axis-aligned rectangles. This is the
// region-query backbone of the DRC engine: inserted items are binned into
// fixed-size grid cells and rectangle queries visit only overlapping bins.
#pragma once

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <vector>

#include "geom/geom.hpp"

namespace pao::geom {

template <typename T>
class GridIndex {
 public:
  /// `cellSize` trades memory for query selectivity; a few track pitches is a
  /// good default for standard-cell-scale layouts.
  explicit GridIndex(Coord cellSize = 4096) : cellSize_(cellSize) {}

  void insert(const Rect& bbox, T value) {
    const std::size_t idx = items_.size();
    items_.push_back({bbox, std::move(value)});
    forEachBin(bbox, [&](std::int64_t key, std::int64_t, std::int64_t) {
      bins_[key].push_back(idx);
    });
  }

  void clear() {
    items_.clear();
    bins_.clear();
  }

  std::size_t size() const { return items_.size(); }

  /// Invokes `fn(bbox, value)` for every item whose bbox intersects `query`
  /// (closed-region semantics: touching counts). Allocation-free: an item
  /// spanning several visited bins is reported only from the first bin (in
  /// scan order) of its bbox's bin range clipped to the query's — a
  /// stateless dedup, so concurrent queries need no shared state either.
  template <typename Fn>
  void query(const Rect& query, Fn&& fn) const {
    if (query.empty()) return;
    const std::int64_t qx1 = floorDiv(query.xlo);
    const std::int64_t qy1 = floorDiv(query.ylo);
    forEachBin(query, [&](std::int64_t key, std::int64_t gx, std::int64_t gy) {
      const auto it = bins_.find(key);
      if (it == bins_.end()) return;
      for (const std::size_t idx : it->second) {
        const Rect& bbox = items_[idx].bbox;
        if (!bbox.intersects(query)) continue;
        if (gx != std::max(qx1, floorDiv(bbox.xlo)) ||
            gy != std::max(qy1, floorDiv(bbox.ylo))) {
          continue;
        }
        fn(bbox, items_[idx].value);
      }
    });
  }

  /// Convenience: collects matching values into a vector.
  std::vector<T> queryValues(const Rect& query) const {
    std::vector<T> out;
    this->query(query, [&](const Rect&, const T& v) { out.push_back(v); });
    return out;
  }

 private:
  struct Item {
    Rect bbox;
    T value;
  };

  template <typename Fn>
  void forEachBin(const Rect& r, Fn&& fn) const {
    if (r.empty()) return;
    const std::int64_t x1 = floorDiv(r.xlo);
    const std::int64_t x2 = floorDiv(r.xhi);
    const std::int64_t y1 = floorDiv(r.ylo);
    const std::int64_t y2 = floorDiv(r.yhi);
    for (std::int64_t gy = y1; gy <= y2; ++gy) {
      for (std::int64_t gx = x1; gx <= x2; ++gx) {
        fn((gy << 21) ^ gx, gx, gy);
      }
    }
  }

  std::int64_t floorDiv(Coord v) const {
    return v >= 0 ? v / cellSize_ : (v - cellSize_ + 1) / cellSize_;
  }

  Coord cellSize_;
  std::vector<Item> items_;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> bins_;
};

}  // namespace pao::geom
