#include "geom/orient.hpp"

namespace pao::geom {

std::string_view toString(Orient o) {
  switch (o) {
    case Orient::R0: return "R0";
    case Orient::R90: return "R90";
    case Orient::R180: return "R180";
    case Orient::R270: return "R270";
    case Orient::MX: return "MX";
    case Orient::MY: return "MY";
    case Orient::MX90: return "MX90";
    case Orient::MY90: return "MY90";
  }
  return "R0";
}

Orient orientFromString(std::string_view s) {
  if (s == "R0" || s == "N") return Orient::R0;
  if (s == "R90" || s == "W") return Orient::R90;
  if (s == "R180" || s == "S") return Orient::R180;
  if (s == "R270" || s == "E") return Orient::R270;
  if (s == "MX" || s == "FS") return Orient::MX;
  if (s == "MY" || s == "FN") return Orient::MY;
  if (s == "MX90" || s == "FW") return Orient::MX90;
  if (s == "MY90" || s == "FE") return Orient::MY90;
  return Orient::R0;
}

Transform::Transform(Point origin, Orient orient, Point masterSize)
    : origin_(origin), orient_(orient), size_(masterSize) {
  // After rotating the master bbox [0,w]x[0,h] about (0,0), its lower-left
  // moves; postOff_ brings it back to (0,0) so that adding origin_ places the
  // transformed bbox lower-left at the placement point.
  const Rect rotated = Rect(rotate({0, 0}), rotate({size_.x, size_.y}));
  postOff_ = {-rotated.xlo, -rotated.ylo};
}

Point Transform::rotate(const Point& p) const {
  switch (orient_) {
    case Orient::R0: return {p.x, p.y};
    case Orient::R90: return {-p.y, p.x};
    case Orient::R180: return {-p.x, -p.y};
    case Orient::R270: return {p.y, -p.x};
    case Orient::MX: return {p.x, -p.y};
    case Orient::MY: return {-p.x, p.y};
    case Orient::MX90: return {p.y, p.x};    // mirror about x then rotate 90
    case Orient::MY90: return {-p.y, -p.x};  // mirror about y then rotate 90
  }
  return p;
}

Point Transform::rotateInverse(const Point& p) const {
  switch (orient_) {
    case Orient::R0: return {p.x, p.y};
    case Orient::R90: return {p.y, -p.x};
    case Orient::R180: return {-p.x, -p.y};
    case Orient::R270: return {-p.y, p.x};
    case Orient::MX: return {p.x, -p.y};
    case Orient::MY: return {-p.x, p.y};
    case Orient::MX90: return {p.y, p.x};
    case Orient::MY90: return {-p.y, -p.x};
  }
  return p;
}

Point Transform::apply(const Point& p) const {
  const Point r = rotate(p);
  return {r.x + postOff_.x + origin_.x, r.y + postOff_.y + origin_.y};
}

Rect Transform::apply(const Rect& r) const {
  return Rect(apply(r.ll()), apply(r.ur()));
}

Point Transform::applyInverse(const Point& p) const {
  const Point r{p.x - postOff_.x - origin_.x, p.y - postOff_.y - origin_.y};
  return rotateInverse(r);
}

Rect Transform::applyInverse(const Rect& r) const {
  return Rect(applyInverse(r.ll()), applyInverse(r.ur()));
}

}  // namespace pao::geom
