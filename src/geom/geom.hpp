// Basic integer geometry types for layout: points, rectangles, intervals,
// segments. All coordinates are in database units (DBU).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>

namespace pao::geom {

using Coord = std::int64_t;
using Area = std::int64_t;

inline constexpr Coord kCoordMax = std::numeric_limits<Coord>::max() / 4;
inline constexpr Coord kCoordMin = std::numeric_limits<Coord>::min() / 4;

struct Point {
  Coord x = 0;
  Coord y = 0;

  constexpr Point() = default;
  constexpr Point(Coord px, Coord py) : x(px), y(py) {}

  friend constexpr bool operator==(const Point&, const Point&) = default;
  friend constexpr auto operator<=>(const Point&, const Point&) = default;

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
};

/// Manhattan distance between two points.
constexpr Coord manhattanDist(const Point& a, const Point& b) {
  const Coord dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const Coord dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

/// Closed integer interval [lo, hi]. Empty if lo > hi.
struct Interval {
  Coord lo = 0;
  Coord hi = -1;

  constexpr Interval() = default;
  constexpr Interval(Coord l, Coord h) : lo(l), hi(h) {}

  constexpr bool empty() const { return lo > hi; }
  constexpr Coord length() const { return empty() ? 0 : hi - lo; }
  constexpr bool contains(Coord v) const { return lo <= v && v <= hi; }
  constexpr bool overlaps(const Interval& o) const {
    return !empty() && !o.empty() && lo <= o.hi && o.lo <= hi;
  }
  constexpr Interval intersect(const Interval& o) const {
    return {std::max(lo, o.lo), std::min(hi, o.hi)};
  }
  /// Length of overlap; 0 when intervals are disjoint or merely touch.
  constexpr Coord overlapLength(const Interval& o) const {
    const Interval i = intersect(o);
    return i.empty() ? 0 : i.hi - i.lo;
  }
  /// Gap between disjoint intervals; 0 when they overlap or touch.
  constexpr Coord gap(const Interval& o) const {
    if (hi < o.lo) return o.lo - hi;
    if (o.hi < lo) return lo - o.hi;
    return 0;
  }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

/// Axis-aligned rectangle with inclusive-exclusive semantics left to the
/// caller; geometrically we treat it as the closed region [xlo,xhi]x[ylo,yhi].
/// A rect is empty when xlo > xhi or ylo > yhi.
struct Rect {
  Coord xlo = 0;
  Coord ylo = 0;
  Coord xhi = -1;
  Coord yhi = -1;

  constexpr Rect() = default;
  constexpr Rect(Coord x1, Coord y1, Coord x2, Coord y2)
      : xlo(std::min(x1, x2)),
        ylo(std::min(y1, y2)),
        xhi(std::max(x1, x2)),
        yhi(std::max(y1, y2)) {}
  constexpr Rect(const Point& lo, const Point& hi)
      : Rect(lo.x, lo.y, hi.x, hi.y) {}

  friend constexpr bool operator==(const Rect&, const Rect&) = default;
  friend constexpr auto operator<=>(const Rect&, const Rect&) = default;

  constexpr bool empty() const { return xlo > xhi || ylo > yhi; }
  constexpr Coord width() const { return empty() ? 0 : xhi - xlo; }
  constexpr Coord height() const { return empty() ? 0 : yhi - ylo; }
  /// The smaller of width/height — the "wire width" of a shape.
  constexpr Coord minDim() const { return std::min(width(), height()); }
  constexpr Coord maxDim() const { return std::max(width(), height()); }
  constexpr Area area() const { return empty() ? 0 : width() * height(); }
  constexpr Point center() const { return {(xlo + xhi) / 2, (ylo + yhi) / 2}; }
  constexpr Point ll() const { return {xlo, ylo}; }
  constexpr Point ur() const { return {xhi, yhi}; }
  constexpr Interval xSpan() const { return {xlo, xhi}; }
  constexpr Interval ySpan() const { return {ylo, yhi}; }

  constexpr bool contains(const Point& p) const {
    return !empty() && xlo <= p.x && p.x <= xhi && ylo <= p.y && p.y <= yhi;
  }
  constexpr bool contains(const Rect& r) const {
    return !empty() && !r.empty() && xlo <= r.xlo && r.xhi <= xhi &&
           ylo <= r.ylo && r.yhi <= yhi;
  }
  /// True when the closed regions share at least a point (touching counts).
  constexpr bool intersects(const Rect& r) const {
    return !empty() && !r.empty() && xlo <= r.xhi && r.xlo <= xhi &&
           ylo <= r.yhi && r.ylo <= yhi;
  }
  /// True when the open interiors overlap (touching does NOT count).
  constexpr bool overlaps(const Rect& r) const {
    return !empty() && !r.empty() && xlo < r.xhi && r.xlo < xhi &&
           ylo < r.yhi && r.ylo < yhi;
  }
  constexpr Rect intersect(const Rect& r) const {
    return rawRect(std::max(xlo, r.xlo), std::max(ylo, r.ylo),
                   std::min(xhi, r.xhi), std::min(yhi, r.yhi));
  }
  constexpr Rect bloat(Coord d) const {
    return rawRect(xlo - d, ylo - d, xhi + d, yhi + d);
  }
  constexpr Rect bloat(Coord dx, Coord dy) const {
    return rawRect(xlo - dx, ylo - dy, xhi + dx, yhi + dy);
  }
  constexpr Rect translate(Coord dx, Coord dy) const {
    return rawRect(xlo + dx, ylo + dy, xhi + dx, yhi + dy);
  }
  constexpr Rect merge(const Rect& r) const {
    if (empty()) return r;
    if (r.empty()) return *this;
    return rawRect(std::min(xlo, r.xlo), std::min(ylo, r.ylo),
                   std::max(xhi, r.xhi), std::max(yhi, r.yhi));
  }

  /// Construct without lo/hi normalization (may produce an empty rect).
  static constexpr Rect rawRect(Coord x1, Coord y1, Coord x2, Coord y2) {
    Rect r;
    r.xlo = x1;
    r.ylo = y1;
    r.xhi = x2;
    r.yhi = y2;
    return r;
  }
};

/// Projected run length between two rects: the larger of the x-span overlap
/// and y-span overlap (negative values clamp to the signed gap convention used
/// by spacing rules: PRL > 0 means the rects face each other).
constexpr Coord prl(const Rect& a, const Rect& b) {
  const Coord px = std::min(a.xhi, b.xhi) - std::max(a.xlo, b.xlo);
  const Coord py = std::min(a.yhi, b.yhi) - std::max(a.ylo, b.ylo);
  return std::max(px, py);
}

/// Euclidean-square distance between two closed rects (0 when touching or
/// overlapping). Uses squared distance to stay in integer arithmetic.
constexpr Area distSquared(const Rect& a, const Rect& b) {
  const Coord dx = std::max<Coord>({a.xlo - b.xhi, b.xlo - a.xhi, 0});
  const Coord dy = std::max<Coord>({a.ylo - b.yhi, b.ylo - a.yhi, 0});
  return dx * dx + dy * dy;
}

/// Max of the per-axis gaps — the "box distance" used by corner-to-corner
/// spacing checks under the max metric.
constexpr Coord maxAxisGap(const Rect& a, const Rect& b) {
  const Coord dx = std::max<Coord>({a.xlo - b.xhi, b.xlo - a.xhi, 0});
  const Coord dy = std::max<Coord>({a.ylo - b.yhi, b.ylo - a.yhi, 0});
  return std::max(dx, dy);
}

constexpr Coord manhattanDist(const Rect& a, const Rect& b) {
  const Coord dx = std::max<Coord>({a.xlo - b.xhi, b.xlo - a.xhi, 0});
  const Coord dy = std::max<Coord>({a.ylo - b.yhi, b.ylo - a.yhi, 0});
  return dx + dy;
}

std::ostream& operator<<(std::ostream& os, const Point& p);
std::ostream& operator<<(std::ostream& os, const Rect& r);
std::ostream& operator<<(std::ostream& os, const Interval& i);

}  // namespace pao::geom

template <>
struct std::hash<pao::geom::Point> {
  std::size_t operator()(const pao::geom::Point& p) const noexcept {
    const std::size_t hx = std::hash<pao::geom::Coord>{}(p.x);
    const std::size_t hy = std::hash<pao::geom::Coord>{}(p.y);
    return hx ^ (hy + 0x9e3779b97f4a7c15ULL + (hx << 6) + (hx >> 2));
  }
};
