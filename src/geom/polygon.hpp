// Rectilinear polygon operations built on rectangle unions: slab
// decomposition, merged area, boundary extraction (ordered edge rings), and
// maximal-rectangle decomposition.
//
// These are the geometry primitives behind two parts of the paper:
//  - shape-center coordinates are defined on the *maximal rectangles* of a
//    polygonal pin (Sec. II-C), and
//  - the min-step design rule check operates on the *merged boundary* of the
//    pin shape plus a candidate via enclosure (Fig. 3).
#pragma once

#include <vector>

#include "geom/geom.hpp"

namespace pao::geom {

/// Decomposes the union of `rects` into disjoint rects using horizontal slab
/// sweep. Vertically adjacent slabs with identical x-intervals are merged, so
/// the output is canonical for a given union region.
std::vector<Rect> unionSlabs(std::vector<Rect> rects);

/// Total area of the union of `rects` (overlaps counted once).
Area unionArea(const std::vector<Rect>& rects);

/// Groups rects into connected components; rects that touch (share an edge or
/// corner point) are connected. Returns one vector of rects per component.
std::vector<std::vector<Rect>> connectedComponents(
    const std::vector<Rect>& rects);

/// One directed edge of a polygon boundary ring. Rings are oriented so the
/// polygon interior lies to the LEFT of each directed edge: bottom edges run
/// +x, right edges run +y, top edges run -x, left edges run -y for an outer
/// ring (holes wind the opposite way).
struct BoundaryEdge {
  Point from;
  Point to;

  Coord length() const { return manhattanDist(from, to); }
  bool horizontal() const { return from.y == to.y; }

  friend bool operator==(const BoundaryEdge&, const BoundaryEdge&) = default;
};

/// A closed ring of boundary edges (edge i ends where edge i+1 starts; the
/// last edge ends at the first edge's start).
using BoundaryRing = std::vector<BoundaryEdge>;

/// Extracts all boundary rings (outer boundaries and holes) of the union of
/// `rects`. Collinear consecutive edges are merged.
std::vector<BoundaryRing> unionBoundary(const std::vector<Rect>& rects);

/// Maximal rectangles of the union of `rects`: every decomposition slab is
/// extended as far as possible in the perpendicular direction while staying
/// covered, in both sweep directions, and the resulting rect set is deduped.
/// For the L/T/U/cross shapes typical of standard-cell pins this produces
/// exactly the set of all maximal rectangles.
std::vector<Rect> maxRects(const std::vector<Rect>& rects);

}  // namespace pao::geom
