#include "geom/polygon.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>
#include <unordered_map>

#include "util/arena.hpp"

namespace pao::geom {

// These primitives run inside the DRC hot loop (every checkVia calls
// unionBoundary twice through min-step/EOL), so all internal scratch —
// interval lists, sweep events, edge stitching tables — lives in the
// calling thread's arena and dies at function exit. Only the returned
// containers touch the heap.

namespace {

using util::ArenaVector;

template <typename K, typename V, typename Comp = std::less<K>>
using ArenaMap = std::map<K, V, Comp, util::ArenaAllocator<std::pair<const K, V>>>;

template <typename K, typename V, typename Hash = std::hash<K>>
using ArenaHashMap =
    std::unordered_map<K, V, Hash, std::equal_to<K>,
                       util::ArenaAllocator<std::pair<const K, V>>>;

/// Merges a set of closed intervals into a minimal disjoint set (in place).
void mergeIntervals(ArenaVector<Interval>& ivs, ArenaVector<Interval>& out) {
  out.clear();
  std::sort(ivs.begin(), ivs.end(), [](const Interval& a, const Interval& b) {
    return a.lo < b.lo || (a.lo == b.lo && a.hi < b.hi);
  });
  for (const Interval& iv : ivs) {
    if (iv.empty()) continue;
    if (!out.empty() && iv.lo <= out.back().hi) {
      out.back().hi = std::max(out.back().hi, iv.hi);
    } else {
      out.push_back(iv);
    }
  }
}

std::vector<Rect> transpose(const std::vector<Rect>& rects) {
  std::vector<Rect> out;
  out.reserve(rects.size());
  for (const Rect& r : rects) out.emplace_back(r.ylo, r.xlo, r.yhi, r.xhi);
  return out;
}

/// Shared slab sweep: appends the disjoint canonical slabs of the union of
/// `rects` to `out` (any container with emplace_back/back/size/operator[]).
/// The caller must hold an ArenaScope — an arena-backed `out` is allocated
/// from that scope, so opening one here would rewind it on return.
template <typename OutVec>
void unionSlabsInto(const std::vector<Rect>& rects, OutVec& out) {
  ArenaVector<Rect> live;
  live.reserve(rects.size());
  for (const Rect& r : rects) {
    if (!r.empty() && r.area() != 0) live.push_back(r);
  }
  if (live.empty()) return;

  ArenaVector<Coord> ys;
  ys.reserve(live.size() * 2);
  for (const Rect& r : live) {
    ys.push_back(r.ylo);
    ys.push_back(r.yhi);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  // Open slabs from the previous band keyed by x-interval, for vertical
  // merge.
  ArenaMap<std::pair<Coord, Coord>, std::size_t> open;
  ArenaVector<Interval> xs;
  ArenaVector<Interval> merged;
  for (std::size_t bi = 0; bi + 1 < ys.size(); ++bi) {
    const Coord y1 = ys[bi];
    const Coord y2 = ys[bi + 1];
    xs.clear();
    for (const Rect& r : live) {
      if (r.ylo <= y1 && r.yhi >= y2) xs.push_back(r.xSpan());
    }
    ArenaMap<std::pair<Coord, Coord>, std::size_t> nextOpen;
    mergeIntervals(xs, merged);
    for (const Interval& iv : merged) {
      const auto key = std::make_pair(iv.lo, iv.hi);
      const auto it = open.find(key);
      if (it != open.end() && out[it->second].yhi == y1) {
        out[it->second].yhi = y2;  // extend the slab from the previous band
        nextOpen[key] = it->second;
      } else {
        out.emplace_back(iv.lo, y1, iv.hi, y2);
        nextOpen[key] = out.size() - 1;
      }
    }
    open = std::move(nextOpen);
  }
}

}  // namespace

std::vector<Rect> unionSlabs(std::vector<Rect> rects) {
  util::ArenaScope scratch(util::scratchArena());
  std::vector<Rect> out;
  unionSlabsInto(rects, out);
  return out;
}

Area unionArea(const std::vector<Rect>& rects) {
  util::ArenaScope scratch(util::scratchArena());
  ArenaVector<Rect> slabs;
  unionSlabsInto(rects, slabs);
  Area a = 0;
  for (const Rect& r : slabs) a += r.area();
  return a;
}

std::vector<std::vector<Rect>> connectedComponents(
    const std::vector<Rect>& rects) {
  util::ArenaScope scratch(util::scratchArena());
  const std::size_t n = rects.size();
  ArenaVector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](std::size_t i) {
    while (parent[i] != i) {
      parent[i] = parent[parent[i]];
      i = parent[i];
    }
    return i;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rects[i].intersects(rects[j])) parent[find(i)] = find(j);
    }
  }
  ArenaHashMap<std::size_t, std::size_t> rootToIdx;
  std::vector<std::vector<Rect>> out;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = find(i);
    auto [it, inserted] = rootToIdx.try_emplace(root, out.size());
    if (inserted) out.emplace_back();
    out[it->second].push_back(rects[i]);
  }
  return out;
}

namespace {

struct RawEdge {
  Point from;
  Point to;
};

/// Sweeps one scanline worth of horizontal (or, transposed, vertical) edge
/// contributions and appends net boundary edges. `plus` intervals carry
/// weight +1, `minus` weight -1; net +1 emits a forward edge, net -1 a
/// reversed edge, at the given fixed coordinate.
void sweepLine(Coord fixed, bool horizontal, const ArenaVector<Interval>& plus,
               const ArenaVector<Interval>& minus,
               ArenaVector<RawEdge>& out) {
  // Event-based coverage count over the variable axis.
  ArenaMap<Coord, int> delta;
  for (const Interval& iv : plus) {
    delta[iv.lo] += 1;
    delta[iv.hi] -= 1;
  }
  for (const Interval& iv : minus) {
    delta[iv.lo] -= 1;
    delta[iv.hi] += 1;
  }
  int cover = 0;
  Coord start = 0;
  int prevSign = 0;
  for (const auto& [pos, d] : delta) {
    if (prevSign != 0 && pos > start) {
      const Point a = horizontal ? Point{start, fixed} : Point{fixed, start};
      const Point b = horizontal ? Point{pos, fixed} : Point{fixed, pos};
      if (prevSign > 0) {
        out.push_back({a, b});  // bottom (+x) or left-swept equivalent
      } else {
        out.push_back({b, a});  // top (-x)
      }
    }
    cover += d;
    start = pos;
    prevSign = cover > 0 ? 1 : (cover < 0 ? -1 : 0);
  }
}

/// Turn preference: sharpest left turn first, so rings that touch at a corner
/// stay separate and interiors stay on the left.
int turnScore(const Point& inDir, const Point& outDir) {
  // cross > 0: left turn; cross == 0 && dot > 0: straight; cross < 0: right.
  const Coord cross = inDir.x * outDir.y - inDir.y * outDir.x;
  const Coord dot = inDir.x * outDir.x + inDir.y * outDir.y;
  if (cross > 0) return 0;             // left
  if (cross == 0 && dot > 0) return 1; // straight
  if (cross < 0) return 2;             // right
  return 3;                            // U-turn
}

Point dirOf(const RawEdge& e) {
  return {e.to.x == e.from.x ? 0 : (e.to.x > e.from.x ? 1 : -1),
          e.to.y == e.from.y ? 0 : (e.to.y > e.from.y ? 1 : -1)};
}

}  // namespace

std::vector<BoundaryRing> unionBoundary(const std::vector<Rect>& rects) {
  util::ArenaScope scratch(util::scratchArena());
  ArenaVector<Rect> slabs;
  unionSlabsInto(rects, slabs);
  if (slabs.empty()) return {};

  ArenaVector<RawEdge> edges;

  using IntervalPair = std::pair<ArenaVector<Interval>, ArenaVector<Interval>>;
  // Horizontal boundary edges: group slab bottoms (+1) and tops (-1) by y.
  {
    ArenaMap<Coord, IntervalPair> byY;
    for (const Rect& s : slabs) {
      byY[s.ylo].first.push_back(s.xSpan());
      byY[s.yhi].second.push_back(s.xSpan());
    }
    for (auto& [y, pm] : byY) {
      sweepLine(y, /*horizontal=*/true, pm.first, pm.second, edges);
    }
  }
  // Vertical boundary edges: rights carry +1 (direction +y, interior left),
  // lefts carry -1 (direction -y).
  {
    ArenaMap<Coord, IntervalPair> byX;
    for (const Rect& s : slabs) {
      byX[s.xhi].first.push_back(s.ySpan());
      byX[s.xlo].second.push_back(s.ySpan());
    }
    for (auto& [x, pm] : byX) {
      sweepLine(x, /*horizontal=*/false, pm.first, pm.second, edges);
    }
  }

  // Stitch directed edges into rings; interior is on the left of every edge.
  ArenaHashMap<Point, ArenaVector<std::size_t>> outgoing;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    outgoing[edges[i].from].push_back(i);
  }
  ArenaVector<char> used(edges.size(), 0);
  std::vector<BoundaryRing> rings;
  ArenaVector<BoundaryEdge> ring;
  for (std::size_t seed = 0; seed < edges.size(); ++seed) {
    if (used[seed]) continue;
    ring.clear();
    std::size_t cur = seed;
    while (!used[cur]) {
      used[cur] = 1;
      ring.push_back({edges[cur].from, edges[cur].to});
      const Point at = edges[cur].to;
      const auto it = outgoing.find(at);
      if (it == outgoing.end()) break;  // should not happen for valid input
      const Point inDir = dirOf(edges[cur]);
      std::size_t best = edges.size();
      int bestScore = 4;
      for (const std::size_t cand : it->second) {
        if (used[cand]) continue;
        const int score = turnScore(inDir, dirOf(edges[cand]));
        if (score < bestScore) {
          bestScore = score;
          best = cand;
        }
      }
      if (best == edges.size()) break;  // ring closed
      cur = best;
    }
    // Merge collinear consecutive edges, including across the wrap point.
    BoundaryRing merged;
    merged.reserve(ring.size());
    for (const BoundaryEdge& e : ring) {
      if (!merged.empty()) {
        BoundaryEdge& last = merged.back();
        const bool collinear = (last.horizontal() && e.horizontal() &&
                                last.from.y == e.from.y) ||
                               (!last.horizontal() && !e.horizontal() &&
                                last.from.x == e.from.x);
        if (collinear && last.to == e.from) {
          last.to = e.to;
          continue;
        }
      }
      merged.push_back(e);
    }
    if (merged.size() >= 2) {
      BoundaryEdge& last = merged.back();
      BoundaryEdge& first = merged.front();
      const bool collinear =
          (last.horizontal() && first.horizontal() &&
           last.from.y == first.from.y) ||
          (!last.horizontal() && !first.horizontal() &&
           last.from.x == first.from.x);
      if (collinear && last.to == first.from) {
        first.from = last.from;
        merged.pop_back();
      }
    }
    if (!merged.empty()) rings.push_back(std::move(merged));
  }
  return rings;
}

std::vector<Rect> maxRects(const std::vector<Rect>& rects) {
  util::ArenaScope scratch(util::scratchArena());
  std::vector<Rect> out;

  const auto extendVertically = [](const ArenaVector<Rect>& slabs,
                                   std::vector<Rect>& result) {
    for (const Rect& s : slabs) {
      Coord lo = s.ylo;
      Coord hi = s.yhi;
      bool grew = true;
      while (grew) {
        grew = false;
        for (const Rect& t : slabs) {
          if (t.yhi == lo && t.xlo <= s.xlo && t.xhi >= s.xhi) {
            lo = t.ylo;
            grew = true;
          }
          if (t.ylo == hi && t.xlo <= s.xlo && t.xhi >= s.xhi) {
            hi = t.yhi;
            grew = true;
          }
        }
      }
      result.emplace_back(s.xlo, lo, s.xhi, hi);
    }
  };

  ArenaVector<Rect> slabs;
  unionSlabsInto(rects, slabs);
  extendVertically(slabs, out);
  std::vector<Rect> vOut;
  slabs.clear();
  unionSlabsInto(transpose(rects), slabs);
  extendVertically(slabs, vOut);
  for (const Rect& r : transpose(vOut)) out.push_back(r);

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  // Drop rects that are strictly contained in another (non-maximal).
  std::vector<Rect> maximal;
  for (const Rect& r : out) {
    bool dominated = false;
    for (const Rect& o : out) {
      if (o != r && o.contains(r)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal.push_back(r);
  }
  return maximal;
}

}  // namespace pao::geom
