// DEF-style placement orientations and the affine transform that maps
// cell-master coordinates into design coordinates.
#pragma once

#include <string_view>

#include "geom/geom.hpp"

namespace pao::geom {

/// The eight DEF orientations. R90/R270/MX90/MY90 swap width and height.
enum class Orient : std::uint8_t { R0, R90, R180, R270, MX, MY, MX90, MY90 };

std::string_view toString(Orient o);
/// Parses a DEF orientation keyword ("N","S","E","W","FN","FS","FE","FW" or
/// "R0".."MY90"); returns R0 for unknown input.
Orient orientFromString(std::string_view s);

/// True when the orientation exchanges the x and y axes.
constexpr bool swapsAxes(Orient o) {
  return o == Orient::R90 || o == Orient::R270 || o == Orient::MX90 ||
         o == Orient::MY90;
}

/// Affine transform: rotate/mirror about the master origin, then translate so
/// the transformed master bbox lower-left lands at `origin` (DEF COMPONENTS
/// placement semantics, assuming the master bbox lower-left is (0,0)).
class Transform {
 public:
  Transform() = default;

  /// `masterSize` is the (width, height) of the cell master with its bbox
  /// lower-left at (0,0); `origin` is the placement location.
  Transform(Point origin, Orient orient, Point masterSize);

  Point apply(const Point& p) const;
  Rect apply(const Rect& r) const;
  /// Maps a design coordinate back into master coordinates.
  Point applyInverse(const Point& p) const;
  Rect applyInverse(const Rect& r) const;

  Orient orient() const { return orient_; }
  Point origin() const { return origin_; }

 private:
  Point rotate(const Point& p) const;
  Point rotateInverse(const Point& p) const;

  Point origin_;
  Orient orient_ = Orient::R0;
  Point size_;      // master (w, h)
  Point postOff_;   // translation applied after rotation
};

}  // namespace pao::geom
