#include "geom/geom.hpp"

#include <ostream>

namespace pao::geom {

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[" << r.xlo << ", " << r.ylo << " ; " << r.xhi << ", " << r.yhi
            << "]";
}

std::ostream& operator<<(std::ostream& os, const Interval& i) {
  return os << "[" << i.lo << ", " << i.hi << "]";
}

}  // namespace pao::geom
