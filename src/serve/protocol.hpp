// Wire protocol for pao_serve: newline-delimited JSON over a stream
// socket. Every request is one JSON object on one line with a string
// "cmd"; tenant-scoped commands carry a string "tenant". Every request
// gets exactly one response line, in request order per connection:
//
//   {"ok": true, "result": {...}}
//   {"ok": false, "code": "SRVnnn", "error": "<human-readable reason>"}
//
// Error responses produced by the dispatcher additionally carry a "req"
// field — the service-wide monotonic request id assigned at dispatch —
// so a client (or an operator grepping the slow-request log, which prints
// the same id) can correlate a failure with the server-side record.
//
// The SRVnnn codes are stable API (tests assert them; see DESIGN.md
// "Service architecture" for the command grammar):
//
//   SRV001  malformed JSON (the line did not parse as one JSON document)
//   SRV002  missing or wrongly-typed request field
//   SRV003  unknown command
//   SRV004  unknown tenant
//   SRV005  tenant already loaded
//   SRV006  busy: per-tenant in-flight budget exhausted (in-process
//           callers only — the socket server stalls the connection
//           instead of rejecting, see Server)
//   SRV007  load failed (unreadable or unparseable LEF/DEF)
//   SRV008  bad argument value (unknown instance/master, bad region, ...)
//   SRV009  internal error (anything unexpected; the tenant session is
//           unchanged unless the command's doc says otherwise)
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace pao::serve {

inline constexpr std::string_view kErrMalformed = "SRV001";
inline constexpr std::string_view kErrBadField = "SRV002";
inline constexpr std::string_view kErrUnknownCommand = "SRV003";
inline constexpr std::string_view kErrUnknownTenant = "SRV004";
inline constexpr std::string_view kErrTenantExists = "SRV005";
inline constexpr std::string_view kErrBusy = "SRV006";
inline constexpr std::string_view kErrLoadFailed = "SRV007";
inline constexpr std::string_view kErrBadArgument = "SRV008";
inline constexpr std::string_view kErrInternal = "SRV009";

/// Fatal serve-layer failures (socket setup, resource exhaustion) that a
/// front end maps to its exit-code contract. Per-request errors never use
/// this — they become {"ok": false} response lines instead.
class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One request line, parsed once at the transport edge so both the
/// admission-control path and the dispatcher work from the same view.
struct Request {
  obs::Json doc;
  std::string cmd;     ///< empty when absent/mistyped (dispatch → SRV002)
  std::string tenant;  ///< empty for global commands
  bool malformed = false;  ///< line was not a single JSON object
  std::string parseError;
  std::string line;    ///< the raw line (kept for mutation history/replay)
};

Request parseRequest(std::string line);

/// True for commands the dispatcher must run alone: they create/destroy
/// tenants or read cross-tenant state. Per-tenant commands (move, query,
/// report, ...) may run concurrently with other tenants' requests.
bool isSerialCommand(std::string_view cmd);
bool isKnownCommand(std::string_view cmd);

/// Response lines (no trailing newline; the transport appends it).
std::string okLine(obs::Json result);
std::string errorLine(std::string_view code, const std::string& message);
/// Dispatcher flavor: appends the monotonic request id as "req".
std::string errorLine(std::string_view code, const std::string& message,
                      std::uint64_t requestId);

}  // namespace pao::serve
