// Service — the transport-independent heart of pao_serve: a registry of
// resident tenants (one loaded design + incremental OracleSession each),
// a per-tenant admission budget, and a request dispatcher. The epoll
// transport (serve/server.hpp) feeds it parsed Request lines; in-process
// tests and the deterministic replay harness call handleLine directly.
//
// Tenancy model:
//   * Each `load` parses a LEF/DEF pair into a resident tenant. Parsed
//     libraries are interned by AccessCache::fingerprint and shared across
//     tenants for the daemon lifetime, so two tenants loading the same LEF
//     share db::Master pointers — which is what makes the server-wide
//     AccessCache genuinely cross-tenant (its keys are signature tuples
//     containing the Master pointer).
//   * The shared cache means tenant B's initial analysis of a design whose
//     cell signatures tenant A already computed is pure lookups.
//
// Concurrency contract (what makes the PR 3 determinism guarantee extend
// to the service):
//   * Requests for the same tenant are always dispatched in arrival order:
//     dispatchBatch builds a per-tenant request graph (util::JobGraph) that
//     chains same-tenant requests and treats tenant-less/serial commands as
//     barriers, so distinct tenants overlap while each tenant's order
//     holds. (The transport additionally batches at most one request per
//     tenant and serial commands alone; see Server::drainQueue.)
//   * Concurrent nodes touch no shared state except the internally-
//     synchronized AccessCache and obs registry. Cache hit/miss *counters*
//     are therefore schedule-dependent; chosen patterns, query answers and
//     report sections are not.
//   * With ServiceConfig::deterministic, dispatchBatch degrades to strict
//     arrival order on the calling thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/design.hpp"
#include "db/lib.hpp"
#include "db/tech.hpp"
#include "obs/enabled.hpp"
#include "pao/access_cache.hpp"
#include "pao/session.hpp"
#include "serve/protocol.hpp"

#if PAO_OBS_ENABLED
#include "obs/profile.hpp"
#endif

namespace pao::serve {

struct ServiceConfig {
  /// Oracle worker threads per session (0 = auto, as OracleConfig).
  int numThreads = 1;
  /// Max in-flight (admitted, unanswered) requests per tenant; >= 1.
  int tenantBudget = 4;
  std::size_t maxTenants = 64;
  /// Process every request in arrival order on the calling thread.
  bool deterministic = false;
  /// Requests slower than this are counted (pao.serve.slow_requests) and
  /// logged to stderr, rate-limited to one line per second. <= 0 disables.
  long long slowRequestMicros = 250000;
};

class Service {
 public:
  explicit Service(ServiceConfig cfg);
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // --- admission control ----------------------------------------------
  /// Global commands are always admitted (uncounted). Tenant commands
  /// take one budget slot; false means the budget is exhausted — the
  /// socket transport stalls the connection, in-process callers get a
  /// SRV006 response from handleLine. Every successful tryAdmit must be
  /// paired with exactly one release (even when the requesting client
  /// died before its response could be written).
  bool tryAdmit(const Request& req);
  void release(const Request& req);
  std::size_t inflight(const std::string& tenant) const;
  std::size_t inflightTotal() const;

  // --- dispatch --------------------------------------------------------
  /// Admission + dispatch + release in one call (the in-process path).
  std::string handleLine(const std::string& line);
  /// Dispatch only — the caller did the admission bookkeeping.
  std::string dispatch(const Request& req);
  /// Dispatches a batch holding at most one request per tenant and no
  /// serial commands (the transport guarantees both), concurrently unless
  /// configured deterministic. Returns one response per request, aligned.
  std::vector<std::string> dispatchBatch(const std::vector<Request>& batch);

  bool shutdownRequested() const { return shutdown_; }
  std::size_t tenantCount() const { return tenants_.size(); }
  const core::AccessCache& cache() const { return cache_; }

 private:
  /// A parsed LEF, interned for the daemon lifetime (libraries are small
  /// next to designs, and cache entries hold pointers into them).
  struct LibraryBundle {
    db::Tech tech;
    db::Library lib;
  };

  struct Tenant {
    LibraryBundle* bundle = nullptr;
    std::unique_ptr<db::Design> design;
    std::unique_ptr<core::OracleSession> session;
    /// Raw request lines of applied mutations, in apply order — the
    /// replay script a serial client can feed back to reproduce this
    /// tenant's state exactly (soak-test determinism check).
    std::vector<std::string> history;
    std::uint64_t seq = 0;  ///< bumped once per applied mutation
  };

  obs::Json dispatchCommand(const Request& req);
  obs::Json cmdPing(const Request& req);
  obs::Json cmdLoad(const Request& req);
  obs::Json cmdUnload(const Request& req);
  obs::Json cmdMutate(const Request& req);
  obs::Json cmdQuery(const Request& req);
  obs::Json cmdReport(const Request& req);
  obs::Json cmdMetrics(const Request& req);
  obs::Json cmdProfile(const Request& req);
  obs::Json cmdHistory(const Request& req);
  obs::Json cmdSave(const Request& req);

  /// Bumps pao.serve.slow_requests and (rate-limited) logs to stderr when
  /// `micros` exceeds cfg_.slowRequestMicros.
  void maybeLogSlow(const Request& req, std::uint64_t requestId,
                    double micros);

  Tenant& requireTenant(const Request& req);
  /// Resolves "inst" (integer index or instance name) in `t`'s design.
  int resolveInstance(const Tenant& t, const obs::Json& doc) const;

  ServiceConfig cfg_;
  core::AccessCache cache_;  ///< shared across all tenants
  /// Interned libraries, keyed by AccessCache::fingerprint(tech, lib).
  std::map<std::string, std::unique_ptr<LibraryBundle>> libraries_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  /// Admitted-but-unanswered request count per tenant. Guarded by mu_:
  /// tryAdmit/release are called from transport and test threads.
  mutable std::mutex mu_;
  std::map<std::string, int> inflight_;
  std::atomic<bool> shutdown_{false};
  /// Service-wide monotonic request id: assigned at dispatch, threaded
  /// through the request's trace span, error responses and the slow log.
  std::atomic<std::uint64_t> nextRequestId_{1};
  /// Last slow-request stderr line's timestamp (steady ns); CAS-guarded
  /// rate limit of one line per second.
  std::atomic<std::int64_t> lastSlowLogNs_{0};
#if PAO_OBS_ENABLED
  /// Job-graph profile of the last concurrent dispatchBatch (the `profile`
  /// command's answer). Guarded by profileMu_: batches from distinct
  /// connections may complete concurrently.
  mutable std::mutex profileMu_;
  obs::GraphProfile lastBatchProfile_;
#endif
};

}  // namespace pao::serve
