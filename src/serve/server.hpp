// Server — the epoll transport for pao_serve. One thread owns every
// socket: it accepts connections, splits the byte stream into request
// lines, runs admission control, batches admitted requests (at most one
// per tenant, serial commands alone), hands batches to Service::
// dispatchBatch, and writes responses back in per-connection request
// order. Worker threads inside dispatchBatch never touch a socket
// (enforced by the pao_lint executor-hygiene serve extension).
//
// Backpressure, not drops: when a tenant's in-flight budget is exhausted,
// the connection that sent the over-budget request stops being read (its
// EPOLLIN interest is dropped, so the kernel socket buffer — and
// eventually the client — absorbs the pressure) until the tenant drains.
// No admitted request is ever discarded; a request whose client died
// before the response could be written still runs to completion, its
// response is dropped, and its budget slot is released.
//
// Fault points (--faults / PAO_FAULTS, tests/fault_matrix.sh):
//   serve.accept   the accepted connection is closed immediately
//   serve.read     a readable connection is treated as a failed read and
//                  dropped (buffered complete lines are discarded)
//   serve.write    a response write fails; the connection is dropped
// All three drop at most the faulted connection; the daemon, the other
// connections and every tenant session keep working.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace pao::serve {

struct ServerConfig {
  /// Exactly one of unixSocketPath / tcpPort selects the transport.
  /// tcpPort 0 binds an ephemeral 127.0.0.1 port (see boundPort()).
  std::string unixSocketPath;
  int tcpPort = -1;
  int listenBacklog = 64;
  /// A connection buffering more than this many bytes without a newline
  /// is protocol abuse and is dropped.
  std::size_t maxLineBytes = 1 << 20;
};

class Server {
 public:
  Server(Service& service, ServerConfig cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens; throws ServeError on failure. Connections made
  /// after start() returns queue in the backlog until run() drains them,
  /// so tests may start clients before the loop thread is scheduled.
  void start();
  /// Runs the event loop until a shutdown command or stop().
  void run();
  /// Requests loop exit; async-signal-safe (one eventfd write).
  void stop();

  /// The ephemeral port after start() when cfg.tcpPort == 0.
  int boundPort() const { return boundPort_; }

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t dropped = 0;   ///< connections closed on error/fault
    std::uint64_t requests = 0;  ///< request lines enqueued
    std::uint64_t stalls = 0;    ///< admission backpressure events
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Conn {
    int fd = -1;
    std::string in;
    std::string out;
    bool wantWrite = false;  ///< EPOLLOUT armed
    bool stalled = false;    ///< head-of-line request awaiting admission
    bool hasBlocked = false;
    Request blocked;  ///< the parsed-but-unadmitted head-of-line request
  };

  struct Item {
    int fd = -1;
    Request req;
  };

  void acceptAll();
  void handleEvent(int fd, unsigned events);
  void readAvailable(Conn& conn);
  /// Splits complete lines off conn.in into the queue, stopping (stalled)
  /// at the first request the tenant budget cannot admit.
  void parseConn(Conn& conn);
  void drainQueue();
  void retryStalled();
  void flushWrites(Conn& conn);
  void updateInterest(Conn& conn);
  void dropConn(int fd);
  void closeAll();

  Service& service_;
  ServerConfig cfg_;
  int epollFd_ = -1;
  int listenFd_ = -1;
  int wakeFd_ = -1;
  int boundPort_ = -1;
  bool stopping_ = false;
  std::map<int, Conn> conns_;
  std::deque<Item> queue_;
  Stats stats_;
};

}  // namespace pao::serve
