#include "serve/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/fault.hpp"

namespace pao::serve {

namespace {

constexpr int kMaxEvents = 64;

/// Decodes errno for ServeError messages. All call sites run on the single
/// event-loop thread (setup and the epoll loop), so the static buffer
/// behind std::strerror is never read concurrently; funneling the one
/// deliberate use through this helper keeps that argument in one place.
std::string errnoString(int err) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): single event-loop thread, above.
  return std::strerror(err);
}

void addEpoll(int epollFd, int fd, unsigned events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw ServeError(std::string("epoll_ctl add: ") + errnoString(errno));
  }
}

void modEpoll(int epollFd, int fd, unsigned events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  // A concurrently-dropped fd is already out of the set; ignore failures.
  epoll_ctl(epollFd, EPOLL_CTL_MOD, fd, &ev);
}

}  // namespace

Server::Server(Service& service, ServerConfig cfg)
    : service_(service), cfg_(std::move(cfg)) {}

Server::~Server() { closeAll(); }

void Server::start() {
  if (cfg_.unixSocketPath.empty() == (cfg_.tcpPort < 0)) {
    throw ServeError("configure exactly one of unixSocketPath / tcpPort");
  }
  epollFd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epollFd_ < 0) {
    throw ServeError(std::string("epoll_create1: ") + errnoString(errno));
  }
  wakeFd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeFd_ < 0) {
    throw ServeError(std::string("eventfd: ") + errnoString(errno));
  }
  addEpoll(epollFd_, wakeFd_, EPOLLIN);

  if (!cfg_.unixSocketPath.empty()) {
    listenFd_ = socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                       0);
    if (listenFd_ < 0) {
      throw ServeError(std::string("socket: ") + errnoString(errno));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.unixSocketPath.size() >= sizeof(addr.sun_path)) {
      throw ServeError("unix socket path too long: " + cfg_.unixSocketPath);
    }
    std::memcpy(addr.sun_path, cfg_.unixSocketPath.c_str(),
                cfg_.unixSocketPath.size() + 1);
    unlink(cfg_.unixSocketPath.c_str());
    if (bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
      throw ServeError("bind " + cfg_.unixSocketPath + ": " +
                       errnoString(errno));
    }
  } else {
    listenFd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                       0);
    if (listenFd_ < 0) {
      throw ServeError(std::string("socket: ") + errnoString(errno));
    }
    const int one = 1;
    setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.tcpPort));
    if (bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
      throw ServeError("bind 127.0.0.1:" + std::to_string(cfg_.tcpPort) +
                       ": " + errnoString(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      boundPort_ = ntohs(bound.sin_port);
    }
  }
  if (listen(listenFd_, cfg_.listenBacklog) != 0) {
    throw ServeError(std::string("listen: ") + errnoString(errno));
  }
  addEpoll(epollFd_, listenFd_, EPOLLIN);
}

void Server::run() {
  std::vector<epoll_event> events(kMaxEvents);
  while (!stopping_) {
    const int n = epoll_wait(epollFd_, events.data(), kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeFd_) {
        std::uint64_t token = 0;
        while (read(wakeFd_, &token, sizeof(token)) > 0) {
        }
        stopping_ = true;
      } else if (fd == listenFd_) {
        acceptAll();
      } else {
        handleEvent(fd, events[i].events);
      }
    }
    drainQueue();
    if (service_.shutdownRequested()) stopping_ = true;
  }
  closeAll();
}

void Server::stop() {
  if (wakeFd_ < 0) return;
  const std::uint64_t one = 1;
  // Async-signal-safe: a single write; the loop thread does the cleanup.
  [[maybe_unused]] const ssize_t n = write(wakeFd_, &one, sizeof(one));
}

void Server::acceptAll() {
  while (true) {
    const int fd =
        accept4(listenFd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    if (PAO_FAULT_POINT("serve.accept")) {
      close(fd);
      ++stats_.dropped;
      PAO_COUNTER_INC("pao.serve.faulted_accepts");
      continue;
    }
    try {
      addEpoll(epollFd_, fd, EPOLLIN);
    } catch (const ServeError&) {
      close(fd);
      ++stats_.dropped;
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conns_.emplace(fd, std::move(conn));
    ++stats_.accepted;
    PAO_COUNTER_INC("pao.serve.connections_total");
  }
}

void Server::handleEvent(int fd, unsigned events) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    dropConn(fd);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    flushWrites(conn);
    if (conns_.find(fd) == conns_.end()) return;  // dropped by a fault
  }
  if ((events & EPOLLIN) != 0 && !conn.stalled) {
    readAvailable(conn);
  }
}

void Server::readAvailable(Conn& conn) {
  while (true) {
    if (PAO_FAULT_POINT("serve.read")) {
      PAO_COUNTER_INC("pao.serve.faulted_reads");
      dropConn(conn.fd);
      return;
    }
    char buf[4096];
    const ssize_t n = read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
      if (conn.in.size() > cfg_.maxLineBytes) {
        dropConn(conn.fd);
        return;
      }
      continue;
    }
    if (n == 0) {
      // EOF: keep any complete buffered lines (they were fully sent before
      // the client went away — their responses will simply be dropped);
      // discard a trailing partial line. Nothing was admitted for it, so
      // no budget leaks.
      parseConn(conn);
      if (conns_.find(conn.fd) != conns_.end()) dropConn(conn.fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    dropConn(conn.fd);
    return;
  }
  parseConn(conn);
}

void Server::parseConn(Conn& conn) {
  while (!conn.stalled) {
    const std::size_t nl = conn.in.find('\n');
    if (nl == std::string::npos) return;
    std::string line = conn.in.substr(0, nl);
    conn.in.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    Request req = parseRequest(std::move(line));
    if (!service_.tryAdmit(req)) {
      // Backpressure: park the request, stop reading this connection.
      conn.blocked = std::move(req);
      conn.hasBlocked = true;
      conn.stalled = true;
      ++stats_.stalls;
      PAO_COUNTER_INC("pao.serve.admission_stalls");
      updateInterest(conn);
      return;
    }
    queue_.push_back(Item{conn.fd, std::move(req)});
    ++stats_.requests;
  }
}

void Server::drainQueue() {
  while (!queue_.empty() && !stopping_) {
    // Batch = the longest queue prefix holding at most one request per
    // tenant and no serial command (a serial command forms a batch of
    // one). A strict prefix keeps per-connection response order equal to
    // request order.
    std::vector<Item> batch;
    while (!queue_.empty()) {
      const Request& head = queue_.front().req;
      const bool serial =
          head.malformed || head.tenant.empty() || isSerialCommand(head.cmd);
      if (serial) {
        if (batch.empty()) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
        break;
      }
      bool tenantBusy = false;
      for (const Item& item : batch) {
        if (item.req.tenant == head.tenant) tenantBusy = true;
      }
      if (tenantBusy) break;
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }

    std::vector<Request> requests;
    requests.reserve(batch.size());
    for (const Item& item : batch) requests.push_back(item.req);
    const std::vector<std::string> responses =
        service_.dispatchBatch(requests);

    for (std::size_t i = 0; i < batch.size(); ++i) {
      service_.release(batch[i].req);
      const auto it = conns_.find(batch[i].fd);
      if (it == conns_.end()) continue;  // client died; response dropped
      it->second.out += responses[i];
      it->second.out.push_back('\n');
      flushWrites(it->second);
    }
    retryStalled();
    if (service_.shutdownRequested()) return;
  }
}

void Server::retryStalled() {
  // Budget may have drained; re-admit parked head-of-line requests and
  // resume parsing their connections' buffers.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) {
    if (conn.stalled) fds.push_back(fd);
  }
  for (const int fd : fds) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn& conn = it->second;
    if (!conn.hasBlocked || !service_.tryAdmit(conn.blocked)) continue;
    queue_.push_back(Item{fd, std::move(conn.blocked)});
    ++stats_.requests;
    conn.blocked = Request{};
    conn.hasBlocked = false;
    conn.stalled = false;
    updateInterest(conn);
    parseConn(conn);  // may re-stall on the next over-budget line
  }
}

void Server::flushWrites(Conn& conn) {
  while (!conn.out.empty()) {
    if (PAO_FAULT_POINT("serve.write")) {
      PAO_COUNTER_INC("pao.serve.faulted_writes");
      dropConn(conn.fd);
      return;
    }
    const ssize_t n =
        send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.wantWrite) {
        conn.wantWrite = true;
        updateInterest(conn);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    dropConn(conn.fd);
    return;
  }
  if (conn.wantWrite) {
    conn.wantWrite = false;
    updateInterest(conn);
  }
}

void Server::updateInterest(Conn& conn) {
  unsigned events = 0;
  if (!conn.stalled) events |= EPOLLIN;
  if (conn.wantWrite) events |= EPOLLOUT;
  modEpoll(epollFd_, conn.fd, events);
}

void Server::dropConn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  // A parked (stalled) request was never admitted, so dropping it here
  // leaks nothing; admitted requests already in queue_ run to completion
  // and release their budget when their response is discarded.
  epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
  close(fd);
  conns_.erase(it);
  ++stats_.dropped;
}

void Server::closeAll() {
  // Best-effort flush of pending responses (the shutdown ack, usually).
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (const int fd : fds) {
    const auto it = conns_.find(fd);
    if (it != conns_.end() && !it->second.out.empty()) {
      flushWrites(it->second);
    }
  }
  for (const auto& [fd, conn] : conns_) close(fd);
  conns_.clear();
  if (listenFd_ >= 0) {
    close(listenFd_);
    listenFd_ = -1;
    if (!cfg_.unixSocketPath.empty()) unlink(cfg_.unixSocketPath.c_str());
  }
  if (wakeFd_ >= 0) {
    close(wakeFd_);
    wakeFd_ = -1;
  }
  if (epollFd_ >= 0) {
    close(epollFd_);
    epollFd_ = -1;
  }
}

}  // namespace pao::serve
