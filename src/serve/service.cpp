#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "geom/orient.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/def_writer.hpp"
#include "lefdef/lef_parser.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "pao/evaluate.hpp"
#include "pao/report_json.hpp"
#include "serve/protocol.hpp"
#include "util/fault.hpp"
#include "util/jobs.hpp"

namespace pao::serve {

namespace {

/// Per-request failure that becomes an {"ok": false} line; carries one of
/// the stable SRVnnn codes from protocol.hpp.
struct ProtocolError {
  std::string code;
  std::string message;
};

[[noreturn]] void fail(std::string_view code, std::string message) {
  throw ProtocolError{std::string(code), std::move(message)};
}

const obs::Json& requireField(const obs::Json& doc, const char* key) {
  const obs::Json* v = doc.find(key);
  if (v == nullptr) {
    fail(kErrBadField, std::string("missing field '") + key + "'");
  }
  return *v;
}

std::string requireString(const obs::Json& doc, const char* key) {
  const obs::Json& v = requireField(doc, key);
  if (!v.isString()) {
    fail(kErrBadField, std::string("field '") + key + "' must be a string");
  }
  return v.asString();
}

long long requireInt(const obs::Json& doc, const char* key) {
  const obs::Json& v = requireField(doc, key);
  if (!v.isInt()) {
    fail(kErrBadField, std::string("field '") + key + "' must be an integer");
  }
  return v.asInt();
}

std::string slurpFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) fail(kErrLoadFailed, "cannot open " + path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

Service::Service(ServiceConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.tenantBudget < 1) cfg_.tenantBudget = 1;
}

Service::~Service() = default;

bool Service::tryAdmit(const Request& req) {
  if (req.tenant.empty()) return true;
  const std::lock_guard<std::mutex> lock(mu_);
  int& count = inflight_[req.tenant];
  if (count >= cfg_.tenantBudget) return false;
  ++count;
  return true;
}

void Service::release(const Request& req) {
  if (req.tenant.empty()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = inflight_.find(req.tenant);
  if (it != inflight_.end() && it->second > 0) --it->second;
}

std::size_t Service::inflight(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = inflight_.find(tenant);
  return it == inflight_.end() ? 0 : static_cast<std::size_t>(it->second);
}

std::size_t Service::inflightTotal() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [tenant, count] : inflight_) {
    total += static_cast<std::size_t>(count);
  }
  return total;
}

std::string Service::handleLine(const std::string& line) {
  const Request req = parseRequest(line);
  if (!tryAdmit(req)) {
    PAO_COUNTER_INC("pao.serve.admission_rejects");
    const std::uint64_t reqId =
        nextRequestId_.fetch_add(1, std::memory_order_relaxed);
    return errorLine(kErrBusy,
                     "tenant '" + req.tenant + "' has no in-flight budget left",
                     reqId);
  }
  const std::string response = dispatch(req);
  release(req);
  return response;
}

std::string Service::dispatch(const Request& req) {
  const std::uint64_t reqId =
      nextRequestId_.fetch_add(1, std::memory_order_relaxed);
  PAO_TRACE_SCOPE("serve.request",
                  obs::Json::object().set("req", obs::Json(reqId)));
  const auto t0 = std::chrono::steady_clock::now();
  std::string out;
  if (req.malformed) {
    out = errorLine(kErrMalformed, req.parseError, reqId);
    PAO_COUNTER_INC("pao.serve.errors_total");
  } else {
    try {
      out = okLine(dispatchCommand(req));
    } catch (const ProtocolError& e) {
      out = errorLine(e.code, e.message, reqId);
      PAO_COUNTER_INC("pao.serve.errors_total");
    } catch (const std::exception& e) {
      out = errorLine(kErrInternal, e.what(), reqId);
      PAO_COUNTER_INC("pao.serve.errors_total");
    }
  }
  PAO_COUNTER_INC("pao.serve.requests_total");
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  PAO_HISTOGRAM_OBSERVE("pao.serve.request.micros", us);
  maybeLogSlow(req, reqId, us);
  return out;
}

void Service::maybeLogSlow(const Request& req, std::uint64_t requestId,
                           double micros) {
  if (cfg_.slowRequestMicros <= 0 ||
      micros <= static_cast<double>(cfg_.slowRequestMicros)) {
    return;
  }
  PAO_COUNTER_INC("pao.serve.slow_requests");
  // Rate-limit the stderr line to one per second: the counter keeps exact
  // totals, the log is for a human tailing the daemon.
  const std::int64_t now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  constexpr std::int64_t kLogIntervalNs = 1000000000;  // 1 s
  std::int64_t last = lastSlowLogNs_.load(std::memory_order_relaxed);
  if (last != 0 && now - last < kLogIntervalNs) return;
  if (!lastSlowLogNs_.compare_exchange_strong(last, now,
                                              std::memory_order_relaxed)) {
    return;  // another thread logged concurrently
  }
  std::fprintf(stderr,
               "pao_serve: slow request req=%llu cmd=%s tenant=%s "
               "micros=%.0f\n",
               static_cast<unsigned long long>(requestId),
               req.cmd.empty() ? "?" : req.cmd.c_str(),
               req.tenant.empty() ? "-" : req.tenant.c_str(), micros);
}

std::vector<std::string> Service::dispatchBatch(
    const std::vector<Request>& batch) {
  std::vector<std::string> out(batch.size());
  if (cfg_.deterministic || batch.size() <= 1) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out[i] = dispatch(batch[i]);
    }
    return out;
  }
  // Per-tenant request graph: every request is a node chained to the
  // previous request of the same tenant, so arrival order holds within a
  // tenant while distinct tenants overlap. Tenant-less requests (global /
  // serial commands, malformed lines) are barriers: they wait for all
  // earlier chains and gate all later ones. Slot writes only — each node
  // computes one response string; socket I/O stays on the transport thread
  // (lint: executor-hygiene).
  util::JobGraph graph;
  std::vector<util::JobId> ids(batch.size());
  std::map<std::string, util::JobId> lastOfTenant;
  std::optional<util::JobId> lastBarrier;
  std::vector<util::JobId> deps;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    deps.clear();
    if (batch[i].tenant.empty()) {
      for (const auto& [tenant, id] : lastOfTenant) deps.push_back(id);
      if (lastBarrier) deps.push_back(*lastBarrier);
    } else {
      const auto it = lastOfTenant.find(batch[i].tenant);
      if (it != lastOfTenant.end()) deps.push_back(it->second);
      if (lastBarrier) deps.push_back(*lastBarrier);
    }
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    ids[i] = graph.addJob(
        [this, i, &batch, &out] { out[i] = dispatch(batch[i]); }, deps);
    if (batch[i].tenant.empty()) {
      lastOfTenant.clear();
      lastBarrier = ids[i];
    } else {
      lastOfTenant[batch[i].tenant] = ids[i];
    }
  }
  graph.run(static_cast<int>(batch.size()));
#if PAO_OBS_ENABLED
  {
    const std::lock_guard<std::mutex> lock(profileMu_);
    lastBatchProfile_ = graph.profile();
  }
#endif
  return out;
}

obs::Json Service::dispatchCommand(const Request& req) {
  if (req.cmd.empty()) fail(kErrBadField, "missing string 'cmd'");
  if (!isKnownCommand(req.cmd)) {
    fail(kErrUnknownCommand, "unknown command '" + req.cmd + "'");
  }
  if (req.cmd == "ping") return cmdPing(req);
  if (req.cmd == "load") return cmdLoad(req);
  if (req.cmd == "unload") return cmdUnload(req);
  if (req.cmd == "move" || req.cmd == "orient" || req.cmd == "add" ||
      req.cmd == "remove") {
    return cmdMutate(req);
  }
  if (req.cmd == "query") return cmdQuery(req);
  if (req.cmd == "report") return cmdReport(req);
  if (req.cmd == "metrics") return cmdMetrics(req);
  if (req.cmd == "profile") return cmdProfile(req);
  if (req.cmd == "history") return cmdHistory(req);
  if (req.cmd == "save") return cmdSave(req);
  // shutdown — answered before the transport begins its teardown.
  shutdown_ = true;
  obs::Json result = obs::Json::object();
  result.set("stopping", obs::Json(true));
  return result;
}

obs::Json Service::cmdPing(const Request&) {
  obs::Json result = obs::Json::object();
  result.set("pong", obs::Json(true));
  return result;
}

obs::Json Service::cmdLoad(const Request& req) {
  if (req.tenant.empty()) fail(kErrBadField, "missing string 'tenant'");
  if (tenants_.count(req.tenant) != 0) {
    fail(kErrTenantExists, "tenant '" + req.tenant + "' already loaded");
  }
  if (tenants_.size() >= cfg_.maxTenants) {
    fail(kErrBadArgument, "tenant limit reached");
  }
  const std::string lefPath = requireString(req.doc, "lef");
  const std::string defPath = requireString(req.doc, "def");

  auto tenant = std::make_unique<Tenant>();
  try {
    PAO_FAULT_INJECT("lef.io");
    auto fresh = std::make_unique<LibraryBundle>();
    lefdef::ParseOptions lefOpts;
    lefOpts.file = lefPath;
    lefdef::parseLef(slurpFile(lefPath), fresh->tech, fresh->lib, lefOpts);
    // Intern by tech/library identity: tenants loading the same LEF share
    // Master pointers, which makes AccessCache signatures collide across
    // tenants — the whole point of the server-side cache.
    const std::string fp = core::AccessCache::fingerprint(fresh->tech,
                                                          fresh->lib);
    const auto it = libraries_.find(fp);
    if (it == libraries_.end()) {
      tenant->bundle = fresh.get();
      libraries_.emplace(fp, std::move(fresh));
    } else {
      tenant->bundle = it->second.get();
    }

    PAO_FAULT_INJECT("def.io");
    tenant->design = std::make_unique<db::Design>();
    tenant->design->tech = &tenant->bundle->tech;
    tenant->design->lib = &tenant->bundle->lib;
    lefdef::ParseOptions defOpts;
    defOpts.file = defPath;
    lefdef::parseDef(slurpFile(defPath), *tenant->design, defOpts);

    core::OracleConfig cfg = core::withBcaConfig();
    cfg.numThreads = cfg_.numThreads;
    cfg.cache = &cache_;
    tenant->session =
        std::make_unique<core::OracleSession>(*tenant->design, cfg);
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception& e) {
    fail(kErrLoadFailed, e.what());
  }

  const core::OracleSession::Stats& stats = tenant->session->stats();
  // The cache is always wired in serve, so every class build that was not a
  // cache hit is a miss — the cross-tenant warm-cache proof the DESIGN.md
  // tenancy section advertises.
  PAO_COUNTER_ADD("pao.serve.cache.hits", stats.cacheHits);
  PAO_COUNTER_ADD("pao.serve.cache.misses", stats.classBuilds);
  obs::Json result = obs::Json::object();
  result.set("design", core::designSectionJson(tenant->bundle->tech,
                                               tenant->bundle->lib,
                                               *tenant->design));
  result.set("classBuilds", obs::Json(stats.classBuilds));
  result.set("cacheHits", obs::Json(stats.cacheHits));
  tenants_.emplace(req.tenant, std::move(tenant));
  PAO_COUNTER_INC("pao.serve.tenants_loaded");
  return result;
}

obs::Json Service::cmdUnload(const Request& req) {
  requireTenant(req);
  tenants_.erase(req.tenant);
  obs::Json result = obs::Json::object();
  result.set("unloaded", obs::Json(true));
  return result;
}

obs::Json Service::cmdMutate(const Request& req) {
  Tenant& t = requireTenant(req);
  core::OracleSession& session = *t.session;
  int inst = -1;
  if (req.cmd == "add") {
    const std::string masterName = requireString(req.doc, "master");
    const db::Master* master = t.bundle->lib.findMaster(masterName);
    if (master == nullptr) {
      fail(kErrBadArgument, "unknown master '" + masterName + "'");
    }
    const std::string name = requireString(req.doc, "name");
    if (t.design->findInstance(name) >= 0) {
      fail(kErrBadArgument, "instance '" + name + "' already exists");
    }
    db::Instance fresh;
    fresh.name = name;
    fresh.master = master;
    fresh.origin = {static_cast<geom::Coord>(requireInt(req.doc, "x")),
                    static_cast<geom::Coord>(requireInt(req.doc, "y"))};
    const obs::Json* orient = req.doc.find("orient");
    if (orient != nullptr) {
      if (!orient->isString()) {
        fail(kErrBadField, "field 'orient' must be a string");
      }
      fresh.orient = geom::orientFromString(orient->asString());
    }
    inst = session.addInstance(std::move(fresh));
  } else {
    inst = resolveInstance(t, req.doc);
    if (req.cmd == "move") {
      geom::Point target = t.design->instances[inst].origin;
      if (req.doc.find("dx") != nullptr || req.doc.find("dy") != nullptr) {
        const obs::Json* dx = req.doc.find("dx");
        const obs::Json* dy = req.doc.find("dy");
        target.x += dx != nullptr
                        ? static_cast<geom::Coord>(requireInt(req.doc, "dx"))
                        : 0;
        target.y += dy != nullptr
                        ? static_cast<geom::Coord>(requireInt(req.doc, "dy"))
                        : 0;
      } else {
        target = {static_cast<geom::Coord>(requireInt(req.doc, "x")),
                  static_cast<geom::Coord>(requireInt(req.doc, "y"))};
      }
      session.moveInstance(inst, target);
    } else if (req.cmd == "orient") {
      session.setOrient(
          inst, geom::orientFromString(requireString(req.doc, "orient")));
    } else {  // remove
      session.removeInstance(inst);
    }
  }

  ++t.seq;
  t.history.push_back(req.line);
  PAO_COUNTER_INC("pao.serve.mutations_total");
  const core::OracleSession::Stats& stats = session.stats();
  obs::Json result = obs::Json::object();
  result.set("seq", obs::Json(t.seq));
  result.set("inst", obs::Json(inst));
  result.set("dirtyClusters", obs::Json(stats.lastDirtyClusters));
  result.set("clusterCount", obs::Json(stats.lastClusterCount));
  return result;
}

obs::Json Service::cmdQuery(const Request& req) {
  Tenant& t = requireTenant(req);
  const db::Design& design = *t.design;
  geom::Rect region = design.dieArea;
  const obs::Json* box = req.doc.find("region");
  if (box != nullptr) {
    if (!box->isArray() || box->items().size() != 4) {
      fail(kErrBadArgument, "'region' must be [xlo, ylo, xhi, yhi]");
    }
    for (const obs::Json& c : box->items()) {
      if (!c.isInt()) fail(kErrBadArgument, "'region' must hold integers");
    }
    region = {static_cast<geom::Coord>(box->items()[0].asInt()),
              static_cast<geom::Coord>(box->items()[1].asInt()),
              static_cast<geom::Coord>(box->items()[2].asInt()),
              static_cast<geom::Coord>(box->items()[3].asInt())};
  }

  const core::OracleSession& session = *t.session;
  const std::vector<int>& chosen = session.chosenPattern();
  obs::Json instances = obs::Json::array();
  for (std::size_t i = 0; i < design.instances.size(); ++i) {
    const db::Instance& instance = design.instances[i];
    const geom::Rect bbox = instance.bbox();
    const bool overlaps = bbox.xlo < region.xhi && region.xlo < bbox.xhi &&
                          bbox.ylo < region.yhi && region.ylo < bbox.yhi;
    if (!overlaps) continue;
    obs::Json j = obs::Json::object();
    j.set("inst", obs::Json(i));
    j.set("name", obs::Json(instance.name));
    const int idx = static_cast<int>(i);
    j.set("pattern", obs::Json(idx < static_cast<int>(chosen.size())
                                   ? chosen[idx]
                                   : -1));
    obs::Json aps = obs::Json::array();
    const int cls = session.unique().classOf.size() > i
                        ? session.unique().classOf[i]
                        : -1;
    if (cls >= 0) {
      const std::size_t pins = session.classAccess(cls).pinAps.size();
      for (std::size_t p = 0; p < pins; ++p) {
        const auto ap = session.chosenAp(idx, static_cast<int>(p));
        if (!ap) continue;
        obs::Json a = obs::Json::object();
        a.set("pin", obs::Json(p));
        a.set("x", obs::Json(static_cast<long long>(ap->loc.x)));
        a.set("y", obs::Json(static_cast<long long>(ap->loc.y)));
        aps.push(std::move(a));
      }
    }
    j.set("aps", std::move(aps));
    instances.push(std::move(j));
  }
  obs::Json result = obs::Json::object();
  result.set("instances", std::move(instances));
  return result;
}

obs::Json Service::cmdReport(const Request& req) {
  Tenant& t = requireTenant(req);
  // The equivalence contract (tests/serve_smoke.sh): everything below must
  // be byte-identical — after normalizeForCompare and modulo the "tool"
  // key — to `pao_cli analyze` over the same post-mutation design. That is
  // why the sections come from pao/report_json.hpp and why this report
  // carries no session/cache/metrics sections (those are cumulative
  // process-wide numbers a fresh batch run cannot reproduce).
  const core::OracleResult res = t.session->snapshot();
  const core::DirtyApStats dirty = core::countDirtyAps(*t.design, res);
  const core::FailedPinStats failed = core::countFailedPins(*t.design, res);
  obs::RunReport report("pao_serve report");
  report.section("design") = core::designSectionJson(t.bundle->tech,
                                                     t.bundle->lib,
                                                     *t.design);
  report.section("config") =
      core::analysisConfigJson("bca", cfg_.numThreads, false);
  report.section("oracle") = core::oracleSectionJson(res, dirty, failed);
  if (!res.degraded.empty()) {
    report.section("degraded") = core::degradedSectionJson(res.degraded);
  }
  obs::Json result = obs::Json::object();
  result.set("seq", obs::Json(t.seq));
  result.set("report", report.doc());
  return result;
}

obs::Json Service::cmdMetrics(const Request&) {
  obs::Json result = obs::Json::object();
  result.set("tenants", obs::Json(tenants_.size()));
  result.set("libraries", obs::Json(libraries_.size()));
  result.set("inflight", obs::Json(inflightTotal()));
  result.set("cache", core::cacheSectionJson(cache_));
  obs::Json perTenant = obs::Json::object();
  for (const auto& [name, tenant] : tenants_) {
    obs::Json j = obs::Json::object();
    j.set("instances", obs::Json(tenant->design->instances.size()));
    j.set("mutations", obs::Json(tenant->history.size()));
    j.set("seq", obs::Json(tenant->seq));
    j.set("inflight", obs::Json(inflight(name)));
    perTenant.set(name, std::move(j));
  }
  result.set("perTenant", std::move(perTenant));
#if PAO_OBS_ENABLED
  // Rolling request-latency digest, derived from the fixed-bucket
  // histogram the dispatcher already feeds — no extra bookkeeping.
  {
    const obs::Histogram& h =
        obs::Registry::instance().histogram("pao.serve.request.micros");
    obs::Json latency = obs::Json::object();
    latency.set("count", obs::Json(h.count()));
    latency.set("p50Micros", obs::Json(obs::histogramQuantile(h, 0.50)));
    latency.set("p95Micros", obs::Json(obs::histogramQuantile(h, 0.95)));
    latency.set("p99Micros", obs::Json(obs::histogramQuantile(h, 0.99)));
    result.set("latency", std::move(latency));
  }
#endif
  result.set("metrics", obs::Registry::instance().snapshot());
  return result;
}

obs::Json Service::cmdProfile(const Request&) {
  obs::Json result = obs::Json::object();
#if PAO_OBS_ENABLED
  const std::lock_guard<std::mutex> lock(profileMu_);
  if (lastBatchProfile_.empty()) {
    result.set("available", obs::Json(false));
  } else {
    result.set("available", obs::Json(true));
    result.set("profile", obs::profileSectionJson(lastBatchProfile_));
  }
#else
  result.set("available", obs::Json(false));
#endif
  return result;
}

obs::Json Service::cmdHistory(const Request& req) {
  Tenant& t = requireTenant(req);
  obs::Json mutations = obs::Json::array();
  for (const std::string& line : t.history) {
    mutations.push(obs::Json(line));
  }
  obs::Json result = obs::Json::object();
  result.set("seq", obs::Json(t.seq));
  result.set("mutations", std::move(mutations));
  return result;
}

obs::Json Service::cmdSave(const Request& req) {
  Tenant& t = requireTenant(req);
  const std::string path = requireString(req.doc, "def");
  std::ofstream out(path);
  if (!out) fail(kErrBadArgument, "cannot write " + path);
  out << lefdef::writeDef(*t.design);
  if (!out.good()) fail(kErrBadArgument, "short write to " + path);
  obs::Json result = obs::Json::object();
  result.set("path", obs::Json(path));
  result.set("instances", obs::Json(t.design->instances.size()));
  return result;
}

Service::Tenant& Service::requireTenant(const Request& req) {
  if (req.tenant.empty()) fail(kErrBadField, "missing string 'tenant'");
  const auto it = tenants_.find(req.tenant);
  if (it == tenants_.end()) {
    fail(kErrUnknownTenant, "unknown tenant '" + req.tenant + "'");
  }
  return *it->second;
}

int Service::resolveInstance(const Tenant& t, const obs::Json& doc) const {
  const obs::Json& v = requireField(doc, "inst");
  int idx = -1;
  if (v.isInt()) {
    idx = static_cast<int>(v.asInt());
  } else if (v.isString()) {
    idx = t.design->findInstance(v.asString());
    if (idx < 0) {
      fail(kErrBadArgument, "unknown instance '" + v.asString() + "'");
    }
  } else {
    fail(kErrBadField, "field 'inst' must be an index or instance name");
  }
  if (idx < 0 || idx >= static_cast<int>(t.design->instances.size())) {
    fail(kErrBadArgument,
         "instance index " + std::to_string(idx) + " out of range");
  }
  return idx;
}

}  // namespace pao::serve
