#include "serve/protocol.hpp"

#include <utility>

namespace pao::serve {

Request parseRequest(std::string line) {
  Request req;
  req.line = std::move(line);
  std::string error;
  const auto doc = obs::Json::parse(req.line, &error);
  if (!doc || !doc->isObject()) {
    req.malformed = true;
    req.parseError = doc ? "request is not a JSON object" : error;
    return req;
  }
  req.doc = *doc;
  const obs::Json* cmd = req.doc.find("cmd");
  if (cmd != nullptr && cmd->isString()) req.cmd = cmd->asString();
  const obs::Json* tenant = req.doc.find("tenant");
  if (tenant != nullptr && tenant->isString()) {
    req.tenant = tenant->asString();
  }
  return req;
}

bool isSerialCommand(std::string_view cmd) {
  return cmd == "ping" || cmd == "load" || cmd == "unload" ||
         cmd == "metrics" || cmd == "profile" || cmd == "shutdown";
}

bool isKnownCommand(std::string_view cmd) {
  return isSerialCommand(cmd) || cmd == "move" || cmd == "orient" ||
         cmd == "add" || cmd == "remove" || cmd == "query" ||
         cmd == "report" || cmd == "save" || cmd == "history";
}

std::string okLine(obs::Json result) {
  obs::Json resp = obs::Json::object();
  resp.set("ok", obs::Json(true));
  resp.set("result", std::move(result));
  return resp.dump();
}

std::string errorLine(std::string_view code, const std::string& message) {
  obs::Json resp = obs::Json::object();
  resp.set("ok", obs::Json(false));
  resp.set("code", obs::Json(code));
  resp.set("error", obs::Json(message));
  return resp.dump();
}

std::string errorLine(std::string_view code, const std::string& message,
                      std::uint64_t requestId) {
  obs::Json resp = obs::Json::object();
  resp.set("ok", obs::Json(false));
  resp.set("code", obs::Json(code));
  resp.set("error", obs::Json(message));
  resp.set("req", obs::Json(requestId));
  return resp.dump();
}

}  // namespace pao::serve
