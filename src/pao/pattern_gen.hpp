// Step 2 — unique-instance access pattern generation (paper Sec. III-B,
// Algorithms 2 and 3).
//
// Pins are ordered by (x̄ + α·ȳ) of their access points; a DAG is built with
// one vertex group per ordered pin (complete bipartite edges between
// neighboring groups) and shortest paths are extracted by dynamic
// programming. Edge costs (Algorithm 3) are boundary-conflict-aware —
// boundary-pin access points already used by earlier patterns are penalized
// so successive patterns diversify the cell-edge choices — and history-aware:
// the (prev-1, curr) pair is also DRC-checked, catching conflicts that skip
// one pin. Each produced pattern is post-validated by dropping all its
// primary vias simultaneously and checking for unseen DRCs.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "pao/access_point.hpp"
#include "pao/inst_context.hpp"

namespace pao::core {

struct PatternGenConfig {
  /// Pin-ordering weight: sort key is xavg + alpha * yavg (paper uses 0.3).
  double alpha = 0.3;
  /// Patterns to generate per unique instance (3 with BCA, 1 without).
  int numPatterns = 3;
  /// Algorithm 3 cost constants.
  long long drcCost = 32768;
  long long penaltyCost = 4096;
  /// Ablation switches (both on in the paper's flow).
  bool boundaryAware = true;
  bool historyAware = true;
};

class PatternGenerator {
 public:
  /// `pinAps[i]` holds the Step-1 access points of the i-th signal pin
  /// (parallel to ctx.signalPins()).
  PatternGenerator(const InstContext& ctx,
                   const std::vector<std::vector<AccessPoint>>& pinAps,
                   PatternGenConfig cfg = {});

  /// Positions into `pinAps`, sorted by the pin-ordering key. Pins with no
  /// access points are excluded (they can never be part of a pattern).
  const std::vector<int>& pinOrder() const { return order_; }

  /// Runs the iterative DP and returns up to numPatterns distinct validated
  /// patterns, best first. Pattern::apIdx is indexed by signal-pin position
  /// (same indexing as `pinAps`), -1 for pins without access points.
  std::vector<AccessPattern> run();

  /// Number of (prev,curr) via-pair DRC evaluations performed (stat).
  std::size_t numPairChecks() const { return numPairChecks_; }

 private:
  /// Algorithm 3. `prevPrev` is the deterministic predecessor of `prev` on
  /// the current best path (-1 when none).
  long long edgeCost(int prevPin, int prevAp, int curPin, int curAp,
                     int prevPrevPin, int prevPrevAp);
  /// Memoized "are these two access points' primary vias DRC-compatible".
  bool pairClean(int pinA, int apA, int pinB, int apB);
  long long apCost(int pin, int ap) const;
  bool isBoundaryPin(int orderedPos) const;

  const InstContext* ctx_;
  const std::vector<std::vector<AccessPoint>>* pinAps_;
  PatternGenConfig cfg_;
  std::vector<int> order_;
  /// Boundary-pin APs consumed by already-emitted patterns: (pinPos, apIdx).
  std::vector<std::pair<int, int>> usedBoundaryAps_;
  std::map<std::uint64_t, bool> pairCleanCache_;
  std::size_t numPairChecks_ = 0;
};

}  // namespace pao::core
