// Quality evaluators for the paper's two access metrics, independent of the
// generators they judge:
//   - Experiment 1 (Table II): #dirty APs — access points whose primary via
//     placement is NOT DRC-clean against the intra-cell context;
//   - Experiment 2 (Table III): #failed pins — net-attached instance pins
//     left without a DRC-clean access point once every instance has chosen
//     its pattern and neighbors are taken into account.
#pragma once

#include <vector>

#include "pao/oracle.hpp"

namespace pao::core {

struct DirtyApStats {
  std::size_t totalAps = 0;
  std::size_t dirtyAps = 0;
};

/// Re-validates every generated access point's primary via with the full DRC
/// rule set against its unique instance's intra-cell context.
DirtyApStats countDirtyAps(const db::Design& design,
                           const OracleResult& result);

struct FailedPinDetail {
  int instIdx = -1;
  int sigPinPos = -1;
  /// Empty when the pin simply has no chosen access point.
  std::vector<drc::Violation> violations;
};

struct FailedPinStats {
  std::size_t totalPins = 0;   ///< net-attached instance pins
  std::size_t failedPins = 0;  ///< pins without a DRC-clean access point
  /// Populated when requested (diagnostics); capped by the caller's limit.
  std::vector<FailedPinDetail> details;
};

/// How a pin counts as "having a DRC-clean access point".
enum class FailedPinCriterion {
  /// Strict: the pattern-chosen access via must be clean in the full design
  /// context including every other pin's chosen via (used for PAAF).
  kChosenAp,
  /// Lenient: at least one of the pin's generated access points must have a
  /// clean via against the fixed design context (used for the TrRte
  /// baseline, which has no pattern-choice mechanism to hold it to).
  kAnyAp,
};

/// Evaluates every net-attached instance pin against the fully populated
/// design context (all instances' pins and obstructions) and counts the pins
/// without a DRC-clean access point per the criterion.
FailedPinStats countFailedPins(
    const db::Design& design, const OracleResult& result,
    std::size_t maxDetails = 0,
    FailedPinCriterion criterion = FailedPinCriterion::kChosenAp);

}  // namespace pao::core
