#include "pao/pattern_gen.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "util/arena.hpp"

namespace pao::core {

namespace {
constexpr long long kInf = std::numeric_limits<long long>::max() / 4;
}

PatternGenerator::PatternGenerator(
    const InstContext& ctx, const std::vector<std::vector<AccessPoint>>& pinAps,
    PatternGenConfig cfg)
    : ctx_(&ctx), pinAps_(&pinAps), cfg_(cfg) {
  // Pin ordering (Sec. III-B): sort by xavg + alpha * yavg of each pin's
  // access points; pins without access points cannot join any pattern.
  std::vector<std::pair<double, int>> keys;
  for (int i = 0; i < static_cast<int>(pinAps.size()); ++i) {
    if (pinAps[i].empty()) continue;
    double xs = 0;
    double ys = 0;
    for (const AccessPoint& ap : pinAps[i]) {
      xs += static_cast<double>(ap.loc.x);
      ys += static_cast<double>(ap.loc.y);
    }
    const double n = static_cast<double>(pinAps[i].size());
    keys.emplace_back(xs / n + cfg_.alpha * (ys / n), i);
  }
  std::sort(keys.begin(), keys.end());
  order_.reserve(keys.size());
  for (const auto& [key, idx] : keys) order_.push_back(idx);
}

bool PatternGenerator::isBoundaryPin(int orderedPos) const {
  return orderedPos == 0 || orderedPos == static_cast<int>(order_.size()) - 1;
}

long long PatternGenerator::apCost(int pin, int ap) const {
  const AccessPoint& a = (*pinAps_)[pin][ap];
  return a.typeCost();
}

bool PatternGenerator::pairClean(int pinA, int apA, int pinB, int apB) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(pinA) << 48) |
      (static_cast<std::uint64_t>(apA) << 32) |
      (static_cast<std::uint64_t>(pinB) << 16) | static_cast<std::uint64_t>(apB);
  const auto it = pairCleanCache_.find(key);
  if (it != pairCleanCache_.end()) return it->second;

  const AccessPoint& a = (*pinAps_)[pinA][apA];
  const AccessPoint& b = (*pinAps_)[pinB][apB];
  const db::Tech& tech = *ctx_->design().tech;
  bool clean = true;
  // Only up-vias participate in pattern-stage DRC (Sec. III-B, last para).
  if (a.primaryVia(tech) != nullptr && b.primaryVia(tech) != nullptr) {
    ++numPairChecks_;
    // Each generator runs serially within its class, and classes run once
    // each: the total is thread-count-invariant.
    PAO_COUNTER_INC("pao.step2.pair_checks");
    const std::vector<int>& sig = ctx_->signalPins();
    clean =
        ctx_->engine()
            .checkViaPair(*a.primaryVia(tech), a.loc, ctx_->pinNet(sig[pinA]),
                          *b.primaryVia(tech), b.loc, ctx_->pinNet(sig[pinB]))
            .empty();
  }
  pairCleanCache_.emplace(key, clean);
  return clean;
}

long long PatternGenerator::edgeCost(int prevPin, int prevAp, int curPin,
                                     int curAp, int prevPrevPin,
                                     int prevPrevAp) {
  // Algorithm 3, in order: boundary-pin reuse penalties, neighbor DRC,
  // history DRC one pin further back, then plain access-point quality.
  if (cfg_.boundaryAware) {
    const auto used = [&](int pin, int ap) {
      return std::find(usedBoundaryAps_.begin(), usedBoundaryAps_.end(),
                       std::make_pair(pin, ap)) != usedBoundaryAps_.end();
    };
    // prev/curr are boundary pins iff they sit at the ends of the order.
    if (prevPin == order_.front() && used(prevPin, prevAp)) {
      return cfg_.penaltyCost;
    }
    if (curPin == order_.back() && used(curPin, curAp)) {
      return cfg_.penaltyCost;
    }
  }
  if (!pairClean(prevPin, prevAp, curPin, curAp)) return cfg_.drcCost;
  if (cfg_.historyAware && prevPrevPin >= 0 &&
      !pairClean(prevPrevPin, prevPrevAp, curPin, curAp)) {
    return cfg_.drcCost;
  }
  return apCost(prevPin, prevAp) + apCost(curPin, curAp);
}

std::vector<AccessPattern> PatternGenerator::run() {
  std::vector<AccessPattern> patterns;
  if (order_.empty()) return patterns;
  const int numOrdered = static_cast<int>(order_.size());
  const db::Tech& tech = *ctx_->design().tech;

  // Flat DP layout (ROADMAP item 2): pin m's AP states occupy
  // [off[m], off[m+1]) of one contiguous cost/prev pair instead of a
  // vector-of-vectors — two bumps in the worker's scratch arena per
  // iteration instead of 2*(numOrdered+1) heap round-trips.
  util::ArenaScope runScratch(util::scratchArena());
  util::ArenaVector<int> off(static_cast<std::size_t>(numOrdered) + 1, 0);
  for (int m = 0; m < numOrdered; ++m) {
    off[m + 1] = off[m] + static_cast<int>((*pinAps_)[order_[m]].size());
  }
  const int total = off[numOrdered];

  for (int iter = 0; iter < cfg_.numPatterns; ++iter) {
    // Per-iteration scratch dies at the bottom of the loop body.
    util::ArenaScope iterScratch(util::scratchArena());
    util::ArenaVector<long long> cost(static_cast<std::size_t>(total), kInf);
    util::ArenaVector<int> prev(static_cast<std::size_t>(total), -1);

    // Source layer: entering the first pin costs its AP cost (plus the
    // boundary penalty when this boundary AP was already consumed).
    for (int n = 0; n < off[1]; ++n) {
      long long c = apCost(order_[0], n);
      if (cfg_.boundaryAware &&
          std::find(usedBoundaryAps_.begin(), usedBoundaryAps_.end(),
                    std::make_pair(order_[0], n)) != usedBoundaryAps_.end()) {
        c = cfg_.penaltyCost;
      }
      cost[n] = c;
    }

    for (int m = 1; m < numOrdered; ++m) {
      const int curPin = order_[m];
      const int prevPin = order_[m - 1];
      const int nCur = off[m + 1] - off[m];
      const int nPrev = off[m] - off[m - 1];
      for (int n = 0; n < nCur; ++n) {
        for (int np = 0; np < nPrev; ++np) {
          if (cost[off[m - 1] + np] >= kInf) continue;
          // The predecessor of `np` is already fixed — the history pair is
          // deterministic (paper Sec. III-B).
          const int prevPrevAp = m >= 2 ? prev[off[m - 1] + np] : -1;
          const int prevPrevPin = m >= 2 ? order_[m - 2] : -1;
          const long long ec = edgeCost(prevPin, np, curPin, n,
                                        prevPrevAp >= 0 ? prevPrevPin : -1,
                                        prevPrevAp);
          const long long totalCost = cost[off[m - 1] + np] + ec;
          if (totalCost < cost[off[m] + n]) {
            cost[off[m] + n] = totalCost;
            prev[off[m] + n] = np;
          }
        }
      }
    }

    // Trace back from the cheapest terminal vertex.
    const int last = numOrdered - 1;
    int bestN = -1;
    long long bestCost = kInf;
    for (int n = 0; n < off[last + 1] - off[last]; ++n) {
      if (cost[off[last] + n] < bestCost) {
        bestCost = cost[off[last] + n];
        bestN = n;
      }
    }
    if (bestN < 0) break;

    AccessPattern pat;
    pat.apIdx.assign(pinAps_->size(), -1);
    pat.cost = bestCost;
    int n = bestN;
    for (int m = last; m >= 0; --m) {
      pat.apIdx[order_[m]] = n;
      n = prev[off[m] + n];
    }

    // Reject duplicates (the penalty mechanism usually prevents them, but a
    // cell with one AP per pin can only ever produce one pattern).
    const auto dup = std::find_if(
        patterns.begin(), patterns.end(),
        [&](const AccessPattern& p) { return p.apIdx == pat.apIdx; });

    // Post-validation (Sec. III-B, last para): drop all primary vias of the
    // pattern simultaneously and look for unseen DRCs — non-neighbor pairs
    // and multi-object interactions the DP assumption missed.
    std::vector<drc::Shape> allVias;
    const std::vector<int>& sig = ctx_->signalPins();
    for (std::size_t i = 0; i < pat.apIdx.size(); ++i) {
      if (pat.apIdx[i] < 0) continue;
      const AccessPoint& ap = (*pinAps_)[i][pat.apIdx[i]];
      if (ap.primaryVia(tech) == nullptr) continue;
      for (const drc::Shape& s : ctx_->engine().viaShapes(
               *ap.primaryVia(tech), ap.loc, ctx_->pinNet(sig[i]))) {
        allVias.push_back(s);
      }
    }
    pat.validated = true;
    for (std::size_t i = 0; i < pat.apIdx.size() && pat.validated; ++i) {
      if (pat.apIdx[i] < 0) continue;
      const AccessPoint& ap = (*pinAps_)[i][pat.apIdx[i]];
      if (ap.primaryVia(tech) == nullptr) continue;
      // Context for this via: every other pin's via shapes.
      std::vector<drc::Shape> others;
      for (const drc::Shape& s : allVias) {
        if (s.net != ctx_->pinNet(sig[i])) others.push_back(s);
      }
      if (!ctx_->engine().isViaClean(*ap.primaryVia(tech), ap.loc,
                                     ctx_->pinNet(sig[i]), others)) {
        pat.validated = false;
      }
    }

    // Mark this pattern's boundary APs as used so the next iteration
    // diversifies the cell-edge access points.
    for (const int pinPos : {order_.front(), order_.back()}) {
      if (pat.apIdx[pinPos] >= 0) {
        usedBoundaryAps_.emplace_back(pinPos, pat.apIdx[pinPos]);
      }
    }

    if (dup == patterns.end() && pat.validated) {
      patterns.push_back(std::move(pat));
    } else if (dup == patterns.end() && patterns.empty()) {
      // Keep a best-effort pattern when nothing validated; Step 3 and the
      // evaluator will surface its failing pins honestly.
      patterns.push_back(std::move(pat));
    }
  }
  PAO_COUNTER_ADD("pao.step2.patterns_generated", patterns.size());
  return patterns;
}

}  // namespace pao::core
