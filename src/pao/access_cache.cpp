#include "pao/access_cache.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string_view>
#include <utility>

#include "geom/orient.hpp"
#include "util/fault.hpp"

namespace pao::core {

const ClassAccess* AccessCache::find(const Key& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void AccessCache::store(const Key& key, ClassAccess originRelative) {
  const std::lock_guard<std::mutex> lock(mu_);
  // Insert-if-absent: a published entry is never replaced, so concurrent
  // readers may hold a find() pointer without the lock. Two sessions racing
  // to store the same signature compute identical values anyway.
  entries_.try_emplace(key, std::move(originRelative));
}

void AccessCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

ClassAccess AccessCache::translate(const ClassAccess& ca,
                                   geom::Point origin) {
  ClassAccess out = ca;
  for (std::vector<AccessPoint>& pinAps : out.pinAps) {
    for (AccessPoint& ap : pinAps) ap.loc = ap.loc + origin;
  }
  return out;
}


namespace {

/// One line per record; fields are space-separated. Format:
///   FINGERPRINT <hex>                               (v2 only)
///   ENTRY <master> <orient> <numOffsets> <offsets...>
///   PIN <numAps>
///   AP <x> <y> <layer> <prefType> <nonPrefType> <dirs> <numVias> <names...>
///   ORDER <numPins> <positions...>
///   PATTERN <cost> <validated> <numIdx> <apIdx...>
constexpr const char* kHeaderV1 = "PAO_ACCESS_CACHE v1";
constexpr const char* kHeaderV2 = "PAO_ACCESS_CACHE v2";

/// FNV-1a, 64-bit: tiny, well-distributed, and identical everywhere (no
/// dependence on std::hash's unspecified per-platform behavior).
struct Fnv1a {
  std::uint64_t h = 1469598103934665603ULL;
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
  void str(std::string_view s) {
    bytes(s.data(), s.size());
    bytes("\0", 1);  // delimit so ("ab","c") != ("a","bc")
  }
  void num(long long v) { bytes(&v, sizeof v); }
  void rect(const geom::Rect& r) {
    num(r.xlo);
    num(r.ylo);
    num(r.xhi);
    num(r.yhi);
  }
};

}  // namespace

std::string AccessCache::fingerprint(const db::Tech& tech,
                                     const db::Library& lib) {
  Fnv1a f;
  f.num(tech.dbuPerMicron);
  for (const db::Layer& l : tech.layers()) {
    f.str(l.name);
    f.num(static_cast<int>(l.type));
    f.num(static_cast<int>(l.dir));
    f.num(l.width);
    f.num(l.pitch);
    f.num(l.minArea);
    f.num(l.cutSpacing);
  }
  for (const db::ViaDef& v : tech.viaDefs()) {
    f.str(v.name);
    f.num(v.botLayer);
    f.num(v.cutLayer);
    f.num(v.topLayer);
    f.rect(v.botEnc);
    f.rect(v.cut);
    f.rect(v.topEnc);
  }
  // Masters sorted by name: library insertion order is a parse artifact,
  // not part of the identity the cache depends on.
  std::vector<const db::Master*> masters;
  for (const auto& m : lib.masters()) masters.push_back(m.get());
  std::sort(masters.begin(), masters.end(),
            [](const db::Master* a, const db::Master* b) {
              return a->name < b->name;
            });
  for (const db::Master* m : masters) {
    f.str(m->name);
    f.num(static_cast<int>(m->cls));
    f.num(m->width);
    f.num(m->height);
    for (const db::Pin& pin : m->pins) {
      f.str(pin.name);
      f.num(static_cast<int>(pin.use));
      for (const db::PinShape& s : pin.shapes) {
        f.num(s.layer);
        f.rect(s.rect);
      }
    }
    for (const db::Obstruction& o : m->obstructions) {
      f.num(o.layer);
      f.rect(o.rect);
    }
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(f.h));
  return buf;
}

std::string AccessCache::save(const db::Tech& tech,
                              const db::Library& lib) const {
  const std::lock_guard<std::mutex> lock(mu_);
  // entries_ is keyed by Master pointer, so its iteration order follows
  // heap addresses; serialize sorted by (master name, orient, offsets)
  // instead so the file is byte-stable across processes.
  std::vector<const std::pair<const Key, ClassAccess>*> ordered;
  ordered.reserve(entries_.size());
  for (const auto& entry : entries_) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(), [](const auto* a, const auto* b) {
    const auto& [ma, oa, offa] = a->first;
    const auto& [mb, ob, offb] = b->first;
    return std::tie(ma->name, oa, offa) < std::tie(mb->name, ob, offb);
  });

  std::ostringstream os;
  os << kHeaderV2 << "\n";
  os << "FINGERPRINT " << fingerprint(tech, lib) << "\n";
  for (const auto* entry : ordered) {
    const auto& [key, ca] = *entry;
    const auto& [master, orient, offsets] = key;
    os << "ENTRY " << master->name << " "
       << geom::toString(orient) << " " << offsets.size();
    for (const geom::Coord o : offsets) os << " " << o;
    os << "\n";
    os << "PINS " << ca.pinAps.size() << "\n";
    for (const std::vector<AccessPoint>& pinAps : ca.pinAps) {
      os << "PIN " << pinAps.size() << "\n";
      for (const AccessPoint& ap : pinAps) {
        os << "AP " << ap.loc.x << " " << ap.loc.y << " " << ap.layer << " "
           << static_cast<int>(ap.prefType) << " "
           << static_cast<int>(ap.nonPrefType) << " "
           << static_cast<int>(ap.dirs) << " " << ap.viaIdx.size();
        for (const std::int32_t v : ap.viaIdx) os << " " << tech.viaDef(v).name;
        os << "\n";
      }
    }
    os << "ORDER " << ca.pinOrder.size();
    for (const int p : ca.pinOrder) os << " " << p;
    os << "\n";
    os << "PATTERNS " << ca.patterns.size() << "\n";
    for (const AccessPattern& pat : ca.patterns) {
      os << "PATTERN " << pat.cost << " " << (pat.validated ? 1 : 0) << " "
         << pat.apIdx.size();
      for (const int i : pat.apIdx) os << " " << i;
      os << "\n";
    }
  }
  // Trailer: load() requires it for v2 files, so a file truncated on an
  // entry boundary (every record intact, later entries simply missing) is
  // still detected and rejected instead of silently loading short.
  os << "END " << ordered.size() << "\n";
  return os.str();
}

std::size_t AccessCache::load(const std::string& text, const db::Tech& tech,
                              const db::Library& lib,
                              std::string* errorOut) {
  const auto fail = [&](std::string why) {
    if (errorOut != nullptr) *errorOut = std::move(why);
    return std::size_t{0};
  };
  if (errorOut != nullptr) errorOut->clear();
  if (PAO_FAULT_POINT("cache.read")) {
    return fail("access cache: injected fault 'cache.read'");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  std::istringstream is(text);
  std::string line;
  std::getline(is, line);
  if (line == kHeaderV1) return loadV1(is, text.size(), tech, lib);
  if (line != kHeaderV2) {
    return fail("access cache: unrecognized header '" + line + "'");
  }

  std::string tag, fp;
  if (!(is >> tag >> fp) || tag != "FINGERPRINT") {
    return fail("access cache: malformed v2 header (missing FINGERPRINT)");
  }
  const std::string expected = fingerprint(tech, lib);
  if (fp != expected) {
    return fail("access cache: fingerprint mismatch (cache " + fp +
                ", tech/library " + expected +
                ") — the cache was built against a different library");
  }

  // v2 is all-or-nothing: parse into `pending` and commit only when the
  // whole file (through the END trailer) is consistent. A truncated or
  // bit-flipped file must never install partial entries — and must never
  // read out of bounds, so every record count is checked against the bytes
  // actually remaining before anything is resized to it.
  const auto corrupt = [&](const std::string& what) {
    return fail("access cache: corrupt or truncated file: " + what);
  };
  const auto remaining = [&]() -> std::size_t {
    const auto pos = is.tellg();
    if (pos < 0) return 0;
    const auto upos = static_cast<std::size_t>(pos);
    return upos >= text.size() ? 0 : text.size() - upos;
  };
  // Reads a count whose elements each occupy at least two bytes (" x").
  const auto readCount = [&](std::size_t& n, const char* what) {
    long long v = 0;
    if (!(is >> v) || v < 0) return false;
    if (static_cast<unsigned long long>(v) > remaining() / 2) return false;
    n = static_cast<std::size_t>(v);
    (void)what;
    return true;
  };
  const auto expectTag = [&](const char* t) {
    std::string got;
    return (is >> got) && got == t;
  };

  std::vector<std::pair<Key, ClassAccess>> pending;
  std::string tok;
  bool sawEnd = false;
  while (is >> tok) {
    if (tok == "END") {
      long long count = -1;
      if (!(is >> count) ||
          count != static_cast<long long>(pending.size())) {
        return corrupt("END count does not match entries present");
      }
      if (is >> tok) return corrupt("data after END trailer");
      sawEnd = true;
      break;
    }
    if (tok != "ENTRY") return corrupt("expected ENTRY, got '" + tok + "'");
    std::string masterName, orientStr;
    std::size_t numOffsets = 0;
    if (!(is >> masterName >> orientStr) ||
        !readCount(numOffsets, "offsets")) {
      return corrupt("bad ENTRY record");
    }
    std::vector<geom::Coord> offsets(numOffsets);
    for (geom::Coord& o : offsets) {
      if (!(is >> o)) return corrupt("bad ENTRY offsets");
    }
    // The fingerprint matched, so every master and via the file references
    // must exist; a miss here means the body was tampered with.
    const db::Master* master = lib.findMaster(masterName);
    if (master == nullptr) {
      return corrupt("unknown master '" + masterName + "'");
    }

    ClassAccess ca;
    std::size_t numPins = 0;
    if (!expectTag("PINS") || !readCount(numPins, "pins")) {
      return corrupt("bad PINS record");
    }
    ca.pinAps.resize(numPins);
    for (std::vector<AccessPoint>& pinAps : ca.pinAps) {
      std::size_t numAps = 0;
      if (!expectTag("PIN") || !readCount(numAps, "aps")) {
        return corrupt("bad PIN record");
      }
      pinAps.resize(numAps);
      for (AccessPoint& ap : pinAps) {
        int pref = 0, nonPref = 0, dirs = 0;
        std::size_t numVias = 0;
        if (!expectTag("AP") ||
            !(is >> ap.loc.x >> ap.loc.y >> ap.layer >> pref >> nonPref >>
              dirs) ||
            !readCount(numVias, "vias")) {
          return corrupt("bad AP record");
        }
        ap.prefType = static_cast<CoordType>(pref);
        ap.nonPrefType = static_cast<CoordType>(nonPref);
        ap.dirs = static_cast<std::uint8_t>(dirs);
        for (std::size_t v = 0; v < numVias; ++v) {
          std::string viaName;
          if (!(is >> viaName)) return corrupt("bad AP via list");
          const db::ViaDef* via = tech.findViaDef(viaName);
          if (via == nullptr) {
            return corrupt("unknown via '" + viaName + "'");
          }
          ap.viaIdx.push_back(via->index);
        }
      }
    }
    std::size_t numOrder = 0;
    if (!expectTag("ORDER") || !readCount(numOrder, "order")) {
      return corrupt("bad ORDER record");
    }
    ca.pinOrder.resize(numOrder);
    for (int& p : ca.pinOrder) {
      if (!(is >> p)) return corrupt("bad ORDER positions");
    }
    std::size_t numPatterns = 0;
    if (!expectTag("PATTERNS") || !readCount(numPatterns, "patterns")) {
      return corrupt("bad PATTERNS record");
    }
    ca.patterns.resize(numPatterns);
    for (AccessPattern& pat : ca.patterns) {
      int validated = 0;
      std::size_t numIdx = 0;
      if (!expectTag("PATTERN") || !(is >> pat.cost >> validated) ||
          !readCount(numIdx, "ap indices")) {
        return corrupt("bad PATTERN record");
      }
      pat.validated = validated != 0;
      pat.apIdx.resize(numIdx);
      for (int& i : pat.apIdx) {
        if (!(is >> i)) return corrupt("bad PATTERN indices");
      }
    }
    pending.emplace_back(
        Key{master, geom::orientFromString(orientStr), std::move(offsets)},
        std::move(ca));
  }
  if (!sawEnd) return corrupt("missing END trailer");

  for (auto& [key, ca] : pending) {
    entries_.insert_or_assign(std::move(key), std::move(ca));
  }
  return pending.size();
}

std::size_t AccessCache::loadV1(std::istream& is, std::size_t textSize,
                                const db::Tech& tech,
                                const db::Library& lib) {
  // v1 predates the fingerprint and the END trailer; it stays best-effort:
  // commit each entry as it parses, skip entries referencing unknown masters
  // or vias, and stop silently at the first malformed record. Counts are
  // still sanity-bounded by the bytes present (each element takes at least
  // two, " x") so a corrupt count can never drive a huge resize.
  const auto plausibleCount = [&](std::size_t n) {
    const auto pos = is.tellg();
    const std::size_t left =
        pos < 0 || static_cast<std::size_t>(pos) >= textSize
            ? 0
            : textSize - static_cast<std::size_t>(pos);
    return n <= left / 2;
  };
  std::size_t loaded = 0;
  std::string tok;
  while (is >> tok) {
    if (tok != "ENTRY") return loaded;  // malformed; keep what we have
    std::string masterName, orientStr;
    std::size_t numOffsets = 0;
    is >> masterName >> orientStr >> numOffsets;
    if (!is || !plausibleCount(numOffsets)) return loaded;
    std::vector<geom::Coord> offsets(numOffsets);
    for (geom::Coord& o : offsets) is >> o;
    const db::Master* master = lib.findMaster(masterName);

    ClassAccess ca;
    std::size_t numPins = 0;
    is >> tok >> numPins;  // PINS
    if (!is || !plausibleCount(numPins)) return loaded;
    ca.pinAps.resize(numPins);
    bool ok = master != nullptr;
    for (std::vector<AccessPoint>& pinAps : ca.pinAps) {
      std::size_t numAps = 0;
      is >> tok >> numAps;  // PIN
      if (!is || !plausibleCount(numAps)) return loaded;
      pinAps.resize(numAps);
      for (AccessPoint& ap : pinAps) {
        int pref = 0, nonPref = 0, dirs = 0;
        std::size_t numVias = 0;
        is >> tok >> ap.loc.x >> ap.loc.y >> ap.layer >> pref >> nonPref >>
            dirs >> numVias;  // AP
        if (!is || !plausibleCount(numVias)) return loaded;
        ap.prefType = static_cast<CoordType>(pref);
        ap.nonPrefType = static_cast<CoordType>(nonPref);
        ap.dirs = static_cast<std::uint8_t>(dirs);
        for (std::size_t v = 0; v < numVias; ++v) {
          std::string viaName;
          is >> viaName;
          const db::ViaDef* via = tech.findViaDef(viaName);
          if (via != nullptr) {
            ap.viaIdx.push_back(via->index);
          } else {
            ok = false;
          }
        }
      }
    }
    std::size_t numOrder = 0;
    is >> tok >> numOrder;  // ORDER
    if (!is || !plausibleCount(numOrder)) return loaded;
    ca.pinOrder.resize(numOrder);
    for (int& p : ca.pinOrder) is >> p;
    std::size_t numPatterns = 0;
    is >> tok >> numPatterns;  // PATTERNS
    if (!is || !plausibleCount(numPatterns)) return loaded;
    ca.patterns.resize(numPatterns);
    for (AccessPattern& pat : ca.patterns) {
      int validated = 0;
      std::size_t numIdx = 0;
      is >> tok >> pat.cost >> validated >> numIdx;  // PATTERN
      pat.validated = validated != 0;
      if (!is || !plausibleCount(numIdx)) return loaded;
      pat.apIdx.resize(numIdx);
      for (int& i : pat.apIdx) is >> i;
    }
    if (ok) {
      entries_.insert_or_assign(
          Key{master, geom::orientFromString(orientStr), std::move(offsets)},
          std::move(ca));
      ++loaded;
    }
  }
  return loaded;
}

}  // namespace pao::core
