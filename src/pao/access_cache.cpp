#include "pao/access_cache.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string_view>

#include "geom/orient.hpp"

namespace pao::core {

const ClassAccess* AccessCache::find(const Key& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void AccessCache::store(const Key& key, ClassAccess originRelative) {
  entries_.insert_or_assign(key, std::move(originRelative));
}

void AccessCache::clear() {
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

ClassAccess AccessCache::translate(const ClassAccess& ca,
                                   geom::Point origin) {
  ClassAccess out = ca;
  for (std::vector<AccessPoint>& pinAps : out.pinAps) {
    for (AccessPoint& ap : pinAps) ap.loc = ap.loc + origin;
  }
  return out;
}


namespace {

/// One line per record; fields are space-separated. Format:
///   FINGERPRINT <hex>                               (v2 only)
///   ENTRY <master> <orient> <numOffsets> <offsets...>
///   PIN <numAps>
///   AP <x> <y> <layer> <prefType> <nonPrefType> <dirs> <numVias> <names...>
///   ORDER <numPins> <positions...>
///   PATTERN <cost> <validated> <numIdx> <apIdx...>
constexpr const char* kHeaderV1 = "PAO_ACCESS_CACHE v1";
constexpr const char* kHeaderV2 = "PAO_ACCESS_CACHE v2";

/// FNV-1a, 64-bit: tiny, well-distributed, and identical everywhere (no
/// dependence on std::hash's unspecified per-platform behavior).
struct Fnv1a {
  std::uint64_t h = 1469598103934665603ULL;
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
  void str(std::string_view s) {
    bytes(s.data(), s.size());
    bytes("\0", 1);  // delimit so ("ab","c") != ("a","bc")
  }
  void num(long long v) { bytes(&v, sizeof v); }
  void rect(const geom::Rect& r) {
    num(r.xlo);
    num(r.ylo);
    num(r.xhi);
    num(r.yhi);
  }
};

}  // namespace

std::string AccessCache::fingerprint(const db::Tech& tech,
                                     const db::Library& lib) {
  Fnv1a f;
  f.num(tech.dbuPerMicron);
  for (const db::Layer& l : tech.layers()) {
    f.str(l.name);
    f.num(static_cast<int>(l.type));
    f.num(static_cast<int>(l.dir));
    f.num(l.width);
    f.num(l.pitch);
    f.num(l.minArea);
    f.num(l.cutSpacing);
  }
  for (const db::ViaDef& v : tech.viaDefs()) {
    f.str(v.name);
    f.num(v.botLayer);
    f.num(v.cutLayer);
    f.num(v.topLayer);
    f.rect(v.botEnc);
    f.rect(v.cut);
    f.rect(v.topEnc);
  }
  // Masters sorted by name: library insertion order is a parse artifact,
  // not part of the identity the cache depends on.
  std::vector<const db::Master*> masters;
  for (const auto& m : lib.masters()) masters.push_back(m.get());
  std::sort(masters.begin(), masters.end(),
            [](const db::Master* a, const db::Master* b) {
              return a->name < b->name;
            });
  for (const db::Master* m : masters) {
    f.str(m->name);
    f.num(static_cast<int>(m->cls));
    f.num(m->width);
    f.num(m->height);
    for (const db::Pin& pin : m->pins) {
      f.str(pin.name);
      f.num(static_cast<int>(pin.use));
      for (const db::PinShape& s : pin.shapes) {
        f.num(s.layer);
        f.rect(s.rect);
      }
    }
    for (const db::Obstruction& o : m->obstructions) {
      f.num(o.layer);
      f.rect(o.rect);
    }
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(f.h));
  return buf;
}

std::string AccessCache::save(const db::Tech& tech,
                              const db::Library& lib) const {
  // entries_ is keyed by Master pointer, so its iteration order follows
  // heap addresses; serialize sorted by (master name, orient, offsets)
  // instead so the file is byte-stable across processes.
  std::vector<const std::pair<const Key, ClassAccess>*> ordered;
  ordered.reserve(entries_.size());
  for (const auto& entry : entries_) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(), [](const auto* a, const auto* b) {
    const auto& [ma, oa, offa] = a->first;
    const auto& [mb, ob, offb] = b->first;
    return std::tie(ma->name, oa, offa) < std::tie(mb->name, ob, offb);
  });

  std::ostringstream os;
  os << kHeaderV2 << "\n";
  os << "FINGERPRINT " << fingerprint(tech, lib) << "\n";
  for (const auto* entry : ordered) {
    const auto& [key, ca] = *entry;
    const auto& [master, orient, offsets] = key;
    os << "ENTRY " << master->name << " "
       << geom::toString(orient) << " " << offsets.size();
    for (const geom::Coord o : offsets) os << " " << o;
    os << "\n";
    os << "PINS " << ca.pinAps.size() << "\n";
    for (const std::vector<AccessPoint>& pinAps : ca.pinAps) {
      os << "PIN " << pinAps.size() << "\n";
      for (const AccessPoint& ap : pinAps) {
        os << "AP " << ap.loc.x << " " << ap.loc.y << " " << ap.layer << " "
           << static_cast<int>(ap.prefType) << " "
           << static_cast<int>(ap.nonPrefType) << " "
           << static_cast<int>(ap.dirs) << " " << ap.viaDefs.size();
        for (const db::ViaDef* via : ap.viaDefs) os << " " << via->name;
        os << "\n";
      }
    }
    os << "ORDER " << ca.pinOrder.size();
    for (const int p : ca.pinOrder) os << " " << p;
    os << "\n";
    os << "PATTERNS " << ca.patterns.size() << "\n";
    for (const AccessPattern& pat : ca.patterns) {
      os << "PATTERN " << pat.cost << " " << (pat.validated ? 1 : 0) << " "
         << pat.apIdx.size();
      for (const int i : pat.apIdx) os << " " << i;
      os << "\n";
    }
  }
  return os.str();
}

std::size_t AccessCache::load(const std::string& text, const db::Tech& tech,
                              const db::Library& lib,
                              std::string* errorOut) {
  const auto fail = [&](std::string why) {
    if (errorOut != nullptr) *errorOut = std::move(why);
    return std::size_t{0};
  };
  std::istringstream is(text);
  std::string line;
  std::getline(is, line);
  if (line == kHeaderV2) {
    std::string tag, fp;
    if (!(is >> tag >> fp) || tag != "FINGERPRINT") {
      return fail("access cache: malformed v2 header (missing FINGERPRINT)");
    }
    const std::string expected = fingerprint(tech, lib);
    if (fp != expected) {
      return fail("access cache: fingerprint mismatch (cache " + fp +
                  ", tech/library " + expected +
                  ") — the cache was built against a different library");
    }
  } else if (line != kHeaderV1) {
    // v1 has no fingerprint; accept it best-effort below (unknown masters
    // and vias are skipped entry by entry).
    return fail("access cache: unrecognized header '" + line + "'");
  }

  std::size_t loaded = 0;
  std::string tok;
  while (is >> tok) {
    if (tok != "ENTRY") return loaded;  // malformed; keep what we have
    std::string masterName, orientStr;
    std::size_t numOffsets = 0;
    is >> masterName >> orientStr >> numOffsets;
    std::vector<geom::Coord> offsets(numOffsets);
    for (geom::Coord& o : offsets) is >> o;
    const db::Master* master = lib.findMaster(masterName);

    ClassAccess ca;
    std::size_t numPins = 0;
    is >> tok >> numPins;  // PINS
    ca.pinAps.resize(numPins);
    bool ok = master != nullptr;
    for (std::vector<AccessPoint>& pinAps : ca.pinAps) {
      std::size_t numAps = 0;
      is >> tok >> numAps;  // PIN
      pinAps.resize(numAps);
      for (AccessPoint& ap : pinAps) {
        int pref = 0, nonPref = 0, dirs = 0;
        std::size_t numVias = 0;
        is >> tok >> ap.loc.x >> ap.loc.y >> ap.layer >> pref >> nonPref >>
            dirs >> numVias;  // AP
        ap.prefType = static_cast<CoordType>(pref);
        ap.nonPrefType = static_cast<CoordType>(nonPref);
        ap.dirs = static_cast<std::uint8_t>(dirs);
        for (std::size_t v = 0; v < numVias; ++v) {
          std::string viaName;
          is >> viaName;
          const db::ViaDef* via = tech.findViaDef(viaName);
          if (via != nullptr) {
            ap.viaDefs.push_back(via);
          } else {
            ok = false;
          }
        }
      }
    }
    std::size_t numOrder = 0;
    is >> tok >> numOrder;  // ORDER
    ca.pinOrder.resize(numOrder);
    for (int& p : ca.pinOrder) is >> p;
    std::size_t numPatterns = 0;
    is >> tok >> numPatterns;  // PATTERNS
    ca.patterns.resize(numPatterns);
    for (AccessPattern& pat : ca.patterns) {
      int validated = 0;
      std::size_t numIdx = 0;
      is >> tok >> pat.cost >> validated >> numIdx;  // PATTERN
      pat.validated = validated != 0;
      pat.apIdx.resize(numIdx);
      for (int& i : pat.apIdx) is >> i;
    }
    if (ok) {
      entries_.insert_or_assign(
          Key{master, geom::orientFromString(orientStr), std::move(offsets)},
          std::move(ca));
      ++loaded;
    }
  }
  return loaded;
}

}  // namespace pao::core
