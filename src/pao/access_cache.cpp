#include "pao/access_cache.hpp"

#include <sstream>

#include "geom/orient.hpp"

namespace pao::core {

const ClassAccess* AccessCache::find(const Key& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void AccessCache::store(const Key& key, ClassAccess originRelative) {
  entries_.insert_or_assign(key, std::move(originRelative));
}

void AccessCache::clear() {
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

ClassAccess AccessCache::translate(const ClassAccess& ca,
                                   geom::Point origin) {
  ClassAccess out = ca;
  for (std::vector<AccessPoint>& pinAps : out.pinAps) {
    for (AccessPoint& ap : pinAps) ap.loc = ap.loc + origin;
  }
  return out;
}


namespace {

/// One line per record; fields are space-separated. Format:
///   ENTRY <master> <orient> <numOffsets> <offsets...>
///   PIN <numAps>
///   AP <x> <y> <layer> <prefType> <nonPrefType> <dirs> <numVias> <names...>
///   ORDER <numPins> <positions...>
///   PATTERN <cost> <validated> <numIdx> <apIdx...>
constexpr const char* kHeader = "PAO_ACCESS_CACHE v1";

}  // namespace

std::string AccessCache::save(const db::Tech& /*tech*/) const {
  std::ostringstream os;
  os << kHeader << "\n";
  for (const auto& [key, ca] : entries_) {
    const auto& [master, orient, offsets] = key;
    os << "ENTRY " << master->name << " "
       << geom::toString(orient) << " " << offsets.size();
    for (const geom::Coord o : offsets) os << " " << o;
    os << "\n";
    os << "PINS " << ca.pinAps.size() << "\n";
    for (const std::vector<AccessPoint>& pinAps : ca.pinAps) {
      os << "PIN " << pinAps.size() << "\n";
      for (const AccessPoint& ap : pinAps) {
        os << "AP " << ap.loc.x << " " << ap.loc.y << " " << ap.layer << " "
           << static_cast<int>(ap.prefType) << " "
           << static_cast<int>(ap.nonPrefType) << " "
           << static_cast<int>(ap.dirs) << " " << ap.viaDefs.size();
        for (const db::ViaDef* via : ap.viaDefs) os << " " << via->name;
        os << "\n";
      }
    }
    os << "ORDER " << ca.pinOrder.size();
    for (const int p : ca.pinOrder) os << " " << p;
    os << "\n";
    os << "PATTERNS " << ca.patterns.size() << "\n";
    for (const AccessPattern& pat : ca.patterns) {
      os << "PATTERN " << pat.cost << " " << (pat.validated ? 1 : 0) << " "
         << pat.apIdx.size();
      for (const int i : pat.apIdx) os << " " << i;
      os << "\n";
    }
  }
  return os.str();
}

std::size_t AccessCache::load(const std::string& text, const db::Tech& tech,
                              const db::Library& lib) {
  std::istringstream is(text);
  std::string line;
  std::getline(is, line);
  if (line != kHeader) return 0;

  std::size_t loaded = 0;
  std::string tok;
  while (is >> tok) {
    if (tok != "ENTRY") return loaded;  // malformed; keep what we have
    std::string masterName, orientStr;
    std::size_t numOffsets = 0;
    is >> masterName >> orientStr >> numOffsets;
    std::vector<geom::Coord> offsets(numOffsets);
    for (geom::Coord& o : offsets) is >> o;
    const db::Master* master = lib.findMaster(masterName);

    ClassAccess ca;
    std::size_t numPins = 0;
    is >> tok >> numPins;  // PINS
    ca.pinAps.resize(numPins);
    bool ok = master != nullptr;
    for (std::vector<AccessPoint>& pinAps : ca.pinAps) {
      std::size_t numAps = 0;
      is >> tok >> numAps;  // PIN
      pinAps.resize(numAps);
      for (AccessPoint& ap : pinAps) {
        int pref = 0, nonPref = 0, dirs = 0;
        std::size_t numVias = 0;
        is >> tok >> ap.loc.x >> ap.loc.y >> ap.layer >> pref >> nonPref >>
            dirs >> numVias;  // AP
        ap.prefType = static_cast<CoordType>(pref);
        ap.nonPrefType = static_cast<CoordType>(nonPref);
        ap.dirs = static_cast<std::uint8_t>(dirs);
        for (std::size_t v = 0; v < numVias; ++v) {
          std::string viaName;
          is >> viaName;
          const db::ViaDef* via = tech.findViaDef(viaName);
          if (via != nullptr) {
            ap.viaDefs.push_back(via);
          } else {
            ok = false;
          }
        }
      }
    }
    std::size_t numOrder = 0;
    is >> tok >> numOrder;  // ORDER
    ca.pinOrder.resize(numOrder);
    for (int& p : ca.pinOrder) is >> p;
    std::size_t numPatterns = 0;
    is >> tok >> numPatterns;  // PATTERNS
    ca.patterns.resize(numPatterns);
    for (AccessPattern& pat : ca.patterns) {
      int validated = 0;
      std::size_t numIdx = 0;
      is >> tok >> pat.cost >> validated >> numIdx;  // PATTERN
      pat.validated = validated != 0;
      pat.apIdx.resize(numIdx);
      for (int& i : pat.apIdx) is >> i;
    }
    if (ok) {
      entries_.insert_or_assign(
          Key{master, geom::orientFromString(orientStr), std::move(offsets)},
          std::move(ca));
      ++loaded;
    }
  }
  return loaded;
}

}  // namespace pao::core
