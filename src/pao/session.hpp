// OracleSession — the incremental, long-lived form of the pin access
// oracle. Where PinAccessOracle::run() answers one batch query, a session
// holds the design plus the full Steps 1-3 state (unique-instance classes,
// per-class access, cluster structure, chosen patterns) and keeps it
// consistent under placement mutations, recomputing only what a mutation
// invalidates:
//   * Steps 1-2 are keyed by unique-instance signature: a mutation that
//     lands an instance in an already-seen class costs a lookup; a new
//     signature costs one per-class analysis (added to the AccessCache when
//     one is configured, so the work survives the session too).
//   * Unique-instance class membership is maintained incrementally
//     (db::UniqueInstanceIndex) — class indices are stable, so per-class
//     results and the Step-3 pair memo stay valid for the session lifetime.
//   * Step 3 re-runs the cluster DP only for dirty clusters: clusters whose
//     member list changed, clusters containing a touched instance, and —
//     transitively, in cluster order — clusters sharing a (multi-height)
//     instance with an earlier dirty cluster, whose pinned input may have
//     changed. Everything else keeps its chosen pattern.
//
// Invariant (enforced by tests): after any mutation sequence, chosenPattern()
// equals a fresh PinAccessOracle::run() on the mutated design, for any
// thread count.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "db/unique_inst.hpp"
#include "obs/enabled.hpp"
#include "pao/access_cache.hpp"
#include "pao/cluster_select.hpp"
#include "pao/oracle.hpp"

#if PAO_OBS_ENABLED
#include "obs/profile.hpp"
#endif

namespace pao::core {

class OracleSession {
 public:
  /// Full analysis of `design`, then ready for mutations. The session owns
  /// no design data; `design` must outlive it and must only be mutated
  /// through the session (out-of-band Design mutation-API edits are detected
  /// via Design::revision() and rejected; direct field writes are not).
  explicit OracleSession(db::Design& design, OracleConfig cfg = {});
  /// Read-only session over a const design: same full analysis, but the
  /// mutation API throws std::logic_error. This is what the batch
  /// PinAccessOracle wraps.
  explicit OracleSession(const db::Design& design, OracleConfig cfg = {});

  // --- mutation API --------------------------------------------------------
  /// Each call applies the design edit, re-signatures the instance, and
  /// brings chosenPattern() back in sync by recomputing dirty clusters only.
  void moveInstance(int instIdx, geom::Point newOrigin);
  void setOrient(int instIdx, geom::Orient orient);
  /// Appends `inst` to the design; returns its instance index.
  int addInstance(db::Instance inst);
  /// Erases instance `instIdx`; indices above it shift down by one (the
  /// session renumbers all internal state accordingly).
  void removeInstance(int instIdx);

  // --- queries -------------------------------------------------------------
  const db::Design& design() const { return *design_; }
  const db::UniqueInstances& unique() const { return index_.classes(); }
  /// Steps 1-2 access of class `cls`, origin-relative (add a member
  /// instance's origin to place an access point). The reference is
  /// invalidated by mutations that create a new class.
  const ClassAccess& classAccess(int cls) const { return classes_[cls]; }
  /// Chosen pattern per instance (-1 when the class has none).
  const std::vector<int>& chosenPattern() const { return chosen_; }
  /// The access point chosen for (instance, signal-pin position), placed at
  /// the instance's current location.
  std::optional<OracleResult::ChosenAp> chosenAp(int instIdx,
                                                 int sigPinPos) const;
  /// Batch-equivalent result: classes translated to representative design
  /// coordinates, exactly what PinAccessOracle::run() returns. Timings
  /// describe the initial full analysis, not later mutations.
  OracleResult snapshot() const;

  /// Graceful-degradation events accumulated so far (cfg.keepGoing class
  /// fallbacks, Step-3 budget expiries). Unsorted accumulation order;
  /// snapshot() returns them canonically sorted.
  const std::vector<DegradedEvent>& degraded() const { return degraded_; }

  struct Stats {
    std::size_t mutations = 0;
    /// Cumulative Step-3 cluster-DP invocations (initial build included).
    std::size_t clusterDpRuns = 0;
    /// Dirty clusters recomputed by the last mutation, and the total
    /// cluster count after the last build or mutation — the incrementality
    /// headline (a full build sets the count with zero dirty clusters).
    std::size_t lastDirtyClusters = 0;
    std::size_t lastClusterCount = 0;
    /// Steps 1-2 per-class analyses actually computed (signature misses).
    std::size_t classBuilds = 0;
    /// Per-class analyses answered from the configured AccessCache.
    std::size_t cacheHits = 0;
    /// Step-3 boundary pair checks, counted deterministically (see
    /// ClusterSelector::numPairChecks). Schedule-invariant; reported.
    std::size_t pairChecks = 0;
    /// Job-graph shape of the last full build plus mutation re-runs:
    /// total nodes, Step-3 DP nodes that started while Steps 1-2 work was
    /// still pending (the pipeline-overlap headline), and cross-worker
    /// steals. graphJobs/overlapJobs are deterministic for a fixed thread
    /// count; graphSteals is schedule-dependent (bench-only — neither is
    /// part of the canonical report output).
    std::size_t graphJobs = 0;
    std::size_t overlapJobs = 0;
    std::size_t graphSteals = 0;
  };
  const Stats& stats() const { return stats_; }

#if PAO_OBS_ENABLED
  /// Profile of the most recent pipeline job graph (initial build or
  /// mutation re-run). Empty when the legacy parallelFor path ran. Feed to
  /// obs::analyzeProfile / obs::profileSectionJson for the run report.
  const obs::GraphProfile& lastGraphProfile() const { return graphProfile_; }
#endif

 private:
  /// Per-class build state threaded between the Step-1 and Step-2 job-graph
  /// nodes of one class (defined in session.cpp).
  struct ClassBuildState;

  void buildAll();
  /// Computes (or cache-loads) class `c`'s origin-relative Steps 1-2 access
  /// into classes_[c]. Thread-safe across distinct classes. The fused form
  /// of classStep1 + classStep2, used on the mutation path.
  void computeClassAccess(std::size_t c);
  /// Step 1 of class `c`: cache lookup, then access point generation (or the
  /// legacy generator in legacyMode). One job-graph node per class.
  void classStep1(std::size_t c, ClassBuildState& st);
  /// Step 2 of class `c`: pattern DP, origin normalization, cache store and
  /// stats commit. Depends on classStep1(c) in the pipeline graph.
  void classStep2(std::size_t c, ClassBuildState& st);
  /// keepGoing fallback shared by both steps: legacy access for the class,
  /// or empty access (class_failed) when even that throws.
  void fallbackToLegacy(std::size_t c, ClassBuildState& st,
                        const std::exception& e);
  /// Grows per-class storage after the index created classes, then makes
  /// sure `cls` is analyzed.
  void ensureClassAccess(int cls);
  void onGeometryChanged(int instIdx);
  /// Rebuilds clusters, diffs against the previous structure, and re-runs
  /// the DP for dirty clusters only (`touched` = instances whose geometry
  /// or class changed in this mutation).
  void recomputeAfterMutation(const std::vector<int>& touched);
  /// The no-Step-3 selection (legacy / runClusterSelection == false).
  void trivialSelection();
  /// Appends a "step3_budget" DegradedEvent when the last selection pass
  /// expired its budget.
  void recordBudgetExpiry();
  void requireMutable() const;

  const db::Design* design_;
  db::Design* mutableDesign_;  ///< null in read-only sessions
  OracleConfig cfg_;
  AccessCache* cache_;  ///< cfg_.cache; may be null
  std::mutex cacheMu_;
  db::UniqueInstanceIndex index_;
  /// Origin-relative per-class access, parallel to unique().classes.
  std::vector<ClassAccess> classes_;
  std::vector<char> classReady_;
  std::vector<int> chosen_;
  /// Cluster structure the current chosen_ was computed against.
  std::vector<std::vector<int>> clusters_;
  std::unique_ptr<ClusterSelector> selector_;
  std::uint64_t designRevision_ = 0;
  Stats stats_;
  std::vector<DegradedEvent> degraded_;  ///< guarded by cacheMu_ during 1-2
  double step1Seconds_ = 0;
  double step2Seconds_ = 0;
  double step3Seconds_ = 0;
  double wallSeconds_ = 0;
  double step1CpuSeconds_ = 0;
  double step2CpuSeconds_ = 0;
  double step3CpuSeconds_ = 0;
  double steps12WallSeconds_ = 0;
  /// Pipeline-graph bookkeeping for the initial build: Steps 1-2 nodes not
  /// yet finished (the Step-2 node that drains it stamps
  /// steps12WallSeconds_), Step-3 nodes that started while it was nonzero,
  /// and the start time of the first Step-3 node (step3Started_ winner
  /// writes step3T0_; read after the graph joins).
  std::atomic<std::size_t> pendingSteps12_{0};
  std::atomic<std::size_t> overlapJobs_{0};
  std::atomic<bool> step3Started_{false};
  std::chrono::steady_clock::time_point step3T0_{};
#if PAO_OBS_ENABLED
  obs::GraphProfile graphProfile_;
#endif
};

}  // namespace pao::core
