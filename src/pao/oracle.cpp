#include "pao/oracle.hpp"

#include "pao/session.hpp"

namespace pao::core {

OracleConfig withoutBcaConfig() {
  OracleConfig cfg;
  cfg.patternGen.numPatterns = 1;
  cfg.patternGen.boundaryAware = false;
  return cfg;
}

OracleConfig withBcaConfig() {
  OracleConfig cfg;
  cfg.patternGen.numPatterns = 3;
  cfg.patternGen.boundaryAware = true;
  return cfg;
}

OracleConfig legacyConfig() {
  OracleConfig cfg;
  cfg.legacyMode = true;
  cfg.runClusterSelection = false;
  return cfg;
}

std::size_t OracleResult::totalAps() const {
  std::size_t n = 0;
  for (const ClassAccess& ca : classes) {
    for (const std::vector<AccessPoint>& aps : ca.pinAps) n += aps.size();
  }
  return n;
}

std::optional<OracleResult::ChosenAp> OracleResult::chosenAp(
    const db::Design& design, int instIdx, int sigPinPos) const {
  const int cls = unique.classOf[instIdx];
  if (cls < 0) return std::nullopt;
  const ClassAccess& ca = classes[cls];
  const int pat = chosenPattern[instIdx];
  if (pat < 0 || pat >= static_cast<int>(ca.patterns.size())) {
    return std::nullopt;
  }
  if (sigPinPos >= static_cast<int>(ca.patterns[pat].apIdx.size())) {
    return std::nullopt;
  }
  const int apIdx = ca.patterns[pat].apIdx[sigPinPos];
  if (apIdx < 0) return std::nullopt;
  const AccessPoint& ap = ca.pinAps[sigPinPos][apIdx];
  const db::UniqueInstance& ui = unique.classes[cls];
  const geom::Point repOrigin = design.instances[ui.representative].origin;
  const geom::Point origin = design.instances[instIdx].origin;
  return ChosenAp{&ap, ap.loc + (origin - repOrigin)};
}

PinAccessOracle::PinAccessOracle(const db::Design& design, OracleConfig cfg)
    : design_(&design), cfg_(cfg) {}

OracleResult PinAccessOracle::run() {
  // The batch oracle is a thin wrapper these days: a read-only OracleSession
  // does the full Steps 1-3 build, and its snapshot is the batch result.
  const OracleSession session(*design_, cfg_);
#if PAO_OBS_ENABLED
  graphProfile_ = session.lastGraphProfile();
#endif
  return session.snapshot();
}

}  // namespace pao::core
