#include "pao/oracle.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>

#include "util/executor.hpp"

namespace pao::core {

namespace {

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The TrRte baseline has no pattern stage: every pin just takes its first
/// access point.
AccessPattern firstApPattern(const std::vector<std::vector<AccessPoint>>& aps) {
  AccessPattern pat;
  pat.apIdx.reserve(aps.size());
  for (const std::vector<AccessPoint>& pinAps : aps) {
    pat.apIdx.push_back(pinAps.empty() ? -1 : 0);
  }
  pat.validated = false;  // never checked, by construction of the baseline
  return pat;
}

}  // namespace

OracleConfig withoutBcaConfig() {
  OracleConfig cfg;
  cfg.patternGen.numPatterns = 1;
  cfg.patternGen.boundaryAware = false;
  return cfg;
}

OracleConfig withBcaConfig() {
  OracleConfig cfg;
  cfg.patternGen.numPatterns = 3;
  cfg.patternGen.boundaryAware = true;
  return cfg;
}

OracleConfig legacyConfig() {
  OracleConfig cfg;
  cfg.legacyMode = true;
  cfg.runClusterSelection = false;
  return cfg;
}

std::size_t OracleResult::totalAps() const {
  std::size_t n = 0;
  for (const ClassAccess& ca : classes) {
    for (const std::vector<AccessPoint>& aps : ca.pinAps) n += aps.size();
  }
  return n;
}

std::optional<OracleResult::ChosenAp> OracleResult::chosenAp(
    const db::Design& design, int instIdx, int sigPinPos) const {
  const int cls = unique.classOf[instIdx];
  if (cls < 0) return std::nullopt;
  const ClassAccess& ca = classes[cls];
  const int pat = chosenPattern[instIdx];
  if (pat < 0 || pat >= static_cast<int>(ca.patterns.size())) {
    return std::nullopt;
  }
  if (sigPinPos >= static_cast<int>(ca.patterns[pat].apIdx.size())) {
    return std::nullopt;
  }
  const int apIdx = ca.patterns[pat].apIdx[sigPinPos];
  if (apIdx < 0) return std::nullopt;
  const AccessPoint& ap = ca.pinAps[sigPinPos][apIdx];
  const db::UniqueInstance& ui = unique.classes[cls];
  const geom::Point repOrigin = design.instances[ui.representative].origin;
  const geom::Point origin = design.instances[instIdx].origin;
  return ChosenAp{&ap, ap.loc + (origin - repOrigin)};
}

PinAccessOracle::PinAccessOracle(const db::Design& design, OracleConfig cfg)
    : design_(&design), cfg_(cfg) {}

OracleResult PinAccessOracle::run() {
  const auto t0 = std::chrono::steady_clock::now();
  OracleResult result;
  result.unique = db::extractUniqueInstances(*design_);
  result.classes.resize(result.unique.classes.size());

  // Steps 1 and 2, per unique instance: independent work items, optionally
  // spread over worker threads (unique instances never share mutable state;
  // the cache is guarded by a mutex).
  std::mutex cacheMu;
  std::atomic<long long> step1Us{0};
  std::atomic<long long> step2Us{0};
  const auto analyzeClass = [&](std::size_t c) {
    const db::UniqueInstance& ui = result.unique.classes[c];
    if (ui.master->signalPinIndices().empty()) return;  // fillers etc.
    ClassAccess& ca = result.classes[c];
    const geom::Point repOrigin =
        design_->instances[ui.representative].origin;

    if (cfg_.cache != nullptr && !cfg_.legacyMode) {
      const AccessCache::Key key = AccessCache::keyOf(ui);
      std::lock_guard<std::mutex> lock(cacheMu);
      if (const ClassAccess* hit = cfg_.cache->find(key)) {
        ca = AccessCache::translate(*hit, repOrigin);
        return;
      }
    }

    const InstContext ctx(*design_, ui);
    const auto t1 = std::chrono::steady_clock::now();
    if (cfg_.legacyMode) {
      ca.pinAps = LegacyApGenerator(ctx).generateAll();
    } else {
      ApGenConfig apCfg = cfg_.apGen;
      // Macro (block) pins admit planar access: via access is only
      // mandatory for standard cells (paper footnote 1).
      if (ui.master->cls == db::MasterClass::kBlock) apCfg.requireVia = false;
      ca.pinAps = AccessPointGenerator(ctx, apCfg).generateAll();
    }
    step1Us += static_cast<long long>(secondsSince(t1) * 1e6);

    const auto t2 = std::chrono::steady_clock::now();
    if (cfg_.legacyMode) {
      ca.patterns.push_back(firstApPattern(ca.pinAps));
      for (int i = 0; i < static_cast<int>(ca.pinAps.size()); ++i) {
        if (!ca.pinAps[i].empty()) ca.pinOrder.push_back(i);
      }
    } else {
      PatternGenerator gen(ctx, ca.pinAps, cfg_.patternGen);
      ca.patterns = gen.run();
      ca.pinOrder = gen.pinOrder();
    }
    step2Us += static_cast<long long>(secondsSince(t2) * 1e6);

    if (cfg_.cache != nullptr && !cfg_.legacyMode) {
      const ClassAccess normalized =
          AccessCache::translate(ca, geom::Point{0, 0} - repOrigin);
      std::lock_guard<std::mutex> lock(cacheMu);
      cfg_.cache->store(AccessCache::keyOf(ui), normalized);
    }
  };

  // Each class writes only its own result slot, so ordering is deterministic
  // regardless of the schedule.
  util::parallelFor(result.unique.classes.size(), analyzeClass,
                    cfg_.numThreads);
  result.step1Seconds = static_cast<double>(step1Us.load()) / 1e6;
  result.step2Seconds = static_cast<double>(step2Us.load()) / 1e6;

  // Step 3, cluster DP across the whole design (clusters run in parallel in
  // dependency waves — see ClusterSelectConfig::numThreads).
  const auto t3 = std::chrono::steady_clock::now();
  if (cfg_.runClusterSelection) {
    ClusterSelectConfig csCfg = cfg_.clusterSelect;
    csCfg.numThreads = cfg_.numThreads;
    ClusterSelector selector(*design_, result.unique, result.classes, csCfg);
    result.chosenPattern = selector.run();
  } else {
    result.chosenPattern.assign(design_->instances.size(), -1);
    for (std::size_t i = 0; i < design_->instances.size(); ++i) {
      const int cls = result.unique.classOf[i];
      if (cls >= 0 && !result.classes[cls].patterns.empty()) {
        result.chosenPattern[i] = 0;
      }
    }
  }
  result.step3Seconds += secondsSince(t3);
  result.wallSeconds = secondsSince(t0);
  return result;
}

}  // namespace pao::core
