// Cross-run cache of intra-cell access analysis, keyed by the unique
// instance signature (master, orientation, track offsets). Because the
// signature fully determines Steps 1-2 (paper Sec. II-A), results survive
// arbitrary placement changes — exactly what an incremental placement loop
// needs: moving one cell invalidates nothing, it merely looks up (or adds)
// the signature at the new location.
//
// Entries are stored origin-relative (representative origin subtracted), so
// a hit is valid for any placement of the signature.
#pragma once

#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "db/unique_inst.hpp"
#include "pao/cluster_select.hpp"

namespace pao::core {

class AccessCache {
 public:
  using Key =
      std::tuple<const db::Master*, geom::Orient, std::vector<geom::Coord>>;

  static Key keyOf(const db::UniqueInstance& ui) {
    return {ui.master, ui.orient, ui.offsets};
  }

  /// Origin-relative entry, or nullptr on miss. find() counts hit/miss
  /// statistics.
  ///
  /// Thread safety: find/store/size/hits/misses/clear are internally
  /// synchronized, so one cache may back many concurrent OracleSessions
  /// (the pao_serve cross-tenant cache). A returned pointer stays valid —
  /// std::map nodes are stable and store() never overwrites a published
  /// entry (first writer wins; any two writers of the same signature
  /// compute identical values, see computeClassAccess's determinism note).
  const ClassAccess* find(const Key& key);
  void store(const Key& key, ClassAccess originRelative);

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  std::size_t hits() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  std::size_t misses() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  void clear();

  /// Translates an origin-relative entry to a representative placed at
  /// `origin` (or the reverse with a negated origin).
  static ClassAccess translate(const ClassAccess& ca, geom::Point origin);

  /// Hash of the tech/library identity a cache is only valid against: layer,
  /// via, and master names plus their key dimensions (layer width/pitch, via
  /// rects, master sizes and pin shapes). Hex string, stable across
  /// processes and platforms.
  static std::string fingerprint(const db::Tech& tech, const db::Library& lib);

  /// Serializes all entries to a line-oriented text format
  /// (`PAO_ACCESS_CACHE v2` with a fingerprint line). Master pointers are
  /// written by name and re-resolved against a Library on load. Entries are
  /// ordered by (master name, orient, offsets), so the output is
  /// byte-identical across processes for the same cache content.
  std::string save(const db::Tech& tech, const db::Library& lib) const;
  /// Merges entries from `text` (produced by save) into this cache. v2 is
  /// all-or-nothing: a fingerprint mismatch, any corruption, a record count
  /// exceeding the bytes present, or a missing/short `END <count>` trailer
  /// rejects the whole file (nothing is merged) with a reason in *errorOut.
  /// v1 caches (no fingerprint, no trailer) load best-effort, with entries
  /// referencing unknown masters or vias skipped and no error reported.
  /// Returns the number of entries loaded; on rejection, 0.
  std::size_t load(const std::string& text, const db::Tech& tech,
                   const db::Library& lib, std::string* errorOut = nullptr);

 private:
  /// Best-effort v1 body parse; `is` is positioned just past the header of
  /// a `textSize`-byte file (the bound for sanity-checking record counts).
  std::size_t loadV1(std::istream& is, std::size_t textSize,
                     const db::Tech& tech, const db::Library& lib);

  /// Guards entries_/hits_/misses_. Entry *values* are immutable once
  /// published (store is insert-if-absent), so readers may dereference a
  /// find() result without holding the lock. load/save take the lock for
  /// their whole pass; they are meant for single-threaded setup/teardown.
  mutable std::mutex mu_;
  std::map<Key, ClassAccess> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace pao::core
