#include "pao/report_json.hpp"

#include <utility>

#include "db/design.hpp"
#include "db/lib.hpp"
#include "db/tech.hpp"

namespace pao::core {

obs::Json designSectionJson(const db::Tech& tech, const db::Library& lib,
                            const db::Design& design) {
  obs::Json j = obs::Json::object();
  j.set("name", obs::Json(design.name));
  j.set("layers", obs::Json(tech.layers().size()));
  j.set("masters", obs::Json(lib.masters().size()));
  j.set("instances", obs::Json(design.instances.size()));
  j.set("nets", obs::Json(design.nets.size()));
  return j;
}

obs::Json analysisConfigJson(const std::string& mode, int threads,
                             bool keepGoing) {
  obs::Json j = obs::Json::object();
  j.set("mode", obs::Json(mode));
  j.set("threads", obs::Json(threads));
  j.set("keepGoing", obs::Json(keepGoing));
  return j;
}

obs::Json oracleSectionJson(const OracleResult& res) {
  obs::Json j = obs::Json::object();
  std::size_t populated = 0;
  for (const db::UniqueInstance& ui : res.unique.classes) {
    if (!ui.members.empty()) ++populated;
  }
  j.set("uniqueInstances", obs::Json(populated));
  j.set("totalAps", obs::Json(res.totalAps()));
  obs::Json timings = obs::Json::object();
  timings.set("step1WorkerSeconds", obs::Json(res.step1Seconds));
  timings.set("step2WorkerSeconds", obs::Json(res.step2Seconds));
  timings.set("step1CpuSeconds", obs::Json(res.step1CpuSeconds));
  timings.set("step2CpuSeconds", obs::Json(res.step2CpuSeconds));
  timings.set("step3CpuSeconds", obs::Json(res.step3CpuSeconds));
  timings.set("steps12WallSeconds", obs::Json(res.steps12WallSeconds));
  timings.set("step3WallSeconds", obs::Json(res.step3Seconds));
  timings.set("wallSeconds", obs::Json(res.wallSeconds));
  j.set("timings", std::move(timings));
  return j;
}

obs::Json oracleSectionJson(const OracleResult& res, const DirtyApStats& dirty,
                            const FailedPinStats& failed) {
  obs::Json j = oracleSectionJson(res);
  j.set("dirtyAps", obs::Json(dirty.dirtyAps));
  j.set("failedPins", obs::Json(failed.failedPins));
  j.set("totalPins", obs::Json(failed.totalPins));
  return j;
}

obs::Json sessionSectionJson(const OracleSession::Stats& stats) {
  obs::Json j = obs::Json::object();
  j.set("mutations", obs::Json(stats.mutations));
  j.set("clusterDpRuns", obs::Json(stats.clusterDpRuns));
  j.set("lastDirtyClusters", obs::Json(stats.lastDirtyClusters));
  j.set("lastClusterCount", obs::Json(stats.lastClusterCount));
  j.set("classBuilds", obs::Json(stats.classBuilds));
  j.set("cacheHits", obs::Json(stats.cacheHits));
  // Deterministic (winner-commit) Step-3 pair-check count; the graph/steal
  // stats stay out of the report because they are schedule-dependent.
  j.set("pairChecks", obs::Json(stats.pairChecks));
  return j;
}

obs::Json cacheSectionJson(const AccessCache& cache) {
  obs::Json j = obs::Json::object();
  j.set("entries", obs::Json(cache.size()));
  j.set("hits", obs::Json(cache.hits()));
  j.set("misses", obs::Json(cache.misses()));
  return j;
}

obs::Json degradedSectionJson(const std::vector<DegradedEvent>& events) {
  obs::Json arr = obs::Json::array();
  for (const DegradedEvent& e : events) {
    obs::Json j = obs::Json::object();
    j.set("kind", obs::Json(e.kind));
    j.set("cls", obs::Json(static_cast<long long>(e.cls)));
    j.set("detail", obs::Json(e.detail));
    arr.push(std::move(j));
  }
  return arr;
}

obs::Json ingestSectionJson(const IngestReport& r) {
  obs::Json j = obs::Json::object();
  j.set("bytes", obs::Json(r.defBytes));
  j.set("lefBytes", obs::Json(r.lefBytes));
  j.set("chunks", obs::Json(r.chunks));
  j.set("components", obs::Json(r.components));
  j.set("nets", obs::Json(r.nets));
  j.set("mapped", obs::Json(r.mapped));
  j.set("legacyFallback", obs::Json(r.legacyFallback));
  j.set("parseSeconds", obs::Json(r.parseSeconds));
  const double secs = r.parseSeconds > 0 ? r.parseSeconds : 1e-9;
  j.set("mbPerSec",
        obs::Json(static_cast<double>(r.defBytes) / (1024.0 * 1024.0) /
                  secs));
  j.set("instsPerSec",
        obs::Json(static_cast<double>(r.components) / secs));
  j.set("peakRssBytes", obs::Json(static_cast<long long>(r.peakRssBytes)));
  return j;
}

}  // namespace pao::core
