#include "pao/session.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <stdexcept>
#include <tuple>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pao/ap_gen.hpp"
#include "pao/inst_context.hpp"
#include "pao/legacy_ap.hpp"
#include "pao/pattern_gen.hpp"
#include "util/cpu_time.hpp"
#include "util/executor.hpp"
#include "util/fault.hpp"
#include "util/jobs.hpp"

namespace pao::core {

namespace {

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The TrRte baseline has no pattern stage: every pin just takes its first
/// access point.
AccessPattern firstApPattern(const std::vector<std::vector<AccessPoint>>& aps) {
  AccessPattern pat;
  pat.apIdx.reserve(aps.size());
  for (const std::vector<AccessPoint>& pinAps : aps) {
    pat.apIdx.push_back(pinAps.empty() ? -1 : 0);
  }
  pat.validated = false;  // never checked, by construction of the baseline
  return pat;
}

}  // namespace

OracleSession::OracleSession(db::Design& design, OracleConfig cfg)
    : design_(&design),
      mutableDesign_(&design),
      cfg_(cfg),
      cache_(cfg.cache),
      index_(design, cfg.numThreads) {
  buildAll();
}

OracleSession::OracleSession(const db::Design& design, OracleConfig cfg)
    : design_(&design),
      mutableDesign_(nullptr),
      cfg_(cfg),
      cache_(cfg.cache),
      index_(design, cfg.numThreads) {
  buildAll();
}

void OracleSession::requireMutable() const {
  if (mutableDesign_ == nullptr) {
    throw std::logic_error(
        "OracleSession: mutation on a read-only session (construct from a "
        "mutable db::Design& to mutate)");
  }
  if (design_->revision() != designRevision_) {
    throw std::logic_error(
        "OracleSession: design was mutated outside the session");
  }
}

/// State threaded from a class's Step-1 node to its Step-2 node in the
/// pipeline graph. The graph edge S1(c) -> S2(c) provides the
/// happens-before; nothing here needs synchronization.
struct OracleSession::ClassBuildState {
  /// Entered the full analysis path (not unplaced/pinless/cache-hit):
  /// classStep2 owes this class finalization (normalize, cache, stats).
  bool analyzed = false;
  /// classStep2 must still run the pattern DP (false in legacyMode and
  /// after a Step-1 keepGoing fallback, which already produced patterns).
  bool patternsPending = false;
  std::optional<InstContext> ctx;
  AccessCache::Key key{};
  geom::Point repOrigin{};
  std::optional<DegradedEvent> event;
  double step1 = 0;
  double step2 = 0;
  double cpu1 = 0;
  double cpu2 = 0;
};

namespace {

/// TrRte-style access for one class: legacy APs + first-AP pattern. The
/// primary path in legacyMode, and the keep-going fallback otherwise.
void legacyAccessInto(ClassAccess& ca, const InstContext& ctx) {
  ca.pinAps = LegacyApGenerator(ctx).generateAll();
  ca.patterns.push_back(firstApPattern(ca.pinAps));
  for (int i = 0; i < static_cast<int>(ca.pinAps.size()); ++i) {
    if (!ca.pinAps[i].empty()) ca.pinOrder.push_back(i);
  }
}

}  // namespace

void OracleSession::fallbackToLegacy(std::size_t c, ClassBuildState& st,
                                     const std::exception& e) {
  st.event = DegradedEvent{"class_fallback", e.what(), static_cast<int>(c)};
  st.patternsPending = false;
  ClassAccess& ca = classes_[c];
  ca = ClassAccess{};
  try {
    const auto t1 = std::chrono::steady_clock::now();
    const double cpu1 = util::threadCpuSeconds();
    legacyAccessInto(ca, *st.ctx);
    st.step1 += secondsSince(t1);
    st.cpu1 += util::threadCpuSeconds() - cpu1;
  } catch (const std::exception& e2) {
    // Even the fallback failed: the class keeps empty access (its pins
    // count as failed) but the run continues.
    ca = ClassAccess{};
    st.event = DegradedEvent{"class_failed", e2.what(), static_cast<int>(c)};
  }
}

void OracleSession::classStep1(std::size_t c, ClassBuildState& st) {
  const db::UniqueInstance& ui = index_.classes().classes[c];
  if (ui.members.empty()) return;  // nothing placed; stays un-analyzed
  ClassAccess& ca = classes_[c];
  classReady_[c] = 1;
  if (ui.master->signalPinIndices().empty()) return;  // fillers etc.

  st.key = AccessCache::keyOf(ui);
  if (cache_ != nullptr && !cfg_.legacyMode) {
    std::lock_guard<std::mutex> lock(cacheMu_);
    if (const ClassAccess* hit = cache_->find(st.key)) {
      ca = *hit;  // stored origin-relative, same as the session convention
      ++stats_.cacheHits;
      PAO_COUNTER_INC("pao.oracle.cache_hits");
      return;
    }
    PAO_COUNTER_INC("pao.oracle.cache_misses");
  }

  st.analyzed = true;
  st.repOrigin = design_->instances[ui.representative].origin;
  st.ctx.emplace(*design_, ui);
  PAO_TRACE_SCOPE("oracle.class_access");
  try {
    // The fault point models "this class's Steps 1-2 analysis blew up";
    // legacyMode has no deeper fallback to degrade to, so it stays strict.
    if (!cfg_.legacyMode) PAO_FAULT_INJECT("oracle.class_access");
    const auto t1 = std::chrono::steady_clock::now();
    const double cpu1 = util::threadCpuSeconds();
    if (cfg_.legacyMode) {
      legacyAccessInto(ca, *st.ctx);
    } else {
      ApGenConfig apCfg = cfg_.apGen;
      // Macro (block) pins admit planar access: via access is only
      // mandatory for standard cells (paper footnote 1).
      if (ui.master->cls == db::MasterClass::kBlock) apCfg.requireVia = false;
      ca.pinAps = AccessPointGenerator(*st.ctx, apCfg).generateAll();
      st.patternsPending = true;
    }
    st.step1 = secondsSince(t1);
    st.cpu1 = util::threadCpuSeconds() - cpu1;
  } catch (const std::exception& e) {
    if (!cfg_.keepGoing || cfg_.legacyMode) throw;
    fallbackToLegacy(c, st, e);
  }
}

void OracleSession::classStep2(std::size_t c, ClassBuildState& st) {
  if (!st.analyzed) return;
  ClassAccess& ca = classes_[c];
  if (st.patternsPending) {
    PAO_TRACE_SCOPE("oracle.class_access");
    try {
      const auto t2 = std::chrono::steady_clock::now();
      const double cpu2 = util::threadCpuSeconds();
      PatternGenerator gen(*st.ctx, ca.pinAps, cfg_.patternGen);
      ca.patterns = gen.run();
      ca.pinOrder = gen.pinOrder();
      st.step2 = secondsSince(t2);
      st.cpu2 = util::threadCpuSeconds() - cpu2;
    } catch (const std::exception& e) {
      if (!cfg_.keepGoing || cfg_.legacyMode) throw;
      fallbackToLegacy(c, st, e);
    }
  }
  PAO_COUNTER_INC("pao.oracle.class_builds");

  // Normalize to origin-relative so the entry is placement-independent.
  ca = AccessCache::translate(ca, geom::Point{0, 0} - st.repOrigin);

  std::lock_guard<std::mutex> lock(cacheMu_);
  // A degraded class result must never poison the cross-run cache: a later
  // fault-free run would silently inherit the fallback access.
  if (cache_ != nullptr && !cfg_.legacyMode && !st.event) {
    cache_->store(st.key, ca);
  }
  if (st.event) degraded_.push_back(std::move(*st.event));
  ++stats_.classBuilds;
  step1Seconds_ += st.step1;
  step2Seconds_ += st.step2;
  step1CpuSeconds_ += st.cpu1;
  step2CpuSeconds_ += st.cpu2;
}

void OracleSession::computeClassAccess(std::size_t c) {
  ClassBuildState st;
  classStep1(c, st);
  classStep2(c, st);
}

void OracleSession::buildAll() {
  PAO_TRACE_SCOPE("oracle.build");
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t numClasses = index_.classes().classes.size();
  classes_.assign(numClasses, ClassAccess{});
  classReady_.assign(numClasses, 0);

  if (!cfg_.runClusterSelection) {
    // No Step-3 DP (legacy / ablation): Steps 1-2 per class, then the
    // trivial first-pattern selection. Each class writes only its own slot
    // (step1Seconds_/step2Seconds_ report summed per-class worker time for
    // every thread count — see OracleResult).
    {
      PAO_TRACE_SCOPE("oracle.steps12");
      util::parallelFor(
          numClasses, [&](std::size_t c) { computeClassAccess(c); },
          cfg_.numThreads);
    }
    steps12WallSeconds_ = secondsSince(t0);
    const auto t3 = std::chrono::steady_clock::now();
    {
      PAO_TRACE_SCOPE("oracle.step3");
      trivialSelection();
    }
    step3Seconds_ = secondsSince(t3);
    wallSeconds_ = secondsSince(t0);
    designRevision_ = design_->revision();
    return;
  }

  // The full flow runs as ONE job graph (ROADMAP item 2): each class
  // contributes a Step-1 node chained to a Step-2 node, and each cluster a
  // Step-3 DP node depending only on its member classes' Step-2 nodes plus
  // the same-instance predecessor clusters (clusterDeps). A cluster whose
  // classes finished early therefore overlaps other classes' Steps 1-2 —
  // there is no barrier between the phases. Node ids interleave
  // S1(0),S2(0),S1(1),... so a strict-mode failure still rethrows the
  // lowest class's exception, like the old per-phase parallelFor did.
  ClusterSelectConfig csCfg = cfg_.clusterSelect;
  csCfg.numThreads = cfg_.numThreads;
  csCfg.originRelativeClasses = true;
  csCfg.budgetSeconds = cfg_.step3BudgetSeconds;
  selector_ = std::make_unique<ClusterSelector>(*design_, index_.classes(),
                                                classes_, csCfg);
  selector_->armBudget();
  chosen_.assign(design_->instances.size(), -1);

  std::vector<ClassBuildState> states(numClasses);
  pendingSteps12_.store(numClasses, std::memory_order_relaxed);
  overlapJobs_.store(0, std::memory_order_relaxed);
  step3Started_.store(false, std::memory_order_relaxed);

  util::JobGraph graph;
  std::vector<util::JobId> s2Id(numClasses);
  for (std::size_t c = 0; c < numClasses; ++c) {
    const util::JobId s1 =
        graph.addJob([this, c, &states] { classStep1(c, states[c]); });
    const util::JobId s1Dep[] = {s1};
    s2Id[c] = graph.addJob(
        [this, c, &states, t0] {
          classStep2(c, states[c]);
          if (pendingSteps12_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            steps12WallSeconds_ = secondsSince(t0);
          }
        },
        s1Dep);
  }

  const std::vector<std::vector<int>>& clusters = selector_->clusters();
  const std::vector<std::vector<std::size_t>> cDeps = clusterDeps(clusters);
  const std::vector<int>& classOf = index_.classes().classOf;
  std::vector<util::JobId> clusterIds(clusters.size());
  std::vector<util::JobId> deps;
  for (std::size_t k = 0; k < clusters.size(); ++k) {
    deps.clear();
    for (const int inst : clusters[k]) {
      const int cls = classOf[inst];
      if (cls >= 0) deps.push_back(s2Id[static_cast<std::size_t>(cls)]);
    }
    for (const std::size_t d : cDeps[k]) deps.push_back(clusterIds[d]);
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    clusterIds[k] = graph.addJob(
        [this, k, &clusters] {
          if (pendingSteps12_.load(std::memory_order_acquire) > 0) {
            overlapJobs_.fetch_add(1, std::memory_order_relaxed);
          }
          bool expected = false;
          if (step3Started_.compare_exchange_strong(expected, true)) {
            step3T0_ = std::chrono::steady_clock::now();
          }
          selector_->selectCluster(clusters[k], chosen_);
        },
        deps);
  }

  {
    PAO_TRACE_SCOPE("oracle.pipeline");
    graph.run(cfg_.numThreads);
  }

  clusters_ = selector_->clusters();
  stats_.lastClusterCount = clusters.size();
  stats_.clusterDpRuns = selector_->numDpRuns();
  stats_.pairChecks = selector_->numPairChecks();
  stats_.graphJobs = graph.stats().jobs;
  stats_.overlapJobs = overlapJobs_.load(std::memory_order_relaxed);
  stats_.graphSteals = graph.stats().steals;
#if PAO_OBS_ENABLED
  graphProfile_ = graph.profile();
#endif
  step3CpuSeconds_ = selector_->dpCpuSeconds();
  recordBudgetExpiry();
  // step3Seconds_ spans from the first DP node's start to the end of the
  // graph — with overlap, "Step-3 wall time" necessarily includes tail
  // Steps 1-2 work running alongside.
  step3Seconds_ = step3Started_.load(std::memory_order_relaxed)
                      ? secondsSince(step3T0_)
                      : 0.0;
  wallSeconds_ = secondsSince(t0);
  designRevision_ = design_->revision();
}

void OracleSession::trivialSelection() {
  chosen_.assign(design_->instances.size(), -1);
  for (std::size_t i = 0; i < design_->instances.size(); ++i) {
    const int cls = index_.classes().classOf[i];
    if (cls >= 0 && classReady_[cls] && !classes_[cls].patterns.empty()) {
      chosen_[i] = 0;
    }
  }
}

void OracleSession::ensureClassAccess(int cls) {
  const std::size_t numClasses = index_.classes().classes.size();
  if (classes_.size() < numClasses) {
    classes_.resize(numClasses);
    classReady_.resize(numClasses, 0);
  }
  if (!classReady_[cls]) computeClassAccess(static_cast<std::size_t>(cls));
}

void OracleSession::onGeometryChanged(int instIdx) {
  index_.update(instIdx);
  ensureClassAccess(index_.classOf(instIdx));
  recomputeAfterMutation({instIdx});
}

void OracleSession::moveInstance(int instIdx, geom::Point newOrigin) {
  requireMutable();
  mutableDesign_->moveInstance(instIdx, newOrigin);
  onGeometryChanged(instIdx);
}

void OracleSession::setOrient(int instIdx, geom::Orient orient) {
  requireMutable();
  mutableDesign_->setInstanceOrient(instIdx, orient);
  onGeometryChanged(instIdx);
}

int OracleSession::addInstance(db::Instance inst) {
  requireMutable();
  const int idx = mutableDesign_->addInstance(std::move(inst));
  index_.add(idx);
  chosen_.push_back(-1);
  ensureClassAccess(index_.classOf(idx));
  recomputeAfterMutation({idx});
  return idx;
}

void OracleSession::removeInstance(int instIdx) {
  requireMutable();
  index_.remove(instIdx);
  mutableDesign_->removeInstance(instIdx);
  chosen_.erase(chosen_.begin() + instIdx);
  // Clusters that contained the instance lose their identity entirely (the
  // survivors' abutment changed, so their old DP result must not be reused
  // under the remapped member list); all other stored clusters renumber.
  for (std::vector<int>& cluster : clusters_) {
    if (std::find(cluster.begin(), cluster.end(), instIdx) != cluster.end()) {
      cluster.clear();
      continue;
    }
    for (int& m : cluster) {
      if (m > instIdx) --m;
    }
  }
  std::erase_if(clusters_,
                [](const std::vector<int>& c) { return c.empty(); });
  recomputeAfterMutation({});
}

void OracleSession::recomputeAfterMutation(const std::vector<int>& touched) {
  PAO_TRACE_SCOPE("session.mutation");
  ++stats_.mutations;
  PAO_COUNTER_INC("pao.session.mutations");
  designRevision_ = design_->revision();
  if (!cfg_.runClusterSelection) {
    trivialSelection();
    return;
  }

  std::vector<std::vector<int>> newClusters = buildClusters(*design_);
  const std::set<std::vector<int>> oldSet(clusters_.begin(), clusters_.end());
  const std::size_t numInst = design_->instances.size();
  std::vector<char> touchedInst(numInst, 0);
  for (const int t : touched) touchedInst[t] = 1;

  // Dirty = structurally new, contains a touched instance, or — checked in
  // cluster (i.e. pinning) order — shares an instance with an earlier dirty
  // cluster, whose pinned multi-height decision may have changed.
  std::vector<char> dirty(newClusters.size(), 0);
  std::vector<char> instDirty(numInst, 0);
  for (std::size_t c = 0; c < newClusters.size(); ++c) {
    bool d = oldSet.find(newClusters[c]) == oldSet.end();
    if (!d) {
      for (const int inst : newClusters[c]) {
        if (touchedInst[inst] != 0 || instDirty[inst] != 0) {
          d = true;
          break;
        }
      }
    }
    if (d) {
      dirty[c] = 1;
      for (const int inst : newClusters[c]) instDirty[inst] = 1;
    }
  }

  // Reset the choice of instances that appear only in dirty clusters; an
  // instance shared with a clean cluster keeps that cluster's (earlier, and
  // unchanged) decision as a pin for the re-run.
  std::vector<char> inClean(numInst, 0);
  std::vector<std::vector<int>> dirtyClusters;
  for (std::size_t c = 0; c < newClusters.size(); ++c) {
    if (dirty[c] == 0) {
      for (const int inst : newClusters[c]) inClean[inst] = 1;
    } else {
      dirtyClusters.push_back(newClusters[c]);
    }
  }
  for (const std::vector<int>& cluster : dirtyClusters) {
    for (const int inst : cluster) {
      if (inClean[inst] == 0) chosen_[inst] = -1;
    }
  }

  // Re-run the DP for dirty clusters only, as a job graph whose edges chain
  // dirty clusters sharing a multi-height instance (clusterDeps) so those
  // replay their serial pinning order while disjoint ones overlap. Each
  // mutation gets a fresh Step-3 budget.
  selector_->armBudget();
  {
    util::JobGraph graph;
    const std::vector<std::vector<std::size_t>> deps =
        clusterDeps(dirtyClusters);
    std::vector<util::JobId> ids(dirtyClusters.size());
    std::vector<util::JobId> depIds;
    for (std::size_t k = 0; k < dirtyClusters.size(); ++k) {
      depIds.clear();
      for (const std::size_t d : deps[k]) depIds.push_back(ids[d]);
      ids[k] = graph.addJob(
          [this, k, &dirtyClusters] {
            selector_->selectCluster(dirtyClusters[k], chosen_);
          },
          depIds);
    }
    graph.run(cfg_.numThreads);
    stats_.graphJobs += graph.stats().jobs;
    stats_.graphSteals += graph.stats().steals;
#if PAO_OBS_ENABLED
    if (graph.size() > 0) graphProfile_ = graph.profile();
#endif
  }
  stats_.pairChecks = selector_->numPairChecks();

  stats_.lastDirtyClusters = dirtyClusters.size();
  stats_.lastClusterCount = newClusters.size();
  stats_.clusterDpRuns = selector_->numDpRuns();
  step3CpuSeconds_ = selector_->dpCpuSeconds();
  recordBudgetExpiry();
  PAO_COUNTER_ADD("pao.session.dirty_clusters", dirtyClusters.size());
  clusters_ = std::move(newClusters);
}

void OracleSession::recordBudgetExpiry() {
  if (selector_ == nullptr || !selector_->budgetExpired()) return;
  degraded_.push_back(
      {"step3_budget",
       std::to_string(selector_->expiredClusters()) +
           " cluster(s) committed best-so-far patterns on budget expiry",
       -1});
}

std::optional<OracleResult::ChosenAp> OracleSession::chosenAp(
    int instIdx, int sigPinPos) const {
  const int cls = index_.classes().classOf[instIdx];
  if (cls < 0 || classReady_[cls] == 0) return std::nullopt;
  const ClassAccess& ca = classes_[cls];
  const int pat = chosen_[instIdx];
  if (pat < 0 || pat >= static_cast<int>(ca.patterns.size())) {
    return std::nullopt;
  }
  if (sigPinPos >= static_cast<int>(ca.patterns[pat].apIdx.size())) {
    return std::nullopt;
  }
  const int apIdx = ca.patterns[pat].apIdx[sigPinPos];
  if (apIdx < 0) return std::nullopt;
  const AccessPoint& ap = ca.pinAps[sigPinPos][apIdx];
  return OracleResult::ChosenAp{
      &ap, ap.loc + design_->instances[instIdx].origin};
}

OracleResult OracleSession::snapshot() const {
  OracleResult r;
  r.unique = index_.classes();
  r.classes.resize(classes_.size());
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const db::UniqueInstance& ui = r.unique.classes[c];
    if (ui.members.empty() || classReady_[c] == 0) continue;
    r.classes[c] = AccessCache::translate(
        classes_[c], design_->instances[ui.representative].origin);
  }
  r.chosenPattern = chosen_;
  r.degraded = degraded_;
  // Canonical order: computeClassAccess appends in worker-completion order,
  // which is schedule-dependent under numThreads > 1.
  std::sort(r.degraded.begin(), r.degraded.end(),
            [](const DegradedEvent& a, const DegradedEvent& b) {
              return std::tie(a.cls, a.kind, a.detail) <
                     std::tie(b.cls, b.kind, b.detail);
            });
  r.step1Seconds = step1Seconds_;
  r.step2Seconds = step2Seconds_;
  r.step3Seconds = step3Seconds_;
  r.wallSeconds = wallSeconds_;
  r.step1CpuSeconds = step1CpuSeconds_;
  r.step2CpuSeconds = step2CpuSeconds_;
  r.step3CpuSeconds = step3CpuSeconds_;
  r.steps12WallSeconds = steps12WallSeconds_;
  return r;
}

}  // namespace pao::core
