#include "pao/session.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <stdexcept>
#include <tuple>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pao/ap_gen.hpp"
#include "pao/inst_context.hpp"
#include "pao/legacy_ap.hpp"
#include "pao/pattern_gen.hpp"
#include "util/cpu_time.hpp"
#include "util/executor.hpp"
#include "util/fault.hpp"

namespace pao::core {

namespace {

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The TrRte baseline has no pattern stage: every pin just takes its first
/// access point.
AccessPattern firstApPattern(const std::vector<std::vector<AccessPoint>>& aps) {
  AccessPattern pat;
  pat.apIdx.reserve(aps.size());
  for (const std::vector<AccessPoint>& pinAps : aps) {
    pat.apIdx.push_back(pinAps.empty() ? -1 : 0);
  }
  pat.validated = false;  // never checked, by construction of the baseline
  return pat;
}

}  // namespace

OracleSession::OracleSession(db::Design& design, OracleConfig cfg)
    : design_(&design),
      mutableDesign_(&design),
      cfg_(cfg),
      cache_(cfg.cache),
      index_(design) {
  buildAll();
}

OracleSession::OracleSession(const db::Design& design, OracleConfig cfg)
    : design_(&design),
      mutableDesign_(nullptr),
      cfg_(cfg),
      cache_(cfg.cache),
      index_(design) {
  buildAll();
}

void OracleSession::requireMutable() const {
  if (mutableDesign_ == nullptr) {
    throw std::logic_error(
        "OracleSession: mutation on a read-only session (construct from a "
        "mutable db::Design& to mutate)");
  }
  if (design_->revision() != designRevision_) {
    throw std::logic_error(
        "OracleSession: design was mutated outside the session");
  }
}

void OracleSession::computeClassAccess(std::size_t c) {
  const db::UniqueInstance& ui = index_.classes().classes[c];
  if (ui.members.empty()) return;  // nothing placed; stays un-analyzed
  ClassAccess& ca = classes_[c];
  classReady_[c] = 1;
  if (ui.master->signalPinIndices().empty()) return;  // fillers etc.

  const AccessCache::Key key = AccessCache::keyOf(ui);
  if (cache_ != nullptr && !cfg_.legacyMode) {
    std::lock_guard<std::mutex> lock(cacheMu_);
    if (const ClassAccess* hit = cache_->find(key)) {
      ca = *hit;  // stored origin-relative, same as the session convention
      ++stats_.cacheHits;
      PAO_COUNTER_INC("pao.oracle.cache_hits");
      return;
    }
    PAO_COUNTER_INC("pao.oracle.cache_misses");
  }

  PAO_TRACE_SCOPE("oracle.class_access");
  const geom::Point repOrigin = design_->instances[ui.representative].origin;
  const InstContext ctx(*design_, ui);
  double step1 = 0;
  double step2 = 0;
  double cpuStep1 = 0;
  double cpuStep2 = 0;

  // TrRte-style access for this class: legacy APs + first-AP pattern. The
  // primary path in legacyMode, and the keep-going fallback otherwise.
  const auto legacyAccess = [&] {
    ca.pinAps = LegacyApGenerator(ctx).generateAll();
    ca.patterns.push_back(firstApPattern(ca.pinAps));
    for (int i = 0; i < static_cast<int>(ca.pinAps.size()); ++i) {
      if (!ca.pinAps[i].empty()) ca.pinOrder.push_back(i);
    }
  };

  const auto generate = [&] {
    const auto t1 = std::chrono::steady_clock::now();
    const double cpu1 = util::threadCpuSeconds();
    if (cfg_.legacyMode) {
      legacyAccess();
      step1 = secondsSince(t1);
      cpuStep1 = util::threadCpuSeconds() - cpu1;
      return;
    }
    ApGenConfig apCfg = cfg_.apGen;
    // Macro (block) pins admit planar access: via access is only mandatory
    // for standard cells (paper footnote 1).
    if (ui.master->cls == db::MasterClass::kBlock) apCfg.requireVia = false;
    ca.pinAps = AccessPointGenerator(ctx, apCfg).generateAll();
    step1 = secondsSince(t1);
    const double cpu2 = util::threadCpuSeconds();

    const auto t2 = std::chrono::steady_clock::now();
    PatternGenerator gen(ctx, ca.pinAps, cfg_.patternGen);
    ca.patterns = gen.run();
    ca.pinOrder = gen.pinOrder();
    step2 = secondsSince(t2);
    cpuStep1 = cpu2 - cpu1;
    cpuStep2 = util::threadCpuSeconds() - cpu2;
  };

  std::optional<DegradedEvent> event;
  try {
    // The fault point models "this class's Steps 1-2 analysis blew up";
    // legacyMode has no deeper fallback to degrade to, so it stays strict.
    if (!cfg_.legacyMode) PAO_FAULT_INJECT("oracle.class_access");
    generate();
  } catch (const std::exception& e) {
    if (!cfg_.keepGoing || cfg_.legacyMode) throw;
    event = DegradedEvent{"class_fallback", e.what(), static_cast<int>(c)};
    ca = ClassAccess{};
    try {
      const auto t1 = std::chrono::steady_clock::now();
      const double cpu1 = util::threadCpuSeconds();
      legacyAccess();
      step1 += secondsSince(t1);
      cpuStep1 += util::threadCpuSeconds() - cpu1;
    } catch (const std::exception& e2) {
      // Even the fallback failed: the class keeps empty access (its pins
      // count as failed) but the run continues.
      ca = ClassAccess{};
      event = DegradedEvent{"class_failed", e2.what(), static_cast<int>(c)};
    }
  }
  PAO_COUNTER_INC("pao.oracle.class_builds");

  // Normalize to origin-relative so the entry is placement-independent.
  ca = AccessCache::translate(ca, geom::Point{0, 0} - repOrigin);

  std::lock_guard<std::mutex> lock(cacheMu_);
  // A degraded class result must never poison the cross-run cache: a later
  // fault-free run would silently inherit the fallback access.
  if (cache_ != nullptr && !cfg_.legacyMode && !event) cache_->store(key, ca);
  if (event) degraded_.push_back(std::move(*event));
  ++stats_.classBuilds;
  step1Seconds_ += step1;
  step2Seconds_ += step2;
  step1CpuSeconds_ += cpuStep1;
  step2CpuSeconds_ += cpuStep2;
}

void OracleSession::buildAll() {
  PAO_TRACE_SCOPE("oracle.build");
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t numClasses = index_.classes().classes.size();
  classes_.assign(numClasses, ClassAccess{});
  classReady_.assign(numClasses, 0);

  // Steps 1-2, one independent work item per class; each writes only its
  // own slot (step1Seconds_/step2Seconds_ report summed per-class worker
  // time for every thread count — see OracleResult).
  {
    PAO_TRACE_SCOPE("oracle.steps12");
    util::parallelFor(
        numClasses, [&](std::size_t c) { computeClassAccess(c); },
        cfg_.numThreads);
  }
  steps12WallSeconds_ = secondsSince(t0);

  const auto t3 = std::chrono::steady_clock::now();
  {
    PAO_TRACE_SCOPE("oracle.step3");
    if (cfg_.runClusterSelection) {
      ClusterSelectConfig csCfg = cfg_.clusterSelect;
      csCfg.numThreads = cfg_.numThreads;
      csCfg.originRelativeClasses = true;
      csCfg.budgetSeconds = cfg_.step3BudgetSeconds;
      selector_ = std::make_unique<ClusterSelector>(*design_, index_.classes(),
                                                    classes_, csCfg);
      chosen_ = selector_->run();
      clusters_ = selector_->clusters();
      stats_.clusterDpRuns = selector_->numDpRuns();
      step3CpuSeconds_ = selector_->dpCpuSeconds();
      recordBudgetExpiry();
    } else {
      trivialSelection();
    }
  }
  step3Seconds_ = secondsSince(t3);
  wallSeconds_ = secondsSince(t0);
  designRevision_ = design_->revision();
}

void OracleSession::trivialSelection() {
  chosen_.assign(design_->instances.size(), -1);
  for (std::size_t i = 0; i < design_->instances.size(); ++i) {
    const int cls = index_.classes().classOf[i];
    if (cls >= 0 && classReady_[cls] && !classes_[cls].patterns.empty()) {
      chosen_[i] = 0;
    }
  }
}

void OracleSession::ensureClassAccess(int cls) {
  const std::size_t numClasses = index_.classes().classes.size();
  if (classes_.size() < numClasses) {
    classes_.resize(numClasses);
    classReady_.resize(numClasses, 0);
  }
  if (!classReady_[cls]) computeClassAccess(static_cast<std::size_t>(cls));
}

void OracleSession::onGeometryChanged(int instIdx) {
  index_.update(instIdx);
  ensureClassAccess(index_.classOf(instIdx));
  recomputeAfterMutation({instIdx});
}

void OracleSession::moveInstance(int instIdx, geom::Point newOrigin) {
  requireMutable();
  mutableDesign_->moveInstance(instIdx, newOrigin);
  onGeometryChanged(instIdx);
}

void OracleSession::setOrient(int instIdx, geom::Orient orient) {
  requireMutable();
  mutableDesign_->setInstanceOrient(instIdx, orient);
  onGeometryChanged(instIdx);
}

int OracleSession::addInstance(db::Instance inst) {
  requireMutable();
  const int idx = mutableDesign_->addInstance(std::move(inst));
  index_.add(idx);
  chosen_.push_back(-1);
  ensureClassAccess(index_.classOf(idx));
  recomputeAfterMutation({idx});
  return idx;
}

void OracleSession::removeInstance(int instIdx) {
  requireMutable();
  index_.remove(instIdx);
  mutableDesign_->removeInstance(instIdx);
  chosen_.erase(chosen_.begin() + instIdx);
  // Clusters that contained the instance lose their identity entirely (the
  // survivors' abutment changed, so their old DP result must not be reused
  // under the remapped member list); all other stored clusters renumber.
  for (std::vector<int>& cluster : clusters_) {
    if (std::find(cluster.begin(), cluster.end(), instIdx) != cluster.end()) {
      cluster.clear();
      continue;
    }
    for (int& m : cluster) {
      if (m > instIdx) --m;
    }
  }
  std::erase_if(clusters_,
                [](const std::vector<int>& c) { return c.empty(); });
  recomputeAfterMutation({});
}

void OracleSession::recomputeAfterMutation(const std::vector<int>& touched) {
  PAO_TRACE_SCOPE("session.mutation");
  ++stats_.mutations;
  PAO_COUNTER_INC("pao.session.mutations");
  designRevision_ = design_->revision();
  if (!cfg_.runClusterSelection) {
    trivialSelection();
    return;
  }

  std::vector<std::vector<int>> newClusters = buildClusters(*design_);
  const std::set<std::vector<int>> oldSet(clusters_.begin(), clusters_.end());
  const std::size_t numInst = design_->instances.size();
  std::vector<char> touchedInst(numInst, 0);
  for (const int t : touched) touchedInst[t] = 1;

  // Dirty = structurally new, contains a touched instance, or — checked in
  // cluster (i.e. pinning) order — shares an instance with an earlier dirty
  // cluster, whose pinned multi-height decision may have changed.
  std::vector<char> dirty(newClusters.size(), 0);
  std::vector<char> instDirty(numInst, 0);
  for (std::size_t c = 0; c < newClusters.size(); ++c) {
    bool d = oldSet.find(newClusters[c]) == oldSet.end();
    if (!d) {
      for (const int inst : newClusters[c]) {
        if (touchedInst[inst] != 0 || instDirty[inst] != 0) {
          d = true;
          break;
        }
      }
    }
    if (d) {
      dirty[c] = 1;
      for (const int inst : newClusters[c]) instDirty[inst] = 1;
    }
  }

  // Reset the choice of instances that appear only in dirty clusters; an
  // instance shared with a clean cluster keeps that cluster's (earlier, and
  // unchanged) decision as a pin for the re-run.
  std::vector<char> inClean(numInst, 0);
  std::vector<std::vector<int>> dirtyClusters;
  for (std::size_t c = 0; c < newClusters.size(); ++c) {
    if (dirty[c] == 0) {
      for (const int inst : newClusters[c]) inClean[inst] = 1;
    } else {
      dirtyClusters.push_back(newClusters[c]);
    }
  }
  for (const std::vector<int>& cluster : dirtyClusters) {
    for (const int inst : cluster) {
      if (inClean[inst] == 0) chosen_[inst] = -1;
    }
  }

  // Re-run the DP for dirty clusters only, wave-scheduled so dirty clusters
  // sharing a multi-height instance replay their serial pinning order. Each
  // mutation gets a fresh Step-3 budget.
  selector_->armBudget();
  const std::vector<std::vector<std::size_t>> waves =
      clusterWaves(dirtyClusters);
  for (const std::vector<std::size_t>& wave : waves) {
    util::parallelFor(
        wave.size(),
        [&](std::size_t i) {
          selector_->selectCluster(dirtyClusters[wave[i]], chosen_);
        },
        cfg_.numThreads);
  }

  stats_.lastDirtyClusters = dirtyClusters.size();
  stats_.lastClusterCount = newClusters.size();
  stats_.clusterDpRuns = selector_->numDpRuns();
  step3CpuSeconds_ = selector_->dpCpuSeconds();
  recordBudgetExpiry();
  PAO_COUNTER_ADD("pao.session.dirty_clusters", dirtyClusters.size());
  clusters_ = std::move(newClusters);
}

void OracleSession::recordBudgetExpiry() {
  if (selector_ == nullptr || !selector_->budgetExpired()) return;
  degraded_.push_back(
      {"step3_budget",
       std::to_string(selector_->expiredClusters()) +
           " cluster(s) committed best-so-far patterns on budget expiry",
       -1});
}

std::optional<OracleResult::ChosenAp> OracleSession::chosenAp(
    int instIdx, int sigPinPos) const {
  const int cls = index_.classes().classOf[instIdx];
  if (cls < 0 || classReady_[cls] == 0) return std::nullopt;
  const ClassAccess& ca = classes_[cls];
  const int pat = chosen_[instIdx];
  if (pat < 0 || pat >= static_cast<int>(ca.patterns.size())) {
    return std::nullopt;
  }
  if (sigPinPos >= static_cast<int>(ca.patterns[pat].apIdx.size())) {
    return std::nullopt;
  }
  const int apIdx = ca.patterns[pat].apIdx[sigPinPos];
  if (apIdx < 0) return std::nullopt;
  const AccessPoint& ap = ca.pinAps[sigPinPos][apIdx];
  return OracleResult::ChosenAp{
      &ap, ap.loc + design_->instances[instIdx].origin};
}

OracleResult OracleSession::snapshot() const {
  OracleResult r;
  r.unique = index_.classes();
  r.classes.resize(classes_.size());
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const db::UniqueInstance& ui = r.unique.classes[c];
    if (ui.members.empty() || classReady_[c] == 0) continue;
    r.classes[c] = AccessCache::translate(
        classes_[c], design_->instances[ui.representative].origin);
  }
  r.chosenPattern = chosen_;
  r.degraded = degraded_;
  // Canonical order: computeClassAccess appends in worker-completion order,
  // which is schedule-dependent under numThreads > 1.
  std::sort(r.degraded.begin(), r.degraded.end(),
            [](const DegradedEvent& a, const DegradedEvent& b) {
              return std::tie(a.cls, a.kind, a.detail) <
                     std::tie(b.cls, b.kind, b.detail);
            });
  r.step1Seconds = step1Seconds_;
  r.step2Seconds = step2Seconds_;
  r.step3Seconds = step3Seconds_;
  r.wallSeconds = wallSeconds_;
  r.step1CpuSeconds = step1CpuSeconds_;
  r.step2CpuSeconds = step2CpuSeconds_;
  r.step3CpuSeconds = step3CpuSeconds_;
  r.steps12WallSeconds = steps12WallSeconds_;
  return r;
}

}  // namespace pao::core
