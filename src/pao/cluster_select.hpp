// Step 3 — cluster-based access pattern selection (paper Sec. III-C).
//
// Instances are grouped by row; every maximal run of abutting instances (no
// empty site between neighbors) forms a cluster. Within a cluster the same
// DP as Step 2 runs with instances in left-to-right order as the groups and
// each unique instance's access patterns as the group's vertices. Edge costs
// DRC-check only the up-vias of the *boundary* access points of the two
// facing patterns (the rightmost pin of the left instance against the
// leftmost pin of the right instance), and results are memoized by
// (class, pattern, class, pattern, relative offset) so repeated abutments of
// the same unique-instance pair cost one check.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "db/unique_inst.hpp"
#include "drc/engine.hpp"
#include "pao/access_point.hpp"

namespace pao::core {

struct ClusterSelectConfig {
  long long drcCost = 32768;
  /// Check every pin pair across the boundary instead of only the two facing
  /// boundary pins (ablation; the paper checks boundary pins only).
  bool boundaryPinsOnly = true;
  /// Worker threads for the per-cluster DP. Clusters run as a job graph
  /// whose edges chain clusters sharing a (multi-height) instance, so those
  /// keep their serial pinning order while disjoint clusters overlap; the
  /// chosen patterns are identical for any thread count.
  /// 1 = serial; 0 = hardware concurrency.
  int numThreads = 1;
  /// The ClassAccess vector stores access points relative to each class's
  /// instance origin (OracleSession convention) instead of in the
  /// representative's design coordinates (batch convention): a member
  /// instance's placed access location is then ap.loc + member origin.
  bool originRelativeClasses = false;
  /// Wall-clock budget in seconds for a selection pass (0 = unlimited).
  /// armBudget() starts the clock; once it expires — latched, so one slow
  /// cluster degrades every later one in the pass — each remaining cluster
  /// commits its instances' cheapest standalone patterns (best-so-far,
  /// pinned decisions kept) instead of running the DP. The caller reads
  /// budgetExpired() to report the degradation.
  double budgetSeconds = 0;
};

/// Per-unique-instance access data produced by Steps 1-2, in representative
/// design coordinates.
struct ClassAccess {
  std::vector<std::vector<AccessPoint>> pinAps;  ///< per signal pin
  std::vector<AccessPattern> patterns;
  std::vector<int> pinOrder;  ///< Step-2 ordered signal-pin positions
};

/// Maximal runs of row-abutting instances (instance indices, left to right).
/// A multi-height instance joins the cluster of every row its bbox covers.
/// Deterministic in content and order for a given design, regardless of
/// instance insertion order (rows bottom-up, runs left to right).
std::vector<std::vector<int>> buildClusters(const db::Design& design);

/// Per-cluster scheduling dependencies for the job graph: deps[c] lists, in
/// ascending order, the earlier clusters that must decide before cluster c
/// may run — for each instance of c, the latest earlier cluster containing
/// that instance (multi-height instances chain their clusters; disjoint
/// clusters have no deps). Replaying these edges reproduces the serial
/// pinning order exactly, without the barrier the old wave schedule put
/// between instance-disjoint clusters.
std::vector<std::vector<std::size_t>> clusterDeps(
    const std::vector<std::vector<int>>& clusters);

class ClusterSelector {
 public:
  ClusterSelector(const db::Design& design, const db::UniqueInstances& unique,
                  const std::vector<ClassAccess>& classes,
                  ClusterSelectConfig cfg = {});

  /// Runs clustering + DP; returns the chosen pattern index per instance
  /// (-1 for instances whose class has no patterns, e.g. pinless fillers).
  std::vector<int> run();

  /// Runs the DP of one cluster, writing only its own instances' entries of
  /// `chosen` (safe to run concurrently for instance-disjoint clusters).
  /// Entries already >= 0 are pinned: the DP may only keep them. This is the
  /// reusable unit OracleSession re-runs for dirty clusters; `cluster` need
  /// not come from this selector's own clustering.
  void selectCluster(const std::vector<int>& cluster,
                     std::vector<int>& chosen);

  /// Clusters found (instance indices, left to right) — exposed for tests.
  const std::vector<std::vector<int>>& clusters() const { return clusters_; }
  /// Pair checks performed, counted deterministically: each unique memo key
  /// contributes its via-clean probe count exactly once — when two workers
  /// race to compute the same uncached pair, only the one whose result is
  /// committed to the cache adds its probes. The total therefore equals the
  /// serial count at any thread count (schedule-invariant; mirrored to the
  /// "pao.step3.pair_checks" registry counter and the session snapshot).
  std::size_t numPairChecks() const { return numPairChecks_.load(); }
  /// selectCluster invocations that actually ran a DP (clusters with at
  /// least one pattern-bearing instance). Cumulative across run() and
  /// direct selectCluster calls.
  std::size_t numDpRuns() const { return numDpRuns_.load(); }
  /// Summed per-thread CPU seconds spent inside cluster DPs (the Step-3
  /// cpu-clock analog of OracleResult::step3CpuSeconds). Cumulative.
  double dpCpuSeconds() const {
    return static_cast<double>(dpCpuNanos_.load()) * 1e-9;
  }

  /// (Re)starts the cfg.budgetSeconds clock and clears the expired latch.
  /// run() arms automatically; OracleSession re-arms before each dirty-
  /// cluster recomputation. With budgetSeconds == 0 only the
  /// "step3.deadline" fault point can expire the pass.
  void armBudget();
  /// True once the current pass's budget expired (stays true until the next
  /// armBudget()).
  bool budgetExpired() const {
    return expired_.load(std::memory_order_relaxed);
  }
  /// Clusters that took the best-so-far fallback since the last armBudget().
  std::size_t expiredClusters() const {
    return expiredClusters_.load(std::memory_order_relaxed);
  }

 private:
  /// Checks (and latches) budget expiry; also consults the
  /// "step3.deadline" fault point so tests can force expiry
  /// deterministically.
  bool deadlineExpired();
  /// Budget-expiry path of selectCluster: commits each still-undecided
  /// instance's cheapest standalone pattern; pinned decisions are kept.
  void fallbackSelect(const std::vector<int>& cluster,
                      std::vector<int>& chosen);
  /// DRC compatibility of two neighboring instances' patterns (memoized).
  /// Checks the facing boundary access points' up-vias against each other
  /// AND against the neighbor instance's fixed shapes near the shared edge,
  /// so a pattern whose boundary via clears the neighbor's vias but clips a
  /// neighbor pin bar is still rejected.
  bool patternsCompatible(int instA, int patA, int instB, int patB);
  /// Fixed shapes (pins/obstructions) of `inst` within `halo` of the
  /// vertical line x = `boundaryX`, with per-pin synthetic net ids.
  std::vector<drc::Shape> edgeShapes(int inst, geom::Coord boundaryX,
                                     geom::Coord halo) const;
  /// Boundary access point of `pattern` on the given side (false = left/
  /// first ordered pin, true = right/last), translated to the member
  /// instance's coordinates; nullptr when the pattern lacks one.
  struct PlacedAp {
    const AccessPoint* ap = nullptr;
    geom::Point loc;
    int net = 0;
  };
  std::vector<PlacedAp> boundaryAps(int inst, int pat, bool rightSide) const;

  const db::Design* design_;
  const db::UniqueInstances* unique_;
  const std::vector<ClassAccess>* classes_;
  ClusterSelectConfig cfg_;
  drc::DrcEngine pairEngine_;  ///< context-free engine for via-pair checks
  std::vector<std::vector<int>> clusters_;
  /// Memoized pair compatibility, shared across concurrently-running
  /// clusters; guarded by cacheMu_ (the cached function is pure, so the
  /// access order cannot change any result).
  std::mutex cacheMu_;
  std::map<std::tuple<int, int, int, int, geom::Coord, geom::Coord>, bool>
      pairCache_;
  std::atomic<std::size_t> numPairChecks_{0};
  std::atomic<std::size_t> numDpRuns_{0};
  std::atomic<long long> dpCpuNanos_{0};
  /// Budget state. deadline_/budgetArmed_ are written by armBudget() before
  /// the parallel region (parallelFor establishes the happens-before);
  /// expired_ latches concurrently.
  std::chrono::steady_clock::time_point deadline_{};
  bool budgetArmed_ = false;
  std::atomic<bool> expired_{false};
  std::atomic<std::size_t> expiredClusters_{0};
};

}  // namespace pao::core
