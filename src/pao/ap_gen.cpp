#include "pao/ap_gen.hpp"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.hpp"

namespace pao::core {

using db::Dir;
using db::Layer;
using geom::Coord;
using geom::Point;
using geom::Rect;

AccessPointGenerator::AccessPointGenerator(const InstContext& ctx,
                                           ApGenConfig cfg)
    : ctx_(&ctx), cfg_(cfg) {}

namespace {

/// Track coordinates (and derived half-track midpoints) crossing `span`.
std::vector<Coord> trackCoordsIn(const db::Design& design, int layer,
                                 Dir axis, geom::Interval span,
                                 bool halfTrack) {
  std::vector<Coord> out;
  for (const db::TrackPattern* tp : design.tracks(layer, axis)) {
    if (!halfTrack) {
      for (const Coord c : tp->coordsIn(span.lo, span.hi)) out.push_back(c);
    } else {
      // Midpoints between neighboring tracks; widen the scan by one step so
      // midpoints near the span edges are found.
      const std::vector<Coord> cs =
          tp->coordsIn(span.lo - tp->step, span.hi + tp->step);
      for (std::size_t i = 0; i + 1 < cs.size(); ++i) {
        const Coord mid = (cs[i] + cs[i + 1]) / 2;
        if (span.contains(mid)) out.push_back(mid);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Number of track coordinates of `axis` tracks on `layer` inside `span`.
int tracksTouching(const db::Design& design, int layer, Dir axis,
                   geom::Interval span) {
  return static_cast<int>(
      trackCoordsIn(design, layer, axis, span, false).size());
}

}  // namespace

std::vector<Coord> AccessPointGenerator::prefCoords(const Rect& shape,
                                                    const Layer& layer,
                                                    CoordType type) const {
  const db::Design& design = ctx_->design();
  // Horizontal preferred direction => tracks fix y; candidate coord is y.
  const bool horiz = layer.dir == Dir::kHorizontal;
  const geom::Interval span = horiz ? shape.ySpan() : shape.xSpan();
  const Dir axis = horiz ? Dir::kHorizontal : Dir::kVertical;

  switch (type) {
    case CoordType::kOnTrack:
      return trackCoordsIn(design, layer.index, axis, span, false);
    case CoordType::kHalfTrack:
      return trackCoordsIn(design, layer.index, axis, span, true);
    case CoordType::kShapeCenter: {
      // Skip when the span already touches >= 2 tracks, to limit unique
      // off-track coordinates (Sec. II-C).
      if (tracksTouching(design, layer.index, axis, span) >= 2) return {};
      return {(span.lo + span.hi) / 2};
    }
    case CoordType::kEnclosureBoundary: {
      // Align the primary via's bottom enclosure with the pin shape boundary
      // (via-in-pin). One candidate per boundary side per via def.
      std::vector<Coord> out;
      for (const db::ViaDef* via :
           design.tech->viaDefsFromLayer(layer.index)) {
        const Rect enc = via->botEnc;
        const Coord cLo = horiz ? span.lo - enc.ylo : span.lo - enc.xlo;
        const Coord cHi = horiz ? span.hi - enc.yhi : span.hi - enc.xhi;
        for (const Coord c : {cLo, cHi}) {
          if (span.contains(c)) out.push_back(c);
        }
      }
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return out;
    }
  }
  return {};
}

std::vector<Coord> AccessPointGenerator::nonPrefCoords(const Rect& shape,
                                                       const Layer& layer,
                                                       CoordType type) const {
  const db::Design& design = ctx_->design();
  const bool horiz = layer.dir == Dir::kHorizontal;
  // Non-preferred axis: x for a horizontal layer. On-track coordinates come
  // from the upper layer's preferred-direction tracks so that up-via access
  // aligns with both layers (Sec. II-C).
  const geom::Interval span = horiz ? shape.xSpan() : shape.ySpan();
  const Dir axis = horiz ? Dir::kVertical : Dir::kHorizontal;
  const int upper = design.tech->routingLayerAbove(layer.index);
  const int trackLayer = upper >= 0 ? upper : layer.index;

  switch (type) {
    case CoordType::kOnTrack:
      return trackCoordsIn(design, trackLayer, axis, span, false);
    case CoordType::kHalfTrack:
      return trackCoordsIn(design, trackLayer, axis, span, true);
    case CoordType::kShapeCenter: {
      if (tracksTouching(design, trackLayer, axis, span) >= 2) return {};
      return {(span.lo + span.hi) / 2};
    }
    case CoordType::kEnclosureBoundary:
      return {};  // enclosure-boundary applies to the preferred axis only
  }
  return {};
}

bool AccessPointGenerator::validate(AccessPoint& ap, int pinIdx) const {
  const drc::DrcEngine& engine = ctx_->engine();
  const db::Design& design = ctx_->design();
  const int net = ctx_->pinNet(pinIdx);
  const Layer& layer = design.tech->layer(ap.layer);

  // Up-via access: probe every via def rooted on this layer, default first.
  for (const db::ViaDef* via : design.tech->viaDefsFromLayer(ap.layer)) {
    if (engine.isViaClean(*via, ap.loc, net)) ap.viaIdx.push_back(via->index);
  }
  if (!ap.viaIdx.empty()) ap.dirs |= kUp;

  // Planar access: probe an escape stub of the default wire width leaving the
  // point in each direction.
  const Coord half = layer.width / 2;
  const Coord stub = layer.pitch > 0
                         ? layer.pitch * cfg_.planarStubPitches
                         : layer.width * 4;
  const struct {
    AccessDir dir;
    Rect r;
  } probes[] = {
      {kEast, Rect(ap.loc.x, ap.loc.y - half, ap.loc.x + stub, ap.loc.y + half)},
      {kWest, Rect(ap.loc.x - stub, ap.loc.y - half, ap.loc.x, ap.loc.y + half)},
      {kNorth, Rect(ap.loc.x - half, ap.loc.y, ap.loc.x + half, ap.loc.y + stub)},
      {kSouth, Rect(ap.loc.x - half, ap.loc.y - stub, ap.loc.x + half, ap.loc.y)},
  };
  for (const auto& probe : probes) {
    if (engine.checkWire(probe.r, ap.layer, net).empty()) {
      ap.dirs |= probe.dir;
    }
  }

  if (cfg_.requireVia) return ap.hasUp();
  return ap.dirs != 0;
}

std::vector<AccessPoint> AccessPointGenerator::generate(int pinIdx) const {
  std::vector<AccessPoint> aps;
  std::unordered_set<Point> seen;

  // Candidate shapes: maximal rectangles per layer carrying the pin.
  struct LayerShapes {
    const Layer* layer;
    std::vector<Rect> rects;
  };
  std::vector<LayerShapes> layerShapes;
  for (const int li : ctx_->pinLayers(pinIdx)) {
    const Layer& layer = ctx_->design().tech->layer(li);
    if (layer.type != db::LayerType::kRouting) continue;
    layerShapes.push_back({&layer, ctx_->pinMaxRects(pinIdx, li)});
  }

  // Algorithm 1: non-preferred type outer {0,1,2}, preferred type inner
  // {0,1,2,3}; all candidates of the current combination are validated and
  // added before the early-termination test.
  for (int t1 = 0; t1 <= 2; ++t1) {
    for (int t0 = 0; t0 <= 3; ++t0) {
      for (const LayerShapes& ls : layerShapes) {
        const bool horiz = ls.layer->dir == Dir::kHorizontal;
        for (const Rect& shape : ls.rects) {
          const std::vector<Coord> prefs =
              prefCoords(shape, *ls.layer, static_cast<CoordType>(t0));
          const std::vector<Coord> nonPrefs =
              nonPrefCoords(shape, *ls.layer, static_cast<CoordType>(t1));
          for (const Coord pc : prefs) {
            for (const Coord npc : nonPrefs) {
              AccessPoint ap;
              ap.loc = horiz ? Point{npc, pc} : Point{pc, npc};
              ap.layer = ls.layer->index;
              ap.prefType = static_cast<CoordType>(t0);
              ap.nonPrefType = static_cast<CoordType>(t1);
              if (!seen.insert(ap.loc).second) continue;
              if (validate(ap, pinIdx)) aps.push_back(std::move(ap));
            }
          }
        }
      }
      if (static_cast<int>(aps.size()) >= cfg_.k) return aps;
    }
  }
  return aps;
}

std::vector<std::vector<AccessPoint>> AccessPointGenerator::generateAll()
    const {
  std::vector<std::vector<AccessPoint>> out;
  out.reserve(ctx_->signalPins().size());
  for (const int pinIdx : ctx_->signalPins()) {
    out.push_back(generate(pinIdx));
    // Per-class counts: generateAll runs once per unique-instance class
    // (schedule-independent), so these totals are thread-count-invariant.
    PAO_COUNTER_INC("pao.step1.pins_analyzed");
    PAO_COUNTER_ADD("pao.step1.aps_generated", out.back().size());
    PAO_HISTOGRAM_OBSERVE("pao.step1.aps_per_pin", out.back().size());
  }
  return out;
}

}  // namespace pao::core
