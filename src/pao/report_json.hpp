// pao-report/1 section builders shared by the front ends (pao_cli and
// pao_serve). The service-level equivalence gate (tests/serve_smoke.sh)
// byte-compares a normalized service report against `pao_cli analyze` on
// the same design, so both must derive every section from one place —
// keys, insertion order and value derivation included. Keep section shapes
// here rather than open-coding JSON in a tool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "pao/access_cache.hpp"
#include "pao/evaluate.hpp"
#include "pao/oracle.hpp"
#include "pao/session.hpp"

namespace pao::core {

/// "design" section: the loaded design's headline counts.
obs::Json designSectionJson(const db::Tech& tech, const db::Library& lib,
                            const db::Design& design);

/// "config" section for an analysis run: {mode, threads, keepGoing}.
/// ("threads" is a timing-adjacent key stripped by normalizeForCompare.)
obs::Json analysisConfigJson(const std::string& mode, int threads,
                             bool keepGoing);

/// "oracle" section base: step counts plus both clocks per step (see
/// OracleResult's timing doc in src/pao/oracle.hpp for the semantics).
/// `uniqueInstances` counts populated classes only: an incremental session
/// may retain empty (all-members-removed) class slots that a fresh batch
/// run never creates, and those must not break report equivalence.
obs::Json oracleSectionJson(const OracleResult& res);

/// "oracle" section with the evaluation columns appended (analyze shape).
obs::Json oracleSectionJson(const OracleResult& res, const DirtyApStats& dirty,
                            const FailedPinStats& failed);

/// "session" section: OracleSession incrementality counters.
obs::Json sessionSectionJson(const OracleSession::Stats& stats);

/// "cache" section: AccessCache size and hit/miss counters.
obs::Json cacheSectionJson(const AccessCache& cache);

/// "degraded" section: one object per event, in the order given (callers
/// sort canonically first — see OracleSession::snapshot()).
obs::Json degradedSectionJson(const std::vector<DegradedEvent>& events);

/// Inputs for the "ingest" section (pao-report/2, streamed front end only).
/// Plain values rather than lefdef::IngestStats so pao_core stays
/// independent of the lefdef layer; pao_cli copies the stats over.
struct IngestReport {
  std::size_t lefBytes = 0;
  std::size_t defBytes = 0;
  std::size_t chunks = 0;
  std::size_t components = 0;
  std::size_t nets = 0;
  bool mapped = false;
  bool legacyFallback = false;
  double parseSeconds = 0;       ///< DEF parse wall time
  std::uint64_t peakRssBytes = 0;  ///< util::peakRssBytes() after ingest
};

/// "ingest" section: sizes, chunking, throughput and peak RSS of a streamed
/// parse. mbPerSec/instsPerSec/peakRssBytes are machine-valued and stripped
/// by obs::normalizeForCompare; the count keys are schedule-invariant.
obs::Json ingestSectionJson(const IngestReport& r);

}  // namespace pao::core
