// Access point model (paper Sec. II-B/II-C): an x-y location on a pin shape
// plus the directions (planar east/west/north/south and via "up") from which
// the detailed router may end routing there, with the list of DRC-valid
// up-vias (primary first) and the coordinate-type cost that prioritized it.
//
// Layout note (ROADMAP item 2): vias are stored as indices into
// Tech::viaDefs() in a small inline buffer, not as a heap-owning vector of
// pointers. Oracles hold millions of APs; the flat index layout keeps the
// struct compact, allocation-free in the common case (<= 4 valid up-vias),
// and trivially serializable — the cache maps index <-> via name at the
// file boundary.
#pragma once

#include <cstdint>

#include "db/tech.hpp"
#include "geom/geom.hpp"
#include "util/small_vec.hpp"

namespace pao::core {

/// Coordinate types of Sec. II-C; enum values are the paper's cost values.
enum class CoordType : std::uint8_t {
  kOnTrack = 0,
  kHalfTrack = 1,
  kShapeCenter = 2,
  kEnclosureBoundary = 3,
};

constexpr int cost(CoordType t) { return static_cast<int>(t); }

/// Access directions as a bitmask.
enum AccessDir : std::uint8_t {
  kEast = 1 << 0,
  kWest = 1 << 1,
  kNorth = 1 << 2,
  kSouth = 1 << 3,
  kUp = 1 << 4,
};

struct AccessPoint {
  geom::Point loc;   ///< design coordinates of the representative instance
  int layer = -1;    ///< routing layer of the pin shape
  CoordType prefType = CoordType::kOnTrack;     ///< preferred-direction coord
  CoordType nonPrefType = CoordType::kOnTrack;  ///< non-preferred-direction
  std::uint8_t dirs = 0;  ///< valid AccessDir bits
  /// DRC-valid up-vias as indices into Tech::viaDefs(); [0] is the primary.
  util::SmallVec<std::int32_t, 4> viaIdx;

  bool hasUp() const { return (dirs & kUp) != 0; }
  /// Index of the primary up-via in Tech::viaDefs(), or -1.
  std::int32_t primaryViaIdx() const { return viaIdx.empty() ? -1 : viaIdx[0]; }
  const db::ViaDef* primaryVia(const db::Tech& tech) const {
    return viaIdx.empty() ? nullptr : &tech.viaDef(viaIdx[0]);
  }
  /// Coordinate-type cost (lower is better; Sec. II-C).
  int typeCost() const { return cost(prefType) + cost(nonPrefType); }
};

/// An access pattern (Sec. II-B2): one access point index per signal pin of a
/// unique instance, mutually DRC-compatible via their primary vias.
struct AccessPattern {
  /// apIdx[i] indexes into the i-th signal pin's access point list.
  std::vector<int> apIdx;
  long long cost = 0;
  /// True when post-validation found no DRCs among all primary vias.
  bool validated = false;
};

}  // namespace pao::core
