// Access point model (paper Sec. II-B/II-C): an x-y location on a pin shape
// plus the directions (planar east/west/north/south and via "up") from which
// the detailed router may end routing there, with the list of DRC-valid
// up-vias (primary first) and the coordinate-type cost that prioritized it.
#pragma once

#include <cstdint>
#include <vector>

#include "db/tech.hpp"
#include "geom/geom.hpp"

namespace pao::core {

/// Coordinate types of Sec. II-C; enum values are the paper's cost values.
enum class CoordType : std::uint8_t {
  kOnTrack = 0,
  kHalfTrack = 1,
  kShapeCenter = 2,
  kEnclosureBoundary = 3,
};

constexpr int cost(CoordType t) { return static_cast<int>(t); }

/// Access directions as a bitmask.
enum AccessDir : std::uint8_t {
  kEast = 1 << 0,
  kWest = 1 << 1,
  kNorth = 1 << 2,
  kSouth = 1 << 3,
  kUp = 1 << 4,
};

struct AccessPoint {
  geom::Point loc;   ///< design coordinates of the representative instance
  int layer = -1;    ///< routing layer of the pin shape
  CoordType prefType = CoordType::kOnTrack;     ///< preferred-direction coord
  CoordType nonPrefType = CoordType::kOnTrack;  ///< non-preferred-direction
  std::uint8_t dirs = 0;  ///< valid AccessDir bits
  /// DRC-valid up-vias; front() is the primary via.
  std::vector<const db::ViaDef*> viaDefs;

  bool hasUp() const { return (dirs & kUp) != 0; }
  const db::ViaDef* primaryVia() const {
    return viaDefs.empty() ? nullptr : viaDefs.front();
  }
  /// Coordinate-type cost (lower is better; Sec. II-C).
  int typeCost() const { return cost(prefType) + cost(nonPrefType); }
};

/// An access pattern (Sec. II-B2): one access point index per signal pin of a
/// unique instance, mutually DRC-compatible via their primary vias.
struct AccessPattern {
  /// apIdx[i] indexes into the i-th signal pin's access point list.
  std::vector<int> apIdx;
  long long cost = 0;
  /// True when post-validation found no DRCs among all primary vias.
  bool validated = false;
};

}  // namespace pao::core
