#include "pao/cluster_select.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/arena.hpp"
#include "util/cpu_time.hpp"
#include "util/fault.hpp"
#include "util/jobs.hpp"

namespace pao::core {

namespace {
constexpr long long kInf = std::numeric_limits<long long>::max() / 4;
}

std::vector<std::vector<int>> buildClusters(const db::Design& design) {
  // Group instances by row, sort by x, split at gaps. A multi-height
  // instance spans several rows and joins the cluster of each row its bbox
  // covers (its pattern choice is then pinned after the first cluster that
  // decides it — see ClusterSelector::run()).
  std::vector<std::vector<int>> clusters;
  std::map<geom::Coord, std::vector<int>> byRow;
  std::vector<geom::Coord> rowYs;
  for (const db::Instance& inst : design.instances) {
    rowYs.push_back(inst.origin.y);
  }
  std::sort(rowYs.begin(), rowYs.end());
  rowYs.erase(std::unique(rowYs.begin(), rowYs.end()), rowYs.end());
  for (int i = 0; i < static_cast<int>(design.instances.size()); ++i) {
    const geom::Rect bbox = design.instances[i].bbox();
    for (const geom::Coord y : rowYs) {
      if (y >= bbox.ylo && y < bbox.yhi) byRow[y].push_back(i);
    }
  }
  for (auto& [y, insts] : byRow) {
    std::sort(insts.begin(), insts.end(), [&](int a, int b) {
      return design.instances[a].origin.x < design.instances[b].origin.x;
    });
    std::vector<int> cur;
    geom::Coord prevEnd = 0;
    for (const int idx : insts) {
      const db::Instance& inst = design.instances[idx];
      if (!cur.empty() && inst.origin.x > prevEnd) {
        clusters.push_back(std::move(cur));
        cur.clear();
      }
      cur.push_back(idx);
      prevEnd = inst.bbox().xhi;
    }
    if (!cur.empty()) clusters.push_back(std::move(cur));
  }
  PAO_COUNTER_ADD("pao.step3.clusters_built", clusters.size());
  return clusters;
}

std::vector<std::vector<std::size_t>> clusterDeps(
    const std::vector<std::vector<int>>& clusters) {
  std::vector<std::vector<std::size_t>> deps(clusters.size());
  // lastCluster[inst]: the most recent earlier cluster containing inst.
  std::unordered_map<int, std::size_t> lastCluster;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (const int inst : clusters[c]) {
      const auto it = lastCluster.find(inst);
      if (it != lastCluster.end()) deps[c].push_back(it->second);
    }
    std::sort(deps[c].begin(), deps[c].end());
    deps[c].erase(std::unique(deps[c].begin(), deps[c].end()), deps[c].end());
    for (const int inst : clusters[c]) lastCluster[inst] = c;
  }
  return deps;
}

ClusterSelector::ClusterSelector(const db::Design& design,
                                 const db::UniqueInstances& unique,
                                 const std::vector<ClassAccess>& classes,
                                 ClusterSelectConfig cfg)
    : design_(&design),
      unique_(&unique),
      classes_(&classes),
      cfg_(cfg),
      pairEngine_(*design.tech),
      clusters_(buildClusters(design)) {}

std::vector<ClusterSelector::PlacedAp> ClusterSelector::boundaryAps(
    int inst, int pat, bool rightSide) const {
  std::vector<PlacedAp> out;
  const int cls = unique_->classOf[inst];
  if (cls < 0) return out;
  const ClassAccess& ca = (*classes_)[cls];
  if (pat < 0 || pat >= static_cast<int>(ca.patterns.size())) return out;
  const db::UniqueInstance& ui = unique_->classes[cls];
  const geom::Point memOrigin = design_->instances[inst].origin;
  geom::Point delta = memOrigin;
  if (!cfg_.originRelativeClasses) {
    const geom::Point repOrigin =
        design_->instances[ui.representative].origin;
    delta = geom::Point{memOrigin.x - repOrigin.x, memOrigin.y - repOrigin.y};
  }

  const auto add = [&](int pinPos) {
    const int apIdx = ca.patterns[pat].apIdx[pinPos];
    if (apIdx < 0) return;
    const AccessPoint& ap = ca.pinAps[pinPos][apIdx];
    // Net identity folds instance and MASTER pin index together — the same
    // scheme edgeShapes() uses, so a via and its own pin bar share a net in
    // the pairwise check.
    const int masterPin = ui.master->signalPinIndices()[pinPos];
    out.push_back({&ap, ap.loc + delta, inst * 64 + masterPin});
  };

  if (ca.pinOrder.empty()) return out;
  if (cfg_.boundaryPinsOnly) {
    add(rightSide ? ca.pinOrder.back() : ca.pinOrder.front());
  } else {
    for (const int pinPos : ca.pinOrder) add(pinPos);
  }
  return out;
}

std::vector<drc::Shape> ClusterSelector::edgeShapes(int inst,
                                                    geom::Coord boundaryX,
                                                    geom::Coord halo) const {
  std::vector<drc::Shape> out;
  const db::Instance& instance = design_->instances[inst];
  const geom::Transform xf = instance.transform();
  const geom::Rect band{boundaryX - halo, instance.bbox().ylo - halo,
                        boundaryX + halo, instance.bbox().yhi + halo};
  const db::Master& master = *instance.master;
  for (int p = 0; p < static_cast<int>(master.pins.size()); ++p) {
    const db::Pin& pin = master.pins[p];
    const bool isSupply =
        pin.use == db::PinUse::kPower || pin.use == db::PinUse::kGround;
    const int net = isSupply ? drc::Shape::kObsNet : inst * 64 + p;
    for (const db::PinShape& s : pin.shapes) {
      const geom::Rect r = xf.apply(s.rect);
      if (r.intersects(band)) {
        out.push_back({r, s.layer, net, drc::ShapeKind::kPin, true});
      }
    }
  }
  for (const db::Obstruction& o : master.obstructions) {
    const geom::Rect r = xf.apply(o.rect);
    if (r.intersects(band)) {
      out.push_back({r, o.layer, drc::Shape::kObsNet,
                     drc::ShapeKind::kObstruction, true});
    }
  }
  return out;
}

bool ClusterSelector::patternsCompatible(int instA, int patA, int instB,
                                         int patB) {
  const int clsA = unique_->classOf[instA];
  const int clsB = unique_->classOf[instB];
  const geom::Point oa = design_->instances[instA].origin;
  const geom::Point ob = design_->instances[instB].origin;
  const auto key = std::make_tuple(clsA, patA, clsB, patB, ob.x - oa.x,
                                   ob.y - oa.y);
  {
    std::lock_guard<std::mutex> lock(cacheMu_);
    const auto it = pairCache_.find(key);
    if (it != pairCache_.end()) return it->second;
  }

  // Only the up-vias of boundary access points participate (Sec. III-C);
  // each one is checked against the facing via and the facing instance's
  // fixed shapes near the shared cell edge.
  const geom::Coord boundaryX = design_->instances[instB].origin.x;
  geom::Coord halo = 0;
  for (const db::Layer& l : design_->tech->layers()) {
    halo = std::max(halo, drc::maxSpacingHalo(l) * 2);
  }
  const std::vector<drc::Shape> edgeA = edgeShapes(instA, boundaryX, halo);
  const std::vector<drc::Shape> edgeB = edgeShapes(instB, boundaryX, halo);

  bool clean = true;
  const std::vector<PlacedAp> left = boundaryAps(instA, patA, /*right=*/true);
  const std::vector<PlacedAp> right =
      boundaryAps(instB, patB, /*right=*/false);
  const db::Tech& tech = *design_->tech;
  // Probes are tallied locally and committed only if this thread's result
  // wins the memo-cache insert below, which makes the published count equal
  // to the serial one at any thread count (see numPairChecks()).
  std::size_t localChecks = 0;
  const auto viaClean = [&](const PlacedAp& ap,
                            const std::vector<drc::Shape>& ownEdge,
                            const std::vector<drc::Shape>& otherEdge,
                            const PlacedAp* other) {
    if (ap.ap->primaryVia(tech) == nullptr) return true;
    // The via's own cell shapes come along (its own pin bar shares the via's
    // net id) so merged-component rules see the real pin geometry; conflicts
    // against the own cell were already cleared in Step 2.
    std::vector<drc::Shape> extra = otherEdge;
    extra.insert(extra.end(), ownEdge.begin(), ownEdge.end());
    if (other != nullptr && other->ap->primaryVia(tech) != nullptr) {
      for (const drc::Shape& s : pairEngine_.viaShapes(
               *other->ap->primaryVia(tech), other->loc, other->net)) {
        extra.push_back(s);
      }
    }
    ++localChecks;
    return pairEngine_.isViaClean(*ap.ap->primaryVia(tech), ap.loc, ap.net,
                                  extra);
  };
  for (const PlacedAp& a : left) {
    for (const PlacedAp& b : right) {
      if (!viaClean(a, edgeA, edgeB, &b) || !viaClean(b, edgeB, edgeA, &a)) {
        clean = false;
        break;
      }
    }
    if (!clean) break;
    // A boundary via may clip the neighbor's fixed shapes even when the
    // neighbor has no via nearby.
    if (right.empty() && !viaClean(a, edgeA, edgeB, nullptr)) clean = false;
  }
  if (left.empty()) {
    for (const PlacedAp& b : right) {
      if (!viaClean(b, edgeB, edgeA, nullptr)) {
        clean = false;
        break;
      }
    }
  }
  bool committed = false;
  {
    std::lock_guard<std::mutex> lock(cacheMu_);
    committed = pairCache_.emplace(key, clean).second;
  }
  if (committed) {
    numPairChecks_.fetch_add(localChecks, std::memory_order_relaxed);
    PAO_COUNTER_ADD("pao.step3.pair_checks", localChecks);
  }
  return clean;
}

void ClusterSelector::armBudget() {
  expired_.store(false, std::memory_order_relaxed);
  expiredClusters_.store(0, std::memory_order_relaxed);
  budgetArmed_ = cfg_.budgetSeconds > 0;
  if (budgetArmed_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(cfg_.budgetSeconds));
  }
}

bool ClusterSelector::deadlineExpired() {
  if (expired_.load(std::memory_order_relaxed)) return true;
  bool hit = PAO_FAULT_POINT("step3.deadline");
  if (!hit && budgetArmed_ && std::chrono::steady_clock::now() >= deadline_) {
    hit = true;
  }
  if (hit) expired_.store(true, std::memory_order_relaxed);
  return hit;
}

void ClusterSelector::fallbackSelect(const std::vector<int>& cluster,
                                     std::vector<int>& chosen) {
  expiredClusters_.fetch_add(1, std::memory_order_relaxed);
  PAO_COUNTER_INC("pao.step3.budget_fallbacks");
  for (const int inst : cluster) {
    if (chosen[inst] >= 0) continue;  // pinned by an earlier cluster
    const int cls = unique_->classOf[inst];
    if (cls < 0) continue;
    const std::vector<AccessPattern>& pats = (*classes_)[cls].patterns;
    int best = -1;
    long long bestCost = kInf;
    for (int p = 0; p < static_cast<int>(pats.size()); ++p) {
      if (pats[p].cost < bestCost) {
        bestCost = pats[p].cost;
        best = p;
      }
    }
    chosen[inst] = best;
  }
}

std::vector<int> ClusterSelector::run() {
  std::vector<int> chosen(design_->instances.size(), -1);
  armBudget();

  // Clusters are almost always instance-disjoint and can run concurrently;
  // only multi-height instances appear in several clusters, and those
  // clusters must keep their serial order (the first cluster to decide an
  // instance pins its pattern for the later ones). clusterDeps() encodes
  // exactly that chain as job-graph edges, so independent clusters overlap
  // freely instead of waiting at wave barriers.
  const std::vector<std::vector<std::size_t>> deps = clusterDeps(clusters_);
  util::JobGraph graph;
  std::vector<util::JobId> ids(clusters_.size());
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    std::vector<util::JobId> depIds;
    depIds.reserve(deps[c].size());
    for (const std::size_t d : deps[c]) depIds.push_back(ids[d]);
    ids[c] = graph.addJob(
        [this, c, &chosen] { selectCluster(clusters_[c], chosen); }, depIds);
  }
  graph.run(cfg_.numThreads);
  return chosen;
}

void ClusterSelector::selectCluster(const std::vector<int>& cluster,
                                    std::vector<int>& chosen) {
  const int n = static_cast<int>(cluster.size());

  const auto numPatterns = [&](int pos) {
    const int cls = unique_->classOf[cluster[pos]];
    return cls < 0 ? 0
                   : static_cast<int>((*classes_)[cls].patterns.size());
  };
  const auto patternCost = [&](int pos, int p) {
    const int cls = unique_->classOf[cluster[pos]];
    return (*classes_)[cls].patterns[p].cost;
  };

  // All DP state is per-job scratch in the worker's arena: the active list,
  // the state offsets, and one flat cost/prev pair ((instance, pattern)
  // vertices at [off[i], off[i+1])) instead of a vector-of-vectors.
  util::ArenaScope scratch(util::scratchArena());

  // Instances without patterns (fillers, pinless cells) are transparent:
  // they keep -1 and the DP skips over them. Compact the cluster first.
  util::ArenaVector<int> active;
  active.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (numPatterns(i) > 0) active.push_back(i);
  }
  if (active.empty()) return;
  if (deadlineExpired()) {
    // Budget spent: commit best-so-far instead of running the DP. Not
    // counted as a DP run.
    fallbackSelect(cluster, chosen);
    return;
  }
  ++numDpRuns_;
  // Deterministic per cluster: one DP per cluster regardless of schedule.
  PAO_COUNTER_INC("pao.step3.cluster_dp_runs");
  PAO_HISTOGRAM_OBSERVE("pao.step3.cluster_size", active.size());
  PAO_TRACE_SCOPE("step3.cluster_dp");
  const double cpu0 = util::threadCpuSeconds();
  struct CpuAccumulator {
    std::atomic<long long>* nanos;
    double cpu0;
    ~CpuAccumulator() {
      nanos->fetch_add(
          std::llround((util::threadCpuSeconds() - cpu0) * 1e9),
          std::memory_order_relaxed);
    }
  } cpuAccum{&dpCpuNanos_, cpu0};

  const int an = static_cast<int>(active.size());
  util::ArenaVector<int> off(static_cast<std::size_t>(an) + 1, 0);
  for (int i = 0; i < an; ++i) off[i + 1] = off[i] + numPatterns(active[i]);
  util::ArenaVector<long long> cost(static_cast<std::size_t>(off[an]), kInf);
  util::ArenaVector<int> prev(static_cast<std::size_t>(off[an]), -1);
  // A pattern already chosen by an earlier (multi-height) cluster pass is
  // pinned: the DP may only use that vertex for the instance.
  const auto allowed = [&](int pos, int p) {
    const int pre = chosen[cluster[pos]];
    return pre < 0 || pre == p;
  };
  for (int p = 0; p < numPatterns(active[0]); ++p) {
    if (!allowed(active[0], p)) continue;
    cost[p] = patternCost(active[0], p);
  }
  for (int i = 1; i < an; ++i) {
    const int instB = cluster[active[i]];
    const int instA = cluster[active[i - 1]];
    // Patterns only interact across a shared cell edge; when an inactive
    // (pattern-less) instance separates them, the pair is compatible.
    const bool adjacent = active[i] == active[i - 1] + 1;
    for (int q = 0; q < numPatterns(active[i]); ++q) {
      if (!allowed(active[i], q)) continue;
      for (int p = 0; p < numPatterns(active[i - 1]); ++p) {
        if (cost[off[i - 1] + p] >= kInf) continue;
        long long ec = patternCost(active[i], q);
        if (adjacent && !patternsCompatible(instA, p, instB, q)) {
          ec += cfg_.drcCost;
        }
        if (cost[off[i - 1] + p] + ec < cost[off[i] + q]) {
          cost[off[i] + q] = cost[off[i - 1] + p] + ec;
          prev[off[i] + q] = p;
        }
      }
    }
  }

  // Trace back.
  int best = -1;
  long long bestCost = kInf;
  for (int q = 0; q < off[an] - off[an - 1]; ++q) {
    if (cost[off[an - 1] + q] < bestCost) {
      bestCost = cost[off[an - 1] + q];
      best = q;
    }
  }
  for (int i = an - 1; i >= 0 && best >= 0; --i) {
    chosen[cluster[active[i]]] = best;
    best = prev[off[i] + best];
  }
}

}  // namespace pao::core
