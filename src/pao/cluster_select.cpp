#include "pao/cluster_select.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cpu_time.hpp"
#include "util/executor.hpp"
#include "util/fault.hpp"

namespace pao::core {

namespace {
constexpr long long kInf = std::numeric_limits<long long>::max() / 4;
}

std::vector<std::vector<int>> buildClusters(const db::Design& design) {
  // Group instances by row, sort by x, split at gaps. A multi-height
  // instance spans several rows and joins the cluster of each row its bbox
  // covers (its pattern choice is then pinned after the first cluster that
  // decides it — see ClusterSelector::run()).
  std::vector<std::vector<int>> clusters;
  std::map<geom::Coord, std::vector<int>> byRow;
  std::vector<geom::Coord> rowYs;
  for (const db::Instance& inst : design.instances) {
    rowYs.push_back(inst.origin.y);
  }
  std::sort(rowYs.begin(), rowYs.end());
  rowYs.erase(std::unique(rowYs.begin(), rowYs.end()), rowYs.end());
  for (int i = 0; i < static_cast<int>(design.instances.size()); ++i) {
    const geom::Rect bbox = design.instances[i].bbox();
    for (const geom::Coord y : rowYs) {
      if (y >= bbox.ylo && y < bbox.yhi) byRow[y].push_back(i);
    }
  }
  for (auto& [y, insts] : byRow) {
    std::sort(insts.begin(), insts.end(), [&](int a, int b) {
      return design.instances[a].origin.x < design.instances[b].origin.x;
    });
    std::vector<int> cur;
    geom::Coord prevEnd = 0;
    for (const int idx : insts) {
      const db::Instance& inst = design.instances[idx];
      if (!cur.empty() && inst.origin.x > prevEnd) {
        clusters.push_back(std::move(cur));
        cur.clear();
      }
      cur.push_back(idx);
      prevEnd = inst.bbox().xhi;
    }
    if (!cur.empty()) clusters.push_back(std::move(cur));
  }
  PAO_COUNTER_ADD("pao.step3.clusters_built", clusters.size());
  return clusters;
}

std::vector<std::vector<std::size_t>> clusterWaves(
    const std::vector<std::vector<int>>& clusters) {
  std::vector<std::size_t> waveOf(clusters.size(), 0);
  std::size_t lastWave = 0;
  std::unordered_map<int, std::size_t> instWave;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    std::size_t w = 0;
    for (const int inst : clusters[c]) {
      const auto it = instWave.find(inst);
      if (it != instWave.end()) w = std::max(w, it->second + 1);
    }
    waveOf[c] = w;
    lastWave = std::max(lastWave, w);
    for (const int inst : clusters[c]) {
      auto [it, inserted] = instWave.try_emplace(inst, w);
      if (!inserted) it->second = std::max(it->second, w);
    }
  }
  std::vector<std::vector<std::size_t>> waves(
      clusters.empty() ? 0 : lastWave + 1);
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    waves[waveOf[c]].push_back(c);
  }
  return waves;
}

ClusterSelector::ClusterSelector(const db::Design& design,
                                 const db::UniqueInstances& unique,
                                 const std::vector<ClassAccess>& classes,
                                 ClusterSelectConfig cfg)
    : design_(&design),
      unique_(&unique),
      classes_(&classes),
      cfg_(cfg),
      pairEngine_(*design.tech),
      clusters_(buildClusters(design)) {}

std::vector<ClusterSelector::PlacedAp> ClusterSelector::boundaryAps(
    int inst, int pat, bool rightSide) const {
  std::vector<PlacedAp> out;
  const int cls = unique_->classOf[inst];
  if (cls < 0) return out;
  const ClassAccess& ca = (*classes_)[cls];
  if (pat < 0 || pat >= static_cast<int>(ca.patterns.size())) return out;
  const db::UniqueInstance& ui = unique_->classes[cls];
  const geom::Point memOrigin = design_->instances[inst].origin;
  geom::Point delta = memOrigin;
  if (!cfg_.originRelativeClasses) {
    const geom::Point repOrigin =
        design_->instances[ui.representative].origin;
    delta = geom::Point{memOrigin.x - repOrigin.x, memOrigin.y - repOrigin.y};
  }

  const auto add = [&](int pinPos) {
    const int apIdx = ca.patterns[pat].apIdx[pinPos];
    if (apIdx < 0) return;
    const AccessPoint& ap = ca.pinAps[pinPos][apIdx];
    // Net identity folds instance and MASTER pin index together — the same
    // scheme edgeShapes() uses, so a via and its own pin bar share a net in
    // the pairwise check.
    const int masterPin = ui.master->signalPinIndices()[pinPos];
    out.push_back({&ap, ap.loc + delta, inst * 64 + masterPin});
  };

  if (ca.pinOrder.empty()) return out;
  if (cfg_.boundaryPinsOnly) {
    add(rightSide ? ca.pinOrder.back() : ca.pinOrder.front());
  } else {
    for (const int pinPos : ca.pinOrder) add(pinPos);
  }
  return out;
}

std::vector<drc::Shape> ClusterSelector::edgeShapes(int inst,
                                                    geom::Coord boundaryX,
                                                    geom::Coord halo) const {
  std::vector<drc::Shape> out;
  const db::Instance& instance = design_->instances[inst];
  const geom::Transform xf = instance.transform();
  const geom::Rect band{boundaryX - halo, instance.bbox().ylo - halo,
                        boundaryX + halo, instance.bbox().yhi + halo};
  const db::Master& master = *instance.master;
  for (int p = 0; p < static_cast<int>(master.pins.size()); ++p) {
    const db::Pin& pin = master.pins[p];
    const bool isSupply =
        pin.use == db::PinUse::kPower || pin.use == db::PinUse::kGround;
    const int net = isSupply ? drc::Shape::kObsNet : inst * 64 + p;
    for (const db::PinShape& s : pin.shapes) {
      const geom::Rect r = xf.apply(s.rect);
      if (r.intersects(band)) {
        out.push_back({r, s.layer, net, drc::ShapeKind::kPin, true});
      }
    }
  }
  for (const db::Obstruction& o : master.obstructions) {
    const geom::Rect r = xf.apply(o.rect);
    if (r.intersects(band)) {
      out.push_back({r, o.layer, drc::Shape::kObsNet,
                     drc::ShapeKind::kObstruction, true});
    }
  }
  return out;
}

bool ClusterSelector::patternsCompatible(int instA, int patA, int instB,
                                         int patB) {
  const int clsA = unique_->classOf[instA];
  const int clsB = unique_->classOf[instB];
  const geom::Point oa = design_->instances[instA].origin;
  const geom::Point ob = design_->instances[instB].origin;
  const auto key = std::make_tuple(clsA, patA, clsB, patB, ob.x - oa.x,
                                   ob.y - oa.y);
  {
    std::lock_guard<std::mutex> lock(cacheMu_);
    const auto it = pairCache_.find(key);
    if (it != pairCache_.end()) return it->second;
  }

  // Only the up-vias of boundary access points participate (Sec. III-C);
  // each one is checked against the facing via and the facing instance's
  // fixed shapes near the shared cell edge.
  const geom::Coord boundaryX = design_->instances[instB].origin.x;
  geom::Coord halo = 0;
  for (const db::Layer& l : design_->tech->layers()) {
    halo = std::max(halo, drc::maxSpacingHalo(l) * 2);
  }
  const std::vector<drc::Shape> edgeA = edgeShapes(instA, boundaryX, halo);
  const std::vector<drc::Shape> edgeB = edgeShapes(instB, boundaryX, halo);

  bool clean = true;
  const std::vector<PlacedAp> left = boundaryAps(instA, patA, /*right=*/true);
  const std::vector<PlacedAp> right =
      boundaryAps(instB, patB, /*right=*/false);
  const auto viaClean = [&](const PlacedAp& ap,
                            const std::vector<drc::Shape>& ownEdge,
                            const std::vector<drc::Shape>& otherEdge,
                            const PlacedAp* other) {
    if (ap.ap->primaryVia() == nullptr) return true;
    // The via's own cell shapes come along (its own pin bar shares the via's
    // net id) so merged-component rules see the real pin geometry; conflicts
    // against the own cell were already cleared in Step 2.
    std::vector<drc::Shape> extra = otherEdge;
    extra.insert(extra.end(), ownEdge.begin(), ownEdge.end());
    if (other != nullptr && other->ap->primaryVia() != nullptr) {
      for (const drc::Shape& s : pairEngine_.viaShapes(
               *other->ap->primaryVia(), other->loc, other->net)) {
        extra.push_back(s);
      }
    }
    ++numPairChecks_;
    return pairEngine_.isViaClean(*ap.ap->primaryVia(), ap.loc, ap.net,
                                  extra);
  };
  for (const PlacedAp& a : left) {
    for (const PlacedAp& b : right) {
      if (!viaClean(a, edgeA, edgeB, &b) || !viaClean(b, edgeB, edgeA, &a)) {
        clean = false;
        break;
      }
    }
    if (!clean) break;
    // A boundary via may clip the neighbor's fixed shapes even when the
    // neighbor has no via nearby.
    if (right.empty() && !viaClean(a, edgeA, edgeB, nullptr)) clean = false;
  }
  if (left.empty()) {
    for (const PlacedAp& b : right) {
      if (!viaClean(b, edgeB, edgeA, nullptr)) {
        clean = false;
        break;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(cacheMu_);
    pairCache_.emplace(key, clean);
  }
  return clean;
}

void ClusterSelector::armBudget() {
  expired_.store(false, std::memory_order_relaxed);
  expiredClusters_.store(0, std::memory_order_relaxed);
  budgetArmed_ = cfg_.budgetSeconds > 0;
  if (budgetArmed_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(cfg_.budgetSeconds));
  }
}

bool ClusterSelector::deadlineExpired() {
  if (expired_.load(std::memory_order_relaxed)) return true;
  bool hit = PAO_FAULT_POINT("step3.deadline");
  if (!hit && budgetArmed_ && std::chrono::steady_clock::now() >= deadline_) {
    hit = true;
  }
  if (hit) expired_.store(true, std::memory_order_relaxed);
  return hit;
}

void ClusterSelector::fallbackSelect(const std::vector<int>& cluster,
                                     std::vector<int>& chosen) {
  expiredClusters_.fetch_add(1, std::memory_order_relaxed);
  PAO_COUNTER_INC("pao.step3.budget_fallbacks");
  for (const int inst : cluster) {
    if (chosen[inst] >= 0) continue;  // pinned by an earlier cluster
    const int cls = unique_->classOf[inst];
    if (cls < 0) continue;
    const std::vector<AccessPattern>& pats = (*classes_)[cls].patterns;
    int best = -1;
    long long bestCost = kInf;
    for (int p = 0; p < static_cast<int>(pats.size()); ++p) {
      if (pats[p].cost < bestCost) {
        bestCost = pats[p].cost;
        best = p;
      }
    }
    chosen[inst] = best;
  }
}

std::vector<int> ClusterSelector::run() {
  std::vector<int> chosen(design_->instances.size(), -1);
  armBudget();

  // Clusters are almost always instance-disjoint and can run concurrently;
  // only multi-height instances appear in several clusters, and those
  // clusters must keep their serial order (the first cluster to decide an
  // instance pins its pattern for the later ones). clusterWaves() encodes
  // exactly that dependency.
  const std::vector<std::vector<std::size_t>> waves = clusterWaves(clusters_);
  for (const std::vector<std::size_t>& wave : waves) {
    util::parallelFor(
        wave.size(),
        [&](std::size_t i) { selectCluster(clusters_[wave[i]], chosen); },
        cfg_.numThreads);
  }
  return chosen;
}

void ClusterSelector::selectCluster(const std::vector<int>& cluster,
                                    std::vector<int>& chosen) {
  // DP over instances, one vertex per (instance, pattern).
  const int n = static_cast<int>(cluster.size());
  std::vector<std::vector<long long>> cost(n);
  std::vector<std::vector<int>> prev(n);

  const auto numPatterns = [&](int pos) {
    const int cls = unique_->classOf[cluster[pos]];
    return cls < 0 ? 0
                   : static_cast<int>((*classes_)[cls].patterns.size());
  };
  const auto patternCost = [&](int pos, int p) {
    const int cls = unique_->classOf[cluster[pos]];
    return (*classes_)[cls].patterns[p].cost;
  };

  // Instances without patterns (fillers, pinless cells) are transparent:
  // they keep -1 and the DP skips over them. Compact the cluster first.
  std::vector<int> active;
  for (int i = 0; i < n; ++i) {
    if (numPatterns(i) > 0) active.push_back(i);
  }
  if (active.empty()) return;
  if (deadlineExpired()) {
    // Budget spent: commit best-so-far instead of running the DP. Not
    // counted as a DP run.
    fallbackSelect(cluster, chosen);
    return;
  }
  ++numDpRuns_;
  // Deterministic per cluster (one DP per cluster regardless of schedule;
  // numPairChecks_ is NOT mirrored here because its racy over-count would
  // break the registry's thread-count-invariance contract).
  PAO_COUNTER_INC("pao.step3.cluster_dp_runs");
  PAO_HISTOGRAM_OBSERVE("pao.step3.cluster_size", active.size());
  PAO_TRACE_SCOPE("step3.cluster_dp");
  const double cpu0 = util::threadCpuSeconds();
  struct CpuAccumulator {
    std::atomic<long long>* nanos;
    double cpu0;
    ~CpuAccumulator() {
      nanos->fetch_add(
          std::llround((util::threadCpuSeconds() - cpu0) * 1e9),
          std::memory_order_relaxed);
    }
  } cpuAccum{&dpCpuNanos_, cpu0};

  const int an = static_cast<int>(active.size());
  cost.assign(an, {});
  prev.assign(an, {});
  for (int i = 0; i < an; ++i) {
    cost[i].assign(numPatterns(active[i]), kInf);
    prev[i].assign(numPatterns(active[i]), -1);
  }
  // A pattern already chosen by an earlier (multi-height) cluster pass is
  // pinned: the DP may only use that vertex for the instance.
  const auto allowed = [&](int pos, int p) {
    const int pre = chosen[cluster[pos]];
    return pre < 0 || pre == p;
  };
  for (int p = 0; p < numPatterns(active[0]); ++p) {
    if (!allowed(active[0], p)) continue;
    cost[0][p] = patternCost(active[0], p);
  }
  for (int i = 1; i < an; ++i) {
    const int instB = cluster[active[i]];
    const int instA = cluster[active[i - 1]];
    // Patterns only interact across a shared cell edge; when an inactive
    // (pattern-less) instance separates them, the pair is compatible.
    const bool adjacent = active[i] == active[i - 1] + 1;
    for (int q = 0; q < numPatterns(active[i]); ++q) {
      if (!allowed(active[i], q)) continue;
      for (int p = 0; p < numPatterns(active[i - 1]); ++p) {
        if (cost[i - 1][p] >= kInf) continue;
        long long ec = patternCost(active[i], q);
        if (adjacent && !patternsCompatible(instA, p, instB, q)) {
          ec += cfg_.drcCost;
        }
        if (cost[i - 1][p] + ec < cost[i][q]) {
          cost[i][q] = cost[i - 1][p] + ec;
          prev[i][q] = p;
        }
      }
    }
  }

  // Trace back.
  int best = -1;
  long long bestCost = kInf;
  for (int q = 0; q < static_cast<int>(cost[an - 1].size()); ++q) {
    if (cost[an - 1][q] < bestCost) {
      bestCost = cost[an - 1][q];
      best = q;
    }
  }
  for (int i = an - 1; i >= 0 && best >= 0; --i) {
    chosen[cluster[active[i]]] = best;
    best = prev[i][best];
  }
}

}  // namespace pao::core
