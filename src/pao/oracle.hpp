// PinAccessOracle — the facade that runs the full three-step pin access
// analysis flow of the paper on a design:
//   Step 1  pin-based access point generation per unique instance,
//   Step 2  DP-based access pattern generation per unique instance,
//   Step 3  DP-based access pattern selection per instance cluster.
// A legacy mode substitutes the TritonRoute-v0.0.6.0-style generator and a
// trivial first-point "pattern", reproducing the paper's TrRte baseline.
#pragma once

#include <optional>
#include <vector>

#include "db/unique_inst.hpp"
#include "obs/enabled.hpp"
#include "pao/access_cache.hpp"
#include "pao/ap_gen.hpp"
#include "pao/cluster_select.hpp"
#include "pao/legacy_ap.hpp"
#include "pao/pattern_gen.hpp"

#if PAO_OBS_ENABLED
#include "obs/profile.hpp"
#endif

namespace pao::core {

struct OracleConfig {
  ApGenConfig apGen;
  PatternGenConfig patternGen;
  ClusterSelectConfig clusterSelect;
  /// TrRte baseline: legacy AP generation, first-AP patterns, no Step 3 DP.
  bool legacyMode = false;
  /// Run the Step-3 cluster DP (always true in the paper's full flow; with a
  /// single pattern per class the DP is trivially the identity).
  bool runClusterSelection = true;
  /// Worker threads for the whole flow (the paper's "support of
  /// multi-threading" future-work item): Steps 1-2 over unique instances and
  /// the Step-3 cluster DP all run on the shared executor, and the value is
  /// forwarded into ClusterSelectConfig::numThreads. Results are identical
  /// for any thread count. 1 = serial; 0 = hardware concurrency.
  int numThreads = 1;
  /// Optional cross-run cache of intra-cell results keyed by signature —
  /// reusable across placement changes. Not owned; may be nullptr.
  AccessCache* cache = nullptr;
  /// Graceful degradation (pao_cli --keep-going): when a unique class's
  /// Steps 1-2 analysis throws, fall back to the legacy generator for that
  /// class (then to empty access if the fallback throws too) and record a
  /// DegradedEvent instead of aborting the whole run. Off (strict) by
  /// default: the first per-class exception propagates.
  bool keepGoing = false;
  /// Wall-clock budget for the Step-3 cluster DP in seconds (0 =
  /// unlimited). On expiry the remaining clusters commit each instance's
  /// cheapest standalone pattern (see ClusterSelectConfig::budgetSeconds)
  /// and a "step3_budget" DegradedEvent is recorded.
  double step3BudgetSeconds = 0;
};

/// One graceful-degradation event of a keep-going run. Kinds:
///   "class_fallback" — Steps 1-2 threw for a unique class; the class took
///                      the legacy-generator fallback (detail = what()).
///   "class_failed"   — the legacy fallback threw as well; the class has no
///                      access (its instances report failed pins).
///   "step3_budget"   — the Step-3 budget expired; late clusters committed
///                      best-so-far patterns instead of the DP.
struct DegradedEvent {
  std::string kind;
  std::string detail;
  /// Unique-class index for class-scoped kinds, -1 otherwise.
  int cls = -1;
};

/// Convenience preset: PAAF without boundary-conflict awareness (Table III
/// "w/o BCA" column) — a single pattern per unique instance.
OracleConfig withoutBcaConfig();
/// PAAF with BCA (Table III "w/ BCA") — up to three diversified patterns.
OracleConfig withBcaConfig();
/// TrRte v0.0.6.0-style baseline.
OracleConfig legacyConfig();

struct OracleResult {
  db::UniqueInstances unique;
  /// Per unique-instance class, parallel to unique.classes. Classes of
  /// masters without signal pins have empty pinAps/patterns.
  std::vector<ClassAccess> classes;
  /// Chosen pattern per instance (-1 when the class has none).
  std::vector<int> chosenPattern;
  /// Graceful-degradation events of a keepGoing run, canonically sorted
  /// (by cls, then kind, then detail). Empty means the result is exactly
  /// what a fault-free strict run would have produced.
  std::vector<DegradedEvent> degraded;

  /// Step timings. Two clocks are reported per step because they answer
  /// different questions and diverge under numThreads > 1:
  ///
  ///   * step1Seconds/step2Seconds — summed per-class steady_clock time as
  ///     measured on the worker that analyzed each class. This is
  ///     "aggregate work" (comparable across thread counts, exceeds elapsed
  ///     time when parallel) but is NOT strictly CPU time: a preempted
  ///     worker inflates it.
  ///   * step1CpuSeconds/step2CpuSeconds/step3CpuSeconds — the same work
  ///     measured on the per-thread CPU clock (CLOCK_THREAD_CPUTIME_ID),
  ///     immune to preemption. Use these for "where did the cycles go".
  ///   * step3Seconds, steps12WallSeconds and wallSeconds — end-to-end wall
  ///     (elapsed) time of Step 3, of the Steps 1-2 parallel region, and of
  ///     the whole flow. Use these for "how long did I wait".
  ///
  /// The pao-report/1 "oracle" section carries all of them.
  double step1Seconds = 0;
  double step2Seconds = 0;
  double step3Seconds = 0;
  double wallSeconds = 0;
  double step1CpuSeconds = 0;
  double step2CpuSeconds = 0;
  double step3CpuSeconds = 0;
  /// Wall time of the Steps 1-2 parallel region alone.
  double steps12WallSeconds = 0;
  double totalSeconds() const {
    return step1Seconds + step2Seconds + step3Seconds;
  }

  /// Total access points generated across all unique-instance pins
  /// (Table II "Total #APs").
  std::size_t totalAps() const;
  /// The access point chosen for (instance, signal-pin position), translated
  /// to the instance's placement; nullopt when the pin has no chosen access.
  struct ChosenAp {
    const AccessPoint* ap;
    geom::Point loc;
  };
  std::optional<ChosenAp> chosenAp(const db::Design& design, int instIdx,
                                   int sigPinPos) const;
};

/// The one-shot batch facade. Internally a thin wrapper over a read-only
/// pao::core::OracleSession — use a session directly when the design will
/// mutate and you want incremental recomputation (see pao/session.hpp).
class PinAccessOracle {
 public:
  explicit PinAccessOracle(const db::Design& design, OracleConfig cfg = {});

  /// Runs the configured flow end to end.
  OracleResult run();

#if PAO_OBS_ENABLED
  /// Profile of the pipeline job graph of the last run() (empty before the
  /// first run, or when the legacy parallelFor path ran). The benches feed
  /// this to BenchReport::attachProfile.
  const obs::GraphProfile& lastGraphProfile() const { return graphProfile_; }
#endif

 private:
  const db::Design* design_;
  OracleConfig cfg_;
#if PAO_OBS_ENABLED
  obs::GraphProfile graphProfile_;
#endif
};

}  // namespace pao::core
