#include "pao/evaluate.hpp"

#include <map>

#include "geom/grid_index.hpp"
#include "pao/inst_context.hpp"

namespace pao::core {

DirtyApStats countDirtyAps(const db::Design& design,
                           const OracleResult& result) {
  DirtyApStats stats;
  for (std::size_t c = 0; c < result.unique.classes.size(); ++c) {
    const ClassAccess& ca = result.classes[c];
    if (ca.pinAps.empty()) continue;
    const InstContext ctx(design, result.unique.classes[c]);
    const std::vector<int>& sig = ctx.signalPins();
    for (std::size_t p = 0; p < ca.pinAps.size(); ++p) {
      for (const AccessPoint& ap : ca.pinAps[p]) {
        ++stats.totalAps;
        const int net = ctx.pinNet(sig[p]);
        const db::ViaDef* via = ap.primaryVia(*design.tech);
        bool clean;
        if (via != nullptr) {
          clean = ctx.engine().isViaClean(*via, ap.loc, net);
        } else {
          // Planar-only access (macro pins): re-validate the escape stubs of
          // every claimed direction.
          clean = ap.dirs != 0;
          const db::Layer& layer = design.tech->layer(ap.layer);
          const geom::Coord half = layer.width / 2;
          const geom::Coord stub =
              layer.pitch > 0 ? layer.pitch * 2 : layer.width * 4;
          const struct {
            std::uint8_t dir;
            geom::Rect r;
          } probes[] = {
              {kEast, geom::Rect(ap.loc.x, ap.loc.y - half, ap.loc.x + stub,
                                 ap.loc.y + half)},
              {kWest, geom::Rect(ap.loc.x - stub, ap.loc.y - half, ap.loc.x,
                                 ap.loc.y + half)},
              {kNorth, geom::Rect(ap.loc.x - half, ap.loc.y, ap.loc.x + half,
                                  ap.loc.y + stub)},
              {kSouth, geom::Rect(ap.loc.x - half, ap.loc.y - stub,
                                  ap.loc.x + half, ap.loc.y)},
          };
          for (const auto& probe : probes) {
            if ((ap.dirs & probe.dir) != 0 &&
                !ctx.engine().checkWire(probe.r, ap.layer, net).empty()) {
              clean = false;
            }
          }
        }
        if (!clean) ++stats.dirtyAps;
      }
    }
  }
  return stats;
}

FailedPinStats countFailedPins(const db::Design& design,
                               const OracleResult& result,
                               std::size_t maxDetails,
                               FailedPinCriterion criterion) {
  FailedPinStats stats;

  // Global electrical identity per (instance, master-pin): the design net
  // index when attached, or a unique synthetic id otherwise.
  std::map<std::pair<int, int>, int> netOf;
  for (int n = 0; n < static_cast<int>(design.nets.size()); ++n) {
    for (const db::NetTerm& t : design.nets[n].terms) {
      if (!t.isIo()) netOf[{t.instIdx, t.pinIdx}] = n;
    }
  }
  int synthetic = static_cast<int>(design.nets.size());

  // Fixed design context: every instance's pin shapes and obstructions.
  drc::DrcEngine engine(*design.tech);
  for (int i = 0; i < static_cast<int>(design.instances.size()); ++i) {
    const db::Instance& inst = design.instances[i];
    const geom::Transform xf = inst.transform();
    const db::Master& master = *inst.master;
    for (int p = 0; p < static_cast<int>(master.pins.size()); ++p) {
      const db::Pin& pin = master.pins[p];
      const bool isSupply =
          pin.use == db::PinUse::kPower || pin.use == db::PinUse::kGround;
      int net;
      if (isSupply) {
        net = drc::Shape::kObsNet;
      } else if (const auto it = netOf.find({i, p}); it != netOf.end()) {
        net = it->second;
      } else {
        net = synthetic++;
        netOf[{i, p}] = net;
      }
      for (const db::PinShape& s : pin.shapes) {
        engine.region().add({xf.apply(s.rect), s.layer, net,
                             drc::ShapeKind::kPin, true});
      }
    }
    for (const db::Obstruction& o : master.obstructions) {
      engine.region().add({xf.apply(o.rect), o.layer, drc::Shape::kObsNet,
                           drc::ShapeKind::kObstruction, true});
    }
  }
  for (const db::IoPin& p : design.ioPins) {
    engine.region().add({p.rect, p.layer, synthetic++,
                         drc::ShapeKind::kIoPin, true});
  }

  // Chosen vias of every net-attached pin, in a side index so each pin can
  // be checked against every *other* pin's via without seeing its own.
  struct PlacedVia {
    int inst;
    int pinPos;  ///< signal-pin position within the master
    const db::ViaDef* via;
    geom::Point loc;
    int net;
  };
  std::vector<PlacedVia> placed;
  struct PinRef {
    int inst;
    int pinPos;
    int net;
    int placedIdx;  ///< -1 when the pin has no chosen via access
    bool planar;    ///< chosen access is planar-only (macro pins)
  };
  std::vector<PinRef> pins;

  for (int i = 0; i < static_cast<int>(design.instances.size()); ++i) {
    const db::Master& master = *design.instances[i].master;
    const std::vector<int> sig = master.signalPinIndices();
    for (int pos = 0; pos < static_cast<int>(sig.size()); ++pos) {
      const auto netIt = netOf.find({i, sig[pos]});
      if (netIt == netOf.end()) continue;  // pin not attached to any net
      // Only count pins attached to real design nets.
      if (netIt->second >= static_cast<int>(design.nets.size())) continue;
      PinRef ref{i, pos, netIt->second, -1, false};
      const auto chosen = result.chosenAp(design, i, pos);
      if (chosen && chosen->ap->primaryVia(*design.tech) != nullptr) {
        ref.placedIdx = static_cast<int>(placed.size());
        placed.push_back(
            {i, pos, chosen->ap->primaryVia(*design.tech), chosen->loc, netIt->second});
      } else if (chosen && chosen->ap->dirs != 0) {
        // Planar-only access (macro pins): counts as accessible; the stub
        // legality was validated at generation and re-checked by
        // countDirtyAps.
        ref.planar = true;
      }
      pins.push_back(ref);
    }
  }

  geom::GridIndex<int> viaIndex;
  std::vector<std::vector<drc::Shape>> viaShapes(placed.size());
  for (int v = 0; v < static_cast<int>(placed.size()); ++v) {
    const PlacedVia& pv = placed[v];
    viaShapes[v] = engine.viaShapes(*pv.via, pv.loc, pv.net);
    geom::Rect bbox;
    for (const drc::Shape& s : viaShapes[v]) bbox = bbox.merge(s.rect);
    viaIndex.insert(bbox, v);
  }

  stats.totalPins = pins.size();

  if (criterion == FailedPinCriterion::kAnyAp) {
    // Lenient criterion: a pin passes when ANY of its generated access
    // points drops a clean via against the fixed context.
    for (const PinRef& ref : pins) {
      const int cls = result.unique.classOf[ref.inst];
      bool anyClean = false;
      if (cls >= 0 && !result.classes[cls].pinAps.empty()) {
        const db::UniqueInstance& ui = result.unique.classes[cls];
        const geom::Point delta =
            design.instances[ref.inst].origin -
            design.instances[ui.representative].origin;
        for (const AccessPoint& ap :
             result.classes[cls].pinAps[ref.pinPos]) {
          if (ap.primaryVia(*design.tech) == nullptr) continue;
          if (engine.isViaClean(*ap.primaryVia(*design.tech), ap.loc + delta, ref.net)) {
            anyClean = true;
            break;
          }
        }
      }
      if (!anyClean) {
        ++stats.failedPins;
        if (stats.details.size() < maxDetails) {
          stats.details.push_back({ref.inst, ref.pinPos, {}});
        }
      }
    }
    return stats;
  }

  for (const PinRef& ref : pins) {
    if (ref.placedIdx < 0) {
      if (!ref.planar) {
        ++stats.failedPins;
        if (stats.details.size() < maxDetails) {
          stats.details.push_back({ref.inst, ref.pinPos, {}});
        }
      }
      continue;
    }
    const PlacedVia& pv = placed[ref.placedIdx];
    // Context: all other pins' chosen vias near this one.
    std::vector<drc::Shape> extra;
    geom::Rect query;
    for (const drc::Shape& s : viaShapes[ref.placedIdx]) {
      query = query.merge(s.rect);
    }
    viaIndex.query(query.bloat(2048), [&](const geom::Rect&, int v) {
      if (v == ref.placedIdx) return;
      // Same-net vias (multi-pin nets) are not conflicts; include them
      // anyway — checkVia treats same-net context as merge candidates.
      for (const drc::Shape& s : viaShapes[v]) extra.push_back(s);
    });
    const std::vector<drc::Violation> violations =
        engine.checkVia(*pv.via, pv.loc, pv.net, extra);
    if (!violations.empty()) {
      ++stats.failedPins;
      if (stats.details.size() < maxDetails) {
        stats.details.push_back({ref.inst, ref.pinPos, violations});
      }
    }
  }
  return stats;
}

}  // namespace pao::core
