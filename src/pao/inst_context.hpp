// Intra-cell DRC context for one unique instance: all pin shapes (each pin
// its own electrical identity) and obstructions, transformed into the design
// coordinates of the representative placement. Steps 1 and 2 check candidate
// vias against exactly this context — inter-cell effects are deferred to
// Step 3 (paper Sec. III).
#pragma once

#include <vector>

#include "db/design.hpp"
#include "db/unique_inst.hpp"
#include "drc/engine.hpp"
#include "geom/polygon.hpp"

namespace pao::core {

class InstContext {
 public:
  InstContext(const db::Design& design, const db::UniqueInstance& ui);

  const db::UniqueInstance& uniqueInst() const { return *ui_; }
  const db::Design& design() const { return *design_; }
  const drc::DrcEngine& engine() const { return engine_; }
  const geom::Transform& transform() const { return xform_; }

  /// Signal/clock pin indices into the master's pin list, in master order.
  const std::vector<int>& signalPins() const { return signalPins_; }

  /// Net id used in the DRC context for the master pin `pinIdx`.
  int pinNet(int pinIdx) const { return pinIdx; }

  /// Transformed shapes of master pin `pinIdx` on `layer`.
  std::vector<geom::Rect> pinShapes(int pinIdx, int layer) const;
  /// Maximal rectangles of the pin's merged shapes on `layer` (the rects
  /// shape-center coordinates are defined on, Sec. II-C).
  std::vector<geom::Rect> pinMaxRects(int pinIdx, int layer) const;
  /// Routing layers on which pin `pinIdx` has shapes.
  std::vector<int> pinLayers(int pinIdx) const;

 private:
  const db::Design* design_;
  const db::UniqueInstance* ui_;
  geom::Transform xform_;
  drc::DrcEngine engine_;
  std::vector<int> signalPins_;
};

}  // namespace pao::core
