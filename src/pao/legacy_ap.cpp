#include "pao/legacy_ap.hpp"

#include <algorithm>
#include <unordered_set>

namespace pao::core {

using db::Dir;
using db::Layer;
using geom::Coord;
using geom::Point;
using geom::Rect;

LegacyApGenerator::LegacyApGenerator(const InstContext& ctx) : ctx_(&ctx) {
  const int numLayers =
      static_cast<int>(ctx.design().tech->layers().size());
  for (int li = 0; li < numLayers; ++li) {
    for (const drc::Shape& s : ctx.engine().region().shapesOnLayer(li)) {
      allShapes_.push_back(s);
    }
  }
}

bool LegacyApGenerator::crudeValidate(const AccessPoint& ap,
                                      const db::ViaDef& via,
                                      int pinIdx) const {
  const int net = ctx_->pinNet(pinIdx);
  const Rect enc = via.botEncAt(ap.loc);
  const db::Layer& layer = ctx_->design().tech->layer(ap.layer);
  const Coord space = layer.minSpacing();

  // v0.0.6.0-style approximation, part 1: the enclosure must stay inside the
  // pin shape's span across the preferred direction (a via-in-pin check that
  // avoids the obvious corner min-steps but none of the subtler ones).
  bool coveredAcross = false;
  for (const Rect& pinRect : ctx_->pinShapes(pinIdx, ap.layer)) {
    const bool horiz = layer.dir == db::Dir::kHorizontal;
    const geom::Interval encSpan = horiz ? enc.ySpan() : enc.xSpan();
    const geom::Interval pinSpan = horiz ? pinRect.ySpan() : pinRect.xSpan();
    if (pinSpan.contains(encSpan.lo) && pinSpan.contains(encSpan.hi)) {
      coveredAcross = true;
      break;
    }
  }
  if (!coveredAcross) return false;

  // Part 2: neither enclosure may overlap foreign metal, and each must keep
  // the default min spacing from it — evaluated with a linear pass over
  // every cell shape (no spatial index, no PRL/width spacing table, no
  // corner-to-corner spacing, no min-step, no EOL, no cut rules).
  const auto encClean = [&](const Rect& encRect, int layerIdx,
                            Coord minSpace) {
    for (const drc::Shape& s : allShapes_) {
      if (s.layer != layerIdx) continue;
      if (s.net == net && s.net != drc::Shape::kObsNet) continue;
      if (s.rect.overlaps(encRect)) return false;
      if (geom::prl(encRect, s.rect) > 0 &&
          geom::maxAxisGap(encRect, s.rect) < minSpace) {
        return false;
      }
    }
    return true;
  };
  const db::Layer& topLayer = ctx_->design().tech->layer(via.topLayer);
  return encClean(enc, ap.layer, space) &&
         encClean(via.topEncAt(ap.loc), via.topLayer, topLayer.minSpacing());
}

std::vector<AccessPoint> LegacyApGenerator::generate(int pinIdx) const {
  std::vector<AccessPoint> aps;
  std::unordered_set<Point> seen;
  const db::Design& design = ctx_->design();

  for (const int li : ctx_->pinLayers(pinIdx)) {
    const Layer& layer = design.tech->layer(li);
    if (layer.type != db::LayerType::kRouting) continue;
    const bool horiz = layer.dir == Dir::kHorizontal;
    const int upper = design.tech->routingLayerAbove(li);

    for (const Rect& shape : ctx_->pinShapes(pinIdx, li)) {
      // On-track grid only: own-layer tracks along the preferred axis,
      // upper-layer tracks across it.
      std::vector<Coord> prefs;
      for (const db::TrackPattern* tp : design.tracks(
               li, horiz ? Dir::kHorizontal : Dir::kVertical)) {
        const geom::Interval span = horiz ? shape.ySpan() : shape.xSpan();
        for (const Coord c : tp->coordsIn(span.lo, span.hi)) {
          prefs.push_back(c);
        }
      }
      std::vector<Coord> nonPrefs;
      const int tl = upper >= 0 ? upper : li;
      for (const db::TrackPattern* tp :
           design.tracks(tl, horiz ? Dir::kVertical : Dir::kHorizontal)) {
        const geom::Interval span = horiz ? shape.xSpan() : shape.ySpan();
        for (const Coord c : tp->coordsIn(span.lo, span.hi)) {
          nonPrefs.push_back(c);
        }
      }
      for (const Coord pc : prefs) {
        for (const Coord npc : nonPrefs) {
          AccessPoint ap;
          ap.loc = horiz ? Point{npc, pc} : Point{pc, npc};
          ap.layer = li;
          ap.prefType = CoordType::kOnTrack;
          ap.nonPrefType = CoordType::kOnTrack;
          if (!seen.insert(ap.loc).second) continue;
          for (const db::ViaDef* via : design.tech->viaDefsFromLayer(li)) {
            if (crudeValidate(ap, *via, pinIdx)) ap.viaIdx.push_back(via->index);
          }
          // Planar escape probes, with the same brute-force scan per stub.
          const Coord stubHalf = layer.width / 2;
          const Coord stubLen = layer.pitch * 2;
          const struct {
            AccessDir dir;
            Rect r;
          } probes[] = {
              {kEast, Rect(ap.loc.x, ap.loc.y - stubHalf, ap.loc.x + stubLen,
                           ap.loc.y + stubHalf)},
              {kWest, Rect(ap.loc.x - stubLen, ap.loc.y - stubHalf, ap.loc.x,
                           ap.loc.y + stubHalf)},
              {kNorth, Rect(ap.loc.x - stubHalf, ap.loc.y, ap.loc.x + stubHalf,
                            ap.loc.y + stubLen)},
              {kSouth, Rect(ap.loc.x - stubHalf, ap.loc.y - stubLen,
                            ap.loc.x + stubHalf, ap.loc.y + stubHalf)},
          };
          for (const auto& probe : probes) {
            bool clear = true;
            for (const drc::Shape& s : allShapes_) {
              if (s.layer != li) continue;
              if (s.net == ctx_->pinNet(pinIdx) &&
                  s.net != drc::Shape::kObsNet) {
                continue;
              }
              if (s.rect.overlaps(probe.r)) {
                clear = false;
                break;
              }
            }
            if (clear) ap.dirs |= probe.dir;
          }
          if (!ap.viaIdx.empty()) {
            ap.dirs |= kUp;
            aps.push_back(std::move(ap));
          }
        }
      }
    }
  }
  return aps;
}

std::vector<std::vector<AccessPoint>> LegacyApGenerator::generateAll() const {
  std::vector<std::vector<AccessPoint>> out;
  out.reserve(ctx_->signalPins().size());
  for (const int pinIdx : ctx_->signalPins()) {
    out.push_back(generate(pinIdx));
  }
  return out;
}

}  // namespace pao::core
