// Baseline pin access in the style of TritonRoute v0.0.6.0, the comparison
// point of Tables II and III ("TrRte"). Characteristic differences from the
// PAAF generator, mirroring the pre-paper release:
//   - only on-track candidate points (no half-track / shape-center /
//     enclosure-boundary ladder), so fewer points on off-track pin geometry;
//   - validation checks only that the via enclosure stays inside the pin
//     bbox and does not overlap obstructions / foreign metal — spacing is
//     approximated and min-step / EOL are not checked at all, so some
//     emitted points carry DRCs ("dirty APs");
//   - no early termination and a brute-force scan over all cell shapes per
//     candidate, so it does strictly more work per pin.
#pragma once

#include <vector>

#include "pao/access_point.hpp"
#include "pao/inst_context.hpp"

namespace pao::core {

class LegacyApGenerator {
 public:
  explicit LegacyApGenerator(const InstContext& ctx);

  std::vector<AccessPoint> generate(int pinIdx) const;
  std::vector<std::vector<AccessPoint>> generateAll() const;

 private:
  bool crudeValidate(const AccessPoint& ap, const db::ViaDef& via,
                     int pinIdx) const;

  const InstContext* ctx_;
  /// Flat copy of all cell shapes for the deliberately naive linear scans.
  std::vector<drc::Shape> allShapes_;
};

}  // namespace pao::core
