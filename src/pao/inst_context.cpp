#include "pao/inst_context.hpp"

#include <algorithm>

namespace pao::core {

InstContext::InstContext(const db::Design& design, const db::UniqueInstance& ui)
    : design_(&design),
      ui_(&ui),
      xform_(design.instances.at(ui.representative).transform()),
      engine_(*design.tech) {
  const db::Master& master = *ui.master;
  signalPins_ = master.signalPinIndices();

  for (int pi = 0; pi < static_cast<int>(master.pins.size()); ++pi) {
    const db::Pin& pin = master.pins[pi];
    const bool isSupply =
        pin.use == db::PinUse::kPower || pin.use == db::PinUse::kGround;
    for (const db::PinShape& s : pin.shapes) {
      // Supply rails behave like foreign metal for every signal pin.
      const int net = isSupply ? drc::Shape::kObsNet : pinNet(pi);
      engine_.region().add({xform_.apply(s.rect), s.layer, net,
                            drc::ShapeKind::kPin, /*fixed=*/true});
    }
  }
  for (const db::Obstruction& o : master.obstructions) {
    engine_.region().add({xform_.apply(o.rect), o.layer, drc::Shape::kObsNet,
                          drc::ShapeKind::kObstruction, /*fixed=*/true});
  }
}

std::vector<geom::Rect> InstContext::pinShapes(int pinIdx, int layer) const {
  std::vector<geom::Rect> out;
  for (const db::PinShape& s : ui_->master->pins.at(pinIdx).shapes) {
    if (s.layer == layer) out.push_back(xform_.apply(s.rect));
  }
  return out;
}

std::vector<geom::Rect> InstContext::pinMaxRects(int pinIdx, int layer) const {
  return geom::maxRects(pinShapes(pinIdx, layer));
}

std::vector<int> InstContext::pinLayers(int pinIdx) const {
  std::vector<int> out;
  for (const db::PinShape& s : ui_->master->pins.at(pinIdx).shapes) {
    if (std::find(out.begin(), out.end(), s.layer) == out.end()) {
      out.push_back(s.layer);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pao::core
