#include "lefdef/lef_parser.hpp"

#include <cmath>

#include "lefdef/lexer.hpp"

namespace pao::lefdef {

namespace {

using db::Layer;
using db::LayerType;
using db::Library;
using db::Master;
using db::Pin;
using db::Tech;
using db::ViaDef;
using geom::Coord;
using geom::Rect;

class LefParser {
 public:
  LefParser(std::string_view text, Tech& tech, Library& lib,
            const ParseOptions& opts)
      : lex_(text, opts.file), opts_(opts), tech_(tech), lib_(lib) {}

  ParseResult run() {
    ParseResult res;
    while (!lex_.done()) {
      const std::size_t before = lex_.pos();
      try {
        step();
      } catch (const ParseError& e) {
        if (!opts_.recover) throw;
        res.diags.push_back(e.diag);
        if (res.errorCount() >= opts_.maxErrors) {
          res.diags.push_back(tooManyErrors(opts_.file));
          break;
        }
        // Progress guard + resync. An error inside a MACRO resyncs at the
        // top level, so the rest of that macro's statements are dropped —
        // the partially-built entity stays (documented in DESIGN.md).
        if (lex_.pos() == before && !lex_.done()) lex_.next();
        lex_.syncTo({"UNITS", "LAYER", "VIA", "MACRO", "END"});
      }
    }
    return res;
  }

 private:
  void step() {
    const std::string_view tok = lex_.peek();
    if (tok == "UNITS") {
      parseUnits();
    } else if (tok == "LAYER") {
      parseLayer();
    } else if (tok == "VIA") {
      parseVia();
    } else if (tok == "MACRO") {
      parseMacro();
    } else if (tok == "END") {
      lex_.next();
      if (!lex_.done()) lex_.next();  // END LIBRARY / END <name>
    } else {
      lex_.skipStatement();
    }
  }

  Coord dbu() { return lex_.nextDbu(tech_.dbuPerMicron); }

  void parseUnits() {
    lex_.expect("UNITS");
    while (!lex_.accept("END")) {
      if (lex_.accept("DATABASE")) {
        lex_.expect("MICRONS");
        tech_.dbuPerMicron = static_cast<int>(lex_.nextInt());
        lex_.expect(";");
      } else {
        lex_.skipStatement();
      }
    }
    lex_.expect("UNITS");
  }

  void parseLayer() {
    lex_.expect("LAYER");
    const std::string name(lex_.next());
    // TYPE must come first to know the layer kind; default to masterslice.
    Layer& layer = tech_.addLayer(name, LayerType::kMasterslice);
    while (!lex_.done()) {
      const std::string_view tok = lex_.peek();
      if (tok == "END") {
        lex_.next();
        lex_.expect(name);
        break;
      }
      if (lex_.accept("TYPE")) {
        const std::string_view t = lex_.next();
        if (t == "ROUTING") {
          layer.type = LayerType::kRouting;
        } else if (t == "CUT") {
          layer.type = LayerType::kCut;
        }
        lex_.expect(";");
      } else if (lex_.accept("DIRECTION")) {
        layer.dir = lex_.next() == "VERTICAL" ? db::Dir::kVertical
                                              : db::Dir::kHorizontal;
        lex_.expect(";");
      } else if (lex_.accept("PITCH")) {
        layer.pitch = dbu();
        lex_.expect(";");
      } else if (lex_.accept("WIDTH")) {
        layer.width = dbu();
        lex_.expect(";");
      } else if (lex_.accept("AREA")) {
        // LEF AREA is in square microns. roundClamped instead of a raw
        // cast: a fuzzer-supplied "AREA 1e300" must saturate, not hit the
        // UB of an out-of-range double->int64 conversion (and rounding
        // keeps write->parse->write byte-stable where truncation would
        // drift).
        const double um2 = lex_.nextDouble();
        layer.minArea = static_cast<Coord>(
            roundClamped(um2 * tech_.dbuPerMicron * tech_.dbuPerMicron));
        lex_.expect(";");
      } else if (lex_.accept("SPACING")) {
        const Coord space = dbu();
        if (lex_.accept("ENDOFLINE")) {
          db::EolRule eol;
          eol.space = space;
          eol.eolWidth = dbu();
          lex_.expect("WITHIN");
          eol.within = dbu();
          layer.eol = eol;
        } else if (layer.type == LayerType::kCut) {
          layer.cutSpacing = space;
        } else {
          layer.spacingTable.push_back({0, 0, space});
        }
        lex_.expect(";");
      } else if (lex_.accept("SPACINGTABLE")) {
        parseSpacingTable(layer);
      } else if (lex_.accept("MINSTEP")) {
        db::MinStepRule ms;
        ms.minStepLength = dbu();
        if (lex_.accept("MAXEDGES")) ms.maxEdges = static_cast<int>(lex_.nextInt());
        layer.minStep = ms;
        lex_.expect(";");
      } else {
        lex_.skipStatement();
      }
    }
  }

  // SPACINGTABLE PARALLELRUNLENGTH prl1 prl2 ...
  //   WIDTH w1 s11 s12 ...
  //   WIDTH w2 s21 s22 ... ;
  void parseSpacingTable(Layer& layer) {
    lex_.expect("PARALLELRUNLENGTH");
    std::vector<Coord> prls;
    while (lex_.peek() != "WIDTH" && lex_.peek() != ";") prls.push_back(dbu());
    while (lex_.accept("WIDTH")) {
      const Coord w = dbu();
      for (const Coord prl : prls) {
        const Coord s = dbu();
        layer.spacingTable.push_back({w, prl, s});
      }
    }
    lex_.expect(";");
  }

  void parseVia() {
    lex_.expect("VIA");
    ViaDef& via = tech_.addViaDef(std::string(lex_.next()));
    via.isDefault = lex_.accept("DEFAULT");
    int curLayer = -1;
    while (!lex_.done()) {
      if (lex_.peek() == "END") {
        lex_.next();
        lex_.expect(via.name);
        break;
      }
      if (lex_.accept("LAYER")) {
        const Layer* l = tech_.findLayer(lex_.next());
        curLayer = l ? l->index : -1;
        lex_.expect(";");
      } else if (lex_.accept("RECT")) {
        const Coord x1 = dbu();
        const Coord y1 = dbu();
        const Coord x2 = dbu();
        const Coord y2 = dbu();
        lex_.expect(";");
        if (curLayer < 0) continue;
        const Rect r{x1, y1, x2, y2};
        const Layer& l = tech_.layer(curLayer);
        if (l.type == LayerType::kCut) {
          via.cutLayer = curLayer;
          via.cut = r;
        } else if (via.botLayer < 0) {
          via.botLayer = curLayer;
          via.botEnc = r;
        } else {
          // Lower routing layer index is the bottom.
          if (curLayer < via.botLayer) {
            via.topLayer = via.botLayer;
            via.topEnc = via.botEnc;
            via.botLayer = curLayer;
            via.botEnc = r;
          } else {
            via.topLayer = curLayer;
            via.topEnc = r;
          }
        }
      } else {
        lex_.skipStatement();
      }
    }
  }

  void parseMacro() {
    lex_.expect("MACRO");
    Master& m = lib_.addMaster(std::string(lex_.next()));
    while (!lex_.done()) {
      if (lex_.peek() == "END") {
        lex_.next();
        lex_.expect(m.name);
        break;
      }
      if (lex_.accept("CLASS")) {
        const std::string_view c = lex_.next();
        if (c == "CORE") {
          m.cls = db::MasterClass::kCore;
          // CORE subtypes (SPACER etc.) may follow.
          if (lex_.peek() != ";") {
            if (lex_.next() == "SPACER") m.cls = db::MasterClass::kFiller;
          }
        } else if (c == "BLOCK") {
          m.cls = db::MasterClass::kBlock;
        } else if (c == "ENDCAP") {
          m.cls = db::MasterClass::kEndcap;
        }
        while (!lex_.accept(";")) lex_.next();
      } else if (lex_.accept("SIZE")) {
        m.width = dbu();
        lex_.expect("BY");
        m.height = dbu();
        lex_.expect(";");
      } else if (lex_.accept("PIN")) {
        parsePin(m);
      } else if (lex_.accept("OBS")) {
        parseObs(m);
      } else {
        lex_.skipStatement();
      }
    }
  }

  void parsePin(Master& m) {
    Pin& pin = m.pins.emplace_back();
    pin.name = std::string(lex_.next());
    while (!lex_.done()) {
      if (lex_.peek() == "END") {
        lex_.next();
        lex_.expect(pin.name);
        break;
      }
      if (lex_.accept("USE")) {
        const std::string_view u = lex_.next();
        if (u == "POWER") {
          pin.use = db::PinUse::kPower;
        } else if (u == "GROUND") {
          pin.use = db::PinUse::kGround;
        } else if (u == "CLOCK") {
          pin.use = db::PinUse::kClock;
        } else {
          pin.use = db::PinUse::kSignal;
        }
        lex_.expect(";");
      } else if (lex_.accept("PORT")) {
        int curLayer = -1;
        while (!lex_.accept("END")) {
          if (lex_.accept("LAYER")) {
            const Layer* l = tech_.findLayer(lex_.next());
            curLayer = l ? l->index : -1;
            lex_.expect(";");
          } else if (lex_.accept("RECT")) {
            const Coord x1 = dbu();
            const Coord y1 = dbu();
            const Coord x2 = dbu();
            const Coord y2 = dbu();
            lex_.expect(";");
            if (curLayer >= 0) pin.shapes.push_back({curLayer, {x1, y1, x2, y2}});
          } else {
            lex_.skipStatement();
          }
        }
      } else {
        lex_.skipStatement();
      }
    }
  }

  void parseObs(Master& m) {
    int curLayer = -1;
    while (!lex_.accept("END")) {
      if (lex_.accept("LAYER")) {
        const Layer* l = tech_.findLayer(lex_.next());
        curLayer = l ? l->index : -1;
        lex_.expect(";");
      } else if (lex_.accept("RECT")) {
        const Coord x1 = dbu();
        const Coord y1 = dbu();
        const Coord x2 = dbu();
        const Coord y2 = dbu();
        lex_.expect(";");
        if (curLayer >= 0) m.obstructions.push_back({curLayer, {x1, y1, x2, y2}});
      } else {
        lex_.skipStatement();
      }
    }
  }

  Lexer lex_;
  ParseOptions opts_;
  Tech& tech_;
  Library& lib_;
};

}  // namespace

void parseLef(std::string_view text, db::Tech& tech, db::Library& lib) {
  LefParser(text, tech, lib, ParseOptions{}).run();
}

ParseResult parseLef(std::string_view text, db::Tech& tech, db::Library& lib,
                     const ParseOptions& opts) {
  return LefParser(text, tech, lib, opts).run();
}

}  // namespace pao::lefdef
