#include "lefdef/def_route_writer.hpp"

#include <map>
#include <sstream>

#include "lefdef/def_writer.hpp"

namespace pao::lefdef {

namespace {

/// The default via def whose cut layer is `cutLayer`, else any matching.
const db::ViaDef* viaForCutLayer(const db::Tech& tech, int cutLayer) {
  const db::ViaDef* any = nullptr;
  for (const db::ViaDef& v : tech.viaDefs()) {
    if (v.cutLayer != cutLayer) continue;
    if (v.isDefault) return &v;
    if (any == nullptr) any = &v;
  }
  return any;
}

}  // namespace

std::string writeRoutedDef(const db::Design& design,
                           const std::vector<RoutedShape>& routed) {
  // Start from the plain DEF and splice routing into the NETS section.
  const std::string base = writeDef(design);

  // Group routed shapes per net.
  std::map<int, std::vector<const RoutedShape*>> byNet;
  for (const RoutedShape& s : routed) {
    if (s.net >= 0 && s.net < static_cast<int>(design.nets.size())) {
      byNet[s.net].push_back(&s);
    }
  }

  std::ostringstream os;
  const std::string marker = "NETS " + std::to_string(design.nets.size()) +
                             " ;\n";
  const std::size_t netsPos = base.find(marker);
  if (netsPos == std::string::npos) return base;  // defensive
  os << base.substr(0, netsPos);

  os << "NETS " << design.nets.size() << " ;\n";
  for (int n = 0; n < static_cast<int>(design.nets.size()); ++n) {
    const db::Net& net = design.nets[n];
    os << " - " << net.name;
    for (const db::NetTerm& t : net.terms) {
      if (t.isIo()) {
        os << " ( PIN " << design.ioPins[t.ioPinIdx].name << " )";
      } else {
        const db::Instance& inst = design.instances[t.instIdx];
        os << " ( " << inst.name << " "
           << inst.master->pins[t.pinIdx].name << " )";
      }
    }
    const auto it = byNet.find(n);
    if (it != byNet.end()) {
      bool first = true;
      for (const RoutedShape* s : it->second) {
        const db::Layer& layer = design.tech->layer(s->layer);
        if (s->isVia) {
          const db::ViaDef* via = viaForCutLayer(*design.tech, s->layer);
          if (via == nullptr) continue;
          const geom::Point c = s->rect.center();
          os << "\n  " << (first ? "+ ROUTED " : "NEW ")
             << design.tech->layer(via->botLayer).name << " ( " << c.x
             << " " << c.y << " ) " << via->name;
          first = false;
          continue;
        }
        if (layer.type != db::LayerType::kRouting) continue;
        // Centerline of the wire rect along its long axis.
        const geom::Point c = s->rect.center();
        geom::Point a = c;
        geom::Point b = c;
        if (s->rect.width() >= s->rect.height()) {
          a.x = s->rect.xlo + s->rect.height() / 2;
          b.x = s->rect.xhi - s->rect.height() / 2;
        } else {
          a.y = s->rect.ylo + s->rect.width() / 2;
          b.y = s->rect.yhi - s->rect.width() / 2;
        }
        os << "\n  " << (first ? "+ ROUTED " : "NEW ") << layer.name << " ( "
           << a.x << " " << a.y << " )";
        if (b != a) os << " ( " << b.x << " " << b.y << " )";
        first = false;
      }
    }
    os << " ;\n";
  }
  os << "END NETS\n\nEND DESIGN\n";
  return os.str();
}

}  // namespace pao::lefdef
