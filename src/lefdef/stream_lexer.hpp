// Lazy tokenizer for the streaming ingest path. Token-for-token identical
// to lefdef::Lexer (same delimiter set, comment/quote rules, diagnostics
// and recovery helpers) but it materializes nothing up front: tokens are
// string_views into the (mmap-backed) source, produced on demand, so a
// multi-hundred-MB DEF costs no token-vector or per-token std::string
// allocations. A StreamLexer is bounded to a byte range [begin, end) of
// the full text — the whole file for the serial section driver, one
// entity-aligned chunk for a parallel COMPONENTS/NETS worker — while
// line/column/excerpt information always resolves against the full text
// via a shared LineIndex, so chunk-worker diagnostics are byte-identical
// to the legacy single-pass parse.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "geom/geom.hpp"
#include "lefdef/lexer.hpp"
#include "util/diag.hpp"

namespace pao::lefdef {

/// Newline index over the full source text: maps byte offsets to 1-based
/// line/column and extracts excerpt lines. Built once per file, shared
/// read-only by every chunk worker.
class LineIndex {
 public:
  explicit LineIndex(std::string_view text);

  std::size_t lineOf(std::size_t offset) const;
  std::size_t colOf(std::size_t offset) const;
  /// The full source line `line` lives on (1-based; "" when unknown).
  std::string lineText(std::size_t line) const;

 private:
  std::string_view text_;
  std::vector<std::size_t> lineStart_;
};

class StreamLexer {
 public:
  /// Tokenizes fullText[begin, end). `lines` must index the same fullText
  /// and outlive the lexer. Ranges are token-aligned by construction (the
  /// section chunker only cuts at entity starts).
  StreamLexer(std::string_view fullText, std::size_t begin, std::size_t end,
              const LineIndex& lines, std::string_view file);
  /// Whole-text form (serial drivers).
  StreamLexer(std::string_view fullText, const LineIndex& lines,
              std::string_view file)
      : StreamLexer(fullText, 0, fullText.size(), lines, file) {}

  bool done() { return buffered(0) == nullptr; }
  /// Current token without consuming ("" at end of input).
  std::string_view peek(std::size_t ahead = 0);
  /// Consumes and returns the current token.
  std::string_view next();
  /// Consumes the current token iff it equals `tok`.
  bool accept(std::string_view tok);
  /// Consumes the current token, raising ParseError unless it equals `tok`.
  void expect(std::string_view tok);
  /// Consumes tokens up to and including the next ';'. Raises LEX001 if
  /// input ends first (truncated statement).
  void skipStatement();

  double nextDouble();
  long long nextInt();
  geom::Coord nextDbu(int dbuPerMicron);

  /// Line/column of the current token (the last token at end of input).
  std::size_t line();
  std::size_t col();
  /// Count of tokens consumed — recovery progress guard (only ever
  /// compared for equality, so it need not match legacy token indices).
  std::size_t pos() const { return consumed_; }
  /// Byte offset (into the full text) where the current token starts, or
  /// the range end at end of input. Drives the section chunker.
  std::size_t byteOffset();

  /// Repositions the scan to byte `offset`, discarding the lookahead
  /// buffer. pos() is preserved (it only guards recovery progress). Used
  /// by the streaming section driver to re-enter the serial grammar at a
  /// junk statement the chunk workers stopped at.
  void seekTo(std::size_t offset);

  /// Error-recovery resync; see Lexer::syncTo.
  void syncTo(std::initializer_list<std::string_view> stops);

  util::Diag diagHere(std::string_view code, std::string message);
  util::Diag diagPrev(std::string_view code, std::string message);

 private:
  struct Tok {
    std::string_view text;
    std::size_t off = 0;
  };

  /// Pointer to the ahead-th unconsumed token, or nullptr past the end.
  const Tok* buffered(std::size_t ahead);
  util::Diag diagAt(std::size_t off, bool located, std::string_view code,
                    std::string message);

  std::string_view text_;  ///< full source (excerpts, bounds)
  std::size_t cur_;        ///< scan position
  std::size_t end_;        ///< range end (treated as end of input)
  const LineIndex* lines_;
  std::string file_;
  std::vector<Tok> buf_;  ///< lookahead ring: buf_[head_..) pending
  std::size_t head_ = 0;
  std::size_t consumed_ = 0;
  std::size_t lastOff_ = 0;  ///< offset of most recently consumed token
  bool haveLast_ = false;
};

}  // namespace pao::lefdef
