// DEF subset parser: DESIGN/UNITS/DIEAREA, ROW, TRACKS, COMPONENTS, PINS,
// NETS. Populates a db::Design bound to an already-parsed Tech and Library.
#pragma once

#include <string_view>

#include "db/design.hpp"
#include "lefdef/lexer.hpp"

namespace pao::lefdef {

/// Parses DEF text into `design` (design.tech and design.lib must already
/// point at the technology and library the DEF references). Throws
/// ParseError on malformed input or unknown master/pin references.
void parseDef(std::string_view text, db::Design& design);

/// Located-diagnostics form. With opts.recover a bad component/pin/net is
/// dropped and reported while the rest of its section still parses (the
/// call never throws); without it the first error throws ParseError
/// carrying the same Diag.
ParseResult parseDef(std::string_view text, db::Design& design,
                     const ParseOptions& opts);

}  // namespace pao::lefdef
