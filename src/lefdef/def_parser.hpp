// DEF subset parser: DESIGN/UNITS/DIEAREA, ROW, TRACKS, COMPONENTS, PINS,
// NETS. Populates a db::Design bound to an already-parsed Tech and Library.
#pragma once

#include <string_view>

#include "db/design.hpp"

namespace pao::lefdef {

/// Parses DEF text into `design` (design.tech and design.lib must already
/// point at the technology and library the DEF references). Throws
/// ParseError on malformed input or unknown master/pin references.
void parseDef(std::string_view text, db::Design& design);

}  // namespace pao::lefdef
