#include "lefdef/stream_lexer.hpp"

#include <algorithm>
#include <cctype>

namespace pao::lefdef {

LineIndex::LineIndex(std::string_view text) : text_(text) {
  lineStart_.push_back(0);
  for (std::size_t i = text.find('\n'); i != std::string_view::npos;
       i = text.find('\n', i + 1)) {
    lineStart_.push_back(i + 1);
  }
}

std::size_t LineIndex::lineOf(std::size_t offset) const {
  const auto it =
      std::upper_bound(lineStart_.begin(), lineStart_.end(), offset);
  return static_cast<std::size_t>(it - lineStart_.begin());
}

std::size_t LineIndex::colOf(std::size_t offset) const {
  return offset - lineStart_[lineOf(offset) - 1] + 1;
}

std::string LineIndex::lineText(std::size_t line) const {
  if (line == 0 || line > lineStart_.size()) return std::string();
  const std::size_t begin = lineStart_[line - 1];
  std::size_t end = text_.find('\n', begin);
  if (end == std::string_view::npos) end = text_.size();
  return std::string(text_.substr(begin, end - begin));
}

StreamLexer::StreamLexer(std::string_view fullText, std::size_t begin,
                         std::size_t end, const LineIndex& lines,
                         std::string_view file)
    : text_(fullText),
      cur_(begin),
      end_(std::min(end, fullText.size())),
      lines_(&lines),
      file_(file) {}

const StreamLexer::Tok* StreamLexer::buffered(std::size_t ahead) {
  if (head_ > 0 && head_ == buf_.size()) {
    buf_.clear();
    head_ = 0;
  }
  while (buf_.size() - head_ <= ahead) {
    // Scan one more token; delimiter rules mirror Lexer's constructor.
    while (cur_ < end_) {
      const char c = text_[cur_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++cur_;
        continue;
      }
      if (c == '#') {  // comment to end of line
        while (cur_ < end_ && text_[cur_] != '\n') ++cur_;
        continue;
      }
      break;
    }
    if (cur_ >= end_) return nullptr;
    const std::size_t at = cur_;
    const char c = text_[cur_];
    if (c == ';' || c == '(' || c == ')') {
      buf_.push_back({text_.substr(cur_, 1), at});
      ++cur_;
      continue;
    }
    if (c == '"') {
      std::size_t j = cur_ + 1;
      while (j < end_ && text_[j] != '"') ++j;
      buf_.push_back({text_.substr(cur_ + 1, j - cur_ - 1), at});
      cur_ = j < end_ ? j + 1 : j;
      continue;
    }
    std::size_t j = cur_;
    while (j < end_ && !std::isspace(static_cast<unsigned char>(text_[j])) &&
           text_[j] != ';' && text_[j] != '(' && text_[j] != ')' &&
           text_[j] != '#') {
      ++j;
    }
    buf_.push_back({text_.substr(cur_, j - cur_), at});
    cur_ = j;
  }
  return &buf_[head_ + ahead];
}

std::string_view StreamLexer::peek(std::size_t ahead) {
  const Tok* t = buffered(ahead);
  return t != nullptr ? t->text : std::string_view();
}

std::string_view StreamLexer::next() {
  const Tok* t = buffered(0);
  if (t == nullptr) {
    throw ParseError(diagHere("LEX001", "unexpected end of input"));
  }
  lastOff_ = t->off;
  haveLast_ = true;
  ++head_;
  ++consumed_;
  return t->text;
}

bool StreamLexer::accept(std::string_view tok) {
  const Tok* t = buffered(0);
  if (t != nullptr && t->text == tok) {
    lastOff_ = t->off;
    haveLast_ = true;
    ++head_;
    ++consumed_;
    return true;
  }
  return false;
}

void StreamLexer::expect(std::string_view tok) {
  const Tok* t = buffered(0);
  if (t == nullptr || t->text != tok) {
    const std::string got =
        t == nullptr ? "end of input" : "'" + std::string(t->text) + "'";
    throw ParseError(diagHere(
        "LEX002", "expected '" + std::string(tok) + "', got " + got));
  }
  lastOff_ = t->off;
  haveLast_ = true;
  ++head_;
  ++consumed_;
}

void StreamLexer::skipStatement() {
  // See Lexer::skipStatement: LEX001 on truncation keeps section loops from
  // spinning forever.
  while (next() != ";") {
  }
}

void StreamLexer::syncTo(std::initializer_list<std::string_view> stops) {
  while (!done()) {
    const std::string_view tok = peek();
    for (const std::string_view stop : stops) {
      if (tok == stop) return;
    }
    if (next() == ";") return;
  }
}

double StreamLexer::nextDouble() {
  const std::string tok(next());
  try {
    return std::stod(tok);
  } catch (const std::exception&) {
    throw ParseError(diagPrev("LEX003", "expected number, got '" + tok + "'"));
  }
}

long long StreamLexer::nextInt() {
  return roundClamped(nextDouble());
}

geom::Coord StreamLexer::nextDbu(int dbuPerMicron) {
  return static_cast<geom::Coord>(roundClamped(nextDouble() * dbuPerMicron));
}

std::size_t StreamLexer::line() {
  const Tok* t = buffered(0);
  if (t != nullptr) return lines_->lineOf(t->off);
  return haveLast_ ? lines_->lineOf(lastOff_) : 0;
}

std::size_t StreamLexer::col() {
  const Tok* t = buffered(0);
  if (t != nullptr) return lines_->colOf(t->off);
  return haveLast_ ? lines_->colOf(lastOff_) : 0;
}

std::size_t StreamLexer::byteOffset() {
  const Tok* t = buffered(0);
  return t != nullptr ? t->off : end_;
}

void StreamLexer::seekTo(std::size_t offset) {
  cur_ = offset;
  buf_.clear();
  head_ = 0;
}

util::Diag StreamLexer::diagHere(std::string_view code, std::string message) {
  // At end of input point at the most recently consumed token (the last
  // token of the range — matching Lexer, which points at tokens_.back()).
  const Tok* t = buffered(0);
  if (t != nullptr) return diagAt(t->off, true, code, std::move(message));
  return diagAt(lastOff_, haveLast_, code, std::move(message));
}

util::Diag StreamLexer::diagPrev(std::string_view code, std::string message) {
  // Before the first next() Lexer's diagPrev points at token 0 — i.e. the
  // current peek token.
  if (haveLast_) return diagAt(lastOff_, true, code, std::move(message));
  const Tok* t = buffered(0);
  if (t != nullptr) return diagAt(t->off, true, code, std::move(message));
  return diagAt(0, false, code, std::move(message));
}

util::Diag StreamLexer::diagAt(std::size_t off, bool located,
                               std::string_view code, std::string message) {
  util::Diag d;
  d.code = std::string(code);
  d.message = std::move(message);
  d.loc.file = file_;
  if (located) {
    d.loc.line = lines_->lineOf(off);
    d.loc.col = lines_->colOf(off);
    d.excerpt = lines_->lineText(d.loc.line);
  }
  return d;
}

}  // namespace pao::lefdef
