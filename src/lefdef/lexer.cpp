#include "lefdef/lexer.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

namespace pao::lefdef {

util::Diag tooManyErrors(const std::string& file) {
  util::Diag d;
  d.code = "GEN001";
  d.loc.file = file;
  d.message = "too many errors; giving up";
  return d;
}

std::size_t ParseResult::errorCount() const {
  std::size_t n = 0;
  for (const util::Diag& d : diags) {
    if (d.severity == util::Severity::kError) ++n;
  }
  return n;
}

Lexer::Lexer(std::string_view text, std::string_view file)
    : file_(file), source_(text) {
  std::size_t line = 1;
  std::size_t lineStart = 0;
  lineStart_.push_back(0);
  std::size_t i = 0;
  const std::size_t n = text.size();
  const auto push = [&](std::string_view tok, std::size_t at) {
    tokens_.emplace_back(tok);
    lines_.push_back(line);
    cols_.push_back(at - lineStart + 1);
  };
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      lineStart = i;
      lineStart_.push_back(i);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == ';' || c == '(' || c == ')') {
      push(std::string_view(&text[i], 1), i);
      ++i;
      continue;
    }
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < n && text[j] != '"') ++j;
      push(text.substr(i + 1, j - i - 1), i);
      i = j < n ? j + 1 : j;
      continue;
    }
    std::size_t j = i;
    while (j < n && !std::isspace(static_cast<unsigned char>(text[j])) &&
           text[j] != ';' && text[j] != '(' && text[j] != ')' &&
           text[j] != '#') {
      ++j;
    }
    push(text.substr(i, j - i), i);
    i = j;
  }
}

std::string_view Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < tokens_.size() ? std::string_view(tokens_[pos_ + ahead])
                                       : std::string_view();
}

std::string_view Lexer::next() {
  if (done()) throw ParseError(diagHere("LEX001", "unexpected end of input"));
  return tokens_[pos_++];
}

bool Lexer::accept(std::string_view tok) {
  if (!done() && tokens_[pos_] == tok) {
    ++pos_;
    return true;
  }
  return false;
}

void Lexer::expect(std::string_view tok) {
  if (done() || tokens_[pos_] != tok) {
    const std::string got =
        done() ? "end of input" : "'" + tokens_[pos_] + "'";
    throw ParseError(diagHere(
        "LEX002", "expected '" + std::string(tok) + "', got " + got));
  }
  ++pos_;
}

void Lexer::skipStatement() {
  // next() raises LEX001 if input ends before the ';': a silent return at
  // end of input would leave callers' `while (!accept("END"))` loops
  // spinning forever on truncated files.
  while (next() != ";") {
  }
}

void Lexer::syncTo(std::initializer_list<std::string_view> stops) {
  while (!done()) {
    const std::string_view tok = peek();
    for (const std::string_view stop : stops) {
      if (tok == stop) return;
    }
    if (next() == ";") return;
  }
}

double Lexer::nextDouble() {
  const std::string tok(next());
  try {
    return std::stod(tok);
  } catch (const std::exception&) {
    throw ParseError(diagPrev("LEX003", "expected number, got '" + tok + "'"));
  }
}

// 2^50 DBU is ~5e8 microns at a 2000 DBU grid, far beyond any real die, so
// legitimate files are unaffected; llround on an unclamped out-of-range
// double returns an unspecified value (often LLONG_MIN), which poisons
// later sums with UB.
long long roundClamped(double v) {
  constexpr long long kMaxMagnitude = 1LL << 50;
  if (std::isnan(v)) return 0;
  const double lim = static_cast<double>(kMaxMagnitude);
  if (v >= lim) return kMaxMagnitude;
  if (v <= -lim) return -kMaxMagnitude;
  return std::llround(v);
}

long long Lexer::nextInt() {
  return roundClamped(nextDouble());
}

geom::Coord Lexer::nextDbu(int dbuPerMicron) {
  return static_cast<geom::Coord>(roundClamped(nextDouble() * dbuPerMicron));
}

std::size_t Lexer::line() const {
  if (lines_.empty()) return 0;
  return pos_ < lines_.size() ? lines_[pos_] : lines_.back();
}

std::size_t Lexer::col() const {
  if (cols_.empty()) return 0;
  return pos_ < cols_.size() ? cols_[pos_] : cols_.back();
}

util::Diag Lexer::diagHere(std::string_view code, std::string message) const {
  // At end of input point at the last token — the caller is reporting
  // "input ended while I expected more", and the last token is where.
  const std::size_t idx =
      tokens_.empty() ? 0 : (pos_ < tokens_.size() ? pos_ : tokens_.size() - 1);
  return diagAt(idx, code, std::move(message));
}

util::Diag Lexer::diagPrev(std::string_view code, std::string message) const {
  const std::size_t idx = pos_ > 0 ? pos_ - 1 : 0;
  return diagAt(idx, code, std::move(message));
}

util::Diag Lexer::diagAt(std::size_t tokIdx, std::string_view code,
                         std::string message) const {
  util::Diag d;
  d.code = std::string(code);
  d.message = std::move(message);
  d.loc.file = file_;
  if (tokIdx < tokens_.size()) {
    d.loc.line = lines_[tokIdx];
    d.loc.col = cols_[tokIdx];
    d.excerpt = lineText(d.loc.line);
  }
  return d;
}

std::string Lexer::lineText(std::size_t line) const {
  if (line == 0 || line > lineStart_.size()) return std::string();
  const std::size_t begin = lineStart_[line - 1];
  std::size_t end = source_.find('\n', begin);
  if (end == std::string::npos) end = source_.size();
  return source_.substr(begin, end - begin);
}

}  // namespace pao::lefdef
