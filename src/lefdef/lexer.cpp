#include "lefdef/lexer.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

namespace pao::lefdef {

Lexer::Lexer(std::string_view text) {
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == ';' || c == '(' || c == ')') {
      tokens_.emplace_back(1, c);
      lines_.push_back(line);
      ++i;
      continue;
    }
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < n && text[j] != '"') ++j;
      tokens_.emplace_back(text.substr(i + 1, j - i - 1));
      lines_.push_back(line);
      i = j < n ? j + 1 : j;
      continue;
    }
    std::size_t j = i;
    while (j < n && !std::isspace(static_cast<unsigned char>(text[j])) &&
           text[j] != ';' && text[j] != '(' && text[j] != ')' &&
           text[j] != '#') {
      ++j;
    }
    tokens_.emplace_back(text.substr(i, j - i));
    lines_.push_back(line);
    i = j;
  }
}

std::string_view Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < tokens_.size() ? std::string_view(tokens_[pos_ + ahead])
                                       : std::string_view();
}

std::string_view Lexer::next() {
  if (done()) throw ParseError("unexpected end of input");
  return tokens_[pos_++];
}

bool Lexer::accept(std::string_view tok) {
  if (!done() && tokens_[pos_] == tok) {
    ++pos_;
    return true;
  }
  return false;
}

void Lexer::expect(std::string_view tok) {
  if (done() || tokens_[pos_] != tok) {
    throw ParseError("line " + std::to_string(line()) + ": expected '" +
                     std::string(tok) + "', got '" + std::string(peek()) +
                     "'");
  }
  ++pos_;
}

void Lexer::skipStatement() {
  while (!done() && next() != ";") {
  }
}

double Lexer::nextDouble() {
  const std::string tok(next());
  try {
    return std::stod(tok);
  } catch (const std::exception&) {
    throw ParseError("line " + std::to_string(line()) + ": expected number, got '" +
                     tok + "'");
  }
}

long long Lexer::nextInt() {
  return static_cast<long long>(std::llround(nextDouble()));
}

geom::Coord Lexer::nextDbu(int dbuPerMicron) {
  return static_cast<geom::Coord>(std::llround(nextDouble() * dbuPerMicron));
}

std::size_t Lexer::line() const {
  if (lines_.empty()) return 0;
  return pos_ < lines_.size() ? lines_[pos_] : lines_.back();
}

}  // namespace pao::lefdef
