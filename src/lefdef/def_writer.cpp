#include "lefdef/def_writer.hpp"

#include <charconv>
#include <ostream>
#include <sstream>

namespace pao::lefdef {

namespace defout {

namespace {

/// Fixed-size line assembly for the two emitters that run millions of times
/// per file; everything else uses plain stream formatting.
struct LineBuf {
  char buf[256];
  char* p = buf;

  void lit(std::string_view s) {
    // Identifiers and literals in this writer are far below the buffer
    // size; truncate rather than overrun on pathological names.
    const std::size_t room = static_cast<std::size_t>(buf + sizeof buf - p);
    const std::size_t n = s.size() < room ? s.size() : room;
    std::char_traits<char>::copy(p, s.data(), n);
    p += n;
  }
  void num(long long v) {
    p = std::to_chars(p, buf + sizeof buf, v).ptr;
  }
  void flush(std::ostream& os) { os.write(buf, p - buf); }
};

}  // namespace

void header(std::ostream& os, const std::string& designName,
            int dbuPerMicron, const geom::Rect& dieArea) {
  os << "VERSION 5.8 ;\n";
  os << "DESIGN " << designName << " ;\n";
  os << "UNITS DISTANCE MICRONS " << dbuPerMicron << " ;\n";
  os << "DIEAREA ( " << dieArea.xlo << " " << dieArea.ylo << " ) ( "
     << dieArea.xhi << " " << dieArea.yhi << " ) ;\n\n";
}

void row(std::ostream& os, const db::Row& r) {
  os << "ROW " << r.name << " " << r.site << " " << r.origin.x << " "
     << r.origin.y << " " << geom::toString(r.orient) << " DO " << r.numSites
     << " BY 1 STEP " << r.siteWidth << " 0 ;\n";
}

void track(std::ostream& os, const db::TrackPattern& tp,
           const std::string& layerName) {
  os << "TRACKS " << (tp.axis == db::Dir::kVertical ? "X" : "Y") << " "
     << tp.start << " DO " << tp.count << " STEP " << tp.step << " LAYER "
     << layerName << " ;\n";
}

void sectionGap(std::ostream& os) { os << "\n"; }

void componentsBegin(std::ostream& os, std::size_t n) {
  os << "COMPONENTS " << n << " ;\n";
}

void component(std::ostream& os, std::string_view name,
               std::string_view master, geom::Point origin,
               geom::Orient orient) {
  LineBuf b;
  b.lit(" - ");
  b.lit(name);
  b.lit(" ");
  b.lit(master);
  b.lit(" + PLACED ( ");
  b.num(origin.x);
  b.lit(" ");
  b.num(origin.y);
  b.lit(" ) ");
  b.lit(geom::toString(orient));
  b.lit(" ;\n");
  b.flush(os);
}

void componentsEnd(std::ostream& os) { os << "END COMPONENTS\n\n"; }

void pinsBegin(std::ostream& os, std::size_t n) {
  os << "PINS " << n << " ;\n";
}

void pin(std::ostream& os, std::string_view name, std::string_view layerName,
         const geom::Rect& shape) {
  // Shapes are stored in absolute coordinates; emit with PLACED (0 0).
  os << " - " << name << " + NET " << name << " + LAYER " << layerName
     << " ( " << shape.xlo << " " << shape.ylo << " ) ( " << shape.xhi << " "
     << shape.yhi << " ) + PLACED ( 0 0 ) N ;\n";
}

void pinsEnd(std::ostream& os) { os << "END PINS\n\n"; }

void netsBegin(std::ostream& os, std::size_t n) {
  os << "NETS " << n << " ;\n";
}

void netBegin(std::ostream& os, std::string_view name) {
  os << " - " << name;
}

void netInstTerm(std::ostream& os, std::string_view inst,
                 std::string_view pin) {
  LineBuf b;
  b.lit(" ( ");
  b.lit(inst);
  b.lit(" ");
  b.lit(pin);
  b.lit(" )");
  b.flush(os);
}

void netIoTerm(std::ostream& os, std::string_view ioPin) {
  os << " ( PIN " << ioPin << " )";
}

void netEnd(std::ostream& os) { os << " ;\n"; }

void netsEnd(std::ostream& os) { os << "END NETS\n\n"; }

void end(std::ostream& os) { os << "END DESIGN\n"; }

}  // namespace defout

std::string writeDef(const db::Design& d) {
  std::ostringstream os;
  defout::header(os, d.name, d.tech ? d.tech->dbuPerMicron : 2000,
                 d.dieArea);

  for (const db::Row& r : d.rows) {
    defout::row(os, r);
  }
  defout::sectionGap(os);

  for (const db::TrackPattern& tp : d.trackPatterns) {
    defout::track(os, tp, d.tech->layer(tp.layer).name);
  }
  defout::sectionGap(os);

  defout::componentsBegin(os, d.instances.size());
  for (const db::Instance& inst : d.instances) {
    defout::component(os, inst.name, inst.master->name, inst.origin,
                      inst.orient);
  }
  defout::componentsEnd(os);

  defout::pinsBegin(os, d.ioPins.size());
  for (const db::IoPin& p : d.ioPins) {
    defout::pin(os, p.name, d.tech->layer(p.layer).name, p.rect);
  }
  defout::pinsEnd(os);

  defout::netsBegin(os, d.nets.size());
  for (const db::Net& n : d.nets) {
    defout::netBegin(os, n.name);
    for (const db::NetTerm& t : n.terms) {
      if (t.isIo()) {
        defout::netIoTerm(os, d.ioPins[t.ioPinIdx].name);
      } else {
        const db::Instance& inst = d.instances[t.instIdx];
        defout::netInstTerm(os, inst.name, inst.master->pins[t.pinIdx].name);
      }
    }
    defout::netEnd(os);
  }
  defout::netsEnd(os);
  defout::end(os);
  return os.str();
}

}  // namespace pao::lefdef
