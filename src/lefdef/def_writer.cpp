#include "lefdef/def_writer.hpp"

#include <sstream>

namespace pao::lefdef {

std::string writeDef(const db::Design& d) {
  std::ostringstream os;
  os << "VERSION 5.8 ;\n";
  os << "DESIGN " << d.name << " ;\n";
  os << "UNITS DISTANCE MICRONS " << (d.tech ? d.tech->dbuPerMicron : 2000)
     << " ;\n";
  os << "DIEAREA ( " << d.dieArea.xlo << " " << d.dieArea.ylo << " ) ( "
     << d.dieArea.xhi << " " << d.dieArea.yhi << " ) ;\n\n";

  for (const db::Row& r : d.rows) {
    os << "ROW " << r.name << " " << r.site << " " << r.origin.x << " "
       << r.origin.y << " " << geom::toString(r.orient) << " DO "
       << r.numSites << " BY 1 STEP " << r.siteWidth << " 0 ;\n";
  }
  os << "\n";

  for (const db::TrackPattern& tp : d.trackPatterns) {
    os << "TRACKS " << (tp.axis == db::Dir::kVertical ? "X" : "Y") << " "
       << tp.start << " DO " << tp.count << " STEP " << tp.step << " LAYER "
       << d.tech->layer(tp.layer).name << " ;\n";
  }
  os << "\n";

  os << "COMPONENTS " << d.instances.size() << " ;\n";
  for (const db::Instance& inst : d.instances) {
    os << " - " << inst.name << " " << inst.master->name << " + PLACED ( "
       << inst.origin.x << " " << inst.origin.y << " ) "
       << geom::toString(inst.orient) << " ;\n";
  }
  os << "END COMPONENTS\n\n";

  os << "PINS " << d.ioPins.size() << " ;\n";
  for (const db::IoPin& p : d.ioPins) {
    // Shapes are stored in absolute coordinates; emit with PLACED (0 0).
    os << " - " << p.name << " + NET " << p.name << " + LAYER "
       << d.tech->layer(p.layer).name << " ( " << p.rect.xlo << " "
       << p.rect.ylo << " ) ( " << p.rect.xhi << " " << p.rect.yhi
       << " ) + PLACED ( 0 0 ) N ;\n";
  }
  os << "END PINS\n\n";

  os << "NETS " << d.nets.size() << " ;\n";
  for (const db::Net& n : d.nets) {
    os << " - " << n.name;
    for (const db::NetTerm& t : n.terms) {
      if (t.isIo()) {
        os << " ( PIN " << d.ioPins[t.ioPinIdx].name << " )";
      } else {
        const db::Instance& inst = d.instances[t.instIdx];
        os << " ( " << inst.name << " " << inst.master->pins[t.pinIdx].name
           << " )";
      }
    }
    os << " ;\n";
  }
  os << "END NETS\n\n";
  os << "END DESIGN\n";
  return os.str();
}

}  // namespace pao::lefdef
