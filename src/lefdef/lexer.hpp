// Shared tokenizer for the LEF/DEF parsers. LEF/DEF are whitespace-separated
// token streams where ';', '(' and ')' are standalone tokens, '#' starts a
// comment, and double-quoted strings are single tokens.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "geom/geom.hpp"

namespace pao::lefdef {

class Lexer {
 public:
  explicit Lexer(std::string_view text);

  bool done() const { return pos_ >= tokens_.size(); }
  /// Current token without consuming ("" at end of input).
  std::string_view peek(std::size_t ahead = 0) const;
  /// Consumes and returns the current token.
  std::string_view next();
  /// Consumes the current token iff it equals `tok`.
  bool accept(std::string_view tok);
  /// Consumes the current token, raising ParseError unless it equals `tok`.
  void expect(std::string_view tok);
  /// Consumes tokens up to and including the next ';'.
  void skipStatement();

  /// Consumes a token and parses it as a decimal number (may be fractional).
  double nextDouble();
  /// Consumes a token and parses it as an integer.
  long long nextInt();
  /// nextDouble() scaled by dbuPerMicron and rounded — LEF distances.
  geom::Coord nextDbu(int dbuPerMicron);

  std::size_t line() const;

 private:
  std::vector<std::string> tokens_;
  std::vector<std::size_t> lines_;
  std::size_t pos_ = 0;
};

struct ParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

}  // namespace pao::lefdef
