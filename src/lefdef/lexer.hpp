// Shared tokenizer for the LEF/DEF parsers. LEF/DEF are whitespace-separated
// token streams where ';', '(' and ')' are standalone tokens, '#' starts a
// comment, and double-quoted strings are single tokens.
//
// The lexer tracks a 1-based line/column per token and keeps the source
// text, so parse errors carry a full util::Diag (file:line:col, stable
// error code, source excerpt). Parsers have two modes:
//   - strict (default): the first error throws ParseError, whose .diag
//     holds the located diagnostic (what() is the formatted form);
//   - recovery (ParseOptions::recover): errors are accumulated into a
//     ParseResult and the parser resyncs via syncTo() and keeps going.
#pragma once

#include <initializer_list>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "geom/geom.hpp"
#include "util/diag.hpp"

namespace pao::lefdef {

struct ParseError : std::runtime_error {
  /// Located diagnostic; what() returns diag.format().
  explicit ParseError(util::Diag d)
      : std::runtime_error(d.format()), diag(std::move(d)) {
  }
  /// Legacy message-only form (no location, generic code GEN000).
  explicit ParseError(const std::string& msg) : std::runtime_error(msg) {
    diag.code = "GEN000";
    diag.message = msg;
  }

  util::Diag diag;
};

/// How to parse: strict (throw on first error) or recovering (accumulate
/// diagnostics into a ParseResult, resync, continue).
struct ParseOptions {
  std::string file = "<input>";  ///< name shown in diagnostics
  bool recover = false;
  std::size_t maxErrors = 64;  ///< recovery gives up (GEN001) past this
};

struct ParseResult {
  std::vector<util::Diag> diags;

  std::size_t errorCount() const;
  bool ok() const { return errorCount() == 0; }
};

/// The GEN001 "too many errors; giving up" diagnostic that recovery-mode
/// parsers append when ParseOptions::maxErrors is reached.
util::Diag tooManyErrors(const std::string& file);

/// Rounds `v` to integer, clamping magnitudes to ±2^50 and NaN to 0. All
/// integers the parsers derive from source numbers go through this so that
/// downstream geometry arithmetic cannot overflow int64 on hostile input;
/// legitimate LEF/DEF values are orders of magnitude below the clamp.
long long roundClamped(double v);

class Lexer {
 public:
  explicit Lexer(std::string_view text, std::string_view file = "<input>");

  bool done() const { return pos_ >= tokens_.size(); }
  /// Current token without consuming ("" at end of input).
  std::string_view peek(std::size_t ahead = 0) const;
  /// Consumes and returns the current token.
  std::string_view next();
  /// Consumes the current token iff it equals `tok`.
  bool accept(std::string_view tok);
  /// Consumes the current token, raising ParseError unless it equals `tok`.
  void expect(std::string_view tok);
  /// Consumes tokens up to and including the next ';'. Raises LEX001 if
  /// input ends first (truncated statement).
  void skipStatement();

  /// Consumes a token and parses it as a decimal number (may be fractional).
  double nextDouble();
  /// Consumes a token and parses it as an integer.
  long long nextInt();
  /// nextDouble() scaled by dbuPerMicron and rounded — LEF distances.
  geom::Coord nextDbu(int dbuPerMicron);

  /// Line/column of the current token (the last token at end of input).
  std::size_t line() const;
  std::size_t col() const;
  /// Position in the token stream — recovery progress guard.
  std::size_t pos() const { return pos_; }

  /// Error-recovery resync: consumes tokens until a ';' has been consumed
  /// or the next token is one of `stops` (or input ends). Unlike
  /// skipStatement() this refuses to eat a following statement whose
  /// keyword is a known resync point.
  void syncTo(std::initializer_list<std::string_view> stops);

  /// Located diagnostic at the current token (diagHere) or at the most
  /// recently consumed token (diagPrev — for semantic errors discovered
  /// after consuming, e.g. "unknown master 'X'").
  util::Diag diagHere(std::string_view code, std::string message) const;
  util::Diag diagPrev(std::string_view code, std::string message) const;

 private:
  util::Diag diagAt(std::size_t tokIdx, std::string_view code,
                    std::string message) const;
  /// The full source line `line` lives on (1-based; "" when unknown).
  std::string lineText(std::size_t line) const;

  std::string file_;
  std::string source_;                  ///< owned copy for excerpts
  std::vector<std::size_t> lineStart_;  ///< offset of each line in source_
  std::vector<std::string> tokens_;
  std::vector<std::size_t> lines_;
  std::vector<std::size_t> cols_;
  std::size_t pos_ = 0;
};

}  // namespace pao::lefdef
