#include "lefdef/def_parser.hpp"

#include "lefdef/lexer.hpp"

namespace pao::lefdef {

namespace {

using db::Design;
using geom::Coord;

class DefParser {
 public:
  DefParser(std::string_view text, Design& design, const ParseOptions& opts)
      : lex_(text, opts.file), opts_(opts), design_(design) {}

  ParseResult run() {
    try {
      while (!lex_.done()) {
        const std::size_t before = lex_.pos();
        try {
          step();
        } catch (const ParseError& e) {
          if (!opts_.recover) throw;
          record(e.diag);
          resync(before, {"DESIGN", "UNITS", "DIEAREA", "ROW", "TRACKS",
                          "COMPONENTS", "PINS", "NETS", "END"});
        }
      }
    } catch (const Bail&) {
      // maxErrors reached; res_ already carries the GEN001 diagnostic.
    }
    design_.buildInstanceIndex();
    return std::move(res_);
  }

 private:
  /// Thrown (recovery mode only) once maxErrors is reached.
  struct Bail {};

  void record(const util::Diag& d) {
    res_.diags.push_back(d);
    if (res_.errorCount() >= opts_.maxErrors) {
      res_.diags.push_back(tooManyErrors(opts_.file));
      throw Bail{};
    }
  }

  /// Progress guard + resync: never re-dispatch the failing token.
  void resync(std::size_t before,
              std::initializer_list<std::string_view> stops) {
    if (lex_.pos() == before && !lex_.done()) lex_.next();
    lex_.syncTo(stops);
  }

  void step() {
    const std::string_view tok = lex_.peek();
    if (tok == "DESIGN") {
      lex_.next();
      design_.name = std::string(lex_.next());
      lex_.expect(";");
    } else if (tok == "UNITS") {
      lex_.next();
      lex_.expect("DISTANCE");
      lex_.expect("MICRONS");
      dbu_ = static_cast<int>(lex_.nextInt());
      lex_.expect(";");
    } else if (tok == "DIEAREA") {
      lex_.next();
      lex_.expect("(");
      const Coord x1 = lex_.nextInt();
      const Coord y1 = lex_.nextInt();
      lex_.expect(")");
      lex_.expect("(");
      const Coord x2 = lex_.nextInt();
      const Coord y2 = lex_.nextInt();
      lex_.expect(")");
      lex_.expect(";");
      design_.dieArea = {x1, y1, x2, y2};
    } else if (tok == "ROW") {
      parseRow();
    } else if (tok == "TRACKS") {
      parseTracks();
    } else if (tok == "COMPONENTS") {
      parseComponents();
    } else if (tok == "PINS") {
      parsePins();
    } else if (tok == "NETS") {
      parseNets();
    } else if (tok == "END") {
      lex_.next();
      if (!lex_.done()) lex_.next();
    } else {
      lex_.skipStatement();
    }
  }

  void parseRow() {
    lex_.expect("ROW");
    db::Row row;
    row.name = std::string(lex_.next());
    row.site = std::string(lex_.next());
    row.origin.x = lex_.nextInt();
    row.origin.y = lex_.nextInt();
    row.orient = geom::orientFromString(lex_.next());
    if (lex_.accept("DO")) {
      row.numSites = static_cast<int>(lex_.nextInt());
      lex_.expect("BY");
      lex_.nextInt();  // rows in y (always 1 for std rows)
      lex_.expect("STEP");
      row.siteWidth = lex_.nextInt();
      lex_.nextInt();  // y step
    }
    lex_.expect(";");
    design_.rows.push_back(std::move(row));
  }

  void parseTracks() {
    lex_.expect("TRACKS");
    db::TrackPattern tp;
    const std::string_view axis = lex_.next();
    // DEF TRACKS X: vertical tracks (fixed x); TRACKS Y: horizontal tracks.
    tp.axis = axis == "X" ? db::Dir::kVertical : db::Dir::kHorizontal;
    tp.start = lex_.nextInt();
    lex_.expect("DO");
    tp.count = static_cast<int>(lex_.nextInt());
    lex_.expect("STEP");
    tp.step = lex_.nextInt();
    lex_.expect("LAYER");
    const std::string layerName(lex_.next());
    const db::Layer* layer = design_.tech->findLayer(layerName);
    if (layer == nullptr) {
      throw ParseError(lex_.diagPrev(
          "DEF001", "TRACKS references unknown layer '" + layerName + "'"));
    }
    tp.layer = layer->index;
    lex_.expect(";");
    design_.trackPatterns.push_back(tp);
  }

  /// Runs `body` for each `- ...` entity, recovering per entity: a bad
  /// component/pin/net is dropped and reported, the rest of the section
  /// still parses.
  template <typename Body>
  void forEachEntity(Body&& body) {
    while (lex_.accept("-")) {
      const std::size_t before = lex_.pos();
      try {
        body();
      } catch (const ParseError& e) {
        if (!opts_.recover) throw;
        record(e.diag);
        resync(before, {"-", "END"});
      }
    }
  }

  void parseComponents() {
    lex_.expect("COMPONENTS");
    lex_.nextInt();
    lex_.expect(";");
    forEachEntity([&] { parseOneComponent(); });
    lex_.expect("END");
    lex_.expect("COMPONENTS");
  }

  void parseOneComponent() {
    db::Instance inst;
    inst.name = std::string(lex_.next());
    const std::string masterName(lex_.next());
    inst.master = design_.lib->findMaster(masterName);
    if (inst.master == nullptr) {
      throw ParseError(lex_.diagPrev(
          "DEF002", "component references unknown master '" + masterName +
                        "'"));
    }
    while (!lex_.accept(";")) {
      if (lex_.accept("+")) {
        const std::string_view kw = lex_.next();
        if (kw == "PLACED" || kw == "FIXED") {
          lex_.expect("(");
          inst.origin.x = lex_.nextInt();
          inst.origin.y = lex_.nextInt();
          lex_.expect(")");
          inst.orient = geom::orientFromString(lex_.next());
        }
      } else {
        lex_.next();
      }
    }
    design_.instances.push_back(std::move(inst));
  }

  void parsePins() {
    lex_.expect("PINS");
    lex_.nextInt();
    lex_.expect(";");
    forEachEntity([&] { parseOnePin(); });
    lex_.expect("END");
    lex_.expect("PINS");
    design_.buildInstanceIndex();
  }

  void parseOnePin() {
    db::IoPin pin;
    pin.name = std::string(lex_.next());
    geom::Rect shape;
    geom::Point placed;
    while (!lex_.accept(";")) {
      if (lex_.accept("+")) {
        const std::string_view kw = lex_.next();
        if (kw == "LAYER") {
          const db::Layer* layer = design_.tech->findLayer(lex_.next());
          pin.layer = layer ? layer->index : -1;
          lex_.expect("(");
          const Coord x1 = lex_.nextInt();
          const Coord y1 = lex_.nextInt();
          lex_.expect(")");
          lex_.expect("(");
          const Coord x2 = lex_.nextInt();
          const Coord y2 = lex_.nextInt();
          lex_.expect(")");
          shape = {x1, y1, x2, y2};
        } else if (kw == "PLACED" || kw == "FIXED") {
          lex_.expect("(");
          placed.x = lex_.nextInt();
          placed.y = lex_.nextInt();
          lex_.expect(")");
          lex_.next();  // orient
        }
      } else {
        lex_.next();
      }
    }
    pin.rect = shape.translate(placed.x, placed.y);
    design_.ioPins.push_back(std::move(pin));
  }

  void parseNets() {
    lex_.expect("NETS");
    lex_.nextInt();
    lex_.expect(";");
    design_.buildInstanceIndex();
    forEachEntity([&] {
      // The net is emplaced before its terms parse; drop it again if the
      // entity fails so recovery never leaves a half-built net behind.
      const std::size_t netsBefore = design_.nets.size();
      try {
        parseOneNet();
      } catch (...) {
        design_.nets.resize(netsBefore);
        throw;
      }
    });
    lex_.expect("END");
    lex_.expect("NETS");
  }

  void parseOneNet() {
    db::Net& net = design_.nets.emplace_back();
    net.name = std::string(lex_.next());
    while (!lex_.accept(";")) {
      if (lex_.peek() == "+") {
        // '+' attributes (ROUTED wiring, USE, ...) follow the terms; skip
        // the remainder of this net statement.
        while (!lex_.accept(";")) lex_.next();
        break;
      }
      if (lex_.accept("(")) {
        const std::string a(lex_.next());
        db::NetTerm term;
        if (a != "PIN") {
          term.instIdx = design_.findInstance(a);
          if (term.instIdx < 0) {
            throw ParseError(lex_.diagPrev(
                "DEF004", "net references unknown component '" + a + "'"));
          }
        }
        const std::string b(lex_.next());
        if (a == "PIN") {
          for (int i = 0; i < static_cast<int>(design_.ioPins.size()); ++i) {
            if (design_.ioPins[i].name == b) {
              term.ioPinIdx = i;
              break;
            }
          }
          if (term.ioPinIdx < 0) {
            throw ParseError(lex_.diagPrev(
                "DEF003", "net references unknown IO pin '" + b + "'"));
          }
        } else {
          const db::Master& m = *design_.instances[term.instIdx].master;
          for (int i = 0; i < static_cast<int>(m.pins.size()); ++i) {
            if (m.pins[i].name == b) {
              term.pinIdx = i;
              break;
            }
          }
          if (term.pinIdx < 0) {
            throw ParseError(lex_.diagPrev(
                "DEF005",
                "net references unknown pin '" + b + "' on '" + a + "'"));
          }
        }
        lex_.expect(")");
        net.terms.push_back(term);
      } else {
        lex_.next();
      }
    }
  }

  Lexer lex_;
  ParseOptions opts_;
  ParseResult res_;
  Design& design_;
  int dbu_ = 2000;
};

}  // namespace

void parseDef(std::string_view text, db::Design& design) {
  DefParser(text, design, ParseOptions{}).run();
}

ParseResult parseDef(std::string_view text, db::Design& design,
                     const ParseOptions& opts) {
  return DefParser(text, design, opts).run();
}

}  // namespace pao::lefdef
