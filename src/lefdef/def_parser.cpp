#include "lefdef/def_parser.hpp"

#include "lefdef/lexer.hpp"

namespace pao::lefdef {

namespace {

using db::Design;
using geom::Coord;

class DefParser {
 public:
  DefParser(std::string_view text, Design& design)
      : lex_(text), design_(design) {}

  void run() {
    while (!lex_.done()) {
      const std::string_view tok = lex_.peek();
      if (tok == "DESIGN") {
        lex_.next();
        design_.name = std::string(lex_.next());
        lex_.expect(";");
      } else if (tok == "UNITS") {
        lex_.next();
        lex_.expect("DISTANCE");
        lex_.expect("MICRONS");
        dbu_ = static_cast<int>(lex_.nextInt());
        lex_.expect(";");
      } else if (tok == "DIEAREA") {
        lex_.next();
        lex_.expect("(");
        const Coord x1 = lex_.nextInt();
        const Coord y1 = lex_.nextInt();
        lex_.expect(")");
        lex_.expect("(");
        const Coord x2 = lex_.nextInt();
        const Coord y2 = lex_.nextInt();
        lex_.expect(")");
        lex_.expect(";");
        design_.dieArea = {x1, y1, x2, y2};
      } else if (tok == "ROW") {
        parseRow();
      } else if (tok == "TRACKS") {
        parseTracks();
      } else if (tok == "COMPONENTS") {
        parseComponents();
      } else if (tok == "PINS") {
        parsePins();
      } else if (tok == "NETS") {
        parseNets();
      } else if (tok == "END") {
        lex_.next();
        if (!lex_.done()) lex_.next();
      } else {
        lex_.skipStatement();
      }
    }
    design_.buildInstanceIndex();
  }

 private:
  void parseRow() {
    lex_.expect("ROW");
    db::Row& row = design_.rows.emplace_back();
    row.name = std::string(lex_.next());
    row.site = std::string(lex_.next());
    row.origin.x = lex_.nextInt();
    row.origin.y = lex_.nextInt();
    row.orient = geom::orientFromString(lex_.next());
    if (lex_.accept("DO")) {
      row.numSites = static_cast<int>(lex_.nextInt());
      lex_.expect("BY");
      lex_.nextInt();  // rows in y (always 1 for std rows)
      lex_.expect("STEP");
      row.siteWidth = lex_.nextInt();
      lex_.nextInt();  // y step
    }
    lex_.expect(";");
  }

  void parseTracks() {
    lex_.expect("TRACKS");
    db::TrackPattern tp;
    const std::string_view axis = lex_.next();
    // DEF TRACKS X: vertical tracks (fixed x); TRACKS Y: horizontal tracks.
    tp.axis = axis == "X" ? db::Dir::kVertical : db::Dir::kHorizontal;
    tp.start = lex_.nextInt();
    lex_.expect("DO");
    tp.count = static_cast<int>(lex_.nextInt());
    lex_.expect("STEP");
    tp.step = lex_.nextInt();
    lex_.expect("LAYER");
    const db::Layer* layer = design_.tech->findLayer(lex_.next());
    if (layer == nullptr) throw ParseError("TRACKS references unknown layer");
    tp.layer = layer->index;
    lex_.expect(";");
    design_.trackPatterns.push_back(tp);
  }

  void parseComponents() {
    lex_.expect("COMPONENTS");
    lex_.nextInt();
    lex_.expect(";");
    while (lex_.accept("-")) {
      db::Instance inst;
      inst.name = std::string(lex_.next());
      const std::string masterName(lex_.next());
      inst.master = design_.lib->findMaster(masterName);
      if (inst.master == nullptr) {
        throw ParseError("component references unknown master " + masterName);
      }
      while (!lex_.accept(";")) {
        if (lex_.accept("+")) {
          const std::string_view kw = lex_.next();
          if (kw == "PLACED" || kw == "FIXED") {
            lex_.expect("(");
            inst.origin.x = lex_.nextInt();
            inst.origin.y = lex_.nextInt();
            lex_.expect(")");
            inst.orient = geom::orientFromString(lex_.next());
          }
        } else {
          lex_.next();
        }
      }
      design_.instances.push_back(std::move(inst));
    }
    lex_.expect("END");
    lex_.expect("COMPONENTS");
  }

  void parsePins() {
    lex_.expect("PINS");
    lex_.nextInt();
    lex_.expect(";");
    while (lex_.accept("-")) {
      db::IoPin pin;
      pin.name = std::string(lex_.next());
      geom::Rect shape;
      geom::Point placed;
      while (!lex_.accept(";")) {
        if (lex_.accept("+")) {
          const std::string_view kw = lex_.next();
          if (kw == "LAYER") {
            const db::Layer* layer = design_.tech->findLayer(lex_.next());
            pin.layer = layer ? layer->index : -1;
            lex_.expect("(");
            const Coord x1 = lex_.nextInt();
            const Coord y1 = lex_.nextInt();
            lex_.expect(")");
            lex_.expect("(");
            const Coord x2 = lex_.nextInt();
            const Coord y2 = lex_.nextInt();
            lex_.expect(")");
            shape = {x1, y1, x2, y2};
          } else if (kw == "PLACED" || kw == "FIXED") {
            lex_.expect("(");
            placed.x = lex_.nextInt();
            placed.y = lex_.nextInt();
            lex_.expect(")");
            lex_.next();  // orient
          }
        } else {
          lex_.next();
        }
      }
      pin.rect = shape.translate(placed.x, placed.y);
      design_.ioPins.push_back(std::move(pin));
    }
    lex_.expect("END");
    lex_.expect("PINS");
    design_.buildInstanceIndex();
  }

  void parseNets() {
    lex_.expect("NETS");
    lex_.nextInt();
    lex_.expect(";");
    design_.buildInstanceIndex();
    while (lex_.accept("-")) {
      db::Net& net = design_.nets.emplace_back();
      net.name = std::string(lex_.next());
      while (!lex_.accept(";")) {
        if (lex_.peek() == "+") {
          // '+' attributes (ROUTED wiring, USE, ...) follow the terms; skip
          // the remainder of this net statement.
          while (!lex_.accept(";")) lex_.next();
          break;
        }
        if (lex_.accept("(")) {
          const std::string a(lex_.next());
          const std::string b(lex_.next());
          lex_.expect(")");
          db::NetTerm term;
          if (a == "PIN") {
            for (int i = 0; i < static_cast<int>(design_.ioPins.size()); ++i) {
              if (design_.ioPins[i].name == b) {
                term.ioPinIdx = i;
                break;
              }
            }
            if (term.ioPinIdx < 0) {
              throw ParseError("net references unknown IO pin " + b);
            }
          } else {
            term.instIdx = design_.findInstance(a);
            if (term.instIdx < 0) {
              throw ParseError("net references unknown component " + a);
            }
            const db::Master& m = *design_.instances[term.instIdx].master;
            for (int i = 0; i < static_cast<int>(m.pins.size()); ++i) {
              if (m.pins[i].name == b) {
                term.pinIdx = i;
                break;
              }
            }
            if (term.pinIdx < 0) {
              throw ParseError("net references unknown pin " + b + " on " + a);
            }
          }
          net.terms.push_back(term);
        } else {
          lex_.next();
        }
      }
    }
    lex_.expect("END");
    lex_.expect("NETS");
  }

  Lexer lex_;
  Design& design_;
  int dbu_ = 2000;
};

}  // namespace

void parseDef(std::string_view text, db::Design& design) {
  DefParser(text, design).run();
}

}  // namespace pao::lefdef
