#include "lefdef/def_parser.hpp"

#include "lefdef/def_entities.hpp"
#include "lefdef/lexer.hpp"

namespace pao::lefdef {

namespace {

using db::Design;

// The single-pass reference parser. The grammar proper lives in
// def_entities.hpp (shared with the chunked streaming parser); this class
// contributes the legacy control flow: statement dispatch, per-entity and
// top-level error recovery, and the maxErrors bail-out.
class DefParser {
 public:
  DefParser(std::string_view text, Design& design, const ParseOptions& opts)
      : lex_(text, opts.file), opts_(opts), design_(design) {}

  ParseResult run() {
    try {
      while (!lex_.done()) {
        const std::size_t before = lex_.pos();
        try {
          step();
        } catch (const ParseError& e) {
          if (!opts_.recover) throw;
          record(e.diag);
          resync(before, {"DESIGN", "UNITS", "DIEAREA", "ROW", "TRACKS",
                          "COMPONENTS", "PINS", "NETS", "END"});
        }
      }
    } catch (const Bail&) {
      // maxErrors reached; res_ already carries the GEN001 diagnostic.
    }
    design_.buildInstanceIndex();
    return std::move(res_);
  }

 private:
  /// Thrown (recovery mode only) once maxErrors is reached.
  struct Bail {};

  void record(const util::Diag& d) {
    res_.diags.push_back(d);
    if (res_.errorCount() >= opts_.maxErrors) {
      res_.diags.push_back(tooManyErrors(opts_.file));
      throw Bail{};
    }
  }

  /// Progress guard + resync: never re-dispatch the failing token.
  void resync(std::size_t before,
              std::initializer_list<std::string_view> stops) {
    if (lex_.pos() == before && !lex_.done()) lex_.next();
    lex_.syncTo(stops);
  }

  void step() {
    if (parseSimpleDefStatement(lex_, design_, dbu_)) return;
    const std::string_view tok = lex_.peek();
    if (tok == "COMPONENTS") {
      parseComponents();
    } else if (tok == "PINS") {
      parsePins();
    } else {
      parseNets();
    }
  }

  /// Runs `body` for each `- ...` entity, recovering per entity: a bad
  /// component/pin/net is dropped and reported, the rest of the section
  /// still parses.
  template <typename Body>
  void forEachEntity(Body&& body) {
    while (lex_.accept("-")) {
      const std::size_t before = lex_.pos();
      try {
        body();
      } catch (const ParseError& e) {
        if (!opts_.recover) throw;
        record(e.diag);
        resync(before, {"-", "END"});
      }
    }
  }

  void parseComponents() {
    lex_.expect("COMPONENTS");
    lex_.nextInt();
    lex_.expect(";");
    forEachEntity([&] {
      design_.instances.push_back(parseComponentEntity(
          lex_, [&](const std::string& name) {
            return design_.lib->findMaster(name);
          }));
    });
    lex_.expect("END");
    lex_.expect("COMPONENTS");
  }

  void parsePins() {
    lex_.expect("PINS");
    lex_.nextInt();
    lex_.expect(";");
    forEachEntity(
        [&] { design_.ioPins.push_back(parsePinEntity(lex_, *design_.tech)); });
    lex_.expect("END");
    lex_.expect("PINS");
    design_.buildInstanceIndex();
  }

  void parseNets() {
    lex_.expect("NETS");
    lex_.nextInt();
    lex_.expect(";");
    design_.buildInstanceIndex();
    forEachEntity([&] {
      design_.nets.push_back(parseNetEntity(
          lex_, design_,
          [&](const std::string& name) { return design_.findInstance(name); }));
    });
    lex_.expect("END");
    lex_.expect("NETS");
  }

  Lexer lex_;
  ParseOptions opts_;
  ParseResult res_;
  Design& design_;
  int dbu_ = 2000;
};

}  // namespace

void parseDef(std::string_view text, db::Design& design) {
  DefParser(text, design, ParseOptions{}).run();
}

ParseResult parseDef(std::string_view text, db::Design& design,
                     const ParseOptions& opts) {
  return DefParser(text, design, opts).run();
}

}  // namespace pao::lefdef
