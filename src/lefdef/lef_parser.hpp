// LEF subset parser: UNITS, LAYER (routing + cut with the rules the DRC
// engine models), VIA, SITE, and MACRO (CLASS/SIZE/PIN/PORT/OBS).
// Populates a db::Tech and db::Library.
#pragma once

#include <string_view>

#include "db/lib.hpp"
#include "db/tech.hpp"

namespace pao::lefdef {

/// Parses LEF text into `tech` and `lib`. Throws ParseError on malformed
/// input. Statements outside the supported subset are skipped.
void parseLef(std::string_view text, db::Tech& tech, db::Library& lib);

}  // namespace pao::lefdef
