// LEF subset parser: UNITS, LAYER (routing + cut with the rules the DRC
// engine models), VIA, SITE, and MACRO (CLASS/SIZE/PIN/PORT/OBS).
// Populates a db::Tech and db::Library.
#pragma once

#include <string_view>

#include "db/lib.hpp"
#include "db/tech.hpp"
#include "lefdef/lexer.hpp"

namespace pao::lefdef {

/// Parses LEF text into `tech` and `lib`. Throws ParseError on malformed
/// input. Statements outside the supported subset are skipped.
void parseLef(std::string_view text, db::Tech& tech, db::Library& lib);

/// Located-diagnostics form. With opts.recover the parser resyncs after
/// each error (accumulating diagnostics in the result, never throwing);
/// without it the first error throws ParseError carrying the same Diag.
/// Entities parsed before (or partially, around) an error stay in
/// tech/lib — callers that need all-or-nothing must check ok() and drop.
ParseResult parseLef(std::string_view text, db::Tech& tech, db::Library& lib,
                     const ParseOptions& opts);

}  // namespace pao::lefdef
