#include "lefdef/lef_writer.hpp"

#include <iomanip>
#include <sstream>

namespace pao::lefdef {

namespace {

/// Formats a DBU distance as microns with enough digits to round-trip.
std::string um(geom::Coord dbu, int dbuPerMicron) {
  std::ostringstream os;
  os << std::setprecision(12) << static_cast<double>(dbu) / dbuPerMicron;
  return os.str();
}

}  // namespace

std::string writeLef(const db::Tech& tech, const db::Library& lib) {
  std::ostringstream os;
  const int dbu = tech.dbuPerMicron;
  os << "VERSION 5.8 ;\n";
  os << "BUSBITCHARS \"[]\" ;\n";
  os << "DIVIDERCHAR \"/\" ;\n";
  os << "UNITS\n  DATABASE MICRONS " << dbu << " ;\nEND UNITS\n\n";

  for (const db::Layer& l : tech.layers()) {
    os << "LAYER " << l.name << "\n";
    switch (l.type) {
      case db::LayerType::kRouting:
        os << "  TYPE ROUTING ;\n";
        os << "  DIRECTION "
           << (l.dir == db::Dir::kVertical ? "VERTICAL" : "HORIZONTAL")
           << " ;\n";
        if (l.pitch > 0) os << "  PITCH " << um(l.pitch, dbu) << " ;\n";
        if (l.width > 0) os << "  WIDTH " << um(l.width, dbu) << " ;\n";
        if (l.minArea > 0) {
          // Same round-trip precision as um(): the default 6 significant
          // digits can drift large areas through a parse cycle.
          std::ostringstream area;
          area << std::setprecision(12)
               << static_cast<double>(l.minArea) / dbu / dbu;
          os << "  AREA " << area.str() << " ;\n";
        }
        if (!l.spacingTable.empty()) {
          if (l.spacingTable.size() == 1 && l.spacingTable[0].width == 0) {
            os << "  SPACING " << um(l.spacingTable[0].spacing, dbu) << " ;\n";
          } else {
            // Reconstruct the PARALLELRUNLENGTH table: collect distinct PRLs.
            std::vector<geom::Coord> prls;
            for (const auto& e : l.spacingTable) {
              if (std::find(prls.begin(), prls.end(), e.prl) == prls.end()) {
                prls.push_back(e.prl);
              }
            }
            os << "  SPACINGTABLE PARALLELRUNLENGTH";
            for (const geom::Coord p : prls) os << " " << um(p, dbu);
            std::vector<geom::Coord> widths;
            for (const auto& e : l.spacingTable) {
              if (std::find(widths.begin(), widths.end(), e.width) ==
                  widths.end()) {
                widths.push_back(e.width);
              }
            }
            for (const geom::Coord w : widths) {
              os << "\n    WIDTH " << um(w, dbu);
              for (const geom::Coord p : prls) {
                // Dense grid entry: the effective spacing for a shape just
                // over this width/PRL threshold, so the parsed table is
                // behaviorally identical to the source.
                os << " " << um(l.spacing(w + 1, p + 1), dbu);
              }
            }
            os << " ;\n";
          }
        }
        if (l.eol) {
          os << "  SPACING " << um(l.eol->space, dbu) << " ENDOFLINE "
             << um(l.eol->eolWidth, dbu) << " WITHIN "
             << um(l.eol->within, dbu) << " ;\n";
        }
        if (l.minStep) {
          os << "  MINSTEP " << um(l.minStep->minStepLength, dbu)
             << " MAXEDGES " << l.minStep->maxEdges << " ;\n";
        }
        break;
      case db::LayerType::kCut:
        os << "  TYPE CUT ;\n";
        if (l.cutSpacing > 0) {
          os << "  SPACING " << um(l.cutSpacing, dbu) << " ;\n";
        }
        break;
      case db::LayerType::kMasterslice:
        os << "  TYPE MASTERSLICE ;\n";
        break;
    }
    os << "END " << l.name << "\n\n";
  }

  const auto rect = [&](const geom::Rect& r) {
    std::ostringstream s;
    s << um(r.xlo, dbu) << " " << um(r.ylo, dbu) << " " << um(r.xhi, dbu)
      << " " << um(r.yhi, dbu);
    return s.str();
  };

  for (const db::ViaDef& v : tech.viaDefs()) {
    os << "VIA " << v.name << (v.isDefault ? " DEFAULT" : "") << "\n";
    os << "  LAYER " << tech.layer(v.botLayer).name << " ;\n";
    os << "    RECT " << rect(v.botEnc) << " ;\n";
    os << "  LAYER " << tech.layer(v.cutLayer).name << " ;\n";
    os << "    RECT " << rect(v.cut) << " ;\n";
    os << "  LAYER " << tech.layer(v.topLayer).name << " ;\n";
    os << "    RECT " << rect(v.topEnc) << " ;\n";
    os << "END " << v.name << "\n\n";
  }

  for (const auto& mp : lib.masters()) {
    const db::Master& m = *mp;
    os << "MACRO " << m.name << "\n";
    os << "  CLASS ";
    switch (m.cls) {
      case db::MasterClass::kCore: os << "CORE"; break;
      case db::MasterClass::kBlock: os << "BLOCK"; break;
      case db::MasterClass::kFiller: os << "CORE SPACER"; break;
      case db::MasterClass::kEndcap: os << "ENDCAP"; break;
    }
    os << " ;\n";
    os << "  ORIGIN 0 0 ;\n";
    os << "  SIZE " << um(m.width, dbu) << " BY " << um(m.height, dbu)
       << " ;\n";
    for (const db::Pin& p : m.pins) {
      os << "  PIN " << p.name << "\n";
      os << "    USE ";
      switch (p.use) {
        case db::PinUse::kSignal: os << "SIGNAL"; break;
        case db::PinUse::kPower: os << "POWER"; break;
        case db::PinUse::kGround: os << "GROUND"; break;
        case db::PinUse::kClock: os << "CLOCK"; break;
      }
      os << " ;\n";
      os << "    PORT\n";
      int lastLayer = -1;
      for (const db::PinShape& s : p.shapes) {
        if (s.layer != lastLayer) {
          os << "      LAYER " << tech.layer(s.layer).name << " ;\n";
          lastLayer = s.layer;
        }
        os << "      RECT " << rect(s.rect) << " ;\n";
      }
      os << "    END\n";
      os << "  END " << p.name << "\n";
    }
    if (!m.obstructions.empty()) {
      os << "  OBS\n";
      int lastLayer = -1;
      for (const db::Obstruction& o : m.obstructions) {
        if (o.layer != lastLayer) {
          os << "    LAYER " << tech.layer(o.layer).name << " ;\n";
          lastLayer = o.layer;
        }
        os << "    RECT " << rect(o.rect) << " ;\n";
      }
      os << "  END\n";
    }
    os << "END " << m.name << "\n\n";
  }
  os << "END LIBRARY\n";
  return os.str();
}

}  // namespace pao::lefdef
