// Streaming LEF/DEF ingest (ROADMAP item 3): the multi-million-instance
// front end. parseDefStream() tokenizes lazily over one immutable view of
// the input (mmap-backed via FileSource for the *File forms), splits the
// COMPONENTS and NETS sections into entity-aligned chunks, and parses the
// chunks in parallel on a util::JobGraph with per-chunk util::Arena
// scratch — while preserving the legacy parser's diagnostics/recovery
// contract exactly:
//
//   * Same grammar code: both parsers instantiate def_entities.hpp, so
//     codes, messages, locations and excerpts are byte-identical.
//   * Chunk boundaries are only ever cut at after-';' entity starts — the
//     positions where the legacy forEachEntity loop begins an iteration —
//     so recovery resyncs can never cross a boundary and per-entity
//     behaviour matches the serial parse on any input, well-formed or not.
//     Junk tokens between an entity's ';' and the next entity stay in the
//     preceding entity's chunk; where the serial section loop would stop
//     at such junk, the chunk worker flags an early stop, the merge
//     discards every later chunk, and the driver re-enters the serial
//     grammar at that exact byte.
//   * Strict mode: each chunk stops at its first entity error and the
//     in-order merge rethrows the earliest chunk's error (or reproduces
//     an earlier chunk's early stop), i.e. the file's first error,
//     exactly like the serial parse. (On a strict-mode throw the target
//     design is left untouched, where the legacy parser leaves a partial
//     parse behind — the one documented divergence; see DESIGN.md
//     "Streaming ingest & scale".)
//   * Recovery mode: chunk diagnostics merge in chunk order (= file
//     order). If the file's total error count reaches
//     ParseOptions::maxErrors the streamed attempt is abandoned and the
//     input is re-parsed with the legacy parser, reproducing its GEN001
//     bail-out semantics bit for bit.
//
// The NETS section resolves component references through a
// util::StringInterner built over the just-merged instances (one hash
// probe per term, no per-lookup std::string), and parsed nets/instances
// commit in chunk order so the result is byte-identical at any thread
// count.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "db/design.hpp"
#include "db/lib.hpp"
#include "db/tech.hpp"
#include "lefdef/lexer.hpp"

namespace pao::lefdef {

struct StreamOptions {
  ParseOptions parse;
  /// Worker count for the chunk jobs (util::resolveThreads semantics:
  /// 0 = hardware concurrency). Results are byte-identical at any value.
  int numThreads = 0;
  /// Target bytes per chunk; chunks never split an entity. Granularity
  /// affects scheduling only, never results.
  std::size_t chunkBytes = 1 << 20;
};

/// Observability of one ingest run (all fields are outputs).
struct IngestStats {
  std::size_t bytes = 0;       ///< input size
  std::size_t chunks = 0;      ///< parallel section chunks parsed
  std::size_t components = 0;  ///< instances appended
  std::size_t nets = 0;        ///< nets appended
  bool mapped = false;         ///< file came from mmap (vs read fallback)
  bool legacyFallback = false;  ///< maxErrors bail-out re-parse ran
  double parseSeconds = 0;     ///< wall seconds (file forms only)
};

/// Streamed equivalent of parseDef(text, design, opts): same results, same
/// diagnostics, same recovery behaviour (see header comment for the one
/// strict-mode residue divergence).
ParseResult parseDefStream(std::string_view text, db::Design& design,
                           const StreamOptions& opts,
                           IngestStats* stats = nullptr);

/// Opens `path` via FileSource (mmap with read() fallback) and runs
/// parseDefStream. Injects the "def.io" fault point before opening, so the
/// CLI fault contract carries over from the slurp path.
ParseResult parseDefFile(const std::string& path, db::Design& design,
                         const StreamOptions& opts,
                         IngestStats* stats = nullptr);

/// LEF ingest over a FileSource view ("lef.io" fault point). LEF files are
/// library-sized, not design-sized, so the parse itself is the legacy
/// serial one — the win here is mmap + zero-copy, not chunking.
ParseResult parseLefFile(const std::string& path, db::Tech& tech,
                         db::Library& lib, const ParseOptions& opts,
                         IngestStats* stats = nullptr);

}  // namespace pao::lefdef
