#include "lefdef/source.hpp"

#include "lefdef/lexer.hpp"
#include "util/diag.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PAO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PAO_HAVE_MMAP 0
#endif

#include <fstream>
#include <sstream>

namespace pao::lefdef {

FileSource::FileSource(const std::string& path) {
#if PAO_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st {};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      if (st.st_size == 0) {
        ::close(fd);
        return;  // empty file: empty view, nothing to map
      }
      void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (p != MAP_FAILED) {
        map_ = p;
        mapLen_ = static_cast<std::size_t>(st.st_size);
        text_ = {static_cast<const char*>(p), mapLen_};
        mapped_ = true;
        return;
      }
    } else {
      ::close(fd);
    }
    // Regular-open succeeded but map/stat failed (e.g. procfs, some network
    // filesystems): fall through to the read() path.
  }
#endif
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    util::Diag d;
    d.code = "IO001";
    d.loc.file = path;
    d.message = "cannot open file";
    throw ParseError(std::move(d));
  }
  std::stringstream ss;
  ss << f.rdbuf();
  fallback_ = std::move(ss).str();
  text_ = fallback_;
}

FileSource::~FileSource() {
#if PAO_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, mapLen_);
#endif
}

}  // namespace pao::lefdef
