// DEF writer extension: emits the design WITH routed regular wiring
// (`+ ROUTED layer ( x y ) ( x y ) ... ( x y ) VIA`), so results can be
// inspected in any DEF viewer.
#pragma once

#include <string>
#include <vector>

#include "db/design.hpp"

namespace pao::lefdef {

/// A routed element in a neutral form (the router converts its shapes).
struct RoutedShape {
  int net = -1;    ///< index into Design::nets
  int layer = -1;  ///< tech layer index: routing layer (wire/patch) or cut
                   ///< layer (via location)
  geom::Rect rect;
  bool isVia = false;  ///< when true, `rect` is the cut shape
};

/// Like writeDef, plus per-net ROUTED wiring statements built from `routed`.
/// Wires become centerline segments (or single-point pads when square-ish);
/// vias are emitted by the default via def of their cut layer.
std::string writeRoutedDef(const db::Design& design,
                           const std::vector<RoutedShape>& routed);

}  // namespace pao::lefdef
