// File-backed input for the streaming LEF/DEF ingest. Maps the file
// read-only with mmap where available (one copy of the bytes, shared by
// every chunk worker) and falls back to a plain read() slurp on platforms
// or filesystems where mapping fails. Either way the parser sees one
// immutable std::string_view for the file's whole lifetime, so chunk
// workers can hold sub-views with no copying or synchronization.
//
// Open failures throw lefdef::ParseError carrying an unlocated IO001 diag
// naming the file; callers inject the "lef.io" / "def.io" fault points
// *before* constructing a FileSource so the fault contract of the legacy
// path carries over unchanged.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace pao::lefdef {

class FileSource {
 public:
  /// Opens and maps (or slurps) `path`. Throws lefdef::ParseError (code
  /// IO001) when the file cannot be opened.
  explicit FileSource(const std::string& path);
  ~FileSource();

  FileSource(const FileSource&) = delete;
  FileSource& operator=(const FileSource&) = delete;

  /// The file's bytes; valid for the FileSource's lifetime.
  std::string_view text() const { return text_; }
  std::size_t sizeBytes() const { return text_.size(); }
  /// True when the bytes are a shared read-only mapping (false: heap copy).
  bool mapped() const { return mapped_; }

 private:
  std::string_view text_;
  std::string fallback_;  ///< owns the bytes when !mapped_
  void* map_ = nullptr;
  std::size_t mapLen_ = 0;
  bool mapped_ = false;
};

}  // namespace pao::lefdef
