#include "lefdef/stream.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <optional>
#include <utility>
#include <vector>

#include "lefdef/def_entities.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/lef_parser.hpp"
#include "lefdef/source.hpp"
#include "lefdef/stream_lexer.hpp"
#include "obs/metrics.hpp"
#include "util/arena.hpp"
#include "util/fault.hpp"
#include "util/interner.hpp"
#include "util/jobs.hpp"

namespace pao::lefdef {

namespace {

using db::Design;

/// Entity layout of one COMPONENTS/NETS section: byte offsets of every
/// `-` entity start (positions where the legacy forEachEntity loop begins
/// an iteration) plus the offset where the entity region ends (the END
/// keyword, trailing junk, or end of input).
struct SectionScan {
  std::vector<std::size_t> starts;
  std::size_t regionEnd = 0;
};

/// Byte range of one chunk plus the number of entities it holds.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t entities = 0;
};

/// "No early stop" sentinel for ChunkOut::earlyStop.
constexpr std::size_t kNoStop = static_cast<std::size_t>(-1);

/// Per-chunk parse output. Instances/nets commit in chunk order, so the
/// merged result is independent of the schedule.
template <typename Entity>
struct ChunkOut {
  std::vector<Entity> parsed;
  std::vector<util::Diag> diags;
  /// Strict mode: the first entity error in this chunk. The in-order merge
  /// rethrows the earliest chunk's failure so the file-first error wins
  /// even when a later chunk finished sooner.
  std::optional<util::Diag> failure;
  /// Byte offset of a non-entity statement token the chunk's loop stopped
  /// at (junk after a successfully parsed entity). The serial section loop
  /// ends there, so the merge discards every later chunk and the driver
  /// re-enters the serial grammar at this offset.
  std::size_t earlyStop = kNoStop;
};

class StreamDefParser {
 public:
  StreamDefParser(std::string_view text, Design& design,
                  const StreamOptions& opts, IngestStats* stats)
      : text_(text),
        lines_(text),
        opts_(opts),
        lex_(text, lines_, opts.parse.file),
        design_(design),
        stats_(stats) {}

  ParseResult run() {
    local_ = design_;
    try {
      // A strict-mode ParseError propagates from here with the caller's
      // design untouched (the partial parse lives in the discarded
      // local_).
      while (!lex_.done()) {
        const std::size_t before = lex_.pos();
        try {
          step();
        } catch (const ParseError& e) {
          if (!opts_.parse.recover) throw;
          record(e.diag);
          resync(before, {"DESIGN", "UNITS", "DIEAREA", "ROW", "TRACKS",
                          "COMPONENTS", "PINS", "NETS", "END"});
        }
      }
    } catch (const NeedLegacy&) {
      // The file's error count reached ParseOptions::maxErrors. The
      // legacy parser's bail-out stops mid-file (GEN001, partial
      // sections); re-running it from scratch on the original design is
      // the simplest way to reproduce that state bit for bit — such
      // files are error-dense, so never the scale case.
      if (stats_ != nullptr) stats_->legacyFallback = true;
      const std::size_t instBefore = design_.instances.size();
      const std::size_t netsBefore = design_.nets.size();
      ParseResult r = parseDef(text_, design_, opts_.parse);
      finishStats(design_.instances.size() - instBefore,
                  design_.nets.size() - netsBefore);
      return r;
    }
    local_.buildInstanceIndex();
    const std::size_t instBefore = design_.instances.size();
    const std::size_t netsBefore = design_.nets.size();
    design_ = std::move(local_);
    finishStats(design_.instances.size() - instBefore,
                design_.nets.size() - netsBefore);
    return std::move(res_);
  }

 private:
  /// Thrown once the total error count reaches maxErrors; run() answers
  /// with a legacy re-parse (exact GEN001/Bail semantics).
  struct NeedLegacy {};

  void record(const util::Diag& d) {
    res_.diags.push_back(d);
    if (res_.errorCount() >= opts_.parse.maxErrors) throw NeedLegacy{};
  }

  void resync(std::size_t before,
              std::initializer_list<std::string_view> stops) {
    if (lex_.pos() == before && !lex_.done()) lex_.next();
    lex_.syncTo(stops);
  }

  void step() {
    if (parseSimpleDefStatement(lex_, local_, dbu_)) return;
    const std::string_view tok = lex_.peek();
    if (tok == "COMPONENTS") {
      parseComponentsStreamed();
    } else if (tok == "PINS") {
      parsePinsSerial();
    } else {
      parseNetsStreamed();
    }
  }

  /// Tokenizes (without parsing) through a section's entity region,
  /// recording entity-start offsets. Entities begin at a `-` in statement
  /// position (= right after a consumed ';', where forEachEntity tests);
  /// an entity's bytes run to the next statement position, so a malformed
  /// entity that swallows following `-` tokens stays in one piece exactly
  /// as the serial parse would consume it. Leaves lex_ at the region end.
  SectionScan scanEntities() {
    SectionScan scan;
    while (!lex_.done() && lex_.peek() == "-") {
      scan.starts.push_back(lex_.byteOffset());
      lex_.next();
      while (!lex_.done() && lex_.next() != ";") {
      }
      // Junk tokens between this entity's ';' and the next '-'/END belong
      // to this entity's byte range: the serial parse reaches them either
      // inside a failed entity's resync (which skips ahead to '-'/END) or
      // at the loop condition after a successful parse, where the section
      // stops. The chunk runner reproduces both (see earlyStop).
      while (!lex_.done() && lex_.peek() != "-" && lex_.peek() != "END") {
        lex_.next();
      }
    }
    scan.regionEnd = lex_.byteOffset();
    return scan;
  }

  /// Groups scanned entities into byte-contiguous chunks of roughly
  /// opts_.chunkBytes. Chunking granularity is schedule only — results
  /// are committed per entity in file order regardless.
  std::vector<ChunkRange> makeChunks(const SectionScan& scan) const {
    std::vector<ChunkRange> chunks;
    if (scan.starts.empty()) return chunks;
    const std::size_t target = std::max<std::size_t>(1, opts_.chunkBytes);
    ChunkRange cur{scan.starts[0], 0, 0};
    for (std::size_t i = 0; i < scan.starts.size(); ++i) {
      const std::size_t entityEnd =
          i + 1 < scan.starts.size() ? scan.starts[i + 1] : scan.regionEnd;
      if (cur.entities > 0 && entityEnd - cur.begin > target) {
        cur.end = scan.starts[i];
        chunks.push_back(cur);
        cur = {scan.starts[i], 0, 0};
      }
      ++cur.entities;
      cur.end = entityEnd;
    }
    chunks.push_back(cur);
    return chunks;
  }

  /// Runs one entity chunk: the legacy forEachEntity loop over a bounded
  /// StreamLexer, with per-entity recovery (error counting is deferred to
  /// the in-order merge). `makeParseOne` is invoked once per chunk on the
  /// worker thread, inside the chunk's ArenaScope, and returns the
  /// entity-parsing callable — chunk-local state (the master-resolution
  /// cache) lives in that closure, on the worker's arena.
  template <typename Entity, typename MakeParseOne>
  void runChunks(const std::vector<ChunkRange>& chunks,
                 std::vector<ChunkOut<Entity>>& outs,
                 MakeParseOne makeParseOne) {
    outs.resize(chunks.size());
    util::JobGraph graph;
    graph.addJobRange(chunks.size(), [&](std::size_t ci) {
      util::ArenaScope scope(util::scratchArena());
      const ChunkRange& range = chunks[ci];
      ChunkOut<Entity>& out = outs[ci];
      out.parsed.reserve(range.entities);
      StreamLexer cl(text_, range.begin, range.end, lines_,
                     opts_.parse.file);
      auto parseOne = makeParseOne();
      while (cl.accept("-")) {
        const std::size_t before = cl.pos();
        try {
          out.parsed.push_back(parseOne(cl));
        } catch (const ParseError& e) {
          if (!opts_.parse.recover) {
            // Strict mode: stop this chunk at its first error. Jobs never
            // throw; the in-order merge rethrows the earliest chunk's
            // failure so an earlyStop in an earlier chunk still wins.
            out.failure = e.diag;
            return;
          }
          out.diags.push_back(e.diag);
          if (cl.pos() == before && !cl.done()) cl.next();
          cl.syncTo({"-", "END"});
        }
      }
      // The loop exits mid-chunk only on junk that isn't an entity start
      // (chunks end at entity boundaries, and a failed entity's resync
      // already consumed its trailing junk). The serial section loop ends
      // at this exact token.
      if (!cl.done()) out.earlyStop = cl.byteOffset();
    });
    // Chunk jobs are independent and added in file order; strict-mode
    // errors and early stops are resolved by the in-order merge.
    graph.run(opts_.numThreads);
    if (stats_ != nullptr) stats_->chunks += chunks.size();
  }

  /// Merges chunk outputs in chunk (= file) order: entities append to
  /// `sink`, diagnostics flow through record() so the maxErrors threshold
  /// fires on exactly the same diagnostic as the serial parse. A
  /// strict-mode failure rethrows here (earliest chunk = file-first
  /// error). Returns the first chunk's earlyStop offset — everything after
  /// it is discarded, entities and diagnostics alike, because the serial
  /// parse ends the section there and never sees them — or kNoStop.
  template <typename Entity>
  std::size_t mergeChunks(std::vector<ChunkOut<Entity>>& outs,
                          std::vector<Entity>& sink) {
    std::size_t total = 0;
    for (const ChunkOut<Entity>& out : outs) total += out.parsed.size();
    sink.reserve(sink.size() + total);
    for (ChunkOut<Entity>& out : outs) {
      for (Entity& e : out.parsed) sink.push_back(std::move(e));
      for (const util::Diag& d : out.diags) record(d);
      if (out.failure) throw ParseError(std::move(*out.failure));
      if (out.earlyStop != kNoStop) return out.earlyStop;
    }
    return kNoStop;
  }

  void parseComponentsStreamed() {
    lex_.expect("COMPONENTS");
    lex_.nextInt();
    lex_.expect(";");
    const SectionScan scan = scanEntities();
    const std::vector<ChunkRange> chunks = makeChunks(scan);
    std::vector<ChunkOut<db::Instance>> outs;
    // Per-chunk master resolution: a tiny arena-backed cache in front of
    // Library::findMaster. Libraries hold tens of masters while chunks
    // hold thousands of components, so a linear probe over the names this
    // chunk has already seen beats a map lookup per component. Key bytes
    // are copied into the chunk's arena scratch (the incoming std::string
    // dies with the entity); the cache vector itself is arena-allocated
    // and reclaimed wholesale by the chunk's ArenaScope rewind.
    using CacheEntry = std::pair<std::string_view, const db::Master*>;
    runChunks(chunks, outs, [this] {
      return [this, cache = util::ArenaVector<CacheEntry>()](
                 StreamLexer& cl) mutable {
        return parseComponentEntity(cl, [&](const std::string& name) {
          for (const CacheEntry& e : cache) {
            if (e.first == name) return e.second;
          }
          const db::Master* m = local_.lib->findMaster(name);
          char* buf = static_cast<char*>(
              util::scratchArena().allocate(std::max<std::size_t>(
                                                name.size(), 1),
                                            1));
          std::memcpy(buf, name.data(), name.size());
          cache.emplace_back(std::string_view(buf, name.size()), m);
          return m;
        });
      };
    });
    const std::size_t stop = mergeChunks(outs, local_.instances);
    // On an early stop, re-enter the serial grammar at the junk statement
    // the chunk worker stopped at; expect() then fails exactly where the
    // legacy section loop would.
    if (stop != kNoStop) lex_.seekTo(stop);
    lex_.expect("END");
    lex_.expect("COMPONENTS");
  }

  void parsePinsSerial() {
    lex_.expect("PINS");
    lex_.nextInt();
    lex_.expect(";");
    while (lex_.accept("-")) {
      const std::size_t before = lex_.pos();
      try {
        local_.ioPins.push_back(parsePinEntity(lex_, *local_.tech));
      } catch (const ParseError& e) {
        if (!opts_.parse.recover) throw;
        record(e.diag);
        resync(before, {"-", "END"});
      }
    }
    lex_.expect("END");
    lex_.expect("PINS");
    local_.buildInstanceIndex();
  }

  void parseNetsStreamed() {
    lex_.expect("NETS");
    lex_.nextInt();
    lex_.expect(";");
    // Component references resolve through an interner over the merged
    // instances: the interned id is dense in first-appearance order, so
    // idToInst is a flat array and each lookup is one hash probe with no
    // std::string construction. Duplicate names keep the last index, the
    // same last-wins rule as Design::buildInstanceIndex.
    util::StringInterner names;
    std::vector<int> idToInst;
    idToInst.reserve(local_.instances.size());
    for (int i = 0; i < static_cast<int>(local_.instances.size()); ++i) {
      const std::uint32_t id = names.intern(local_.instances[i].name);
      if (id == static_cast<std::uint32_t>(idToInst.size())) {
        idToInst.push_back(i);
      } else {
        idToInst[id] = i;
      }
    }
    const auto findInst = [&](const std::string& name) -> int {
      const std::uint32_t id = names.find(name);
      return id == util::StringInterner::kNone ? -1 : idToInst[id];
    };
    const SectionScan scan = scanEntities();
    const std::vector<ChunkRange> chunks = makeChunks(scan);
    std::vector<ChunkOut<db::Net>> outs;
    runChunks(chunks, outs, [this, &findInst] {
      return [this, &findInst](StreamLexer& cl) {
        return parseNetEntity(cl, local_, findInst);
      };
    });
    const std::size_t stop = mergeChunks(outs, local_.nets);
    if (stop != kNoStop) lex_.seekTo(stop);
    lex_.expect("END");
    lex_.expect("NETS");
  }

  void finishStats(std::size_t components, std::size_t nets) {
    if (stats_ != nullptr) {
      stats_->bytes = text_.size();
      stats_->components += components;
      stats_->nets += nets;
    }
    PAO_COUNTER_ADD("pao.ingest.def_bytes",
                    static_cast<long long>(text_.size()));
    PAO_COUNTER_ADD("pao.ingest.components", static_cast<long long>(components));
    PAO_COUNTER_ADD("pao.ingest.nets", static_cast<long long>(nets));
  }

  std::string_view text_;
  LineIndex lines_;
  StreamOptions opts_;
  StreamLexer lex_;
  Design& design_;
  IngestStats* stats_;
  Design local_;
  ParseResult res_;
  int dbu_ = 2000;
};

}  // namespace

ParseResult parseDefStream(std::string_view text, db::Design& design,
                           const StreamOptions& opts, IngestStats* stats) {
  return StreamDefParser(text, design, opts, stats).run();
}

ParseResult parseDefFile(const std::string& path, db::Design& design,
                         const StreamOptions& opts, IngestStats* stats) {
  PAO_FAULT_INJECT("def.io");
  const auto t0 = std::chrono::steady_clock::now();
  FileSource src(path);
  ParseResult r = parseDefStream(src.text(), design, opts, stats);
  if (stats != nullptr) {
    stats->mapped = src.mapped();
    stats->parseSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return r;
}

ParseResult parseLefFile(const std::string& path, db::Tech& tech,
                         db::Library& lib, const ParseOptions& opts,
                         IngestStats* stats) {
  PAO_FAULT_INJECT("lef.io");
  const auto t0 = std::chrono::steady_clock::now();
  FileSource src(path);
  ParseResult r = parseLef(src.text(), tech, lib, opts);
  if (stats != nullptr) {
    stats->bytes = src.sizeBytes();
    stats->mapped = src.mapped();
    stats->parseSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  PAO_COUNTER_ADD("pao.ingest.lef_bytes",
                  static_cast<long long>(src.sizeBytes()));
  return r;
}

}  // namespace pao::lefdef
