// LEF subset writer: emits the same statement subset the parser reads, so
// Tech+Library round-trip through text.
#pragma once

#include <string>

#include "db/lib.hpp"
#include "db/tech.hpp"

namespace pao::lefdef {

std::string writeLef(const db::Tech& tech, const db::Library& lib);

}  // namespace pao::lefdef
