// DEF subset writer matching the parser's statement subset.
#pragma once

#include <string>

#include "db/design.hpp"

namespace pao::lefdef {

std::string writeDef(const db::Design& design);

}  // namespace pao::lefdef
