// DEF subset writer matching the parser's statement subset.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "db/design.hpp"

namespace pao::lefdef {

std::string writeDef(const db::Design& design);

/// Streaming DEF emitters. writeDef() and benchgen's huge-case generator
/// both produce their text through these, so a generated-then-parsed design
/// re-written with writeDef() round-trips byte-identically — the fixpoint
/// the scale property tests depend on. Call order mirrors the file layout:
/// header, row*, sectionGap, track*, sectionGap, components…, pins…, nets…,
/// end.
namespace defout {

void header(std::ostream& os, const std::string& designName,
            int dbuPerMicron, const geom::Rect& dieArea);
void row(std::ostream& os, const db::Row& r);
void track(std::ostream& os, const db::TrackPattern& tp,
           const std::string& layerName);
/// The blank line separating the ROW and TRACKS groups from what follows.
void sectionGap(std::ostream& os);

void componentsBegin(std::ostream& os, std::size_t n);
void component(std::ostream& os, std::string_view name,
               std::string_view master, geom::Point origin,
               geom::Orient orient);
void componentsEnd(std::ostream& os);

void pinsBegin(std::ostream& os, std::size_t n);
void pin(std::ostream& os, std::string_view name, std::string_view layerName,
         const geom::Rect& shape);
void pinsEnd(std::ostream& os);

void netsBegin(std::ostream& os, std::size_t n);
void netBegin(std::ostream& os, std::string_view name);
void netInstTerm(std::ostream& os, std::string_view inst,
                 std::string_view pin);
void netIoTerm(std::ostream& os, std::string_view ioPin);
void netEnd(std::ostream& os);
void netsEnd(std::ostream& os);

void end(std::ostream& os);

}  // namespace defout

}  // namespace pao::lefdef
